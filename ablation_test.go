// Ablation benchmarks: each measures the cost or benefit of one design
// choice DESIGN.md calls out, holding everything else fixed. Run with
//
//	go test -bench=Ablation -benchmem
package machlock_test

import (
	"sync"
	"testing"

	"machlock/internal/core/cxlock"
	"machlock/internal/core/refcount"
	"machlock/internal/core/splock"
	"machlock/internal/cthreads"
	"machlock/internal/sched"
)

// BenchmarkAblationEventTableSharding: the event table hashes events into
// 64 buckets so unrelated events do not contend on one mutex. Compare a
// workload where every wakeup hits ONE event (worst case: all traffic in
// one bucket) against the same volume spread over 64 events.
func BenchmarkAblationEventTableSharding(b *testing.B) {
	run := func(b *testing.B, nEvents int) {
		tb := sched.NewTable()
		events := make([]*int, nEvents)
		for i := range events {
			events[i] = new(int)
		}
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				tb.ThreadWakeup(events[i%nEvents]) // empty wakeup: pure table cost
				i++
			}
		})
	}
	b.Run("1-event", func(b *testing.B) { run(b, 1) })
	b.Run("64-events", func(b *testing.B) { run(b, 64) })
}

// BenchmarkAblationWakeupOneVsAll: thread_wakeup wakes every waiter even
// when only one can make progress (a lock hand-off), causing a thundering
// herd; thread_wakeup_one hands off directly. Measure a mutex-style
// hand-off chain under both.
func BenchmarkAblationWakeupOneVsAll(b *testing.B) {
	for _, tc := range []struct {
		name string
		all  bool
	}{{"wakeup-one", false}, {"wakeup-all", true}} {
		b.Run(tc.name, func(b *testing.B) {
			var mu sync.Mutex
			held := false
			waiters := 0
			ev := new(int)
			const nthreads = 8
			each := b.N/nthreads + 1
			var ths []*sched.Thread
			for i := 0; i < nthreads; i++ {
				ths = append(ths, sched.Go("w", func(self *sched.Thread) {
					for n := 0; n < each; n++ {
						mu.Lock()
						for held {
							waiters++
							sched.AssertWait(self, ev)
							mu.Unlock()
							sched.ThreadBlock(self)
							mu.Lock()
							waiters--
						}
						held = true
						mu.Unlock()

						mu.Lock()
						held = false
						wake := waiters > 0
						mu.Unlock()
						if wake {
							if tc.all {
								sched.ThreadWakeup(ev)
							} else {
								sched.ThreadWakeupOne(ev)
							}
						}
					}
				}))
			}
			for _, th := range ths {
				th.Join()
			}
		})
	}
}

// BenchmarkAblationCheckedLockOverhead: the debug discipline (holder
// tracking, double-acquire detection, block-while-held enforcement) against
// the raw simple lock — what the checked variant costs per acquisition.
func BenchmarkAblationCheckedLockOverhead(b *testing.B) {
	b.Run("raw", func(b *testing.B) {
		var l splock.Lock
		for i := 0; i < b.N; i++ {
			l.Lock()
			l.Unlock()
		}
	})
	b.Run("checked", func(b *testing.B) {
		l := splock.NewChecked("bench")
		th := sched.New("t")
		for i := 0; i < b.N; i++ {
			l.Lock(th)
			l.Unlock(th)
		}
	})
	b.Run("ordered-hierarchy", func(b *testing.B) {
		h := splock.NewHierarchy(false)
		l := h.NewOrdered("bench", 1)
		th := sched.New("t")
		for i := 0; i < b.N; i++ {
			l.Lock(th)
			l.Unlock(th)
		}
	})
}

// BenchmarkAblationObjectDiscipline: the full kernel-object reference
// discipline (lock, clone, unlock / lock, release, unlock, destroy check)
// against a bare count — what Sections 8–9 cost per reference operation.
func BenchmarkAblationObjectDiscipline(b *testing.B) {
	b.Run("bare-count", func(b *testing.B) {
		var c refcount.Count
		c.Init(1)
		for i := 0; i < b.N; i++ {
			c.Clone()
			c.Release()
		}
	})
	b.Run("kernel-object", func(b *testing.B) {
		o := newBenchObject()
		for i := 0; i < b.N; i++ {
			o.TakeRef()
			o.Release(nil)
		}
	})
}

// BenchmarkAblationRecursiveHolderCheck: every complex-lock operation
// compares against the recursive holder; measure a read hand-off with and
// without a thread identity (nil skips holder comparisons AND the observer
// hooks).
func BenchmarkAblationRecursiveHolderCheck(b *testing.B) {
	b.Run("with-identity", func(b *testing.B) {
		l := cxlock.NewWith(cxlock.Options{})
		th := sched.New("t")
		for i := 0; i < b.N; i++ {
			l.Read(th)
			l.Done(th)
		}
	})
	b.Run("anonymous", func(b *testing.B) {
		l := cxlock.NewWith(cxlock.Options{})
		for i := 0; i < b.N; i++ {
			l.Read(nil)
			l.Done(nil)
		}
	})
}

// BenchmarkAblationConditionVsRawEvent: the C Threads condition variable
// against raw assert_wait/thread_block — what the user-level abstraction
// adds over the kernel primitive for one handoff.
func BenchmarkAblationConditionVsRawEvent(b *testing.B) {
	b.Run("cthreads-condition", func(b *testing.B) {
		mu := cthreads.NewMutex()
		cond := cthreads.NewCondition()
		ready := 0
		total := b.N
		consumer := cthreads.Spawn("c", func(self *sched.Thread) {
			for n := 0; n < total; n++ {
				mu.Lock(self)
				for ready == 0 {
					cond.Wait(self, mu)
				}
				ready--
				mu.Unlock(self)
			}
		})
		producer := cthreads.Spawn("p", func(self *sched.Thread) {
			for n := 0; n < total; n++ {
				mu.Lock(self)
				ready++
				mu.Unlock(self)
				cond.Signal()
			}
		})
		producer.Join()
		consumer.Join()
	})
	b.Run("raw-event-wait", func(b *testing.B) {
		var mu sync.Mutex
		ready := 0
		ev := new(int)
		total := b.N
		consumer := sched.Go("c", func(self *sched.Thread) {
			for n := 0; n < total; n++ {
				mu.Lock()
				for ready == 0 {
					sched.AssertWait(self, ev)
					mu.Unlock()
					sched.ThreadBlock(self)
					mu.Lock()
				}
				ready--
				mu.Unlock()
			}
		})
		producer := sched.Go("p", func(self *sched.Thread) {
			for n := 0; n < total; n++ {
				mu.Lock()
				ready++
				mu.Unlock()
				sched.ThreadWakeup(ev)
			}
		})
		producer.Join()
		consumer.Join()
	})
}

// newBenchObject builds an initialized kernel object for the ablations.
func newBenchObject() *benchKObj {
	o := &benchKObj{}
	o.Init("bench")
	return o
}

module machlock

go 1.24

package machlock_test

import (
	"sync"
	"testing"

	"machlock"
	"machlock/internal/trace"
)

// Facade tests for the lock-algorithm arsenal: the Algorithm enum, the
// NewSimpleLock/NewLock option plumbing, and the Recommend heuristic.

// TestSimpleLockAlgorithms: every algorithm built through the facade must
// behave as a mutex from the facade's perspective.
func TestSimpleLockAlgorithms(t *testing.T) {
	for _, a := range machlock.Algorithms() {
		a := a
		t.Run(a.String(), func(t *testing.T) {
			t.Parallel()
			l := machlock.NewSimpleLock(
				machlock.WithAlgorithm(a),
				machlock.WithName("facade."+a.String()),
			)
			n := 0
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < 1000; i++ {
						l.Lock()
						n++
						l.Unlock()
					}
				}()
			}
			wg.Wait()
			if n != 4000 {
				t.Fatalf("algorithm %v lost updates: n=%d, want 4000", a, n)
			}
			if l.Name() != "facade."+a.String() {
				t.Fatalf("WithName did not stick: %q", l.Name())
			}
		})
	}
}

// TestWithSpinThenParkImpliesAdaptive: on the simple-lock side the option
// selects the Adaptive algorithm (unless one was chosen explicitly); on
// the complex-lock side it implies Sleep.
func TestWithSpinThenParkImpliesAdaptive(t *testing.T) {
	l := machlock.NewSimpleLock(machlock.WithSpinThenPark(32))
	if got := l.Algorithm().String(); got != "adaptive" {
		t.Fatalf("WithSpinThenPark built a %q simple lock, want adaptive", got)
	}
	cl := machlock.NewLock(machlock.WithSpinThenPark(32))
	if !cl.CanSleep() {
		t.Fatal("WithSpinThenPark complex lock cannot sleep (parking is sleeping)")
	}
}

// TestAlgorithmStrings pins the report labels the shootout and lockstat
// sweeps key on.
func TestAlgorithmStrings(t *testing.T) {
	want := map[machlock.Algorithm]string{
		machlock.Default:  "default",
		machlock.TAS:      "tas",
		machlock.TTAS:     "ttas",
		machlock.Queue:    "queue",
		machlock.Cohort:   "cohort",
		machlock.Adaptive: "adaptive",
	}
	for a, s := range want {
		if a.String() != s {
			t.Fatalf("Algorithm(%d).String() = %q, want %q", int(a), a.String(), s)
		}
	}
}

// feedClass synthesizes a contention profile: total acquisitions, of
// which contended waited waitNs each and held holdNs.
func feedClass(c *trace.Class, total, contended int, waitNs, holdNs int64) {
	for i := 0; i < total; i++ {
		if i < contended {
			c.Acquired(true, waitNs)
		} else {
			c.Acquired(false, 0)
		}
		c.Released(holdNs)
	}
}

// TestRecommend drives the heuristic across its regimes with synthetic
// profiles.
func TestRecommend(t *testing.T) {
	trace.Enable()
	defer trace.Disable()
	cases := []struct {
		name             string
		total, contended int
		waitNs, holdNs   int64
		want             machlock.Algorithm
	}{
		{"nil-class", 0, 0, 0, 0, machlock.Default},
		{"too-few-samples", 100, 90, 1 << 20, 1 << 20, machlock.Default},
		{"uncontended", 10000, 100, 1000, 1000, machlock.Default},
		{"long-waits-park", 10000, 2000, 400_000, 1000, machlock.Adaptive},
		// Hold/wait quantiles come from a log-bucketed histogram (powers
		// of two), so pick values whose bucket floor still clears the
		// Recommend thresholds: 60µs holds floor to 32768ns ≥ 20µs.
		{"heavy-long-holds-cohort", 10000, 5000, 50_000, 60_000, machlock.Cohort},
		{"contended-short-queue", 10000, 2000, 5_000, 1_000, machlock.Queue},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if tc.name == "nil-class" {
				if got := machlock.Recommend(nil); got != machlock.Default {
					t.Fatalf("Recommend(nil) = %v, want Default", got)
				}
				return
			}
			c := trace.NewClass("bench", "rec."+tc.name, trace.KindSpin)
			feedClass(c, tc.total, tc.contended, tc.waitNs, tc.holdNs)
			if got := machlock.Recommend(c); got != tc.want {
				t.Fatalf("Recommend(%s) = %v, want %v (profile %+v)",
					tc.name, got, tc.want, c.Snapshot())
			}
		})
	}
}

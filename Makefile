GO ?= go

.PHONY: all build vet govet machvet test race sim fuzz-smoke bench bench-smoke bench-arsenal locktrace lockmon mon-smoke machd machd-smoke machd-lockgraph lockcover lockcover-check

all: vet build test

build:
	$(GO) build ./...

# Standard go vet plus machvet, the repo's own locking-discipline checker
# (internal/analysis): holdblock, lockorder, unlockpath, refdiscipline,
# deprecated, atomicity, sleepwake. Findings fail the build. `vet` is the
# one entry point (CI runs exactly this target); govet/machvet split the
# two halves for local iteration without duplicating either invocation.
vet: govet machvet

govet:
	$(GO) vet ./...

machvet:
	$(GO) run ./cmd/machvet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Deterministic schedule exploration (internal/machsim): the TestSim*
# suites run every protocol under seeded-random walks and bounded-
# preemption DFS with fixed seeds and budgets, so two consecutive runs
# explore byte-identical schedules. Also run in CI (before the -race
# tests), publishing sim-coverage.out as a job artifact. Reproduce a
# reported failure with MACHSIM_SEED=<seed> or machsim.Replay(schedule).
# The MACHLOCK_LOCKGRAPH prefix makes the traced packages also dump the
# lock-order edges they observed (lockgraph-dynamic-kern.json), feeding
# the `make lockcover` cross-check.
sim:
	MACHLOCK_LOCKGRAPH=$(CURDIR)/lockgraph-dynamic $(GO) test -run 'TestSim' \
		-coverprofile=sim-coverage.out \
		-coverpkg=./internal/... \
		./internal/machsim/ ./internal/machsim/scenarios/ ./internal/core/... \
		./internal/kern/ ./internal/sched/ ./internal/pmap/ ./internal/ipc/

# Seed-corpus pass over the machsim fuzz targets (cxlock option combos,
# refcount clone/release sequences, engine-found replay schedules). For a
# real fuzzing session:
#   go test ./internal/core/cxlock/ -run '^$$' -fuzz FuzzSimCxlockOptions
fuzz-smoke:
	$(GO) test -run 'FuzzSim' ./internal/core/cxlock/ ./internal/core/refcount/ ./internal/machsim/

# Experiment benchmarks (E1-E13) plus the uncontended fast-path pairs
# that pin the observability layer's disabled-tracing overhead.
bench:
	$(GO) test -bench . -benchmem ./...

# One-iteration benchmark pass (also run in CI): catches bit-rot in the
# uncontended fast-path benchmarks without paying for a full bench run.
bench-smoke:
	$(GO) test -bench=BenchmarkUncontended -benchtime=1x -run='^$$' .

# Arsenal shootout smoke (also run in CI): the per-algorithm uncontended
# pairs, the E14 contended sweep across every machlock.Algorithm, and the
# deterministic E14 claims test (queue/cohort beat TTAS at 16 CPUs,
# cohort wins cross-cell locality, adaptive actually parks).
bench-arsenal:
	$(GO) test -bench='BenchmarkUncontended(Spin$$|Queue|Cohort|Adaptive|Facade)|BenchmarkE14' \
		-benchtime=100x -run='^$$' .
	$(GO) test -run 'TestClaimE14' -count=1 ./internal/experiments/

locktrace:
	$(GO) run ./cmd/locktrace

# Run the continuous monitor with live workloads and the HTTP surface.
lockmon:
	$(GO) run ./cmd/lockmon

# Monitor smoke test (also run in CI): starts the monitor on an ephemeral
# port, injects the vm_map_pageable-style deadlock, probes every
# /debug/machlock/ endpoint, and asserts the incident capture and a
# non-empty Prometheus scrape.
mon-smoke:
	$(GO) run ./cmd/lockmon -smoke -threads 4 -ops 200

# Run the machd daemon (serve mode; ^C to stop). See cmd/machd for load
# mode: machd -load -duration 60s -rate 2000 -mix default -bench BENCH_machd.json
machd:
	$(GO) run ./cmd/machd -rpc 127.0.0.1:7207 -http 127.0.0.1:7208

# machd smoke test (also run in CI): boots the daemon on ephemeral ports,
# drives four distinct scenario mixes over real TCP sockets, scrapes
# /debug/machlock/metrics, and asserts the SLO quantiles are populated,
# the combined exposition carries the machlock_* and machd_* families,
# zero incidents were filed, and BENCH_machd.json validates. This run is
# measurement-clean — the trajectory must stay comparable across PRs —
# so the lock-graph collector (which perturbs spin-lock hold times) gets
# its own smoke below.
machd-smoke:
	$(GO) run ./cmd/machd -smoke -bench BENCH_machd.json

# Same four mixes with the lock-order collector enabled, dumping the
# observed class edges through the real /debug/machlock/lockgraph
# endpoint. Its bench report goes to a scratch file: collector-on numbers
# are not comparable with the committed trajectory.
machd-lockgraph:
	$(GO) run ./cmd/machd -smoke -bench lockgraph-bench-scratch.json -lockgraph lockgraph-dynamic-machd.json

# Static-vs-dynamic lock-graph cross-check. `machvet -graph` proves the
# whole-program class acquisition order; the sim and machd-lockgraph runs
# record what actually nested at runtime. Any dynamic-only edge is an
# analysis soundness hole and fails the target; static coverage below the
# committed baseline (lockgraph-baseline.txt) fails too. The full target
# regenerates both sides; lockcover-check just diffs what is on disk
# (CI runs the pieces separately so the artifacts upload individually).
lockcover: sim machd-lockgraph lockcover-check

lockcover-check:
	$(GO) run ./cmd/machvet -graph lockgraph-static.json ./...
	$(GO) run ./cmd/machvet -diff -mincover $$(cat lockgraph-baseline.txt) \
		lockgraph-static.json lockgraph-dynamic-machd.json lockgraph-dynamic-kern.json \
		> lockgraph-coverage.txt; st=$$?; cat lockgraph-coverage.txt; exit $$st

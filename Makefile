GO ?= go

.PHONY: all build vet test race bench locktrace

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Experiment benchmarks (E1-E12) plus the uncontended fast-path pairs
# that pin the observability layer's disabled-tracing overhead.
bench:
	$(GO) test -bench . -benchmem ./...

locktrace:
	$(GO) run ./cmd/locktrace

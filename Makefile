GO ?= go

.PHONY: all build vet test race bench bench-smoke locktrace

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Experiment benchmarks (E1-E13) plus the uncontended fast-path pairs
# that pin the observability layer's disabled-tracing overhead.
bench:
	$(GO) test -bench . -benchmem ./...

# One-iteration benchmark pass (also run in CI): catches bit-rot in the
# uncontended fast-path benchmarks without paying for a full bench run.
bench-smoke:
	$(GO) test -bench=BenchmarkUncontended -benchtime=1x -run='^$$' .

locktrace:
	$(GO) run ./cmd/locktrace

// Command deadlockdemo reproduces the two deadlocks analyzed in the paper,
// detects each one at runtime, and then resolves it so the demonstration
// can narrate what happened:
//
//  1. The Section 7 interrupt-barrier deadlock: a TLB shootdown initiated
//     against a processor that is spinning for a pmap lock with interrupts
//     disabled. With the paper's exemption logic the barrier completes;
//     with it disabled, the barrier hangs.
//
//  2. The Section 7.1 vm_map_pageable deadlock: wiring memory through a
//     recursive read lock while the only way to free memory needs the
//     write lock on the same map.
//
// Both demos are deterministic; each prints the cast of processors/threads
// and the dependency cycle it observed.
package main

import (
	"fmt"
	"strings"
	"time"

	"machlock/internal/deadlock"
	"machlock/internal/hw"
	"machlock/internal/sched"
	"machlock/internal/tlbsim"
	"machlock/internal/vm"
)

func main() {
	fmt.Println("=== Demo 1: interrupt-barrier deadlock (Section 7) ===")
	shootdownDemo(true)
	shootdownDemo(false)

	fmt.Println("=== Demo 2: vm_map_pageable recursive-lock deadlock (Section 7.1) ===")
	pageableDemo()
}

func shootdownDemo(exemption bool) {
	m := hw.New(3)
	s := tlbsim.New(m)
	s.ExemptionDisabled = !exemption

	// Processor 2 is "attempting to acquire a pmap lock with interrupts
	// disabled": it raises splvm and goes silent.
	p2 := m.CPU(1)
	prev := s.ExemptBegin(p2)

	// Processor 1 polls normally.
	stop := make(chan struct{})
	pollerDone := make(chan struct{})
	go func() {
		defer close(pollerDone)
		for {
			select {
			case <-stop:
				return
			default:
				m.CPU(2).Checkpoint()
			}
		}
	}()

	fmt.Printf("  exemption logic %-8v: processor 0 initiates a shootdown; processor 1 is spinning at splvm...\n",
		map[bool]string{true: "ENABLED", false: "DISABLED"}[exemption])
	start := time.Now()
	ok := s.TryShootdown(m.CPU(0), 0x1000, 2_000_000)
	if ok {
		fmt.Printf("    -> barrier completed in %v; exempted processors: %d (update left pending for them)\n",
			time.Since(start).Round(time.Microsecond), s.Stats().Exemptions)
	} else {
		fmt.Println("    -> DEADLOCK: processor 0 waits for processor 1's interrupt acknowledgment;")
		fmt.Println("       processor 1 will not take interrupts before its pmap lock spin ends;")
		fmt.Println("       (resolving by re-enabling interrupts on processor 1)")
	}
	s.ExemptEnd(p2, prev) // lowers SPL: pending IPI drains here
	fmt.Printf("    -> processor 1 re-enabled interrupts; pending TLB updates applied: %d total\n\n",
		s.Stats().UpdatesApplied)
	close(stop)
	<-pollerDone
}

func pageableDemo() {
	// Watch the locks through the wait-for-graph tracker so the stall can
	// be shown as actual holds and waits, not just a timeout.
	tracker := deadlock.NewTracker()
	tracker.Install()
	defer tracker.Uninstall()

	pool := vm.NewPool(4)
	m := vm.NewMap(pool)
	hog := vm.NewObject(pool, 4)    // pageable memory that exhausts the pool
	target := vm.NewObject(pool, 4) // the region vm_map_pageable wires
	boss := sched.New("boss")
	must(m.Allocate(boss, 0, 4, hog, 0))
	must(m.Allocate(boss, 10, 4, target, 0))
	for va := uint64(0); va < 4; va++ {
		must(m.Fault(boss, va, false))
	}
	pd := vm.NewPageout(pool)
	pd.AddMap(m)
	defer pd.Stop()
	tracker.Name(m.DebugLock(), "task-map-lock")

	fmt.Println("  pool: 4 pages, all resident and reclaimable; wiring 4 new pages via the RECURSIVE protocol")
	done := make(chan struct{})
	wirer := sched.Go("vm_map_pageable", func(self *sched.Thread) {
		must(m.WireRecursive(self, 10, 14))
		close(done)
	})
	for m.ShortageWaits() == 0 {
		time.Sleep(time.Millisecond)
	}
	pd.Start() // the daemon arrives to find the recursive read hold in place
	select {
	case <-done:
		fmt.Println("    -> unexpectedly completed (deadlock not reproduced)")
	case <-time.After(500 * time.Millisecond):
		fmt.Println("    -> DEADLOCK detected:")
		fmt.Println("       vm_map_pageable holds a recursive READ lock on the map and waits for free memory;")
		fmt.Println("       the pageout daemon needs the map's WRITE lock to reclaim the 4 unwired pages;")
		fmt.Printf("       daemon reclaim count while stalled: %d\n", pd.Reclaims())
		if snap := tracker.Snapshot(); snap != "" {
			fmt.Println("       lock tracker view of the stall:")
			for _, line := range strings.Split(strings.TrimSpace(snap), "\n") {
				fmt.Println("         " + line)
			}
		}
		fmt.Println("       (resolving by adding emergency pages, as a watchdog reboot would)")
		pool.EmergencyAdd(4)
		<-done
	}
	wirer.Join()
	fmt.Printf("    -> wire completed; target resident pages: %d\n\n", target.ResidentPages())

	// And the rewrite, same pressure.
	pool2 := vm.NewPool(4)
	m2 := vm.NewMap(pool2)
	hog2 := vm.NewObject(pool2, 4)
	target2 := vm.NewObject(pool2, 4)
	must(m2.Allocate(boss, 0, 4, hog2, 0))
	must(m2.Allocate(boss, 10, 4, target2, 0))
	for va := uint64(0); va < 4; va++ {
		must(m2.Fault(boss, va, false))
	}
	pd2 := vm.NewPageout(pool2)
	pd2.AddMap(m2)
	pd2.Start()
	defer pd2.Stop()

	fmt.Println("  same scenario via the REWRITTEN protocol (no recursive lock)")
	start := time.Now()
	w2 := sched.Go("vm_map_pageable", func(self *sched.Thread) {
		must(m2.Wire(self, 10, 14))
	})
	w2.Join()
	fmt.Printf("    -> completed unaided in %v; daemon reclaimed %d pages between faults\n",
		time.Since(start).Round(time.Millisecond), pd2.Reclaims())
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

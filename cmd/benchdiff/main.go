// Command benchdiff gates consecutive machlock-bench/v1 trajectories: it
// compares two reports scenario-by-scenario and exits nonzero when a p50
// or p99 latency grew past the tolerance ratio, or when errors appeared in
// a previously clean scenario. CI runs it with the committed
// BENCH_machd.json as the baseline and the smoke's fresh report as the
// candidate:
//
//	benchdiff [-tol 4.0] old.json new.json
//
// The default tolerance of 4x allows two power-of-two histogram buckets of
// drift — the measurement stack's stated accuracy on a shared CI box —
// while still catching the order-of-magnitude collapses a locking
// regression produces.
package main

import (
	"flag"
	"fmt"
	"os"

	"machlock/internal/benchjson"
)

func main() {
	tol := flag.Float64("tol", 4.0, "latency growth ratio allowed before a scenario fails")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchdiff [-tol ratio] old.json new.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}

	old, err := benchjson.ReadFile(flag.Arg(0))
	if err != nil {
		fatalf("benchdiff: %v", err)
	}
	cur, err := benchjson.ReadFile(flag.Arg(1))
	if err != nil {
		fatalf("benchdiff: %v", err)
	}
	if err := cur.Validate(); err != nil {
		fatalf("benchdiff: candidate: %v", err)
	}

	regs := benchjson.Compare(old, cur, *tol)
	if len(regs) == 0 {
		fmt.Printf("benchdiff: OK — %d scenarios within %.1fx of %s\n",
			len(cur.Scenarios), *tol, flag.Arg(0))
		return
	}
	for _, r := range regs {
		fmt.Printf("benchdiff: REGRESSION: %s\n", r)
	}
	os.Exit(1)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}

// Command machbench runs the machlock experiment suite — one experiment
// per claim in the paper's text, as indexed in DESIGN.md — and prints the
// tables recorded in EXPERIMENTS.md.
//
// Usage:
//
//	machbench [-quick] [-list] [e1 e2 ... | all]
//
// With no experiment arguments every experiment runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"machlock/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "run with reduced iteration counts")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: machbench [-quick] [-list] [experiment-ids...]\n\n")
		fmt.Fprintf(os.Stderr, "Reproduces the evaluation of \"Locking and Reference Counting in the\nMach Kernel\" (Black et al., ICPP 1991). Run with no arguments for the\nfull suite.\n\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	ids := flag.Args()
	var runs []experiments.Experiment
	if len(ids) == 0 || (len(ids) == 1 && ids[0] == "all") {
		runs = experiments.All()
	} else {
		for _, id := range ids {
			e, ok := experiments.Lookup(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "machbench: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			runs = append(runs, e)
		}
	}

	cfg := experiments.Config{Quick: *quick}
	fmt.Printf("machbench: %d experiment(s), quick=%v\n\n", len(runs), *quick)
	start := time.Now()
	for _, e := range runs {
		t0 := time.Now()
		res := e.Run(cfg)
		if _, err := res.WriteTo(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "machbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %v]\n\n", e.ID, time.Since(t0).Round(time.Millisecond))
	}
	fmt.Printf("machbench: done in %v\n", time.Since(start).Round(time.Millisecond))
}

// Command machbench runs the machlock experiment suite — one experiment
// per claim in the paper's text, as indexed in DESIGN.md — and prints the
// tables recorded in EXPERIMENTS.md.
//
// Usage:
//
//	machbench [-quick] [-list] [e1 e2 ... | all]
//
// With no experiment arguments every experiment runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"machlock/internal/benchjson"
	"machlock/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "run with reduced iteration counts")
	list := flag.Bool("list", false, "list experiments and exit")
	jsonPath := flag.String("json", "", "also write a machlock-bench/v1 report here (- for stdout)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: machbench [-quick] [-list] [experiment-ids...]\n\n")
		fmt.Fprintf(os.Stderr, "Reproduces the evaluation of \"Locking and Reference Counting in the\nMach Kernel\" (Black et al., ICPP 1991). Run with no arguments for the\nfull suite.\n\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	ids := flag.Args()
	var runs []experiments.Experiment
	if len(ids) == 0 || (len(ids) == 1 && ids[0] == "all") {
		runs = experiments.All()
	} else {
		for _, id := range ids {
			e, ok := experiments.Lookup(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "machbench: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			runs = append(runs, e)
		}
	}

	cfg := experiments.Config{Quick: *quick}
	fmt.Printf("machbench: %d experiment(s), quick=%v\n\n", len(runs), *quick)
	report := benchjson.New("machbench", "machbench", runtime.GOMAXPROCS(0))
	if *quick {
		report.Notes = append(report.Notes, "quick mode: reduced iteration counts")
	}
	start := time.Now()
	for _, e := range runs {
		t0 := time.Now()
		res := e.Run(cfg)
		if _, err := res.WriteTo(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "machbench: %v\n", err)
			os.Exit(1)
		}
		elapsed := time.Since(t0)
		fmt.Printf("[%s completed in %v]\n\n", e.ID, elapsed.Round(time.Millisecond))

		// One benchjson scenario per experiment: the rendered tables are
		// the payload, the per-experiment wall time the only number the
		// runner itself adds.
		sc := &benchjson.Scenario{Notes: append([]string{"claim: " + res.Claim}, res.Notes...)}
		for _, tbl := range res.Tables {
			sc.Tables = append(sc.Tables, tbl.String())
		}
		sc.P50Ns = elapsed.Nanoseconds() // wall time, all three quantile slots
		sc.P90Ns = elapsed.Nanoseconds()
		sc.P99Ns = elapsed.Nanoseconds()
		report.Scenarios[res.ID] = sc
	}
	total := time.Since(start)
	fmt.Printf("machbench: done in %v\n", total.Round(time.Millisecond))

	if *jsonPath != "" {
		report.DurationSec = total.Seconds()
		if err := report.Validate(); err != nil {
			fmt.Fprintf(os.Stderr, "machbench: %v\n", err)
			os.Exit(1)
		}
		if err := benchjson.WriteFile(*jsonPath, report); err != nil {
			fmt.Fprintf(os.Stderr, "machbench: %v\n", err)
			os.Exit(1)
		}
		if *jsonPath != "-" {
			fmt.Printf("machbench: wrote %s\n", *jsonPath)
		}
	}
}

// Command locktrace demonstrates the unified lock/refcount observability
// layer end to end: it enables tracing, drives concurrent workloads
// through the vm, ipc, and zalloc subsystems, and prints the ranked
// "hottest locks" contention profile followed by the tail of the
// flight-recorder event trace — the report Appendix A.1 of the paper says
// the statistics-gathering lock variants exist to produce.
//
// Usage:
//
//	locktrace [-threads N] [-ops N] [-format text|csv|vars] [-events N]
//	          [-pprof FILE [-pprof-kind waits|holds|blame]] [-timeline FILE]
//	          [-url http://host:port]
//
// With -pprof and/or -timeline the tool also exports profiler artifacts:
// a gzipped pprof profile.proto (feed it to go tool pprof) and the flight
// recorder as Chrome trace-event JSON (load into ui.perfetto.dev). By
// default they come from the in-process run; with -url they are fetched
// from a running monitor's debug endpoints instead, and no workload runs.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"

	"machlock/internal/core/splock"
	"machlock/internal/ipc"
	"machlock/internal/opspan"
	"machlock/internal/sched"
	"machlock/internal/trace"
	"machlock/internal/vm"
	"machlock/internal/zalloc"
)

func main() {
	threads := flag.Int("threads", 8, "concurrent threads per workload")
	ops := flag.Int("ops", 2000, "operations per thread")
	format := flag.String("format", "text", "profile output: text, csv, or vars")
	events := flag.Int("events", 20, "flight-recorder events to dump (0 disables)")
	pprofOut := flag.String("pprof", "", "write a pprof profile (gzipped profile.proto) to this file")
	pprofKind := flag.String("pprof-kind", "waits", "which site profile -pprof exports: waits, holds, or blame")
	timelineOut := flag.String("timeline", "", "write the flight recorder as Chrome trace-event JSON to this file")
	baseURL := flag.String("url", "", "fetch -pprof/-timeline from a running monitor at this base URL instead of running workloads")
	flag.Parse()

	var kind trace.SiteKind
	switch *pprofKind {
	case "waits":
		kind = trace.SiteWaits
	case "holds":
		kind = trace.SiteHolds
	case "blame":
		kind = trace.SiteBlame
	default:
		fmt.Fprintf(os.Stderr, "locktrace: unknown -pprof-kind %q\n", *pprofKind)
		os.Exit(2)
	}

	if *baseURL != "" {
		// Remote mode: pull the artifacts from a live monitor and exit.
		if *pprofOut == "" && *timelineOut == "" {
			fmt.Fprintln(os.Stderr, "locktrace: -url requires -pprof and/or -timeline")
			os.Exit(2)
		}
		if *pprofOut != "" {
			fetch(*baseURL+"/debug/machlock/pprof/"+*pprofKind, *pprofOut)
		}
		if *timelineOut != "" {
			fetch(*baseURL+"/debug/machlock/timeline", *timelineOut)
		}
		return
	}

	trace.Enable()
	opspan.Install() // credit in-span lock waits (vm faults, ipc sends)
	runVM(*threads, *ops)
	runIPC(*threads, *ops)
	runZalloc(*threads, *ops)
	runSpin(*threads, *ops)
	opspan.Uninstall()
	trace.Disable()

	if *pprofOut != "" {
		export(*pprofOut, func(w io.Writer) error { return trace.WritePprof(w, kind) })
	}
	if *timelineOut != "" {
		export(*timelineOut, func(w io.Writer) error { return trace.WriteTimeline(w, trace.Events(0)) })
	}

	ranked := trace.Ranked()
	var err error
	switch *format {
	case "text":
		err = trace.WriteText(os.Stdout, ranked)
	case "csv":
		err = trace.WriteCSV(os.Stdout, ranked)
	case "vars":
		err = trace.WriteVars(os.Stdout, ranked)
	default:
		fmt.Fprintf(os.Stderr, "locktrace: unknown format %q\n", *format)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "locktrace: %v\n", err)
		os.Exit(1)
	}

	if *events > 0 {
		evs := trace.Events(*events)
		fmt.Printf("\nflight recorder: last %d of the retained events\n", len(evs))
		if err := trace.WriteEvents(os.Stdout, evs); err != nil {
			fmt.Fprintf(os.Stderr, "locktrace: %v\n", err)
			os.Exit(1)
		}
	}
}

// export writes one artifact to path via the given writer.
func export(path string, write func(io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "locktrace: %v\n", err)
		os.Exit(1)
	}
	if err := write(f); err == nil {
		err = f.Close()
	} else {
		f.Close()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "locktrace: writing %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "locktrace: wrote %s\n", path)
}

// fetch downloads one monitor debug endpoint to path.
func fetch(url, path string) {
	resp, err := http.Get(url)
	if err != nil {
		fmt.Fprintf(os.Stderr, "locktrace: %v\n", err)
		os.Exit(1)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "locktrace: GET %s: %s\n", url, resp.Status)
		os.Exit(1)
	}
	export(path, func(w io.Writer) error {
		_, err := io.Copy(w, resp.Body)
		return err
	})
}

// runVM faults pages of a shared map from many threads: contention on the
// map's complex lock (read-mode faults), the object's simple lock, and
// reference traffic as each fault takes and drops object references.
func runVM(threads, ops int) {
	pool := vm.NewPool(64)
	m := vm.NewMap(pool)
	obj := vm.NewObject(pool, 32)
	setup := sched.Go("vm-setup", func(self *sched.Thread) {
		if err := m.Allocate(self, 0, 32, obj, 0); err != nil {
			panic(err)
		}
	})
	setup.Join()

	var ths []*sched.Thread
	for i := 0; i < threads; i++ {
		ths = append(ths, sched.Go(fmt.Sprintf("vm-%d", i), func(self *sched.Thread) {
			for n := 0; n < ops; n++ {
				if err := m.Fault(self, uint64(n%32), false); err != nil {
					panic(err)
				}
				if n%8 == 0 {
					m.Reference()
					m.Release(self)
				}
			}
		}))
	}
	for _, th := range ths {
		th.Join()
	}
	cleanup := sched.Go("vm-cleanup", func(self *sched.Thread) { m.Release(self) })
	cleanup.Join()
}

// runIPC hammers a shared name space and a shared port: translations
// clone and release port references under the space lock; sends and
// receives contend on the port's object lock.
func runIPC(threads, ops int) {
	space := ipc.NewSpace()
	port := ipc.NewPort("locktrace")
	name := space.Insert(nil, port)

	var ths []*sched.Thread
	for i := 0; i < threads; i++ {
		ths = append(ths, sched.Go(fmt.Sprintf("ipc-%d", i), func(self *sched.Thread) {
			for n := 0; n < ops; n++ {
				p, err := space.Translate(self, name)
				if err != nil {
					panic(err)
				}
				if n%4 == 0 {
					msg := ipc.NewMessage(p, nil, n)
					if err := p.SendFrom(self, msg); err != nil {
						msg.Destroy()
					} else if got, err := p.Receive(self); err == nil {
						got.Destroy()
					}
				}
				p.Release(nil)
			}
		}))
	}
	for _, th := range ths {
		th.Join()
	}
	space.DestroyAll(nil)
	port.Destroy()
}

// runZalloc cycles elements through a small zone from many threads,
// contending on the zone's simple lock and exercising the blocking
// allocate path when the zone runs dry.
func runZalloc(threads, ops int) {
	zone := zalloc.NewZone[int]("locktrace", threads*2, nil)
	var ths []*sched.Thread
	for i := 0; i < threads; i++ {
		ths = append(ths, sched.Go(fmt.Sprintf("zalloc-%d", i), func(self *sched.Thread) {
			for n := 0; n < ops; n++ {
				el := zone.Alloc(self)
				zone.Free(el)
			}
		}))
	}
	for _, th := range ths {
		th.Join()
	}
}

// runSpin drives a bare named statistics spin lock, so the report also
// shows the raw splock layer next to the subsystems built on it.
func runSpin(threads, ops int) {
	l := splock.NewStat("locktrace.spin")
	var ths []*sched.Thread
	for i := 0; i < threads; i++ {
		ths = append(ths, sched.Go(fmt.Sprintf("spin-%d", i), func(self *sched.Thread) {
			for n := 0; n < ops; n++ {
				l.Lock()
				l.Unlock()
			}
		}))
	}
	for _, th := range ths {
		th.Join()
	}
}

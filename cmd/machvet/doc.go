// Command machvet statically enforces the locking and reference-counting
// discipline this repository implements from "Locking and Reference
// Counting in the Mach Kernel". It is a multichecker in the style of go
// vet: it loads every package named by its patterns (default ./..., from
// the module root), runs seven passes over each, and exits non-zero if
// any diagnostic survives.
//
// The passes, and the paper rule each one encodes:
//
//	holdblock      Simple (spin) locks are never held across an operation
//	               that can block: complex-lock acquisition, reference
//	               release (the last reference runs a destructor),
//	               scheduler waits, channel operations, and calls that
//	               transitively block. Call-graph may-block summaries flow
//	               between packages as facts, including "release-before-
//	               block" sets so protocols that drop a caller-visible
//	               lock before parking (cxlock's wait(), the
//	               sched.ThreadSleep unlock-closure idiom) don't flag.
//
//	lockorder      Locks are acquired in a single global order. Declared
//	               splock.Hierarchy ranks are checked exactly like the
//	               runtime checker, and every nested acquisition records a
//	               directed edge between lock classes; an inversion of an
//	               edge seen anywhere else reports both sites. TryLock and
//	               splock.LockPair are exempt: they are the paper's
//	               sanctioned escapes (backout protocol, address-ordered
//	               same-class pairs).
//
//	unlockpath     Every acquisition reaches a release on every return
//	               path, unless annotated //machlock:holds (wrappers and
//	               lock-handoff protocols). Also reports malformed
//	               machlock:/machvet: annotations, which would otherwise
//	               fail open.
//
//	refdiscipline  Deactivatable objects (types embedding object.Object)
//	               need a reference to be (re)locked, and values loaded
//	               from them before an unlock/relock window are stale
//	               after it.
//
//	atomicity      The unlock/relock generalization for ordinary locked
//	               state: a value loaded under a hold is stale after that
//	               lock is dropped and retaken, and a boolean gate field
//	               tested under the first hold (pset's draining flag) does
//	               not authorize mutating the structure under the second —
//	               re-read it first. The paper's customized-lock protocol
//	               is sanctioned: setting an in-progress flag under the
//	               first hold claims the window.
//
//	sleepwake      The assert_wait/thread_block window discipline: the
//	               wait must be asserted BEFORE the condition's lock is
//	               released (or a wakeup in the gap is lost forever), no
//	               lock held at the assert may survive to the block, and a
//	               second assert without an intervening block or
//	               clear_wait is the runtime's "already waiting" panic.
//	               sched.ThreadSleep's unlock closure is the sanctioned
//	               atomic form.
//
//	deprecated     Superseded constructors and mutators (cxlock.New/Init,
//	               cxlock.SetObserver, splock.NewSim), with the
//	               replacement named in the diagnostic.
//
// # Lock-graph mode (-graph)
//
//	machvet -graph static.json ./...
//
// Instead of reporting diagnostics, -graph walks every function with the
// same lockstate engine and emits the whole-program lock-order graph in
// the machlock-lockgraph/v1 schema (internal/lockgraph): nodes are
// canonical lock classes, edges are held→acquired nestings with the code
// sites that prove them, may-block flags, and try/upgrade markers.
// Interprocedural nestings (a call made with locks held whose callee
// acquires more) are resolved through the call graph.
//
// # Cross-checking mode (-diff)
//
//	machvet -diff [-mincover pct] static.json dynamic.json [dynamic2.json ...]
//
// -diff compares the static graph against one or more dynamic graphs
// recorded at runtime (the trace collector behind machd -lockgraph and
// MACHLOCK_LOCKGRAPH=prefix go test). Multiple dynamic graphs are merged
// first. Every dynamic-only edge — a nesting that actually happened but
// the analysis never proved — is a soundness hole and fails the run.
// Static-only edges are coverage gaps (reported with their proving
// sites); -mincover fails the run when matched coverage drops below the
// given percentage. Try-only static edges are exempt from coverage (the
// backout protocol nests opportunistically), and static edges between
// classes the runtime never observed are excluded rather than counted
// against coverage. `make lockcover` regenerates both sides and runs the
// diff against the committed baseline (lockgraph-baseline.txt); CI runs
// the same pieces and uploads all three JSON artifacts.
//
// # Suppressions
//
// A finding that documents intentional protocol is suppressed in place:
//
//	//machvet:allow holdblock — refcount under own lock is the object protocol
//	o.refs.Release()
//
// The annotation names one or more passes and covers its own line (as a
// trailing comment) or the line below (as a whole-line comment). A lock
// acquisition whose hold intentionally escapes the function is annotated
// //machlock:holds, which unlockpath honors. Unknown pass names or verbs
// are themselves reported — a typo'd suppression never fails open.
//
// # Caching
//
// machvet has no fact files on disk: analyzer facts (may-block summaries,
// lock-order edges) live in memory for one run, recomputed each time.
// What *is* cached is everything expensive underneath: packages are
// listed with `go list -export`, so dependency type information comes
// from the go build cache's export data, and only the packages under
// analysis are type-checked from source. A warm run over this repository
// takes well under a second; there is no cache to invalidate or clean.
package main

package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"machlock/internal/analysis/framework"
	"machlock/internal/analysis/passes"
)

func main() {
	list := flag.Bool("list", false, "list the passes and exit")
	only := flag.String("passes", "", "comma-separated subset of passes to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: machvet [-list] [-passes p1,p2] [packages]\n\n"+
			"machvet checks the repository's locking discipline; see cmd/machvet/doc.go.\n"+
			"Package patterns default to ./... and resolve from the module root.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	suite := passes.All()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		byName := map[string]*framework.Analyzer{}
		for _, a := range suite {
			byName[a.Name] = a
		}
		suite = nil
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fatalf("machvet: unknown pass %q (try -list)", name)
			}
			suite = append(suite, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fatalf("machvet: %v", err)
	}
	root, err := framework.ModuleRoot(wd)
	if err != nil {
		fatalf("machvet: %v", err)
	}
	ld, err := framework.NewLoader(root, patterns...)
	if err != nil {
		fatalf("machvet: %v", err)
	}

	// One fact store for the whole run; Roots() is in dependency order, so
	// every pass sees its dependencies' facts (holdblock's may-block
	// summaries, lockorder's edge sets) before it needs them.
	facts := framework.NewFactStore()
	exit := 0
	for _, path := range ld.Roots() {
		pkg, err := ld.Load(path)
		if err != nil {
			fatalf("machvet: %v", err)
		}
		diags, err := framework.RunAnalyzers(pkg, suite, facts)
		if err != nil {
			fatalf("machvet: %v", err)
		}
		for _, d := range diags {
			fmt.Printf("%s: [%s] %s\n", pkg.Fset.Position(d.Pos), d.Analyzer.Name, d.Message)
			exit = 1
		}
	}
	os.Exit(exit)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}

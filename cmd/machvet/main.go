package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"machlock/internal/analysis/framework"
	"machlock/internal/analysis/passes"
	"machlock/internal/analysis/passes/graph"
	"machlock/internal/lockgraph"
)

func main() {
	list := flag.Bool("list", false, "list the passes and exit")
	only := flag.String("passes", "", "comma-separated subset of passes to run (default: all)")
	graphOut := flag.String("graph", "", "emit the static machlock-lockgraph/v1 graph to this file (\"-\" for stdout) instead of reporting diagnostics")
	diffMode := flag.Bool("diff", false, "cross-check graphs: machvet -diff static.json dynamic.json [dynamic2.json ...]")
	minCover := flag.Float64("mincover", -1, "with -diff: fail unless static-edge coverage is at least this percentage")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: machvet [-list] [-passes p1,p2] [packages]\n"+
			"       machvet -graph out.json [packages]\n"+
			"       machvet -diff [-mincover pct] static.json dynamic.json [dynamic2.json ...]\n\n"+
			"machvet checks the repository's locking discipline; see cmd/machvet/doc.go.\n"+
			"Package patterns default to ./... and resolve from the module root.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *diffMode {
		runDiff(flag.Args(), *minCover)
		return
	}

	suite := passes.All()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *graphOut != "" {
		// Graph emission runs only the graph pass: it reports nothing and
		// accumulates edges across all loaded packages.
		suite = []*framework.Analyzer{graph.Analyzer}
	} else if *only != "" {
		byName := map[string]*framework.Analyzer{}
		for _, a := range suite {
			byName[a.Name] = a
		}
		suite = nil
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fatalf("machvet: unknown pass %q (try -list)", name)
			}
			suite = append(suite, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fatalf("machvet: %v", err)
	}
	root, err := framework.ModuleRoot(wd)
	if err != nil {
		fatalf("machvet: %v", err)
	}
	ld, err := framework.NewLoader(root, patterns...)
	if err != nil {
		fatalf("machvet: %v", err)
	}

	// One fact store for the whole run; Roots() is in dependency order, so
	// every pass sees its dependencies' facts (holdblock's may-block
	// summaries, lockorder's edge sets) before it needs them.
	facts := framework.NewFactStore()
	if *graphOut != "" {
		graph.Reset()
	}
	exit := 0
	for _, path := range ld.Roots() {
		pkg, err := ld.Load(path)
		if err != nil {
			fatalf("machvet: %v", err)
		}
		diags, err := framework.RunAnalyzers(pkg, suite, facts)
		if err != nil {
			fatalf("machvet: %v", err)
		}
		for _, d := range diags {
			fmt.Printf("%s: [%s] %s\n", pkg.Fset.Position(d.Pos), d.Analyzer.Name, d.Message)
			exit = 1
		}
	}
	if *graphOut != "" {
		g := graph.Snapshot("machvet -graph " + strings.Join(patterns, " "))
		if err := lockgraph.WriteFile(*graphOut, g); err != nil {
			fatalf("machvet: %v", err)
		}
		fmt.Fprintf(os.Stderr, "machvet: wrote %d classes, %d edges to %s\n",
			len(g.Nodes), len(g.Edges), *graphOut)
	}
	os.Exit(exit)
}

// runDiff cross-checks one static graph against one or more dynamic dumps
// (merged). Exit 1 on any dynamic-only edge (analysis soundness hole) or,
// when -mincover is given, on coverage below the gate.
func runDiff(args []string, minCover float64) {
	if len(args) < 2 {
		fatalf("machvet: -diff needs a static graph and at least one dynamic graph")
	}
	static, err := lockgraph.ReadFile(args[0])
	if err != nil {
		fatalf("machvet: %v", err)
	}
	dynamic, err := lockgraph.ReadFile(args[1])
	if err != nil {
		fatalf("machvet: %v", err)
	}
	for _, path := range args[2:] {
		more, err := lockgraph.ReadFile(path)
		if err != nil {
			fatalf("machvet: %v", err)
		}
		dynamic.Merge(more)
	}
	res, err := lockgraph.Diff(static, dynamic)
	if err != nil {
		fatalf("machvet: %v", err)
	}
	res.Report(os.Stdout)
	exit := 0
	if !res.Sound() {
		fmt.Printf("FAIL: %d dynamic-only edge(s) — the runtime exercised orderings machvet cannot see\n", len(res.DynamicOnly))
		exit = 1
	}
	if minCover >= 0 && res.CoveragePct() < minCover {
		fmt.Printf("FAIL: coverage %.1f%% below the %.1f%% gate\n", res.CoveragePct(), minCover)
		exit = 1
	}
	os.Exit(exit)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}

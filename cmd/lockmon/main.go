// Command lockmon runs kernel workloads under the continuous monitor and
// serves the live debug/metrics surface over HTTP — the deployment shape
// the monitor is built for: always-on observation that captures incident
// evidence (cycles, holders, flight-recorder tail) the moment an anomaly
// happens, with no developer attached.
//
// It drives the vm, ipc, and zalloc workloads from cmd/locktrace under the
// watchdog, then injects a vm_map_pageable-style deadlock and shows the
// monitor catching it live. The paper's real Section 7.1 stall is a wait
// on MEMORY (not on a lock), which a wait-for-graph detector sees as only
// half a cycle; lockmon expresses the same shape as a pure lock cycle —
// the wiring thread holds the map lock for reading and needs the page-pool
// lock, while the pageout daemon holds the page-pool lock and needs the
// map lock for writing — so the watchdog can name the full cycle.
//
// Usage:
//
//	lockmon [-addr host:port] [-threads N] [-ops N] [-duration D]
//	lockmon -smoke        # self-check: ephemeral port, hit every endpoint
//	lockmon -smoke -pprof-out waits.pb.gz -timeline-out timeline.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"time"

	"machlock/internal/core/cxlock"
	"machlock/internal/ipc"
	"machlock/internal/monitor"
	"machlock/internal/sched"
	"machlock/internal/trace"
	"machlock/internal/vm"
	"machlock/internal/zalloc"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8723", "HTTP listen address")
	threads := flag.Int("threads", 4, "concurrent threads per workload")
	ops := flag.Int("ops", 500, "operations per workload thread")
	duration := flag.Duration("duration", 0, "exit after this long (0 = until interrupted)")
	inject := flag.Bool("inject-deadlock", true, "inject the vm_map_pageable-style lock cycle")
	smoke := flag.Bool("smoke", false, "self-check mode: ephemeral port, probe every endpoint, exit")
	pprofOut := flag.String("pprof-out", "", "smoke mode: save the scraped pprof wait profile here")
	timelineOut := flag.String("timeline-out", "", "smoke mode: save the scraped Perfetto timeline here")
	flag.Parse()

	mon := monitor.New(monitor.Config{
		Interval:          10 * time.Millisecond,
		DeadlockSamples:   3,
		DeadlockSampleGap: time.Millisecond,
		RefLeakLive:       1 << 20, // census sanity backstop, not expected to trip
	})
	mon.Start()
	defer mon.Stop()

	listen := *addr
	if *smoke {
		listen = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		fatalf("listen %s: %v", listen, err)
	}
	srv := &http.Server{Handler: mon.Handler()}
	go srv.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Printf("lockmon: monitor up, debug surface at %s/debug/machlock/\n", base)

	// Sample every hold/wait stack: lockmon is a demo and self-check, not a
	// hot kernel, so rich profiles beat the sampling discount — and the
	// smoke's pprof assertions stay deterministic.
	trace.SetStackSampling(1)

	fmt.Printf("lockmon: driving vm/ipc/zalloc workloads (%d threads x %d ops each)\n", *threads, *ops)
	runWorkloads(*threads, *ops)
	injectContention()

	if *inject {
		if !injectDeadlock(mon) {
			fatalf("injected deadlock was not captured")
		}
	}

	if *smoke {
		if err := smokeCheck(base, *inject); err != nil {
			fatalf("smoke check failed: %v", err)
		}
		if err := smokeArtifacts(base, *pprofOut, *timelineOut); err != nil {
			fatalf("smoke check failed: %v", err)
		}
		fmt.Println("lockmon: smoke check passed (all endpoints live, deadlock incident captured)")
		return
	}

	fmt.Println("lockmon: serving; scrape /debug/machlock/metrics or browse /debug/machlock/")
	if *duration > 0 {
		time.Sleep(*duration)
		return
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lockmon: "+format+"\n", args...)
	os.Exit(1)
}

// runWorkloads drives the locktrace workloads so the profiles, census, and
// flight recorder have real traffic behind them.
func runWorkloads(threads, ops int) {
	runVM(threads, ops)
	runIPC(threads, ops)
	runZalloc(threads, ops)
}

func runVM(threads, ops int) {
	pool := vm.NewPool(64)
	m := vm.NewMap(pool)
	obj := vm.NewObject(pool, 32)
	setup := sched.Go("vm-setup", func(self *sched.Thread) {
		if err := m.Allocate(self, 0, 32, obj, 0); err != nil {
			panic(err)
		}
	})
	setup.Join()
	var ths []*sched.Thread
	for i := 0; i < threads; i++ {
		ths = append(ths, sched.Go(fmt.Sprintf("vm-%d", i), func(self *sched.Thread) {
			for n := 0; n < ops; n++ {
				if err := m.Fault(self, uint64(n%32), false); err != nil {
					panic(err)
				}
				if n%8 == 0 {
					m.Reference()
					m.Release(self)
				}
			}
		}))
	}
	for _, th := range ths {
		th.Join()
	}
	cleanup := sched.Go("vm-cleanup", func(self *sched.Thread) { m.Release(self) })
	cleanup.Join()
}

func runIPC(threads, ops int) {
	space := ipc.NewSpace()
	port := ipc.NewPort("lockmon")
	name := space.Insert(nil, port)
	var ths []*sched.Thread
	for i := 0; i < threads; i++ {
		ths = append(ths, sched.Go(fmt.Sprintf("ipc-%d", i), func(self *sched.Thread) {
			for n := 0; n < ops; n++ {
				p, err := space.Translate(self, name)
				if err != nil {
					panic(err)
				}
				if n%4 == 0 {
					msg := ipc.NewMessage(p, nil, n)
					if err := p.Send(msg); err != nil {
						msg.Destroy()
					} else if got, err := p.Receive(self); err == nil {
						got.Destroy()
					}
				}
				p.Release(nil)
			}
		}))
	}
	for _, th := range ths {
		th.Join()
	}
	space.DestroyAll(nil)
	port.Destroy()
}

func runZalloc(threads, ops int) {
	zone := zalloc.NewZone[int]("lockmon", threads*2, nil)
	var ths []*sched.Thread
	for i := 0; i < threads; i++ {
		ths = append(ths, sched.Go(fmt.Sprintf("zalloc-%d", i), func(self *sched.Thread) {
			for n := 0; n < ops; n++ {
				el := zone.Alloc(self)
				zone.Free(el)
			}
		}))
	}
	for _, th := range ths {
		th.Join()
	}
}

// injectContention stages one deterministic contended hold on a traced
// sleep lock: the holder keeps the write lock for a few milliseconds while
// a second thread waits on it. Workload contention depends on scheduling
// luck (on one CPU it can round to zero), so this guarantees the wait,
// hold, and blame site profiles each have at least one sample — the blame
// one attributing the waiter's delay to injectContention's holder.
func injectContention() {
	l := cxlock.NewWith(cxlock.Options{
		Sleep: true,
		Name:  "lockmon.smoke",
		Class: trace.NewClass("lockmon", "lockmon.smoke", trace.KindComplex),
	})
	held := make(chan struct{})
	holder := sched.Go("smoke-holder", func(self *sched.Thread) {
		l.Write(self)
		close(held)
		time.Sleep(5 * time.Millisecond)
		l.Done(self)
	})
	waiter := sched.Go("smoke-waiter", func(self *sched.Thread) {
		<-held
		l.Write(self)
		l.Done(self)
	})
	holder.Join()
	waiter.Join()
}

// injectDeadlock stages the Section 7.1 stall as a full lock cycle on a
// real vm.Map and waits for the watchdog to file the incident. Returns
// whether the capture happened. The two deadlocked threads are left
// parked — a true deadlock has no legal third-party resolution; in a real
// kernel this is where the watchdog's report precedes the reboot.
func injectDeadlock(mon *monitor.Monitor) bool {
	fmt.Println("lockmon: injecting vm_map_pageable-style lock cycle (map lock vs page-pool lock)")
	pool := vm.NewPool(8)
	vmap := vm.NewMap(pool)
	obj := vm.NewObject(pool, 4)
	boss := sched.New("boss")
	if err := vmap.Allocate(boss, 0, 4, obj, 0); err != nil {
		panic(err)
	}
	poolLock := cxlock.NewWith(cxlock.Options{
		Sleep: true,
		Name:  "vm.page-pool",
		Class: trace.NewClass("vm", "vm.page-pool", trace.KindComplex),
	})
	tr := mon.Tracker()
	tr.Name(vmap.DebugLock(), "vm.map")
	tr.Name(poolLock, "vm.page-pool")

	var firstHolds sync.WaitGroup
	firstHolds.Add(2)
	gate := make(chan struct{})
	sched.Go("vm_map_pageable", func(self *sched.Thread) {
		vmap.DebugLock().Read(self) // the outstanding read hold of Section 7.1
		firstHolds.Done()
		<-gate
		poolLock.Write(self) // "waits for free memory": needs the page pool
		poolLock.Done(self)
		vmap.DebugLock().Done(self)
	})
	sched.Go("pageout", func(self *sched.Thread) {
		poolLock.Write(self) // owns the page pool it is refilling
		firstHolds.Done()
		<-gate
		vmap.DebugLock().Write(self) // reclaim needs the map write lock
		vmap.DebugLock().Done(self)
		poolLock.Done(self)
	})
	firstHolds.Wait()
	close(gate)

	deadline := time.Now().Add(15 * time.Second)
	for mon.IncidentCount(monitor.KindDeadlock) == 0 {
		if time.Now().After(deadline) {
			fmt.Fprintf(os.Stderr, "lockmon: no incident after 15s; tracker state:\n%s\n",
				tr.Snapshot())
			return false
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, in := range mon.Incidents().Snapshot() {
		if in.Kind == monitor.KindDeadlock {
			fmt.Println("lockmon: watchdog captured the deadlock:")
			for _, line := range strings.Split(strings.TrimRight(in.String(), "\n"), "\n") {
				fmt.Println("  " + line)
			}
			return true
		}
	}
	return false
}

// smokeCheck probes every endpoint and asserts each serves meaningful
// content; with injected set it also requires the incident log to name the
// cycle and carry a flight-recorder tail.
func smokeCheck(base string, injected bool) error {
	get := func(path string) (string, error) {
		resp, err := http.Get(base + path)
		if err != nil {
			return "", fmt.Errorf("GET %s: %w", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return "", fmt.Errorf("GET %s: read: %w", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			return "", fmt.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		if len(body) == 0 {
			return "", fmt.Errorf("GET %s: empty body", path)
		}
		return string(body), nil
	}
	checks := []struct {
		path string
		want []string
	}{
		{"/debug/machlock/", []string{"machlock monitor"}},
		{"/debug/machlock/profiles", []string{"contention profile", "vm.map"}},
		{"/debug/machlock/profiles?format=csv", []string{"pkg,name,kind", "vm.map"}},
		{"/debug/machlock/metrics", []string{
			"# TYPE machlock_acquisitions_total counter",
			"machlock_acquisitions_total{",
			"machlock_live_objects{",
			"machlock_monitor_up 1",
			"machlock_monitor_ticks_total",
		}},
		{"/debug/machlock/waitgraph", []string{"digraph waitfor"}},
		{"/debug/machlock/incidents", []string{"incidents:"}},
		{"/debug/machlock/ring", []string{"acquire"}},
	}
	if injected {
		checks[5].want = append(checks[5].want,
			"[deadlock]", "vm.map", "vm.page-pool", "vm_map_pageable", "pageout", "ring tail")
	}
	for _, c := range checks {
		body, err := get(c.path)
		if err != nil {
			return err
		}
		for _, want := range c.want {
			if !strings.Contains(body, want) {
				return fmt.Errorf("GET %s: missing %q in:\n%s", c.path, want, body)
			}
		}
	}
	return nil
}

// smokeArtifacts scrapes the profiler endpoints and validates the formats
// structurally — the pprof body must decode as a profile.proto with the
// wait sample types and real samples behind it, the timeline as Chrome
// trace-event JSON with populated traceEvents. Non-empty output paths get
// the raw bytes (CI uploads them as artifacts).
func smokeArtifacts(base, pprofOut, timelineOut string) error {
	fetch := func(path string) ([]byte, error) {
		resp, err := http.Get(base + path)
		if err != nil {
			return nil, fmt.Errorf("GET %s: %w", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		return io.ReadAll(resp.Body)
	}
	save := func(path string, data []byte) error {
		if path == "" {
			return nil
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("lockmon: wrote %s (%d bytes)\n", path, len(data))
		return nil
	}

	raw, err := fetch("/debug/machlock/pprof/waits")
	if err != nil {
		return err
	}
	prof, err := trace.ParsePprof(raw)
	if err != nil {
		return fmt.Errorf("pprof/waits: %w", err)
	}
	if len(prof.SampleTypes) != 2 || prof.SampleTypes[0] != "contentions/count" {
		return fmt.Errorf("pprof/waits: unexpected sample types %v", prof.SampleTypes)
	}
	if len(prof.Samples) == 0 {
		return fmt.Errorf("pprof/waits: no samples after contended workloads")
	}
	if err := save(pprofOut, raw); err != nil {
		return err
	}

	// The blame profile must attribute the staged contention to its holder:
	// the waiter's delay keyed by injectContention's acquisition stack.
	raw, err = fetch("/debug/machlock/pprof/blame")
	if err != nil {
		return err
	}
	blame, err := trace.ParsePprof(raw)
	if err != nil {
		return fmt.Errorf("pprof/blame: %w", err)
	}
	if blame.FindSample("injectContention") == nil {
		return fmt.Errorf("pprof/blame: no sample names the injected holder (samples: %d)", len(blame.Samples))
	}

	raw, err = fetch("/debug/machlock/timeline")
	if err != nil {
		return err
	}
	var tl struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &tl); err != nil {
		return fmt.Errorf("timeline: invalid JSON: %w", err)
	}
	if len(tl.TraceEvents) == 0 {
		return fmt.Errorf("timeline: no trace events in the flight recorder")
	}
	return save(timelineOut, raw)
}

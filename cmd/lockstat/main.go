// Command lockstat sweeps contention parameters over the lock
// implementations and prints CSV, for plotting the shapes the paper
// describes: interconnect traffic per acquisition by spin policy, and
// complex-lock throughput by reader/writer mix.
//
// Usage:
//
//	lockstat [-mode spin|rw] [-acq N] [-ops N]
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"machlock/internal/core/cxlock"
	"machlock/internal/core/splock"
	"machlock/internal/hw"
	"machlock/internal/sched"
)

func main() {
	mode := flag.String("mode", "spin", "sweep to run: spin (policies × cpus) or rw (reader/writer mixes)")
	acq := flag.Int("acq", 1000, "acquisitions per simulated CPU (spin mode)")
	ops := flag.Int("ops", 5000, "operations per thread (rw mode)")
	flag.Parse()

	switch *mode {
	case "spin":
		spinSweep(*acq)
	case "rw":
		rwSweep(*ops)
	default:
		fmt.Fprintf(os.Stderr, "lockstat: unknown mode %q\n", *mode)
		os.Exit(2)
	}
}

// spinSweep prints bus transactions per acquisition for each algorithm in
// the arsenal and each CPU count, on write-back and write-through cache
// models. Every row is labeled by algorithm (the policy column), and the
// arsenal-specific counters — queue handoffs, adaptive parks, cross-cell
// ownership transfers on the two-cell machine — ride along as columns.
func spinSweep(acquisitions int) {
	fmt.Println("cache,policy,cpus,acquisitions,bus_txns,txns_per_acq,spin_loops,handoffs,parks,cross_cell,elapsed_ms")
	sweep := []splock.Policy{
		splock.TAS, splock.TTAS, splock.TASTTAS,
		splock.Queue, splock.Cohort, splock.Adaptive,
	}
	for _, wt := range []bool{false, true} {
		cache := "write-back"
		if wt {
			cache = "write-through"
		}
		for _, ncpu := range []int{1, 2, 4, 8, 16} {
			for _, p := range sweep {
				cells := 1
				if ncpu >= 2 {
					cells = 2
				}
				m := hw.NewWithConfig(hw.Config{CPUs: ncpu, WriteThrough: wt, Cells: cells})
				l := splock.NewSimWith(splock.Opts{Machine: m, Algorithm: p, Domains: cells})
				start := time.Now()
				var wg sync.WaitGroup
				for i := 0; i < ncpu; i++ {
					wg.Add(1)
					go func(c *hw.CPU) {
						defer wg.Done()
						for j := 0; j < acquisitions; j++ {
							l.Lock(c)
							l.Unlock(c)
						}
					}(m.CPU(i))
				}
				wg.Wait()
				elapsed := time.Since(start)
				total := int64(ncpu * acquisitions)
				st := l.Stats()
				fmt.Printf("%s,%s,%d,%d,%d,%.3f,%d,%d,%d,%d,%.1f\n",
					cache, p, ncpu, total, m.BusTransactions(),
					float64(m.BusTransactions())/float64(total),
					st.SpinLoops, st.Handoffs, st.Parks, m.CrossCellTransfers(),
					float64(elapsed.Microseconds())/1000)
			}
		}
	}
}

// rwSweep prints complex-lock throughput across reader/writer mixes and
// thread counts — sleepable or not, reader-biased or not.
func rwSweep(opsPerThread int) {
	fmt.Println("sleepable,biased,threads,write_pct,ops,elapsed_ms,ops_per_sec,sleeps,spins,biased_reads,revocations")
	for _, sleepable := range []bool{false, true} {
		for _, biased := range []bool{false, true} {
			for _, threads := range []int{1, 2, 4, 8} {
				for _, writePct := range []int{0, 10, 50, 100} {
					l := cxlock.NewWith(cxlock.Options{Sleep: sleepable, ReaderBias: biased, Name: "lockstat.rw"})
					start := time.Now()
					var ths []*sched.Thread
					for i := 0; i < threads; i++ {
						ths = append(ths, sched.Go("w", func(self *sched.Thread) {
							for n := 0; n < opsPerThread; n++ {
								if n%100 < writePct {
									l.Write(self)
									l.Done(self)
								} else {
									l.Read(self)
									l.Done(self)
								}
							}
						}))
					}
					for _, th := range ths {
						th.Join()
					}
					elapsed := time.Since(start)
					total := int64(threads * opsPerThread)
					s := l.Stats()
					fmt.Printf("%v,%v,%d,%d,%d,%.1f,%.0f,%d,%d,%d,%d\n",
						sleepable, biased, threads, writePct, total,
						float64(elapsed.Microseconds())/1000,
						float64(total)/elapsed.Seconds(), s.Sleeps, s.Spins,
						s.BiasedReads, s.BiasRevocations)
				}
			}
		}
	}
}

// Command simfrontier runs the registered multi-subsystem machsim
// scenarios through the parallel bounded exploration engine, with frontier
// checkpointing so a budgeted run (the nightly CI mode) resumes where the
// previous one stopped.
//
// Usage:
//
//	simfrontier -list
//	simfrontier -scenario pageable [-workers N] [-budget RUNS] [-checkpoint FILE]
//	simfrontier -inspect FILE
//
// With -checkpoint, an existing file is resumed (its pinned search
// parameters must match the scenario's registration) and the final
// frontier is written back. Exit status: 0 for a clean (possibly
// unfinished) run, 1 for a violation, 2 for usage or I/O errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"machlock/internal/machsim"
	"machlock/internal/machsim/scenarios"
)

func main() {
	list := flag.Bool("list", false, "list the registered scenarios and exit")
	name := flag.String("scenario", "", "registered scenario to explore (see -list)")
	workers := flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	budget := flag.Int("budget", 0, "max schedules to run in this invocation (0 = to exhaustion)")
	checkpoint := flag.String("checkpoint", "", "frontier checkpoint file to resume from and write back")
	preemptions := flag.Int("preemptions", -1, "override the scenario's registered preemption bound")
	inspect := flag.String("inspect", "", "print a frontier checkpoint's summary and exit")
	flag.Parse()

	switch {
	case *list:
		for _, n := range scenarios.All() {
			verdict := "must exhaust clean"
			if len(n.WantCheckers) > 0 {
				verdict = fmt.Sprintf("planted bug, must find %v", n.WantCheckers)
			}
			fmt.Printf("%-22s preemptions=%d reduction=%s  %s\n",
				n.Name, n.Preemptions, n.Reduction, verdict)
		}
		return
	case *inspect != "":
		fr, err := machsim.ReadFrontierFile(*inspect)
		if err != nil {
			fatalf("simfrontier: %v", err)
		}
		fmt.Printf("%s: scenario %s, preemptions=%d reduction=%s\n",
			fr.Schema, fr.Scenario, fr.Preemptions, fr.Reduction)
		fmt.Printf("wave %d: %d runs, %d steps, %d inconclusive, %d pruned\n",
			fr.Wave, fr.Runs, fr.Steps, fr.Inconclusive, fr.Pruned)
		if fr.Done {
			fmt.Println("done: space exhausted")
		} else {
			fmt.Printf("%d branches left to explore\n", len(fr.Branches))
		}
		return
	case *name == "":
		fatalf("simfrontier: -scenario is required (try -list)")
	}

	n, ok := scenarios.Lookup(*name)
	if !ok {
		fatalf("simfrontier: unknown scenario %q (try -list)", *name)
	}
	cfg := machsim.DFSConfig{Preemptions: n.Preemptions, Reduction: n.Reduction}
	if *preemptions >= 0 {
		cfg.Preemptions = *preemptions
	}
	par := machsim.ParallelConfig{Workers: *workers, RunBudget: *budget, Scenario: n.Name}
	if *checkpoint != "" {
		if _, err := os.Stat(*checkpoint); err == nil {
			fr, err := machsim.ReadFrontierFile(*checkpoint)
			if err != nil {
				fatalf("simfrontier: %v", err)
			}
			par.Resume = fr
		}
	}

	res, fr := machsim.ExploreParallel(n.Scenario, cfg, par, machsim.Options{})
	if *checkpoint != "" {
		if err := machsim.WriteFrontierFile(*checkpoint, fr); err != nil {
			fatalf("simfrontier: %v", err)
		}
	}
	if res.Failed() {
		fmt.Print(res.Report())
		os.Exit(1)
	}
	fmt.Printf("%s: %s\n", n.Name, res.Summary())
	if !fr.Done {
		fmt.Printf("budget reached: %d branches left (resume with -checkpoint)\n", len(fr.Branches))
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}

// Command machd runs the Mach lock/refcount machinery as a long-lived
// service: a resident population of tasks, port name spaces, and vm
// objects served over real TCP sockets, with a Prometheus scrape and the
// full machlock debug tree on an HTTP port.
//
// Serve mode (default) runs until interrupted:
//
//	machd -rpc 127.0.0.1:7207 -http 127.0.0.1:7208
//
// Load mode boots the daemon, drives the built-in open-loop generator
// against it, writes the machine-readable trajectory, and exits:
//
//	machd -load -duration 60s -rate 2000 -mix default -bench BENCH_machd.json
//
// Smoke mode is the CI gate: ephemeral ports, four distinct scenario
// mixes over real sockets, then hard assertions on the scrape and the
// report:
//
//	machd -smoke
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"machlock/internal/benchjson"
	"machlock/internal/lockgraph"
	"machlock/internal/machd"
	"machlock/internal/trace"
)

func main() {
	var (
		rpcAddr  = flag.String("rpc", "127.0.0.1:0", "RPC listen address")
		httpAddr = flag.String("http", "127.0.0.1:0", "observability listen address")

		tasks    = flag.Int("tasks", 32, "resident task population")
		ports    = flag.Int("ports", 16, "stable lookup ports per task")
		vmpages  = flag.Int("vmpages", 64, "pages mapped per task")
		poolsize = flag.Int("poolpages", 0, "physical page pool size (0 = half the population's mappings)")
		threads  = flag.Int("server-threads", 8, "kernel threads draining the service port")

		load      = flag.Bool("load", false, "drive the built-in load generator, then exit")
		smoke     = flag.Bool("smoke", false, "CI smoke: four mixes on ephemeral ports, assert the scrape, exit")
		mixFlag   = flag.String("mix", "default", "scenario mix: a named mix or name=weight,...")
		rate      = flag.Float64("rate", 2000, "open-loop arrival rate (requests/sec)")
		conns     = flag.Int("conns", 4, "load generator TCP connections")
		workers   = flag.Int("workers", 16, "load generator concurrent workers")
		duration  = flag.Duration("duration", 10*time.Second, "load duration")
		timeout   = flag.Duration("timeout", 250*time.Millisecond, "soft per-request deadline")
		badPct    = flag.Int("bad-lookup-pct", 0, "percent of lookups aimed at a dead name")
		holdUs    = flag.Int("hold-us", 1000, "chaos slow-holder duration (microseconds)")
		seed      = flag.Int64("seed", 1, "load generator random seed")
		bench     = flag.String("bench", "", "write benchjson report here after a load run (- for stdout)")
		lockGraph = flag.String("lockgraph", "", "collect the runtime lock-order graph and write it here after a smoke/load run (- for stdout)")
	)
	flag.Parse()

	if *lockGraph != "" {
		trace.EnableLockGraph()
	}

	if *smoke {
		os.Exit(runSmoke(*bench, *lockGraph))
	}

	mix, err := resolveMix(*mixFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	d, err := machd.Start(machd.Options{
		World: machd.WorldConfig{
			Tasks:         *tasks,
			PortsPerTask:  *ports,
			VMPages:       *vmpages,
			PoolPages:     *poolsize,
			ServerThreads: *threads,
		},
		RPCAddr:  *rpcAddr,
		HTTPAddr: *httpAddr,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("machd: serving rpc on %s\n", d.RPCAddr())
	fmt.Printf("machd: observability on http://%s/debug/machlock/\n", d.HTTPAddr())

	if *load {
		cfg := machd.LoadConfig{
			Addr:         d.RPCAddr(),
			Conns:        *conns,
			Workers:      *workers,
			Rate:         *rate,
			Mix:          mix,
			Duration:     *duration,
			Timeout:      *timeout,
			BadLookupPct: *badPct,
			HoldUs:       *holdUs,
			Seed:         *seed,
		}
		fmt.Printf("machd: offering %.0f req/s of %s for %s\n", cfg.Rate, mix, *duration)
		res, err := machd.RunLoad(cfg, d.Collector())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			d.Stop()
			os.Exit(1)
		}
		report := d.Report("machd -load", res.Elapsed)
		printSummary(os.Stdout, d, report)
		if *bench != "" {
			if err := benchjson.WriteFile(*bench, report); err != nil {
				fmt.Fprintln(os.Stderr, err)
				d.Stop()
				os.Exit(1)
			}
			if *bench != "-" {
				fmt.Printf("machd: wrote %s\n", *bench)
			}
		}
		if *lockGraph != "" {
			if err := dumpLockGraph(d, *lockGraph); err != nil {
				fmt.Fprintln(os.Stderr, err)
				d.Stop()
				os.Exit(1)
			}
		}
		d.Stop()
		return
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("machd: shutting down")
	d.Stop()
}

// resolveMix accepts a named mix or an inline name=weight list.
func resolveMix(s string) (machd.Mix, error) {
	if m, ok := machd.NamedMixes[s]; ok {
		return m, nil
	}
	if !strings.Contains(s, "=") {
		names := make([]string, 0, len(machd.NamedMixes))
		for n := range machd.NamedMixes {
			names = append(names, n)
		}
		return nil, fmt.Errorf("machd: unknown mix %q (named mixes: %s)", s, strings.Join(names, ", "))
	}
	return machd.ParseMix(s)
}

func printSummary(w io.Writer, d *machd.Daemon, r *benchjson.Report) {
	fmt.Fprintf(w, "machd: %d ops in %.1fs (%.0f/s), %d errors, %d timeouts\n",
		r.Totals.Ops, r.DurationSec, r.Totals.OpsPerSec, r.Totals.Errors, r.Totals.Timeouts)
	for _, s := range d.Collector().Snapshot() {
		if s.Offered == 0 {
			continue
		}
		fmt.Fprintf(w, "  %-8s p50=%-8s p90=%-8s p99=%-8s max=%-8s shed=%d\n",
			s.Name,
			time.Duration(s.P50Ns), time.Duration(s.P90Ns),
			time.Duration(s.P99Ns), time.Duration(s.MaxNs), s.Shed)
	}
}

// smokeMixes are the four distinct scenario mixes the smoke drives over
// real sockets — each leans on a different subsystem.
var smokeMixes = []string{"lookup-storm", "churn-heavy", "vm-pressure", "chaos"}

// dumpLockGraph pulls the dynamic lock-order graph through the daemon's
// real HTTP surface — exercising the monitor endpoint, not just the
// in-process snapshot — and writes it to path.
func dumpLockGraph(d *machd.Daemon, path string) error {
	resp, err := http.Get("http://" + d.HTTPAddr() + "/debug/machlock/lockgraph")
	if err != nil {
		return fmt.Errorf("machd: lockgraph fetch: %w", err)
	}
	defer resp.Body.Close()
	g, err := lockgraph.Read(resp.Body)
	if err != nil {
		return fmt.Errorf("machd: lockgraph decode: %w", err)
	}
	if err := lockgraph.WriteFile(path, g); err != nil {
		return fmt.Errorf("machd: lockgraph write: %w", err)
	}
	if path != "-" {
		fmt.Printf("machd: wrote %s (%d classes, %d edges)\n", path, len(g.Nodes), len(g.Edges))
	}
	return nil
}

// runSmoke is the CI gate. It returns the process exit code.
func runSmoke(benchPath, lockGraphPath string) int {
	fail := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, "machd-smoke: FAIL: "+format+"\n", args...)
		return 1
	}

	d, err := machd.Start(machd.Options{
		World: machd.WorldConfig{Tasks: 16, PortsPerTask: 8, VMPages: 32, ServerThreads: 6},
	})
	if err != nil {
		return fail("start: %v", err)
	}
	defer d.Stop()
	fmt.Printf("machd-smoke: rpc %s, http %s\n", d.RPCAddr(), d.HTTPAddr())

	var elapsed time.Duration
	for _, name := range smokeMixes {
		res, err := machd.RunLoad(machd.LoadConfig{
			Addr:     d.RPCAddr(),
			Conns:    2,
			Workers:  8,
			Rate:     1500,
			Mix:      machd.NamedMixes[name],
			Duration: 1500 * time.Millisecond,
			HoldUs:   200,
		}, d.Collector())
		if err != nil {
			return fail("mix %s: %v", name, err)
		}
		elapsed += res.Elapsed
		fmt.Printf("machd-smoke: mix %-12s done (%.1fs)\n", name, res.Elapsed.Seconds())
	}

	// Every scenario completed work and recorded latency quantiles.
	covered := 0
	for _, s := range d.Collector().Snapshot() {
		if s.Done == 0 {
			continue
		}
		covered++
		if s.P50Ns <= 0 || s.P99Ns < s.P50Ns {
			return fail("scenario %s: broken quantiles p50=%d p99=%d", s.Name, s.P50Ns, s.P99Ns)
		}
	}
	if covered < 4 {
		return fail("only %d scenarios completed work, want >= 4", covered)
	}

	// The combined scrape, over the real HTTP surface.
	resp, err := http.Get("http://" + d.HTTPAddr() + "/debug/machlock/metrics")
	if err != nil {
		return fail("scrape: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	scrape := string(body)
	for _, family := range []string{
		"machlock_acquisitions_total",
		"machlock_wait_time_ns",
		"machlock_op_latency_ns",
		"machlock_op_lock_wait_ns",
		"machlock_op_work_ns",
		"machlock_monitor_up",
		"machd_requests_total",
		"machd_client_latency_ns",
		"machd_scenario_mix",
		"machd_error_budget_remaining",
	} {
		if !strings.Contains(scrape, family) {
			return fail("scrape missing family %s", family)
		}
	}
	// SLO histograms are non-empty: a real quantile sample for machd ops.
	if !strings.Contains(scrape, `machlock_op_latency_ns{pkg="machd",op="op.lookup",quantile="0.99"}`) {
		return fail("scrape missing machd op latency quantiles")
	}

	// Zero incidents on a healthy run.
	for _, k := range machd.IncidentKinds {
		if n := d.Monitor().IncidentCount(k); n != 0 {
			return fail("%d %s incidents", n, k)
		}
	}

	// The trajectory report is well-formed.
	report := d.Report("machd -smoke", elapsed)
	if err := report.Validate(); err != nil {
		return fail("report: %v", err)
	}
	if benchPath == "" {
		benchPath = "BENCH_machd.json"
	}
	if err := benchjson.WriteFile(benchPath, report); err != nil {
		return fail("write report: %v", err)
	}
	if _, err := benchjson.ReadFile(benchPath); err != nil {
		return fail("re-read report: %v", err)
	}
	if lockGraphPath != "" {
		if err := dumpLockGraph(d, lockGraphPath); err != nil {
			return fail("%v", err)
		}
	}
	printSummary(os.Stdout, d, report)
	fmt.Printf("machd-smoke: PASS (%d mixes, %d ops, report %s)\n",
		len(smokeMixes), report.Totals.Ops, benchPath)
	return 0
}

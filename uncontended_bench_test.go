// Uncontended fast-path benchmarks for the observability layer: each
// measures a single-thread acquire/release cycle with tracing DISABLED,
// the configuration production code runs in. The acceptance bar for the
// trace layer is that a classed (registered) lock stays within a few
// percent of its unclassed baseline here — the disabled check is one nil
// test plus one atomic load.
//
// Compare pairs with:
//
//	go test -bench 'Uncontended' -count 10 . | benchstat
package machlock_test

import (
	"testing"

	"machlock"
	"machlock/internal/core/cxlock"
	"machlock/internal/core/object"
	"machlock/internal/core/splock"
	"machlock/internal/sched"
	"machlock/internal/trace"
	"machlock/internal/zalloc"
)

// BenchmarkUncontendedSpin is the baseline: an unclassed spin lock, no
// observability wiring at all.
func BenchmarkUncontendedSpin(b *testing.B) {
	var l splock.Lock
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Lock()
		l.Unlock()
	}
}

// BenchmarkUncontendedSpinClassed is the same lock registered with the
// observability layer, tracing off: the cost of the disabled gate.
func BenchmarkUncontendedSpinClassed(b *testing.B) {
	trace.Disable()
	var l splock.Lock
	l.SetClass(trace.NewClass("bench", "bench.spin", trace.KindSpin))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Lock()
		l.Unlock()
	}
}

// BenchmarkUncontendedStatLock measures the always-on statistics variant
// (two clock reads per cycle on top of the spin lock).
func BenchmarkUncontendedStatLock(b *testing.B) {
	trace.Disable()
	l := splock.NewStat("bench.stat")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Lock()
		l.Unlock()
	}
}

// BenchmarkUncontendedComplexRead / Write: the unclassed complex lock.
func BenchmarkUncontendedComplexRead(b *testing.B) {
	l := cxlock.NewWith(cxlock.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Read(nil)
		l.Done(nil)
	}
}

func BenchmarkUncontendedComplexWrite(b *testing.B) {
	l := cxlock.NewWith(cxlock.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Write(nil)
		l.Done(nil)
	}
}

// BenchmarkUncontendedComplexReadBiased: the reader-bias fast path — a
// slot publish and clear instead of the interlocked protocol. The thread
// identity is required (nil readers take the slow path).
func BenchmarkUncontendedComplexReadBiased(b *testing.B) {
	l := cxlock.NewWith(cxlock.Options{ReaderBias: true})
	self := sched.New("bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Read(self)
		l.Done(self)
	}
}

// BenchmarkUncontendedComplexReadBiasedSlowPath: same lock, nil identity:
// the bias is configured but this reader cannot use it, measuring the
// fast-path check's overhead on the interlocked path.
func BenchmarkUncontendedComplexReadBiasedSlowPath(b *testing.B) {
	l := cxlock.NewWith(cxlock.Options{ReaderBias: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Read(nil)
		l.Done(nil)
	}
}

// BenchmarkUncontendedComplexReadClassed / WriteClassed: the complex lock
// registered with the observability layer, tracing off.
func BenchmarkUncontendedComplexReadClassed(b *testing.B) {
	trace.Disable()
	l := cxlock.NewWith(cxlock.Options{})
	l.SetClass(trace.NewClass("bench", "bench.cx", trace.KindComplex))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Read(nil)
		l.Done(nil)
	}
}

func BenchmarkUncontendedComplexWriteClassed(b *testing.B) {
	trace.Disable()
	l := cxlock.NewWith(cxlock.Options{})
	l.SetClass(trace.NewClass("bench", "bench.cx", trace.KindComplex))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Write(nil)
		l.Done(nil)
	}
}

// BenchmarkUncontendedStatRW measures the always-on complex statistics
// variant added with the observability layer.
func BenchmarkUncontendedStatRW(b *testing.B) {
	trace.Disable()
	l := cxlock.NewStatRW("bench.statrw", false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Write(nil)
		l.Done(nil)
	}
}

// BenchmarkUncontendedObjectLockRef: one object lock/reference/release
// cycle — the Section 8 hot path — with the object unclassed.
func BenchmarkUncontendedObjectLockRef(b *testing.B) {
	var o object.Object
	o.Init("bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Lock()
		o.Reference()
		o.Unlock()
		o.Release(nil)
	}
}

// BenchmarkUncontendedObjectLockRefClassed: same cycle with the object
// registered, tracing off.
func BenchmarkUncontendedObjectLockRefClassed(b *testing.B) {
	trace.Disable()
	var o object.Object
	o.Init("bench")
	o.SetClass(trace.NewClass("bench", "bench.object", trace.KindObject))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Lock()
		o.Reference()
		o.Unlock()
		o.Release(nil)
	}
}

// BenchmarkUncontendedZone: a TryAlloc/Free cycle through a classed zone
// (zones are always registered), tracing off.
func BenchmarkUncontendedZone(b *testing.B) {
	trace.Disable()
	z := zalloc.NewZone[int]("bench", 4, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		el, err := z.TryAlloc()
		if err != nil {
			b.Fatal(err)
		}
		z.Free(el)
	}
}

// The arsenal's uncontended fast paths. The acceptance bar for PR 7 is
// twofold: BenchmarkUncontendedSpin (the default TAS/TTAS path, whose
// dispatch now checks one extra nil pointer) must stay within 5% of its
// pre-arsenal numbers, and each algorithm's own single-thread cycle is
// recorded here so regressions in the queue/cohort/adaptive fast paths
// (uncontended MCS is one swap + one CAS) are visible.
func benchUncontendedAlgo(b *testing.B, p splock.Policy) {
	l := splock.NewWith(splock.Opts{Algorithm: p, Domains: 2})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Lock()
		l.Unlock()
	}
}

func BenchmarkUncontendedQueue(b *testing.B)    { benchUncontendedAlgo(b, splock.Queue) }
func BenchmarkUncontendedCohort(b *testing.B)   { benchUncontendedAlgo(b, splock.Cohort) }
func BenchmarkUncontendedAdaptive(b *testing.B) { benchUncontendedAlgo(b, splock.Adaptive) }

// BenchmarkUncontendedFacade: the full option path — NewSimpleLock with
// an algorithm — cycled once per construction amortized away; measures
// that the facade adds nothing per acquisition over the direct lock.
func BenchmarkUncontendedFacade(b *testing.B) {
	l := machlock.NewSimpleLock(machlock.WithAlgorithm(machlock.Queue))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Lock()
		l.Unlock()
	}
}

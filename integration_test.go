// Integration test: the whole reproduced kernel working as one system —
// tasks and threads over processor sets, address spaces faulting through
// an external pager reached by RPC, port name spaces, and the shutdown
// protocols, all under concurrent load. This is the "kernel smoke test":
// if any package's locking or reference protocol is wrong, something here
// corrupts, hangs, or panics on a use-after-free.
package machlock_test

import (
	"fmt"
	"testing"
	"time"

	"machlock/internal/hw"
	"machlock/internal/ipc"
	"machlock/internal/kern"
	"machlock/internal/mig"
	"machlock/internal/sched"
	"machlock/internal/vm"
)

type pagerArgs struct{ Offset uint64 }
type pagerReply struct{ Data []byte }

const opPageIn = 1

func TestKernelSmoke(t *testing.T) {
	// --- Machine and processor sets ---
	machine := hw.New(4)
	host := kern.NewHost(machine)
	batch := host.NewSet("batch")
	if err := host.AssignProcessor(host.Processor(2), batch); err != nil {
		t.Fatal(err)
	}
	if err := host.AssignProcessor(host.Processor(3), batch); err != nil {
		t.Fatal(err)
	}

	// --- A task with an address space backed by an external pager ---
	pool := vm.NewPool(256)
	task := kern.NewTask("app", pool)
	task.TakeRef()
	defer task.Release(nil)
	if err := batch.AssignTask(task); err != nil {
		t.Fatal(err)
	}

	obj := vm.NewObject(pool, 64)
	boss := sched.New("boss")

	// The pager is an RPC service created through the memory object's
	// customized creation lock and registered in the task's name space.
	iface := mig.NewInterface(ipc.KindPager)
	mig.Define(iface, opPageIn, "page-in",
		func(ctx *ipc.Context, ko ipc.KObject, a *pagerArgs) (*pagerReply, error) {
			data := make([]byte, 4)
			for i := range data {
				data[i] = byte(a.Offset) ^ byte(i)
			}
			return &pagerReply{Data: data}, nil
		})
	pagerSrv := iface.Server(ipc.Mach25)

	// The port's kernel object is a small anchor (vm.Object manages its
	// references with explicit thread identities, so it is not itself an
	// ipc.KObject; the pager protocol only needs the port).
	anchor := &benchKObj{}
	anchor.Init("pager-anchor")
	pagerPort := obj.EnsurePager(boss, func() *ipc.Port {
		p := ipc.NewPort("pager")
		anchor.TakeRef()
		p.SetKObject(ipc.KindPager, anchor)
		return p
	})
	pagerName := task.InsertPort(boss, pagerPort)

	pagerPort.TakeRef()
	pagerThread := sched.Go("pager", func(self *sched.Thread) {
		pagerSrv.Serve(self, pagerPort)
		pagerPort.Release(nil)
	})

	// Faults resolve through the task's name space and typed stubs: name
	// lookup clones a port reference, the stub call carries the Section 10
	// sequence, and the data comes back typed.
	task.Map().SetFetcher(func(th *sched.Thread, o *vm.Object, off uint64) []byte {
		port, err := task.TranslatePort(th, pagerName)
		if err != nil {
			return nil
		}
		defer port.Release(nil)
		r, err := mig.Call[pagerArgs, pagerReply](th, port, opPageIn, &pagerArgs{Offset: off})
		if err != nil {
			return nil
		}
		return r.Data
	})
	// One entry per worker: wire operations mark whole entries
	// in-transition (this model does not clip entries the way full Mach
	// does), so concurrent wires need disjoint entries.
	for i := 0; i < 3; i++ {
		start := uint64(0x1000 + i*16)
		if err := task.Map().Allocate(boss, start, 16, obj, uint64(i*16)); err != nil {
			t.Fatal(err)
		}
	}

	// --- Threads fault and wire concurrently ---
	var workers []*kern.Thread
	for i := 0; i < 3; i++ {
		th, err := task.CreateThread(fmt.Sprintf("worker-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		workers = append(workers, th)
	}
	done := make(chan error, len(workers))
	for i, w := range workers {
		go func(idx int, self *sched.Thread) {
			base := uint64(0x1000 + idx*16)
			for va := base; va < base+16; va++ {
				if err := task.Map().Fault(self, va, false); err != nil {
					done <- fmt.Errorf("fault %#x: %w", va, err)
					return
				}
			}
			if err := task.Map().Wire(self, base, base+4); err != nil {
				done <- fmt.Errorf("wire: %w", err)
				return
			}
			if err := task.Map().Unwire(self, base, base+4); err != nil {
				done <- fmt.Errorf("unwire: %w", err)
				return
			}
			done <- nil
		}(i, w.Sched())
	}
	for range workers {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("worker hung")
		}
	}
	if obj.ResidentPages() != 48 {
		t.Fatalf("resident = %d, want 48", obj.ResidentPages())
	}
	// Verify pager-produced contents via a direct check of one page.
	if err := task.Map().Fault(boss, 0x1000, false); err != nil {
		t.Fatal(err)
	}

	// --- Terminate the task: threads die, space drains, memory returns ---
	freeBefore := pool.FreeCount()
	if freeBefore == pool.Total() {
		t.Fatal("setup: no memory in use?")
	}
	if err := task.Terminate(boss); err != nil {
		t.Fatal(err)
	}
	// The object's creator reference still pins it; drop it and the pages
	// must all return (the map's entry reference went with the task).
	obj.Release(boss)
	if pool.FreeCount() != pool.Total() {
		t.Fatalf("leaked pages: %d/%d free", pool.FreeCount(), pool.Total())
	}
	// The task's threads are deactivated.
	for _, w := range workers {
		if _, err := task.CreateThread("late"); err == nil {
			t.Fatal("thread creation on dead task succeeded")
		}
		_ = w
	}

	// The pager port died with the memory object; its server loop exits.
	pagerThread.Join()

	// --- Destroy the processor set; everything migrates home ---
	if err := batch.Destroy(); err != nil {
		t.Fatal(err)
	}
	if got := len(host.DefaultSet().Processors(nil)); got != 4 {
		t.Fatalf("processors after set destroy = %d", got)
	}
}

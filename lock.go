package machlock

import (
	"machlock/internal/core/cxlock"
	"machlock/internal/trace"
)

// TraceClass is a registered observability class from the trace layer;
// pass one to WithClass to aggregate a lock's profile with its site.
type TraceClass = trace.Class

// Locker is the exclusive side of a machlock lock: acquire for writing,
// release. Threads identify themselves explicitly — Mach's implicit
// current_thread() made explicit. A nil thread is legal anywhere the
// lock's options don't require an identity (Recursive holds and the
// reader-bias fast path do).
type Locker interface {
	Write(t *Thread)
	TryWrite(t *Thread) bool
	Done(t *Thread)
}

// RWLocker is the full readers/writer surface of a complex lock: shared
// acquisition plus the Appendix B upgrade and downgrade operations.
// *ComplexLock implements it.
type RWLocker interface {
	Locker
	Read(t *Thread)
	TryRead(t *Thread) bool
	// ReadToWrite upgrades a read hold; false means the hold was lost to
	// a competing upgrader and the caller must restart from scratch.
	ReadToWrite(t *Thread) bool
	TryReadToWrite(t *Thread) bool
	WriteToRead(t *Thread)
}

var _ RWLocker = (*ComplexLock)(nil)

// Option configures a lock built by NewLock. Options compose freely; the
// zero configuration is a plain non-sleeping, non-recursive writer-priority
// complex lock.
type Option func(*cxlock.Options)

// WithSleep enables the Sleep option: waiters block (AssertWait /
// ThreadBlock) instead of spinning, and the lock may be held across
// blocking operations. "Most complex locks use the sleep option."
func WithSleep() Option { return func(o *cxlock.Options) { o.Sleep = true } }

// WithRecursive permits the SetRecursive protocol (a designated holder
// may re-enter its read hold). Locks built without it panic on
// SetRecursive, making accidental recursion — the Section 7.1 deadlock
// ingredient — a loud failure instead of a latent one.
func WithRecursive() Option { return func(o *cxlock.Options) { o.Recursive = true } }

// WithReaderBias enables the BRAVO-style visible-readers fast path:
// readers that present a thread identity publish themselves in a per-lock
// slot table with one uncontended store, bypassing the central interlock
// entirely until a writer revokes the bias. Choose it for read-mostly
// locks (name-space translation, map lookup, set iteration); write-heavy
// locks only pay the revocation overhead.
func WithReaderBias() Option { return func(o *cxlock.Options) { o.ReaderBias = true } }

// WithName names the lock for debugging and deadlock reports.
func WithName(name string) Option { return func(o *cxlock.Options) { o.Name = name } }

// WithClass attaches the lock to a trace observability class; all locks
// sharing a class aggregate into one contention-profile row.
func WithClass(c *TraceClass) Option { return func(o *cxlock.Options) { o.Class = c } }

// NewLock builds a complex lock from options:
//
//	l := machlock.NewLock(machlock.WithSleep(), machlock.WithReaderBias(),
//		machlock.WithName("vm.map"))
//
// It supersedes NewComplexLock(canSleep), which survives as a deprecated
// wrapper (with Recursive implied, as the old constructor allowed
// SetRecursive unconditionally).
func NewLock(opts ...Option) *ComplexLock {
	var o cxlock.Options
	for _, opt := range opts {
		opt(&o)
	}
	return cxlock.NewWith(o)
}

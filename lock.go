package machlock

import (
	"machlock/internal/core/cxlock"
	"machlock/internal/core/splock"
	"machlock/internal/trace"
)

// TraceClass is a registered observability class from the trace layer;
// pass one to WithClass to aggregate a lock's profile with its site.
type TraceClass = trace.Class

// Locker is the exclusive side of a machlock lock: acquire for writing,
// release. Threads identify themselves explicitly — Mach's implicit
// current_thread() made explicit. A nil thread is legal anywhere the
// lock's options don't require an identity (Recursive holds and the
// reader-bias fast path do).
type Locker interface {
	Write(t *Thread)
	TryWrite(t *Thread) bool
	Done(t *Thread)
}

// RWLocker is the full readers/writer surface of a complex lock: shared
// acquisition plus the Appendix B upgrade and downgrade operations.
// *ComplexLock implements it.
type RWLocker interface {
	Locker
	Read(t *Thread)
	TryRead(t *Thread) bool
	// ReadToWrite upgrades a read hold; false means the hold was lost to
	// a competing upgrader and the caller must restart from scratch.
	ReadToWrite(t *Thread) bool
	TryReadToWrite(t *Thread) bool
	WriteToRead(t *Thread)
}

var _ RWLocker = (*ComplexLock)(nil)

// Algorithm selects the acquisition algorithm of a simple lock — or, for
// a complex lock, of the interlock guarding its internal state. The
// catalog (DESIGN §13):
//
//	Default   the paper's hybrid: one test-and-set, then test-then-set
//	          spinning. Unbeatable uncontended; degrades under load.
//	TAS       pure test-and-set spin: every attempt is an interconnect
//	          write. The Appendix A strawman; kept for experiments.
//	TTAS      pure test-then-set: waiters spin in their caches and only
//	          write when the lock looks free.
//	Queue     MCS queue lock: each waiter spins on its own cache line
//	          and the holder hands off to the first in line. FIFO-fair,
//	          constant interconnect traffic at any thread count.
//	Cohort    topology-aware two-level lock: a global word plus one MCS
//	          queue per hardware cell, preferring handoff within the
//	          holder's cell (bounded by a handoff budget) so the lock —
//	          and the data it protects — migrate between cells rarely.
//	Adaptive  spin-then-park queue lock: waiters spin a bounded budget,
//	          then park and are woken by the handoff, covering short
//	          holds without burning processors on long ones.
type Algorithm int

const (
	// Default is the zero value: the TAS/TTAS hybrid of Appendix A.
	Default Algorithm = iota
	// TAS is pure test-and-set (experiment baseline).
	TAS
	// TTAS is pure test-then-set.
	TTAS
	// Queue is the MCS queue lock.
	Queue
	// Cohort is the two-level topology-aware lock.
	Cohort
	// Adaptive is the spin-then-park queue lock.
	Adaptive
)

// String names the algorithm as used in reports and bench labels.
func (a Algorithm) String() string {
	switch a {
	case Default:
		return "default"
	case TAS:
		return "tas"
	case TTAS:
		return "ttas"
	case Queue:
		return "queue"
	case Cohort:
		return "cohort"
	case Adaptive:
		return "adaptive"
	}
	return "unknown"
}

// policy maps the facade enum to the splock policy it configures.
func (a Algorithm) policy() splock.Policy {
	switch a {
	case Default:
		return splock.TASTTAS
	case TAS:
		return splock.TAS
	case TTAS:
		return splock.TTAS
	case Queue:
		return splock.Queue
	case Cohort:
		return splock.Cohort
	case Adaptive:
		return splock.Adaptive
	}
	panic("machlock: unknown Algorithm")
}

// Algorithms lists every selectable Algorithm, in catalog order; the
// shootout experiment and bench sweeps range over it.
func Algorithms() []Algorithm {
	return []Algorithm{Default, TAS, TTAS, Queue, Cohort, Adaptive}
}

// config is the merged option sink: one With… list configures either lock
// shape. Simple-lock options land in sp, complex-lock options in cx, and
// shared options (name, class, algorithm) in both; NewLock and
// NewSimpleLock each read only their half.
type config struct {
	cx cxlock.Options
	sp splock.Opts
}

// Option configures a lock built by NewLock or NewSimpleLock. Options
// compose freely; the zero configuration is a plain non-sleeping,
// non-recursive writer-priority complex lock, or the paper's default
// simple lock.
type Option func(*config)

// WithSleep enables the Sleep option: waiters block (AssertWait /
// ThreadBlock) instead of spinning, and the lock may be held across
// blocking operations. "Most complex locks use the sleep option."
// Complex locks only.
func WithSleep() Option { return func(c *config) { c.cx.Sleep = true } }

// WithRecursive permits the SetRecursive protocol (a designated holder
// may re-enter its read hold). Locks built without it panic on
// SetRecursive, making accidental recursion — the Section 7.1 deadlock
// ingredient — a loud failure instead of a latent one. Complex locks only.
func WithRecursive() Option { return func(c *config) { c.cx.Recursive = true } }

// WithReaderBias enables the BRAVO-style visible-readers fast path:
// readers that present a thread identity publish themselves in a per-lock
// slot table with one uncontended store, bypassing the central interlock
// entirely until a writer revokes the bias. Choose it for read-mostly
// locks (name-space translation, map lookup, set iteration); write-heavy
// locks only pay the revocation overhead. Complex locks only.
func WithReaderBias() Option { return func(c *config) { c.cx.ReaderBias = true } }

// WithName names the lock for debugging, deadlock reports, and lockstat
// labels.
func WithName(name string) Option {
	return func(c *config) { c.cx.Name, c.sp.Name = name, name }
}

// WithClass attaches the lock to a trace observability class; all locks
// sharing a class aggregate into one contention-profile row, and the
// arsenal's wait/handoff accounting flows into the same blame machinery
// regardless of algorithm.
func WithClass(cl *TraceClass) Option {
	return func(c *config) { c.cx.Class, c.sp.Class = cl, cl }
}

// WithAlgorithm selects the acquisition algorithm. On a simple lock it
// replaces the spin protocol itself; on a complex lock it replaces the
// interlock's, which matters only for central complex locks whose
// interlock is itself a contention point.
func WithAlgorithm(a Algorithm) Option {
	return func(c *config) {
		p := a.policy()
		c.sp.Algorithm = p
		c.cx.Interlock = p
	}
}

// WithSpinThenPark sets the spin-then-park budget. On a complex lock,
// waiters spin for budget rounds before committing to a block (implies
// the Sleep option — parking is sleeping). On a simple lock it implies
// WithAlgorithm(Adaptive) and sizes that algorithm's spin window.
func WithSpinThenPark(budget int) Option {
	return func(c *config) {
		c.cx.SpinPark = budget
		c.sp.SpinBudget = budget
		if c.sp.Algorithm == splock.TASTTAS {
			c.sp.Algorithm = splock.Adaptive
		}
	}
}

// WithDomains sets the number of cohort domains (Cohort algorithm only);
// zero means the default. More domains mean less cross-domain lock
// migration but longer worst-case FIFO inversion windows.
func WithDomains(n int) Option { return func(c *config) { c.sp.Domains = n } }

// NewLock builds a complex lock from options:
//
//	l := machlock.NewLock(machlock.WithSleep(), machlock.WithReaderBias(),
//		machlock.WithName("vm.map"))
//
// This is the only supported construction path for complex locks (the
// zero value remains a valid non-sleepable lock, as lock_init allowed).
func NewLock(opts ...Option) *ComplexLock {
	var c config
	for _, opt := range opts {
		opt(&c)
	}
	return cxlock.NewWith(c.cx)
}

// NewSimpleLock builds a simple lock from options:
//
//	l := machlock.NewSimpleLock(machlock.WithAlgorithm(machlock.Queue),
//		machlock.WithName("ipc.port"))
//
// Options that only apply to complex locks (sleep, recursion, reader
// bias) are ignored. The zero value of SimpleLock remains a valid
// default-algorithm lock.
func NewSimpleLock(opts ...Option) *SimpleLock {
	var c config
	for _, opt := range opts {
		opt(&c)
	}
	return splock.NewWith(c.sp)
}

// Recommendation thresholds for Recommend, exported for tests and the
// shootout experiment's write-up.
const (
	// recommendMinSample: below this many acquisitions the profile is
	// noise; keep the default.
	recommendMinSample = 1000
	// recommendContended: contention rate at which spinning algorithms
	// start burning interconnect bandwidth and a queue pays off.
	recommendContended = 0.10
	// recommendParkNs: a P90 wait this long (≈ several context-switch
	// quanta) means waiters should park rather than spin.
	recommendParkNs = int64(250_000)
	// recommendCohortHoldNs: holds this long under heavy contention
	// amortize a cohort's bounded unfairness into locality wins.
	recommendCohortHoldNs = int64(20_000)
	// recommendHeavy: contention rate treated as pathological.
	recommendHeavy = 0.40
)

// Recommend suggests an Algorithm for a lock class from its observed
// contention profile (trace must have been enabled while the workload
// ran). The heuristic follows the shootout experiment's findings:
//
//	contention < 10% (or too few samples)  -> Default: the uncontended
//	    fast path dominates and nothing beats one CAS.
//	P90 wait ≥ 250µs                       -> Adaptive: waits span many
//	    scheduling quanta; spinning through them burns processors.
//	contention ≥ 40% and P90 hold ≥ 20µs   -> Cohort: heavy traffic with
//	    real work under the lock; batching handoffs within a cell keeps
//	    the protected data's cache lines home.
//	otherwise                              -> Queue: contended but
//	    short-held; MCS gives constant traffic and FIFO fairness.
//
// A nil class returns Default.
func Recommend(cl *TraceClass) Algorithm {
	if cl == nil {
		return Default
	}
	p := cl.Snapshot()
	if p.Acquisitions < recommendMinSample || p.ContentionRate < recommendContended {
		return Default
	}
	if p.P90WaitNs >= recommendParkNs {
		return Adaptive
	}
	if p.ContentionRate >= recommendHeavy && p.P90HoldNs >= recommendCohortHoldNs {
		return Cohort
	}
	return Queue
}

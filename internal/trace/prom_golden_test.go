package trace

import (
	"regexp"
	"sort"
	"strings"
	"testing"
)

// promSchema extracts {family -> type, sorted label keys} from a 0.0.4
// exposition. Families that emit no samples get label keys "-".
func promSchema(t *testing.T, text string) map[string][2]string {
	t.Helper()
	typeRe := regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (\w+)$`)
	sampleRe := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{([^{}]*)\})? \S+$`)
	labelRe := regexp.MustCompile(`([a-zA-Z_][a-zA-Z0-9_]*)="`)

	types := map[string]string{}
	labels := map[string]map[string]bool{}
	for _, line := range strings.Split(text, "\n") {
		if m := typeRe.FindStringSubmatch(line); m != nil {
			types[m[1]] = m[2]
			continue
		}
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed sample: %q", line)
		}
		if labels[m[1]] == nil {
			labels[m[1]] = map[string]bool{}
		}
		for _, lm := range labelRe.FindAllStringSubmatch(m[2], -1) {
			labels[m[1]][lm[1]] = true
		}
	}
	out := make(map[string][2]string, len(types))
	for fam, typ := range types {
		keys := "-"
		if ls := labels[fam]; len(ls) > 0 {
			sorted := make([]string, 0, len(ls))
			for k := range ls {
				sorted = append(sorted, k)
			}
			sort.Strings(sorted)
			keys = strings.Join(sorted, ",")
		} else if ls, ok := labels[fam]; ok && len(ls) == 0 {
			keys = "" // samples exist, no labels
		}
		out[fam] = [2]string{typ, keys}
	}
	return out
}

// TestWritePromGoldenSchema pins the exposition contract: family names,
// types, and label keys. Dashboards and scrape configs key on exactly
// these strings — a rename or a dropped label is a breaking change and
// must show up here as a diff, not in production.
func TestWritePromGoldenSchema(t *testing.T) {
	Enable()
	defer Disable()

	// One active class per mechanism kind so every family emits labelled
	// samples (a family with no samples cannot prove its label keys).
	cx := NewClass("goldtest", t.Name()+".cx", KindComplex)
	cx.Acquired(true, 100)
	cx.Released(50)
	cx.Upgraded(false)
	cx.CensusInc()
	defer cx.CensusDec()
	ref := NewClass("goldtest", t.Name()+".ref", KindRef)
	ref.RefClone(1)
	ref.RefRelease(0)
	op := NewOp("goldtest", t.Name()+".op")
	BeginSpan(nil, op).End()

	var sb strings.Builder
	if err := WriteProm(&sb, Profiles()); err != nil {
		t.Fatal(err)
	}
	got := promSchema(t, sb.String())

	classKeys := "class,kind,pkg"
	classQKeys := "class,kind,pkg,quantile"
	opKeys := "op,pkg"
	opQKeys := "op,pkg,quantile"
	want := map[string][2]string{
		"machlock_acquisitions_total":           {"counter", classKeys},
		"machlock_contended_acquisitions_total": {"counter", classKeys},
		"machlock_releases_total":               {"counter", classKeys},
		"machlock_contention_ratio":             {"gauge", classKeys},
		"machlock_hold_time_ns":                 {"gauge", classQKeys},
		"machlock_hold_time_ns_mean":            {"gauge", classKeys},
		"machlock_hold_time_ns_max":             {"gauge", classKeys},
		"machlock_wait_time_ns":                 {"gauge", classQKeys},
		"machlock_wait_time_ns_mean":            {"gauge", classKeys},
		"machlock_wait_time_ns_max":             {"gauge", classKeys},
		"machlock_upgrades_total":               {"counter", classKeys},
		"machlock_failed_upgrades_total":        {"counter", classKeys},
		"machlock_downgrades_total":             {"counter", classKeys},
		"machlock_bias_revocations_total":       {"counter", classKeys},
		"machlock_ref_clones_total":             {"counter", classKeys},
		"machlock_ref_releases_total":           {"counter", classKeys},
		"machlock_deactivates_total":            {"counter", classKeys},
		"machlock_live_objects":                 {"gauge", classKeys},
		"machlock_hierarchy_violations_total":   {"counter", ""},
		"machlock_op_total":                     {"counter", opKeys},
		"machlock_op_contended_total":           {"counter", opKeys},
		"machlock_op_latency_ns":                {"gauge", opQKeys},
		"machlock_op_latency_ns_mean":           {"gauge", opKeys},
		"machlock_op_latency_ns_max":            {"gauge", opKeys},
		"machlock_op_lock_wait_ns":              {"gauge", opQKeys},
		"machlock_op_work_ns":                   {"gauge", opQKeys},
	}

	for fam, w := range want {
		g, ok := got[fam]
		if !ok {
			t.Errorf("family %s missing from exposition", fam)
			continue
		}
		if g != w {
			t.Errorf("family %s: got type=%q labels=%q, want type=%q labels=%q",
				fam, g[0], g[1], w[0], w[1])
		}
	}
	for fam := range got {
		if _, ok := want[fam]; !ok {
			t.Errorf("family %s not in the golden schema — new families must be added here deliberately", fam)
		}
	}

	// The summary-style quantile ladders are pinned exactly: three rungs.
	for _, fam := range []string{"machlock_hold_time_ns", "machlock_wait_time_ns",
		"machlock_op_latency_ns", "machlock_op_lock_wait_ns", "machlock_op_work_ns"} {
		for _, q := range []string{`quantile="0.5"`, `quantile="0.9"`, `quantile="0.99"`} {
			if !strings.Contains(sb.String(), fam+"{") {
				t.Errorf("family %s emitted no labelled samples", fam)
				break
			}
			if !regexp.MustCompile(fam + `\{[^}]*` + q).MatchString(sb.String()) {
				t.Errorf("family %s missing rung %s", fam, q)
			}
		}
	}
}

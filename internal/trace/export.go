package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"machlock/internal/stats"
)

// WriteText renders the given profiles as the ranked "hottest locks"
// table: one row per class, columns the report a developer hunting coarse
// locks reads first.
func WriteText(w io.Writer, profiles []Profile) error {
	tbl := stats.NewTable("lock/refcount contention profile",
		"class", "kind", "acq", "contended", "cont%",
		"hold-mean", "hold-p99", "wait-mean", "wait-p99", "wait-max",
		"refs+", "refs-", "deact", "live")
	for _, p := range profiles {
		tbl.AddRow(
			p.Pkg+"/"+p.Name, p.Kind.String(),
			p.Acquisitions, p.Contended,
			fmt.Sprintf("%.2f", p.ContentionRate*100),
			ns(p.MeanHoldNs), ns(float64(p.P99HoldNs)),
			ns(p.MeanWaitNs), ns(float64(p.P99WaitNs)), ns(float64(p.MaxWaitNs)),
			p.RefClones, p.RefReleases, p.Deactivates, p.Live)
	}
	if _, err := tbl.WriteTo(w); err != nil {
		return err
	}
	// The process-wide hierarchy-violation state trails the table: counts
	// alone hide the protocol error's shape, so the last report rides
	// along.
	if n := HierarchyViolations(); n > 0 {
		if _, err := fmt.Fprintf(w, "hierarchy violations: %d (last: %s)\n",
			n, LastHierarchyViolation()); err != nil {
			return err
		}
	}
	return nil
}

// ns renders a nanosecond quantity compactly as a duration.
func ns(v float64) string {
	return time.Duration(int64(v)).String()
}

// WriteCSV renders the profiles as CSV with a header row, for plotting.
func WriteCSV(w io.Writer, profiles []Profile) error {
	if _, err := fmt.Fprintln(w, "pkg,name,kind,acquisitions,contended,contention_rate,"+
		"mean_hold_ns,p99_hold_ns,max_hold_ns,mean_wait_ns,p99_wait_ns,max_wait_ns,"+
		"upgrades,failed_upgrades,downgrades,bias_revocations,ref_clones,ref_releases,deactivates,"+
		"p50_hold_ns,p90_hold_ns,p50_wait_ns,p90_wait_ns,live"); err != nil {
		return err
	}
	for _, p := range profiles {
		if _, err := fmt.Fprintf(w, "%s,%s,%s,%d,%d,%.6f,%.1f,%d,%d,%.1f,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
			p.Pkg, p.Name, p.Kind, p.Acquisitions, p.Contended, p.ContentionRate,
			p.MeanHoldNs, p.P99HoldNs, p.MaxHoldNs, p.MeanWaitNs, p.P99WaitNs, p.MaxWaitNs,
			p.Upgrades, p.FailedUpgrades, p.Downgrades, p.BiasRevocations,
			p.RefClones, p.RefReleases, p.Deactivates,
			p.P50HoldNs, p.P90HoldNs, p.P50WaitNs, p.P90WaitNs, p.Live); err != nil {
			return err
		}
	}
	return nil
}

// WriteVars renders the profiles as an expvar-style JSON object keyed by
// "pkg/name", suitable for scraping into a metrics pipeline. The
// process-wide hierarchy-violation count and last-report text are included
// under the "splock/hierarchy!" key (the "!" keeps it clear of any real
// class key, which never contains one).
func WriteVars(w io.Writer, profiles []Profile) error {
	m := make(map[string]any, len(profiles)+1)
	for _, p := range profiles {
		m[p.Pkg+"/"+p.Name] = p
	}
	m["splock/hierarchy!"] = struct {
		Violations    int64
		LastViolation string
	}{HierarchyViolations(), LastHierarchyViolation()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// WriteEvents dumps the events one per line, oldest first.
func WriteEvents(w io.Writer, events []Event) error {
	for _, e := range events {
		if _, err := fmt.Fprintln(w, e.String()); err != nil {
			return err
		}
	}
	return nil
}

package trace

import (
	"fmt"
	"os"

	"machlock/internal/lockgraph"
)

// LockGraphTestMain is a TestMain body for packages in the `make sim`
// matrix. When MACHLOCK_LOCKGRAPH is set it is treated as a path prefix:
// tracing and the edge collector are enabled around the whole test binary,
// and the observed graph is written to <prefix>-<pkg>.json afterwards —
// the dynamic half of `machvet -diff`, gathered from the deterministic
// schedule-exploration runs rather than live sockets. With the variable
// unset this is exactly m.Run: zero collector overhead, tests untouched.
func LockGraphTestMain(pkg string, run func() int) int {
	prefix := os.Getenv("MACHLOCK_LOCKGRAPH")
	if prefix == "" {
		return run()
	}
	if !Enabled() {
		Enable()
	}
	EnableLockGraph()
	code := run()
	DisableLockGraph()
	g := LockGraphSnapshot("go test " + pkg + " (MACHLOCK_LOCKGRAPH)")
	path := prefix + "-" + pkg + ".json"
	if err := lockgraph.WriteFile(path, g); err != nil {
		fmt.Fprintf(os.Stderr, "machlock: lockgraph dump: %v\n", err)
		if code == 0 {
			code = 1
		}
	}
	return code
}

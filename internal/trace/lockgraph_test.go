package trace

import (
	"sync"
	"testing"

	"machlock/internal/lockgraph"
)

// graphTestSetup enables tracing plus the collector with clean edge state
// and restores everything on cleanup.
func graphTestSetup(t *testing.T) {
	t.Helper()
	wasEnabled := Enabled()
	Enable()
	ResetLockGraph()
	EnableLockGraph()
	t.Cleanup(func() {
		DisableLockGraph()
		ResetLockGraph()
		if !wasEnabled {
			Disable()
		}
	})
}

func findEdge(g *lockgraph.Graph, from, to string) *lockgraph.Edge {
	for i := range g.Edges {
		if g.Edges[i].From == from && g.Edges[i].To == to {
			return &g.Edges[i]
		}
	}
	return nil
}

func TestLockGraphRecordsNestedAcquisition(t *testing.T) {
	graphTestSetup(t)
	outer := NewClass("graphtest", "vm.map", KindComplex)  // canonical name
	inner := NewClass("graphtest", "vm.object", KindSpin)  // canonical name
	other := NewClass("graphtest", "ipc.port", KindObject) // never nested
	for i := 0; i < 3; i++ {
		outer.AcquiredBy(1, false, 0)
		inner.AcquiredBy(1, false, 0)
		inner.ReleasedBy(1, 10)
		outer.ReleasedBy(1, 20)
	}
	other.AcquiredBy(1, false, 0)
	other.ReleasedBy(1, 5)

	g := LockGraphSnapshot("test")
	if err := g.Validate(); err != nil {
		t.Fatalf("snapshot invalid: %v", err)
	}
	e := findEdge(g, "vm.map", "vm.object")
	if e == nil || e.Count != 3 {
		t.Fatalf("want vm.map->vm.object count 3, got %+v (edges %+v)", e, g.Edges)
	}
	if findEdge(g, "vm.object", "vm.map") != nil {
		t.Fatal("release order must not invert the edge")
	}
	if findEdge(g, "vm.map", "ipc.port") != nil || findEdge(g, "ipc.port", "vm.object") != nil {
		t.Fatalf("non-nested class grew edges: %+v", g.Edges)
	}
}

func TestLockGraphOutOfOrderReleaseAndSelfNesting(t *testing.T) {
	graphTestSetup(t)
	a := NewClass("graphtest", "ipc.space", KindComplex)
	b := NewClass("graphtest", "kern.task", KindObject)
	// Hand-over-hand: release a (earlier hold) before b.
	a.Acquired(false, 0)
	b.Acquired(false, 0)
	a.Released(10)
	// Still holding b here: acquiring a again must record b->a.
	a.Acquired(false, 0)
	a.Released(1)
	b.Released(5)
	// Same-class nesting (two tasks locked in order) is not an edge.
	b.Acquired(false, 0)
	b.Acquired(false, 0)
	b.Released(1)
	b.Released(1)

	g := LockGraphSnapshot("test")
	if e := findEdge(g, "ipc.space", "kern.task"); e == nil || e.Count != 1 {
		t.Fatalf("want ipc.space->kern.task count 1: %+v", g.Edges)
	}
	if e := findEdge(g, "kern.task", "ipc.space"); e == nil || e.Count != 1 {
		t.Fatalf("hand-over-hand reacquire must record kern.task->ipc.space: %+v", g.Edges)
	}
	if findEdge(g, "kern.task", "kern.task") != nil {
		t.Fatal("same-class nesting must not produce a self-edge")
	}
}

func TestLockGraphPerGoroutineIsolation(t *testing.T) {
	graphTestSetup(t)
	a := NewClass("graphtest", "kern.thread", KindObject)
	b := NewClass("graphtest", "kern.processor", KindObject)
	// Goroutine 1 holds a while goroutine 2 independently takes b: no
	// cross-goroutine edge may appear.
	holding := make(chan struct{})
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		a.Acquired(false, 0)
		close(holding)
		<-done
		a.Released(1)
	}()
	go func() {
		defer wg.Done()
		<-holding
		b.Acquired(false, 0)
		b.Released(1)
		close(done)
	}()
	wg.Wait()
	g := LockGraphSnapshot("test")
	if findEdge(g, "kern.thread", "kern.processor") != nil {
		t.Fatalf("cross-goroutine false edge: %+v", g.Edges)
	}
}

func TestLockGraphZoneCollapseAndUnmapped(t *testing.T) {
	graphTestSetup(t)
	z1 := NewClass("graphtest", "zone.alpha", KindSpin)
	z2 := NewClass("graphtest", "zone.beta", KindSpin)
	m := NewClass("graphtest", "vm.map", KindComplex)
	stray := NewClass("graphtest", "harness.stray", KindSpin)
	m.Acquired(false, 0)
	z1.Acquired(false, 0)
	z1.Released(1)
	z2.Acquired(false, 0)
	z2.Released(1)
	stray.Acquired(false, 0)
	stray.Released(1)
	m.Released(9)

	g := LockGraphSnapshot("test")
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	e := findEdge(g, "vm.map", "zalloc.zone")
	if e == nil || e.Count != 2 {
		t.Fatalf("zone classes must collapse to zalloc.zone with summed count: %+v", g.Edges)
	}
	found := false
	for _, u := range g.UnmappedClasses {
		if u == "harness.stray" {
			found = true
		}
	}
	if !found {
		t.Fatalf("unmapped class not surfaced: %v", g.UnmappedClasses)
	}
	for _, e := range g.Edges {
		if e.From == "harness.stray" || e.To == "harness.stray" {
			t.Fatalf("unmapped class leaked into edges: %+v", e)
		}
	}
}

func TestLockGraphGateOff(t *testing.T) {
	wasEnabled := Enabled()
	Enable()
	ResetLockGraph()
	t.Cleanup(func() {
		ResetLockGraph()
		if !wasEnabled {
			Disable()
		}
	})
	// Collector off: classed acquisitions must leave no edges behind.
	a := NewClass("graphtest", "vm.map.ref", KindRef)
	b := NewClass("graphtest", "kern.pset", KindObject)
	a.Acquired(false, 0)
	b.Acquired(false, 0)
	b.Released(1)
	a.Released(1)
	if g := LockGraphSnapshot("test"); len(g.Edges) != 0 {
		t.Fatalf("edges recorded while gate off: %+v", g.Edges)
	}
}

package trace

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"
	"unsafe"
)

// Op is a flight-recorder event type.
type Op uint8

// The event types. Arg carries the op-specific payload noted per op.
const (
	OpAcquire    Op = iota // lock acquired; Arg = wait ns (0 if first-try)
	OpRelease              // lock released; Arg = hold ns (-1 unknown)
	OpWait                 // wait (sleep or spin) for a lock began
	OpDoneWait             // wait ended; Arg = wait ns
	OpUpgrade              // read-to-write upgrade; Arg = 1 ok, 0 failed
	OpDowngrade            // write-to-read downgrade
	OpRefClone             // reference cloned; Arg = count after
	OpRefRelease           // reference released; Arg = count after
	OpDeactivate           // object deactivated (active termination)
	OpBiasRevoke           // reader bias revoked by a write request
	OpViolation            // lock-ordering violation; Arg = running count
	OpSpanBegin            // operation span opened (trace.BeginSpan)
	OpSpanEnd              // operation span closed; Arg = total ns
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpAcquire:
		return "acquire"
	case OpRelease:
		return "release"
	case OpWait:
		return "wait"
	case OpDoneWait:
		return "done-wait"
	case OpUpgrade:
		return "upgrade"
	case OpDowngrade:
		return "downgrade"
	case OpRefClone:
		return "ref-clone"
	case OpRefRelease:
		return "ref-release"
	case OpDeactivate:
		return "deactivate"
	case OpBiasRevoke:
		return "bias-revoke"
	case OpViolation:
		return "violation"
	case OpSpanBegin:
		return "span-begin"
	case OpSpanEnd:
		return "span-end"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Event is one decoded flight-recorder entry.
type Event struct {
	TimeNs int64  // wall-clock nanoseconds at recording
	Class  *Class // registered class (nil only if the registry was reset)
	Op     Op
	Arg    int64  // op-specific payload, see the Op constants
	TID    uint32 // recording thread's trace id (RegisterThread); 0 = anonymous
	Shard  int    // recorder shard the event landed in
	Seq    uint64 // shard-local sequence number (1-based)
}

// String renders the event for dumps.
func (e Event) String() string {
	name := "?"
	if e.Class != nil {
		name = e.Class.pkg + "/" + e.Class.name
	}
	if e.TID != 0 {
		return fmt.Sprintf("%d %-28s %-11s arg=%d tid=%d(%s)", e.TimeNs, name, e.Op, e.Arg, e.TID, ThreadName(e.TID))
	}
	return fmt.Sprintf("%d %-28s %-11s arg=%d", e.TimeNs, name, e.Op, e.Arg)
}

// slot is one ring entry. All fields are atomics so concurrent recording
// never takes a lock and never trips the race detector; seq doubles as the
// publication marker (stored last, zeroed first), so a reader that sees
// the same nonzero seq before and after loading the payload has a
// consistent event. A slot being overwritten during a concurrent dump is
// simply skipped.
type slot struct {
	seq  atomic.Uint64 // shard ticket of the occupying event; 0 = in flux
	time atomic.Int64
	meta atomic.Uint64 // tid << 32 | class id << 8 | op
	arg  atomic.Int64
}

// shard is one per-goroutine-sharded ring. The pad keeps hot cursors of
// neighbouring shards off one cache line.
type shard struct {
	pos   atomic.Uint64
	_     [7]uint64
	slots []slot
}

// ring is the whole flight recorder.
type ring struct {
	shards []shard
}

// nshards is the shard count; a power of two so the shard index is a mask.
const nshards = 16

// DefaultRingCapacity is the default number of retained events per shard.
const DefaultRingCapacity = 2048

func newRing(perShard int) *ring {
	if perShard < 1 {
		perShard = 1
	}
	r := &ring{shards: make([]shard, nshards)}
	for i := range r.shards {
		r.shards[i].slots = make([]slot, perShard)
	}
	return r
}

var rec atomic.Pointer[ring]

func init() { rec.Store(newRing(DefaultRingCapacity)) }

// SetRingCapacity replaces the flight recorder with an empty one retaining
// n events per shard (n*16 total). Call while tracing is disabled; events
// recorded concurrently with the swap may land in the old ring and be
// lost.
func SetRingCapacity(n int) { rec.Store(newRing(n)) }

// ResetEvents discards all recorded events, keeping the current capacity.
func ResetEvents() { rec.Store(newRing(len(rec.Load().shards[0].slots))) }

// shardHint derives a shard index from the address of a stack local: cheap,
// allocation-free, and distinct per goroutine (stack segments are distinct
// allocations), so concurrent tracers land in different shards. Stability
// across stack growth is not needed — only distribution.
func shardHint() int {
	var b byte
	h := uintptr(unsafe.Pointer(&b))
	// Fibonacci mix so the low bits reflect the whole address, not the
	// within-frame offset.
	h = (h >> 6) * 0x9E3779B97F4A7C15
	return int((h >> 40) & (nshards - 1))
}

// emit records one event. Callers have already verified tracing is on;
// recording is wait-free: one atomic cursor bump plus atomic slot stores.
// tid is the recording thread's trace id (0 = anonymous); class ids above
// 24 bits would collide with it, far beyond any real registry size.
func emit(classID uint32, op Op, arg int64, tid uint32) {
	sh := &rec.Load().shards[shardHint()]
	t := sh.pos.Add(1)
	sl := &sh.slots[(t-1)%uint64(len(sh.slots))]
	sl.seq.Store(0) // invalidate while the payload is in flux
	sl.time.Store(time.Now().UnixNano())
	sl.meta.Store(uint64(tid)<<32 | uint64(classID&0xffffff)<<8 | uint64(op))
	sl.arg.Store(arg)
	sl.seq.Store(t)
}

// Events returns up to max recent events, oldest first, merged across
// shards in timestamp order. Dumping while tracing is running is safe;
// slots overwritten mid-read are skipped. For an exact tail, Disable
// first.
func Events(max int) []Event {
	r := rec.Load()
	var out []Event
	for si := range r.shards {
		sh := &r.shards[si]
		for i := range sh.slots {
			sl := &sh.slots[i]
			seq := sl.seq.Load()
			if seq == 0 {
				continue
			}
			ts := sl.time.Load()
			meta := sl.meta.Load()
			arg := sl.arg.Load()
			if sl.seq.Load() != seq {
				continue // overwritten while reading
			}
			out = append(out, Event{
				TimeNs: ts,
				Class:  classByID(uint32(meta>>8) & 0xffffff),
				Op:     Op(meta & 0xff),
				Arg:    arg,
				TID:    uint32(meta >> 32),
				Shard:  si,
				Seq:    seq,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TimeNs != out[j].TimeNs {
			return out[i].TimeNs < out[j].TimeNs
		}
		if out[i].Shard != out[j].Shard {
			return out[i].Shard < out[j].Shard
		}
		return out[i].Seq < out[j].Seq
	})
	if max > 0 && len(out) > max {
		out = out[len(out)-max:]
	}
	return out
}

// Package trace is the process-wide lock and reference-count observability
// layer: the unified form of the debugging-and-statistics hooks the paper
// says the simple lock structure was designed to admit ("a simple lock is
// stored ... in a structure to allow the simple addition of debugging and
// statistics information", Appendix A.1), extended to every coordination
// mechanism in the kernel.
//
// It has three parts:
//
//   - A lock REGISTRY: every named coordination site (simple lock, complex
//     lock, reference count, kernel object) registers a Class — name,
//     package, kind — at creation, typically once per type in a package
//     var. All instances sharing a class aggregate into one profile row,
//     which is what a developer hunting the kernel's coarse locks wants.
//
//   - A FLIGHT RECORDER: a sharded, lock-free ring buffer of recent trace
//     events (acquire/release/wait/upgrade/downgrade/ref-clone/ref-release/
//     deactivate). Shards are selected by a per-goroutine stack hint so
//     concurrent tracers rarely share a cache line; slots are published
//     with atomic stores and validated by sequence number on read, so
//     recording never takes a lock.
//
//   - A CONTENTION PROFILE per class: acquisition and contention counters
//     plus hold-time and wait-time histograms (internal/stats.Histogram),
//     exportable as text, CSV, or expvar-style JSON.
//
// The entire layer is gated by one atomic flag: with tracing off (the
// default) every hook is a single atomic load and a predicted branch,
// mirroring the cxlock observer pattern. Instrumented call sites must
// therefore consult Class.On before doing any timing work of their own.
package trace

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"machlock/internal/stats"
)

// Kind classifies the coordination mechanism behind a Class.
type Kind uint8

// The mechanism kinds.
const (
	KindSpin    Kind = iota // splock simple locks (incl. Stat and Checked)
	KindComplex             // cxlock readers/writer locks
	KindRef                 // bare reference counts
	KindObject              // object.Object (lock + refcount + deactivate)
	KindOp                  // operation span classes (NewOp): vm.fault, ipc.send, ...
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindSpin:
		return "spin"
	case KindComplex:
		return "complex"
	case KindRef:
		return "ref"
	case KindObject:
		return "object"
	case KindOp:
		return "op"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// enabled is the master switch. Off means every hook in the kernel is one
// atomic load; nothing times, counts, or records.
var enabled atomic.Bool

// Enable turns tracing and profile accounting on.
func Enable() { enabled.Store(true) }

// Disable turns tracing off. In-flight operations that observed the enabled
// state may still deliver a final sample.
func Disable() { enabled.Store(false) }

// Enabled reports whether tracing is on.
func Enabled() bool { return enabled.Load() }

// Class is one registered coordination site: the aggregation unit of the
// observability layer. Create with NewClass (usually in a package var);
// instances are shared freely between lock instances of the same type.
//
// All recording methods are nil-receiver safe and no-ops while tracing is
// disabled, so instrumented code can hold an optional *Class and call
// unconditionally after checking On for its own timing work.
type Class struct {
	id   uint32
	name string
	pkg  string
	kind Kind

	acquisitions   stats.Counter
	contended      stats.Counter
	releases       stats.Counter
	upgrades       stats.Counter
	failedUpgrades stats.Counter
	downgrades     stats.Counter
	refClones      stats.Counter
	refReleases    stats.Counter
	deactivates    stats.Counter
	biasRevokes    stats.Counter
	hold           stats.Histogram
	wait           stats.Histogram
	// work is used only by KindOp classes: the span's latency net of lock
	// waiting (hold = total latency, wait = lock wait, work = difference,
	// sampled per completed span so its quantiles are real, not derived).
	work stats.Histogram

	// sampleCtr drives the deterministic 1-in-StackSampling stack capture
	// of the attribution layer (stack.go).
	sampleCtr atomic.Uint64

	// The three stack-keyed site profiles (stack.go): contended waits by
	// waiter stack, holds by holder stack, and waiter delay blamed on the
	// holder stack that caused it.
	waitSites  siteProfile
	holdSites  siteProfile
	blameSites siteProfile

	// live is the census gauge: instances of this class currently alive
	// (objects created and not yet destroyed, zone elements constructed).
	// Unlike every other field it is NOT gated by the enabled flag — a
	// gauge that misses events while tracing is off reports garbage
	// forever after — so census updates must be rare (object lifetime, not
	// lock operations).
	live stats.Counter
}

// registry is the global class table. Registration is rare (package init,
// constructor calls); lookups by ID on the event-dump path snapshot the
// slice under the mutex.
var registry struct {
	mu    sync.Mutex
	byKey map[string]*Class
	all   []*Class
}

// NewClass registers (or, for a duplicate package/name pair, returns the
// existing) class. Registering the same site from several instances is the
// intended usage: all of them aggregate into one profile row.
func NewClass(pkg, name string, kind Kind) *Class {
	key := pkg + "/" + name
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if registry.byKey == nil {
		registry.byKey = make(map[string]*Class)
	}
	if c, ok := registry.byKey[key]; ok {
		return c
	}
	c := &Class{id: uint32(len(registry.all)), name: name, pkg: pkg, kind: kind}
	registry.byKey[key] = c
	registry.all = append(registry.all, c)
	return c
}

// Lookup returns the class registered under pkg/name, or nil.
func Lookup(pkg, name string) *Class {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	return registry.byKey[pkg+"/"+name]
}

// Classes returns a snapshot of all registered classes in registration
// order.
func Classes() []*Class {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	out := make([]*Class, len(registry.all))
	copy(out, registry.all)
	return out
}

// classByID resolves an event's class id; nil if the id is stale/unknown.
func classByID(id uint32) *Class {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if int(id) < len(registry.all) {
		return registry.all[id]
	}
	return nil
}

// Name returns the class name.
func (c *Class) Name() string { return c.name }

// Pkg returns the registering package.
func (c *Class) Pkg() string { return c.pkg }

// Kind returns the mechanism kind.
func (c *Class) Kind() Kind { return c.kind }

// On reports whether this class should be recorded right now: tracing is
// enabled and the receiver is non-nil. Call sites use it to skip their own
// clock reads on the disabled fast path.
func (c *Class) On() bool { return c != nil && enabled.Load() }

// Acquired records one successful acquisition. contended marks an
// acquisition that did not succeed on the first attempt; waitNs (>= 0) is
// how long it waited.
func (c *Class) Acquired(contended bool, waitNs int64) {
	c.AcquiredBy(0, contended, waitNs)
}

// AcquiredBy is Acquired with the acquiring thread's trace id (see
// RegisterThread), which stamps the flight-recorder event so the timeline
// export can place it on the thread's track. tid 0 means anonymous.
func (c *Class) AcquiredBy(tid uint32, contended bool, waitNs int64) {
	if !c.On() {
		return
	}
	c.acquisitions.Inc()
	if contended {
		c.contended.Inc()
		c.wait.Observe(waitNs)
	}
	if graphEnabled.Load() {
		lockGraphAcquire(c)
	}
	emit(c.id, OpAcquire, waitNs, tid)
}

// Released records one release with the hold time of the critical section
// (holdNs < 0 means unknown; no hold sample is recorded).
func (c *Class) Released(holdNs int64) { c.ReleasedBy(0, holdNs) }

// ReleasedBy is Released with the releasing thread's trace id.
func (c *Class) ReleasedBy(tid uint32, holdNs int64) {
	if !c.On() {
		return
	}
	c.releases.Inc()
	if holdNs >= 0 {
		c.hold.Observe(holdNs)
	}
	if graphEnabled.Load() {
		lockGraphRelease(c)
	}
	emit(c.id, OpRelease, holdNs, tid)
}

// Waiting records the start of a wait (sleep or spin) for the lock.
func (c *Class) Waiting() { c.WaitingBy(0) }

// WaitingBy is Waiting with the waiting thread's trace id.
func (c *Class) WaitingBy(tid uint32) {
	if !c.On() {
		return
	}
	emit(c.id, OpWait, 0, tid)
}

// DoneWaiting records the end of a wait; waitNs is the time spent waiting.
func (c *Class) DoneWaiting(waitNs int64) { c.DoneWaitingBy(0, waitNs) }

// DoneWaitingBy is DoneWaiting with the waiting thread's trace id.
func (c *Class) DoneWaitingBy(tid uint32, waitNs int64) {
	if !c.On() {
		return
	}
	emit(c.id, OpDoneWait, waitNs, tid)
}

// Upgraded records a read-to-write upgrade attempt; ok reports whether it
// succeeded (a failed upgrade released the caller's read hold).
func (c *Class) Upgraded(ok bool) {
	if !c.On() {
		return
	}
	if ok {
		c.upgrades.Inc()
		emit(c.id, OpUpgrade, 1, 0)
	} else {
		c.failedUpgrades.Inc()
		emit(c.id, OpUpgrade, 0, 0)
	}
}

// Downgraded records a write-to-read downgrade.
func (c *Class) Downgraded() {
	if !c.On() {
		return
	}
	c.downgrades.Inc()
	emit(c.id, OpDowngrade, 0, 0)
}

// RefClone records a reference clone; refs is the count after the clone.
func (c *Class) RefClone(refs int64) {
	if !c.On() {
		return
	}
	c.refClones.Inc()
	emit(c.id, OpRefClone, refs, 0)
}

// RefRelease records a reference release; refs is the count after the
// release (0 means the object is being destroyed).
func (c *Class) RefRelease(refs int64) {
	if !c.On() {
		return
	}
	c.refReleases.Inc()
	emit(c.id, OpRefRelease, refs, 0)
}

// Deactivated records an object deactivation (Section 9 active
// termination).
func (c *Class) Deactivated() {
	if !c.On() {
		return
	}
	c.deactivates.Inc()
	emit(c.id, OpDeactivate, 0, 0)
}

// BiasRevoked records a write request revoking a complex lock's reader
// bias (the start of a visible-readers drain).
func (c *Class) BiasRevoked() {
	if !c.On() {
		return
	}
	c.biasRevokes.Inc()
	emit(c.id, OpBiasRevoke, 0, 0)
}

// CensusInc records the birth of one instance of this class (an object
// created, a zone element constructed). Always counted — the live census
// must stay correct across Enable/Disable — so call only from lifetime
// events, never from lock operations.
func (c *Class) CensusInc() {
	if c == nil {
		return
	}
	c.live.Inc()
}

// CensusDec records the death of one instance (object destroyed).
func (c *Class) CensusDec() {
	if c == nil {
		return
	}
	c.live.Add(-1)
}

// Live returns the class's census: instances currently alive.
func (c *Class) Live() int64 {
	if c == nil {
		return 0
	}
	return c.live.Load()
}

// HoldQuantile returns the q-th quantile of the class's hold-time samples
// in nanoseconds (accurate to a power of two, like stats.Histogram).
func (c *Class) HoldQuantile(q float64) int64 {
	if c == nil {
		return 0
	}
	return c.hold.Quantile(q)
}

// WaitQuantile returns the q-th quantile of the class's wait-time samples.
func (c *Class) WaitQuantile(q float64) int64 {
	if c == nil {
		return 0
	}
	return c.wait.Quantile(q)
}

// Profile is a point-in-time summary of one class's accounting.
type Profile struct {
	Name string
	Pkg  string
	Kind Kind

	Acquisitions int64
	Contended    int64
	// ContentionRate is Contended / Acquisitions.
	ContentionRate float64
	Releases       int64

	MeanHoldNs float64
	P50HoldNs  int64
	P90HoldNs  int64
	P99HoldNs  int64
	MaxHoldNs  int64
	MeanWaitNs float64
	P50WaitNs  int64
	P90WaitNs  int64
	P99WaitNs  int64
	MaxWaitNs  int64

	Upgrades        int64
	FailedUpgrades  int64
	Downgrades      int64
	BiasRevocations int64

	RefClones   int64
	RefReleases int64
	Deactivates int64

	// Live is the census gauge: instances of this class currently alive.
	Live int64
}

// Snapshot returns the class's current profile.
func (c *Class) Snapshot() Profile {
	p := Profile{
		Name:            c.name,
		Pkg:             c.pkg,
		Kind:            c.kind,
		Acquisitions:    c.acquisitions.Load(),
		Contended:       c.contended.Load(),
		Releases:        c.releases.Load(),
		MeanHoldNs:      c.hold.Mean(),
		P50HoldNs:       c.hold.Quantile(0.50),
		P90HoldNs:       c.hold.Quantile(0.90),
		P99HoldNs:       c.hold.Quantile(0.99),
		MaxHoldNs:       c.hold.Max(),
		MeanWaitNs:      c.wait.Mean(),
		P50WaitNs:       c.wait.Quantile(0.50),
		P90WaitNs:       c.wait.Quantile(0.90),
		P99WaitNs:       c.wait.Quantile(0.99),
		MaxWaitNs:       c.wait.Max(),
		Upgrades:        c.upgrades.Load(),
		FailedUpgrades:  c.failedUpgrades.Load(),
		Downgrades:      c.downgrades.Load(),
		BiasRevocations: c.biasRevokes.Load(),
		RefClones:       c.refClones.Load(),
		RefReleases:     c.refReleases.Load(),
		Deactivates:     c.deactivates.Load(),
		Live:            c.live.Load(),
	}
	if p.Acquisitions > 0 {
		p.ContentionRate = float64(p.Contended) / float64(p.Acquisitions)
	}
	return p
}

// reset zeroes the class's accounting.
func (c *Class) reset() {
	c.acquisitions.Reset()
	c.contended.Reset()
	c.releases.Reset()
	c.upgrades.Reset()
	c.failedUpgrades.Reset()
	c.downgrades.Reset()
	c.refClones.Reset()
	c.refReleases.Reset()
	c.deactivates.Reset()
	c.biasRevokes.Reset()
	c.hold.Reset()
	c.wait.Reset()
	c.work.Reset()
	c.waitSites.reset()
	c.holdSites.reset()
	c.blameSites.reset()
}

// Profiles returns a snapshot of every registered class, in registration
// order. Classes with zero activity are included; filter with Ranked for
// reports.
func Profiles() []Profile {
	cs := Classes()
	out := make([]Profile, len(cs))
	for i, c := range cs {
		out[i] = c.Snapshot()
	}
	return out
}

// Ranked returns the profiles with activity (acquisitions or ref traffic),
// hottest first: descending by contended acquisitions, breaking ties by
// total acquisitions, then by ref traffic. This is the ordering the
// "hottest locks" report prints.
func Ranked() []Profile {
	var out []Profile
	for _, p := range Profiles() {
		if p.Acquisitions > 0 || p.RefClones > 0 || p.RefReleases > 0 {
			out = append(out, p)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Contended != out[j].Contended {
			return out[i].Contended > out[j].Contended
		}
		if out[i].Acquisitions != out[j].Acquisitions {
			return out[i].Acquisitions > out[j].Acquisitions
		}
		return out[i].RefClones+out[i].RefReleases > out[j].RefClones+out[j].RefReleases
	})
	return out
}

// ResetProfiles zeroes the accounting of every registered class (the
// classes stay registered).
func ResetProfiles() {
	for _, c := range Classes() {
		c.reset()
	}
}

package trace

import (
	"fmt"
	"io"
	"strings"
)

// This file renders the flight-recorder ring as Chrome trace-event JSON
// (the "JSON Array Format" both chrome://tracing and ui.perfetto.dev
// ingest): one track per registered kernel thread, complete slices for
// hold / wait / span intervals, instants for the point events. Load the
// output of /debug/machlock/timeline straight into Perfetto.
//
// The ring stores single events, not paired begin/end markers, so slices
// are derived from the completed-interval events that carry a duration:
//
//	OpRelease  arg=hold ns  → "hold <class>" slice ending at the event
//	OpDoneWait arg=wait ns  → "wait <class>" slice ending at the event
//	OpSpanEnd  arg=total ns → "<op class>"   slice ending at the event
//
// That keeps the export single-pass and immune to a begin marker having
// been overwritten in the ring while its end survived. OpSpanBegin and
// OpAcquire/OpWait are dropped (their information is in the completed
// interval); the remaining ops become instant events on their thread's
// track.

// timelinePid is the synthetic process id carrying all machlock tracks.
const timelinePid = 1

// WriteTimeline writes events as Chrome trace-event JSON. Events with
// TID 0 (spin-lock sites and other anonymous recordings) share the
// "(anonymous)" track. Timestamps are microseconds relative to the
// earliest event so the viewer doesn't start zoomed out to epoch scale.
func WriteTimeline(w io.Writer, events []Event) error {
	var b strings.Builder
	b.Grow(256 + len(events)*128)
	b.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`)
	first := true
	put := func(format string, args ...any) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, format, args...)
	}

	put(`{"ph":"M","pid":%d,"name":"process_name","args":{"name":"machlock"}}`, timelinePid)

	// Thread-name metadata for every registered thread plus the shared
	// anonymous track. Chrome sorts tids numerically, so registration
	// order is track order.
	put(`{"ph":"M","pid":%d,"tid":0,"name":"thread_name","args":{"name":"(anonymous)"}}`, timelinePid)
	n := threadCount()
	for tid := 1; tid <= n; tid++ {
		put(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":%s}}`,
			timelinePid, tid, jsonString(ThreadName(uint32(tid))))
	}

	var base int64
	if len(events) > 0 {
		base = events[0].TimeNs
		for _, e := range events[1:] {
			if e.TimeNs < base {
				base = e.TimeNs
			}
		}
	}
	// microseconds, preserving sub-µs as fractional (the format allows it)
	us := func(ns int64) float64 { return float64(ns-base) / 1e3 }

	for _, e := range events {
		cls := "?"
		if e.Class != nil {
			cls = e.Class.pkg + "/" + e.Class.name
		}
		switch e.Op {
		case OpRelease:
			if e.Arg < 0 {
				// hold duration unknown (lock handed off without a
				// stamped acquisition) — render as an instant instead.
				put(`{"ph":"i","pid":%d,"tid":%d,"ts":%.3f,"s":"t","name":%s,"cat":"lock"}`,
					timelinePid, e.TID, us(e.TimeNs), jsonString("release "+cls))
				continue
			}
			put(`{"ph":"X","pid":%d,"tid":%d,"ts":%.3f,"dur":%.3f,"name":%s,"cat":"hold"}`,
				timelinePid, e.TID, us(e.TimeNs-e.Arg), float64(e.Arg)/1e3, jsonString("hold "+cls))
		case OpDoneWait:
			put(`{"ph":"X","pid":%d,"tid":%d,"ts":%.3f,"dur":%.3f,"name":%s,"cat":"wait"}`,
				timelinePid, e.TID, us(e.TimeNs-e.Arg), float64(e.Arg)/1e3, jsonString("wait "+cls))
		case OpSpanEnd:
			put(`{"ph":"X","pid":%d,"tid":%d,"ts":%.3f,"dur":%.3f,"name":%s,"cat":"op"}`,
				timelinePid, e.TID, us(e.TimeNs-e.Arg), float64(e.Arg)/1e3, jsonString(cls))
		case OpAcquire, OpWait, OpSpanBegin:
			// Subsumed by the completed-interval events above.
		default:
			put(`{"ph":"i","pid":%d,"tid":%d,"ts":%.3f,"s":"t","name":%s,"cat":"event","args":{"arg":%d}}`,
				timelinePid, e.TID, us(e.TimeNs), jsonString(e.Op.String()+" "+cls), e.Arg)
		}
	}

	b.WriteString("]}")
	_, err := io.WriteString(w, b.String())
	return err
}

// jsonString escapes s as a JSON string literal. Class and thread names
// are plain identifiers in practice, but the escape keeps the output
// well-formed for any input.
func jsonString(s string) string {
	var b strings.Builder
	b.Grow(len(s) + 2)
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		case '\r':
			b.WriteString(`\r`)
		default:
			if r < 0x20 {
				fmt.Fprintf(&b, `\u%04x`, r)
			} else {
				b.WriteRune(r)
			}
		}
	}
	b.WriteByte('"')
	return b.String()
}

package trace

import (
	"bytes"
	"compress/gzip"
	"strings"
	"testing"
)

// TestPprofRoundTrip feeds real sampled sites through the proto writer and
// the independent parser, asserting the profile go tool pprof sees carries
// the right sample types, values, labels, and symbolized call sites.
func TestPprofRoundTrip(t *testing.T) {
	Enable()
	defer Disable()
	withSampling(t, 1)
	c := testClass(t, KindComplex)

	h := c.SampleHold(0, 3)
	if h == nil {
		t.Fatal("SampleHold returned nil at rate 1")
	}
	c.EndHold(h, 2000)
	c.BlameWait(h, 900)
	c.BlameWait(nil, 111)
	c.WaitSampled(0, 700)

	for _, tc := range []struct {
		kind      SiteKind
		countType string
	}{
		{SiteWaits, "contentions/count"},
		{SiteHolds, "holds/count"},
		{SiteBlame, "contentions/count"},
	} {
		var buf bytes.Buffer
		if err := WritePprof(&buf, tc.kind); err != nil {
			t.Fatalf("%v: WritePprof: %v", tc.kind, err)
		}
		// The body must really be gzip (pprof's wire convention).
		if _, err := gzip.NewReader(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("%v: body is not gzipped: %v", tc.kind, err)
		}
		p, err := ParsePprof(buf.Bytes())
		if err != nil {
			t.Fatalf("%v: ParsePprof: %v", tc.kind, err)
		}
		if len(p.SampleTypes) != 2 || p.SampleTypes[0] != tc.countType ||
			p.SampleTypes[1] != "delay/nanoseconds" {
			t.Fatalf("%v: sample types %v", tc.kind, p.SampleTypes)
		}
		if len(p.Samples) == 0 {
			t.Fatalf("%v: no samples", tc.kind)
		}

		s := p.FindSample("TestPprofRoundTrip")
		if s == nil {
			t.Fatalf("%v: no sample names the test function; samples: %+v", tc.kind, p.Samples)
		}
		if s.Labels["class"] != "tracetest/"+t.Name() {
			t.Fatalf("%v: class label %q", tc.kind, s.Labels["class"])
		}
		if s.Labels["lockkind"] != "complex" {
			t.Fatalf("%v: lockkind label %q", tc.kind, s.Labels["lockkind"])
		}
		wantNs := map[SiteKind]int64{SiteWaits: 700, SiteHolds: 2000, SiteBlame: 900}[tc.kind]
		if len(s.Values) != 2 || s.Values[0] != 1 || s.Values[1] != wantNs {
			t.Fatalf("%v: values %v, want [1 %d]", tc.kind, s.Values, wantNs)
		}
	}

	// The nil-stack blame delay must surface as the synthetic
	// "<unattributed blame>" frame, not silently vanish.
	var buf bytes.Buffer
	if err := WritePprof(&buf, SiteBlame); err != nil {
		t.Fatal(err)
	}
	p, err := ParsePprof(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	un := p.FindSample("<unattributed blame>")
	if un == nil || un.Values[1] != 111 {
		t.Fatalf("unattributed blame missing or wrong: %+v", un)
	}
}

// TestPprofEmptyProfile: a kind with no sites must still encode as a valid
// profile (go tool pprof reports it as empty rather than corrupt).
func TestPprofEmptyProfile(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePprof(&buf, SiteHolds); err != nil {
		t.Fatal(err)
	}
	p, err := ParsePprof(buf.Bytes())
	if err != nil {
		t.Fatalf("empty profile does not parse: %v", err)
	}
	if len(p.SampleTypes) != 2 {
		t.Fatalf("sample types %v", p.SampleTypes)
	}
}

// TestParsePprofRejectsGarbage: the validator must fail loudly on corrupt
// input, since the CI smoke leans on it.
func TestParsePprofRejectsGarbage(t *testing.T) {
	if _, err := ParsePprof([]byte("not a profile")); err == nil {
		t.Fatal("garbage accepted")
	}
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	zw.Write([]byte{0xff, 0xff, 0xff})
	zw.Close()
	if _, err := ParsePprof(gz.Bytes()); err == nil {
		t.Fatal("gzipped garbage accepted")
	}
}

// TestFindSampleMatchesSubstring exercises the helper the smoke checks use.
func TestFindSampleMatchesSubstring(t *testing.T) {
	p := &PprofProfile{Samples: []PprofSampleView{
		{Funcs: []string{"main.alpha", "runtime.goexit"}, Values: []int64{1, 2}},
	}}
	if p.FindSample("alpha") == nil {
		t.Fatal("missed substring match")
	}
	if p.FindSample("beta") != nil {
		t.Fatal("invented a match")
	}
	if !strings.Contains(p.Samples[0].Funcs[0], "alpha") {
		t.Fatal("sanity")
	}
}

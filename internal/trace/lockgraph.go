package trace

// The dynamic lock-graph collector: when enabled, every classed lock
// acquisition records class-level held->acquired edges for the acquiring
// goroutine, building the runtime half of the machlock-lockgraph/v1
// cross-check (the static half is `machvet -graph`; the differ is
// `machvet -diff`). Same inlinable-gate pattern as the rest of the trace
// layer: one atomic load on the already-instrumented path when the
// collector is off, so it costs nothing unless a run opts in
// (machd -smoke -lockgraph, `make sim`, or /debug/machlock/lockgraph).

import (
	"runtime"
	"sync"
	"sync/atomic"

	"machlock/internal/lockgraph"
)

// graphEnabled gates the collector separately from the profile layer:
// edge recording needs per-goroutine state (a held-class stack keyed by
// goroutine id), which is an order of magnitude costlier than the counter
// bumps, so it is opt-in per run. Tracing itself must also be enabled —
// the hooks live behind Class.On().
var graphEnabled atomic.Bool

// EnableLockGraph turns the collector on. Call after Enable(); edges are
// only observed while both gates are up.
func EnableLockGraph() { graphEnabled.Store(true) }

// DisableLockGraph turns the collector off; accumulated edges remain
// until ResetLockGraph.
func DisableLockGraph() { graphEnabled.Store(false) }

// LockGraphOn reports whether the collector is recording.
func LockGraphOn() bool { return graphEnabled.Load() }

// graphShards spreads the per-goroutine held stacks over independently
// locked shards (keyed by goroutine id) so concurrent acquirers do not
// serialize on one mutex.
const graphShards = 64

type graphShard struct {
	mu   sync.Mutex
	held map[uint64][]uint32 // goroutine id -> stack of held class ids
	_    [4]uint64           // keep neighbouring shard locks off one line
}

var graphState struct {
	shards [graphShards]graphShard
	// edges: (from class id << 32 | to class id) -> count. Inserts are
	// rare (the edge set saturates quickly); counting is lock-free.
	edges sync.Map // uint64 -> *atomic.Int64
}

// goid parses the current goroutine's id from the runtime.Stack header
// ("goroutine 123 [running]:"). ~1µs — only paid while the collector is
// enabled, on paths that are already doing histogram and ring work.
func goid() uint64 {
	var buf [32]byte
	n := runtime.Stack(buf[:], false)
	// Skip "goroutine ".
	var id uint64
	for i := 10; i < n; i++ {
		c := buf[i]
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}

// lockGraphAcquire records edges held->c for every distinct class the
// goroutine already holds, then pushes c. Same-class nesting (two ports
// locked in order) is not an edge: ordering within a class is the address
// / LockPair discipline's problem, not the graph's — mirroring machvet's
// lockorder convention so the two views stay comparable.
func lockGraphAcquire(c *Class) {
	g := goid()
	sh := &graphState.shards[g%graphShards]
	sh.mu.Lock()
	held := sh.held[g]
	for _, from := range held {
		if from == c.id {
			continue
		}
		bumpEdge(from, c.id)
	}
	if sh.held == nil {
		sh.held = make(map[uint64][]uint32)
	}
	sh.held[g] = append(held, c.id)
	sh.mu.Unlock()
}

// lockGraphRelease pops the most recent hold of c on this goroutine.
// Out-of-order releases are legal (a complex lock released while a
// later-acquired simple lock is still held), hence last-match rather than
// strict top-of-stack. A release with no matching hold (collector enabled
// mid-critical-section) is dropped.
func lockGraphRelease(c *Class) {
	g := goid()
	sh := &graphState.shards[g%graphShards]
	sh.mu.Lock()
	held := sh.held[g]
	for i := len(held) - 1; i >= 0; i-- {
		if held[i] == c.id {
			held = append(held[:i], held[i+1:]...)
			if len(held) == 0 {
				delete(sh.held, g)
			} else {
				sh.held[g] = held
			}
			break
		}
	}
	sh.mu.Unlock()
}

func bumpEdge(from, to uint32) {
	key := uint64(from)<<32 | uint64(to)
	if n, ok := graphState.edges.Load(key); ok {
		n.(*atomic.Int64).Add(1)
		return
	}
	n := new(atomic.Int64)
	n.Add(1)
	actual, _ := graphState.edges.LoadOrStore(key, n)
	if actual != n {
		actual.(*atomic.Int64).Add(1)
	}
}

// ResetLockGraph discards all accumulated edges and held-stack state.
// Call between runs that must not see each other's edges (tests).
func ResetLockGraph() {
	for i := range graphState.shards {
		sh := &graphState.shards[i]
		sh.mu.Lock()
		sh.held = nil
		sh.mu.Unlock()
	}
	graphState.edges.Range(func(k, _ any) bool {
		graphState.edges.Delete(k)
		return true
	})
}

// LockGraphSnapshot renders the accumulated edges as a validated
// machlock-lockgraph/v1 dynamic graph. Class names are canonicalized
// (per-zone "zone.*" classes collapse to "zalloc.zone"); classes with no
// canonical mapping (test-harness locks) are dropped from the edge set
// and listed in UnmappedClasses. generator names the producing run.
func LockGraphSnapshot(generator string) *lockgraph.Graph {
	g := &lockgraph.Graph{
		Schema:    lockgraph.Schema,
		Source:    lockgraph.SourceDynamic,
		Generator: generator,
	}
	// Nodes: every registered class with a canonical name, whether or not
	// an edge touches it — the node set is the dynamic side's universe.
	nodes := map[string]bool{}
	unmapped := map[string]bool{}
	canon := map[uint32]string{} // class id -> canonical name ("" = drop)
	for _, c := range Classes() {
		if c.kind == KindOp {
			continue // operation spans are not locks
		}
		name, ok := lockgraph.CanonicalDynamic(c.name)
		if !ok {
			canon[c.id] = ""
			if !unmapped[c.name] {
				unmapped[c.name] = true
				g.UnmappedClasses = append(g.UnmappedClasses, c.name)
			}
			continue
		}
		canon[c.id] = name
		if name != "" && !nodes[name] {
			nodes[name] = true
			g.Nodes = append(g.Nodes, lockgraph.Node{
				Class:      name,
				Kind:       lockgraph.KindOf(name),
				Observable: true,
			})
		}
	}
	merged := map[string]*lockgraph.Edge{}
	graphState.edges.Range(func(k, v any) bool {
		key := k.(uint64)
		from, to := canon[uint32(key>>32)], canon[uint32(key&0xffffffff)]
		if from == "" || to == "" || from == to {
			// Unmapped or infrastructure endpoint, or two raw classes that
			// canonicalize together (zone.a -> zone.b): not an edge.
			return true
		}
		ek := from + "\x00" + to
		if e, ok := merged[ek]; ok {
			e.Count += v.(*atomic.Int64).Load()
			return true
		}
		merged[ek] = &lockgraph.Edge{From: from, To: to, Count: v.(*atomic.Int64).Load()}
		return true
	})
	for _, e := range merged {
		g.Edges = append(g.Edges, *e)
	}
	g.Normalize()
	return g
}

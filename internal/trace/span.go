package trace

import (
	"sync"
	"sync/atomic"
	"time"
)

// This file is the operation-span half of the attribution layer: a
// lightweight begin/end API that brackets one kernel operation (a vm fault,
// an ipc send, a task create) and splits its latency into lock-wait and
// work. Spans nest; lock waits are credited to the innermost open span of
// the waiting thread (and propagate outward when it ends, since a parent's
// wall clock contains its children's waits).
//
// Wait crediting arrives through the lock observers — see
// internal/opspan, which bridges the cxlock observer fan-out to
// SpanWaitStart/SpanWaitEnd — so span accounting adds nothing to lock hot
// paths: with no span open the bridge is one atomic load.

// thread registry -----------------------------------------------------------

// threadTab maps small trace ids to thread names for timeline tracks and
// event dumps. Registration happens at thread creation (sched.New / Go),
// never on lock paths.
var threadTab struct {
	mu    sync.Mutex
	names []string // index = tid - 1
}

// RegisterThread allocates a trace id for a kernel thread. Ids are small
// and dense so the timeline export can enumerate tracks; id 0 is reserved
// for anonymous (nil-thread) operations.
func RegisterThread(name string) uint32 {
	threadTab.mu.Lock()
	defer threadTab.mu.Unlock()
	threadTab.names = append(threadTab.names, name)
	return uint32(len(threadTab.names))
}

// ThreadName returns the name registered for tid ("" for 0 or unknown).
func ThreadName(tid uint32) string {
	threadTab.mu.Lock()
	defer threadTab.mu.Unlock()
	if tid == 0 || int(tid) > len(threadTab.names) {
		return ""
	}
	return threadTab.names[tid-1]
}

// threadCount returns how many thread ids have been handed out.
func threadCount() int {
	threadTab.mu.Lock()
	defer threadTab.mu.Unlock()
	return len(threadTab.names)
}

// Identifiable is implemented by thread handles that carry a trace id
// (sched.Thread does). BeginSpan accepts any owner; identifiable owners
// get their spans stamped onto their timeline track.
type Identifiable interface{ TraceID() uint32 }

// op classes ---------------------------------------------------------------

// NewOp registers an operation class: a Class of KindOp whose accounting
// reads as operation latency rather than lock occupancy — Acquisitions is
// completed spans, the hold histogram is total span latency, the wait
// histogram is in-span lock wait, and the work histogram is their
// difference. Op classes ride the same registry, Prometheus exposition,
// and flight recorder as lock classes.
func NewOp(pkg, name string) *Class { return NewClass(pkg, name, KindOp) }

// spans --------------------------------------------------------------------

// Span is one open operation. All fields are owned by the operating thread;
// only the registry that finds "the current span of thread X" is shared.
// The zero Span and the nil Span are inert, so instrumented operations can
// call BeginSpan/End unconditionally — with tracing disabled BeginSpan
// returns nil and End is a nil-receiver no-op.
type Span struct {
	op     *Class
	owner  any
	parent *Span
	tid    uint32

	startNs int64
	waitNs  int64 // accumulated lock wait inside the span
	waitAt  int64 // nonzero while a lock wait is in progress
}

// curSpans maps owner (an opaque thread handle) to its innermost open span.
var curSpans sync.Map // any -> *Span

// openSpans gates the wait-crediting hooks: with no span open anywhere they
// return after one atomic load.
var openSpans atomic.Int64

// BeginSpan opens a span for an operation of class op on behalf of owner
// (normally a *sched.Thread; it must be the handle the thread also passes
// to its locks, since wait crediting matches on it). Returns nil — and
// records nothing — while tracing is disabled. owner may be nil for
// anonymous operations: latency is still recorded, but lock waits cannot
// be credited and the span appears on the anonymous timeline track.
func BeginSpan(owner any, op *Class) *Span {
	if !op.On() {
		return nil
	}
	s := &Span{op: op, owner: owner, startNs: time.Now().UnixNano()}
	if id, ok := owner.(Identifiable); ok {
		s.tid = id.TraceID()
	}
	if owner != nil {
		if prev, loaded := curSpans.Swap(owner, s); loaded {
			s.parent = prev.(*Span)
		}
	}
	openSpans.Add(1)
	emit(op.id, OpSpanBegin, 0, s.tid)
	return s
}

// End closes the span, recording total latency, accumulated lock wait, and
// their difference into the op class, and propagating the wait to the
// parent span (a parent's wall clock contains the child's waits). Must be
// called by the owning thread. Nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Now().UnixNano()
	if s.waitAt != 0 {
		// A wait is still open (End inside a wait window should not
		// happen, but truncate rather than lose the time).
		s.waitNs += now - s.waitAt
		s.waitAt = 0
	}
	total := now - s.startNs
	work := total - s.waitNs
	if work < 0 {
		work = 0
	}
	c := s.op
	c.acquisitions.Inc()
	c.hold.Observe(total)
	c.wait.Observe(s.waitNs)
	c.work.Observe(work)
	if s.waitNs > 0 {
		c.contended.Inc()
	}
	if s.owner != nil {
		if s.parent != nil {
			s.parent.waitNs += s.waitNs
			curSpans.Store(s.owner, s.parent)
		} else {
			curSpans.Delete(s.owner)
		}
	}
	openSpans.Add(-1)
	emit(c.id, OpSpanEnd, total, s.tid)
}

// WaitNs returns the lock wait accumulated so far (for tests).
func (s *Span) WaitNs() int64 {
	if s == nil {
		return 0
	}
	return s.waitNs
}

// Op returns the span's operation class (nil for a nil span).
func (s *Span) Op() *Class {
	if s == nil {
		return nil
	}
	return s.op
}

// CurrentSpan returns owner's innermost open span, or nil.
func CurrentSpan(owner any) *Span {
	if owner == nil {
		return nil
	}
	if v, ok := curSpans.Load(owner); ok {
		return v.(*Span)
	}
	return nil
}

// SpanWaitStart marks the beginning of a lock wait by owner. Called by the
// observer bridge (internal/opspan) from the waiting thread itself, so the
// span's fields need no synchronization. One atomic load when no spans are
// open anywhere.
func SpanWaitStart(owner any) {
	if openSpans.Load() == 0 || owner == nil {
		return
	}
	if v, ok := curSpans.Load(owner); ok {
		s := v.(*Span)
		if s.waitAt == 0 {
			s.waitAt = time.Now().UnixNano()
		}
	}
}

// SpanWaitEnd marks the end of a lock wait by owner, crediting the elapsed
// time to the innermost open span.
func SpanWaitEnd(owner any) {
	if openSpans.Load() == 0 || owner == nil {
		return
	}
	if v, ok := curSpans.Load(owner); ok {
		s := v.(*Span)
		if s.waitAt != 0 {
			s.waitNs += time.Now().UnixNano() - s.waitAt
			s.waitAt = 0
		}
	}
}

// SpanAddWait credits ns of lock wait directly to owner's innermost open
// span — for call sites that know the duration but cannot bracket it.
func SpanAddWait(owner any, ns int64) {
	if openSpans.Load() == 0 || owner == nil || ns <= 0 {
		return
	}
	if v, ok := curSpans.Load(owner); ok {
		v.(*Span).waitNs += ns
	}
}

// OpProfile is the point-in-time summary of one operation class, the
// latency-split view the Prometheus surface reports.
type OpProfile struct {
	Name string
	Pkg  string

	Count     int64 // completed spans
	Contended int64 // spans that waited on at least one lock

	MeanNs int64
	P50Ns  int64
	P90Ns  int64
	P99Ns  int64
	MaxNs  int64

	P50WaitNs int64
	P90WaitNs int64
	P99WaitNs int64
	P50WorkNs int64
	P90WorkNs int64
	P99WorkNs int64
}

// OpProfiles returns a snapshot of every KindOp class, registration order.
func OpProfiles() []OpProfile {
	var out []OpProfile
	for _, c := range Classes() {
		if c.kind != KindOp {
			continue
		}
		out = append(out, OpProfile{
			Name:      c.name,
			Pkg:       c.pkg,
			Count:     c.acquisitions.Load(),
			Contended: c.contended.Load(),
			MeanNs:    int64(c.hold.Mean()),
			P50Ns:     c.hold.Quantile(0.50),
			P90Ns:     c.hold.Quantile(0.90),
			P99Ns:     c.hold.Quantile(0.99),
			MaxNs:     c.hold.Max(),
			P50WaitNs: c.wait.Quantile(0.50),
			P90WaitNs: c.wait.Quantile(0.90),
			P99WaitNs: c.wait.Quantile(0.99),
			P50WorkNs: c.work.Quantile(0.50),
			P90WorkNs: c.work.Quantile(0.90),
			P99WorkNs: c.work.Quantile(0.99),
		})
	}
	return out
}

package trace

import (
	"compress/gzip"
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"
)

// This file renders the site profiles (stack.go) in the pprof
// profile.proto format, gzipped, exactly as runtime/pprof's mutex profile
// does — so `go tool pprof` (top, list, flamegraph, -http) works against
// the live monitor:
//
//	go tool pprof http://host:port/debug/machlock/pprof/waits
//
// The encoder is a minimal hand-rolled protobuf writer (the repo takes no
// dependencies): profile.proto is a flat message of varints and
// length-delimited submessages, all of which fit in ~100 lines. Field
// numbers follow github.com/google/pprof/proto/profile.proto.
//
// Three profiles are exported, one per SiteKind:
//
//	waits — contended-acquisition delay keyed by the WAITER's stack
//	holds — hold time keyed by the HOLDER's acquisition stack
//	blame — waiters' delay keyed by the HOLDER's stack that caused it
//
// Every sample carries two values [count, delay-ns] (pprof's mutex
// convention: "contentions" and "delay") and a "class" label naming the
// lock class, so pprof's -tagfocus/-taghide can slice by class.

// protobuf wire-format writer --------------------------------------------

type protoBuf struct{ data []byte }

func (b *protoBuf) varint(v uint64) {
	for v >= 0x80 {
		b.data = append(b.data, byte(v)|0x80)
		v >>= 7
	}
	b.data = append(b.data, byte(v))
}

// tag writes a field key; wire type 0 = varint, 2 = length-delimited.
func (b *protoBuf) tag(field int, wire int) { b.varint(uint64(field)<<3 | uint64(wire)) }

func (b *protoBuf) int64Field(field int, v int64) {
	if v == 0 {
		return
	}
	b.tag(field, 0)
	b.varint(uint64(v))
}

func (b *protoBuf) uint64Field(field int, v uint64) {
	if v == 0 {
		return
	}
	b.tag(field, 0)
	b.varint(v)
}

func (b *protoBuf) bytesField(field int, raw []byte) {
	b.tag(field, 2)
	b.varint(uint64(len(raw)))
	b.data = append(b.data, raw...)
}

func (b *protoBuf) stringField(field int, s string) {
	b.tag(field, 2)
	b.varint(uint64(len(s)))
	b.data = append(b.data, s...)
}

// packedInt64s writes a repeated int64 field in packed encoding.
func (b *protoBuf) packedInt64s(field int, vs []int64) {
	if len(vs) == 0 {
		return
	}
	var p protoBuf
	for _, v := range vs {
		p.varint(uint64(v))
	}
	b.bytesField(field, p.data)
}

func (b *protoBuf) packedUint64s(field int, vs []uint64) {
	if len(vs) == 0 {
		return
	}
	var p protoBuf
	for _, v := range vs {
		p.varint(v)
	}
	b.bytesField(field, p.data)
}

// profile builder ---------------------------------------------------------

// pprofBuilder accumulates the cross-referenced tables of a profile.proto:
// a string table, functions, and locations, deduplicated by key.
type pprofBuilder struct {
	strings  []string
	stringIx map[string]int64

	funcs  []pprofFunc
	funcIx map[string]uint64 // name\x00file -> id

	locs  []pprofLoc
	locIx map[uintptr]uint64
}

type pprofFunc struct {
	id         uint64
	name, file int64 // string indices
	startLine  int64
}

type pprofLoc struct {
	id      uint64
	address uint64
	funcID  uint64
	line    int64
	inlined []pprofLine // additional inlined frames (callers after the leaf)
}

type pprofLine struct {
	funcID uint64
	line   int64
}

func newPprofBuilder() *pprofBuilder {
	b := &pprofBuilder{
		stringIx: map[string]int64{"": 0},
		strings:  []string{""},
		funcIx:   map[string]uint64{},
		locIx:    map[uintptr]uint64{},
	}
	return b
}

func (b *pprofBuilder) str(s string) int64 {
	if ix, ok := b.stringIx[s]; ok {
		return ix
	}
	ix := int64(len(b.strings))
	b.strings = append(b.strings, s)
	b.stringIx[s] = ix
	return ix
}

func (b *pprofBuilder) function(name, file string, startLine int64) uint64 {
	key := name + "\x00" + file
	if id, ok := b.funcIx[key]; ok {
		return id
	}
	id := uint64(len(b.funcs) + 1)
	b.funcs = append(b.funcs, pprofFunc{id: id, name: b.str(name), file: b.str(file), startLine: startLine})
	b.funcIx[key] = id
	return id
}

// location interns one pc, symbolizing it (with inline expansion) once.
func (b *pprofBuilder) location(pc uintptr) uint64 {
	if id, ok := b.locIx[pc]; ok {
		return id
	}
	id := uint64(len(b.locs) + 1)
	loc := pprofLoc{id: id, address: uint64(pc)}
	frames := runtime.CallersFrames([]uintptr{pc})
	first := true
	for {
		fr, more := frames.Next()
		name := fr.Function
		if name == "" {
			name = fmt.Sprintf("pc=%#x", pc)
		}
		fid := b.function(name, fr.File, 0)
		if first {
			loc.funcID, loc.line = fid, int64(fr.Line)
			first = false
		} else {
			loc.inlined = append(loc.inlined, pprofLine{funcID: fid, line: int64(fr.Line)})
		}
		if !more {
			break
		}
	}
	b.locs = append(b.locs, loc)
	b.locIx[pc] = id
	return id
}

// pprofSample is one aggregated row before encoding.
type pprofSample struct {
	locIDs []uint64
	count  int64
	ns     int64
	labels [][2]int64 // (key idx, str idx)
}

// WritePprof writes the gzipped profile.proto for one site-profile kind,
// aggregated across every registered class. Classes with empty site
// profiles contribute nothing; a completely empty profile is still a valid
// proto (go tool pprof reports "profile is empty").
func WritePprof(w io.Writer, kind SiteKind) error {
	b := newPprofBuilder()
	classKey := b.str("class")
	kindKey := b.str("lockkind")

	var samples []pprofSample
	// Deterministic output: walk classes in registration order, stacks
	// sorted by id.
	for _, c := range Classes() {
		sites := c.Sites(kind)
		sort.Slice(sites, func(i, j int) bool { return sites[i].Stack.ID() < sites[j].Stack.ID() })
		for _, site := range sites {
			sm := pprofSample{count: site.Count, ns: site.Ns}
			sm.labels = append(sm.labels,
				[2]int64{classKey, b.str(c.pkg + "/" + c.name)},
				[2]int64{kindKey, b.str(c.kind.String())})
			if site.Stack == nil {
				// Unattributed delay: a synthetic single-frame stack so
				// the sample survives pprof's location requirements and
				// names itself honestly.
				fid := b.function("<unattributed "+kind.String()+">", "", 0)
				id := uint64(len(b.locs) + 1)
				b.locs = append(b.locs, pprofLoc{id: id, funcID: fid})
				sm.locIDs = []uint64{id}
			} else {
				for _, pc := range site.Stack.PCs() {
					// pprof convention: addresses are the return pc; the
					// capture already stores call-site pcs from
					// runtime.Callers, which CallersFrames expects.
					sm.locIDs = append(sm.locIDs, b.location(pc))
				}
			}
			samples = append(samples, sm)
		}
	}

	countName, nsName := "contentions", "delay"
	if kind == SiteHolds {
		countName, nsName = "holds", "delay"
	}

	var p protoBuf
	// sample_type: [count, delay-ns]; default_sample_type = delay.
	var vt protoBuf
	vt.int64Field(1, b.str(countName))
	vt.int64Field(2, b.str("count"))
	p.bytesField(1, vt.data)
	vt = protoBuf{}
	vt.int64Field(1, b.str(nsName))
	vt.int64Field(2, b.str("nanoseconds"))
	p.bytesField(1, vt.data)

	for _, sm := range samples {
		var s protoBuf
		s.packedUint64s(1, sm.locIDs)
		s.packedInt64s(2, []int64{sm.count, sm.ns})
		for _, lb := range sm.labels {
			var l protoBuf
			l.int64Field(1, lb[0])
			l.int64Field(2, lb[1])
			s.bytesField(3, l.data)
		}
		p.bytesField(2, s.data)
	}

	// One synthetic mapping covering the whole address space; pprof wants
	// locations to fall inside some mapping.
	var m protoBuf
	m.uint64Field(1, 1)
	m.uint64Field(2, 1)
	m.uint64Field(3, ^uint64(0))
	m.int64Field(5, b.str("machlock"))
	m.uint64Field(7, 1) // has_functions
	p.bytesField(3, m.data)

	for _, loc := range b.locs {
		var l protoBuf
		l.uint64Field(1, loc.id)
		l.uint64Field(2, 1) // mapping id
		l.uint64Field(3, loc.address)
		var ln protoBuf
		ln.uint64Field(1, loc.funcID)
		ln.int64Field(2, loc.line)
		l.bytesField(4, ln.data)
		for _, il := range loc.inlined {
			ln = protoBuf{}
			ln.uint64Field(1, il.funcID)
			ln.int64Field(2, il.line)
			l.bytesField(4, ln.data)
		}
		p.bytesField(4, l.data)
	}

	for _, fn := range b.funcs {
		var f protoBuf
		f.uint64Field(1, fn.id)
		f.int64Field(2, fn.name)
		f.int64Field(3, fn.name) // system_name
		f.int64Field(4, fn.file)
		f.int64Field(5, fn.startLine)
		p.bytesField(5, f.data)
	}

	for _, s := range b.strings {
		p.stringField(6, s)
	}
	p.int64Field(9, time.Now().UnixNano()) // time_nanos
	// period_type + period: samples per SetStackSampling event.
	var pt protoBuf
	pt.int64Field(1, b.str(countName))
	pt.int64Field(2, b.str("count"))
	p.bytesField(11, pt.data)
	p.int64Field(12, int64(StackSampling()))
	p.int64Field(14, b.str(nsName)) // default_sample_type

	gz := gzip.NewWriter(w)
	if _, err := gz.Write(p.data); err != nil {
		return err
	}
	return gz.Close()
}

package trace

import (
	"fmt"
	"io"
	"strconv"
)

// WriteProm renders the profiles in the Prometheus text exposition format
// (version 0.0.4): one metric family per accounting dimension, one sample
// per registered class, labelled {pkg, class, kind}. Hold and wait
// latencies are exposed summary-style — quantile-labelled gauges plus
// _max and _mean — because the underlying power-of-two histograms already
// reduce to quantiles; the process-wide hierarchy-violation counter and
// the per-class live census ride along. This is the scrape target behind
// /debug/machlock/metrics.
func WriteProm(w io.Writer, profiles []Profile) error {
	p := &promWriter{w: w}

	p.family("machlock_acquisitions_total", "Lock acquisitions granted.", "counter")
	p.each(profiles, func(pr Profile) { p.sample("machlock_acquisitions_total", pr, "", float64(pr.Acquisitions)) })

	p.family("machlock_contended_acquisitions_total", "Acquisitions that did not succeed on the first attempt.", "counter")
	p.each(profiles, func(pr Profile) {
		p.sample("machlock_contended_acquisitions_total", pr, "", float64(pr.Contended))
	})

	p.family("machlock_releases_total", "Lock releases.", "counter")
	p.each(profiles, func(pr Profile) { p.sample("machlock_releases_total", pr, "", float64(pr.Releases)) })

	p.family("machlock_contention_ratio", "Contended acquisitions over total acquisitions.", "gauge")
	p.each(profiles, func(pr Profile) { p.sample("machlock_contention_ratio", pr, "", pr.ContentionRate) })

	p.family("machlock_hold_time_ns", "Critical-section hold time quantiles (ns).", "gauge")
	p.each(profiles, func(pr Profile) {
		p.sample("machlock_hold_time_ns", pr, `quantile="0.5"`, float64(pr.P50HoldNs))
		p.sample("machlock_hold_time_ns", pr, `quantile="0.9"`, float64(pr.P90HoldNs))
		p.sample("machlock_hold_time_ns", pr, `quantile="0.99"`, float64(pr.P99HoldNs))
	})
	p.family("machlock_hold_time_ns_mean", "Mean critical-section hold time (ns).", "gauge")
	p.each(profiles, func(pr Profile) { p.sample("machlock_hold_time_ns_mean", pr, "", pr.MeanHoldNs) })
	p.family("machlock_hold_time_ns_max", "Maximum observed hold time (ns).", "gauge")
	p.each(profiles, func(pr Profile) { p.sample("machlock_hold_time_ns_max", pr, "", float64(pr.MaxHoldNs)) })

	p.family("machlock_wait_time_ns", "Lock wait time quantiles (ns).", "gauge")
	p.each(profiles, func(pr Profile) {
		p.sample("machlock_wait_time_ns", pr, `quantile="0.5"`, float64(pr.P50WaitNs))
		p.sample("machlock_wait_time_ns", pr, `quantile="0.9"`, float64(pr.P90WaitNs))
		p.sample("machlock_wait_time_ns", pr, `quantile="0.99"`, float64(pr.P99WaitNs))
	})
	p.family("machlock_wait_time_ns_mean", "Mean lock wait time (ns).", "gauge")
	p.each(profiles, func(pr Profile) { p.sample("machlock_wait_time_ns_mean", pr, "", pr.MeanWaitNs) })
	p.family("machlock_wait_time_ns_max", "Maximum observed wait time (ns).", "gauge")
	p.each(profiles, func(pr Profile) { p.sample("machlock_wait_time_ns_max", pr, "", float64(pr.MaxWaitNs)) })

	p.family("machlock_upgrades_total", "Successful read-to-write upgrades.", "counter")
	p.each(profiles, func(pr Profile) { p.sample("machlock_upgrades_total", pr, "", float64(pr.Upgrades)) })
	p.family("machlock_failed_upgrades_total", "Upgrades that failed and released the read hold.", "counter")
	p.each(profiles, func(pr Profile) { p.sample("machlock_failed_upgrades_total", pr, "", float64(pr.FailedUpgrades)) })
	p.family("machlock_downgrades_total", "Write-to-read downgrades.", "counter")
	p.each(profiles, func(pr Profile) { p.sample("machlock_downgrades_total", pr, "", float64(pr.Downgrades)) })
	p.family("machlock_bias_revocations_total", "Reader-bias revocations by write requests.", "counter")
	p.each(profiles, func(pr Profile) { p.sample("machlock_bias_revocations_total", pr, "", float64(pr.BiasRevocations)) })

	p.family("machlock_ref_clones_total", "Reference clones.", "counter")
	p.each(profiles, func(pr Profile) { p.sample("machlock_ref_clones_total", pr, "", float64(pr.RefClones)) })
	p.family("machlock_ref_releases_total", "Reference releases.", "counter")
	p.each(profiles, func(pr Profile) { p.sample("machlock_ref_releases_total", pr, "", float64(pr.RefReleases)) })
	p.family("machlock_deactivates_total", "Object deactivations (active termination).", "counter")
	p.each(profiles, func(pr Profile) { p.sample("machlock_deactivates_total", pr, "", float64(pr.Deactivates)) })

	p.family("machlock_live_objects", "Live instances per class (census).", "gauge")
	p.each(profiles, func(pr Profile) { p.sample("machlock_live_objects", pr, "", float64(pr.Live)) })

	p.family("machlock_hierarchy_violations_total", "Lock-ordering violations reported by splock.Hierarchy checkers.", "counter")
	p.bare("machlock_hierarchy_violations_total", "", float64(HierarchyViolations()))

	p.ops(OpProfiles())

	return p.err
}

// ops renders the operation-span families: per-op latency with the
// wait/work split the span engine accounts. Labels are {pkg, op}.
func (p *promWriter) ops(ops []OpProfile) {
	opSample := func(name string, o OpProfile, extra string, v float64) {
		if p.err != nil {
			return
		}
		labels := fmt.Sprintf("pkg=%q,op=%q", o.Pkg, o.Name)
		if extra != "" {
			labels += "," + extra
		}
		_, p.err = fmt.Fprintf(p.w, "%s{%s} %s\n", name, labels, promFloat(v))
	}

	p.family("machlock_op_total", "Completed operation spans.", "counter")
	for _, o := range ops {
		opSample("machlock_op_total", o, "", float64(o.Count))
	}
	p.family("machlock_op_contended_total", "Operation spans that waited on at least one lock.", "counter")
	for _, o := range ops {
		opSample("machlock_op_contended_total", o, "", float64(o.Contended))
	}
	p.family("machlock_op_latency_ns", "Operation latency quantiles (ns).", "gauge")
	for _, o := range ops {
		opSample("machlock_op_latency_ns", o, `quantile="0.5"`, float64(o.P50Ns))
		opSample("machlock_op_latency_ns", o, `quantile="0.9"`, float64(o.P90Ns))
		opSample("machlock_op_latency_ns", o, `quantile="0.99"`, float64(o.P99Ns))
	}
	p.family("machlock_op_latency_ns_mean", "Mean operation latency (ns).", "gauge")
	for _, o := range ops {
		opSample("machlock_op_latency_ns_mean", o, "", float64(o.MeanNs))
	}
	p.family("machlock_op_latency_ns_max", "Maximum observed operation latency (ns).", "gauge")
	for _, o := range ops {
		opSample("machlock_op_latency_ns_max", o, "", float64(o.MaxNs))
	}
	p.family("machlock_op_lock_wait_ns", "In-span lock wait quantiles (ns).", "gauge")
	for _, o := range ops {
		opSample("machlock_op_lock_wait_ns", o, `quantile="0.5"`, float64(o.P50WaitNs))
		opSample("machlock_op_lock_wait_ns", o, `quantile="0.9"`, float64(o.P90WaitNs))
		opSample("machlock_op_lock_wait_ns", o, `quantile="0.99"`, float64(o.P99WaitNs))
	}
	p.family("machlock_op_work_ns", "In-span work (latency minus lock wait) quantiles (ns).", "gauge")
	for _, o := range ops {
		opSample("machlock_op_work_ns", o, `quantile="0.5"`, float64(o.P50WorkNs))
		opSample("machlock_op_work_ns", o, `quantile="0.9"`, float64(o.P90WorkNs))
		opSample("machlock_op_work_ns", o, `quantile="0.99"`, float64(o.P99WorkNs))
	}
}

// promWriter accumulates the exposition, sticky-erroring so the families
// above stay uncluttered.
type promWriter struct {
	w   io.Writer
	err error
}

func (p *promWriter) family(name, help, typ string) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (p *promWriter) each(profiles []Profile, f func(Profile)) {
	for _, pr := range profiles {
		if p.err != nil {
			return
		}
		f(pr)
	}
}

// sample writes one class-labelled sample; extra is an additional label
// pair (e.g. a quantile) or "".
func (p *promWriter) sample(name string, pr Profile, extra string, v float64) {
	if p.err != nil {
		return
	}
	labels := fmt.Sprintf("pkg=%q,class=%q,kind=%q", pr.Pkg, pr.Name, pr.Kind.String())
	if extra != "" {
		labels += "," + extra
	}
	_, p.err = fmt.Fprintf(p.w, "%s{%s} %s\n", name, labels, promFloat(v))
}

// bare writes one sample with only the given (possibly empty) label set.
func (p *promWriter) bare(name, labels string, v float64) {
	if p.err != nil {
		return
	}
	if labels != "" {
		labels = "{" + labels + "}"
	}
	_, p.err = fmt.Fprintf(p.w, "%s%s %s\n", name, labels, promFloat(v))
}

func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

package trace

import (
	"strings"
	"testing"
)

// withSampling runs the test at a fixed stack-sampling divisor, restoring
// the default afterwards.
func withSampling(t *testing.T, rate int) {
	t.Helper()
	SetStackSampling(rate)
	t.Cleanup(func() { SetStackSampling(DefaultStackSampleRate) })
}

func TestStackInterning(t *testing.T) {
	// The same call site captured twice must intern to the same pointer.
	var got [2]*Stack
	for i := range got {
		got[i] = CaptureStack(0)
	}
	a, b := got[0], got[1]
	if a == nil || b == nil {
		t.Fatal("CaptureStack returned nil")
	}
	if a != b {
		t.Fatalf("identical stacks interned to distinct pointers: %d vs %d", a.ID(), b.ID())
	}
	if a.ID() == 0 {
		t.Fatal("interned stack has id 0 (reserved for no-stack)")
	}
	if !strings.Contains(a.String(), "TestStackInterning") ||
		!strings.Contains(a.String(), "stack_test.go") {
		t.Fatalf("String() does not cite the capture site:\n%s", a)
	}
	// In-package, every machlock frame is "internal", so Leaf falls through
	// to the non-machlock caller (the testing harness).
	if leaf := a.Leaf(); !strings.Contains(leaf, "testing.") {
		t.Fatalf("Leaf() = %q, want a testing-package frame", leaf)
	}

	var nilStack *Stack
	if nilStack.ID() != 0 || nilStack.PCs() != nil || nilStack.Frames() != nil {
		t.Fatal("nil stack accessors not inert")
	}
	if nilStack.Leaf() != "<no stack>" || nilStack.String() != "<no stack>" {
		t.Fatal("nil stack strings wrong")
	}
}

func TestSamplingRateGatesCapture(t *testing.T) {
	Enable()
	defer Disable()
	c := testClass(t, KindSpin)

	// Rate 0 disables capture entirely.
	withSampling(t, 0)
	if h := c.SampleHold(0, 1); h != nil {
		t.Fatal("SampleHold fired with sampling disabled")
	}
	c.WaitSampled(0, 100)
	if got := c.Sites(SiteWaits); len(got) != 0 {
		t.Fatalf("WaitSampled recorded %d sites with sampling disabled", len(got))
	}

	// Rate 1 fires on every event.
	SetStackSampling(1)
	for i := 0; i < 3; i++ {
		if c.SampleHold(0, 1) == nil {
			t.Fatalf("SampleHold missed event %d at rate 1", i)
		}
	}

	// Tracing off wins over any rate.
	Disable()
	if h := c.SampleHold(0, 1); h != nil {
		t.Fatal("SampleHold fired with tracing disabled")
	}
	Enable()
}

func TestHoldWaitBlameProfiles(t *testing.T) {
	Enable()
	defer Disable()
	withSampling(t, 1)
	c := testClass(t, KindComplex)

	h := c.SampleHold(0, 7)
	if h == nil {
		t.Fatal("SampleHold returned nil at rate 1")
	}
	if h.TID != 7 {
		t.Fatalf("HoldInfo.TID = %d, want 7", h.TID)
	}
	c.EndHold(h, 1000)
	c.BlameWait(h, 400)   // attributed to the holder's stack
	c.BlameWait(nil, 250) // unsampled holder: unattributed bucket
	c.WaitSampled(0, 300)

	holds := c.Sites(SiteHolds)
	if len(holds) != 1 || holds[0].Count != 1 || holds[0].Ns != 1000 {
		t.Fatalf("hold sites wrong: %+v", holds)
	}
	// Leaf() skips trace-internal frames, which in-package includes this
	// test itself — search the full symbolized stack instead.
	if !strings.Contains(holds[0].Stack.String(), "TestHoldWaitBlameProfiles") {
		t.Fatalf("hold site stack does not name the holder:\n%s", holds[0].Stack)
	}

	var attributed, unattributed bool
	for _, s := range c.Sites(SiteBlame) {
		if s.Stack == nil {
			unattributed = s.Ns == 250
		} else if s.Stack == h.Stack {
			attributed = s.Ns == 400
		}
	}
	if !attributed || !unattributed {
		t.Fatalf("blame sites wrong (attributed=%v unattributed=%v): %+v",
			attributed, unattributed, c.Sites(SiteBlame))
	}

	waits := c.Sites(SiteWaits)
	if len(waits) != 1 || waits[0].Ns != 300 {
		t.Fatalf("wait sites wrong: %+v", waits)
	}

	// Nil receivers and nil HoldInfo are inert on every path.
	var nilClass *Class
	nilClass.EndHold(h, 1)
	nilClass.BlameWait(h, 1)
	nilClass.WaitSampled(0, 1)
	if nilClass.Sites(SiteHolds) != nil {
		t.Fatal("nil class has sites")
	}
	c.EndHold(nil, 99999) // unsampled hold: no-op
	if got := c.Sites(SiteHolds); len(got) != 1 || got[0].Ns != 1000 {
		t.Fatalf("nil EndHold mutated the profile: %+v", got)
	}
}

func TestSiteKindStrings(t *testing.T) {
	if SiteWaits.String() != "waits" || SiteHolds.String() != "holds" || SiteBlame.String() != "blame" {
		t.Fatal("SiteKind strings wrong")
	}
}

package trace

import (
	"sync/atomic"

	"machlock/internal/stats"
)

// Lock-ordering violation surfacing: splock.Hierarchy instances report
// every ordering violation here, so the counts and the most recent report
// text are visible process-wide — in the Prometheus exposition, the
// expvar-style JSON, and the monitor's incident detection — instead of
// only in whichever package happened to construct the checker.

// violationClass is the registry entry violations are recorded against in
// the flight recorder; it carries no lock traffic of its own, so it never
// appears in Ranked output.
var violationClass = NewClass("splock", "splock.hierarchy", KindSpin)

var (
	hierViolations stats.Counter
	hierLastReport atomic.Pointer[string]
)

// HierarchyViolation records one lock-ordering violation with its report
// text. Called by splock.Hierarchy.checkOrder; counted even while tracing
// is disabled (a violation is a protocol error, not a sample), though the
// flight-recorder event is only emitted when tracing is on.
func HierarchyViolation(report string) {
	hierViolations.Inc()
	hierLastReport.Store(&report)
	if Enabled() {
		emit(violationClass.id, OpViolation, hierViolations.Load(), 0)
	}
}

// HierarchyViolations returns the process-wide count of lock-ordering
// violations reported by all splock.Hierarchy checkers.
func HierarchyViolations() int64 { return hierViolations.Load() }

// LastHierarchyViolation returns the most recent violation report text, or
// "". Safe under concurrent readers and writers.
func LastHierarchyViolation() string {
	if s := hierLastReport.Load(); s != nil {
		return *s
	}
	return ""
}

// ResetHierarchyViolations zeroes the count and clears the last report;
// for tests and experiment harness runs.
func ResetHierarchyViolations() {
	hierViolations.Reset()
	hierLastReport.Store(nil)
}

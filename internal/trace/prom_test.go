package trace

import (
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

var (
	promHelpRe   = regexp.MustCompile(`^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .+$`)
	promTypeRe   = regexp.MustCompile(`^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram|summary|untyped)$`)
	promSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (\S+)$`)
)

// validateProm checks text against the Prometheus 0.0.4 exposition rules
// the scrapers we care about enforce: well-formed HELP/TYPE lines, every
// sample parseable with a float value, every sample's family declared, and
// all samples of a family contiguous.
func validateProm(t *testing.T, text string) map[string]int {
	t.Helper()
	declared := map[string]bool{}
	samples := map[string]int{}
	var last string
	closed := map[string]bool{}
	for i, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP"):
			if !promHelpRe.MatchString(line) {
				t.Fatalf("line %d: malformed HELP: %q", i+1, line)
			}
		case strings.HasPrefix(line, "# TYPE"):
			if !promTypeRe.MatchString(line) {
				t.Fatalf("line %d: malformed TYPE: %q", i+1, line)
			}
			declared[strings.Fields(line)[2]] = true
		case strings.HasPrefix(line, "#"):
			t.Fatalf("line %d: stray comment %q", i+1, line)
		default:
			m := promSampleRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: malformed sample: %q", i+1, line)
			}
			name := m[1]
			// A quantile-labelled family's samples share the base name.
			family := name
			if !declared[family] {
				for base := range declared {
					if strings.HasPrefix(name, base) && declared[base] {
						family = base
					}
				}
			}
			if !declared[family] {
				t.Fatalf("line %d: sample %q without TYPE declaration", i+1, name)
			}
			if closed[family] && last != family {
				t.Fatalf("line %d: family %q not contiguous", i+1, family)
			}
			if _, err := strconv.ParseFloat(m[3], 64); err != nil {
				t.Fatalf("line %d: bad value %q: %v", i+1, m[3], err)
			}
			if last != "" && last != family {
				closed[last] = true
			}
			last = family
			samples[family]++
		}
	}
	return samples
}

func TestWritePromValidExposition(t *testing.T) {
	Enable()
	defer Disable()
	c := NewClass("promtest", t.Name(), KindComplex)
	c.Acquired(true, 1500)
	c.Released(900)
	c.CensusInc()
	defer c.CensusDec()

	var sb strings.Builder
	if err := WriteProm(&sb, Profiles()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	samples := validateProm(t, out)

	// Every registered class must appear in the acquisition family.
	nclasses := len(Classes())
	if samples["machlock_acquisitions_total"] != nclasses {
		t.Fatalf("acquisitions family has %d samples, want one per class (%d)",
			samples["machlock_acquisitions_total"], nclasses)
	}
	for _, want := range []string{
		`machlock_acquisitions_total{pkg="promtest",class="` + t.Name() + `",kind="complex"} 1`,
		`machlock_contended_acquisitions_total{pkg="promtest",class="` + t.Name() + `",kind="complex"} 1`,
		`quantile="0.99"`,
		`machlock_live_objects{pkg="promtest",class="` + t.Name() + `",kind="complex"} 1`,
		"machlock_hierarchy_violations_total",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHierarchyViolationSurface(t *testing.T) {
	ResetHierarchyViolations()
	t.Cleanup(ResetHierarchyViolations)
	if HierarchyViolations() != 0 || LastHierarchyViolation() != "" {
		t.Fatal("reset did not clear violation state")
	}

	// Concurrent reporters and readers: this is the lastReport data-race
	// regression, run meaningfully under -race.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				HierarchyViolation("violation report")
			}
		}(i)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				_ = LastHierarchyViolation()
				_ = HierarchyViolations()
			}
		}()
	}
	wg.Wait()
	if got := HierarchyViolations(); got != 400 {
		t.Fatalf("violation count = %d, want 400", got)
	}
	if LastHierarchyViolation() != "violation report" {
		t.Fatalf("last report = %q", LastHierarchyViolation())
	}

	// The count and last report must flow through the text and expvar
	// exports.
	var text strings.Builder
	if err := WriteText(&text, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "hierarchy violations: 400") {
		t.Fatalf("text export missing violations:\n%s", text.String())
	}
	var vars strings.Builder
	if err := WriteVars(&vars, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(vars.String(), `"Violations": 400`) ||
		!strings.Contains(vars.String(), "violation report") {
		t.Fatalf("vars export missing violations:\n%s", vars.String())
	}
}

func TestCensusGaugeSurvivesDisable(t *testing.T) {
	// The census must stay correct regardless of the enabled flag: a gauge
	// that misses lifetime events while tracing is off is wrong forever.
	Disable()
	c := NewClass("promtest", t.Name(), KindObject)
	c.CensusInc()
	c.CensusInc()
	Enable()
	c.CensusDec()
	Disable()
	if got := c.Live(); got != 1 {
		t.Fatalf("census = %d, want 1", got)
	}
	if p := c.Snapshot(); p.Live != 1 {
		t.Fatalf("snapshot census = %d, want 1", p.Live)
	}
	// reset() (via ResetProfiles) must NOT zero the census: the instances
	// it counts are still alive.
	ResetProfiles()
	if got := c.Live(); got != 1 {
		t.Fatalf("ResetProfiles zeroed the census: %d", got)
	}
	c.CensusDec()
}

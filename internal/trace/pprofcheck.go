package trace

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
)

// This file is the read side of pprof.go: a minimal profile.proto decoder
// used by tests and by the monitor smoke (cmd/lockmon, CI) to validate
// that an exported profile actually parses and to inspect its function
// names without shelling out to `go tool pprof`. It decodes only what the
// checks need — sample types, samples with resolved function names, and
// label strings — and rejects structurally invalid input loudly.

// PprofProfile is the decoded subset of a profile.proto.
type PprofProfile struct {
	SampleTypes []string // "type/unit" per sample_type entry
	Samples     []PprofSampleView
	Strings     []string
}

// PprofSampleView is one decoded sample: resolved leaf-first function
// names, the values, and the string labels.
type PprofSampleView struct {
	Funcs  []string
	Values []int64
	Labels map[string]string
}

// ParsePprof decodes a (possibly gzipped) profile.proto produced by
// WritePprof (or by runtime/pprof), returning an error for any structural
// violation: truncated varints, out-of-range string indices, unresolved
// location or function ids, or value arity differing from the declared
// sample types.
func ParsePprof(data []byte) (*PprofProfile, error) {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		gz, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("gzip: %w", err)
		}
		raw, err := io.ReadAll(gz)
		if err != nil {
			return nil, fmt.Errorf("gunzip: %w", err)
		}
		data = raw
	}

	d := &protoDec{data: data}

	type rawSample struct {
		locs   []uint64
		values []int64
		labels [][2]int64
	}
	type rawLoc struct {
		id      uint64
		funcIDs []uint64
	}
	type rawFunc struct {
		id   uint64
		name int64
	}
	var (
		sampleTypes [][2]int64
		samples     []rawSample
		locs        []rawLoc
		funcs       []rawFunc
		strs        []string
	)

	for !d.done() {
		field, wire, err := d.key()
		if err != nil {
			return nil, err
		}
		switch field {
		case 1: // sample_type
			sub, err := d.bytes(wire)
			if err != nil {
				return nil, err
			}
			st := [2]int64{}
			if err := walkMsg(sub, func(f int, v uint64, b []byte) {
				if f == 1 {
					st[0] = int64(v)
				}
				if f == 2 {
					st[1] = int64(v)
				}
			}); err != nil {
				return nil, err
			}
			sampleTypes = append(sampleTypes, st)
		case 2: // sample
			sub, err := d.bytes(wire)
			if err != nil {
				return nil, err
			}
			var s rawSample
			if err := walkMsg(sub, func(f int, v uint64, b []byte) {
				switch f {
				case 1:
					if b != nil {
						s.locs = append(s.locs, unpackUints(b)...)
					} else {
						s.locs = append(s.locs, v)
					}
				case 2:
					if b != nil {
						for _, u := range unpackUints(b) {
							s.values = append(s.values, int64(u))
						}
					} else {
						s.values = append(s.values, int64(v))
					}
				case 3:
					lb := [2]int64{}
					walkMsg(b, func(lf int, lv uint64, _ []byte) {
						if lf == 1 {
							lb[0] = int64(lv)
						}
						if lf == 2 {
							lb[1] = int64(lv)
						}
					})
					s.labels = append(s.labels, lb)
				}
			}); err != nil {
				return nil, err
			}
			samples = append(samples, s)
		case 4: // location
			sub, err := d.bytes(wire)
			if err != nil {
				return nil, err
			}
			var l rawLoc
			if err := walkMsg(sub, func(f int, v uint64, b []byte) {
				switch f {
				case 1:
					l.id = v
				case 4: // line
					walkMsg(b, func(lf int, lv uint64, _ []byte) {
						if lf == 1 {
							l.funcIDs = append(l.funcIDs, lv)
						}
					})
				}
			}); err != nil {
				return nil, err
			}
			locs = append(locs, l)
		case 5: // function
			sub, err := d.bytes(wire)
			if err != nil {
				return nil, err
			}
			var fn rawFunc
			if err := walkMsg(sub, func(f int, v uint64, b []byte) {
				if f == 1 {
					fn.id = v
				}
				if f == 2 {
					fn.name = int64(v)
				}
			}); err != nil {
				return nil, err
			}
			funcs = append(funcs, fn)
		case 6: // string_table
			sub, err := d.bytes(wire)
			if err != nil {
				return nil, err
			}
			strs = append(strs, string(sub))
		default:
			if err := d.skip(wire); err != nil {
				return nil, err
			}
		}
	}

	str := func(ix int64) (string, error) {
		if ix < 0 || int(ix) >= len(strs) {
			return "", fmt.Errorf("pprof: string index %d out of range (%d strings)", ix, len(strs))
		}
		return strs[ix], nil
	}
	funcName := map[uint64]string{}
	for _, fn := range funcs {
		name, err := str(fn.name)
		if err != nil {
			return nil, err
		}
		funcName[fn.id] = name
	}
	locFuncs := map[uint64][]string{}
	for _, l := range locs {
		var names []string
		for _, fid := range l.funcIDs {
			name, ok := funcName[fid]
			if !ok {
				return nil, fmt.Errorf("pprof: location %d references unknown function %d", l.id, fid)
			}
			names = append(names, name)
		}
		locFuncs[l.id] = names
	}

	out := &PprofProfile{Strings: strs}
	for _, st := range sampleTypes {
		t, err := str(st[0])
		if err != nil {
			return nil, err
		}
		u, err := str(st[1])
		if err != nil {
			return nil, err
		}
		out.SampleTypes = append(out.SampleTypes, t+"/"+u)
	}
	for i, s := range samples {
		if len(s.values) != len(sampleTypes) {
			return nil, fmt.Errorf("pprof: sample %d has %d values, want %d", i, len(s.values), len(sampleTypes))
		}
		v := PprofSampleView{Values: s.values, Labels: map[string]string{}}
		for _, id := range s.locs {
			names, ok := locFuncs[id]
			if !ok {
				return nil, fmt.Errorf("pprof: sample %d references unknown location %d", i, id)
			}
			v.Funcs = append(v.Funcs, names...)
		}
		for _, lb := range s.labels {
			k, err := str(lb[0])
			if err != nil {
				return nil, err
			}
			val, err := str(lb[1])
			if err != nil {
				return nil, err
			}
			v.Labels[k] = val
		}
		out.Samples = append(out.Samples, v)
	}
	return out, nil
}

// FindSample returns the first sample whose resolved function names
// include a function containing substr, or nil.
func (p *PprofProfile) FindSample(substr string) *PprofSampleView {
	for i := range p.Samples {
		for _, fn := range p.Samples[i].Funcs {
			if contains(fn, substr) {
				return &p.Samples[i]
			}
		}
	}
	return nil
}

func contains(s, sub string) bool {
	return len(sub) == 0 || (len(s) >= len(sub) && indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// protoDec walks the outer message.
type protoDec struct {
	data []byte
	pos  int
}

func (d *protoDec) done() bool { return d.pos >= len(d.data) }

func (d *protoDec) varint() (uint64, error) {
	var v uint64
	for shift := 0; ; shift += 7 {
		if d.pos >= len(d.data) {
			return 0, fmt.Errorf("pprof: truncated varint at %d", d.pos)
		}
		if shift >= 64 {
			return 0, fmt.Errorf("pprof: varint overflow at %d", d.pos)
		}
		b := d.data[d.pos]
		d.pos++
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, nil
		}
	}
}

func (d *protoDec) key() (field, wire int, err error) {
	k, err := d.varint()
	if err != nil {
		return 0, 0, err
	}
	return int(k >> 3), int(k & 7), nil
}

func (d *protoDec) bytes(wire int) ([]byte, error) {
	if wire != 2 {
		return nil, fmt.Errorf("pprof: expected length-delimited field, got wire type %d", wire)
	}
	n, err := d.varint()
	if err != nil {
		return nil, err
	}
	if d.pos+int(n) > len(d.data) {
		return nil, fmt.Errorf("pprof: truncated field (%d bytes wanted, %d left)", n, len(d.data)-d.pos)
	}
	b := d.data[d.pos : d.pos+int(n)]
	d.pos += int(n)
	return b, nil
}

func (d *protoDec) skip(wire int) error {
	switch wire {
	case 0:
		_, err := d.varint()
		return err
	case 1:
		d.pos += 8
	case 2:
		_, err := d.bytes(wire)
		return err
	case 5:
		d.pos += 4
	default:
		return fmt.Errorf("pprof: unsupported wire type %d", wire)
	}
	if d.pos > len(d.data) {
		return fmt.Errorf("pprof: truncated fixed-width field")
	}
	return nil
}

// walkMsg iterates a submessage's fields, handing each to f: varint fields
// pass (field, value, nil); length-delimited fields pass (field, 0, bytes).
func walkMsg(data []byte, f func(field int, v uint64, b []byte)) error {
	d := &protoDec{data: data}
	for !d.done() {
		field, wire, err := d.key()
		if err != nil {
			return err
		}
		switch wire {
		case 0:
			v, err := d.varint()
			if err != nil {
				return err
			}
			f(field, v, nil)
		case 2:
			b, err := d.bytes(wire)
			if err != nil {
				return err
			}
			f(field, 0, b)
		default:
			if err := d.skip(wire); err != nil {
				return err
			}
		}
	}
	return nil
}

// unpackUints decodes a packed repeated varint field.
func unpackUints(data []byte) []uint64 {
	d := &protoDec{data: data}
	var out []uint64
	for !d.done() {
		v, err := d.varint()
		if err != nil {
			return out
		}
		out = append(out, v)
	}
	return out
}

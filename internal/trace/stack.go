package trace

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the stack side of the attribution layer: sampled call-stack
// capture, global interning (so a hot call site costs one map hit after its
// first capture), and the per-class site profiles that answer "which call
// sites wait here, which call sites hold this lock, and which holder call
// sites CAUSE the waiting" — the causal question the flat wait histograms
// of the contention profiles cannot answer.
//
// Cost model: capture happens only while tracing is enabled, and only for
// 1-in-StackSampleRate sampled acquisitions (waits, which are already off
// the fast path, sample at the same rate on the waiter side). A capture is
// one runtime.Callers walk plus one hash-map probe; symbolization is
// deferred to export time.

// maxStackDepth bounds captured stacks; deep enough for kernel call chains,
// shallow enough that capture stays a few hundred nanoseconds.
const maxStackDepth = 24

// Stack is one interned call stack. Identity is pointer identity: equal
// stacks intern to the same *Stack, so site maps key on the pointer.
type Stack struct {
	id  uint32
	pcs []uintptr
}

// ID returns the stack's interning id (1-based; 0 is reserved for "no
// stack").
func (s *Stack) ID() uint32 {
	if s == nil {
		return 0
	}
	return s.id
}

// PCs returns the raw program counters, leaf first.
func (s *Stack) PCs() []uintptr {
	if s == nil {
		return nil
	}
	return s.pcs
}

// Frame is one symbolized stack frame.
type Frame struct {
	PC       uintptr
	Function string
	File     string
	Line     int
}

// Frames symbolizes the stack, leaf first.
func (s *Stack) Frames() []Frame {
	if s == nil || len(s.pcs) == 0 {
		return nil
	}
	out := make([]Frame, 0, len(s.pcs))
	frames := runtime.CallersFrames(s.pcs)
	for {
		fr, more := frames.Next()
		out = append(out, Frame{PC: fr.PC, Function: fr.Function, File: fr.File, Line: fr.Line})
		if !more {
			break
		}
	}
	return out
}

// String renders the stack one frame per line, leaf first.
func (s *Stack) String() string {
	if s == nil {
		return "<no stack>"
	}
	var b []byte
	for _, fr := range s.Frames() {
		b = append(b, fmt.Sprintf("%s (%s:%d)\n", fr.Function, fr.File, fr.Line)...)
	}
	return string(b)
}

// Leaf returns the innermost interesting frame's function name: the first
// frame outside this package and the lock packages, which is the call site
// a report should name. Falls back to the true leaf.
func (s *Stack) Leaf() string {
	frames := s.Frames()
	if len(frames) == 0 {
		return "<no stack>"
	}
	for _, fr := range frames {
		if !internalFrame(fr.Function) {
			return fr.Function
		}
	}
	return frames[0].Function
}

// internalFrame reports whether a function belongs to the instrumentation
// plumbing rather than to the code being profiled.
func internalFrame(fn string) bool {
	for _, p := range []string{
		"machlock/internal/trace.",
		"machlock/internal/core/splock.",
		"machlock/internal/core/cxlock.",
		"machlock/internal/core/object.",
	} {
		if len(fn) >= len(p) && fn[:len(p)] == p {
			return true
		}
	}
	return false
}

// stackTab is the global interning table.
var stackTab struct {
	mu   sync.Mutex
	m    map[uint64][]*Stack // hash -> candidates (collision chain)
	next uint32
}

// hashPCs mixes the pc slice into a 64-bit key.
func hashPCs(pcs []uintptr) uint64 {
	h := uint64(14695981039346656037)
	for _, pc := range pcs {
		h ^= uint64(pc)
		h *= 1099511628211
	}
	return h
}

func equalPCs(a, b []uintptr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// internStack interns the pc slice (which may be a stack-allocated scratch
// buffer; it is copied when a new entry is created).
func internStack(pcs []uintptr) *Stack {
	if len(pcs) == 0 {
		return nil
	}
	h := hashPCs(pcs)
	stackTab.mu.Lock()
	defer stackTab.mu.Unlock()
	if stackTab.m == nil {
		stackTab.m = make(map[uint64][]*Stack)
	}
	for _, s := range stackTab.m[h] {
		if equalPCs(s.pcs, pcs) {
			return s
		}
	}
	stackTab.next++
	s := &Stack{id: stackTab.next, pcs: append([]uintptr(nil), pcs...)}
	stackTab.m[h] = append(stackTab.m[h], s)
	return s
}

// CaptureStack captures and interns the calling stack, skipping skip frames
// beyond CaptureStack itself. It ignores the sampling rate — use it for
// deterministic capture in tests and tools; instrumented hot paths go
// through Class.SampleHold / Class.WaitSampled instead.
func CaptureStack(skip int) *Stack {
	var pcs [maxStackDepth]uintptr
	n := runtime.Callers(skip+2, pcs[:])
	if n == 0 {
		return nil
	}
	return internStack(pcs[:n])
}

// stackRate is the sampling divisor: 1-in-rate sampled acquisitions capture
// a stack. 0 disables stack capture entirely (profiles stay empty); 1
// captures every acquisition (tests, short diagnostic sessions).
var stackRate atomic.Uint32

// DefaultStackSampleRate is the rate installed at init: cheap enough to
// leave on whenever tracing is on, dense enough that a contended class
// accumulates attributable samples within seconds.
const DefaultStackSampleRate = 16

func init() { stackRate.Store(DefaultStackSampleRate) }

// SetStackSampling sets the stack sampling divisor (see stackRate). Takes
// effect immediately; n <= 0 disables capture.
func SetStackSampling(n int) {
	if n < 0 {
		n = 0
	}
	stackRate.Store(uint32(n))
}

// StackSampling returns the current divisor (0 = disabled).
func StackSampling() int { return int(stackRate.Load()) }

// sampleFires rolls the per-class sampling counter; deterministic (the 1st,
// rate+1-th, ... events of each class fire), so tests with rate 1 capture
// everything.
func (c *Class) sampleFires() bool {
	rate := stackRate.Load()
	if rate == 0 {
		return false
	}
	return c.sampleCtr.Add(1)%uint64(rate) == 1 || rate == 1
}

// HoldInfo is what a sampled holder publishes for waiters to blame: the
// acquisition stack, the holder's thread id, and the acquisition time.
// Lock implementations stash the pointer where their waiters can read it
// (an atomic pointer next to the lock word) and clear it at release.
type HoldInfo struct {
	Stack *Stack
	TID   uint32
	Since int64 // ns timestamp of the acquisition
}

// SampleHold decides whether this acquisition is sampled and, if so,
// captures the holder's stack: returns nil for unsampled acquisitions (the
// common case). skip counts frames above SampleHold's caller to drop.
// Call outside the lock's interlock — capture walks the stack.
func (c *Class) SampleHold(skip int, tid uint32) *HoldInfo {
	if !c.On() || !c.sampleFires() {
		return nil
	}
	var pcs [maxStackDepth]uintptr
	n := runtime.Callers(skip+2, pcs[:])
	if n == 0 {
		return nil
	}
	return &HoldInfo{Stack: internStack(pcs[:n]), TID: tid, Since: 0}
}

// EndHold accumulates a sampled hold into the class's hold-site profile.
// h may be nil (unsampled hold): no-op.
func (c *Class) EndHold(h *HoldInfo, holdNs int64) {
	if h == nil || c == nil {
		return
	}
	c.holdSites.add(h.Stack, holdNs)
}

// BlameWait attributes waitNs of lock waiting to the holder described by h.
// A nil h (the holder was not sampled, or there was no single holder)
// accumulates under the nil stack, exported as "<unattributed>"; the ratio
// of attributed to unattributed delay is itself a useful signal of the
// sampling rate's adequacy.
func (c *Class) BlameWait(h *HoldInfo, waitNs int64) {
	if c == nil || !enabled.Load() {
		return
	}
	var s *Stack
	if h != nil {
		s = h.Stack
	}
	c.blameSites.add(s, waitNs)
}

// WaitSampled accumulates a contended acquisition into the class's
// wait-site profile, capturing the waiter's own stack at the sampling
// rate. Call it from the slow path only (the caller has already waited
// waitNs > 0 ns, so the capture cost is noise).
func (c *Class) WaitSampled(skip int, waitNs int64) {
	if !c.On() || !c.sampleFires() {
		return
	}
	var pcs [maxStackDepth]uintptr
	n := runtime.Callers(skip+2, pcs[:])
	if n == 0 {
		return
	}
	c.waitSites.add(internStack(pcs[:n]), waitNs)
}

// siteProfile is one stack-keyed accumulator: counts and nanoseconds per
// interned stack. Sampled updates only, so a plain mutex suffices.
type siteProfile struct {
	mu sync.Mutex
	m  map[*Stack]*siteCounts
}

type siteCounts struct {
	count int64
	ns    int64
}

func (sp *siteProfile) add(s *Stack, ns int64) {
	sp.mu.Lock()
	if sp.m == nil {
		sp.m = make(map[*Stack]*siteCounts)
	}
	e := sp.m[s]
	if e == nil {
		e = &siteCounts{}
		sp.m[s] = e
	}
	e.count++
	e.ns += ns
	sp.mu.Unlock()
}

func (sp *siteProfile) snapshot() []Site {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	out := make([]Site, 0, len(sp.m))
	for s, e := range sp.m {
		out = append(out, Site{Stack: s, Count: e.count, Ns: e.ns})
	}
	return out
}

func (sp *siteProfile) reset() {
	sp.mu.Lock()
	sp.m = nil
	sp.mu.Unlock()
}

// Site is one exported site-profile row: an interned stack (nil =
// unattributed) with its sampled event count and accumulated nanoseconds.
type Site struct {
	Stack *Stack
	Count int64
	Ns    int64
}

// SiteKind selects one of the three site profiles a class accumulates.
type SiteKind int

const (
	// SiteWaits keys contended-acquisition delay by the WAITER's stack:
	// "who waits on this class, from where".
	SiteWaits SiteKind = iota
	// SiteHolds keys hold time by the HOLDER's acquisition stack: "which
	// call sites hold this class, for how long".
	SiteHolds
	// SiteBlame keys waiters' delay by the HOLDER's acquisition stack:
	// "which call sites CAUSE the waiting on this class" — the causal
	// attribution the tentpole is named for.
	SiteBlame
)

// String implements fmt.Stringer.
func (k SiteKind) String() string {
	switch k {
	case SiteWaits:
		return "waits"
	case SiteHolds:
		return "holds"
	default:
		return "blame"
	}
}

// Sites returns a snapshot of one of the class's site profiles.
func (c *Class) Sites(kind SiteKind) []Site {
	if c == nil {
		return nil
	}
	switch kind {
	case SiteWaits:
		return c.waitSites.snapshot()
	case SiteHolds:
		return c.holdSites.snapshot()
	default:
		return c.blameSites.snapshot()
	}
}

package trace

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// testClass makes a uniquely named class per test to keep the global
// registry from cross-contaminating assertions.
func testClass(t *testing.T, kind Kind) *Class {
	t.Helper()
	return NewClass("tracetest", t.Name(), kind)
}

func TestRegistryDedupAndLookup(t *testing.T) {
	a := NewClass("p", "same", KindSpin)
	b := NewClass("p", "same", KindSpin)
	if a != b {
		t.Fatal("duplicate registration returned a new class")
	}
	if Lookup("p", "same") != a {
		t.Fatal("Lookup missed registered class")
	}
	if Lookup("p", "missing") != nil {
		t.Fatal("Lookup invented a class")
	}
	if c := NewClass("q", "same", KindComplex); c == a {
		t.Fatal("same name in another pkg must be a distinct class")
	}
	found := false
	for _, c := range Classes() {
		if c == a {
			found = true
		}
	}
	if !found {
		t.Fatal("Classes() omitted a registered class")
	}
}

func TestDisabledIsInert(t *testing.T) {
	Disable()
	c := testClass(t, KindSpin)
	if c.On() {
		t.Fatal("On() true while disabled")
	}
	c.Acquired(true, 100)
	c.Released(50)
	p := c.Snapshot()
	if p.Acquisitions != 0 || p.Contended != 0 || p.Releases != 0 {
		t.Fatalf("disabled tracing still counted: %+v", p)
	}
	var nilClass *Class
	if nilClass.On() {
		t.Fatal("nil class On() true")
	}
	// All recording methods must be nil-receiver safe.
	Enable()
	defer Disable()
	nilClass.Acquired(false, 0)
	nilClass.Released(1)
	nilClass.Waiting()
	nilClass.DoneWaiting(1)
	nilClass.Upgraded(true)
	nilClass.Downgraded()
	nilClass.RefClone(1)
	nilClass.RefRelease(0)
	nilClass.Deactivated()
}

func TestProfileAccounting(t *testing.T) {
	ResetEvents()
	Enable()
	defer Disable()
	c := testClass(t, KindComplex)
	c.Acquired(false, 0)
	c.Acquired(true, 1000)
	c.Released(500)
	c.Upgraded(true)
	c.Upgraded(false)
	c.Downgraded()
	c.RefClone(2)
	c.RefRelease(1)
	c.Deactivated()
	p := c.Snapshot()
	if p.Acquisitions != 2 || p.Contended != 1 || p.Releases != 1 {
		t.Fatalf("counts wrong: %+v", p)
	}
	if p.ContentionRate != 0.5 {
		t.Fatalf("contention rate = %v, want 0.5", p.ContentionRate)
	}
	if p.MaxWaitNs != 1000 || p.MeanHoldNs != 500 {
		t.Fatalf("histograms wrong: wait max %d hold mean %v", p.MaxWaitNs, p.MeanHoldNs)
	}
	if p.Upgrades != 1 || p.FailedUpgrades != 1 || p.Downgrades != 1 {
		t.Fatalf("upgrade accounting wrong: %+v", p)
	}
	if p.RefClones != 1 || p.RefReleases != 1 || p.Deactivates != 1 {
		t.Fatalf("ref accounting wrong: %+v", p)
	}

	c.reset()
	if p := c.Snapshot(); p.Acquisitions != 0 || p.MaxWaitNs != 0 {
		t.Fatalf("reset left residue: %+v", p)
	}
}

func TestFlightRecorderRecordsAndOrders(t *testing.T) {
	ResetEvents()
	Enable()
	defer Disable()
	c := testClass(t, KindSpin)
	const n = 100
	for i := 0; i < n; i++ {
		c.Acquired(false, 0)
		c.Released(int64(i))
	}
	evs := Events(0)
	var mine []Event
	for _, e := range evs {
		if e.Class == c {
			mine = append(mine, e)
		}
	}
	if len(mine) != 2*n {
		t.Fatalf("recorded %d events, want %d", len(mine), 2*n)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].TimeNs < evs[i-1].TimeNs {
			t.Fatalf("events out of order at %d", i)
		}
	}
	// Tail limiting.
	if got := Events(10); len(got) != 10 {
		t.Fatalf("Events(10) returned %d", len(got))
	}
	if !strings.Contains(mine[0].String(), t.Name()) {
		t.Fatalf("event string %q does not name the class", mine[0].String())
	}
}

func TestFlightRecorderWraps(t *testing.T) {
	SetRingCapacity(8)
	defer SetRingCapacity(DefaultRingCapacity)
	Enable()
	defer Disable()
	c := testClass(t, KindSpin)
	for i := 0; i < 10_000; i++ {
		c.Acquired(false, 0)
	}
	evs := Events(0)
	if len(evs) == 0 || len(evs) > 8*nshards {
		t.Fatalf("wrapped ring holds %d events, want 1..%d", len(evs), 8*nshards)
	}
}

// TestFlightRecorderConcurrentWraparound hammers a tiny ring from many
// writers while readers snapshot it, so every slot wraps hundreds of times
// mid-read. The seq-validated slots must never yield a torn event: each
// decoded event carries a registered class, a known op, a tid one of the
// writers stamped, and a plausible timestamp.
func TestFlightRecorderConcurrentWraparound(t *testing.T) {
	SetRingCapacity(8)
	defer SetRingCapacity(DefaultRingCapacity)
	Enable()
	defer Disable()
	c := testClass(t, KindSpin)
	start := time.Now().UnixNano()

	const writers = 8
	const perWriter = 4000
	var wgWriters, wgReaders sync.WaitGroup
	stop := make(chan struct{})
	var torn atomic.Int64
	// Concurrent readers validate whatever they catch mid-wrap.
	for r := 0; r < 2; r++ {
		wgReaders.Add(1)
		go func() {
			defer wgReaders.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, e := range Events(0) {
					if e.Class != c || e.Op != OpRelease || e.TID > writers ||
						e.TimeNs < start {
						torn.Add(1)
					}
				}
			}
		}()
	}
	for w := 1; w <= writers; w++ {
		wgWriters.Add(1)
		go func(tid uint32) {
			defer wgWriters.Done()
			for i := 0; i < perWriter; i++ {
				c.ReleasedBy(tid, int64(i))
			}
		}(uint32(w))
	}
	wgWriters.Wait()
	close(stop)
	wgReaders.Wait()

	if torn.Load() != 0 {
		t.Fatalf("%d torn events surfaced from the wrapped ring", torn.Load())
	}
	evs := Events(0)
	if len(evs) == 0 || len(evs) > 8*nshards {
		t.Fatalf("wrapped ring holds %d events, want 1..%d", len(evs), 8*nshards)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].TimeNs < evs[i-1].TimeNs {
			t.Fatalf("events out of order at %d", i)
		}
	}
}

func TestConcurrentRecordingIsSafe(t *testing.T) {
	ResetEvents()
	Enable()
	defer Disable()
	c := testClass(t, KindObject)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				c.Acquired(i%7 == 0, int64(i))
				c.RefClone(int64(i))
				c.RefRelease(int64(i))
				c.Released(int64(i))
			}
		}()
	}
	// Concurrent dumps must not race with recording.
	for i := 0; i < 50; i++ {
		Events(100)
	}
	wg.Wait()
	p := c.Snapshot()
	if p.Acquisitions != 8*2000 || p.Releases != 8*2000 {
		t.Fatalf("lost counts under concurrency: %+v", p)
	}
	if p.RefClones != 8*2000 || p.RefReleases != 8*2000 {
		t.Fatalf("lost ref counts: %+v", p)
	}
}

func TestExporters(t *testing.T) {
	Enable()
	defer Disable()
	c := testClass(t, KindSpin)
	c.Acquired(true, 1000)
	c.Released(100)
	ps := []Profile{c.Snapshot()}

	var text strings.Builder
	if err := WriteText(&text, ps); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), t.Name()) || !strings.Contains(text.String(), "cont%") {
		t.Fatalf("text export missing content:\n%s", text.String())
	}

	var csv strings.Builder
	if err := WriteCSV(&csv, ps); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 2 || !strings.HasPrefix(lines[0], "pkg,name,kind") {
		t.Fatalf("csv export wrong:\n%s", csv.String())
	}
	if !strings.Contains(lines[1], "tracetest,"+t.Name()+",spin,1,1,1.000000") {
		t.Fatalf("csv row wrong: %s", lines[1])
	}

	var vars strings.Builder
	if err := WriteVars(&vars, ps); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(vars.String(), `"tracetest/`+t.Name()+`"`) ||
		!strings.Contains(vars.String(), `"Acquisitions": 1`) {
		t.Fatalf("vars export wrong:\n%s", vars.String())
	}

	var evs strings.Builder
	if err := WriteEvents(&evs, Events(5)); err != nil {
		t.Fatal(err)
	}
}

func TestRankedOrdersByContention(t *testing.T) {
	Enable()
	defer Disable()
	hot := NewClass("tracetest", t.Name()+"-hot", KindSpin)
	warm := NewClass("tracetest", t.Name()+"-warm", KindSpin)
	cold := NewClass("tracetest", t.Name()+"-cold", KindSpin)
	_ = cold // registered but idle: must not appear
	for i := 0; i < 10; i++ {
		hot.Acquired(true, 10)
	}
	warm.Acquired(true, 10)
	r := Ranked()
	hotAt, warmAt, coldSeen := -1, -1, false
	for i, p := range r {
		switch p.Name {
		case t.Name() + "-hot":
			hotAt = i
		case t.Name() + "-warm":
			warmAt = i
		case t.Name() + "-cold":
			coldSeen = true
		}
	}
	if hotAt == -1 || warmAt == -1 || hotAt > warmAt {
		t.Fatalf("ranking wrong: hot@%d warm@%d", hotAt, warmAt)
	}
	if coldSeen {
		t.Fatal("idle class appeared in ranked report")
	}
}

func TestKindAndOpStrings(t *testing.T) {
	if KindSpin.String() != "spin" || KindComplex.String() != "complex" ||
		KindRef.String() != "ref" || KindObject.String() != "object" ||
		Kind(99).String() != "kind(99)" {
		t.Fatal("Kind strings wrong")
	}
	if OpAcquire.String() != "acquire" || OpDeactivate.String() != "deactivate" ||
		Op(99).String() != "op(99)" {
		t.Fatal("Op strings wrong")
	}
}

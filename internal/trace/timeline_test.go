package trace

import (
	"bytes"
	"encoding/json"
	"testing"
)

// timelineDoc mirrors the Chrome trace-event JSON envelope for assertions.
type timelineDoc struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Cat  string         `json:"cat"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

// stubOwner is a minimal Identifiable span owner for timeline tests.
type stubOwner uint32

func (o stubOwner) TraceID() uint32 { return uint32(o) }

func writeTimeline(t *testing.T, events []Event) timelineDoc {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteTimeline(&buf, events); err != nil {
		t.Fatalf("WriteTimeline: %v", err)
	}
	var doc timelineDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("timeline is not valid JSON: %v\n%s", err, buf.String())
	}
	return doc
}

// TestTimelineSlices drives real hold, wait, and span traffic through the
// flight recorder and asserts the export turns the duration-carrying events
// into complete slices on the right tracks.
func TestTimelineSlices(t *testing.T) {
	ResetEvents()
	Enable()
	defer Disable()
	c := testClass(t, KindComplex)
	op := NewOp("tracetest", t.Name()+"-op")
	tid := RegisterThread(t.Name() + "-thread")
	owner := stubOwner(tid)

	c.AcquiredBy(tid, false, 0)
	c.ReleasedBy(tid, 5_000) // 5µs hold -> one "hold" slice
	c.WaitingBy(tid)
	c.DoneWaitingBy(tid, 3_000) // 3µs wait -> one "wait" slice
	BeginSpan(owner, op).End()  // -> one "op" slice

	doc := writeTimeline(t, Events(0))
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}

	var haveProcName, haveThreadName bool
	var hold, wait, span int
	for _, e := range doc.TraceEvents {
		switch {
		case e.Ph == "M" && e.Name == "process_name":
			haveProcName = e.Args["name"] == "machlock"
		case e.Ph == "M" && e.Name == "thread_name":
			if e.Args["name"] == t.Name()+"-thread" && e.Tid == int(tid) {
				haveThreadName = true
			}
		case e.Ph == "X":
			// ts may be negative here: the synthetic hold "began" before
			// the first retained event. Durations must never be.
			if e.Dur < 0 {
				t.Fatalf("slice with negative dur: %+v", e)
			}
			switch e.Cat {
			case "hold":
				if e.Tid == int(tid) && e.Dur == 5 { // 5000ns = 5µs
					hold++
				}
			case "wait":
				if e.Tid == int(tid) && e.Dur == 3 {
					wait++
				}
			case "op":
				if e.Tid == int(tid) && e.Name == "tracetest/"+t.Name()+"-op" {
					span++
				}
			}
		}
	}
	if !haveProcName || !haveThreadName {
		t.Fatalf("metadata missing: process=%v thread=%v", haveProcName, haveThreadName)
	}
	if hold != 1 || wait != 1 || span != 1 {
		t.Fatalf("slices hold=%d wait=%d span=%d, want 1 each", hold, wait, span)
	}
}

// TestTimelineInstants: events without a duration (acquire markers,
// ref-count traffic) must come through as instants, not slices.
func TestTimelineInstants(t *testing.T) {
	ResetEvents()
	Enable()
	defer Disable()
	c := testClass(t, KindRef)
	c.RefClone(2)

	doc := writeTimeline(t, Events(0))
	found := false
	for _, e := range doc.TraceEvents {
		if e.Ph == "i" && e.Name == "ref-clone "+"tracetest/"+t.Name() {
			found = true
		}
	}
	if !found {
		t.Fatalf("ref-clone instant missing from %d events", len(doc.TraceEvents))
	}
}

// TestTimelineEmpty: an empty ring still yields a well-formed document.
func TestTimelineEmpty(t *testing.T) {
	doc := writeTimeline(t, nil)
	for _, e := range doc.TraceEvents {
		if e.Ph != "M" {
			t.Fatalf("non-metadata event in empty timeline: %+v", e)
		}
	}
}

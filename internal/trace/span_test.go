package trace

import (
	"sync"
	"testing"
	"time"
)

func opClass(t *testing.T, suffix string) *Class {
	t.Helper()
	return NewOp("tracetest", t.Name()+suffix)
}

func TestThreadRegistry(t *testing.T) {
	tid := RegisterThread(t.Name())
	if tid == 0 {
		t.Fatal("RegisterThread handed out the reserved id 0")
	}
	if ThreadName(tid) != t.Name() {
		t.Fatalf("ThreadName(%d) = %q", tid, ThreadName(tid))
	}
	if ThreadName(0) != "" || ThreadName(1<<30) != "" {
		t.Fatal("ThreadName for unknown ids not empty")
	}
}

func TestSpanDisabledAndNil(t *testing.T) {
	Disable()
	op := opClass(t, "-op")
	s := BeginSpan(stubOwner(1), op)
	if s != nil {
		t.Fatal("BeginSpan returned a span while tracing disabled")
	}
	s.End() // nil-safe
	if s.WaitNs() != 0 || s.Op() != nil {
		t.Fatal("nil span accessors not inert")
	}
	// Wait hooks with no open span anywhere must be one-load no-ops.
	SpanWaitStart(stubOwner(1))
	SpanWaitEnd(stubOwner(1))
	SpanAddWait(stubOwner(1), 100)
	if op.Snapshot().Acquisitions != 0 {
		t.Fatal("disabled span recorded")
	}
}

// TestSpanNestingAndWaitPropagation: a child span's lock wait counts inside
// the parent's wall clock, so ending the child must both record the wait on
// the child's class and propagate it outward to the parent.
func TestSpanNestingAndWaitPropagation(t *testing.T) {
	Enable()
	defer Disable()
	outerOp := opClass(t, "-outer")
	innerOp := opClass(t, "-inner")
	owner := stubOwner(RegisterThread(t.Name()))

	outer := BeginSpan(owner, outerOp)
	if CurrentSpan(owner) != outer {
		t.Fatal("outer span not current after begin")
	}
	inner := BeginSpan(owner, innerOp)
	if CurrentSpan(owner) != inner {
		t.Fatal("inner span not current while nested")
	}

	// A lock wait inside the inner span, credited via the observer-bridge
	// entry points.
	SpanWaitStart(owner)
	time.Sleep(2 * time.Millisecond)
	SpanWaitEnd(owner)
	if inner.WaitNs() <= 0 {
		t.Fatal("inner span did not accumulate the bracketed wait")
	}
	SpanAddWait(owner, 1000) // direct credit path
	waited := inner.WaitNs()

	inner.End()
	if CurrentSpan(owner) != outer {
		t.Fatal("parent span not restored after child End")
	}
	if outer.WaitNs() != waited {
		t.Fatalf("parent credited %dns, child accumulated %dns", outer.WaitNs(), waited)
	}
	outer.End()
	if CurrentSpan(owner) != nil {
		t.Fatal("span still current after outermost End")
	}

	for _, tc := range []struct {
		op        *Class
		contended int64
	}{{innerOp, 1}, {outerOp, 1}} {
		p := tc.op.Snapshot()
		if p.Acquisitions != 1 || p.Contended != tc.contended {
			t.Fatalf("%s: count=%d contended=%d", tc.op.name, p.Acquisitions, p.Contended)
		}
	}

	// The op rows must surface through OpProfiles with the wait/work split.
	var found *OpProfile
	profiles := OpProfiles()
	for i := range profiles {
		if profiles[i].Name == innerOp.name {
			found = &profiles[i]
			break
		}
	}
	if found == nil {
		t.Fatal("inner op missing from OpProfiles")
	}
	if found.Count != 1 || found.Contended != 1 {
		t.Fatalf("op profile wrong: %+v", found)
	}
	if found.MaxNs <= 0 {
		t.Fatalf("op profile lost the latency: %+v", found)
	}
}

// TestSpanWaitTruncatedAtEnd: an End inside an open wait window truncates
// the wait rather than losing it (and never records negative work).
func TestSpanWaitTruncatedAtEnd(t *testing.T) {
	Enable()
	defer Disable()
	op := opClass(t, "-op")
	owner := stubOwner(RegisterThread(t.Name()))
	s := BeginSpan(owner, op)
	SpanWaitStart(owner)
	time.Sleep(time.Millisecond)
	s.End() // wait still open
	if s.WaitNs() <= 0 {
		t.Fatal("open wait window lost at End")
	}
	p := op.Snapshot()
	if p.Contended != 1 {
		t.Fatalf("truncated wait not recorded: %+v", p)
	}
}

// TestSpanAnonymousOwner: owner-less spans record latency but cannot be
// credited waits and never touch the current-span registry.
func TestSpanAnonymousOwner(t *testing.T) {
	Enable()
	defer Disable()
	op := opClass(t, "-op")
	s := BeginSpan(nil, op)
	if s == nil {
		t.Fatal("anonymous span not created")
	}
	if CurrentSpan(nil) != nil {
		t.Fatal("nil owner must not be registered")
	}
	s.End()
	if p := op.Snapshot(); p.Acquisitions != 1 {
		t.Fatalf("anonymous span not recorded: %+v", p)
	}
}

// TestSpanConcurrentOwners: many threads each running nested spans with
// interleaved waits; run under -race this is the data-race check for the
// span registry and the openSpans gate.
func TestSpanConcurrentOwners(t *testing.T) {
	Enable()
	defer Disable()
	outerOp := opClass(t, "-outer")
	innerOp := opClass(t, "-inner")
	const goroutines = 8
	const iters = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		owner := stubOwner(RegisterThread(t.Name()))
		go func(owner stubOwner) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				outer := BeginSpan(owner, outerOp)
				inner := BeginSpan(owner, innerOp)
				SpanWaitStart(owner)
				SpanWaitEnd(owner)
				SpanAddWait(owner, 10)
				inner.End()
				outer.End()
			}
		}(owner)
	}
	wg.Wait()
	if p := outerOp.Snapshot(); p.Acquisitions != goroutines*iters {
		t.Fatalf("lost outer spans: %+v", p)
	}
	if p := innerOp.Snapshot(); p.Acquisitions != goroutines*iters || p.Contended != goroutines*iters {
		t.Fatalf("lost inner spans: %+v", p)
	}
}

package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"machlock/internal/core/cxlock"
	"machlock/internal/sched"
	"machlock/internal/stats"
)

func init() {
	register(Experiment{ID: "e3", Title: "Writer priority prevents writer starvation", Run: runE3})
	register(Experiment{ID: "e4", Title: "Read-to-write upgrade vs write-then-downgrade", Run: runE4})
	register(Experiment{ID: "e5", Title: "Spin vs Sleep option across hold times", Run: runE5})
}

// readerPrefLock is a deliberately naive readers/writers lock WITHOUT
// writer priority: readers are always admitted while any reader holds the
// lock. It exists only as the baseline Mach rejected — under a reader
// flood, a writer starves.
type readerPrefLock struct {
	mu      sync.Mutex
	readers int
	writer  bool
}

func (l *readerPrefLock) rlock() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.writer {
		return false
	}
	l.readers++
	return true
}

func (l *readerPrefLock) runlock() {
	l.mu.Lock()
	l.readers--
	l.mu.Unlock()
}

func (l *readerPrefLock) wlock() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.writer || l.readers > 0 {
		return false
	}
	l.writer = true
	return true
}

func (l *readerPrefLock) wunlock() {
	l.mu.Lock()
	l.writer = false
	l.mu.Unlock()
}

// runE3: a flood of readers against a single writer. With Mach's writer
// priority ("readers may not be added to a lock held for reading in the
// presence of an outstanding write request") the writer's acquisitions
// complete promptly; with reader preference the writer waits for a gap
// that a dense enough flood never provides.
func runE3(cfg Config) *Result {
	writes := cfg.scale(30, 200)
	readers := 4
	window := time.Duration(cfg.scale(200, 1000)) * time.Millisecond

	res := &Result{
		ID:    "e3",
		Title: "Writer priority prevents writer starvation",
		Claim: "the Multiple protocol implements a readers/writers lock with writers priority to avoid starvation: readers may not be added to a lock held for reading in the presence of an outstanding write request (Section 4)",
	}
	table := stats.NewTable("single writer vs 4-reader flood",
		"lock", "writes-completed", "target", "reads-admitted-past-waiting-writer", "max-write-wait")

	// Oversubscribe the host so the reader flood genuinely overlaps the
	// writer instead of being serialized into scheduler quanta.
	prev := runtime.GOMAXPROCS(0)
	if prev < readers+1 {
		runtime.GOMAXPROCS(readers + 1)
		defer runtime.GOMAXPROCS(prev)
	}

	// writerWaiting marks the span in which a write request is
	// outstanding; readers that acquire during it were admitted past a
	// waiting writer — the exact behaviour writer priority forbids.
	var writerWaiting atomic.Bool
	var admittedPast atomic.Int64

	// Mach complex lock (writer priority).
	{
		l := cxlock.NewWith(cxlock.Options{Sleep: true})
		writerWaiting.Store(false)
		admittedPast.Store(0)
		stop := make(chan struct{})
		var rds []*sched.Thread
		for i := 0; i < readers; i++ {
			rds = append(rds, sched.Go("r", func(self *sched.Thread) {
				for {
					select {
					case <-stop:
						return
					default:
					}
					l.Read(self)
					if writerWaiting.Load() {
						admittedPast.Add(1)
					}
					spinWork(500)
					l.Done(self)
				}
			}))
		}
		var max time.Duration
		w := sched.Go("w", func(self *sched.Thread) {
			for i := 0; i < writes; i++ {
				writerWaiting.Store(true)
				start := time.Now()
				l.Write(self)
				writerWaiting.Store(false)
				if wait := time.Since(start); wait > max {
					max = wait
				}
				l.Done(self)
				spinWork(2000) // think: let readers re-flood
			}
		})
		w.Join()
		close(stop)
		for _, r := range rds {
			r.Join()
		}
		table.AddRow("mach (writer priority)", writes, writes, admittedPast.Load(), max)
	}

	// Reader-preference baseline: readers are admitted whenever any
	// reader holds the lock, waiting writer or not.
	{
		l := &readerPrefLock{}
		writerWaiting.Store(false)
		admittedPast.Store(0)
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for i := 0; i < readers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					if l.rlock() {
						if writerWaiting.Load() {
							admittedPast.Add(1)
						}
						spinWork(500)
						l.runlock()
					}
				}
			}()
		}
		completed := 0
		var max time.Duration
		deadline := time.Now().Add(window)
		for completed < writes && time.Now().Before(deadline) {
			writerWaiting.Store(true)
			start := time.Now()
			acquired := false
			for time.Now().Before(deadline) {
				if l.wlock() {
					acquired = true
					break
				}
			}
			writerWaiting.Store(false)
			if !acquired {
				break
			}
			if wait := time.Since(start); wait > max {
				max = wait
			}
			completed++
			l.wunlock()
			spinWork(2000)
		}
		close(stop)
		wg.Wait()
		table.AddRow("reader preference (baseline)", completed, writes, admittedPast.Load(), max)
	}
	res.Tables = append(res.Tables, table)
	res.Notes = append(res.Notes,
		"the mach lock admits (almost) no reader past a waiting writer — the nonzero residue is the instrumentation window between the writer announcing and the lock registering its request",
		"the baseline admits readers continuously while the writer waits; with a dense enough flood it misses its write target entirely (starvation)",
	)
	return res
}

// runE4 compares the two ways to get from "inspect under read lock" to
// "modify under write lock". Upgrades fail in the presence of another
// upgrade and the caller must restart from scratch; write-then-downgrade
// can never fail. Section 7.1: "A simpler alternative that avoids
// upgrades is to initially lock for writing, and downgrade … This
// downgrade cannot fail and does not require any special logic in the
// caller."
func runE4(cfg Config) *Result {
	opsPerThread := cfg.scale(2_000, 20_000)
	threads := 4
	res := &Result{
		ID:    "e4",
		Title: "Read-to-write upgrade vs write-then-downgrade",
		Claim: "a failed upgrade releases the read lock and requires recovery logic in the caller; write-then-downgrade cannot fail (Sections 4, 7.1)",
	}
	table := stats.NewTable("contending inspect-then-modify operations",
		"protocol", "threads", "ops", "restarts", "failed-upgrades", "ops/sec")

	// Upgrade protocol.
	{
		l := cxlock.NewWith(cxlock.Options{Sleep: true})
		var restarts atomic.Int64
		var shared int64
		elapsed := timeIt(func() {
			var ths []*sched.Thread
			for i := 0; i < threads; i++ {
				ths = append(ths, sched.Go("u", func(self *sched.Thread) {
					for n := 0; n < opsPerThread; n++ {
						for {
							l.Read(self)
							spinWork(5) // inspect
							if failed := l.ReadToWrite(self); failed {
								// Read hold gone; restart the operation.
								restarts.Add(1)
								continue
							}
							shared++
							l.Done(self)
							break
						}
					}
				}))
			}
			for _, th := range ths {
				th.Join()
			}
		})
		table.AddRow("read+upgrade", threads, threads*opsPerThread, restarts.Load(),
			l.Stats().FailedUpgrades, stats.PerSecond(int64(threads*opsPerThread), elapsed))
	}

	// Write-then-downgrade protocol.
	{
		l := cxlock.NewWith(cxlock.Options{Sleep: true})
		var shared int64
		elapsed := timeIt(func() {
			var ths []*sched.Thread
			for i := 0; i < threads; i++ {
				ths = append(ths, sched.Go("d", func(self *sched.Thread) {
					for n := 0; n < opsPerThread; n++ {
						l.Write(self)
						spinWork(5) // inspect (pessimistically under write)
						shared++
						l.WriteToRead(self)
						l.Done(self)
					}
				}))
			}
			for _, th := range ths {
				th.Join()
			}
		})
		table.AddRow("write+downgrade", threads, threads*opsPerThread, 0,
			l.Stats().FailedUpgrades, stats.PerSecond(int64(threads*opsPerThread), elapsed))
	}
	res.Tables = append(res.Tables, table)
	res.Notes = append(res.Notes,
		"expect nonzero restarts for the upgrade protocol (each one is caller-visible recovery logic) and zero for write+downgrade",
	)
	return res
}

// runE5 sweeps critical-section hold times for the Sleep option on and
// off. The paper's case for sleep locks is not raw handoff speed — it is
// that a spinning waiter burns a processor that could be doing other work
// (and that holders of sleep locks may block). The driver therefore runs a
// BYSTANDER computation alongside the lock contention and reports how much
// of the machine the waiters left it.
func runE5(cfg Config) *Result {
	opsPerThread := cfg.scale(300, 2000)
	threads := 4
	res := &Result{
		ID:    "e5",
		Title: "Spin vs Sleep option across hold times",
		Claim: "locks that may be held across blocking or long operations need the Sleep option; spinning waiters burn processors (Section 4)",
	}
	table := stats.NewTable("4 threads contending one write lock + 1 bystander computation",
		"hold", "mode", "lock-ops/sec", "bystander-work/sec", "sleeps", "spin-loops")
	// Oversubscribe the host so the contenders genuinely interleave
	// instead of being serialized into long scheduler quanta; restore on
	// exit.
	prev := runtime.GOMAXPROCS(0)
	if prev < threads+1 {
		runtime.GOMAXPROCS(threads + 1)
		defer runtime.GOMAXPROCS(prev)
	}
	const reps = 5
	for _, hold := range []int{50, 500, 5000} {
		for _, sleepable := range []bool{false, true} {
			// Median of several repetitions: a single oversubscribed
			// run is at the mercy of scheduler placement.
			lockRates := make([]float64, 0, reps)
			byRates := make([]float64, 0, reps)
			var sleeps, spins int64
			for rep := 0; rep < reps; rep++ {
				l := cxlock.NewWith(cxlock.Options{Sleep: sleepable})
				// Real kernel spinners occupy their processor; model
				// that instead of politely yielding to the scheduler.
				l.BusyWait = true
				var bystanderOps atomic.Int64
				stop := make(chan struct{})
				var wg sync.WaitGroup
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
							spinWork(100)
							bystanderOps.Add(1)
						}
					}
				}()
				elapsed := timeIt(func() {
					var ths []*sched.Thread
					for i := 0; i < threads; i++ {
						ths = append(ths, sched.Go("w", func(self *sched.Thread) {
							for n := 0; n < opsPerThread; n++ {
								l.Write(self)
								spinWork(hold)
								l.Done(self)
							}
						}))
					}
					for _, th := range ths {
						th.Join()
					}
				})
				close(stop)
				wg.Wait()
				lockRates = append(lockRates, stats.PerSecond(int64(threads*opsPerThread), elapsed))
				byRates = append(byRates, stats.PerSecond(bystanderOps.Load(), elapsed))
				s := l.Stats()
				sleeps += s.Sleeps
				spins += s.Spins
			}
			mode := "spin"
			if sleepable {
				mode = "sleep"
			}
			table.AddRow(hold, mode, median(lockRates), median(byRates), sleeps, spins)
		}
	}
	res.Tables = append(res.Tables, table)
	res.Notes = append(res.Notes,
		"the bystander column is the claim: spinning waiters compete for processors against both the lock holder and unrelated work, so under spin locks the bystander (and the holder, hence lock-ops/sec) collapse as hold time grows; sleeping waiters park and cost nothing",
		"the sleeps column shows waiters actually blocking at long holds; correctness is the other half — only sleepable locks may be held across blocking operations at all (enforced by sched.ThreadBlock)",
	)
	return res
}

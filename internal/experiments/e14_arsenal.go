package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"machlock/internal/core/splock"
	"machlock/internal/hw"
	"machlock/internal/stats"
	"machlock/internal/trace"

	machlock "machlock"
)

func init() {
	register(Experiment{ID: "e14", Title: "Lock-algorithm shootout: the arsenal vs TAS/TTAS", Run: runE14})
}

// arsenalPolicies is the shootout lineup, in the order the tables report.
var e14Policies = []splock.Policy{
	splock.TAS, splock.TTAS, splock.TASTTAS,
	splock.Queue, splock.Cohort, splock.Adaptive,
}

// runE14 extends E1's coherence argument to the whole arsenal. E1 showed
// what WAITING costs per policy; the regime that separates the arsenal is
// the HANDOFF: when a contended lock is released, TTAS pays a stampede
// (every spinner's cached copy invalidates, every spinner refetches, the
// winners' atomic attempts serialize on the line), while a queue lock
// pays one store into the successor's private flag. The cohort lock
// additionally keeps consecutive holders — and the line of the data the
// lock protects — inside one cell; the adaptive lock removes parked
// waiters from the interconnect entirely.
func runE14(cfg Config) *Result {
	res := &Result{
		ID:    "e14",
		Title: "Lock-algorithm shootout: the arsenal vs TAS/TTAS",
		Claim: "queue and cohort locks hold handoff traffic constant as spinners are added, where TAS/TTAS stampedes grow with the spinner count; the cohort additionally pins the protected data's cache line to one cell (Section 2's argument, extended)",
	}

	rounds := cfg.scale(100, 1000)

	// Deterministic handoff sweep: a fixed chain of `rounds` handoffs on a
	// two-cell machine, every other CPU waiting, driven round-robin with
	// SpinOnce (no goroutines, no host scheduling). The protected data
	// cell is written by each holder, so cross-cell transfers count how
	// often the lock DRAGS ITS DATA across the interconnect.
	hand := stats.NewTable("interconnect traffic per contended handoff (deterministic, 2 cells)",
		"policy", "cpus", "handoffs", "txns/handoff", "cross-cell", "parks")
	for _, ncpu := range []int{2, 4, 8, 16} {
		for _, p := range e14Policies {
			bus, cross, parks := arsenalHandoffPhase(ncpu, 2, p, rounds)
			hand.AddRow(p.String(), ncpu, rounds,
				stats.Ratio(float64(bus), float64(rounds)), cross, parks)
		}
	}
	res.Tables = append(res.Tables, hand)

	// End-to-end throughput on the production locks (host goroutines, so
	// scheduling-dependent; reported for completeness as E1 does): a fixed
	// workload mix of lock/unlock pairs with a short critical section.
	iters := cfg.scale(2000, 20000)
	thr := stats.NewTable("end-to-end contended throughput, production locks (concurrent, scheduling-dependent)",
		"algorithm", "goroutines", "acquisitions", "ns/acq", "handoffs", "parks")
	for _, workers := range []int{1, 2, 4, 8, 16} {
		for _, a := range machlock.Algorithms() {
			perG := iters / workers
			elapsed, st := arsenalThroughput(a, workers, perG)
			total := workers * perG
			thr.AddRow(a.String(), workers, total,
				stats.Ratio(float64(elapsed.Nanoseconds()), float64(total)),
				st.Handoffs, st.Parks)
		}
	}
	res.Tables = append(res.Tables, thr)

	// Recommend: drive three traced workload shapes over a default lock
	// and show what the contention profile tells the facade to pick.
	rec := stats.NewTable("machlock.Recommend from traced contention profiles",
		"workload", "contention%", "p90-wait-us", "p90-hold-us", "recommendation")
	for _, w := range []struct {
		name string
		run  func(c *trace.Class)
	}{
		{"read-mostly (uncontended)", func(c *trace.Class) {
			recommendWorkload(c, 2, cfg.scale(500, 2000), func() { spinWork(5) })
		}},
		{"contended, short holds", func(c *trace.Class) {
			recommendWorkload(c, 8, cfg.scale(300, 1500), runtime.Gosched)
		}},
		{"contended, long holds", func(c *trace.Class) {
			// The yield mid-hold lets the other worker observe the lock
			// held (single-core hosts never preempt a 50µs busy loop), so
			// contention is measured; the waits stay well under the
			// parking threshold, which is what separates this regime from
			// the long-wait one below.
			recommendWorkload(c, 2, cfg.scale(500, 600), func() {
				spinFor(25 * time.Microsecond)
				runtime.Gosched()
				spinFor(25 * time.Microsecond)
			})
		}},
		{"contended, long waits", func(c *trace.Class) {
			recommendWorkload(c, 8, cfg.scale(130, 250), func() { time.Sleep(400 * time.Microsecond) })
		}},
	} {
		trace.Enable()
		c := trace.NewClass("experiments", "e14."+w.name, trace.KindSpin)
		w.run(c)
		p := c.Snapshot()
		a := machlock.Recommend(c)
		trace.Disable()
		rec.AddRow(w.name, fmt.Sprintf("%.1f", 100*p.ContentionRate),
			stats.Ratio(float64(p.P90WaitNs), 1000), stats.Ratio(float64(p.P90HoldNs), 1000),
			a.String())
	}
	res.Tables = append(res.Tables, rec)

	res.Notes = append(res.Notes,
		"expect ttas txns/handoff to GROW with cpus (the release stampede refills every spinner) while queue/adaptive stay ~flat (one grant store into the successor's flag)",
		"expect cohort cross-cell transfers well below queue's at the same cpu count: FIFO order alternates cells, the cohort batches them (handoff budget bounds the unfairness)",
		"expect adaptive parks > 0 and near-queue traffic: parked waiters cost the interconnect nothing until the wakeup IPI",
		"the recommendation table is the trace->Recommend loop: measure with the default lock, let the profile pick the algorithm",
	)
	return res
}

// arsenalHandoffPhase builds the deterministic handoff chain: CPU 0 takes
// the lock, every other CPU engages as a waiter, then `rounds` times the
// holder writes the protected data cell and releases, and the waiters are
// stepped round-robin until one acquires (becoming the next holder, with
// the old holder re-engaging as a waiter). Returns interconnect
// transactions during the chain, cross-cell ownership transfers, and
// adaptive parks.
func arsenalHandoffPhase(ncpu, cells int, p splock.Policy, rounds int) (bus, cross, parks int64) {
	m := hw.NewWithConfig(hw.Config{CPUs: ncpu, Cells: cells})
	l := splock.NewSimWith(splock.Opts{
		Machine:   m,
		Algorithm: p,
		Domains:   cells,
		// A small budget so adaptive waiters actually park during the
		// engagement phase; the default would spin through short chains.
		SpinBudget: 4,
	})
	data := m.NewCell(0)

	engage := func(id int) {
		for k := 0; k < 8; k++ {
			if l.SpinOnce(m.CPU(id)) {
				panic("experiments: waiter acquired a held lock")
			}
		}
	}
	l.Lock(m.CPU(0)) //machlock:holds — the chain ends with the last handoff's winner still holding
	holder := 0
	for i := 1; i < ncpu; i++ {
		engage(i)
	}
	m.ResetBus()
	for r := 0; r < rounds; r++ {
		c := m.CPU(holder)
		data.Store(c, int64(r)) // the data the lock protects follows the holder
		l.Unlock(c)
		prev := holder
		holder = -1
		// Step EVERY waiter once per sweep, and finish the sweep even
		// after one wins: the losers' post-release steps are the stampede
		// (each refills its invalidated copy; under TAS each also retries
		// the atomic swap). Rotating the sweep start spreads wins across
		// CPUs — and so across cells — for the policies with no queue.
		for holder == -1 {
			for k := 1; k < ncpu; k++ {
				i := (prev + k) % ncpu
				if l.SpinOnce(m.CPU(i)) {
					if holder != -1 {
						panic("experiments: two CPUs acquired one handoff")
					}
					holder = i
				}
			}
		}
		engage(prev)
	}
	st := l.Stats()
	return m.BusTransactions(), m.CrossCellTransfers(), st.Parks
}

// arsenalThroughput drives the production locks from host goroutines.
// The critical section yields the processor (and sleeps every 16th
// hold), which is what makes the table meaningful even on a single-core
// host: without the yield, goroutines run whole scheduler quanta of
// uncontended lock cycles back to back and no algorithm ever sees a
// queued successor.
func arsenalThroughput(a machlock.Algorithm, workers, perG int) (time.Duration, splock.AlgoStats) {
	opts := []machlock.Option{machlock.WithAlgorithm(a), machlock.WithDomains(2)}
	if a == machlock.Adaptive {
		// A small budget so waiters actually park instead of spinning
		// through the holder's sleep.
		opts = append(opts, machlock.WithSpinThenPark(8))
	}
	l := machlock.NewSimpleLock(opts...)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				l.Lock()
				if i%16 == 0 {
					time.Sleep(time.Microsecond)
				} else {
					runtime.Gosched()
				}
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	return time.Since(start), l.AlgoStats()
}

// recommendWorkload drives workers over one traced default lock, with
// hold() as the critical section. A Gosched separates release from the
// next acquisition so that on a single-core host the other workers get a
// chance to contend at all — without it the releaser's next CAS always
// wins and the lock looks uncontended no matter how many workers run.
func recommendWorkload(c *trace.Class, workers, iters int, hold func()) {
	l := splock.NewWith(splock.Opts{Class: c, Name: "e14.rec"})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				l.Lock()
				hold()
				l.Unlock()
				runtime.Gosched()
			}
		}()
	}
	wg.Wait()
}

// spinFor busy-waits approximately d while holding (holds must burn cpu,
// not sleep, to model a real critical section's hold time without
// inflating every waiter's wait past the parking threshold).
func spinFor(d time.Duration) {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		spinWork(5)
	}
}

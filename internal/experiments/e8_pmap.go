package experiments

import (
	"runtime"
	"sync"
	"time"

	"machlock/internal/hw"
	"machlock/internal/pmap"
	"machlock/internal/stats"
	"machlock/internal/tlbsim"
)

func init() {
	register(Experiment{ID: "e8", Title: "pmap lock-order arbitration: system lock vs backout", Run: runE8})
	register(Experiment{ID: "e9", Title: "TLB shootdown barriers and the pmap-spinner exemption", Run: runE9})
}

// runE8 drives the Section 5 scenario: forward operations (pmap→pv list)
// racing reverse operations (pv list→pmap) under the two arbitration
// strategies the paper describes — the pmap system readers/writers lock,
// and single-attempt backout.
func runE8(cfg Config) *Result {
	forwardOps := cfg.scale(3_000, 30_000)
	res := &Result{
		ID:    "e8",
		Title: "pmap lock-order arbitration: system lock vs backout",
		Claim: "a third lock (the pmap system lock) arbitrates between the orders in which the pmap and pv-list locks may be acquired; the alternative is a backout protocol — a single attempt for the second lock, with failure causing the first to be released and reacquired later (Section 5)",
	}
	table := stats.NewTable("mixed forward/reverse pmap operations (best of 3 runs)",
		"reverse-share", "mode", "forward-ops", "reverse-ops", "backout-retries", "ops/sec")

	// Sweep the share of reverse-direction (pv→pmap) work: the system
	// lock taxes every forward operation with a global read acquisition,
	// while backout taxes reverse operations with retries — so each
	// strategy has a regime where it wins.
	for _, revDiv := range []int{50, 10, 2} { // reverseOps = forwardOps/revDiv
		for _, mode := range []pmap.Mode{pmap.SystemLock, pmap.Backout, pmap.ClassArbitration} {
			var retries int64
			var bestRate float64
			fwd, rev := forwardOps, forwardOps/revDiv
			for rep := 0; rep < 3; rep++ {
				s := pmap.NewSystem(mode, 16)
				const nThreads = 4
				pms := make([]*pmap.Pmap, nThreads)
				for i := range pms {
					pms[i] = s.NewPmap()
				}
				elapsed := timeIt(func() {
					var wg sync.WaitGroup
					for i := 0; i < nThreads; i++ {
						wg.Add(1)
						go func(pm *pmap.Pmap, seed uint64) {
							defer wg.Done()
							rng := newXorshift(seed + 7)
							for n := 0; n < fwd/nThreads; n++ {
								va := rng.next() % 256
								pa := rng.next() % 16
								s.Enter(pm, va, pa, pmap.ProtAll)
								if n%4 == 0 {
									s.Remove(pm, va)
								}
							}
						}(pms[i], uint64(i))
					}
					for i := 0; i < 2; i++ {
						wg.Add(1)
						go func(seed uint64) {
							defer wg.Done()
							rng := newXorshift(seed + 99)
							for n := 0; n < rev/2; n++ {
								pa := rng.next() % 16
								if n%8 == 0 {
									s.PageProtect(pa, pmap.ProtNone)
								} else {
									s.PageProtect(pa, pmap.ProtRead)
								}
							}
						}(uint64(i))
					}
					wg.Wait()
				})
				st := s.Stats()
				total := st.Enters + st.Removes + st.PageProtects
				if r := stats.PerSecond(total, elapsed); r > bestRate {
					bestRate = r
					retries = st.Backouts
				}
			}
			table.AddRow(stats.FormatFloat(1.0/float64(revDiv)), mode.String(),
				fwd, rev, retries, bestRate)
		}
	}
	res.Tables = append(res.Tables, table)
	res.Notes = append(res.Notes,
		"all three strategies finish with the pte↔pv invariant intact (the unit tests verify it); they trade costs: the system lock taxes every forward op with a global readers/writers acquisition, backout taxes reverse ops with retry storms that grow with the reverse share, and the class lock (the paper's custom 'two exclusive classes of readers') serializes the classes against each other",
	)
	return res
}

// runE9 measures TLB shootdown barrier synchronization and demonstrates
// both halves of Section 7's analysis: the cost of the barrier as the
// machine grows, and the deadlock that the pmap-spinner exemption
// prevents.
func runE9(cfg Config) *Result {
	rounds := cfg.scale(20, 150)
	res := &Result{
		ID:    "e9",
		Title: "TLB shootdown barriers and the pmap-spinner exemption",
		Claim: "all involved processors must enter the interrupt service routine before any can leave; special logic removes a processor spinning on a pmap lock with interrupts disabled from the barrier set (Section 7). Barrier synchronization at interrupt level is actively discouraged because it is a costly operation.",
	}
	table := stats.NewTable("shootdown cost vs machine size",
		"cpus", "shootdowns", "ipis", "ipis/shootdown", "median-latency")
	for _, ncpu := range []int{2, 4, 8} {
		m := hw.New(ncpu)
		s := tlbsim.New(m)
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for i := 1; i < ncpu; i++ {
			wg.Add(1)
			go func(c *hw.CPU) {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
						c.Checkpoint()
						runtime.Gosched()
					}
				}
			}(m.CPU(i))
		}
		initiator := m.CPU(0)
		latencies := make([]float64, 0, rounds)
		for r := 0; r < rounds; r++ {
			s.Fill(initiator, uint64(r), uint64(r))
			d := timeIt(func() { s.Shootdown(initiator, uint64(r)) })
			latencies = append(latencies, float64(d.Nanoseconds()))
		}
		close(stop)
		wg.Wait()
		st := s.Stats()
		table.AddRow(ncpu, st.Shootdowns, st.IPIs,
			stats.Ratio(float64(st.IPIs), float64(st.Shootdowns)),
			time.Duration(int64(median(latencies))))
	}
	res.Tables = append(res.Tables, table)

	// Exemption demonstration.
	dem := stats.NewTable("shootdown against a CPU spinning on a pmap lock with interrupts disabled",
		"exemption-logic", "outcome", "exempted", "timed-out")
	{
		m := hw.New(2)
		s := tlbsim.New(m)
		prev := s.ExemptBegin(m.CPU(1))
		ok := s.TryShootdown(m.CPU(0), 1, 200_000)
		s.ExemptEnd(m.CPU(1), prev)
		outcome := "DEADLOCK (timed out)"
		if ok {
			outcome = "completed"
		}
		st := s.Stats()
		dem.AddRow("enabled", outcome, st.Exemptions, st.TimedOut)
	}
	{
		m := hw.New(2)
		s := tlbsim.New(m)
		s.ExemptionDisabled = true
		prev := s.ExemptBegin(m.CPU(1))
		ok := s.TryShootdown(m.CPU(0), 1, 200_000)
		s.ExemptEnd(m.CPU(1), prev)
		outcome := "DEADLOCK (timed out)"
		if ok {
			outcome = "completed"
		}
		st := s.Stats()
		dem.AddRow("disabled", outcome, st.Exemptions, st.TimedOut)
	}
	res.Tables = append(res.Tables, dem)
	res.Notes = append(res.Notes,
		"the deterministic cost is the IPI column: every shootdown interrupts all n-1 other processors and holds them at the barrier — linear in machine size, the paper's reason barrier synchronization at interrupt level is actively discouraged (wall-clock latency on this SIMULATED machine also reflects host scheduling)",
		"with the exemption logic the shootdown completes against a locked-out CPU; without it the barrier deadlocks, exactly the Section 7 scenario",
	)
	return res
}

package experiments

import (
	"fmt"
	"runtime"
	"time"

	"machlock/internal/core/cxlock"
	"machlock/internal/sched"
	"machlock/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "e13",
		Title: "Reader bias removes the read-side interlock bottleneck",
		Run:   runE13,
	})
}

// runE13: contended read scaling of the complex lock with and without the
// ReaderBias option. Every unbiased read acquisition funnels through the
// lock's central interlock — one cache line all readers serialize on, the
// coarse-grained cost the paper's protocol accepts. Biased readers publish
// themselves in the per-lock visible-readers table instead, so read-only
// scaling should be flat; each writer revokes the bias, so as writers are
// mixed in the two variants converge (the adaptive cooldown keeps the lock
// in the unbiased protocol during write-heavy phases).
func runE13(cfg Config) *Result {
	opsPerReader := cfg.scale(2_000, 50_000)
	reps := cfg.scale(1, 3)

	res := &Result{
		ID:    "e13",
		Title: "Reader bias removes the read-side interlock bottleneck",
		Claim: "every complex-lock read acquisition takes the central interlock, so concurrent readers of a hot lock serialize on one cache line; a BRAVO-style visible-readers table makes read acquisition a single uncontended store until a writer revokes the bias (Sections 4, 11; Dice & Kogan)",
	}
	table := stats.NewTable("read scaling, biased vs unbiased complex lock",
		"readers", "writers", "lock", "elapsed", "reads/s", "biased-reads", "revocations", "speedup")

	maxReaders := runtime.GOMAXPROCS(0)
	if maxReaders < 8 {
		maxReaders = 8
	}
	var readerCounts []int
	for n := 1; n <= maxReaders; n *= 2 {
		readerCounts = append(readerCounts, n)
	}

	for _, nw := range []int{0, 1} {
		for _, nr := range readerCounts {
			// Oversubscribe so the readers genuinely overlap (the host may
			// have fewer cores than the sweep's widest point).
			prev := runtime.GOMAXPROCS(0)
			if prev < nr+nw {
				runtime.GOMAXPROCS(nr + nw)
			}

			var baseline float64
			for _, biased := range []bool{false, true} {
				l := cxlock.NewWith(cxlock.Options{ReaderBias: biased, Name: "e13"})
				elapsed := bestOf(reps, func() {
					stop := make(chan struct{})
					var writers []*sched.Thread
					for i := 0; i < nw; i++ {
						writers = append(writers, sched.Go("e13-w", func(self *sched.Thread) {
							for {
								select {
								case <-stop:
									return
								default:
								}
								l.Write(self)
								spinWork(200)
								l.Done(self)
								spinWork(20_000) // think: mostly-read workload
							}
						}))
					}
					var readers []*sched.Thread
					for i := 0; i < nr; i++ {
						readers = append(readers, sched.Go("e13-r", func(self *sched.Thread) {
							for n := 0; n < opsPerReader; n++ {
								l.Read(self)
								spinWork(20)
								l.Done(self)
							}
						}))
					}
					for _, r := range readers {
						r.Join()
					}
					close(stop)
					for _, w := range writers {
						w.Join()
					}
				})

				name := "mach (interlock)"
				if biased {
					name = "reader-biased"
				}
				// bestOf keeps the fastest rep; rate from that rep alone.
				rate := float64(nr) * float64(opsPerReader) / elapsed.Seconds()
				speedup := "1.00x"
				if !biased {
					baseline = rate
				} else if baseline > 0 {
					speedup = fmt.Sprintf("%.2fx", rate/baseline)
				}
				s := l.Stats()
				table.AddRow(nr, nw, name, elapsed.Round(time.Microsecond),
					fmt.Sprintf("%.0f", rate), s.BiasedReads, s.BiasRevocations, speedup)
			}
			runtime.GOMAXPROCS(prev)
		}
	}

	res.Tables = append(res.Tables, table)
	res.Notes = append(res.Notes,
		"speedup is biased over unbiased reads/s at the same reader/writer mix",
		"with 0 writers the bias is never revoked: every read is one uncontended store, and the gap versus the interlock grows with reader count (on a single-core host the scheduler serializes readers, so expect parity there)",
		"with 1 writer each write revokes the bias and drains the slot table; the adaptive cooldown (9x drain time) batches revocations so a write-heavy phase pays the scan once, which is why the biased lock degrades gracefully instead of thrashing",
		"biased-reads of the unbiased lock is 0 by construction; revocations of the 0-writer runs are 0 — both columns double as protocol sanity checks")
	return res
}

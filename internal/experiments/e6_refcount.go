package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"

	"machlock/internal/core/object"
	"machlock/internal/core/refcount"
	"machlock/internal/core/splock"
	"machlock/internal/stats"
)

func init() {
	register(Experiment{ID: "e6", Title: "Existence coordination: refcounting vs garbage collection", Run: runE6})
}

// runE6 measures the three existence-coordination schemes Section 2
// discusses. Mach chose lock-protected reference counting "in part
// because garbage collection was not viable for the C language"; Go gives
// us a production GC, so the paper's rejected alternative is directly
// runnable. A lock-free atomic count (standard practice today) completes
// the comparison.
//
// Two properties are reported: churn throughput (clone+release pairs per
// second under contention), and reclamation promptness (is the destructor
// moment known?). Refcounting destroys the object at the exact release of
// the last reference; GC reclaims at some unobservable later time.
func runE6(cfg Config) *Result {
	opsPerThread := cfg.scale(50_000, 500_000)
	res := &Result{
		ID:    "e6",
		Title: "Existence coordination: refcounting vs garbage collection",
		Claim: "reference counting maintains exact use counts under a lock; garbage collection postpones evaluation of use counts until reclamation (Section 2)",
	}
	table := stats.NewTable("reference churn (clone+release pairs)",
		"scheme", "threads", "pairs/sec", "deterministic-destruction")

	for _, threads := range []int{1, 4} {
		// Lock-protected count (the Mach design).
		{
			var lock splock.Lock
			var c refcount.Count
			c.Init(1)
			elapsed := bestOf(3, func() {
				var wg sync.WaitGroup
				for i := 0; i < threads; i++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for n := 0; n < opsPerThread; n++ {
							lock.Lock()
							c.Clone()
							lock.Unlock()
							lock.Lock()
							c.Release()
							lock.Unlock()
						}
					}()
				}
				wg.Wait()
			})
			table.AddRow("lock-protected count (Mach)", threads,
				stats.PerSecond(int64(threads*opsPerThread), elapsed), "yes")
		}
		// Atomic count.
		{
			var c refcount.Atomic
			c.Init(1)
			elapsed := bestOf(3, func() {
				var wg sync.WaitGroup
				for i := 0; i < threads; i++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for n := 0; n < opsPerThread; n++ {
							c.Clone()
							c.Release()
						}
					}()
				}
				wg.Wait()
			})
			table.AddRow("atomic count", threads,
				stats.PerSecond(int64(threads*opsPerThread), elapsed), "yes")
		}
		// GC: "pointers" are cloned by copying into a slot table and
		// released by dropping; reclamation is the collector's problem.
		{
			type node struct{ payload [4]uint64 }
			slots := make([]atomic.Pointer[node], threads)
			shared := &node{}
			elapsed := bestOf(3, func() {
				var wg sync.WaitGroup
				for i := 0; i < threads; i++ {
					wg.Add(1)
					go func(slot int) {
						defer wg.Done()
						for n := 0; n < opsPerThread; n++ {
							slots[slot].Store(shared) // clone = copy pointer
							slots[slot].Store(nil)    // release = drop pointer
						}
					}(i)
				}
				wg.Wait()
			})
			table.AddRow("garbage collection (Go GC)", threads,
				stats.PerSecond(int64(threads*opsPerThread), elapsed), "no")
		}
	}
	res.Tables = append(res.Tables, table)

	// Lifetime experiment: object churn with explicit destructors vs GC
	// finalization pressure.
	churn := cfg.scale(20_000, 200_000)
	life := stats.NewTable("object lifetime management (create→share→drop)",
		"scheme", "objects", "destroyed-at-measure-point", "elapsed")
	{
		destroyed := 0
		elapsed := timeIt(func() {
			for i := 0; i < churn; i++ {
				o := &object.Object{}
				o.Init("x")
				o.TakeRef()
				o.Release(nil)
				if o.Release(func() {}) {
					destroyed++
				}
			}
		})
		life.AddRow("refcount (explicit destroy)", churn, destroyed, elapsed)
	}
	{
		reclaimed := 0
		elapsed := timeIt(func() {
			for i := 0; i < churn; i++ {
				n := &struct{ payload [16]uint64 }{}
				_ = n
				// Dropped here; reclamation timing is unknowable
				// without forcing a collection.
			}
			runtime.GC() // the stop-and-scan the paper says kernels cannot afford
		})
		life.AddRow("gc (drop + collect)", churn, reclaimed, elapsed)
	}
	res.Tables = append(res.Tables, life)
	res.Notes = append(res.Notes,
		"refcounting destroys each object at the exact moment its count reaches zero — the property kernel resource management needs",
		"the gc row's destruction count is 0 at the measure point: reclamation is deferred until a collection, the paper's core objection",
		"the atomic-count row shows what hardware RMW refcounts buy over the 1991 lock-protected design",
	)
	return res
}

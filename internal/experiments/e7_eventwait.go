package experiments

import (
	"runtime"
	"sync"
	"time"

	"machlock/internal/sched"
	"machlock/internal/stats"
)

func init() {
	register(Experiment{ID: "e7", Title: "Split assert_wait/thread_block vs naive release-then-wait", Run: runE7})
}

// runE7 measures the race the split protocol eliminates. A consumer must
// release a lock and wait for an event; the event may occur at any point
// during the release.
//
//   - Mach protocol: assert_wait → unlock → thread_block. A wakeup landing
//     after the assert marks the thread runnable, so thread_block returns
//     without blocking. No wakeup can be lost.
//   - Naive protocol: unlock → (window) → wait. A wakeup landing in the
//     window is lost; the only recovery is a timeout that re-checks the
//     condition, so every lost wakeup costs a full timeout of latency.
//
// The driver counts lost wakeups (timeout recoveries) and total transfer
// time for the same producer/consumer workload.
func runE7(cfg Config) *Result {
	items := cfg.scale(300, 2000)
	timeout := 2 * time.Millisecond
	res := &Result{
		ID:    "e7",
		Title: "Split assert_wait/thread_block vs naive release-then-wait",
		Claim: "releasing locks to wait for an event must be atomic with respect to event occurrence; this avoids races in which the event occurs while the locks are being released, leaving the waiter blocked indefinitely (Section 6)",
	}
	table := stats.NewTable("producer/consumer handoff",
		"protocol", "items", "lost-wakeups", "short-circuit-blocks", "elapsed")

	// Mach split protocol.
	{
		var mu sync.Mutex
		ready := 0
		ev := new(int)
		var shortBlocks int64
		elapsed := timeIt(func() {
			consumer := sched.Go("consumer", func(self *sched.Thread) {
				consumed := 0
				for consumed < items {
					mu.Lock()
					for ready == 0 {
						sched.AssertWait(self, ev)
						mu.Unlock()
						// Widen the unlock→wait window identically in
						// both protocols; the split protocol remains
						// correct under ANY delay here.
						runtime.Gosched()
						sched.ThreadBlock(self)
						mu.Lock()
					}
					ready--
					consumed++
					mu.Unlock()
				}
				shortBlocks = self.ShortBlocks()
			})
			producer := sched.Go("producer", func(self *sched.Thread) {
				for i := 0; i < items; i++ {
					mu.Lock()
					ready++
					mu.Unlock()
					sched.ThreadWakeup(ev)
				}
			})
			producer.Join()
			consumer.Join()
		})
		table.AddRow("assert_wait/thread_block", items, 0, shortBlocks, elapsed)
	}

	// Naive protocol: signals via a condition flag checked before an
	// un-asserted wait; lost wakeups are recovered by timeout.
	{
		var mu sync.Mutex
		ready := 0
		signal := make(chan struct{}, 1)
		lost := 0
		elapsed := timeIt(func() {
			done := make(chan struct{})
			go func() { // consumer
				defer close(done)
				consumed := 0
				for consumed < items {
					mu.Lock()
					if ready > 0 {
						ready--
						consumed++
						mu.Unlock()
						continue
					}
					mu.Unlock()
					// The window: a wakeup arriving exactly here (after
					// the unlock, before the wait) is lost unless the
					// buffered channel happens to absorb it.
					runtime.Gosched()
					select {
					case <-signal:
					case <-time.After(timeout):
						// Timeout recovery: re-check the condition.
						mu.Lock()
						if ready > 0 {
							lost++
						}
						mu.Unlock()
					}
				}
			}()
			go func() { // producer
				for i := 0; i < items; i++ {
					mu.Lock()
					ready++
					mu.Unlock()
					select {
					case signal <- struct{}{}:
					default:
						// Consumer not listening; the wakeup is dropped —
						// exactly the race.
					}
				}
			}()
			<-done
		})
		table.AddRow("naive unlock-then-wait", items, lost, 0, elapsed)
	}
	res.Tables = append(res.Tables, table)
	res.Notes = append(res.Notes,
		"the split protocol's 'short-circuit-blocks' column counts wakeups that landed between assert and block — each would have been LOST under the naive protocol",
		"each naive lost wakeup costs a timeout of latency; with no timeout the consumer would hang forever, which is the paper's 'blocked indefinitely'",
	)
	return res
}

package experiments

import (
	"time"

	"machlock/internal/sched"
	"machlock/internal/stats"
	"machlock/internal/vm"
)

func init() {
	register(Experiment{ID: "e11", Title: "vm_map_pageable: recursive locking deadlock and the rewrite", Run: runE11})
}

// runE11 reproduces Section 7.1's verdict on recursive locking with the
// paper's own example. Both variants wire a region under memory pressure
// that only the pageout daemon can relieve:
//
//   - WireRecursive (the original design) downgrades to a recursive read
//     lock and faults with it held; a fault that waits for memory leaves
//     the outer read hold in place, the pageout daemon blocks on the write
//     lock, and the system deadlocks. The harness detects the stall and
//     resolves it with emergency memory so it can report.
//   - Wire (the rewrite) releases the map lock around the faults; the
//     daemon reclaims and the wire completes unaided.
func runE11(cfg Config) *Result {
	res := &Result{
		ID:    "e11",
		Title: "vm_map_pageable: recursive locking deadlock and the rewrite",
		Claim: "vm_map_pageable still holds a read lock [when a fault waits for memory], which can cause a deadlock if obtaining more memory requires a write lock on the same map. …To eliminate them, vm_map_pageable is being rewritten to avoid the use of recursive locks (Section 7.1)",
	}
	table := stats.NewTable("wiring 4 pages with the free pool exhausted by reclaimable pages",
		"variant", "outcome", "reclaims-during-stall", "emergency-pages", "wire-time")

	type setup struct {
		pool   *vm.PagePool
		m      *vm.Map
		pd     *vm.Pageout
		target *vm.Object
	}
	// build prepares the scenario with the pageout daemon NOT yet started:
	// starting it only after the wire operation hits the memory shortage
	// makes the interleaving deterministic (otherwise the daemon could
	// reclaim the hog's pages before the wire even takes its lock).
	build := func() setup {
		pool := vm.NewPool(4)
		m := vm.NewMap(pool)
		hog := vm.NewObject(pool, 4)
		target := vm.NewObject(pool, 4)
		boss := sched.New("boss")
		if err := m.Allocate(boss, 0, 4, hog, 0); err != nil {
			panic(err)
		}
		if err := m.Allocate(boss, 10, 4, target, 0); err != nil {
			panic(err)
		}
		for va := uint64(0); va < 4; va++ {
			if err := m.Fault(boss, va, false); err != nil {
				panic(err)
			}
		}
		pd := vm.NewPageout(pool)
		pd.AddMap(m)
		return setup{pool: pool, m: m, pd: pd, target: target}
	}
	stallWindow := time.Duration(cfg.scale(150, 400)) * time.Millisecond

	// Recursive variant.
	{
		s := build()
		done := make(chan struct{})
		var wireTime time.Duration
		start := time.Now()
		wirer := sched.Go("wirer", func(self *sched.Thread) {
			s.m.WireRecursive(self, 10, 14)
			wireTime = time.Since(start)
			close(done)
		})
		// Wait for the shortage, then release the daemon on the map.
		for s.m.ShortageWaits() == 0 {
			time.Sleep(time.Millisecond)
		}
		s.pd.Start()
		outcome := "completed unaided"
		emergency := 0
		var reclaimsDuringStall int64
		select {
		case <-done:
			reclaimsDuringStall = s.pd.Reclaims()
		case <-time.After(stallWindow):
			outcome = "DEADLOCK detected (no progress)"
			emergency = 4
			reclaimsDuringStall = s.pd.Reclaims() // sampled before the resolution
			s.pool.EmergencyAdd(4)
			<-done
		}
		wirer.Join()
		s.pd.Stop()
		table.AddRow("recursive (original)", outcome, reclaimsDuringStall, emergency, wireTime)
	}

	// Rewritten variant, identical interleaving.
	{
		s := build()
		var wireTime time.Duration
		start := time.Now()
		wirer := sched.Go("wirer", func(self *sched.Thread) {
			s.m.Wire(self, 10, 14)
			wireTime = time.Since(start)
		})
		for s.m.ShortageWaits() == 0 {
			time.Sleep(time.Millisecond)
		}
		s.pd.Start()
		wirer.Join()
		s.pd.Stop()
		table.AddRow("rewritten (no recursion)", "completed unaided", s.pd.Reclaims(), 0, wireTime)
	}
	res.Tables = append(res.Tables, table)
	res.Notes = append(res.Notes,
		"the recursive variant's daemon reclaim count stays 0 until emergency memory resolves the deadlock: the write lock it needs is blocked behind the recursive read hold",
		"'while these deadlocks are difficult to cause, they have been observed in practice' — here the workload makes the difficult case deterministic",
	)
	return res
}

package experiments

import (
	"sync/atomic"

	"machlock/internal/core/object"
	"machlock/internal/ipc"
	"machlock/internal/sched"
	"machlock/internal/stats"
)

func init() {
	register(Experiment{ID: "e10", Title: "Kernel operation reference protocol under termination races", Run: runE10})
}

// e10Obj is the kernel object the RPC flood operates on.
type e10Obj struct {
	object.Object
	value int64
}

// runE10 floods a kernel object's port with RPCs while other threads
// terminate and recreate the object behind it, exercising the full
// Section 10 sequence: translation acquires a reference, the operation
// runs under the object lock with a liveness re-check, and the reference
// is released afterwards. The safety property is implicit: any
// use-after-free panics (object.Lock on a destroyed object), so a clean
// completion plus balanced reference counts is the result.
func runE10(cfg Config) *Result {
	callsPerClient := cfg.scale(300, 3000)
	clients := 4
	res := &Result{
		ID:    "e10",
		Title: "Kernel operation reference protocol under termination races",
		Claim: "the object and its port cannot vanish during an operation due to the references acquired by translation; shutdown disables translation and the structure survives until the last reference is released (Section 10)",
	}

	const (
		opIncr = iota
		opShutdown
	)
	srv := ipc.NewServer(ipc.Mach25)
	port := ipc.NewPort("svc")
	makeObject := func() *e10Obj {
		o := &e10Obj{}
		o.Init("svc-obj")
		return o
	}
	obj := makeObject()
	obj.TakeRef()
	port.SetKObject(ipc.KindCustom, obj)

	var deactivatedOps atomic.Int64
	srv.Register(ipc.KindCustom, opIncr, func(ctx *ipc.Context, ko ipc.KObject, req *ipc.Message) *ipc.Message {
		o := ko.(*e10Obj)
		o.Lock()
		if err := o.CheckActive(); err != nil {
			o.Unlock()
			deactivatedOps.Add(1)
			return ipc.NewErrorReply(req, err)
		}
		o.value++
		o.Unlock()
		return ipc.NewReply(req, "ok")
	})
	srv.Register(ipc.KindCustom, opShutdown, func(ctx *ipc.Context, ko ipc.KObject, req *ipc.Message) *ipc.Message {
		o := ko.(*e10Obj)
		won := ipc.Shutdown(port, o, nil)
		if won {
			// Install a fresh object so the flood continues.
			next := makeObject()
			next.TakeRef()
			port.SetKObject(ipc.KindCustom, next)
		}
		return ipc.NewReply(req, won)
	})

	port.TakeRef()
	server := sched.Go("server", func(self *sched.Thread) {
		srv.Serve(self, port)
		port.Release(nil)
	})

	var completed, failed atomic.Int64
	elapsed := timeIt(func() {
		var ths []*sched.Thread
		for c := 0; c < clients; c++ {
			ths = append(ths, sched.Go("client", func(self *sched.Thread) {
				for i := 0; i < callsPerClient; i++ {
					resp, err := ipc.Call(self, port, opIncr)
					if err != nil {
						return
					}
					if resp.Err != nil {
						failed.Add(1)
					} else {
						completed.Add(1)
					}
					resp.Destroy()
				}
			}))
		}
		terminator := sched.Go("terminator", func(self *sched.Thread) {
			for i := 0; i < cfg.scale(5, 40); i++ {
				resp, err := ipc.Call(self, port, opShutdown)
				if err != nil {
					return
				}
				resp.Destroy()
				spinWork(5000)
			}
		})
		for _, th := range ths {
			th.Join()
		}
		terminator.Join()
	})
	port.Destroy()
	server.Join()

	st := srv.Stats()
	table := stats.NewTable("RPC flood racing object termination",
		"clients", "completed", "failed-deactivated", "translation-failures", "ops/sec", "use-after-free")
	table.AddRow(clients, completed.Load(), failed.Load()+deactivatedOps.Load(),
		st.Failures, stats.PerSecond(completed.Load(), elapsed), "none (checked)")
	res.Tables = append(res.Tables, table)
	res.Notes = append(res.Notes,
		"operations that lost the race with termination failed cleanly with a deactivation error — Section 9's required behaviour — rather than touching freed memory",
		"a use-after-free would panic (the object base traps locking of destroyed structures); completing the flood is the safety result",
	)
	return res
}

package experiments

import (
	"strings"
	"testing"
)

// TestAllExperimentsRunQuick executes every registered experiment in quick
// mode and sanity-checks its output shape. This doubles as an integration
// test of the whole stack: every substrate is exercised through its
// experiment driver.
func TestAllExperimentsRunQuick(t *testing.T) {
	all := All()
	if len(all) != 14 {
		t.Fatalf("registered experiments = %d, want 14", len(all))
	}
	for _, e := range all {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			res := e.Run(Config{Quick: true})
			if res.ID != e.ID {
				t.Fatalf("result id = %q", res.ID)
			}
			if len(res.Tables) == 0 {
				t.Fatal("no tables produced")
			}
			for _, tb := range res.Tables {
				if len(tb.Rows) == 0 {
					t.Fatalf("table %q has no rows", tb.Title)
				}
				for _, row := range tb.Rows {
					if len(row) != len(tb.Columns) {
						t.Fatalf("table %q row width %d != %d columns", tb.Title, len(row), len(tb.Columns))
					}
				}
			}
			var sb strings.Builder
			if _, err := res.WriteTo(&sb); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(sb.String(), res.Title) {
				t.Fatal("rendered output missing title")
			}
		})
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("e1"); !ok {
		t.Fatal("e1 not registered")
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("bogus id found")
	}
}

func TestOrdering(t *testing.T) {
	all := All()
	for i, want := range []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13"} {
		if all[i].ID != want {
			t.Fatalf("position %d = %s, want %s", i, all[i].ID, want)
		}
	}
}

package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"machlock/internal/core/splock"
	"machlock/internal/hw"
	"machlock/internal/stats"
)

func init() {
	register(Experiment{ID: "e1", Title: "Spin lock acquisition policies vs interconnect traffic", Run: runE1})
	register(Experiment{ID: "e2", Title: "Locking granularity: code locks vs data-structure locks", Run: runE2})
}

// runE1 reproduces Section 2's cache argument: under contention, spinning
// with the atomic test-and-set floods the interconnect (every attempt
// steals the cache line), TTAS spins locally in the cache, and
// TAS-then-TTAS matches TAS's single-transaction fast path when locks are
// mostly free. The write-through rows show the regime where the paper says
// TTAS must be substituted.
func runE1(cfg Config) *Result {
	iters := cfg.scale(500, 5000)
	res := &Result{
		ID:    "e1",
		Title: "Spin lock acquisition policies vs interconnect traffic",
		Claim: "TTAS avoids cache misses while spinning; TAS-then-TTAS adds a cheap fast path when most locks are acquired on the first attempt (Section 2)",
	}

	// Spin-phase traffic, driven deterministically: the lock is HELD by
	// CPU 0 while each of the other CPUs performs exactly `iters` spin
	// iterations (round-robin). This isolates the paper's claim — what a
	// waiting processor costs the interconnect — from host scheduling.
	table := stats.NewTable("interconnect traffic while spinning on a held lock (write-back caches)",
		"policy", "spinners", "spin-iterations", "bus-txns", "txns/iteration")
	for _, spinners := range []int{1, 2, 4, 8} {
		for _, policy := range []splock.Policy{splock.TAS, splock.TTAS} {
			bus := spinPhase(spinners, policy, iters, false)
			table.AddRow(policy.String(), spinners, spinners*iters, bus,
				stats.Ratio(float64(bus), float64(spinners*iters)))
		}
	}
	res.Tables = append(res.Tables, table)

	wt := stats.NewTable("same spin phase, write-through caches",
		"policy", "spinners", "spin-iterations", "bus-txns", "txns/iteration")
	for _, policy := range []splock.Policy{splock.TAS, splock.TTAS} {
		bus := spinPhase(1, policy, iters, true)
		wt.AddRow(policy.String(), 1, iters, bus,
			stats.Ratio(float64(bus), float64(iters)))
	}
	res.Tables = append(res.Tables, wt)

	// Full concurrent contention (subject to host scheduling, reported
	// for completeness): end-to-end bus transactions per acquisition.
	acquisitions := cfg.scale(200, 2000)
	conc := stats.NewTable("end-to-end contended acquisitions (concurrent, scheduling-dependent)",
		"policy", "cpus", "acquisitions", "bus-txns", "txns/acq")
	for _, policy := range []splock.Policy{splock.TAS, splock.TTAS, splock.TASTTAS} {
		bus, _ := contendSim(4, policy, acquisitions, false)
		conc.AddRow(policy.String(), 4, 4*acquisitions, bus,
			stats.Ratio(float64(bus), float64(4*acquisitions)))
	}
	res.Tables = append(res.Tables, conc)

	un := stats.NewTable("uncontended fast path (1 cpu)",
		"policy", "acquisitions", "first-try", "bus-txns")
	for _, policy := range []splock.Policy{splock.TAS, splock.TTAS, splock.TASTTAS} {
		m := hw.New(1)
		l := splock.NewSimWith(splock.Opts{Machine: m, Algorithm: policy})
		c := m.CPU(0)
		for i := 0; i < acquisitions; i++ {
			l.Lock(c)
			l.Unlock(c)
		}
		s := l.Stats()
		un.AddRow(policy.String(), s.Acquisitions, s.FirstTry, m.BusTransactions())
	}
	res.Tables = append(res.Tables, un)

	res.Notes = append(res.Notes,
		"expect ~1 txn/iteration for tas spinners (every attempt steals the line) vs ~0 for ttas (spins hit in the local cache after the first fill)",
		"expect write-through tas to pay on every attempt even alone — the paper's stated reason for substituting ttas",
	)
	return res
}

// spinPhase holds the lock on CPU 0 and drives the remaining CPUs through
// exactly iters spin iterations each, round-robin, returning the bus
// transactions the spinning generated. Deterministic: no goroutines.
func spinPhase(spinners int, policy splock.Policy, iters int, writeThrough bool) int64 {
	m := hw.NewWithConfig(hw.Config{CPUs: spinners + 1, WriteThrough: writeThrough})
	l := splock.NewSimWith(splock.Opts{Machine: m, Algorithm: policy})
	l.Lock(m.CPU(0)) //machlock:holds — the phase measures spinners against a lock held for its whole duration
	// Warm each spinner once so the first compulsory fill doesn't count
	// against the steady-state rate.
	for i := 1; i <= spinners; i++ {
		l.SpinOnce(m.CPU(i))
	}
	m.ResetBus()
	for n := 0; n < iters; n++ {
		for i := 1; i <= spinners; i++ {
			if l.SpinOnce(m.CPU(i)) {
				panic("experiments: acquired a held lock")
			}
		}
	}
	return m.BusTransactions()
}

// contendSim runs ncpu simulated CPUs each performing `acquisitions`
// lock/unlock pairs over one simulated lock, returning total bus
// transactions and spin loops.
func contendSim(ncpu int, policy splock.Policy, acquisitions int, writeThrough bool) (bus, spins int64) {
	m := hw.NewWithConfig(hw.Config{CPUs: ncpu, WriteThrough: writeThrough})
	l := splock.NewSimWith(splock.Opts{Machine: m, Algorithm: policy})
	var wg sync.WaitGroup
	for i := 0; i < ncpu; i++ {
		wg.Add(1)
		go func(c *hw.CPU) {
			defer wg.Done()
			for j := 0; j < acquisitions; j++ {
				l.Lock(c)
				spinWork(20) // short critical section
				l.Unlock(c)
			}
		}(m.CPU(i))
	}
	wg.Wait()
	return m.BusTransactions(), l.Stats().SpinLoops
}

// runE2 reproduces the granularity argument of Sections 2 and 5: locking
// code (one lock over everything) restricts the kernel to one processor at
// a time; associating locks with data structures lets the same code run in
// parallel against different structures. The workload increments slots of
// a shared table under three granularities.
func runE2(cfg Config) *Result {
	const slots = 64
	opsPerThread := cfg.scale(5_000, 50_000)
	res := &Result{
		ID:    "e2",
		Title: "Locking granularity: code locks vs data-structure locks",
		Claim: "coarse locking structures exhibit performance bottlenecks; the alternative is to associate locks with data structures, which allows code to execute in parallel with itself (Section 2)",
	}
	table := stats.NewTable("contention and throughput by granularity",
		"granularity", "locks", "threads", "ops/sec", "wait-share", "speedup-vs-global")

	type strategy struct {
		name  string
		locks int
	}
	strategies := []strategy{
		{"global (code lock)", 1},
		{"per-subsystem", 8},
		{"per-object", slots},
	}
	// Contenders must genuinely interleave to show the bottleneck.
	prev := runtime.GOMAXPROCS(0)
	if prev < 4 {
		runtime.GOMAXPROCS(4)
		defer runtime.GOMAXPROCS(prev)
	}
	// Best-of-3 runs per cell: single-shot wall times on a small host are
	// dominated by scheduling accidents. The contention rate is the
	// structural metric: how often an acquisition found the lock held.
	measure := func(locks, threads int) (rate, waitShare float64) {
		for rep := 0; rep < 3; rep++ {
			elapsed, ws := runGranularity(locks, slots, threads, opsPerThread)
			if r := stats.PerSecond(int64(threads*opsPerThread), elapsed); r > rate {
				rate = r
				waitShare = ws
			}
		}
		return rate, waitShare
	}
	baseline := map[int]float64{}
	for _, s := range strategies {
		for _, threads := range []int{1, 2, 4} {
			rate, waitShare := measure(s.locks, threads)
			if s.locks == 1 {
				baseline[threads] = rate
			}
			table.AddRow(s.name, s.locks, threads, rate, waitShare,
				stats.Ratio(rate, baseline[threads]))
		}
	}
	res.Tables = append(res.Tables, table)
	res.Notes = append(res.Notes,
		"wait-share is the bottleneck made visible: the fraction of total thread-time spent waiting for a lock; with one code lock it explodes as threads multiply, while per-object locks stay near zero because different objects never conflict",
		"wall-clock speedup is bounded by host cores; at thread counts beyond the physical cores the wait times also absorb scheduler queuing, inflating every row — compare wait-shares at the 2-thread row for the clean signal",
	)
	return res
}

// runGranularity returns the elapsed time and the observed wait share: the
// fraction of total thread-time spent waiting for locks.
func runGranularity(nlocks, slots, threads, opsPerThread int) (time.Duration, float64) {
	locks := make([]*splock.StatLock, nlocks)
	for i := range locks {
		locks[i] = splock.NewStat(fmt.Sprintf("bank-%d", i))
	}
	counters := make([]struct {
		v   uint64
		pad [7]uint64 // avoid false sharing between slots
	}, slots)
	var wg sync.WaitGroup
	start := time.Now()
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := newXorshift(seed + 1)
			for i := 0; i < opsPerThread; i++ {
				slot := int(rng.next() % uint64(slots))
				lock := locks[slot*nlocks/slots]
				lock.Lock()
				counters[slot].v++
				spinWork(200) // the critical section dominates the loop
				lock.Unlock()
			}
		}(uint64(t))
	}
	wg.Wait()
	elapsed := time.Since(start)
	var waitNs float64
	for _, l := range locks {
		r := l.Report()
		waitNs += r.MeanWaitNs * float64(r.Contended)
	}
	return elapsed, stats.Ratio(waitNs, float64(elapsed.Nanoseconds())*float64(threads))
}

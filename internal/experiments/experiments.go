// Package experiments implements the machlock evaluation harness: one
// driver per experiment in DESIGN.md's experiment index (E1–E13), each
// reproducing a claim from "Locking and Reference Counting in the Mach
// Kernel". The same drivers back the root-level testing.B benchmarks and
// the cmd/machbench binary, so EXPERIMENTS.md rows can be regenerated with
// either.
//
// The paper is an experience paper with no numbered tables or figures; the
// experiment index maps each of its qualitative claims to a measurable
// workload. Every driver returns plain-text tables plus prose notes
// stating what the paper predicts and what to look for in the numbers.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"machlock/internal/stats"
)

// Config scales an experiment run.
type Config struct {
	// Quick trims iteration counts for use under `go test`; the full
	// runs behind EXPERIMENTS.md come from cmd/machbench.
	Quick bool
}

// scale returns quick when cfg.Quick, else full.
func (c Config) scale(quick, full int) int {
	if c.Quick {
		return quick
	}
	return full
}

// Result is one experiment's output.
type Result struct {
	ID     string
	Title  string
	Claim  string // the paper's claim under test
	Tables []*stats.Table
	Notes  []string
}

// WriteTo renders the result as text.
func (r *Result) WriteTo(w io.Writer) (int64, error) {
	var n int64
	write := func(format string, args ...any) error {
		k, err := fmt.Fprintf(w, format, args...)
		n += int64(k)
		return err
	}
	if err := write("== %s: %s ==\n", r.ID, r.Title); err != nil {
		return n, err
	}
	if err := write("claim: %s\n\n", r.Claim); err != nil {
		return n, err
	}
	for _, t := range r.Tables {
		k, err := t.WriteTo(w)
		n += k
		if err != nil {
			return n, err
		}
		if err := write("\n"); err != nil {
			return n, err
		}
	}
	for _, note := range r.Notes {
		if err := write("note: %s\n", note); err != nil {
			return n, err
		}
	}
	return n, write("\n")
}

// Experiment is a registered driver.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg Config) *Result
}

// registry of all experiments, keyed by lowercase id.
var registry = map[string]Experiment{}

func register(e Experiment) {
	registry[e.ID] = e
}

// Lookup returns the experiment with the given id (e.g. "e1").
func Lookup(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// All returns every experiment in id order.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		// e1 < e2 < … < e10 < e11 < e12: compare by numeric suffix.
		return num(out[i].ID) < num(out[j].ID)
	})
	return out
}

func num(id string) int {
	n := 0
	for _, r := range id {
		if r >= '0' && r <= '9' {
			n = n*10 + int(r-'0')
		}
	}
	return n
}

// timeIt runs fn and returns its wall-clock duration.
func timeIt(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}

// xorshift is a tiny deterministic PRNG for workload generation; the
// experiments must not depend on math/rand's global state or on
// time-seeded randomness (reproducibility).
type xorshift uint64

func newXorshift(seed uint64) xorshift {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return xorshift(seed)
}

func (x *xorshift) next() uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift(v)
	return v
}

// median returns the median of a non-empty sample.
func median(xs []float64) float64 {
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return s[len(s)/2]
}

// bestOf runs fn reps times and returns the shortest elapsed time — the
// standard defense against one-shot wall-clock noise on a shared host.
func bestOf(reps int, fn func()) time.Duration {
	best := timeIt(fn)
	for i := 1; i < reps; i++ {
		if d := timeIt(fn); d < best {
			best = d
		}
	}
	return best
}

// spinWork burns roughly n units of CPU as a critical-section body.
func spinWork(n int) uint64 {
	var acc uint64 = 1
	for i := 0; i < n; i++ {
		acc = acc*6364136223846793005 + 1442695040888963407
	}
	return acc
}

package experiments

import (
	"sync"
	"time"

	"machlock/internal/core/splock"
	"machlock/internal/stats"
	"machlock/internal/timer"
)

func init() {
	register(Experiment{ID: "e12", Title: "Uniprocessor compile-out and the non-locking timer", Run: runE12})
}

// runE12 quantifies the two "locks you don't pay for" designs:
//
//   - decl_simple_lock_data exists so simple locks can be DEFINED OUT of
//     uniprocessor kernels; the Noop lock is that compile-out, and the
//     delta against the real lock is the tax every uniprocessor would
//     otherwise pay on every acquisition.
//   - The usage-timing subsystem reads per-processor timers WITHOUT
//     multiprocessor locks (Section 2's one exception), trading a lock for
//     a consistency-check retry loop whose retry rate is tiny.
func runE12(cfg Config) *Result {
	iters := cfg.scale(1_000_000, 10_000_000)
	res := &Result{
		ID:    "e12",
		Title: "Uniprocessor compile-out and the non-locking timer",
		Claim: "a macro is used instead of a C type to allow simple locks to be defined out of uniprocessor kernels (Appendix A); access to timer data structures uses no multiprocessor locks (Section 2)",
	}

	lockTab := stats.NewTable("uncontended lock/unlock cost",
		"variant", "ops", "ns/op")
	{
		var l splock.Lock
		elapsed := timeIt(func() {
			for i := 0; i < iters; i++ {
				l.Lock()
				l.Unlock()
			}
		})
		lockTab.AddRow("simple lock (MP kernel)", iters, float64(elapsed.Nanoseconds())/float64(iters))
	}
	{
		var n splock.Noop
		elapsed := timeIt(func() {
			for i := 0; i < iters; i++ {
				n.Lock()
				n.Unlock()
			}
		})
		lockTab.AddRow("compiled-out (UP kernel)", iters, float64(elapsed.Nanoseconds())/float64(iters))
	}
	{
		var m splock.Mutex = &splock.Lock{}
		elapsed := timeIt(func() {
			for i := 0; i < iters; i++ {
				m.Lock()
				m.Unlock()
			}
		})
		lockTab.AddRow("simple lock via interface", iters, float64(elapsed.Nanoseconds())/float64(iters))
	}
	res.Tables = append(res.Tables, lockTab)

	// Timer: one owner updating through rollovers, concurrent readers.
	timerTab := stats.NewTable("non-locking timer reads under concurrent update",
		"readers", "reads", "retries", "retry-rate", "reads/sec")
	for _, readers := range []int{1, 4} {
		var tm timer.Timer
		tm.Set(timer.LowMax - 1000)
		readsPerReader := cfg.scale(100_000, 1_000_000)
		var totalRetries int64
		var mu sync.Mutex
		stop := make(chan struct{})
		writerDone := make(chan struct{})
		go func() {
			defer close(writerDone)
			for {
				select {
				case <-stop:
					return
				default:
					tm.Add(700) // rolls over frequently
				}
			}
		}()
		var elapsed time.Duration
		elapsed = timeIt(func() {
			var wg sync.WaitGroup
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					var retries int64
					for i := 0; i < readsPerReader; i++ {
						_, r := tm.Read()
						retries += int64(r)
					}
					mu.Lock()
					totalRetries += retries
					mu.Unlock()
				}()
			}
			wg.Wait()
		})
		close(stop)
		<-writerDone
		reads := int64(readers * readsPerReader)
		timerTab.AddRow(readers, reads, totalRetries,
			stats.Ratio(float64(totalRetries), float64(reads)),
			stats.PerSecond(reads, elapsed))
	}
	res.Tables = append(res.Tables, timerTab)
	res.Notes = append(res.Notes,
		"the simple-lock vs compiled-out delta is what the declaration macro saves uniprocessor kernels on every critical section",
		"timer retry rates stay far below 1 even with the writer rolling over constantly: the per-processor-cell technique costs almost nothing where it applies",
	)
	return res
}

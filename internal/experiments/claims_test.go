package experiments

import (
	"strconv"
	"sync/atomic"
	"testing"

	"machlock/internal/core/cxlock"
	"machlock/internal/core/splock"
	"machlock/internal/sched"
)

// These tests turn EXPERIMENTS.md's qualitative verdicts into assertions:
// each checks the SHAPE of a result (who wins, what is zero, what
// explodes) using the deterministic metrics the drivers report, so a
// regression in any protocol fails CI rather than silently skewing the
// tables.

// E1: TTAS spinners generate (almost) no interconnect traffic; TAS
// spinners pay roughly one transaction per attempt; with write-through
// caches even a lone TAS spinner pays every time.
func TestClaimE1SpinTraffic(t *testing.T) {
	const iters = 1000
	tas := spinPhase(2, splock.TAS, iters, false)
	ttas := spinPhase(2, splock.TTAS, iters, false)
	if ttas > 4 {
		t.Fatalf("ttas spin traffic = %d, want ~0", ttas)
	}
	if tas < int64(2*iters)-4 {
		t.Fatalf("tas spin traffic = %d, want ~%d", tas, 2*iters)
	}
	wtTas := spinPhase(1, splock.TAS, iters, true)
	if wtTas < iters {
		t.Fatalf("write-through tas = %d, want >= %d", wtTas, iters)
	}
}

// E3: orders of magnitude fewer readers are admitted past a waiting
// writer with the Mach lock than with the reader-preference baseline.
// The absolute count is instrumentation residue (the window between the
// writer announcing itself and the lock registering its request is
// unbounded under preemption), so the SHAPE assertion is the ratio
// measured by the driver itself under identical instrumentation.
func TestClaimE3WriterPriority(t *testing.T) {
	res := runE3(Config{Quick: true})
	rows := res.Tables[0].Rows
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	mach, err1 := strconv.ParseInt(rows[0][3], 10, 64)
	base, err2 := strconv.ParseInt(rows[1][3], 10, 64)
	if err1 != nil || err2 != nil {
		t.Fatalf("unparsable admissions: %q %q", rows[0][3], rows[1][3])
	}
	if base < 1000 {
		t.Skipf("reader flood too thin this run (baseline admitted %d); shape not testable", base)
	}
	if mach*20 > base {
		t.Fatalf("mach admitted %d vs baseline %d: expected >= 20x separation", mach, base)
	}
}

// E4: the upgrade protocol restarts under contention; write+downgrade
// never does (structurally cannot).
func TestClaimE4UpgradeRestarts(t *testing.T) {
	l := cxlock.NewWith(cxlock.Options{Sleep: true})
	var restarts atomic.Int64
	var ths []*sched.Thread
	for i := 0; i < 4; i++ {
		ths = append(ths, sched.Go("u", func(self *sched.Thread) {
			for n := 0; n < 3000; n++ {
				for {
					l.Read(self)
					if failed := l.ReadToWrite(self); failed {
						restarts.Add(1)
						continue
					}
					l.Done(self)
					break
				}
			}
		}))
	}
	for _, th := range ths {
		th.Join()
	}
	if restarts.Load() == 0 {
		t.Skip("no upgrade contention materialized on this run (2-core scheduling); shape not testable")
	}
	if l.Stats().FailedUpgrades != restarts.Load() {
		t.Fatalf("failed upgrades %d != restarts %d", l.Stats().FailedUpgrades, restarts.Load())
	}
}

// E11: the recursive wire deadlocks under memory pressure (no progress
// within the window) and the rewritten wire completes unaided — asserted
// through the driver itself.
func TestClaimE11DeadlockShape(t *testing.T) {
	res := runE11(Config{Quick: true})
	table := res.Tables[0]
	if len(table.Rows) != 2 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	recursive, rewritten := table.Rows[0], table.Rows[1]
	if recursive[1] != "DEADLOCK detected (no progress)" {
		t.Fatalf("recursive outcome = %q", recursive[1])
	}
	if recursive[2] != "0" {
		t.Fatalf("recursive reclaims-during-stall = %q, want 0", recursive[2])
	}
	if rewritten[1] != "completed unaided" {
		t.Fatalf("rewritten outcome = %q", rewritten[1])
	}
	if rewritten[3] != "0" {
		t.Fatalf("rewritten emergency pages = %q, want 0", rewritten[3])
	}
}

// E9: with exemption the shootdown completes; without it, it times out —
// asserted through the driver's demonstration table.
func TestClaimE9ExemptionShape(t *testing.T) {
	res := runE9(Config{Quick: true})
	dem := res.Tables[1]
	if dem.Rows[0][1] != "completed" {
		t.Fatalf("with exemption: %q", dem.Rows[0][1])
	}
	if dem.Rows[1][1] != "DEADLOCK (timed out)" {
		t.Fatalf("without exemption: %q", dem.Rows[1][1])
	}
}

// E12: the compiled-out lock is at least an order of magnitude cheaper
// than the real one.
func TestClaimE12CompileOut(t *testing.T) {
	const iters = 2_000_000
	var real splock.Lock
	realTime := timeIt(func() {
		for i := 0; i < iters; i++ {
			real.Lock()
			real.Unlock()
		}
	})
	var noop splock.Noop
	noopTime := timeIt(func() {
		for i := 0; i < iters; i++ {
			noop.Lock()
			noop.Unlock()
		}
	})
	if noopTime*5 > realTime {
		t.Fatalf("compile-out advantage too small: real %v vs noop %v", realTime, noopTime)
	}
}

// E14: the arsenal's shape claims, on the deterministic handoff chain
// (no goroutines, so these are exact integers, not statistics):
//
//   - queue and adaptive handoff traffic stays constant as spinners are
//     added, while the TTAS release stampede grows with the spinner
//     count — so at 16 CPUs the queue lock beats TTAS outright;
//   - adaptive waiters actually park, and parked waiters cost nothing
//     extra (its traffic matches the queue's, one wakeup IPI aside);
//   - the cohort lock drags the protected data across cells a fraction
//     as often as FIFO order does (the handoff budget batches a cell's
//     holders together).
func TestClaimE14ArsenalShootout(t *testing.T) {
	const ncpu, cells, rounds = 16, 2, 200
	ttasBus, ttasCross, _ := arsenalHandoffPhase(ncpu, cells, splock.TTAS, rounds)
	queueBus, queueCross, _ := arsenalHandoffPhase(ncpu, cells, splock.Queue, rounds)
	cohortBus, cohortCross, _ := arsenalHandoffPhase(ncpu, cells, splock.Cohort, rounds)
	adaptBus, _, adaptParks := arsenalHandoffPhase(ncpu, cells, splock.Adaptive, rounds)

	if queueBus*2 >= ttasBus {
		t.Fatalf("queue should beat ttas by >2x at %d cpus: queue %d vs ttas %d txns", ncpu, queueBus, ttasBus)
	}
	if adaptBus*2 >= ttasBus {
		t.Fatalf("adaptive should beat ttas by >2x at %d cpus: adaptive %d vs ttas %d txns", ncpu, adaptBus, ttasBus)
	}
	if adaptParks == 0 {
		t.Fatal("adaptive shootout run never parked a waiter")
	}
	if cohortBus >= ttasBus {
		t.Fatalf("cohort should beat ttas at %d cpus: cohort %d vs ttas %d txns", ncpu, cohortBus, ttasBus)
	}
	if cohortCross*2 >= queueCross {
		t.Fatalf("cohort should halve cross-cell transfers vs queue: cohort %d vs queue %d", cohortCross, queueCross)
	}
	if cohortCross*2 >= ttasCross {
		t.Fatalf("cohort should halve cross-cell transfers vs ttas: cohort %d vs ttas %d", cohortCross, ttasCross)
	}

	// The growth shape itself: queue traffic must stay ~flat from 4 to 16
	// CPUs while ttas grows.
	q4, _, _ := arsenalHandoffPhase(4, cells, splock.Queue, rounds)
	t4, _, _ := arsenalHandoffPhase(4, cells, splock.TTAS, rounds)
	if queueBus > q4+q4/4 {
		t.Fatalf("queue handoff traffic grew with spinners: %d at 4 cpus vs %d at 16", q4, queueBus)
	}
	if ttasBus <= t4 {
		t.Fatalf("ttas handoff traffic did not grow with spinners: %d at 4 cpus vs %d at 16", t4, ttasBus)
	}
}

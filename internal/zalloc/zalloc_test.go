package zalloc

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"machlock/internal/core/cxlock"
	"machlock/internal/sched"
)

type element struct{ id int }

func TestTryAllocToCapacity(t *testing.T) {
	z := NewZone[element]("el", 3, nil)
	var got []*element
	for i := 0; i < 3; i++ {
		el, err := z.TryAlloc()
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, el)
	}
	if _, err := z.TryAlloc(); !errors.Is(err, ErrZoneExhausted) {
		t.Fatalf("over-capacity alloc = %v", err)
	}
	s := z.Stats()
	if s.InUse != 3 || s.Made != 3 || s.Allocs != 3 {
		t.Fatalf("stats = %+v", s)
	}
	z.Free(got[0])
	if el, err := z.TryAlloc(); err != nil || el != got[0] {
		t.Fatalf("recycle: %v %v (LIFO expected)", el, err)
	}
}

func TestCustomConstructor(t *testing.T) {
	n := 0
	z := NewZone("el", 2, func() *element {
		n++
		return &element{id: n}
	})
	a, _ := z.TryAlloc()
	b, _ := z.TryAlloc()
	if a.id != 1 || b.id != 2 {
		t.Fatalf("ids = %d, %d", a.id, b.id)
	}
}

func TestAllocBlocksUntilFree(t *testing.T) {
	z := NewZone[element]("el", 1, nil)
	held, _ := z.TryAlloc()

	got := make(chan *element, 1)
	waiter := sched.Go("alloc", func(self *sched.Thread) {
		got <- z.Alloc(self)
	})
	deadline := time.Now().Add(2 * time.Second)
	for waiter.Blocks() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("allocator never blocked on exhausted zone")
		}
		time.Sleep(time.Millisecond)
	}
	z.Free(held)
	waiter.Join()
	if el := <-got; el != held {
		t.Fatalf("woken allocator got %v", el)
	}
	if z.Stats().Blocked != 1 {
		t.Fatalf("blocked count = %d", z.Stats().Blocked)
	}
}

func TestDoubleFreePanics(t *testing.T) {
	z := NewZone[element]("el", 2, nil)
	el, _ := z.TryAlloc()
	z.Free(el)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	z.Free(el)
}

func TestFreeNilPanics(t *testing.T) {
	z := NewZone[element]("el", 1, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("nil free did not panic")
		}
	}()
	z.Free(nil)
}

func TestZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewZone[element]("el", 0, nil)
}

// TestAllocUnderSleepLockIsLegal exercises the paper's exact pattern: a
// blocking allocation while holding a SLEEPABLE complex lock is fine; the
// same allocation under a checked simple lock would panic in ThreadBlock.
func TestAllocUnderSleepLockIsLegal(t *testing.T) {
	z := NewZone[element]("el", 1, nil)
	held, _ := z.TryAlloc()
	l := cxlock.New(true)

	done := make(chan struct{})
	holder := sched.Go("holder", func(self *sched.Thread) {
		l.Write(self) // sleep lock held across the blocking alloc
		el := z.Alloc(self)
		z.Free(el)
		l.Done(self)
		close(done)
	})
	deadline := time.Now().Add(2 * time.Second)
	for holder.Blocks() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("holder never blocked in alloc")
		}
		time.Sleep(time.Millisecond)
	}
	z.Free(held)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("alloc under sleep lock hung")
	}
}

func TestConcurrentChurn(t *testing.T) {
	z := NewZone[element]("el", 4, nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			self := sched.New("w")
			for j := 0; j < 500; j++ {
				el := z.Alloc(self)
				z.Free(el)
			}
		}()
	}
	wg.Wait()
	s := z.Stats()
	if s.InUse != 0 {
		t.Fatalf("in use after churn = %d", s.InUse)
	}
	if s.Allocs != 8*500 || s.Frees != 8*500 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Made > 4 {
		t.Fatalf("zone overgrew capacity: made %d", s.Made)
	}
}

// Property: for any interleaving of try-allocs and frees, in-use never
// exceeds capacity and equals allocs-frees.
func TestAccountingQuick(t *testing.T) {
	f := func(ops []bool) bool {
		z := NewZone[element]("el", 4, nil)
		var held []*element
		for _, alloc := range ops {
			if alloc {
				el, err := z.TryAlloc()
				if err == nil {
					held = append(held, el)
				} else if len(held) < 4 {
					return false // refused below capacity
				}
			} else if len(held) > 0 {
				z.Free(held[len(held)-1])
				held = held[:len(held)-1]
			}
		}
		s := z.Stats()
		return s.InUse == len(held) && s.InUse <= 4 &&
			int64(s.InUse) == s.Allocs-s.Frees
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Package zalloc implements a Mach-style zone allocator: fixed-size object
// zones protected by simple locks, with allocation optionally blocking
// until an element is freed. It is the substrate behind two of the paper's
// running examples:
//
//   - "memory allocation (blocks if memory is not available)" is the
//     paper's first example of an operation requiring the Sleep option —
//     any lock held across zalloc.Alloc must be a sleep lock, and the
//     checked simple locks enforce exactly that;
//   - port allocation "may block", which is why the memory object's
//     pager-port creation needs its customized flag lock (Section 5).
//
// Zones follow the kernel discipline: a simple lock protects the free
// list; a blocked allocator releases the lock with assert_wait/
// thread_block and retries; Free wakes waiters.
package zalloc

import (
	"errors"
	"sync/atomic"

	"machlock/internal/core/splock"
	"machlock/internal/sched"
	"machlock/internal/trace"
)

// ErrZoneExhausted is returned by TryAlloc when the zone is empty.
var ErrZoneExhausted = errors.New("zalloc: zone exhausted")

// Zone is a fixed-capacity allocator for elements of one type. New
// elements are produced by the constructor up to the capacity; freed
// elements are recycled LIFO (cache-warm first), as zone allocators do.
type Zone[T any] struct {
	name  string
	lock  splock.Lock
	class *trace.Class

	free     []*T
	made     int
	capacity int
	waiting  bool

	allocs    atomic.Int64
	frees     atomic.Int64
	blocked   atomic.Int64
	construct func() *T
}

// Option configures a zone beyond the required name/capacity/constructor.
type Option func(*zoneConfig)

type zoneConfig struct {
	algorithm splock.Policy
}

// WithLockAlgorithm selects the zone lock's acquisition algorithm (the
// splock arsenal). The default is the paper's TAS/TTAS hybrid; a central
// zone fed by many processors (the kernel's object zones) is the textbook
// queue-lock customer.
func WithLockAlgorithm(p splock.Policy) Option {
	return func(c *zoneConfig) { c.algorithm = p }
}

// NewZone creates a zone holding at most capacity elements, constructed on
// demand by construct (nil means new(T)).
func NewZone[T any](name string, capacity int, construct func() *T, opts ...Option) *Zone[T] {
	if capacity < 1 {
		panic("zalloc: zone capacity must be positive")
	}
	if construct == nil {
		construct = func() *T { return new(T) }
	}
	var cfg zoneConfig
	for _, o := range opts {
		o(&cfg)
	}
	z := &Zone[T]{name: name, capacity: capacity, construct: construct}
	// One class per zone name: zones of the same name (across restarts or
	// generic instantiations) share a profile entry, as kernel zones do.
	z.class = trace.NewClass("zalloc", "zone."+name, trace.KindSpin)
	z.lock.InitWith(splock.Opts{
		Algorithm: cfg.algorithm,
		Class:     z.class,
		Name:      "zone." + name,
	})
	return z
}

// Name returns the zone's name.
func (z *Zone[T]) Name() string { return z.name }

// TryAlloc grabs an element without blocking, failing when the zone is at
// capacity with nothing free.
func (z *Zone[T]) TryAlloc() (*T, error) {
	z.lock.Lock()
	el, ok := z.grabLocked()
	z.lock.Unlock()
	if !ok {
		return nil, ErrZoneExhausted
	}
	z.allocs.Add(1)
	return el, nil
}

// Alloc grabs an element, blocking t until one is available — the
// paper's canonical blocking operation. The caller must not hold any
// simple lock (sched enforces this for checked locks); a sleepable
// complex lock may be held.
func (z *Zone[T]) Alloc(t *sched.Thread) *T {
	for {
		z.lock.Lock()
		if el, ok := z.grabLocked(); ok {
			z.lock.Unlock()
			z.allocs.Add(1)
			return el
		}
		// Empty: wait for a Free, releasing the zone lock atomically
		// with respect to the wakeup.
		z.waiting = true
		z.blocked.Add(1)
		sched.AssertWait(t, sched.Event(z))
		z.lock.Unlock()
		sched.ThreadBlock(t)
	}
}

// grabLocked takes from the free list or constructs below capacity; zone
// lock held.
func (z *Zone[T]) grabLocked() (*T, bool) {
	if n := len(z.free); n > 0 {
		el := z.free[n-1]
		z.free = z.free[:n-1]
		return el, true
	}
	if z.made < z.capacity {
		z.made++
		// Census: zone elements are constructed once and recycled forever
		// (kernel zones never shrink), so construction is the lifetime
		// event — cheap enough to count unconditionally, unlike the
		// per-operation alloc/free traffic.
		z.class.CensusInc()
		return z.construct(), true
	}
	return nil, false
}

// Free returns an element to the zone, waking blocked allocators.
// Returning more elements than were allocated panics (a double free).
func (z *Zone[T]) Free(el *T) {
	if el == nil {
		panic("zalloc: freeing nil element")
	}
	z.lock.Lock()
	if len(z.free) >= z.made {
		z.lock.Unlock()
		panic("zalloc: double free (free list exceeds allocations)")
	}
	z.free = append(z.free, el)
	wake := z.waiting
	z.waiting = false
	z.lock.Unlock()
	z.frees.Add(1)
	if wake {
		sched.ThreadWakeup(sched.Event(z))
	}
}

// Stats is a snapshot of zone accounting.
type Stats struct {
	Allocs  int64
	Frees   int64
	Blocked int64 // allocations that had to wait
	InUse   int
	Made    int
}

// Stats returns the zone's accounting.
func (z *Zone[T]) Stats() Stats {
	z.lock.Lock()
	inUse := z.made - len(z.free)
	made := z.made
	z.lock.Unlock()
	return Stats{
		Allocs:  z.allocs.Load(),
		Frees:   z.frees.Load(),
		Blocked: z.blocked.Load(),
		InUse:   inUse,
		Made:    made,
	}
}

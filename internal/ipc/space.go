package ipc

import (
	"errors"

	"machlock/internal/core/cxlock"
	"machlock/internal/core/splock"
	"machlock/internal/sched"
	"machlock/internal/trace"
)

// classSpace aggregates the name-space translation locks of every task.
var classSpace = trace.NewClass("ipc", "ipc.space", trace.KindComplex)

// Name is a task-local port name (a small integer in user space).
type Name uint32

// ErrBadName is returned when a name has no entry in the space.
var ErrBadName = errors.New("ipc: no such port name")

// Space is a per-task port name space: the translation table from names to
// ports. Each entry holds a counted reference to its port; Translate clones
// that reference for the caller — "Executing code performs a name to object
// translation. This effectively clones the object reference held by the
// name translation data structures." (Section 8.)
//
// The space corresponds to the task's second lock, the one that "allows
// task operations and ipc translations to occur in parallel" (Section 5).
// Translation is overwhelmingly the hot operation and mutates nothing in
// the table, so the space uses a reader-biased complex lock: concurrent
// translators publish themselves in the lock's visible-readers table and
// run fully in parallel, while the rare Insert/Remove revokes the bias and
// takes the lock for writing. Callers pass their thread identity so the
// bias fast path can attribute slots; nil is accepted and simply takes the
// interlocked slow path.
type Space struct {
	lock  cxlock.Lock
	table map[Name]*Port
	next  Name
}

// NewSpace creates an empty name space.
func NewSpace() *Space {
	s := &Space{table: make(map[Name]*Port), next: 1}
	s.lock.InitWith(cxlock.Options{
		ReaderBias: true, // translations dominate; see type comment
		Name:       "ipc.space",
		Class:      classSpace,
		// The interlock is what a bias revocation drain serializes on
		// (one writer, every slow-path reader); the queue algorithm keeps
		// that drain FIFO instead of a TTAS scramble.
		Interlock: splock.Queue,
	})
	return s
}

// Insert registers a port under a fresh name, cloning a reference into the
// table. The caller keeps its own reference.
func (s *Space) Insert(t *sched.Thread, p *Port) Name {
	p.TakeRef()
	s.lock.Write(t)
	n := s.next
	s.next++
	s.table[n] = p
	s.lock.Done(t)
	return n
}

// Translate resolves a name to its port, cloning a reference for the
// caller. The table's own reference (held continuously under the space
// lock) guarantees the port cannot vanish mid-clone; a read hold pins the
// table, so translators proceed in parallel.
func (s *Space) Translate(t *sched.Thread, n Name) (*Port, error) {
	s.lock.Read(t)
	p, ok := s.table[n]
	if !ok {
		s.lock.Done(t)
		return nil, ErrBadName
	}
	// Clone while the space lock pins the table's reference. TakeRef is
	// the port object's own (interlocked) protocol, safe under a shared
	// hold.
	p.TakeRef()
	s.lock.Done(t)
	return p, nil
}

// Remove deletes a name, releasing the table's reference to the port.
func (s *Space) Remove(t *sched.Thread, n Name) error {
	s.lock.Write(t)
	p, ok := s.table[n]
	if !ok {
		s.lock.Done(t)
		return ErrBadName
	}
	delete(s.table, n)
	s.lock.Done(t)
	p.Release(nil)
	return nil
}

// Len returns the number of live names.
func (s *Space) Len(t *sched.Thread) int {
	s.lock.Read(t)
	defer s.lock.Done(t)
	return len(s.table)
}

// DestroyAll removes every name, releasing all table references; used by
// task termination.
func (s *Space) DestroyAll(t *sched.Thread) {
	s.lock.Write(t)
	ports := make([]*Port, 0, len(s.table))
	for n, p := range s.table {
		ports = append(ports, p)
		delete(s.table, n)
	}
	s.lock.Done(t)
	for _, p := range ports {
		p.Release(nil)
	}
}

// Stats exposes the space lock's accounting (biased reads, revocations)
// for tools and tests.
func (s *Space) Stats() cxlock.Stats { return s.lock.Stats() }

package ipc

import (
	"errors"

	"machlock/internal/core/splock"
	"machlock/internal/trace"
)

// classSpace aggregates the name-space translation locks of every task.
var classSpace = trace.NewClass("ipc", "ipc.space", trace.KindSpin)

// Name is a task-local port name (a small integer in user space).
type Name uint32

// ErrBadName is returned when a name has no entry in the space.
var ErrBadName = errors.New("ipc: no such port name")

// Space is a per-task port name space: the translation table from names to
// ports. Each entry holds a counted reference to its port; Translate clones
// that reference for the caller — "Executing code performs a name to object
// translation. This effectively clones the object reference held by the
// name translation data structures." (Section 8.)
//
// The space has its own simple lock. In the task it corresponds to the
// second task lock, the one that "allows task operations and ipc
// translations to occur in parallel" (Section 5).
type Space struct {
	lock  splock.Lock
	table map[Name]*Port
	next  Name
}

// NewSpace creates an empty name space.
func NewSpace() *Space {
	s := &Space{table: make(map[Name]*Port), next: 1}
	s.lock.SetClass(classSpace)
	return s
}

// Insert registers a port under a fresh name, cloning a reference into the
// table. The caller keeps its own reference.
func (s *Space) Insert(p *Port) Name {
	p.TakeRef()
	s.lock.Lock()
	n := s.next
	s.next++
	s.table[n] = p
	s.lock.Unlock()
	return n
}

// Translate resolves a name to its port, cloning a reference for the
// caller. The table's own reference (held continuously under the space
// lock) guarantees the port cannot vanish mid-clone.
func (s *Space) Translate(n Name) (*Port, error) {
	s.lock.Lock()
	p, ok := s.table[n]
	if !ok {
		s.lock.Unlock()
		return nil, ErrBadName
	}
	// Clone while the space lock pins the table's reference.
	p.TakeRef()
	s.lock.Unlock()
	return p, nil
}

// Remove deletes a name, releasing the table's reference to the port.
func (s *Space) Remove(n Name) error {
	s.lock.Lock()
	p, ok := s.table[n]
	if !ok {
		s.lock.Unlock()
		return ErrBadName
	}
	delete(s.table, n)
	s.lock.Unlock()
	p.Release(nil)
	return nil
}

// Len returns the number of live names.
func (s *Space) Len() int {
	s.lock.Lock()
	defer s.lock.Unlock()
	return len(s.table)
}

// DestroyAll removes every name, releasing all table references; used by
// task termination.
func (s *Space) DestroyAll() {
	s.lock.Lock()
	ports := make([]*Port, 0, len(s.table))
	for n, p := range s.table {
		ports = append(ports, p)
		delete(s.table, n)
	}
	s.lock.Unlock()
	for _, p := range ports {
		p.Release(nil)
	}
}

package ipc

// Message is a typed collection of data sent to a port. Its Dest and Reply
// fields each carry a counted reference to the named port, acquired when
// the message is built and released when the message is destroyed —
// "Internal destruction of original message releases the port reference"
// (Section 10, step 5).
type Message struct {
	// Dest is the destination port. The message holds a reference.
	Dest *Port
	// Reply is the port the reply should be sent to, or nil for one-way
	// messages. The message holds a reference.
	Reply *Port
	// Op selects the operation in the dispatcher's handler table.
	Op int
	// Body carries the typed data items.
	Body []any
	// Err carries a failure code in reply messages.
	Err error

	destroyed bool
}

// NewMessage builds a message to dest (cloning a reference to it) with an
// optional reply port (also cloned).
func NewMessage(dest *Port, reply *Port, op int, body ...any) *Message {
	dest.TakeRef()
	if reply != nil {
		reply.TakeRef()
	}
	return &Message{Dest: dest, Reply: reply, Op: op, Body: body}
}

// NewReply builds a reply message addressed to the request's reply port,
// consuming nothing from the request. Returns nil if the request had no
// reply port.
func NewReply(req *Message, body ...any) *Message {
	if req.Reply == nil {
		return nil
	}
	return NewMessage(req.Reply, nil, req.Op, body...)
}

// NewErrorReply builds a reply carrying a failure code.
func NewErrorReply(req *Message, err error) *Message {
	m := NewReply(req)
	if m != nil {
		m.Err = err
	}
	return m
}

// Destroy releases the port references the message carries. Destroying a
// message twice panics: each reference may be released exactly once.
func (m *Message) Destroy() {
	if m.destroyed {
		panic("ipc: message destroyed twice")
	}
	m.destroyed = true
	m.Dest.Release(nil)
	if m.Reply != nil {
		m.Reply.Release(nil)
	}
}

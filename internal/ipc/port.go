// Package ipc implements the communication substrate of the Mach kernel
// that the paper's reference-counting protocol is exercised through: ports,
// messages, per-task port name spaces, and the kernel RPC dispatch path of
// Section 10.
//
// "Kernel abstractions are exported to user tasks by ports; if the
// abstraction is not a port, then the port data structure contains a
// pointer to the actual object. Operations on objects are invoked by
// sending messages to the corresponding ports."
//
// Every pointer between structures here carries a counted reference,
// following Section 8 exactly: a port's kobject pointer holds a reference
// to the kernel object; a name-space entry holds a reference to its port; a
// queued message holds a reference to its destination and reply ports.
package ipc

import (
	"errors"
	"fmt"

	"machlock/internal/core/object"
	"machlock/internal/sched"
	"machlock/internal/trace"
)

// classPort aggregates every port's lock, reference, and deactivation
// traffic under one observability class.
var classPort = trace.NewClass("ipc", "ipc.port", trace.KindObject)

// opSend spans one message send end to end (see trace.BeginSpan); used by
// SendFrom, the thread-identified send the RPC paths go through.
var opSend = trace.NewOp("ipc", "op.send")

// Kind identifies the kernel object class behind a port, used by the RPC
// dispatcher to pick a handler table.
type Kind int

// Kernel object kinds.
const (
	KindNone   Kind = iota
	KindTask        // task self port
	KindThread      // thread self port
	KindMemObj      // memory object name port
	KindPager       // memory object pager port
	KindReply       // reply port for RPCs
	KindCustom      // anything a test or example registers
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindTask:
		return "task"
	case KindThread:
		return "thread"
	case KindMemObj:
		return "memobj"
	case KindPager:
		return "pager"
	case KindReply:
		return "reply"
	case KindCustom:
		return "custom"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Errors returned by port operations.
var (
	ErrPortDead      = errors.New("ipc: port is dead")
	ErrQueueFull     = errors.New("ipc: message queue full")
	ErrNoReceiver    = errors.New("ipc: receive on port with no messages (try)")
	ErrNotRegistered = errors.New("ipc: no kernel object registered on port")
)

// KObject is what a port can point to: a kernel object participating in
// the reference protocol. object.Object satisfies it, so any type embedding
// the object base does too.
type KObject interface {
	TakeRef()
	Release(destroy func()) bool
}

// DefaultQueueLimit is the per-port message queue limit.
const DefaultQueueLimit = 64

// Port is a protected communication channel with exactly one receiver and
// one or more senders. It is itself a deactivatable, refcounted kernel
// object: its Object lock protects the queue and the kobject pointer, and
// "deactivated" is the port-dead state.
type Port struct {
	object.Object

	msgs     []*Message
	limit    int
	kobjKind Kind
	kobj     KObject
	pset     *PortSet // the containing port set, if any (counted both ways)
}

// NewPort creates an active port with one (creator's) reference.
func NewPort(name string) *Port {
	p := &Port{limit: DefaultQueueLimit}
	p.Init(name)
	p.SetClass(classPort)
	return p
}

// SetQueueLimit changes the port's queue limit.
func (p *Port) SetQueueLimit(n int) {
	p.Lock()
	p.limit = n
	p.Unlock()
}

// SetKObject registers the kernel object this port represents, donating
// one reference on obj to the port (the port's pointer is a counted
// reference, per Section 8 "Inter-object pointers"). The caller must have
// cloned that reference before calling.
func (p *Port) SetKObject(kind Kind, obj KObject) {
	p.Lock()
	if p.kobj != nil {
		p.Unlock()
		panic("ipc: port already has a kernel object")
	}
	p.kobjKind = kind
	p.kobj = obj
	p.Unlock()
}

// KObject translates the port to its kernel object, cloning a reference to
// the object before returning it — step 2 of the Section 10 kernel
// operation sequence. The translation fails if the port is dead or carries
// no object.
func (p *Port) KObject() (Kind, KObject, error) {
	p.Lock()
	defer p.Unlock()
	if err := p.CheckActive(); err != nil {
		return KindNone, nil, ErrPortDead
	}
	if p.kobj == nil {
		return KindNone, nil, ErrNotRegistered
	}
	// The port's own reference to the object covers this clone: the
	// object cannot vanish while the port points at it.
	obj := p.kobj
	kind := p.kobjKind
	obj.TakeRef()
	return kind, obj, nil
}

// StripKObject removes the object pointer from the port and returns the
// object WITHOUT releasing the port's reference to it — the caller now owns
// that reference and must release it (shutdown step 2: "remove the object
// pointer and reference from the port... This disables port to object
// translation").
func (p *Port) StripKObject() (KObject, bool) {
	p.Lock()
	obj := p.kobj
	p.kobj = nil
	p.kobjKind = KindNone
	p.Unlock()
	return obj, obj != nil
}

// Send enqueues a message on the port. The message's Dest field must
// already reference this port; the queue entry takes over the caller's
// reference to the message's ports. Send fails on a dead port, in which
// case the caller still owns the message (and must destroy it).
func (p *Port) Send(msg *Message) error {
	p.Lock()
	set := p.pset
	defer func() {
		wake := sched.Event(&p.msgs)
		p.Unlock()
		sched.ThreadWakeup(wake)
		if set != nil {
			// A receiver may be parked on the containing port set.
			sched.ThreadWakeup(sched.Event(set))
		}
	}()
	if err := p.CheckActive(); err != nil {
		return ErrPortDead
	}
	if len(p.msgs) >= p.limit {
		return ErrQueueFull
	}
	p.msgs = append(p.msgs, msg)
	return nil
}

// SendFrom is Send with a thread identity: the enqueue is bracketed by an
// operation span, so its latency — and any lock wait inside it — lands in
// the ipc/op.send profile and on t's timeline track. Semantics are
// otherwise identical to Send.
func (p *Port) SendFrom(t *sched.Thread, msg *Message) error {
	sp := trace.BeginSpan(t, opSend)
	err := p.Send(msg)
	sp.End()
	return err
}

// Receive dequeues the next message, blocking the calling thread until one
// arrives or the port dies. The returned message carries references to its
// ports; the receiver consumes them via msg.Destroy.
func (p *Port) Receive(t *sched.Thread) (*Message, error) {
	for {
		p.Lock()
		if len(p.msgs) > 0 {
			msg := p.msgs[0]
			p.msgs = p.msgs[1:]
			p.Unlock()
			return msg, nil
		}
		if err := p.CheckActive(); err != nil {
			p.Unlock()
			return nil, ErrPortDead
		}
		// Release the lock and wait for a send, atomically (thread_sleep).
		sched.ThreadSleep(t, sched.Event(&p.msgs), func() { p.Unlock() })
	}
}

// TryReceive dequeues a message without blocking.
func (p *Port) TryReceive() (*Message, error) {
	p.Lock()
	defer p.Unlock()
	if len(p.msgs) > 0 {
		msg := p.msgs[0]
		p.msgs = p.msgs[1:]
		return msg, nil
	}
	if err := p.CheckActive(); err != nil {
		return nil, ErrPortDead
	}
	return nil, ErrNoReceiver
}

// QueueLen returns the number of queued messages.
func (p *Port) QueueLen() int {
	p.Lock()
	defer p.Unlock()
	return len(p.msgs)
}

// Destroy deactivates the port (making sends and translations fail), wakes
// any blocked receivers, drains and destroys queued messages, releases the
// port's reference to its kernel object (if any), and drops the caller's
// reference. Remaining references keep the bare structure alive; the last
// release frees it.
func (p *Port) Destroy() {
	p.Lock()
	first := p.Deactivate()
	var drained []*Message
	var obj KObject
	var set *PortSet
	if first {
		drained = p.msgs
		p.msgs = nil
		obj = p.kobj
		p.kobj = nil
		p.kobjKind = KindNone
		set = p.pset
	}
	p.Unlock()
	if first {
		if set != nil {
			// Detach from the containing set with the canonical
			// set-then-port ordering; Remove re-validates membership.
			_ = set.Remove(p)
		}
		sched.ThreadWakeup(sched.Event(&p.msgs))
		for _, m := range drained {
			m.Destroy()
		}
		if obj != nil {
			obj.Release(nil)
		}
	}
	p.Release(nil)
}

package ipc

import (
	"errors"
	"sync"
	"testing"

	"machlock/internal/sched"
)

func TestSpaceInsertTranslate(t *testing.T) {
	s := NewSpace()
	p := NewPort("p")
	self := sched.New("tester")
	n := s.Insert(self, p)
	if refsOf(p) != 2 {
		t.Fatalf("refs after insert = %d, want 2 (creator + table)", refsOf(p))
	}
	got, err := s.Translate(self, n)
	if err != nil || got != p {
		t.Fatalf("Translate = %v, %v", got, err)
	}
	if refsOf(p) != 3 {
		t.Fatalf("refs after translate = %d, want 3 (cloned for caller)", refsOf(p))
	}
	got.Release(nil)
	if err := s.Remove(self, n); err != nil {
		t.Fatal(err)
	}
	if refsOf(p) != 1 {
		t.Fatalf("refs after remove = %d, want 1", refsOf(p))
	}
	p.Destroy()
}

func TestSpaceBadName(t *testing.T) {
	s := NewSpace()
	if _, err := s.Translate(nil, 99); !errors.Is(err, ErrBadName) {
		t.Fatalf("Translate bad name = %v", err)
	}
	if err := s.Remove(nil, 99); !errors.Is(err, ErrBadName) {
		t.Fatalf("Remove bad name = %v", err)
	}
}

func TestSpaceNamesAreUnique(t *testing.T) {
	s := NewSpace()
	p := NewPort("p")
	seen := make(map[Name]bool)
	for i := 0; i < 100; i++ {
		n := s.Insert(nil, p)
		if seen[n] {
			t.Fatalf("name %d reused", n)
		}
		seen[n] = true
	}
	if s.Len(nil) != 100 {
		t.Fatalf("len = %d", s.Len(nil))
	}
	s.DestroyAll(nil)
	if s.Len(nil) != 0 {
		t.Fatal("names survive DestroyAll")
	}
	if refsOf(p) != 1 {
		t.Fatalf("refs after DestroyAll = %d, want 1", refsOf(p))
	}
	p.Destroy()
}

func TestSpaceConcurrentTranslationNeverDangles(t *testing.T) {
	// Translation clones under the space lock, so a concurrent Remove can
	// never leave a caller with a dangling port: the clone happened while
	// the table's reference pinned the structure. Each translator has its
	// own thread identity, exercising the reader-bias fast path.
	s := NewSpace()
	p := NewPort("p")
	n := s.Insert(nil, p)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			self := sched.New("translator")
			for j := 0; j < 500; j++ {
				got, err := s.Translate(self, n)
				if err != nil {
					return // removed; fine
				}
				// The reference must be valid: locking proves it.
				got.Lock()
				got.Unlock()
				got.Release(nil)
			}
		}()
	}
	s.Remove(nil, n)
	wg.Wait()
	p.Destroy()
}

func TestSpaceBiasAccounting(t *testing.T) {
	// Concurrent translators on a biased space lock must all appear in
	// Stats — including the ones that took the publish fast path.
	s := NewSpace()
	p := NewPort("p")
	n := s.Insert(nil, p)
	const translators, rounds = 4, 200
	var wg sync.WaitGroup
	for i := 0; i < translators; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			self := sched.New("translator")
			for j := 0; j < rounds; j++ {
				got, err := s.Translate(self, n)
				if err != nil {
					t.Error(err)
					return
				}
				got.Release(nil)
			}
		}()
	}
	wg.Wait()
	st := s.Stats()
	if st.ReadAcquisitions < translators*rounds {
		t.Fatalf("ReadAcquisitions = %d, want >= %d (fast-path reads must count)",
			st.ReadAcquisitions, translators*rounds)
	}
	s.DestroyAll(nil)
	p.Destroy()
}

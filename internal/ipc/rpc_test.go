package ipc

import (
	"errors"
	"sync"
	"testing"

	"machlock/internal/sched"
)

const (
	opPing = iota
	opGetName
	opShutdown
	opFail
)

func setupServer(sem Semantics) (*Server, *Port, *kobj) {
	srv := NewServer(sem)
	srv.Register(KindTask, opPing, func(ctx *Context, obj KObject, req *Message) *Message {
		if sem == Mach30 {
			obj.Release(nil) // consume the reference on success
		}
		return NewReply(req, "pong")
	})
	srv.Register(KindTask, opGetName, func(ctx *Context, obj KObject, req *Message) *Message {
		k := obj.(*kobj)
		k.Lock()
		name := k.Name()
		active := k.Active()
		k.Unlock()
		if sem == Mach30 {
			obj.Release(nil)
		}
		return NewReply(req, name, active)
	})
	srv.Register(KindTask, opFail, func(ctx *Context, obj KObject, req *Message) *Message {
		return NewErrorReply(req, errors.New("operation failed"))
	})

	port := NewPort("task-port")
	k := newKobj("task-1")
	k.TakeRef()
	port.SetKObject(KindTask, k)
	srv.Register(KindTask, opShutdown, func(ctx *Context, obj KObject, req *Message) *Message {
		won := Shutdown(port, obj.(*kobj), nil)
		if sem == Mach30 {
			obj.Release(nil)
		}
		return NewReply(req, won)
	})
	return srv, port, k
}

func TestDispatchFullSequence(t *testing.T) {
	srv, port, k := setupServer(Mach25)
	th := sched.New("t")

	req := NewMessage(port, NewPort("r"), opPing)
	replyPort := req.Reply
	reply := srv.Dispatch(th, req)
	if reply == nil || reply.Err != nil || reply.Body[0] != "pong" {
		t.Fatalf("reply = %+v", reply)
	}
	reply.Destroy()

	// Reference balance: only creator + port's kobject ref remain.
	if refsOf(k) != 2 {
		t.Fatalf("object refs after dispatch = %d, want 2", refsOf(k))
	}
	// The request's port references were released by Destroy inside
	// Dispatch; the private reply port we made has creator ref + the
	// reply message's (destroyed above), so 1.
	if refsOf(replyPort) != 1 {
		t.Fatalf("reply port refs = %d, want 1", refsOf(replyPort))
	}
	if refsOf(port) != 1 {
		t.Fatalf("dest port refs = %d, want 1", refsOf(port))
	}
	replyPort.Destroy()
	port.Destroy()
	if s := srv.Stats(); s.Dispatches != 1 || s.Failures != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDispatchMach30ConsumesOnSuccess(t *testing.T) {
	srv, port, k := setupServer(Mach30)
	th := sched.New("t")

	// Success: handler consumed the reference; dispatcher must not.
	reply := srv.Dispatch(th, NewMessage(port, nil, opPing))
	if reply != nil {
		t.Fatal("one-way ping returned a reply")
	}
	if refsOf(k) != 2 {
		t.Fatalf("refs after Mach30 success = %d, want 2", refsOf(k))
	}

	// Failure: dispatcher releases.
	r := NewPort("r")
	req := NewMessage(port, r, opFail)
	reply = srv.Dispatch(th, req)
	if reply == nil || reply.Err == nil {
		t.Fatalf("expected error reply, got %+v", reply)
	}
	reply.Destroy()
	if refsOf(k) != 2 {
		t.Fatalf("refs after Mach30 failure = %d, want 2 (dispatcher released)", refsOf(k))
	}
	r.Destroy()
	port.Destroy()
}

func TestDispatchNoHandler(t *testing.T) {
	srv, port, k := setupServer(Mach25)
	th := sched.New("t")
	r := NewPort("r")
	reply := srv.Dispatch(th, NewMessage(port, r, 999))
	if reply == nil || !errors.Is(reply.Err, ErrNoHandler) {
		t.Fatalf("reply = %+v, want ErrNoHandler", reply)
	}
	reply.Destroy()
	if refsOf(k) != 2 {
		t.Fatalf("refs leaked on no-handler path: %d", refsOf(k))
	}
	r.Destroy()
	port.Destroy()
}

func TestDispatchDeadPort(t *testing.T) {
	srv, port, _ := setupServer(Mach25)
	th := sched.New("t")
	port.TakeRef()
	port.Destroy()
	r := NewPort("r")
	reply := srv.Dispatch(th, NewMessage(port, r, opPing))
	if reply == nil || !errors.Is(reply.Err, ErrPortDead) {
		t.Fatalf("reply = %+v, want ErrPortDead", reply)
	}
	reply.Destroy()
	r.Destroy()
	port.Release(nil)
	if s := srv.Stats(); s.Failures != 1 {
		t.Fatalf("failures = %d, want 1", s.Failures)
	}
}

func TestShutdownProtocol(t *testing.T) {
	_, port, k := setupServer(Mach25)

	// Simulate the dispatcher's translation reference.
	_, obj, err := port.KObject()
	if err != nil {
		t.Fatal(err)
	}
	if refsOf(k) != 3 {
		t.Fatalf("refs = %d, want 3 (creator + port + translation)", refsOf(k))
	}

	if !Shutdown(port, obj.(*kobj), nil) {
		t.Fatal("shutdown lost the race with nobody")
	}
	// After shutdown: port translation ref released (step 2) and creation
	// ref released (step 4). Only our translation ref remains.
	if refsOf(k) != 1 {
		t.Fatalf("refs after shutdown = %d, want 1", refsOf(k))
	}
	// Translation is disabled.
	if _, _, err := port.KObject(); !errors.Is(err, ErrNotRegistered) {
		t.Fatalf("translation after shutdown = %v, want ErrNotRegistered", err)
	}
	// The structure is still usable (deactivated) while we hold our ref.
	k.Lock()
	if k.Active() {
		t.Fatal("object still active after shutdown")
	}
	k.Unlock()
	// Releasing the last reference destroys the structure.
	if !obj.Release(nil) {
		t.Fatal("final release did not destroy")
	}
	port.Destroy()
}

func TestShutdownConcurrentOneWinner(t *testing.T) {
	_, port, k := setupServer(Mach25)
	const racers = 8
	// Each racer holds a translation reference.
	objs := make([]KObject, racers)
	for i := range objs {
		_, o, err := port.KObject()
		if err != nil {
			t.Fatal(err)
		}
		objs[i] = o
	}
	var wins int32
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(o KObject) {
			defer wg.Done()
			if Shutdown(port, o.(*kobj), nil) {
				mu.Lock()
				wins++
				mu.Unlock()
			}
			o.Release(nil)
		}(objs[i])
	}
	wg.Wait()
	if wins != 1 {
		t.Fatalf("shutdown winners = %d, want 1", wins)
	}
	if !k.Destroyed() {
		t.Fatal("object not destroyed after all references released")
	}
	port.Destroy()
}

func TestServeCallRoundTrip(t *testing.T) {
	srv, port, _ := setupServer(Mach25)
	port.TakeRef() // server loop's reference
	server := sched.Go("server", func(self *sched.Thread) {
		srv.Serve(self, port)
		port.Release(nil)
	})

	client := sched.Go("client", func(self *sched.Thread) {
		for i := 0; i < 20; i++ {
			resp, err := Call(self, port, opGetName)
			if err != nil {
				t.Errorf("Call: %v", err)
				return
			}
			if resp.Err != nil || resp.Body[0] != "task-1" || resp.Body[1] != true {
				t.Errorf("resp = %+v", resp)
			}
			resp.Destroy()
		}
	})
	client.Join()
	port.Destroy() // stops the server loop
	server.Join()
}

func TestCallToDeadPortFails(t *testing.T) {
	p := NewPort("p")
	p.TakeRef()
	p.Destroy()
	th := sched.New("t")
	if _, err := Call(th, p, opPing); !errors.Is(err, ErrPortDead) {
		t.Fatalf("Call = %v, want ErrPortDead", err)
	}
	p.Release(nil)
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		KindNone: "none", KindTask: "task", KindThread: "thread",
		KindMemObj: "memobj", KindPager: "pager", KindReply: "reply",
		KindCustom: "custom", Kind(42): "kind(42)",
	} {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
}

// TestOperationsRaceWithTermination is the paper's core safety claim (E10):
// a flood of kernel operations racing with object termination must never
// touch a destroyed structure — every touch is covered by a reference.
// Kept short: real concurrency under -race is the smoke layer; the
// deterministic schedule-exploration twin is
// TestSimOperationsRaceWithTermination in sim_test.go.
func TestOperationsRaceWithTermination(t *testing.T) {
	srv, port, k := setupServer(Mach25)
	port.TakeRef()
	server := sched.Go("server", func(self *sched.Thread) {
		srv.Serve(self, port)
		port.Release(nil)
	})

	var clients []*sched.Thread
	for i := 0; i < 4; i++ {
		clients = append(clients, sched.Go("client", func(self *sched.Thread) {
			for j := 0; j < 15; j++ {
				resp, err := Call(self, port, opGetName)
				if err != nil {
					return // port died; fine
				}
				resp.Destroy()
			}
		}))
	}
	terminator := sched.Go("terminator", func(self *sched.Thread) {
		resp, err := Call(self, port, opShutdown)
		if err == nil {
			resp.Destroy()
		}
	})
	terminator.Join()
	for _, c := range clients {
		c.Join()
	}
	port.Destroy()
	server.Join()
	_ = k
}

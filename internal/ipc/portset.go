package ipc

import (
	"errors"

	"machlock/internal/core/object"
	"machlock/internal/sched"
)

// PortSet groups ports so one receiver can wait on all of them — Mach's
// port sets, the multiplexing primitive servers use to serve many objects
// with one message loop. A port belongs to at most one set; membership is
// a pair of counted references (Section 8), and the set is itself a
// deactivatable kernel object.
type PortSet struct {
	object.Object
	members []*Port
	rr      int // round-robin scan start, so no member starves
}

// Errors returned by port-set operations.
var (
	ErrAlreadyMember = errors.New("ipc: port already belongs to a port set")
	ErrNotMember     = errors.New("ipc: port is not a member of this set")
	ErrSetDead       = errors.New("ipc: port set is dead")
)

// NewPortSet creates an active, empty port set with one reference.
func NewPortSet(name string) *PortSet {
	ps := &PortSet{}
	ps.Init(name)
	return ps
}

// Add makes p a member of the set. Lock ordering is set, then port —
// the same order Receive uses.
func (ps *PortSet) Add(p *Port) error {
	ps.Lock()
	if err := ps.CheckActive(); err != nil {
		ps.Unlock()
		return ErrSetDead
	}
	p.Lock()
	if p.pset != nil {
		p.Unlock()
		ps.Unlock()
		return ErrAlreadyMember
	}
	p.pset = ps
	ps.Reference() // the port's set pointer
	p.Reference()  // the set's member pointer
	ps.members = append(ps.members, p)
	p.Unlock()
	ps.Unlock()
	return nil
}

// Remove detaches p from the set, releasing the membership references.
func (ps *PortSet) Remove(p *Port) error {
	ps.Lock()
	p.Lock()
	if p.pset != ps {
		p.Unlock()
		ps.Unlock()
		return ErrNotMember
	}
	p.pset = nil
	for i, m := range ps.members {
		if m == p {
			ps.members = append(ps.members[:i], ps.members[i+1:]...)
			break
		}
	}
	p.Unlock()
	ps.Unlock()
	// Release outside the locks (releases may destroy).
	p.Release(nil)
	ps.Release(nil)
	return nil
}

// Members returns the current member count.
func (ps *PortSet) Members() int {
	ps.Lock()
	defer ps.Unlock()
	return len(ps.members)
}

// Receive dequeues the next message from any member port, blocking until
// one arrives or the set dies. Members are scanned round-robin so a busy
// port cannot starve the others.
func (ps *PortSet) Receive(t *sched.Thread) (*Message, error) {
	for {
		ps.Lock()
		if err := ps.CheckActive(); err != nil {
			ps.Unlock()
			return nil, ErrSetDead
		}
		n := len(ps.members)
		for i := 0; i < n; i++ {
			p := ps.members[(ps.rr+i)%n]
			if msg, err := p.TryReceive(); err == nil {
				ps.rr = (ps.rr + i + 1) % n
				ps.Unlock()
				return msg, nil
			}
		}
		// Nothing queued anywhere: wait for a send to any member (their
		// Send wakes the set's event) or for the set to die.
		sched.AssertWait(t, sched.Event(ps))
		ps.Unlock()
		sched.ThreadBlock(t)
	}
}

// Destroy deactivates the set, detaches all members, and wakes blocked
// receivers; the structure survives while references remain.
func (ps *PortSet) Destroy() {
	ps.Lock()
	first := ps.Deactivate()
	var members []*Port
	if first {
		members = ps.members
		ps.members = nil
	}
	ps.Unlock()
	if first {
		for _, p := range members {
			p.Lock()
			if p.pset == ps {
				p.pset = nil
			}
			p.Unlock()
			p.Release(nil)  // set's member reference
			ps.Release(nil) // port's set reference
		}
		sched.ThreadWakeup(sched.Event(ps))
	}
	ps.Release(nil)
}

package ipc

import (
	"errors"
	"sync"
	"sync/atomic"

	"machlock/internal/sched"
)

// Errors produced by the dispatcher.
var (
	ErrNoHandler = errors.New("ipc: no handler for operation")
)

// Semantics selects the reference-consumption convention of the interface
// code, Section 10 step 4:
//
//   - Mach25: "Interface code releases the object reference" — always,
//     success or failure; handlers never own the reference.
//   - Mach30: "a successful operation consumes (uses or releases) the
//     object reference, so the interface code releases the reference only
//     if the operation fails" — handlers own the reference on success.
type Semantics int

const (
	Mach25 Semantics = iota
	Mach30
)

// Context carries per-dispatch state into handlers.
type Context struct {
	// Thread is the kernel thread executing the operation.
	Thread *sched.Thread
	// Server is the dispatching server.
	Server *Server
}

// Handler executes one kernel operation on the translated object. It
// receives the object with a cloned reference (step 2); under Mach25
// semantics the dispatcher releases that reference afterwards, under Mach30
// the handler owns it unless it returns an error reply. A nil return means
// no reply (one-way operation).
type Handler func(ctx *Context, obj KObject, req *Message) *Message

// ServerStats is a snapshot of dispatcher accounting.
type ServerStats struct {
	Dispatches   int64
	Failures     int64 // translation or handler-lookup failures
	HandlerFails int64 // replies carrying errors
}

// Server is the kernel-side dispatcher: the role MiG-generated stubs and
// the kernel's message loop play in Mach. Handlers are registered per
// (object kind, operation).
type Server struct {
	Semantics Semantics

	mu       sync.RWMutex
	handlers map[Kind]map[int]Handler

	dispatches   atomic.Int64
	failures     atomic.Int64
	handlerFails atomic.Int64
}

// NewServer creates a dispatcher with the given reference semantics.
func NewServer(sem Semantics) *Server {
	return &Server{Semantics: sem, handlers: make(map[Kind]map[int]Handler)}
}

// Register installs a handler for (kind, op).
func (s *Server) Register(kind Kind, op int, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.handlers[kind] == nil {
		s.handlers[kind] = make(map[int]Handler)
	}
	s.handlers[kind][op] = h
}

func (s *Server) lookup(kind Kind, op int) Handler {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.handlers[kind][op]
}

// Dispatch executes the Section 10 kernel operation sequence for one
// request message:
//
//  1. The request has been received (req carries its port references).
//  2. The represented object is determined from the port and a reference
//     is obtained to it.
//  3. The handler executes; the object and its port cannot vanish because
//     of the references held.
//  4. The object reference is released per the server's Semantics.
//  5. The reply is returned and the request message destroyed, releasing
//     its port references.
//
// Dispatch returns the reply message (nil for one-way ops); the caller
// sends it and owns it if the send fails.
func (s *Server) Dispatch(t *sched.Thread, req *Message) *Message {
	s.dispatches.Add(1)

	// Step 2: port-to-object translation with reference acquisition.
	kind, obj, err := req.Dest.KObject()
	if err != nil {
		s.failures.Add(1)
		reply := NewErrorReply(req, err)
		req.Destroy() // step 5 half: release request's port refs
		return reply
	}

	h := s.lookup(kind, req.Op)
	if h == nil {
		s.failures.Add(1)
		obj.Release(nil)
		reply := NewErrorReply(req, ErrNoHandler)
		req.Destroy()
		return reply
	}

	// Step 3: the operation executes. The object's data structure cannot
	// vanish: we hold a reference.
	ctx := &Context{Thread: t, Server: s}
	reply := h(ctx, obj, req)

	// Step 4: release the object reference per semantics.
	failed := reply != nil && reply.Err != nil
	if failed {
		s.handlerFails.Add(1)
	}
	switch s.Semantics {
	case Mach25:
		obj.Release(nil)
	case Mach30:
		if failed {
			obj.Release(nil)
		}
		// On success the handler consumed (used or released) it.
	}

	// Step 5: destroy the request, releasing its port references.
	req.Destroy()
	return reply
}

// Serve runs a receive-dispatch-reply loop on a port until the port dies.
// It is the kernel's message loop for one service port.
func (s *Server) Serve(t *sched.Thread, port *Port) {
	for {
		req, err := port.Receive(t)
		if err != nil {
			return
		}
		reply := s.Dispatch(t, req)
		if reply != nil {
			if err := reply.Dest.SendFrom(t, reply); err != nil {
				reply.Destroy()
			}
		}
	}
}

// Stats returns dispatcher accounting.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		Dispatches:   s.dispatches.Load(),
		Failures:     s.failures.Load(),
		HandlerFails: s.handlerFails.Load(),
	}
}

// Call performs a synchronous RPC: build a request to dest with a private
// reply port, send it, and await the reply — the "pair of messages
// [that] constitutes a remote procedure call (RPC) to the kernel"
// (Section 3). The server side must be draining dest (see Serve).
func Call(t *sched.Thread, dest *Port, op int, body ...any) (*Message, error) {
	reply := NewPort("reply")
	defer reply.Destroy()
	req := NewMessage(dest, reply, op, body...)
	if err := dest.SendFrom(t, req); err != nil {
		req.Destroy()
		return nil, err
	}
	resp, err := reply.Receive(t)
	if err != nil {
		return nil, err
	}
	return resp, nil
}

// Deactivatable is the object side of the Section 10 shutdown protocol.
// Types embedding object.Object satisfy it.
type Deactivatable interface {
	KObject
	Lock()
	Unlock()
	Deactivate() bool
}

// Shutdown runs the Section 10 shutdown sequence for an object represented
// by a port:
//
//  1. Lock the object, set the deactivated flag, unlock.
//  2. Lock the port, remove the object pointer and reference, unlock —
//     disabling port-to-object translation — and release that reference.
//  3. Run the object's shutdown/destroy step (destroy; it takes the locks
//     it needs).
//  4. Release the reference originally returned by object creation; final
//     deletion happens when all other references are released.
//
// It returns false (doing nothing further) if another thread already
// deactivated the object: concurrent shutdowns have exactly one winner.
// The caller's own reference (e.g. the one acquired by translation) is not
// consumed.
func Shutdown(port *Port, obj Deactivatable, destroy func()) bool {
	// Step 1.
	obj.Lock()
	won := obj.Deactivate()
	obj.Unlock()
	if !won {
		return false
	}
	// Step 2.
	if stripped, ok := port.StripKObject(); ok {
		stripped.Release(nil)
	}
	// Step 3.
	if destroy != nil {
		destroy()
	}
	// Step 4.
	obj.Release(nil)
	return true
}

package ipc

import (
	"errors"
	"testing"
	"time"

	"machlock/internal/sched"
)

func TestPortSetAddRemove(t *testing.T) {
	ps := NewPortSet("set")
	a, b := NewPort("a"), NewPort("b")
	if err := ps.Add(a); err != nil {
		t.Fatal(err)
	}
	if err := ps.Add(b); err != nil {
		t.Fatal(err)
	}
	if ps.Members() != 2 {
		t.Fatalf("members = %d", ps.Members())
	}
	if err := ps.Add(a); !errors.Is(err, ErrAlreadyMember) {
		t.Fatalf("double add = %v", err)
	}
	if err := ps.Remove(a); err != nil {
		t.Fatal(err)
	}
	if err := ps.Remove(a); !errors.Is(err, ErrNotMember) {
		t.Fatalf("double remove = %v", err)
	}
	if refsOf(a) != 1 {
		t.Fatalf("port refs after remove = %d, want 1", refsOf(a))
	}
	ps.Destroy()
	if refsOf(b) != 1 {
		t.Fatalf("port b refs after set destroy = %d, want 1", refsOf(b))
	}
	a.Destroy()
	b.Destroy()
}

func TestPortSetReceiveDrainsAnyMember(t *testing.T) {
	ps := NewPortSet("set")
	a, b := NewPort("a"), NewPort("b")
	ps.Add(a)
	ps.Add(b)
	th := sched.New("t")

	if err := b.Send(NewMessage(b, nil, 42)); err != nil {
		t.Fatal(err)
	}
	msg, err := ps.Receive(th)
	if err != nil || msg.Op != 42 {
		t.Fatalf("receive = %+v, %v", msg, err)
	}
	msg.Destroy()
	ps.Destroy()
	a.Destroy()
	b.Destroy()
}

func TestPortSetBlockedReceiverWokenByMemberSend(t *testing.T) {
	ps := NewPortSet("set")
	a := NewPort("a")
	ps.Add(a)
	got := make(chan *Message, 1)
	rx := sched.Go("rx", func(self *sched.Thread) {
		m, err := ps.Receive(self)
		if err != nil {
			t.Errorf("receive: %v", err)
			got <- nil
			return
		}
		got <- m
	})
	deadline := time.Now().Add(2 * time.Second)
	for rx.Blocks() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("receiver never blocked")
		}
		time.Sleep(time.Millisecond)
	}
	if err := a.Send(NewMessage(a, nil, 7)); err != nil {
		t.Fatal(err)
	}
	rx.Join()
	m := <-got
	if m == nil || m.Op != 7 {
		t.Fatalf("got %+v", m)
	}
	m.Destroy()
	ps.Destroy()
	a.Destroy()
}

func TestPortSetRoundRobinNoStarvation(t *testing.T) {
	ps := NewPortSet("set")
	a, b := NewPort("a"), NewPort("b")
	ps.Add(a)
	ps.Add(b)
	th := sched.New("t")
	// Keep both queues non-empty; the receiver must alternate.
	for i := 0; i < 4; i++ {
		a.Send(NewMessage(a, nil, 1))
		b.Send(NewMessage(b, nil, 2))
	}
	var seq []int
	for i := 0; i < 8; i++ {
		m, err := ps.Receive(th)
		if err != nil {
			t.Fatal(err)
		}
		seq = append(seq, m.Op)
		m.Destroy()
	}
	ones, twos := 0, 0
	for _, op := range seq {
		if op == 1 {
			ones++
		} else {
			twos++
		}
	}
	if ones != 4 || twos != 4 {
		t.Fatalf("sequence %v: member starved", seq)
	}
	ps.Destroy()
	a.Destroy()
	b.Destroy()
}

func TestPortSetDestroyWakesReceiver(t *testing.T) {
	ps := NewPortSet("set")
	ps.TakeRef() // keep structure for the receiver's error path
	errc := make(chan error, 1)
	rx := sched.Go("rx", func(self *sched.Thread) {
		_, err := ps.Receive(self)
		errc <- err
	})
	deadline := time.Now().Add(2 * time.Second)
	for rx.Blocks() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("receiver never blocked")
		}
		time.Sleep(time.Millisecond)
	}
	ps.Destroy()
	rx.Join()
	if err := <-errc; !errors.Is(err, ErrSetDead) {
		t.Fatalf("receive after destroy = %v, want ErrSetDead", err)
	}
	ps.Release(nil)
}

func TestPortDestroyDetachesFromSet(t *testing.T) {
	ps := NewPortSet("set")
	a := NewPort("a")
	ps.Add(a)
	a.TakeRef()
	a.Destroy()
	if ps.Members() != 0 {
		t.Fatalf("members after port destroy = %d", ps.Members())
	}
	a.Release(nil)
	ps.Destroy()
}

func TestAddToDeadSetFails(t *testing.T) {
	ps := NewPortSet("set")
	ps.TakeRef()
	ps.Destroy()
	a := NewPort("a")
	if err := ps.Add(a); !errors.Is(err, ErrSetDead) {
		t.Fatalf("add to dead set = %v", err)
	}
	ps.Release(nil)
	a.Destroy()
}

// TestPortSetServerLoop multiplexes two kernel objects' ports through one
// set-driven server loop — the pattern port sets exist for.
func TestPortSetServerLoop(t *testing.T) {
	ps := NewPortSet("services")
	ps.TakeRef()
	portA, portB := NewPort("svc-a"), NewPort("svc-b")
	objA, objB := newKobj("A"), newKobj("B")
	objA.TakeRef()
	objB.TakeRef()
	portA.SetKObject(KindCustom, objA)
	portB.SetKObject(KindCustom, objB)
	ps.Add(portA)
	ps.Add(portB)

	srv := NewServer(Mach25)
	srv.Register(KindCustom, 1, func(ctx *Context, obj KObject, req *Message) *Message {
		return NewReply(req, obj.(*kobj).Name())
	})
	server := sched.Go("server", func(self *sched.Thread) {
		for {
			req, err := ps.Receive(self)
			if err != nil {
				return
			}
			if reply := srv.Dispatch(self, req); reply != nil {
				if err := reply.Dest.Send(reply); err != nil {
					reply.Destroy()
				}
			}
		}
	})

	client := sched.New("client")
	for i := 0; i < 10; i++ {
		port, want := portA, "A"
		if i%2 == 1 {
			port, want = portB, "B"
		}
		resp, err := Call(client, port, 1)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Err != nil || resp.Body[0] != want {
			t.Fatalf("resp = %+v", resp)
		}
		resp.Destroy()
	}
	ps.Destroy()
	server.Join()
	portA.Destroy()
	portB.Destroy()
	ps.Release(nil)
}

package ipc

// Machsim suite for the Section 10 dispatch path: kernel operations racing
// object termination over explored schedules. The raw -race version,
// TestOperationsRaceWithTermination in rpc_test.go, stays as a shortened
// smoke test; this is the deterministic twin. Internal test package so it
// can reuse setupServer and kobj; machsim does not import ipc, so there is
// no cycle.

import (
	"testing"

	"machlock/internal/core/splock"
	"machlock/internal/machsim"
	"machlock/internal/sched"
)

// TestSimOperationsRaceWithTermination explores the paper's core safety
// claim (E10) deterministically: a client's kernel operations race a
// terminator's shutdown RPC on the same service port, and on every schedule
// no touch may land on a destroyed structure — the translation either
// succeeds with a covering reference or fails cleanly with ErrPortDead.
// The port is destroyed by whichever of client/terminator finishes last
// (the sim has no Join), which is also what unblocks the server loop.
func TestSimOperationsRaceWithTermination(t *testing.T) {
	scenario := func(s *machsim.Sim) {
		srv, port, k := setupServer(Mach25)
		port.TakeRef()
		var cnt splock.Lock
		remaining := 2
		finish := func() {
			cnt.Lock()
			remaining--
			last := remaining == 0
			cnt.Unlock()
			if last {
				port.Destroy()
			}
		}
		var clientCalls, clientFails int
		shutdownOK := false
		s.Label(port, "task-port")
		s.Spawn("server", func(th *sched.Thread) {
			srv.Serve(th, port)
			port.Release(nil)
		})
		s.Spawn("client", func(th *sched.Thread) {
			defer finish()
			for j := 0; j < 2; j++ {
				resp, err := Call(th, port, opGetName)
				if err != nil {
					clientFails++
					return // port died mid-operation; a clean failure
				}
				clientCalls++
				resp.Destroy()
			}
		})
		s.Spawn("terminator", func(th *sched.Thread) {
			defer finish()
			resp, err := Call(th, port, opShutdown)
			if err == nil {
				shutdownOK = true
				resp.Destroy()
			}
		})
		s.AtEnd(func(fail func(string, ...any)) {
			if !port.Destroyed() {
				fail("port not destroyed at end of run")
			}
			if !shutdownOK {
				fail("shutdown RPC failed although the port outlived the terminator")
			}
			if k.Active() {
				fail("object still active after a successful shutdown")
			}
			if clientCalls+clientFails == 0 {
				fail("client made no progress")
			}
			if st := srv.Stats(); st.Dispatches < 1 {
				fail("server dispatched nothing: %+v", st)
			}
		})
	}
	machsim.Check(t, machsim.Random(scenario, 150, 41, machsim.Options{}))
	// Three threads share the port's lock, and every contended spin is a
	// free branch point for the DFS, so this space is effectively open-ended
	// — MaxRuns is a schedule budget (distinct schedules, deterministic
	// coverage), not an exhaustion claim. The multi-subsystem scenarios in
	// machsim/scenarios carry the exhaustive shutdown-protocol verdicts.
	machsim.Check(t, machsim.Explore(scenario, machsim.DFSConfig{
		Preemptions: 1,
		Reduction:   machsim.ReduceSleep,
		MaxRuns:     2000,
	}, machsim.Options{}))
}

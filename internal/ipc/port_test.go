package ipc

import (
	"errors"
	"sync"
	"testing"
	"time"

	"machlock/internal/core/object"
	"machlock/internal/sched"
)

// kobj is a minimal kernel object for tests.
type kobj struct {
	object.Object
}

func newKobj(name string) *kobj {
	k := &kobj{}
	k.Init(name)
	return k
}

func refsOf(o interface {
	Lock()
	Unlock()
	Refs() int32
}) int32 {
	o.Lock()
	defer o.Unlock()
	return o.Refs()
}

func TestPortSendReceive(t *testing.T) {
	p := NewPort("p")
	th := sched.New("t")
	msg := NewMessage(p, nil, 7, "hello", 42)
	if err := p.Send(msg); err != nil {
		t.Fatalf("Send: %v", err)
	}
	got, err := p.Receive(th)
	if err != nil {
		t.Fatalf("Receive: %v", err)
	}
	if got.Op != 7 || got.Body[0] != "hello" || got.Body[1] != 42 {
		t.Fatalf("received %+v", got)
	}
	got.Destroy()
	if refsOf(p) != 1 {
		t.Fatalf("port refs = %d, want 1 (message refs released)", refsOf(p))
	}
	p.Destroy()
}

func TestPortTryReceive(t *testing.T) {
	p := NewPort("p")
	if _, err := p.TryReceive(); !errors.Is(err, ErrNoReceiver) {
		t.Fatalf("TryReceive on empty = %v, want ErrNoReceiver", err)
	}
	msg := NewMessage(p, nil, 1)
	if err := p.Send(msg); err != nil {
		t.Fatal(err)
	}
	got, err := p.TryReceive()
	if err != nil || got.Op != 1 {
		t.Fatalf("TryReceive = %v, %v", got, err)
	}
	got.Destroy()
	p.Destroy()
}

func TestPortQueueLimit(t *testing.T) {
	p := NewPort("p")
	p.SetQueueLimit(2)
	m1, m2, m3 := NewMessage(p, nil, 1), NewMessage(p, nil, 2), NewMessage(p, nil, 3)
	if p.Send(m1) != nil || p.Send(m2) != nil {
		t.Fatal("sends under limit failed")
	}
	if err := p.Send(m3); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overlimit send = %v, want ErrQueueFull", err)
	}
	m3.Destroy()
	if p.QueueLen() != 2 {
		t.Fatalf("queue len = %d", p.QueueLen())
	}
	p.Destroy() // drains and destroys m1, m2
}

func TestBlockedReceiverWokenBySend(t *testing.T) {
	p := NewPort("p")
	got := make(chan *Message, 1)
	rx := sched.Go("rx", func(self *sched.Thread) {
		m, err := p.Receive(self)
		if err != nil {
			t.Errorf("Receive: %v", err)
			got <- nil
			return
		}
		got <- m
	})
	// Let the receiver block.
	deadline := time.Now().Add(2 * time.Second)
	for rx.Blocks() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("receiver never blocked")
		}
		time.Sleep(time.Millisecond)
	}
	if err := p.Send(NewMessage(p, nil, 9)); err != nil {
		t.Fatal(err)
	}
	rx.Join()
	m := <-got
	if m == nil || m.Op != 9 {
		t.Fatalf("received %+v", m)
	}
	m.Destroy()
	p.Destroy()
}

func TestDestroyWakesBlockedReceiver(t *testing.T) {
	p := NewPort("p")
	p.TakeRef() // keep structure alive past Destroy for the receiver
	errc := make(chan error, 1)
	rx := sched.Go("rx", func(self *sched.Thread) {
		_, err := p.Receive(self)
		errc <- err
	})
	deadline := time.Now().Add(2 * time.Second)
	for rx.Blocks() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("receiver never blocked")
		}
		time.Sleep(time.Millisecond)
	}
	p.Destroy()
	rx.Join()
	if err := <-errc; !errors.Is(err, ErrPortDead) {
		t.Fatalf("Receive after destroy = %v, want ErrPortDead", err)
	}
	p.Release(nil)
}

func TestSendToDeadPortFails(t *testing.T) {
	p := NewPort("p")
	p.TakeRef()
	p.Destroy()
	msg := NewMessage(p, nil, 1)
	if err := p.Send(msg); !errors.Is(err, ErrPortDead) {
		t.Fatalf("send to dead port = %v, want ErrPortDead", err)
	}
	msg.Destroy()
	p.Release(nil)
}

func TestKObjectTranslationClonesReference(t *testing.T) {
	p := NewPort("p")
	k := newKobj("task")
	k.TakeRef() // clone the reference the port will hold
	p.SetKObject(KindTask, k)
	if refsOf(k) != 2 {
		t.Fatalf("refs after SetKObject = %d, want 2 (creator + port)", refsOf(k))
	}
	kind, obj, err := p.KObject()
	if err != nil || kind != KindTask || obj != k {
		t.Fatalf("KObject = %v %v %v", kind, obj, err)
	}
	if refsOf(k) != 3 {
		t.Fatalf("refs after translation = %d, want 3 (cloned)", refsOf(k))
	}
	obj.Release(nil)
	p.Destroy() // releases the port's reference too
	if refsOf(k) != 1 {
		t.Fatalf("refs after destroy = %d, want 1", refsOf(k))
	}
}

func TestKObjectTranslationFailsOnDeadPort(t *testing.T) {
	p := NewPort("p")
	p.TakeRef()
	k := newKobj("task")
	k.TakeRef()
	p.SetKObject(KindTask, k)
	p.Destroy()
	if _, _, err := p.KObject(); !errors.Is(err, ErrPortDead) {
		t.Fatalf("translation on dead port = %v, want ErrPortDead", err)
	}
	p.Release(nil)
}

func TestKObjectTranslationFailsUnregistered(t *testing.T) {
	p := NewPort("p")
	if _, _, err := p.KObject(); !errors.Is(err, ErrNotRegistered) {
		t.Fatalf("translation = %v, want ErrNotRegistered", err)
	}
	p.Destroy()
}

func TestStripKObjectTransfersReference(t *testing.T) {
	p := NewPort("p")
	k := newKobj("task")
	k.TakeRef()
	p.SetKObject(KindTask, k)
	obj, ok := p.StripKObject()
	if !ok || obj != k {
		t.Fatal("strip failed")
	}
	// Translation is now disabled.
	if _, _, err := p.KObject(); !errors.Is(err, ErrNotRegistered) {
		t.Fatalf("translation after strip = %v", err)
	}
	// We own the stripped reference.
	if refsOf(k) != 2 {
		t.Fatalf("refs = %d, want 2", refsOf(k))
	}
	obj.Release(nil)
	p.Destroy()
}

func TestDoubleSetKObjectPanics(t *testing.T) {
	p := NewPort("p")
	k := newKobj("a")
	k.TakeRef()
	p.SetKObject(KindTask, k)
	defer func() {
		if recover() == nil {
			t.Fatal("double SetKObject did not panic")
		}
	}()
	p.SetKObject(KindTask, k)
}

func TestMessageDoubleDestroyPanics(t *testing.T) {
	p := NewPort("p")
	m := NewMessage(p, nil, 1)
	m.Destroy()
	defer func() {
		if recover() == nil {
			t.Fatal("double destroy did not panic")
		}
		p.Destroy()
	}()
	m.Destroy()
}

func TestMessageReplyConstruction(t *testing.T) {
	dest := NewPort("dest")
	reply := NewPort("reply")
	req := NewMessage(dest, reply, 5, "payload")
	r := NewReply(req, "result")
	if r == nil || r.Dest != reply || r.Op != 5 || r.Body[0] != "result" {
		t.Fatalf("reply = %+v", r)
	}
	e := NewErrorReply(req, ErrPortDead)
	if e == nil || !errors.Is(e.Err, ErrPortDead) {
		t.Fatalf("error reply = %+v", e)
	}
	oneway := NewMessage(dest, nil, 5)
	if NewReply(oneway) != nil {
		t.Fatal("reply to one-way message not nil")
	}
	r.Destroy()
	e.Destroy()
	req.Destroy()
	oneway.Destroy()
	if refsOf(dest) != 1 || refsOf(reply) != 1 {
		t.Fatalf("leaked refs: dest=%d reply=%d", refsOf(dest), refsOf(reply))
	}
	dest.Destroy()
	reply.Destroy()
}

func TestPortDestroyIdempotentConcurrent(t *testing.T) {
	p := NewPort("p")
	for i := 0; i < 3; i++ {
		p.TakeRef()
	}
	done := make(chan struct{}, 4)
	for i := 0; i < 4; i++ {
		go func() { p.Destroy(); done <- struct{}{} }()
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	if !p.Destroyed() {
		t.Fatal("port not destroyed after all refs released")
	}
}

// TestPortFIFOOrdering: messages are received in send order — the queue is
// a queue, which the kernel operation sequencing depends on.
func TestPortFIFOOrdering(t *testing.T) {
	p := NewPort("p")
	p.SetQueueLimit(128)
	th := sched.New("t")
	for i := 0; i < 100; i++ {
		if err := p.Send(NewMessage(p, nil, i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		m, err := p.Receive(th)
		if err != nil {
			t.Fatal(err)
		}
		if m.Op != i {
			t.Fatalf("position %d delivered op %d (order broken)", i, m.Op)
		}
		m.Destroy()
	}
	p.Destroy()
}

// TestPortPerSenderFIFO: each sender's messages stay in that sender's
// order even when senders interleave.
func TestPortPerSenderFIFO(t *testing.T) {
	p := NewPort("p")
	p.SetQueueLimit(4096)
	const senders, per = 4, 200
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := p.Send(NewMessage(p, nil, s*1000+i)); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	last := map[int]int{}
	th := sched.New("t")
	for n := 0; n < senders*per; n++ {
		m, err := p.Receive(th)
		if err != nil {
			t.Fatal(err)
		}
		s, i := m.Op/1000, m.Op%1000
		if prev, ok := last[s]; ok && i != prev+1 {
			t.Fatalf("sender %d: got %d after %d", s, i, prev)
		}
		last[s] = i
		m.Destroy()
	}
	p.Destroy()
}

package mig

import (
	"errors"
	"fmt"
	"testing"

	"machlock/internal/core/object"
	"machlock/internal/ipc"
	"machlock/internal/sched"
)

// counter is the kernel object the test interface operates on.
type counter struct {
	object.Object
	value int64
}

const (
	opAdd = iota
	opGet
	opFail
	opUndefined
)

type addArgs struct{ Delta int64 }
type addReply struct{ New int64 }
type getArgs struct{}
type getReply struct{ Value int64 }
type failArgs struct{ Msg string }
type failReply struct{}

func newCounterService(t *testing.T) (*ipc.Port, *counter, func()) {
	t.Helper()
	iface := NewInterface(ipc.KindCustom)
	Define(iface, opAdd, "add", func(ctx *ipc.Context, obj ipc.KObject, a *addArgs) (*addReply, error) {
		c := obj.(*counter)
		c.Lock()
		defer c.Unlock()
		if err := c.CheckActive(); err != nil {
			return nil, err
		}
		c.value += a.Delta
		return &addReply{New: c.value}, nil
	})
	Define(iface, opGet, "get", func(ctx *ipc.Context, obj ipc.KObject, a *getArgs) (*getReply, error) {
		c := obj.(*counter)
		c.Lock()
		defer c.Unlock()
		return &getReply{Value: c.value}, nil
	})
	Define(iface, opFail, "fail", func(ctx *ipc.Context, obj ipc.KObject, a *failArgs) (*failReply, error) {
		return nil, errors.New(a.Msg)
	})

	srv := iface.Server(ipc.Mach25)
	port := ipc.NewPort("counter-port")
	c := &counter{}
	c.Init("counter")
	c.TakeRef()
	port.SetKObject(ipc.KindCustom, c)

	port.TakeRef()
	server := sched.Go("server", func(self *sched.Thread) {
		srv.Serve(self, port)
		port.Release(nil)
	})
	return port, c, func() {
		port.Destroy()
		server.Join()
	}
}

func TestTypedRoundTrip(t *testing.T) {
	port, _, stop := newCounterService(t)
	defer stop()
	self := sched.New("client")

	r1, err := Call[addArgs, addReply](self, port, opAdd, &addArgs{Delta: 5})
	if err != nil {
		t.Fatal(err)
	}
	if r1.New != 5 {
		t.Fatalf("New = %d", r1.New)
	}
	r2, err := Call[addArgs, addReply](self, port, opAdd, &addArgs{Delta: -2})
	if err != nil || r2.New != 3 {
		t.Fatalf("r2 = %+v, %v", r2, err)
	}
	g, err := Call[getArgs, getReply](self, port, opGet, &getArgs{})
	if err != nil || g.Value != 3 {
		t.Fatalf("get = %+v, %v", g, err)
	}
}

func TestHandlerErrorComesBackAsRemoteError(t *testing.T) {
	port, _, stop := newCounterService(t)
	defer stop()
	self := sched.New("client")

	_, err := Call[failArgs, failReply](self, port, opFail, &failArgs{Msg: "boom"})
	if err == nil {
		t.Fatal("no error")
	}
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %T %v, want *RemoteError", err, err)
	}
	if re.Routine != "fail" || re.Msg != "boom" {
		t.Fatalf("remote error = %+v", re)
	}
	if re.Error() == "" {
		t.Fatal("empty error text")
	}
}

func TestUndefinedRoutineFails(t *testing.T) {
	port, _, stop := newCounterService(t)
	defer stop()
	self := sched.New("client")
	_, err := Call[getArgs, getReply](self, port, opUndefined, &getArgs{})
	if !errors.Is(err, ipc.ErrNoHandler) {
		t.Fatalf("err = %v, want ErrNoHandler", err)
	}
}

func TestCallToDeadPort(t *testing.T) {
	port, _, stop := newCounterService(t)
	port.TakeRef() // callers must hold a reference to the structure
	stop()         // kills the port
	self := sched.New("client")
	_, err := Call[getArgs, getReply](self, port, opGet, &getArgs{})
	if !errors.Is(err, ipc.ErrPortDead) {
		t.Fatalf("err = %v, want ErrPortDead", err)
	}
	port.Release(nil)
}

func TestDuplicateRoutinePanics(t *testing.T) {
	iface := NewInterface(ipc.KindCustom)
	Define(iface, 1, "a", func(ctx *ipc.Context, obj ipc.KObject, a *getArgs) (*getReply, error) {
		return &getReply{}, nil
	})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Define(iface, 1, "b", func(ctx *ipc.Context, obj ipc.KObject, a *getArgs) (*getReply, error) {
		return &getReply{}, nil
	})
}

func TestRoutinesListing(t *testing.T) {
	iface := NewInterface(ipc.KindCustom)
	Define(iface, 7, "seven", func(ctx *ipc.Context, obj ipc.KObject, a *getArgs) (*getReply, error) {
		return &getReply{}, nil
	})
	rs := iface.Routines()
	if len(rs) != 1 || rs[7] != "seven" {
		t.Fatalf("routines = %v", rs)
	}
	if iface.Kind() != ipc.KindCustom {
		t.Fatal("kind wrong")
	}
}

func TestReferenceBalanceThroughStubs(t *testing.T) {
	port, c, stop := newCounterService(t)
	self := sched.New("client")
	for i := 0; i < 50; i++ {
		if _, err := Call[addArgs, addReply](self, port, opAdd, &addArgs{Delta: 1}); err != nil {
			t.Fatal(err)
		}
	}
	stop()
	// After the server stops: creator ref only (port's ref released by
	// Destroy; every per-call translation reference was released by the
	// dispatcher).
	c.Lock()
	refs := c.Refs()
	c.Unlock()
	if refs != 1 {
		t.Fatalf("object refs after stub traffic = %d, want 1", refs)
	}
}

func TestConcurrentTypedClients(t *testing.T) {
	port, c, stop := newCounterService(t)
	defer stop()
	var clients []*sched.Thread
	for i := 0; i < 4; i++ {
		clients = append(clients, sched.Go(fmt.Sprintf("c%d", i), func(self *sched.Thread) {
			for j := 0; j < 100; j++ {
				if _, err := Call[addArgs, addReply](self, port, opAdd, &addArgs{Delta: 1}); err != nil {
					t.Errorf("call: %v", err)
					return
				}
			}
		}))
	}
	for _, cl := range clients {
		cl.Join()
	}
	c.Lock()
	v := c.value
	c.Unlock()
	if v != 400 {
		t.Fatalf("value = %d, want 400", v)
	}
}

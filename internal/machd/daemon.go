package machd

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"time"

	"machlock/internal/benchjson"
	"machlock/internal/monitor"
	"machlock/internal/trace"
)

// Options configures a daemon.
type Options struct {
	// World sizes the resident population.
	World WorldConfig
	// RPCAddr is the TCP address the netmsg RPC front end listens on
	// (default 127.0.0.1:0 — an ephemeral port; read the bound address
	// back with RPCAddr()).
	RPCAddr string
	// HTTPAddr is the observability surface's listen address (default
	// 127.0.0.1:0; empty string "none" semantics are not offered — a
	// daemon without its scrape endpoint would be blind).
	HTTPAddr string
	// Monitor configures the watchdog. Zero values get daemon-appropriate
	// defaults: deadlock detection on, a 1s long-hold threshold (orders
	// of magnitude above the chaos injector's holds), and a 1-minute
	// incident re-arm so a persistent anomaly keeps filing instead of
	// being deduplicated once per process lifetime.
	Monitor monitor.Config
	// SLO configures the objective accounting.
	SLO SLOConfig
}

func (o Options) withDefaults() Options {
	if o.RPCAddr == "" {
		o.RPCAddr = "127.0.0.1:0"
	}
	if o.HTTPAddr == "" {
		o.HTTPAddr = "127.0.0.1:0"
	}
	if o.Monitor.LongHoldNs == 0 {
		o.Monitor.LongHoldNs = int64(time.Second)
	}
	if o.Monitor.Rearm == 0 {
		o.Monitor.Rearm = time.Minute
	}
	return o
}

// Daemon is a running machd: the world, its network front end, the
// watchdog, the SLO collector, and the HTTP observability surface.
type Daemon struct {
	opts Options

	world *World
	col   *Collector
	mon   *monitor.Monitor

	rpcLn   net.Listener
	httpLn  net.Listener
	httpSrv *http.Server
}

// Start builds the world and brings every surface up. On return the
// daemon is serving RPCs on RPCAddr() and its scrape on HTTPAddr().
func Start(opts Options) (*Daemon, error) {
	opts = opts.withDefaults()
	d := &Daemon{
		opts: opts,
		col:  NewCollector(opts.SLO),
		mon:  monitor.New(opts.Monitor),
	}

	// The monitor first: Start installs the lock observers and the
	// opspan bridge, so every wait from the very first RPC is credited
	// to its operation span.
	d.mon.Start()

	world, err := NewWorld(opts.World)
	if err != nil {
		d.mon.Stop()
		return nil, err
	}
	d.world = world

	d.rpcLn, err = net.Listen("tcp", opts.RPCAddr)
	if err != nil {
		d.mon.Stop()
		return nil, fmt.Errorf("machd: rpc listen: %w", err)
	}
	d.httpLn, err = net.Listen("tcp", opts.HTTPAddr)
	if err != nil {
		d.rpcLn.Close()
		d.mon.Stop()
		return nil, fmt.Errorf("machd: http listen: %w", err)
	}

	world.Start(d.rpcLn)

	// One combined scrape: the monitor's debug tree is mounted whole,
	// but the exact /metrics pattern (which beats the tree's prefix
	// route) serves machlock_* and machd_* families together.
	mux := http.NewServeMux()
	mux.Handle("/debug/machlock/", d.mon.Handler())
	mux.HandleFunc("/debug/machlock/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		d.WriteMetrics(w)
	})
	d.httpSrv = &http.Server{Handler: mux}
	go d.httpSrv.Serve(d.httpLn)

	return d, nil
}

// RPCAddr returns the bound RPC address.
func (d *Daemon) RPCAddr() string { return d.rpcLn.Addr().String() }

// HTTPAddr returns the bound observability address.
func (d *Daemon) HTTPAddr() string { return d.httpLn.Addr().String() }

// Collector returns the daemon's SLO collector.
func (d *Daemon) Collector() *Collector { return d.col }

// Monitor returns the daemon's watchdog.
func (d *Daemon) Monitor() *monitor.Monitor { return d.mon }

// World returns the daemon's population.
func (d *Daemon) World() *World { return d.world }

// WriteMetrics renders the combined Prometheus scrape: trace per-class and
// per-op families, the monitor's self-families, then the machd SLO
// families — one exposition, so per-operation latency (with wait-vs-work
// split) sits next to per-class lock-wait quantiles and the budgets.
func (d *Daemon) WriteMetrics(w io.Writer) {
	d.mon.WriteMetrics(w)
	d.col.WriteProm(w)
}

// Stop tears the daemon down in dependency order: HTTP surface, network
// front end + world, then the watchdog.
func (d *Daemon) Stop() {
	d.httpSrv.Close()
	d.world.Stop()
	d.mon.Stop()
}

// opForScenario maps a scenario to its server-side operation class name.
var opForScenario = map[string]string{
	ScenLookup: "op.lookup",
	ScenChurn:  "op.port-churn",
	ScenSpawn:  "op.task-spawn",
	ScenTouch:  "op.vm-touch",
	ScenChaos:  "op.chaos",
}

// IncidentKinds lists the watchdog incident kinds a report covers.
var IncidentKinds = []monitor.IncidentKind{
	monitor.KindDeadlock, monitor.KindLongHold, monitor.KindLongWait, monitor.KindRefLeak,
}

// Report assembles the run's benchjson trajectory point: client-observed
// per-scenario quantiles merged with the matching operation spans'
// wait-vs-work split, the hottest lock classes, and the incident census.
func (d *Daemon) Report(generatedBy string, elapsed time.Duration) *benchjson.Report {
	r := benchjson.New("machd", generatedBy, runtime.GOMAXPROCS(0))
	r.DurationSec = elapsed.Seconds()

	ops := make(map[string]trace.OpProfile)
	for _, p := range trace.OpProfiles() {
		if p.Pkg == "machd" {
			ops[p.Name] = p
		}
	}

	sec := elapsed.Seconds()
	for _, s := range d.col.Snapshot() {
		if s.Offered == 0 {
			continue
		}
		sc := &benchjson.Scenario{
			Ops:      s.Done + s.Failed,
			Errors:   s.Failed,
			Timeouts: s.TimedOut,
			Shed:     s.Shed,
			P50Ns:    s.P50Ns,
			P90Ns:    s.P90Ns,
			P99Ns:    s.P99Ns,
			MaxNs:    s.MaxNs,
		}
		if sec > 0 {
			sc.OpsPerSec = float64(sc.Ops) / sec
		}
		if op, ok := ops[opForScenario[s.Name]]; ok {
			sc.WaitP50Ns = op.P50WaitNs
			sc.WaitP99Ns = op.P99WaitNs
			sc.WorkP50Ns = op.P50WorkNs
			sc.WorkP99Ns = op.P99WorkNs
		}
		r.Scenarios[s.Name] = sc
		r.Totals.Ops += sc.Ops
		r.Totals.Errors += sc.Errors
		r.Totals.Timeouts += sc.Timeouts
	}

	var offered int64
	for _, s := range d.col.Snapshot() {
		offered += s.Offered
	}
	for name, sc := range r.Scenarios {
		for _, s := range d.col.Snapshot() {
			if s.Name == name && offered > 0 {
				sc.MixShare = float64(s.Offered) / float64(offered)
			}
		}
	}
	if sec > 0 {
		r.Totals.OpsPerSec = float64(r.Totals.Ops) / sec
	}

	const topClasses = 12
	for i, p := range trace.Ranked() {
		if i >= topClasses {
			r.Notes = append(r.Notes,
				fmt.Sprintf("lock_classes truncated to the %d hottest (of %d ranked)",
					topClasses, len(trace.Ranked())))
			break
		}
		r.LockClasses = append(r.LockClasses, benchjson.LockClass{
			Class:          p.Pkg + "/" + p.Name,
			Kind:           p.Kind.String(),
			Acquisitions:   p.Acquisitions,
			Contended:      p.Contended,
			ContentionRate: p.ContentionRate,
			WaitP50Ns:      p.P50WaitNs,
			WaitP90Ns:      p.P90WaitNs,
			WaitP99Ns:      p.P99WaitNs,
			HoldP99Ns:      p.P99HoldNs,
		})
	}

	r.Incidents = make(map[string]int64, len(IncidentKinds))
	for _, k := range IncidentKinds {
		r.Incidents[string(k)] = d.mon.IncidentCount(k)
	}
	return r
}

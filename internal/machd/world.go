// Package machd is the long-running multi-tenant kernel service: a daemon
// that hosts a resident population of tasks, port name spaces, and vm
// objects, and serves sustained RPC traffic over real sockets by composing
// the repo's existing layers — ipc dispatch (Section 10), mig-style typed
// stubs, and the netmsg network server — into one front end.
//
// Where every earlier surface in the repo is a short-lived benchmark or
// simulator run, machd keeps the whole locking/refcount machinery hot for
// minutes at a time under an open-loop load generator (load.go), and its
// observability headline is the SLO layer (slo.go): per-operation latency
// quantiles with the wait-vs-work split, per-class lock-wait quantiles in
// the same scrape, rolling error/timeout budgets, a live scenario-mix
// gauge, and monitor incident capture that keeps firing for as long as an
// anomaly persists.
package machd

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"machlock/internal/core/cxlock"
	"machlock/internal/core/object"
	"machlock/internal/ipc"
	"machlock/internal/kern"
	"machlock/internal/mig"
	"machlock/internal/netmsg"
	"machlock/internal/sched"
	"machlock/internal/trace"
	"machlock/internal/vm"
)

// Observability classes. Every RPC handler runs under an operation span
// owned by the serving kernel thread, so the span engine splits its
// latency into lock wait and work — that is where the scrape's
// machlock_op_* families with pkg="machd" come from. The chaos lock gets
// its own complex-lock class so slow-holder injections are attributable.
var (
	opLookup = trace.NewOp("machd", "op.lookup")
	opChurn  = trace.NewOp("machd", "op.port-churn")
	opSpawn  = trace.NewOp("machd", "op.task-spawn")
	opTouch  = trace.NewOp("machd", "op.vm-touch")
	opChaos  = trace.NewOp("machd", "op.chaos")

	classChaos = trace.NewClass("machd", "machd.chaos", trace.KindComplex)
)

// RPC operation numbers of the machd interface.
const (
	OpLookup = iota
	OpChurn
	OpSpawn
	OpTouch
	OpChaos
	OpStat
)

// Typed routine arguments/replies (the mig ".defs" of the service; shared
// with the client-side stubs in load.go).

// LookupArgs resolves port name Name in task slot Slot's name space.
type LookupArgs struct {
	Slot int
	Name uint32
}

// LookupReply reports the translation outcome.
type LookupReply struct{ Found bool }

// ChurnArgs inserts a fresh port into slot Slot's space and removes it
// again — two write acquisitions on the reader-biased space lock.
type ChurnArgs struct{ Slot int }

// ChurnReply returns the space's size after the churn.
type ChurnReply struct{ Names int }

// SpawnArgs creates a short-lived task (with Threads kernel threads and
// Pages vm pages faulted in) and terminates it through the Section 10
// shutdown protocol.
type SpawnArgs struct {
	Threads int
	Pages   int
}

// SpawnReply carries the spawn sequence number.
type SpawnReply struct{ ID int64 }

// TouchArgs faults page Page of slot Slot's address space.
type TouchArgs struct {
	Slot int
	Page int
}

// TouchReply reports the map's cumulative fault count.
type TouchReply struct{ Faults int64 }

// ChaosArgs perturbs slot Slot: Kill destroys the slot's chaos port (a
// random deactivation — translations racing it see a dead port) and
// replaces it; otherwise the handler becomes a slow holder, pinning the
// slot's chaos lock for HoldUs microseconds.
type ChaosArgs struct {
	Slot   int
	Kill   bool
	HoldUs int
}

// ChaosReply reports which perturbation ran.
type ChaosReply struct{ Killed bool }

// StatArgs requests the world's shape and counters.
type StatArgs struct{}

// StatReply describes the world — the load generator discovers the
// population over the wire with this instead of sharing config.
type StatReply struct {
	Tasks        int
	PortsPerTask int
	VMPages      int
	PoolFree     int
	PoolTotal    int
	Spawns       int64
	Kills        int64
	Holds        int64
	Faults       int64
	Reclaims     int64
}

// WorldConfig sizes the resident population.
type WorldConfig struct {
	// Tasks is the resident task population (default 32).
	Tasks int
	// PortsPerTask is how many stable lookup ports each task's name space
	// holds (default 16).
	PortsPerTask int
	// VMPages is the size, in pages, of each task's mapped region
	// (default 64).
	VMPages int
	// PoolPages sizes the shared physical page pool. The default is half
	// the population's total mapping (Tasks*VMPages/2), so sustained
	// vm-touch traffic keeps the pageout daemon reclaiming — the paper's
	// shortage protocol runs continuously instead of never.
	PoolPages int
	// ServerThreads is the number of kernel threads draining the service
	// port (default 8).
	ServerThreads int
}

func (c WorldConfig) withDefaults() WorldConfig {
	if c.Tasks <= 0 {
		c.Tasks = 32
	}
	if c.PortsPerTask <= 0 {
		c.PortsPerTask = 16
	}
	if c.VMPages <= 0 {
		c.VMPages = 64
	}
	if c.PoolPages <= 0 {
		c.PoolPages = c.Tasks * c.VMPages / 2
		if c.PoolPages < 64 {
			c.PoolPages = 64
		}
	}
	if c.ServerThreads <= 0 {
		c.ServerThreads = 8
	}
	return c
}

// slot is one resident tenant: a task whose name space holds PortsPerTask
// stable lookup ports plus one chaos port, and whose map covers VMPages
// pages of one vm object.
type slot struct {
	task *kern.Task

	// chaosMu serializes chaos-port replacement for this slot (host
	// mutex: it orders handler-side bookkeeping, not kernel state).
	chaosMu   sync.Mutex
	chaosName ipc.Name

	// chaosLock is the slow-holder target: a sleepable complex lock a
	// chaos op can legally pin while sleeping, making every other chaos
	// op on the slot wait — visible in the machd/machd.chaos class.
	chaosLock cxlock.Lock
}

// serviceObj is the kernel object behind the machd service port.
type serviceObj struct {
	object.Object
	w *World
}

// World is the daemon's kernel-side state: the population, the shared page
// pool with its pageout daemon, and the dispatch loop threads.
type World struct {
	cfg     WorldConfig
	pool    *vm.PagePool
	pageout *vm.Pageout
	slots   []*slot

	svc     *serviceObj
	svcPort *ipc.Port
	srv     *ipc.Server
	servers []*sched.Thread

	listener   net.Listener
	exportDone chan struct{}

	spawnSeq atomic.Int64
	kills    atomic.Int64
	holds    atomic.Int64
	faults   atomic.Int64
}

// NewWorld builds the population: cfg.Tasks resident tasks, each with its
// lookup ports (names 1..PortsPerTask), a chaos port, and a VMPages-page
// mapping registered with the shared pageout daemon.
func NewWorld(cfg WorldConfig) (*World, error) {
	cfg = cfg.withDefaults()
	w := &World{cfg: cfg}
	w.pool = vm.NewPool(cfg.PoolPages)
	w.pageout = vm.NewPageout(w.pool)

	init := sched.New("machd-init")
	w.slots = make([]*slot, cfg.Tasks)
	for i := range w.slots {
		s := &slot{task: kern.NewTask(fmt.Sprintf("machd.task%d", i), w.pool)}
		// Sleepable: chaos holders sleep on purpose while holding it.
		s.chaosLock.InitWith(cxlock.Options{Sleep: true, Class: classChaos})
		for j := 0; j < cfg.PortsPerTask; j++ {
			p := ipc.NewPort(fmt.Sprintf("machd.t%d.p%d", i, j))
			s.task.InsertPort(init, p)
			p.Release(nil) // the name-space entry keeps its own reference
		}
		s.chaosName = insertChaosPort(init, s.task, i)
		obj := vm.NewObject(w.pool, uint64(cfg.VMPages))
		if err := s.task.Map().Allocate(init, 0, uint64(cfg.VMPages), obj, 0); err != nil {
			return nil, fmt.Errorf("machd: allocate slot %d: %w", i, err)
		}
		obj.Release(init) // the map entry keeps its own reference
		w.pageout.AddMap(s.task.Map())
		w.slots[i] = s
	}

	w.svc = &serviceObj{w: w}
	w.svc.Init("machd")
	w.svcPort = ipc.NewPort("machd.service")
	w.svc.TakeRef()
	w.svcPort.SetKObject(ipc.KindCustom, w.svc)
	w.srv = w.buildInterface().Server(ipc.Mach25)
	return w, nil
}

func insertChaosPort(t *sched.Thread, task *kern.Task, i int) ipc.Name {
	p := ipc.NewPort(fmt.Sprintf("machd.t%d.chaos", i))
	n := task.InsertPort(t, p)
	p.Release(nil)
	return n
}

// Start launches the dispatch loops, the pageout daemon, and the network
// export on l. The world owns l from here: Stop closes it.
func (w *World) Start(l net.Listener) {
	w.pageout.Start()
	w.servers = make([]*sched.Thread, w.cfg.ServerThreads)
	for i := range w.servers {
		w.svcPort.TakeRef()
		w.servers[i] = sched.Go(fmt.Sprintf("machd-server%d", i), func(self *sched.Thread) {
			w.srv.Serve(self, w.svcPort)
			w.svcPort.Release(nil)
		})
	}
	// Stop closes l, which terminates Export and its per-conn handlers.
	w.listener = l
	w.exportDone = make(chan struct{})
	go func() {
		defer close(w.exportDone)
		netmsg.Export(l, w.svcPort)
	}()
}

// Stop tears the world down: network surface first (so no new RPCs
// arrive), then the service port (terminating the dispatch loops), then
// the pageout daemon, then the population itself — every resident task
// runs the Section 10 shutdown protocol, so a leak-free run ends with the
// census back where it started.
func (w *World) Stop() {
	if w.listener != nil {
		w.listener.Close()
		<-w.exportDone
	}
	w.svcPort.Destroy()
	for _, t := range w.servers {
		t.Join()
	}
	w.pageout.Stop()
	reaper := sched.New("machd-reaper")
	for _, s := range w.slots {
		_ = s.task.Terminate(reaper)
	}
}

// Slots returns the population size.
func (w *World) Slots() int { return w.cfg.Tasks }

// ServicePort exposes the dispatch port (for in-process tests that skip
// the network).
func (w *World) ServicePort() *ipc.Port { return w.svcPort }

// buildInterface defines the typed routine set. Every handler opens an
// operation span on the serving thread, so the daemon's per-op quantiles
// carry the wait-vs-work split without the handlers doing any timing.
func (w *World) buildInterface() *mig.Interface {
	iface := mig.NewInterface(ipc.KindCustom)

	mig.Define(iface, OpLookup, "lookup",
		func(ctx *ipc.Context, obj ipc.KObject, a *LookupArgs) (*LookupReply, error) {
			defer trace.BeginSpan(ctx.Thread, opLookup).End()
			s := w.slot(a.Slot)
			p, err := s.task.TranslatePort(ctx.Thread, ipc.Name(a.Name))
			if err != nil {
				return nil, err
			}
			p.Release(nil)
			return &LookupReply{Found: true}, nil
		})

	mig.Define(iface, OpChurn, "port-churn",
		func(ctx *ipc.Context, obj ipc.KObject, a *ChurnArgs) (*ChurnReply, error) {
			defer trace.BeginSpan(ctx.Thread, opChurn).End()
			s := w.slot(a.Slot)
			p := ipc.NewPort("machd.churn")
			n := s.task.InsertPort(ctx.Thread, p)
			if err := s.task.Space().Remove(ctx.Thread, n); err != nil {
				p.Destroy()
				return nil, err
			}
			p.Destroy()
			return &ChurnReply{Names: s.task.Space().Len(ctx.Thread)}, nil
		})

	mig.Define(iface, OpSpawn, "task-spawn",
		func(ctx *ipc.Context, obj ipc.KObject, a *SpawnArgs) (*SpawnReply, error) {
			defer trace.BeginSpan(ctx.Thread, opSpawn).End()
			id := w.spawnSeq.Add(1)
			task := kern.NewTask(fmt.Sprintf("machd.spawn%d", id), w.pool)
			for i := 0; i < a.Threads; i++ {
				if _, err := task.CreateThread(fmt.Sprintf("machd.spawn%d.th%d", id, i)); err != nil {
					_ = task.Terminate(ctx.Thread)
					return nil, err
				}
			}
			if a.Pages > 0 {
				o := vm.NewObject(w.pool, uint64(a.Pages))
				if err := task.Map().Allocate(ctx.Thread, 0, uint64(a.Pages), o, 0); err != nil {
					o.Release(ctx.Thread)
					_ = task.Terminate(ctx.Thread)
					return nil, err
				}
				o.Release(ctx.Thread)
				for pg := 0; pg < a.Pages; pg++ {
					// Faulting the fresh mapping may hit a memory
					// shortage and sleep for the pageout daemon —
					// spawn tail latency under memory pressure is
					// exactly the production shape we want.
					if err := task.Map().Fault(ctx.Thread, uint64(pg), false); err != nil {
						_ = task.Terminate(ctx.Thread)
						return nil, err
					}
				}
			}
			if err := task.Terminate(ctx.Thread); err != nil {
				return nil, err
			}
			return &SpawnReply{ID: id}, nil
		})

	mig.Define(iface, OpTouch, "vm-touch",
		func(ctx *ipc.Context, obj ipc.KObject, a *TouchArgs) (*TouchReply, error) {
			defer trace.BeginSpan(ctx.Thread, opTouch).End()
			s := w.slot(a.Slot)
			va := uint64(a.Page % w.cfg.VMPages)
			if err := s.task.Map().Fault(ctx.Thread, va, false); err != nil {
				return nil, err
			}
			w.faults.Add(1)
			return &TouchReply{Faults: s.task.Map().Faults()}, nil
		})

	mig.Define(iface, OpChaos, "chaos",
		func(ctx *ipc.Context, obj ipc.KObject, a *ChaosArgs) (*ChaosReply, error) {
			defer trace.BeginSpan(ctx.Thread, opChaos).End()
			s := w.slot(a.Slot)
			if a.Kill {
				s.chaosMu.Lock()
				old := s.chaosName
				p, err := s.task.TranslatePort(ctx.Thread, old)
				if err == nil {
					_ = s.task.Space().Remove(ctx.Thread, old)
					p.Destroy() // random deactivation: drop our clone and kill it
				}
				s.chaosName = insertChaosPort(ctx.Thread, s.task, a.Slot)
				s.chaosMu.Unlock()
				w.kills.Add(1)
				return &ChaosReply{Killed: true}, nil
			}
			hold := time.Duration(a.HoldUs) * time.Microsecond
			if hold <= 0 {
				hold = time.Millisecond
			}
			s.chaosLock.Write(ctx.Thread)
			time.Sleep(hold) // a sleepable lock may legally be held across a sleep
			s.chaosLock.Done(ctx.Thread)
			w.holds.Add(1)
			return &ChaosReply{Killed: false}, nil
		})

	mig.Define(iface, OpStat, "stat",
		func(ctx *ipc.Context, obj ipc.KObject, a *StatArgs) (*StatReply, error) {
			return &StatReply{
				Tasks:        w.cfg.Tasks,
				PortsPerTask: w.cfg.PortsPerTask,
				VMPages:      w.cfg.VMPages,
				PoolFree:     w.pool.FreeCount(),
				PoolTotal:    w.pool.Total(),
				Spawns:       w.spawnSeq.Load(),
				Kills:        w.kills.Load(),
				Holds:        w.holds.Load(),
				Faults:       w.faults.Load(),
				Reclaims:     w.pageout.Reclaims(),
			}, nil
		})

	return iface
}

// slot returns the resident slot for an arbitrary client-chosen index.
func (w *World) slot(i int) *slot {
	if i < 0 {
		i = -i
	}
	return w.slots[i%len(w.slots)]
}

package machd

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"machlock/internal/stats"
)

// Scenario names of the built-in traffic mixes. A scenario is the unit of
// SLO accounting: every request the load generator offers is attributed to
// exactly one, and the scrape carries one sample per scenario per family.
const (
	ScenLookup = "lookup"
	ScenChurn  = "churn"
	ScenSpawn  = "spawn"
	ScenTouch  = "touch"
	ScenChaos  = "chaos"
)

// Scenarios lists every built-in scenario in stable order.
var Scenarios = []string{ScenLookup, ScenChurn, ScenSpawn, ScenTouch, ScenChaos}

// SLOConfig sets the service objectives the collector reports against.
type SLOConfig struct {
	// Window is the rolling accounting window for budgets and the mix
	// gauge (default 30s, 1s resolution).
	Window time.Duration
	// ErrorBudget is the tolerated failure ratio within Window (default
	// 0.01): budget remaining = 1 - failureRatio/ErrorBudget, clamped to
	// [0, 1]; 0 means the budget is spent.
	ErrorBudget float64
	// TimeoutBudget is the tolerated timeout ratio within Window
	// (default 0.05).
	TimeoutBudget float64
}

func (c SLOConfig) withDefaults() SLOConfig {
	if c.Window <= 0 {
		c.Window = 30 * time.Second
	}
	if c.ErrorBudget <= 0 {
		c.ErrorBudget = 0.01
	}
	if c.TimeoutBudget <= 0 {
		c.TimeoutBudget = 0.05
	}
	return c
}

// winBucket is one second of rolling accounting.
type winBucket struct {
	sec      int64 // unix second this bucket currently represents
	offered  int64
	done     int64
	failed   int64
	timedOut int64
}

// scenStats is one scenario's cumulative accounting.
type scenStats struct {
	offered  atomic.Int64 // arrivals attributed (completed + errored + shed)
	done     atomic.Int64 // completed without error
	failed   atomic.Int64 // completed with error
	timedOut atomic.Int64 // completed (either way) later than the deadline
	shed     atomic.Int64 // dropped at the open-loop queue, never attempted

	latency stats.Histogram // client-observed ns, successes only
}

// Collector is the daemon's SLO surface: cumulative per-scenario counters
// and client-latency histograms, plus a rolling one-second bucket ring
// that backs the error/timeout budgets and the live scenario-mix gauge.
// All recording paths are lock-free except the ring, which takes a plain
// mutex for its (cheap, per-event) bucket bookkeeping.
type Collector struct {
	cfg      SLOConfig
	scens    map[string]*scenStats
	inflight atomic.Int64

	mu   sync.Mutex
	ring []winBucket // len == Window seconds; indexed by sec % len
}

// NewCollector builds a collector covering the built-in scenarios.
func NewCollector(cfg SLOConfig) *Collector {
	cfg = cfg.withDefaults()
	c := &Collector{
		cfg:   cfg,
		scens: make(map[string]*scenStats, len(Scenarios)),
		ring:  make([]winBucket, int(cfg.Window/time.Second)),
	}
	for _, s := range Scenarios {
		c.scens[s] = &scenStats{}
	}
	return c
}

func (c *Collector) scen(name string) *scenStats {
	s := c.scens[name]
	if s == nil {
		panic(fmt.Sprintf("machd: unknown scenario %q", name))
	}
	return s
}

// bucket returns the ring bucket for the current second, recycling it if
// it still holds an older second's counts.
func (c *Collector) bucket() *winBucket {
	sec := time.Now().Unix()
	b := &c.ring[int(sec)%len(c.ring)]
	if b.sec != sec {
		*b = winBucket{sec: sec}
	}
	return b
}

// Offered records an arrival attributed to scenario.
func (c *Collector) Offered(scenario string) {
	c.scen(scenario).offered.Add(1)
	c.mu.Lock()
	c.bucket().offered++
	c.mu.Unlock()
}

// Shed records an arrival dropped at the open-loop queue (offered load the
// daemon never attempted). Call Offered first; Shed adds the drop.
func (c *Collector) Shed(scenario string) {
	c.scen(scenario).shed.Add(1)
}

// Begin marks a request entering service.
func (c *Collector) Begin() { c.inflight.Add(1) }

// Done records a completed request: err is the RPC outcome and latency is
// client-observed. timedOut marks a soft deadline miss (the request
// completed, but later than the caller's deadline).
func (c *Collector) Done(scenario string, latency time.Duration, err error, timedOut bool) {
	c.inflight.Add(-1)
	s := c.scen(scenario)
	c.mu.Lock()
	b := c.bucket()
	b.done++
	if err != nil {
		b.failed++
	}
	if timedOut {
		b.timedOut++
	}
	c.mu.Unlock()
	if timedOut {
		s.timedOut.Add(1)
	}
	if err != nil {
		s.failed.Add(1)
		return
	}
	s.done.Add(1)
	s.latency.Observe(int64(latency))
}

// windowTotals sums the ring buckets still inside the window.
func (c *Collector) windowTotals() (offered, done, failed, timedOut int64) {
	now := time.Now().Unix()
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.ring {
		b := &c.ring[i]
		if b.sec == 0 || now-b.sec >= int64(len(c.ring)) {
			continue
		}
		offered += b.offered
		done += b.done
		failed += b.failed
		timedOut += b.timedOut
	}
	return
}

// Budgets reports the rolling failure and timeout ratios and the budget
// remaining for each (1 = untouched, 0 = spent).
func (c *Collector) Budgets() (failRatio, failBudget, timeoutRatio, timeoutBudget float64) {
	_, done, failed, timedOut := c.windowTotals()
	if done > 0 {
		failRatio = float64(failed) / float64(done)
		timeoutRatio = float64(timedOut) / float64(done)
	}
	failBudget = clamp01(1 - failRatio/c.cfg.ErrorBudget)
	timeoutBudget = clamp01(1 - timeoutRatio/c.cfg.TimeoutBudget)
	return
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// ScenarioSnapshot is one scenario's cumulative state.
type ScenarioSnapshot struct {
	Name     string
	Offered  int64
	Done     int64
	Failed   int64
	TimedOut int64
	Shed     int64
	P50Ns    int64
	P90Ns    int64
	P99Ns    int64
	MaxNs    int64
}

// Snapshot returns every scenario's cumulative state in stable order.
func (c *Collector) Snapshot() []ScenarioSnapshot {
	out := make([]ScenarioSnapshot, 0, len(c.scens))
	for _, name := range Scenarios {
		s := c.scens[name]
		out = append(out, ScenarioSnapshot{
			Name:     name,
			Offered:  s.offered.Load(),
			Done:     s.done.Load(),
			Failed:   s.failed.Load(),
			TimedOut: s.timedOut.Load(),
			Shed:     s.shed.Load(),
			P50Ns:    s.latency.Quantile(0.50),
			P90Ns:    s.latency.Quantile(0.90),
			P99Ns:    s.latency.Quantile(0.99),
			MaxNs:    s.latency.Max(),
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Inflight returns the requests currently in service.
func (c *Collector) Inflight() int64 { return c.inflight.Load() }

// WriteProm appends the daemon's SLO families in Prometheus text
// exposition format 0.0.4. The caller writes the machlock_* families
// first (trace + monitor), so one scrape carries per-op latency with its
// wait-vs-work split right next to the per-class lock-wait quantiles and
// these service-level objectives.
func (c *Collector) WriteProm(w io.Writer) {
	snaps := c.Snapshot()

	fam := func(name, help, typ string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}

	fam("machd_requests_total", "Requests offered, by scenario.", "counter")
	for _, s := range snaps {
		fmt.Fprintf(w, "machd_requests_total{scenario=%q} %d\n", s.Name, s.Offered)
	}
	fam("machd_failures_total", "Requests completed with an error, by scenario.", "counter")
	for _, s := range snaps {
		fmt.Fprintf(w, "machd_failures_total{scenario=%q} %d\n", s.Name, s.Failed)
	}
	fam("machd_timeouts_total", "Requests that missed their soft deadline, by scenario.", "counter")
	for _, s := range snaps {
		fmt.Fprintf(w, "machd_timeouts_total{scenario=%q} %d\n", s.Name, s.TimedOut)
	}
	fam("machd_shed_total", "Open-loop arrivals dropped before service, by scenario.", "counter")
	for _, s := range snaps {
		fmt.Fprintf(w, "machd_shed_total{scenario=%q} %d\n", s.Name, s.Shed)
	}
	fam("machd_inflight", "Requests currently in service.", "gauge")
	fmt.Fprintf(w, "machd_inflight %d\n", c.Inflight())

	fam("machd_client_latency_ns", "Client-observed RPC latency quantiles, by scenario.", "summary")
	for _, s := range snaps {
		fmt.Fprintf(w, "machd_client_latency_ns{scenario=%q,quantile=\"0.5\"} %d\n", s.Name, s.P50Ns)
		fmt.Fprintf(w, "machd_client_latency_ns{scenario=%q,quantile=\"0.9\"} %d\n", s.Name, s.P90Ns)
		fmt.Fprintf(w, "machd_client_latency_ns{scenario=%q,quantile=\"0.99\"} %d\n", s.Name, s.P99Ns)
	}
	fam("machd_client_latency_ns_max", "Maximum client-observed RPC latency, by scenario.", "gauge")
	for _, s := range snaps {
		fmt.Fprintf(w, "machd_client_latency_ns_max{scenario=%q} %d\n", s.Name, s.MaxNs)
	}

	// Live mix: each scenario's share of the rolling window's offered
	// load (cumulative shares would hide a mix change mid-run; the window
	// makes the gauge track what the generator is doing right now —
	// approximated here from cumulative offers since the per-second ring
	// is not split by scenario; the ratio converges on the configured mix
	// within one window under steady offered load).
	var offered int64
	for _, s := range snaps {
		offered += s.Offered
	}
	fam("machd_scenario_mix", "Share of offered load, by scenario.", "gauge")
	for _, s := range snaps {
		share := 0.0
		if offered > 0 {
			share = float64(s.Offered) / float64(offered)
		}
		fmt.Fprintf(w, "machd_scenario_mix{scenario=%q} %g\n", s.Name, share)
	}

	failRatio, failBudget, timeoutRatio, timeoutBudget := c.Budgets()
	fam("machd_window_failure_ratio", "Failure ratio over the rolling window.", "gauge")
	fmt.Fprintf(w, "machd_window_failure_ratio %g\n", failRatio)
	fam("machd_window_timeout_ratio", "Timeout ratio over the rolling window.", "gauge")
	fmt.Fprintf(w, "machd_window_timeout_ratio %g\n", timeoutRatio)
	fam("machd_error_budget_remaining", "Rolling error budget remaining (1 = untouched, 0 = spent).", "gauge")
	fmt.Fprintf(w, "machd_error_budget_remaining{budget=\"errors\"} %g\n", failBudget)
	fmt.Fprintf(w, "machd_error_budget_remaining{budget=\"timeouts\"} %g\n", timeoutBudget)
}

package machd

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"machlock/internal/ipc"
	"machlock/internal/mig"
	"machlock/internal/netmsg"
	"machlock/internal/sched"
)

// Mix is a weighted traffic mix over the built-in scenarios.
type Mix map[string]int

// ParseMix parses "lookup=50,churn=15,spawn=10,touch=20,chaos=5" into a
// Mix. Unknown scenario names and non-positive weights are errors; omitted
// scenarios get weight 0.
func ParseMix(s string) (Mix, error) {
	m := Mix{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, w, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("machd: mix term %q: want name=weight", part)
		}
		name = strings.TrimSpace(name)
		known := false
		for _, k := range Scenarios {
			if k == name {
				known = true
				break
			}
		}
		if !known {
			return nil, fmt.Errorf("machd: unknown scenario %q (have %s)", name, strings.Join(Scenarios, ", "))
		}
		n, err := strconv.Atoi(strings.TrimSpace(w))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("machd: mix weight %q: want positive integer", w)
		}
		m[name] += n
	}
	if len(m) == 0 {
		return nil, fmt.Errorf("machd: empty mix")
	}
	return m, nil
}

// String renders the mix in stable order.
func (m Mix) String() string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = fmt.Sprintf("%s=%d", n, m[n])
	}
	return strings.Join(parts, ",")
}

// Shares returns each scenario's fraction of the total weight.
func (m Mix) Shares() map[string]float64 {
	total := 0
	for _, w := range m {
		total += w
	}
	out := make(map[string]float64, len(m))
	for n, w := range m {
		out[n] = float64(w) / float64(total)
	}
	return out
}

// DefaultMix is a production-flavored blend: name lookups dominate, with
// steady right churn, task lifecycle traffic, vm pressure, and a trickle
// of chaos.
var DefaultMix = Mix{ScenLookup: 50, ScenChurn: 15, ScenSpawn: 10, ScenTouch: 20, ScenChaos: 5}

// Named scenario mixes selectable by name (-mix flag, smoke target).
var NamedMixes = map[string]Mix{
	"default":      DefaultMix,
	"lookup-storm": {ScenLookup: 95, ScenChurn: 5},
	"churn-heavy":  {ScenLookup: 30, ScenChurn: 60, ScenChaos: 10},
	"spawn-flood":  {ScenSpawn: 80, ScenLookup: 20},
	"vm-pressure":  {ScenTouch: 70, ScenSpawn: 20, ScenLookup: 10},
	"chaos":        {ScenLookup: 40, ScenChurn: 20, ScenChaos: 40},
}

// LoadConfig drives RunLoad.
type LoadConfig struct {
	// Addr is the daemon's RPC listen address.
	Addr string
	// Conns is the number of TCP connections (proxy ports) to spread
	// calls over (default 4).
	Conns int
	// Workers is the number of concurrent client workers (default 16).
	Workers int
	// Rate is the open-loop arrival rate in requests/second (default
	// 2000). Arrivals are generated on a clock independent of
	// completions; when the queue backs up past QueueDepth, arrivals are
	// shed and counted, exactly like an overloaded front end.
	Rate float64
	// QueueDepth bounds the arrival queue (default 1024).
	QueueDepth int
	// Mix is the traffic blend (default DefaultMix).
	Mix Mix
	// Duration is how long to offer load (default 10s).
	Duration time.Duration
	// Timeout is the soft per-request deadline: requests completing later
	// count against the timeout budget (default 250ms; 0 disables).
	Timeout time.Duration
	// BadLookupPct sends that percentage of lookups to a name that does
	// not exist — deliberate failures that exercise the error budget.
	BadLookupPct int
	// KillPct is the share of chaos requests that kill a port instead of
	// holding the chaos lock (default 50).
	KillPct int
	// HoldUs is the chaos slow-holder duration in microseconds (default
	// 1000).
	HoldUs int
	// SpawnThreads and SpawnPages bound the per-spawn cost (defaults 1
	// thread, 4 pages).
	SpawnThreads int
	SpawnPages   int
	// Seed makes a run's random choices reproducible (default 1).
	Seed int64
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.Conns <= 0 {
		c.Conns = 4
	}
	if c.Workers <= 0 {
		c.Workers = 16
	}
	if c.Rate <= 0 {
		c.Rate = 2000
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.Mix == nil {
		c.Mix = DefaultMix
	}
	if c.Duration <= 0 {
		c.Duration = 10 * time.Second
	}
	if c.Timeout == 0 {
		c.Timeout = 250 * time.Millisecond
	}
	if c.KillPct <= 0 {
		c.KillPct = 50
	}
	if c.HoldUs <= 0 {
		c.HoldUs = 1000
	}
	if c.SpawnThreads <= 0 {
		c.SpawnThreads = 1
	}
	if c.SpawnPages <= 0 {
		c.SpawnPages = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// picker draws scenarios from the mix's weighted distribution.
type picker struct {
	names   []string
	cumsum  []int
	total   int
	rng     *rand.Rand
	rngLock sync.Mutex
}

func newPicker(m Mix, seed int64) *picker {
	p := &picker{rng: rand.New(rand.NewSource(seed))}
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		p.total += m[n]
		p.names = append(p.names, n)
		p.cumsum = append(p.cumsum, p.total)
	}
	return p
}

func (p *picker) pick() string {
	p.rngLock.Lock()
	v := p.rng.Intn(p.total)
	p.rngLock.Unlock()
	for i, c := range p.cumsum {
		if v < c {
			return p.names[i]
		}
	}
	return p.names[len(p.names)-1]
}

// LoadResult summarizes a RunLoad (the per-scenario numbers live in the
// Collector the caller passed in).
type LoadResult struct {
	Elapsed time.Duration
	// Stat is the world's self-description at the end of the run.
	Stat StatReply
}

// RunLoad offers cfg.Duration of open-loop load to the daemon at cfg.Addr
// and records every outcome into col. It discovers the world's shape over
// the wire (OpStat), so generator and daemon share no state but the
// socket.
func RunLoad(cfg LoadConfig, col *Collector) (*LoadResult, error) {
	cfg = cfg.withDefaults()

	proxies := make([]*ipc.Port, cfg.Conns)
	for i := range proxies {
		p, err := netmsg.Proxy(cfg.Addr, fmt.Sprintf("machload%d", i))
		if err != nil {
			for _, q := range proxies[:i] {
				q.Destroy()
			}
			return nil, fmt.Errorf("machd: dial %s: %w", cfg.Addr, err)
		}
		proxies[i] = p
	}
	defer func() {
		for _, p := range proxies {
			p.Destroy()
		}
	}()

	statThread := sched.New("machload-stat")
	stat, err := mig.Call[StatArgs, StatReply](statThread, proxies[0], OpStat, &StatArgs{})
	if err != nil {
		return nil, fmt.Errorf("machd: stat: %w", err)
	}

	pick := newPicker(cfg.Mix, cfg.Seed)
	arrivals := make(chan string, cfg.QueueDepth)

	// Workers: each owns one kernel-thread identity, one RNG, and one
	// proxy (round-robin), and drains arrivals until the channel closes.
	var wg sync.WaitGroup
	for i := 0; i < cfg.Workers; i++ {
		wg.Add(1)
		w := &worker{
			cfg:   cfg,
			stat:  stat,
			col:   col,
			proxy: proxies[i%len(proxies)],
			rng:   rand.New(rand.NewSource(cfg.Seed + int64(i) + 1)),
			self:  sched.New(fmt.Sprintf("machload-w%d", i)),
		}
		go func() {
			defer wg.Done()
			for s := range arrivals {
				w.one(s)
			}
		}()
	}

	// Open-loop arrival clock: an accumulator turns rate×dt into whole
	// arrivals each tick. Completions never feed back into this loop —
	// if the daemon slows down, the queue fills and arrivals shed.
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	tick := time.NewTicker(2 * time.Millisecond)
	last := start
	var acc float64
	for now := range tick.C {
		if now.After(deadline) {
			break
		}
		acc += cfg.Rate * now.Sub(last).Seconds()
		last = now
		for ; acc >= 1; acc-- {
			s := pick.pick()
			col.Offered(s)
			select {
			case arrivals <- s:
			default:
				col.Shed(s)
			}
		}
	}
	tick.Stop()
	close(arrivals)
	wg.Wait()

	end, err := mig.Call[StatArgs, StatReply](statThread, proxies[0], OpStat, &StatArgs{})
	if err != nil {
		return nil, fmt.Errorf("machd: final stat: %w", err)
	}
	return &LoadResult{Elapsed: time.Since(start), Stat: *end}, nil
}

// worker executes one request per arrival.
type worker struct {
	cfg   LoadConfig
	stat  *StatReply
	col   *Collector
	proxy *ipc.Port
	rng   *rand.Rand
	self  *sched.Thread
}

func (w *worker) one(scenario string) {
	w.col.Begin()
	start := time.Now()
	err := w.call(scenario)
	lat := time.Since(start)
	timedOut := w.cfg.Timeout > 0 && lat > w.cfg.Timeout
	w.col.Done(scenario, lat, err, timedOut)
}

func (w *worker) call(scenario string) error {
	slot := w.rng.Intn(w.stat.Tasks)
	switch scenario {
	case ScenLookup:
		name := uint32(1 + w.rng.Intn(w.stat.PortsPerTask))
		if w.cfg.BadLookupPct > 0 && w.rng.Intn(100) < w.cfg.BadLookupPct {
			name = 1 << 30 // never allocated: deliberate failure
		}
		_, err := mig.Call[LookupArgs, LookupReply](w.self, w.proxy, OpLookup,
			&LookupArgs{Slot: slot, Name: name})
		return err
	case ScenChurn:
		_, err := mig.Call[ChurnArgs, ChurnReply](w.self, w.proxy, OpChurn,
			&ChurnArgs{Slot: slot})
		return err
	case ScenSpawn:
		_, err := mig.Call[SpawnArgs, SpawnReply](w.self, w.proxy, OpSpawn,
			&SpawnArgs{Threads: w.cfg.SpawnThreads, Pages: w.cfg.SpawnPages})
		return err
	case ScenTouch:
		_, err := mig.Call[TouchArgs, TouchReply](w.self, w.proxy, OpTouch,
			&TouchArgs{Slot: slot, Page: w.rng.Intn(w.stat.VMPages)})
		return err
	case ScenChaos:
		_, err := mig.Call[ChaosArgs, ChaosReply](w.self, w.proxy, OpChaos,
			&ChaosArgs{
				Slot:   slot,
				Kill:   w.rng.Intn(100) < w.cfg.KillPct,
				HoldUs: w.cfg.HoldUs,
			})
		return err
	default:
		return fmt.Errorf("machd: unknown scenario %q", scenario)
	}
}

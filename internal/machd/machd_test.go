package machd

import (
	"errors"
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"
)

func TestParseMix(t *testing.T) {
	m, err := ParseMix("lookup=50, churn=15,spawn=10")
	if err != nil {
		t.Fatal(err)
	}
	if m[ScenLookup] != 50 || m[ScenChurn] != 15 || m[ScenSpawn] != 10 {
		t.Fatalf("mix = %v", m)
	}
	for _, bad := range []string{"", "bogus=1", "lookup", "lookup=0", "lookup=-3", "lookup=x"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) accepted", bad)
		}
	}
	shares := DefaultMix.Shares()
	var sum float64
	for _, v := range shares {
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("shares sum to %v", sum)
	}
}

func TestCollectorBudgets(t *testing.T) {
	c := NewCollector(SLOConfig{Window: 5 * time.Second, ErrorBudget: 0.10, TimeoutBudget: 0.10})
	for i := 0; i < 100; i++ {
		c.Offered(ScenLookup)
		c.Begin()
		var err error
		if i < 5 {
			err = errors.New("boom") // 5% failure: half the 10% budget
		}
		c.Done(ScenLookup, time.Millisecond, err, false)
	}
	failRatio, failBudget, _, timeoutBudget := c.Budgets()
	if failRatio < 0.04 || failRatio > 0.06 {
		t.Fatalf("failRatio = %v, want ~0.05", failRatio)
	}
	if failBudget < 0.4 || failBudget > 0.6 {
		t.Fatalf("failBudget = %v, want ~0.5", failBudget)
	}
	if timeoutBudget != 1 {
		t.Fatalf("timeoutBudget = %v, want 1 (no timeouts)", timeoutBudget)
	}
	snap := c.Snapshot()
	var lookup *ScenarioSnapshot
	for i := range snap {
		if snap[i].Name == ScenLookup {
			lookup = &snap[i]
		}
	}
	if lookup == nil || lookup.Offered != 100 || lookup.Done != 95 || lookup.Failed != 5 {
		t.Fatalf("snapshot = %+v", lookup)
	}
}

// TestSLOPromGoldenSchema pins the machd families appended to the
// combined scrape: names, types, and label keys.
func TestSLOPromGoldenSchema(t *testing.T) {
	c := NewCollector(SLOConfig{})
	c.Offered(ScenLookup)
	c.Begin()
	c.Done(ScenLookup, time.Millisecond, nil, false)

	var sb strings.Builder
	c.WriteProm(&sb)
	text := sb.String()

	typeRe := regexp.MustCompile(`(?m)^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (\w+)$`)
	got := map[string]string{}
	for _, m := range typeRe.FindAllStringSubmatch(text, -1) {
		got[m[1]] = m[2]
	}
	want := map[string]string{
		"machd_requests_total":         "counter",
		"machd_failures_total":         "counter",
		"machd_timeouts_total":         "counter",
		"machd_shed_total":             "counter",
		"machd_inflight":               "gauge",
		"machd_client_latency_ns":      "summary",
		"machd_client_latency_ns_max":  "gauge",
		"machd_scenario_mix":           "gauge",
		"machd_window_failure_ratio":   "gauge",
		"machd_window_timeout_ratio":   "gauge",
		"machd_error_budget_remaining": "gauge",
	}
	for fam, typ := range want {
		if got[fam] != typ {
			t.Errorf("family %s: type %q, want %q", fam, got[fam], typ)
		}
	}
	for fam := range got {
		if _, ok := want[fam]; !ok {
			t.Errorf("new machd family %s — add it to the golden schema deliberately", fam)
		}
	}
	for _, sample := range []string{
		`machd_requests_total{scenario="lookup"} 1`,
		`machd_client_latency_ns{scenario="lookup",quantile="0.5"}`,
		`machd_client_latency_ns{scenario="lookup",quantile="0.9"}`,
		`machd_client_latency_ns{scenario="lookup",quantile="0.99"}`,
		`machd_error_budget_remaining{budget="errors"}`,
		`machd_error_budget_remaining{budget="timeouts"}`,
	} {
		if !strings.Contains(text, sample) {
			t.Errorf("exposition missing %q", sample)
		}
	}
}

// TestDaemonEndToEnd is the tentpole's in-process smoke: boot the daemon
// on ephemeral ports, offer a short burst of every scenario over real
// sockets, and check the SLO surface — quantiles recorded per scenario,
// the combined scrape carrying lock-class and op families next to the
// machd families, a validating benchjson report, and no incidents.
func TestDaemonEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("sustained-load test")
	}
	d, err := Start(Options{
		World: WorldConfig{Tasks: 8, PortsPerTask: 8, VMPages: 16, ServerThreads: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Stop()

	res, err := RunLoad(LoadConfig{
		Addr:     d.RPCAddr(),
		Conns:    2,
		Workers:  8,
		Rate:     1500,
		Duration: 2 * time.Second,
		HoldUs:   200,
		Mix:      DefaultMix,
	}, d.Collector())
	if err != nil {
		t.Fatal(err)
	}

	// Every scenario must have been offered and completed work.
	done := 0
	for _, s := range d.Collector().Snapshot() {
		if s.Offered == 0 {
			t.Errorf("scenario %s: never offered", s.Name)
		}
		if s.Done > 0 {
			done++
			if s.P50Ns <= 0 || s.P99Ns < s.P50Ns {
				t.Errorf("scenario %s: quantiles p50=%d p99=%d", s.Name, s.P50Ns, s.P99Ns)
			}
		}
	}
	if done < 4 {
		t.Fatalf("only %d scenarios completed work", done)
	}

	// The world actually exercised its subsystems.
	if res.Stat.Spawns == 0 || res.Stat.Faults == 0 || res.Stat.Kills+res.Stat.Holds == 0 {
		t.Fatalf("world untouched: %+v", res.Stat)
	}

	// One combined scrape over HTTP: machd SLO families next to the
	// machlock trace + monitor families.
	resp, err := http.Get("http://" + d.HTTPAddr() + "/debug/machlock/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	scrape := string(body)
	for _, family := range []string{
		"machlock_acquisitions_total",
		"machlock_wait_time_ns",
		"machlock_op_latency_ns",
		"machlock_op_lock_wait_ns",
		"machlock_op_work_ns",
		"machlock_monitor_up",
		"machd_requests_total",
		"machd_client_latency_ns",
		"machd_scenario_mix",
		"machd_error_budget_remaining",
	} {
		if !strings.Contains(scrape, family) {
			t.Errorf("scrape missing family %s", family)
		}
	}
	if !strings.Contains(scrape, `machlock_op_latency_ns{pkg="machd",op="op.lookup",quantile="0.5"}`) {
		t.Error("scrape missing machd op quantiles")
	}

	// The trajectory report validates and covers the mix.
	r := d.Report("machd_test", res.Elapsed)
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(r.Scenarios) < 4 {
		t.Fatalf("report has %d scenarios", len(r.Scenarios))
	}
	if len(r.LockClasses) == 0 {
		t.Fatal("report has no lock classes")
	}

	// A healthy run files nothing.
	for _, k := range IncidentKinds {
		if n := d.Monitor().IncidentCount(k); n != 0 {
			t.Errorf("%d %s incidents during healthy run", n, k)
		}
	}
}

// TestDaemonStopIsClean pins the teardown ordering: Stop returns (no
// wedged server threads, no leaked Export goroutine) and the RPC port
// stops answering.
func TestDaemonStopIsClean(t *testing.T) {
	d, err := Start(Options{
		World: WorldConfig{Tasks: 2, PortsPerTask: 2, VMPages: 4, ServerThreads: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := make(chan struct{})
	go func() {
		d.Stop()
		close(res)
	}()
	select {
	case <-res:
	case <-time.After(10 * time.Second):
		t.Fatal("daemon Stop wedged")
	}
}

package hw

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestCellInitialValue(t *testing.T) {
	m := New(2)
	c := m.NewCell(42)
	if got := c.Value(); got != 42 {
		t.Fatalf("initial value = %d, want 42", got)
	}
	if got := c.Load(m.CPU(0)); got != 42 {
		t.Fatalf("Load = %d, want 42", got)
	}
}

func TestCellLoadMissThenHit(t *testing.T) {
	m := New(2)
	c := m.NewCell(7)
	cpu := m.CPU(0)

	c.Load(cpu) // miss: fill Shared
	if got := m.BusTransactions(); got != 1 {
		t.Fatalf("bus after first load = %d, want 1", got)
	}
	c.Load(cpu) // hit
	c.Load(cpu) // hit
	if got := m.BusTransactions(); got != 1 {
		t.Fatalf("bus after repeated loads = %d, want 1 (hits must be free)", got)
	}
}

func TestCellStoreInvalidatesRemoteCopies(t *testing.T) {
	m := New(3)
	c := m.NewCell(0)
	c.Load(m.CPU(0))
	c.Load(m.CPU(1))
	m.ResetBus()

	c.Store(m.CPU(2), 5) // one ownership transaction
	if got := m.BusTransactions(); got != 1 {
		t.Fatalf("bus after store = %d, want 1", got)
	}
	// Both remote CPUs now miss.
	c.Load(m.CPU(0))
	c.Load(m.CPU(1))
	if got := m.BusTransactions(); got != 3 {
		t.Fatalf("bus after remote reloads = %d, want 3", got)
	}
	if got := c.Load(m.CPU(0)); got != 5 {
		t.Fatalf("remote load saw %d, want 5 (coherence broken)", got)
	}
}

func TestCellModifiedStoreHitIsFreeWriteBack(t *testing.T) {
	m := New(2)
	c := m.NewCell(0)
	cpu := m.CPU(0)
	c.Store(cpu, 1)
	m.ResetBus()
	for i := 0; i < 10; i++ {
		c.Store(cpu, int64(i))
	}
	if got := m.BusTransactions(); got != 0 {
		t.Fatalf("write-back stores in Modified state cost %d transactions, want 0", got)
	}
}

func TestCellWriteThroughStoresAlwaysCost(t *testing.T) {
	m := NewWithConfig(Config{CPUs: 2, WriteThrough: true})
	c := m.NewCell(0)
	cpu := m.CPU(0)
	c.Store(cpu, 1)
	m.ResetBus()
	for i := 0; i < 10; i++ {
		c.Store(cpu, int64(i))
	}
	if got := m.BusTransactions(); got != 10 {
		t.Fatalf("write-through stores cost %d transactions, want 10", got)
	}
}

func TestCellSwapReturnsOldValue(t *testing.T) {
	m := New(2)
	c := m.NewCell(0)
	if old := c.Swap(m.CPU(0), 1); old != 0 {
		t.Fatalf("first Swap returned %d, want 0", old)
	}
	if old := c.Swap(m.CPU(1), 1); old != 1 {
		t.Fatalf("second Swap returned %d, want 1", old)
	}
}

func TestCellSwapPingPongCostsBusTraffic(t *testing.T) {
	// Two CPUs alternately swapping must pay an ownership transfer each
	// time: the cache-line ping-pong the paper's TTAS discussion targets.
	m := New(2)
	c := m.NewCell(0)
	c.Swap(m.CPU(1), 1) // line ends up Modified on CPU 1
	m.ResetBus()
	for i := 0; i < 10; i++ {
		c.Swap(m.CPU(i%2), 1) // every swap transfers ownership
	}
	if got := m.BusTransactions(); got != 10 {
		t.Fatalf("alternating swaps cost %d transactions, want 10", got)
	}
}

func TestCellRepeatedSwapBySameCPUIsFree(t *testing.T) {
	m := New(2)
	c := m.NewCell(0)
	cpu := m.CPU(0)
	c.Swap(cpu, 1)
	m.ResetBus()
	for i := 0; i < 10; i++ {
		c.Swap(cpu, 1)
	}
	if got := m.BusTransactions(); got != 0 {
		t.Fatalf("same-CPU swaps in Modified state cost %d, want 0 (write-back)", got)
	}
}

func TestCellCompareAndSwap(t *testing.T) {
	m := New(2)
	c := m.NewCell(3)
	if c.CompareAndSwap(m.CPU(0), 4, 9) {
		t.Fatal("CAS with wrong old value succeeded")
	}
	if got := c.Value(); got != 3 {
		t.Fatalf("value after failed CAS = %d, want 3", got)
	}
	if !c.CompareAndSwap(m.CPU(0), 3, 9) {
		t.Fatal("CAS with right old value failed")
	}
	if got := c.Value(); got != 9 {
		t.Fatalf("value after CAS = %d, want 9", got)
	}
}

func TestCellAdd(t *testing.T) {
	m := New(2)
	c := m.NewCell(10)
	if got := c.Add(m.CPU(0), 5); got != 15 {
		t.Fatalf("Add returned %d, want 15", got)
	}
	if got := c.Add(m.CPU(1), -20); got != -5 {
		t.Fatalf("Add returned %d, want -5", got)
	}
}

func TestCellStats(t *testing.T) {
	m := New(2)
	c := m.NewCell(0)
	c.Load(m.CPU(0))
	c.Load(m.CPU(0))
	c.Store(m.CPU(1), 1)
	c.Swap(m.CPU(0), 2)
	s := c.Stats()
	if s.Loads != 2 || s.Stores != 1 || s.RMWs != 1 {
		t.Fatalf("stats = %+v, want Loads=2 Stores=1 RMWs=1", s)
	}
	if s.LoadMisses != 1 {
		t.Fatalf("load misses = %d, want 1", s.LoadMisses)
	}
	c.ResetStats()
	if s := c.Stats(); s.Loads != 0 || s.StoreTxns != 0 {
		t.Fatalf("stats after reset = %+v, want zeros", s)
	}
}

// TestCellSwapAtomicity hammers a cell with concurrent swap-based increments
// (read-modify-write via Swap exchange loop) and checks no update is lost.
func TestCellSwapAtomicity(t *testing.T) {
	m := New(4)
	c := m.NewCell(0)
	const perCPU = 1000
	var wg sync.WaitGroup
	for i := 0; i < m.NCPU(); i++ {
		wg.Add(1)
		go func(cpu *CPU) {
			defer wg.Done()
			for j := 0; j < perCPU; j++ {
				c.Add(cpu, 1)
			}
		}(m.CPU(i))
	}
	wg.Wait()
	if got := c.Value(); got != int64(m.NCPU()*perCPU) {
		t.Fatalf("value = %d, want %d (lost updates)", got, m.NCPU()*perCPU)
	}
}

// TestCellCASAtomicity does the same with CAS loops.
func TestCellCASAtomicity(t *testing.T) {
	m := New(4)
	c := m.NewCell(0)
	const perCPU = 500
	var wg sync.WaitGroup
	for i := 0; i < m.NCPU(); i++ {
		wg.Add(1)
		go func(cpu *CPU) {
			defer wg.Done()
			for j := 0; j < perCPU; j++ {
				for {
					old := c.Load(cpu)
					if c.CompareAndSwap(cpu, old, old+1) {
						break
					}
				}
			}
		}(m.CPU(i))
	}
	wg.Wait()
	if got := c.Value(); got != int64(m.NCPU()*perCPU) {
		t.Fatalf("value = %d, want %d (lost updates)", got, m.NCPU()*perCPU)
	}
}

// Property: for any sequence of single-CPU operations, the cell behaves like
// a plain variable (linearizable single-threaded semantics).
func TestCellSequentialSemanticsQuick(t *testing.T) {
	type op struct {
		Kind uint8 // 0 load, 1 store, 2 swap, 3 add
		CPU  uint8
		Val  int16
	}
	f := func(ops []op) bool {
		m := New(4)
		c := m.NewCell(0)
		var ref int64
		for _, o := range ops {
			cpu := m.CPU(int(o.CPU) % 4)
			v := int64(o.Val)
			switch o.Kind % 4 {
			case 0:
				if c.Load(cpu) != ref {
					return false
				}
			case 1:
				c.Store(cpu, v)
				ref = v
			case 2:
				if c.Swap(cpu, v) != ref {
					return false
				}
				ref = v
			case 3:
				ref += v
				if c.Add(cpu, v) != ref {
					return false
				}
			}
		}
		return c.Value() == ref
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: bus transactions never exceed total accesses plus one ownership
// transfer per access (each access causes at most one transaction in
// write-back mode).
func TestCellBusBoundQuick(t *testing.T) {
	f := func(seq []uint8) bool {
		m := New(4)
		c := m.NewCell(0)
		for _, b := range seq {
			cpu := m.CPU(int(b>>2) % 4)
			switch b % 3 {
			case 0:
				c.Load(cpu)
			case 1:
				c.Store(cpu, int64(b))
			case 2:
				c.Swap(cpu, int64(b))
			}
		}
		return m.BusTransactions() <= int64(len(seq))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Package hw simulates the shared-memory multiprocessor hardware that the
// Mach locking paper (Black et al., ICPP 1991) assumes: a set of processors
// with coherent caches, atomic read-modify-write instructions on memory
// cells, per-processor interrupt priority levels (SPLs), and inter-processor
// interrupts (IPIs).
//
// The paper's argument for test-and-test-and-set locks is entirely about
// interconnect (bus) traffic generated while spinning on a cached lock word,
// so the central abstraction here is Cell: a memory word whose per-CPU cache
// line states follow a simplified MSI coherence protocol and whose bus
// transactions are counted. A Machine can also be configured write-through,
// reproducing the cache regime the paper cites as the reason TAS must be
// replaced by TTAS.
//
// Interrupts are delivered at explicit checkpoints: code that "runs on" a
// simulated CPU calls Checkpoint (directly or via a spinning lock) and any
// pending interrupts above the CPU's current SPL run inline, at the
// interrupt's priority. This is exactly the delivery discipline the paper's
// Section 7 deadlock scenario depends on — a processor that has raised its
// SPL does not accept the interrupt until it lowers it again.
package hw

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Level is an interrupt priority level. Higher levels block lower- and
// equal-priority interrupts, following classic spl semantics: an interrupt
// of priority p is deliverable only while the CPU's current level is
// strictly less than p.
type Level int32

// Interrupt priority levels, lowest to highest. The names follow the
// paper's Section 7 ("spl0, splvm, splnet, splclock, etc.").
const (
	SPL0     Level = 0 // normal execution, all interrupts enabled
	SPLSOFT  Level = 1
	SPLNET   Level = 2
	SPLTTY   Level = 3
	SPLVM    Level = 4 // TLB shootdown / virtual memory interrupts
	SPLCLOCK Level = 5
	SPLSCHED Level = 6
	SPLHIGH  Level = 7 // blocks all interrupts
)

// String implements fmt.Stringer for SPL levels.
func (l Level) String() string {
	switch l {
	case SPL0:
		return "spl0"
	case SPLSOFT:
		return "splsoft"
	case SPLNET:
		return "splnet"
	case SPLTTY:
		return "spltty"
	case SPLVM:
		return "splvm"
	case SPLCLOCK:
		return "splclock"
	case SPLSCHED:
		return "splsched"
	case SPLHIGH:
		return "splhigh"
	default:
		return fmt.Sprintf("spl(%d)", int32(l))
	}
}

// Interrupt is a deliverable interrupt: a priority level and a handler that
// runs on the receiving CPU with that CPU's SPL raised to the interrupt's
// level for the duration of the handler.
type Interrupt struct {
	Level   Level
	Handler func(c *CPU)
}

// Config controls machine construction.
type Config struct {
	// CPUs is the number of simulated processors (>= 1).
	CPUs int
	// WriteThrough models write-through caches: every store or atomic
	// read-modify-write generates a bus transaction even when the line is
	// already held modified. This is the cache regime in which the paper
	// says a plain test-and-set spin is unacceptable.
	WriteThrough bool
	// Cells is the number of NUMA-style processor cells the CPUs are
	// partitioned into (contiguous blocks of CPU ids). Within a cell,
	// cache-line ownership moves cheaply; a transfer that crosses a cell
	// boundary is additionally counted as a cross-cell transfer, the
	// traffic a topology-aware (cohort) lock exists to avoid. Zero or one
	// means a flat machine: every transfer is local.
	Cells int
}

// Machine is a simulated shared-memory multiprocessor.
type Machine struct {
	cpus         []*CPU
	writeThrough bool
	cells        int
	bus          atomic.Int64 // total interconnect transactions
	crossCell    atomic.Int64 // line ownership transfers crossing a cell boundary
}

// New creates a machine with n processors and write-back caches.
func New(n int) *Machine {
	return NewWithConfig(Config{CPUs: n})
}

// NewWithConfig creates a machine from an explicit configuration.
func NewWithConfig(cfg Config) *Machine {
	if cfg.CPUs < 1 {
		panic("hw: machine needs at least one CPU")
	}
	cells := cfg.Cells
	if cells < 1 {
		cells = 1
	}
	if cells > cfg.CPUs {
		panic("hw: more cells than CPUs")
	}
	m := &Machine{writeThrough: cfg.WriteThrough, cells: cells}
	m.cpus = make([]*CPU, cfg.CPUs)
	for i := range m.cpus {
		m.cpus[i] = &CPU{m: m, id: i}
	}
	return m
}

// NCPU returns the number of simulated processors.
func (m *Machine) NCPU() int { return len(m.cpus) }

// CPU returns the processor with the given id.
func (m *Machine) CPU(i int) *CPU { return m.cpus[i] }

// CPUs returns all processors in id order.
func (m *Machine) CPUs() []*CPU { return m.cpus }

// WriteThrough reports whether the machine models write-through caches.
func (m *Machine) WriteThrough() bool { return m.writeThrough }

// NCells returns the number of processor cells (NUMA domains). A flat
// machine has one cell.
func (m *Machine) NCells() int { return m.cells }

// CellOf returns the cell the given CPU id belongs to. CPUs are split into
// contiguous, evenly sized blocks: with 8 CPUs in 2 cells, CPUs 0-3 are
// cell 0 and CPUs 4-7 cell 1.
func (m *Machine) CellOf(cpuID int) int {
	return cpuID * m.cells / len(m.cpus)
}

// CrossCellTransfers returns how many cache-line ownership transfers
// crossed a cell boundary since the last ResetBus. On a flat machine the
// count is always zero. This is the metric a cohort lock minimizes: each
// cross-cell transfer of a lock word (and of the data it protects, which
// follows it) is the expensive remote-memory traffic of the topology.
func (m *Machine) CrossCellTransfers() int64 { return m.crossCell.Load() }

// BusTransactions returns the total number of interconnect transactions
// (cache fills, invalidations, write-throughs) performed since the last
// ResetBus. This is the paper's measure of the bandwidth wasted by spinning.
func (m *Machine) BusTransactions() int64 { return m.bus.Load() }

// ResetBus zeroes the interconnect transaction counter (and the cross-cell
// transfer counter alongside it) and returns the previous transaction total.
func (m *Machine) ResetBus() int64 {
	m.crossCell.Store(0)
	return m.bus.Swap(0)
}

func (m *Machine) busTransaction() { m.bus.Add(1) }

// CPU is one simulated processor. Exactly one goroutine may execute "on" a
// CPU at a time; that goroutine is responsible for calling Checkpoint at
// interruptible points (spin loops do this automatically).
type CPU struct {
	m  *Machine
	id int

	mu        sync.Mutex
	spl       Level
	pending   []Interrupt
	inHandler int

	interruptsTaken  atomic.Int64
	interruptsPosted atomic.Int64
	checkpoints      atomic.Int64
}

// ID returns the processor number.
func (c *CPU) ID() int { return c.id }

// CellID returns the cell (NUMA domain) this CPU belongs to.
func (c *CPU) CellID() int { return c.m.CellOf(c.id) }

// Machine returns the machine this CPU belongs to.
func (c *CPU) Machine() *Machine { return c.m }

// SPL returns the CPU's current interrupt priority level.
func (c *CPU) SPL() Level {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.spl
}

// SetSPL sets the interrupt priority level and returns the previous level.
// Lowering the level immediately delivers any pending interrupts that the
// new level permits, mirroring real splx behaviour.
func (c *CPU) SetSPL(l Level) Level {
	c.mu.Lock()
	old := c.spl
	c.spl = l
	c.mu.Unlock()
	if l < old {
		c.Checkpoint()
	}
	return old
}

// Splx restores a previously saved level (identical to SetSPL; the name
// matches kernel convention and reads better at call sites).
func (c *CPU) Splx(l Level) { c.SetSPL(l) }

// Post queues an interrupt for this CPU. It may be called from any
// goroutine. The interrupt runs at the receiving CPU's next checkpoint at
// which the CPU's SPL admits it.
func (c *CPU) Post(i Interrupt) {
	if i.Handler == nil {
		panic("hw: interrupt with nil handler")
	}
	c.interruptsPosted.Add(1)
	c.mu.Lock()
	c.pending = append(c.pending, i)
	c.mu.Unlock()
}

// PendingInterrupts returns the number of queued, not-yet-delivered
// interrupts.
func (c *CPU) PendingInterrupts() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// Checkpoint delivers pending interrupts whose priority exceeds the CPU's
// current SPL. Handlers run on the calling goroutine with the SPL raised to
// the interrupt's level; nested interrupts of still-higher priority can be
// taken from within a handler if the handler itself checkpoints.
func (c *CPU) Checkpoint() {
	c.checkpoints.Add(1)
	for {
		c.mu.Lock()
		idx := -1
		best := c.spl
		for i, intr := range c.pending {
			if intr.Level > best {
				idx = i
				best = intr.Level
			}
		}
		if idx < 0 {
			c.mu.Unlock()
			return
		}
		intr := c.pending[idx]
		c.pending = append(c.pending[:idx], c.pending[idx+1:]...)
		saved := c.spl
		c.spl = intr.Level
		c.inHandler++
		c.mu.Unlock()

		c.interruptsTaken.Add(1)
		intr.Handler(c)

		c.mu.Lock()
		c.inHandler--
		c.spl = saved
		c.mu.Unlock()
	}
}

// InHandler reports whether the CPU is currently executing an interrupt
// handler. Interrupt code lacks thread context and is forbidden from
// acquiring sleep locks (paper Section 7, problem 1); callers can use this
// to enforce that rule.
func (c *CPU) InHandler() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inHandler > 0
}

// InterruptsTaken returns the number of interrupts this CPU has executed.
func (c *CPU) InterruptsTaken() int64 { return c.interruptsTaken.Load() }

// InterruptsPosted returns the number of interrupts queued to this CPU.
func (c *CPU) InterruptsPosted() int64 { return c.interruptsPosted.Load() }

// Checkpoints returns how many times the CPU polled for interrupts.
func (c *CPU) Checkpoints() int64 { return c.checkpoints.Load() }

// IPI posts an interrupt to the target CPU; a convenience wrapper used by
// the TLB shootdown code.
func (m *Machine) IPI(target int, level Level, handler func(c *CPU)) {
	m.cpus[target].Post(Interrupt{Level: level, Handler: handler})
}

package hw

import (
	"sync/atomic"
	"testing"
)

func TestMachineConstruction(t *testing.T) {
	m := New(4)
	if m.NCPU() != 4 {
		t.Fatalf("NCPU = %d, want 4", m.NCPU())
	}
	for i := 0; i < 4; i++ {
		if m.CPU(i).ID() != i {
			t.Fatalf("CPU(%d).ID() = %d", i, m.CPU(i).ID())
		}
		if m.CPU(i).Machine() != m {
			t.Fatalf("CPU(%d).Machine() mismatch", i)
		}
	}
	if len(m.CPUs()) != 4 {
		t.Fatalf("CPUs() length = %d", len(m.CPUs()))
	}
}

func TestMachineRejectsZeroCPUs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

func TestSPLNames(t *testing.T) {
	cases := map[Level]string{
		SPL0: "spl0", SPLVM: "splvm", SPLHIGH: "splhigh", Level(42): "spl(42)",
	}
	for l, want := range cases {
		if got := l.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int32(l), got, want)
		}
	}
}

func TestSetSPLReturnsOld(t *testing.T) {
	m := New(1)
	c := m.CPU(0)
	if old := c.SetSPL(SPLVM); old != SPL0 {
		t.Fatalf("old level = %v, want spl0", old)
	}
	if old := c.SetSPL(SPLHIGH); old != SPLVM {
		t.Fatalf("old level = %v, want splvm", old)
	}
	if got := c.SPL(); got != SPLHIGH {
		t.Fatalf("SPL = %v, want splhigh", got)
	}
}

func TestInterruptDeliveredAtCheckpoint(t *testing.T) {
	m := New(1)
	c := m.CPU(0)
	var ran atomic.Bool
	c.Post(Interrupt{Level: SPLVM, Handler: func(cpu *CPU) { ran.Store(true) }})
	if ran.Load() {
		t.Fatal("interrupt ran before checkpoint")
	}
	c.Checkpoint()
	if !ran.Load() {
		t.Fatal("interrupt did not run at checkpoint")
	}
	if c.PendingInterrupts() != 0 {
		t.Fatal("interrupt still pending after delivery")
	}
}

func TestInterruptMaskedBySPL(t *testing.T) {
	m := New(1)
	c := m.CPU(0)
	var ran atomic.Bool
	c.SetSPL(SPLVM)
	c.Post(Interrupt{Level: SPLVM, Handler: func(cpu *CPU) { ran.Store(true) }})
	c.Checkpoint()
	if ran.Load() {
		t.Fatal("interrupt at splvm delivered while CPU at splvm (must require strictly higher)")
	}
	// Lowering the SPL delivers it without an explicit checkpoint.
	c.SetSPL(SPL0)
	if !ran.Load() {
		t.Fatal("interrupt not delivered when SPL lowered")
	}
}

func TestHandlerRunsAtInterruptLevel(t *testing.T) {
	m := New(1)
	c := m.CPU(0)
	var seen Level = -1
	c.Post(Interrupt{Level: SPLCLOCK, Handler: func(cpu *CPU) { seen = cpu.SPL() }})
	c.Checkpoint()
	if seen != SPLCLOCK {
		t.Fatalf("handler ran at %v, want splclock", seen)
	}
	if got := c.SPL(); got != SPL0 {
		t.Fatalf("SPL after handler = %v, want spl0 (restored)", got)
	}
}

func TestHigherPriorityInterruptDeliveredFirst(t *testing.T) {
	m := New(1)
	c := m.CPU(0)
	var order []Level
	c.Post(Interrupt{Level: SPLNET, Handler: func(cpu *CPU) { order = append(order, SPLNET) }})
	c.Post(Interrupt{Level: SPLCLOCK, Handler: func(cpu *CPU) { order = append(order, SPLCLOCK) }})
	c.Checkpoint()
	if len(order) != 2 || order[0] != SPLCLOCK || order[1] != SPLNET {
		t.Fatalf("delivery order = %v, want [splclock splnet]", order)
	}
}

func TestNestedInterruptFromHandlerCheckpoint(t *testing.T) {
	m := New(1)
	c := m.CPU(0)
	var order []string
	c.Post(Interrupt{Level: SPLNET, Handler: func(cpu *CPU) {
		order = append(order, "net-start")
		// A higher-priority interrupt arrives during the handler.
		cpu.Post(Interrupt{Level: SPLCLOCK, Handler: func(*CPU) { order = append(order, "clock") }})
		cpu.Checkpoint()
		order = append(order, "net-end")
	}})
	c.Checkpoint()
	want := []string{"net-start", "clock", "net-end"}
	if len(order) != 3 || order[0] != want[0] || order[1] != want[1] || order[2] != want[2] {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func TestEqualPriorityInterruptNotNested(t *testing.T) {
	m := New(1)
	c := m.CPU(0)
	var nested bool
	c.Post(Interrupt{Level: SPLNET, Handler: func(cpu *CPU) {
		cpu.Post(Interrupt{Level: SPLNET, Handler: func(*CPU) { nested = true }})
		cpu.Checkpoint() // equal priority: masked inside the handler
		if nested {
			t.Error("equal-priority interrupt nested inside its own level")
		}
	}})
	c.Checkpoint() // the second interrupt runs here, after the first returns
	if !nested {
		t.Fatal("queued equal-priority interrupt never delivered")
	}
}

func TestInHandler(t *testing.T) {
	m := New(1)
	c := m.CPU(0)
	if c.InHandler() {
		t.Fatal("InHandler true outside handler")
	}
	var inside bool
	c.Post(Interrupt{Level: SPLVM, Handler: func(cpu *CPU) { inside = cpu.InHandler() }})
	c.Checkpoint()
	if !inside {
		t.Fatal("InHandler false inside handler")
	}
	if c.InHandler() {
		t.Fatal("InHandler true after handler returned")
	}
}

func TestIPIDelivery(t *testing.T) {
	m := New(2)
	var got atomic.Int64
	m.IPI(1, SPLVM, func(c *CPU) { got.Store(int64(c.ID()) + 100) })
	m.CPU(1).Checkpoint()
	if got.Load() != 101 {
		t.Fatalf("IPI handler result = %d, want 101", got.Load())
	}
}

func TestNilHandlerPanics(t *testing.T) {
	m := New(1)
	defer func() {
		if recover() == nil {
			t.Fatal("Post with nil handler did not panic")
		}
	}()
	m.CPU(0).Post(Interrupt{Level: SPLVM})
}

func TestInterruptCounters(t *testing.T) {
	m := New(1)
	c := m.CPU(0)
	for i := 0; i < 3; i++ {
		c.Post(Interrupt{Level: SPLVM, Handler: func(*CPU) {}})
	}
	c.Checkpoint()
	if c.InterruptsPosted() != 3 || c.InterruptsTaken() != 3 {
		t.Fatalf("posted=%d taken=%d, want 3/3", c.InterruptsPosted(), c.InterruptsTaken())
	}
	if c.Checkpoints() == 0 {
		t.Fatal("checkpoint counter not incremented")
	}
}

// TestSection7DeadlockIngredients verifies the delivery property the
// paper's Section 7 deadlock scenario depends on: a CPU that has raised its
// SPL does not accept a posted interrupt, while a CPU at spl0 does.
func TestSection7DeadlockIngredients(t *testing.T) {
	m := New(2)
	p1, p2 := m.CPU(0), m.CPU(1)
	p2.SetSPL(SPLVM) // "processor 2 has disabled interrupts"
	var taken [2]atomic.Bool
	m.IPI(0, SPLVM, func(*CPU) { taken[0].Store(true) })
	m.IPI(1, SPLVM, func(*CPU) { taken[1].Store(true) })
	p1.Checkpoint()
	p2.Checkpoint()
	if !taken[0].Load() {
		t.Fatal("processor 1 (interrupts enabled) did not take its interrupt")
	}
	if taken[1].Load() {
		t.Fatal("processor 2 (interrupts disabled) took its interrupt")
	}
}

func TestSplxAndWriteThroughAccessors(t *testing.T) {
	m := NewWithConfig(Config{CPUs: 1, WriteThrough: true})
	if !m.WriteThrough() {
		t.Fatal("WriteThrough() false on write-through machine")
	}
	c := m.CPU(0)
	old := c.SetSPL(SPLVM)
	c.Splx(old)
	if got := c.SPL(); got != SPL0 {
		t.Fatalf("SPL after splx = %v", got)
	}
}

package hw

import (
	"sync"
	"sync/atomic"
)

// lineState is the per-CPU cache line state of a Cell under the simplified
// MSI coherence protocol.
type lineState uint8

const (
	invalid lineState = iota
	shared
	modified
)

// CellStats is a snapshot of a cell's access accounting.
type CellStats struct {
	Loads      int64 // total loads
	Stores     int64 // total stores (including the write half of RMWs)
	RMWs       int64 // atomic read-modify-write operations
	LoadMisses int64 // loads that required a bus transaction
	StoreTxns  int64 // stores/RMWs that required a bus transaction
}

// Cell is a simulated memory word with per-CPU cache line states. All
// accesses name the CPU performing them; the cell maintains MSI coherence
// and charges a bus transaction to the machine whenever the access cannot be
// satisfied from the local cache:
//
//   - a load with the line Invalid fetches it Shared (one transaction, and
//     any remote Modified copy is demoted to Shared);
//   - a store or atomic RMW with the line not Modified acquires exclusive
//     ownership (one transaction, all remote copies invalidated);
//   - with write-through caches, every store/RMW is a transaction regardless
//     of line state, which is the regime where the paper says plain
//     test-and-set spinning must be replaced by test-and-test-and-set.
//
// Atomicity is provided by an internal host mutex: a simulated atomic
// operation really is atomic, and the (host) contention it suffers stands in
// for the interconnect serialization a real atomic instruction pays.
type Cell struct {
	m  *Machine
	mu sync.Mutex

	val int64
	st  []lineState
	// lastOwner is the id of the CPU that most recently held the line
	// Modified, or -1 before the first write; ownLocked uses it to charge
	// cross-cell ownership transfers on multi-cell machines.
	lastOwner int

	loads      atomic.Int64
	stores     atomic.Int64
	rmws       atomic.Int64
	loadMisses atomic.Int64
	storeTxns  atomic.Int64
}

// NewCell allocates a cell with the given initial value. No CPU holds the
// line initially.
func (m *Machine) NewCell(initial int64) *Cell {
	return &Cell{m: m, val: initial, st: make([]lineState, len(m.cpus)), lastOwner: -1}
}

// Load reads the cell from the given CPU, performing a cache fill if the
// line is not locally valid.
func (c *Cell) Load(cpu *CPU) int64 {
	c.loads.Add(1)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.st[cpu.id] == invalid {
		c.loadMisses.Add(1)
		c.m.busTransaction()
		// A remote Modified copy is demoted to Shared by the fill.
		for i := range c.st {
			if c.st[i] == modified {
				c.st[i] = shared
			}
		}
		c.st[cpu.id] = shared
	}
	return c.val
}

// Store writes the cell from the given CPU, acquiring exclusive ownership of
// the line (invalidating all remote copies) if not already held Modified.
func (c *Cell) Store(cpu *CPU, v int64) {
	c.stores.Add(1)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.writeLocked(cpu, v)
}

// Swap atomically replaces the cell's value and returns the old one — the
// simulated test-and-set (and test-and-clear) primitive. Coherence-wise it
// behaves as a store: the line must be owned exclusively.
func (c *Cell) Swap(cpu *CPU, v int64) int64 {
	c.rmws.Add(1)
	c.mu.Lock()
	defer c.mu.Unlock()
	old := c.val
	c.writeLocked(cpu, v)
	return old
}

// CompareAndSwap atomically replaces the cell's value with new if it equals
// old, reporting whether the swap happened. Like hardware CAS it acquires
// exclusive ownership of the line whether or not the swap succeeds.
func (c *Cell) CompareAndSwap(cpu *CPU, old, new int64) bool {
	c.rmws.Add(1)
	c.mu.Lock()
	defer c.mu.Unlock()
	cur := c.val
	if cur != old {
		// The failed CAS still performed the ownership acquisition.
		c.ownLocked(cpu)
		return false
	}
	c.writeLocked(cpu, new)
	return true
}

// Add atomically adds delta and returns the new value.
func (c *Cell) Add(cpu *CPU, delta int64) int64 {
	c.rmws.Add(1)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.writeLocked(cpu, c.val+delta)
	return c.val
}

// writeLocked performs the coherence actions of a store by cpu and then
// writes v. c.mu must be held.
func (c *Cell) writeLocked(cpu *CPU, v int64) {
	c.ownLocked(cpu)
	c.val = v
}

// ownLocked acquires exclusive (Modified) ownership of the line for cpu,
// charging a bus transaction when required. c.mu must be held.
func (c *Cell) ownLocked(cpu *CPU) {
	if c.st[cpu.id] != modified {
		c.storeTxns.Add(1)
		c.m.busTransaction()
		if c.lastOwner >= 0 && c.m.CellOf(c.lastOwner) != cpu.CellID() {
			c.m.crossCell.Add(1)
		}
		c.lastOwner = cpu.id
		for i := range c.st {
			c.st[i] = invalid
		}
		c.st[cpu.id] = modified
	} else if c.m.writeThrough {
		// Write-through caches push every store to the interconnect.
		c.storeTxns.Add(1)
		c.m.busTransaction()
	}
}

// Value returns the cell's current value without simulating a cache access;
// intended for assertions and statistics, not for simulated code paths.
func (c *Cell) Value() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.val
}

// Stats returns a snapshot of the cell's access accounting.
func (c *Cell) Stats() CellStats {
	return CellStats{
		Loads:      c.loads.Load(),
		Stores:     c.stores.Load(),
		RMWs:       c.rmws.Load(),
		LoadMisses: c.loadMisses.Load(),
		StoreTxns:  c.storeTxns.Load(),
	}
}

// ResetStats zeroes the cell's access accounting (not its value or cache
// state).
func (c *Cell) ResetStats() {
	c.loads.Store(0)
	c.stores.Store(0)
	c.rmws.Store(0)
	c.loadMisses.Store(0)
	c.storeTxns.Store(0)
}

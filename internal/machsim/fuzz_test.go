package machsim

import (
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"
)

// replayUnderFuzz is the invariant the fuzzer drives: Replay must accept ANY
// schedule string — DFS-found violation schedules, truncations, garbage
// tokens — without panicking or hanging, and must be deterministic: a second
// replay of the same string yields the identical result. Divergent or
// malformed schedules are reported as "replay" violations, never crashes.
func replayUnderFuzz(t *testing.T, schedule string) {
	opt := Options{FaultTries: true, SpuriousWakeups: true}
	res := Replay(lostWakeupScenario, schedule, opt)
	again := Replay(lostWakeupScenario, schedule, opt)
	if !reflect.DeepEqual(res.Violations, again.Violations) || !reflect.DeepEqual(res.Log, again.Log) {
		t.Fatalf("replay of %q is nondeterministic:\n  first:  %+v\n  second: %+v",
			schedule, res.Violations, again.Violations)
	}
	if res.Runs != 1 {
		t.Fatalf("replay of %q ran %d times, want 1", schedule, res.Runs)
	}
}

// FuzzSimReplaySchedules feeds arbitrary schedule strings to Replay. The
// committed seed corpus under testdata/fuzz holds schedules the DFS and
// random-walk engines actually found violations on (see
// TestSimCorpusReplaysClean for how they were harvested), so the fuzzer
// starts from the interesting region of the input space instead of noise.
func FuzzSimReplaySchedules(f *testing.F) {
	// Inline seeds double the committed corpus for `go test` runs that skip
	// testdata (none today, but cheap insurance).
	f.Add("0,0,0,1,1,1,1,0") // DFS-found lost-wakeup deadlock
	f.Add("0,0,F")           // fault-forced try failure
	f.Add("1,0,1,0,c0")      // injection token mid-stream
	f.Add("")                // empty schedule: immediate exhaustion
	f.Fuzz(replayUnderFuzz)
}

// TestSimCorpusReplaysClean replays every committed fuzz corpus entry in a
// normal `go test` run — the corpus is regression input, not just fuzz
// ballast, so it must keep exercising the harness without crashes even when
// nobody runs the fuzzer. Violation-schedule seeds were harvested from
// Explore/Random runs on lostWakeupScenario, forcedTryScenario, and
// spuriousScenario; seeds from foreign scenarios replay here as benign
// "replay" divergences, which is exactly the robustness being pinned.
func TestSimCorpusReplaysClean(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzSimReplaySchedules")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading seed corpus: %v", err)
	}
	if len(entries) == 0 {
		t.Fatal("seed corpus is empty")
	}
	for _, e := range entries {
		t.Run(e.Name(), func(t *testing.T) {
			schedule, err := readCorpusString(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			replayUnderFuzz(t, schedule)
		})
	}
}

// TestSimCorpusHoldsRealViolations pins that the committed corpus is not
// stale: the seeds named after engine-found violations still reproduce a
// violation when replayed against the scenario they were harvested from.
func TestSimCorpusHoldsRealViolations(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzSimReplaySchedules")
	cases := []struct {
		seed string
		sc   Scenario
		opt  Options
		want string
	}{
		{"lostwakeup-dfs", lostWakeupScenario, Options{}, "deadlock"},
		{"lostwakeup-random", lostWakeupScenario, Options{}, "deadlock"},
		{"forcedtry-faulted", forcedTryScenario, Options{FaultTries: true}, "at-end"},
		{"spurious-injected", spuriousScenario, Options{SpuriousWakeups: true}, "at-end"},
	}
	for _, tc := range cases {
		t.Run(tc.seed, func(t *testing.T) {
			schedule, err := readCorpusString(filepath.Join(dir, tc.seed))
			if err != nil {
				t.Fatal(err)
			}
			res := Replay(tc.sc, schedule, tc.opt)
			if !res.Failed() {
				t.Fatalf("seed %q no longer reproduces a violation: %s", schedule, res.Summary())
			}
			for _, v := range res.Violations {
				if v.Checker == tc.want {
					return
				}
			}
			t.Fatalf("seed %q replayed to %+v, want checker %q", schedule, res.Violations, tc.want)
		})
	}
}

// readCorpusString parses a Go fuzz corpus file holding one string value.
func readCorpusString(path string) (string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 2 || lines[0] != "go test fuzz v1" {
		return "", &corpusErr{path, "not a go-fuzz v1 file with one value"}
	}
	body := strings.TrimSpace(lines[1])
	if !strings.HasPrefix(body, "string(") || !strings.HasSuffix(body, ")") {
		return "", &corpusErr{path, "value is not a string"}
	}
	s, err := strconv.Unquote(body[len("string(") : len(body)-1])
	if err != nil {
		return "", &corpusErr{path, "unquote: " + err.Error()}
	}
	return s, nil
}

type corpusErr struct{ path, msg string }

func (e *corpusErr) Error() string { return e.path + ": " + e.msg }

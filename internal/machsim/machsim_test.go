package machsim

import (
	"testing"

	"machlock/internal/core/cxlock"
	"machlock/internal/core/refcount"
	"machlock/internal/core/splock"
	"machlock/internal/sched"
)

// TestSimSplockMutualExclusion explores a classic two-thread counter under
// a simple lock exhaustively and expects no violations: the lock works, and
// the harness's own mutual-exclusion model agrees.
func TestSimSplockMutualExclusion(t *testing.T) {
	scenario := func(s *Sim) {
		l := &splock.Lock{}
		s.Label(l, "counter.lock")
		n := 0
		body := func(_ *sched.Thread) {
			for i := 0; i < 2; i++ {
				l.Lock()
				n++
				l.Unlock()
			}
		}
		s.Spawn("incA", body)
		s.Spawn("incB", body)
		s.AtEnd(func(fail func(string, ...any)) {
			if n != 4 {
				fail("lost update: n=%d, want 4", n)
			}
		})
	}
	res := Explore(scenario, DFSConfig{Preemptions: 2}, Options{})
	Check(t, res)
	if !res.Exhausted {
		t.Fatalf("expected the bounded space to be exhausted: %s", res.Summary())
	}
	if res.Runs < 2 {
		t.Fatalf("expected multiple schedules, got %d", res.Runs)
	}
}

// TestSimFindsLostUpdate gives the harness a deliberately racy counter (a
// read-modify-write spanning a scheduling point) and requires that bounded
// DFS finds the lost update. A harness that cannot catch this planted bug
// proves nothing about the real protocols.
func TestSimFindsLostUpdate(t *testing.T) {
	scenario := func(s *Sim) {
		l := &splock.Lock{}
		n := 0
		body := func(_ *sched.Thread) {
			v := n   // racy load...
			l.Lock() // ...with scheduling points before...
			l.Unlock()
			n = v + 1 // ...the racy store
		}
		s.Spawn("racerA", body)
		s.Spawn("racerB", body)
		s.AtEnd(func(fail func(string, ...any)) {
			if n != 2 {
				fail("lost update survived the race: n=%d, want 2", n)
			}
		})
	}
	res := Explore(scenario, DFSConfig{Preemptions: 1}, Options{})
	if !res.Failed() {
		t.Fatalf("DFS failed to find the planted lost update: %s", res.Summary())
	}
	// The reported schedule must replay to the same violation.
	rep := Replay(scenario, res.Schedule, Options{})
	if !rep.Failed() {
		t.Fatalf("schedule %q did not replay the violation", res.Schedule)
	}
	if rep.Violations[0].Checker != res.Violations[0].Checker {
		t.Fatalf("replay found %v, exploration found %v", rep.Violations[0], res.Violations[0])
	}
}

// lostWakeupScenario is the sacrificial protocol bug the ISSUE's
// determinism acceptance rides on: the waiter re-checks its flag and only
// THEN asserts the wait, releasing the lock in between — the textbook
// broken ordering the paper's assert_wait/unlock/thread_block split exists
// to prevent. On schedules where the signaler's wakeup lands in the
// window, the waiter blocks forever.
func lostWakeupScenario(s *Sim) {
	l := &splock.Lock{}
	type ev struct{ _ int }
	e := &ev{}
	ready := false
	s.Label(l, "flag.lock")
	s.Spawn("waiter", func(t *sched.Thread) {
		l.Lock()
		if !ready {
			l.Unlock()
			// BUG: the wakeup can land here, before the wait is
			// asserted; the correct order is AssertWait, then unlock.
			sched.AssertWait(t, e)
			sched.ThreadBlock(t)
		} else {
			l.Unlock()
		}
	})
	s.Spawn("signaler", func(_ *sched.Thread) {
		l.Lock()
		ready = true
		l.Unlock()
		sched.ThreadWakeup(e)
	})
}

// TestSimSeededFailureIsByteIdentical runs the seeded random walk over the
// lost-wakeup bug twice and requires the two failures to be byte-identical
// — same seed, same schedule, same violation — and the recorded schedule
// to replay to the same deadlock. This is the determinism contract
// MACHSIM_SEED depends on.
func TestSimSeededFailureIsByteIdentical(t *testing.T) {
	run := func() Result { return Random(lostWakeupScenario, 400, 7, Options{}) }
	first := run()
	if !first.Failed() {
		t.Fatalf("random walk failed to find the lost wakeup: %s", first.Summary())
	}
	if first.Violations[0].Checker != "deadlock" {
		t.Fatalf("expected a deadlock, found %v", first.Violations[0])
	}
	second := run()
	if !second.Failed() {
		t.Fatal("second identical walk found nothing")
	}
	if first.Seed != second.Seed || first.Schedule != second.Schedule {
		t.Fatalf("seeded failure not reproducible:\n run 1: seed %d schedule %s\n run 2: seed %d schedule %s",
			first.Seed, first.Schedule, second.Seed, second.Schedule)
	}
	rep := Replay(lostWakeupScenario, first.Schedule, Options{})
	if !rep.Failed() || rep.Violations[0].Checker != "deadlock" {
		t.Fatalf("schedule did not replay the deadlock: %+v", rep.Violations)
	}
}

// TestSimDFSFindsLostWakeup requires the bounded DFS to find the same bug
// with a single preemption — the minimal counterexample is one forced
// switch inside the unlock-to-assert window.
func TestSimDFSFindsLostWakeup(t *testing.T) {
	res := Explore(lostWakeupScenario, DFSConfig{Preemptions: 1}, Options{})
	if !res.Failed() {
		t.Fatalf("bounded DFS missed the lost wakeup: %s", res.Summary())
	}
	if res.Violations[0].Checker != "deadlock" {
		t.Fatalf("expected deadlock, found %v", res.Violations[0])
	}
}

// TestSimSpuriousWakeupInjection: a lone waiter with nobody to wake it is
// a deadlock — unless the fault engine injects a thread-based event
// occurrence (ClearWait), in which case ThreadBlock returns Restarted and
// the thread completes.
func TestSimSpuriousWakeupInjection(t *testing.T) {
	var got sched.WaitResult
	scenario := func(s *Sim) {
		type ev struct{ _ int }
		e := &ev{}
		s.Spawn("waiter", func(t *sched.Thread) {
			sched.AssertWait(t, e)
			got = sched.ThreadBlock(t)
		})
	}
	plain := Random(scenario, 5, 1, Options{})
	if !plain.Failed() || plain.Violations[0].Checker != "deadlock" {
		t.Fatalf("expected a deadlock without injection, got %+v", plain.Violations)
	}
	faulty := Random(scenario, 5, 1, Options{SpuriousWakeups: true})
	Check(t, faulty)
	if got != sched.Restarted {
		t.Fatalf("injected wakeup should deliver Restarted, got %v", got)
	}
}

// TestSimForceFailTries: with FaultTries on, the two-way try decision is
// explored — DFS must produce both a run where TryWrite succeeds and one
// where it is forced to fail.
func TestSimForceFailTries(t *testing.T) {
	succeeded, failed := 0, 0
	scenario := func(s *Sim) {
		l := cxlock.NewWith(cxlock.Options{Name: "try"})
		s.Spawn("trier", func(t *sched.Thread) {
			if l.TryWrite(nil) {
				succeeded++
				l.Done(nil)
			} else {
				failed++
			}
		})
	}
	res := Explore(scenario, DFSConfig{Preemptions: 1}, Options{FaultTries: true})
	Check(t, res)
	if succeeded == 0 || failed == 0 {
		t.Fatalf("fault engine did not explore both try outcomes: ok=%d forced=%d", succeeded, failed)
	}
}

// TestSimRefcountResurrectChecker: dropping the last reference and then
// re-initializing the count is the resurrection pattern the paper's
// protocol forbids; the shadow model must flag the clone that follows.
func TestSimRefcountResurrectChecker(t *testing.T) {
	scenario := func(s *Sim) {
		var c refcount.Count
		c.Init(1)
		s.Label(&c, "victim")
		s.Spawn("necromancer", func(_ *sched.Thread) {
			c.Release() // count hits zero: object is gone
			c.Init(1)   // storage "reallocated"...
			c.Clone()   // ...and a stale pointer clones through it
		})
	}
	res := Explore(scenario, DFSConfig{}, Options{})
	if !res.Failed() {
		t.Fatal("resurrect checker missed a clone after zero")
	}
	if res.Violations[0].Checker != "ref-resurrect" {
		t.Fatalf("expected ref-resurrect, got %v", res.Violations[0])
	}
}

// TestSimReplayDivergenceIsReported: feeding a schedule from a different
// scenario must be reported as a replay divergence, not silently explored.
func TestSimReplayDivergenceIsReported(t *testing.T) {
	res := Replay(lostWakeupScenario, "0,0,0,99", Options{})
	if !res.Failed() {
		t.Fatal("bogus schedule replayed without complaint")
	}
	found := false
	for _, v := range res.Violations {
		if v.Checker == "replay" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected a replay violation, got %+v", res.Violations)
	}
}

// TestSimVirtualClock: the virtual clock must advance deterministically
// with decisions so time-dependent protocol state (the bias re-arm
// cooldown) is schedule-reproducible.
func TestSimVirtualClock(t *testing.T) {
	var t0, t1 int64
	scenario := func(s *Sim) {
		l := &splock.Lock{}
		s.Spawn("ticker", func(_ *sched.Thread) {
			l.Lock()
			l.Unlock()
		})
	}
	s := newSim(scenario, &randomDecider{rng: prng{x: 1}}, Options{})
	s.runOnce()
	t0 = s.clockNs
	s2 := newSim(scenario, &randomDecider{rng: prng{x: 1}}, Options{})
	s2.runOnce()
	t1 = s2.clockNs
	if t0 != t1 || t0 <= clockBaseNs {
		t.Fatalf("virtual clock not deterministic: %d vs %d", t0, t1)
	}
}

// Package simhook is the instrumentation seam between the lock/refcount
// substrate (splock, cxlock, refcount, object, sched) and the machsim
// deterministic schedule-exploration harness (internal/machsim).
//
// The substrate calls three kinds of hooks at protocol boundaries:
//
//   - Yield(point, obj): a SCHEDULING point. When a harness is installed,
//     the calling virtual thread may be suspended here and another one
//     resumed — this is where interleavings are explored. When no harness
//     is installed, Yield is a single atomic load and a nil check, the
//     same disabled-cost contract as the trace observers.
//   - Note(point, obj, n): a pure OBSERVATION, emitted inside a lock's own
//     critical section at the exact instruction where a protocol state
//     transition commits (read granted, want-write set, refcount moved).
//     Notes never suspend the caller, so they are safe under an interlock;
//     the harness uses them to maintain shadow models for its property
//     checkers.
//   - ForceFail(point, obj): a FAULT-INJECTION query. Try-style operations
//     ask the harness whether to fail artificially before attempting the
//     real protocol; the fault engine uses this to force try/upgrade
//     failures on schedules where they cannot happen organically.
//
// Blocking integrates through Block/Unblock: sched.Table.ThreadBlock
// parks a thread via Block (the harness suspends it until a wakeup makes
// it runnable AND the scheduler selects it), and sched's resume path calls
// Unblock instead of signalling the condition variable. Both return false
// when the thread is not under harness control, in which case sched falls
// back to its normal host-blocking path.
//
// This package is deliberately a leaf: it imports nothing from the repo,
// so every substrate package can depend on it without cycles. Thread
// identities cross the interface as `any` for the same reason.
package simhook

import "sync/atomic"

// Point identifies one instrumented protocol boundary.
type Point uint8

// Yield/Note points. The Sp* points come from splock, Cx* from cxlock,
// Ref* from refcount, Obj* from object, Sched* from sched.
const (
	PointInvalid Point = iota

	// splock boundaries.
	SpLock     // Yield: entry to Lock, before the first test-and-set
	SpSpin     // Yield: one failed spin iteration (lock observed held)
	SpUnlock   // Yield: entry to Unlock, lock still held
	SpTry      // Yield: entry to TryLock
	SpAcquired // Note: the test-and-set succeeded
	SpReleased // Note: the release store happened
	SpPark     // Yield: adaptive waiter exhausted its spin budget and parked
	SpEnqueued // Note: queue-lock waiter appended its qnode (n = ticket)
	SpHandoff  // Note: queue-lock holder handed the lock to its successor

	// cxlock boundaries. The *Enter points are scheduling points outside
	// the interlock; the *Grant/Want/Release points are Notes emitted
	// inside the interlock where the state transition commits.
	CxRead        // Yield: entry to Read
	CxWrite       // Yield: entry to Write
	CxDone        // Yield: entry to Done
	CxTryRead     // Yield: entry to TryRead (ForceFail consulted)
	CxTryWrite    // Yield: entry to TryWrite (ForceFail consulted)
	CxUpgrade     // Yield: entry to ReadToWrite
	CxTryUpgrade  // Yield: entry to TryReadToWrite (ForceFail consulted)
	CxDowngrade   // Yield: entry to WriteToRead
	CxSpin        // Yield: one spin iteration inside wait() (interlock released)
	CxAcquired    // Yield: acquisition complete, interlock released
	CxBiasPublish // Yield: biased reader published its slot, about to recheck

	CxReadGrant        // Note: readCount++ granted to a plain reader
	CxReadGrantRec     // Note: readCount++ granted to the recursive holder
	CxRecurseGrant     // Note: recursion depth++ (holder re-acquired for write)
	CxWriteGrant       // Note: write drain complete, caller owns the lock
	CxWriteWant        // Note: wantWrite set (write request outstanding)
	CxUpgradeWant      // Note: wantUpgrade set (upgrade request outstanding)
	CxUpgradeGrant     // Note: upgrade drain complete
	CxUpgradeFail      // Note: upgrade failed, read hold released
	CxDowngradeDone    // Note: write hold converted to read hold
	CxReleaseRead      // Note: Done released a read hold
	CxReleaseWrite     // Note: Done released the write hold
	CxReleaseUpgrade   // Note: Done released an upgrade-write hold
	CxReleaseRecursive // Note: Done popped one recursion level
	CxBiasReadGrant    // Note: biased fast-path read hold granted
	CxBiasRelease      // Note: biased fast-path read hold released
	CxBiasRevoke       // Note: writer disarmed the bias
	CxBiasDrained      // Note: revocation drain complete (slots empty)
	CxBiasRearm        // Note: bias re-armed after the cooldown

	// refcount boundaries (n = resulting count).
	RefClone   // Yield+Note: reference cloned
	RefRelease // Yield+Note: reference released

	// object boundaries (object.Object, which ties lock+count together).
	ObjLock       // Note: object lock acquired (n = current refcount)
	ObjUnlock     // Note: object lock about to be released
	ObjDeactivate // Note: object deactivated (active -> false)
	ObjDestroyed  // Note: last reference gone, storage reclaimed

	// sched boundaries.
	SchedAssertWait // Yield: entry to AssertWait (may hold an interlock)
	SchedWakeup     // Yield: entry to ThreadWakeup/ThreadWakeupOne
	SchedClearWait  // Yield: entry to ClearWait
	SchedBlocked    // Note: thread committed to blocking (state=blocked)
	SchedUnblocked  // Note: thread made runnable again (n = WaitResult)
)

var pointNames = map[Point]string{
	SpLock: "sp.lock", SpSpin: "sp.spin", SpUnlock: "sp.unlock",
	SpTry: "sp.try", SpAcquired: "sp.acquired", SpReleased: "sp.released",
	SpPark: "sp.park", SpEnqueued: "sp.enqueued", SpHandoff: "sp.handoff",
	CxRead: "cx.read", CxWrite: "cx.write", CxDone: "cx.done",
	CxTryRead: "cx.tryread", CxTryWrite: "cx.trywrite",
	CxUpgrade: "cx.upgrade", CxTryUpgrade: "cx.tryupgrade",
	CxDowngrade: "cx.downgrade", CxSpin: "cx.spin",
	CxAcquired: "cx.acquired", CxBiasPublish: "cx.bias.publish",
	CxReadGrant: "cx.read.grant", CxReadGrantRec: "cx.read.grant.rec",
	CxRecurseGrant: "cx.recurse.grant",
	CxWriteGrant:   "cx.write.grant", CxWriteWant: "cx.write.want",
	CxUpgradeWant: "cx.upgrade.want", CxUpgradeGrant: "cx.upgrade.grant",
	CxUpgradeFail: "cx.upgrade.fail", CxDowngradeDone: "cx.downgrade.done",
	CxReleaseRead: "cx.release.read", CxReleaseWrite: "cx.release.write",
	CxReleaseUpgrade: "cx.release.upgrade", CxReleaseRecursive: "cx.release.rec",
	CxBiasReadGrant: "cx.bias.grant", CxBiasRelease: "cx.bias.release",
	CxBiasRevoke: "cx.bias.revoke", CxBiasDrained: "cx.bias.drained",
	CxBiasRearm: "cx.bias.rearm",
	RefClone:    "ref.clone", RefRelease: "ref.release",
	ObjLock: "obj.lock", ObjUnlock: "obj.unlock",
	ObjDeactivate: "obj.deactivate", ObjDestroyed: "obj.destroyed",
	SchedAssertWait: "sched.assertwait", SchedWakeup: "sched.wakeup",
	SchedClearWait: "sched.clearwait", SchedBlocked: "sched.blocked",
	SchedUnblocked: "sched.unblocked",
}

// String implements fmt.Stringer.
func (p Point) String() string {
	if s, ok := pointNames[p]; ok {
		return s
	}
	return "point(?)"
}

// Hooks is the harness side of the seam. Implementations must tolerate
// calls from any goroutine; machsim guarantees at most one virtual thread
// executes at a time, so in practice calls are serialized.
type Hooks interface {
	// Yield is a scheduling point: the harness may suspend the caller and
	// run other virtual threads before returning. Callers must not hold
	// host-level exclusivity the harness itself needs (they may hold
	// simulated locks — a suspended holder is legal, other threads spin).
	Yield(p Point, obj any)
	// Note observes a committed protocol transition; it must not suspend
	// the caller (it may be called inside an interlock critical section).
	Note(p Point, obj any, n int64)
	// ForceFail reports whether a try-style operation at p on obj should
	// fail artificially (fault injection).
	ForceFail(p Point, obj any) bool
	// Block parks the calling virtual thread t (a *sched.Thread) until it
	// is resumed by Unblock and selected by the scheduler. It returns
	// false if t is not under harness control (caller falls back to host
	// blocking).
	Block(t any) bool
	// Unblock marks a Block-parked thread runnable without switching to
	// it. It returns false if t is not under harness control.
	Unblock(t any) bool
	// NowNs returns the harness's deterministic virtual clock.
	NowNs() int64
	// Index returns a small stable integer identity for a registered
	// virtual thread (false for threads the harness does not manage).
	// Address-hashed structures (the reader-bias slot table) use it so
	// slot assignment is deterministic across runs and processes.
	Index(t any) (int, bool)
}

// active is the installed harness; nil when disabled. The double pointer
// keeps the disabled fast path to one atomic load + nil check.
var active atomic.Pointer[Hooks]

// Install makes h the active harness. Only one harness may be active;
// installing over another panics (concurrent machsim runs cannot share
// the global seam).
func Install(h Hooks) {
	if h == nil {
		panic("simhook: Install(nil)")
	}
	if !active.CompareAndSwap(nil, &h) {
		panic("simhook: a harness is already installed")
	}
}

// Uninstall deactivates the harness.
func Uninstall() { active.Store(nil) }

// Enabled reports whether a harness is installed.
func Enabled() bool { return active.Load() != nil }

// Yield forwards to the active harness, if any.
func Yield(p Point, obj any) {
	if h := active.Load(); h != nil {
		(*h).Yield(p, obj)
	}
}

// Note forwards to the active harness, if any.
func Note(p Point, obj any, n int64) {
	if h := active.Load(); h != nil {
		(*h).Note(p, obj, n)
	}
}

// ForceFail forwards to the active harness; false when none.
func ForceFail(p Point, obj any) bool {
	if h := active.Load(); h != nil {
		return (*h).ForceFail(p, obj)
	}
	return false
}

// Block forwards to the active harness; false when none (caller must use
// its host blocking path).
func Block(t any) bool {
	if h := active.Load(); h != nil {
		return (*h).Block(t)
	}
	return false
}

// Unblock forwards to the active harness; false when none.
func Unblock(t any) bool {
	if h := active.Load(); h != nil {
		return (*h).Unblock(t)
	}
	return false
}

// NowNs returns the harness's virtual clock, or ok=false when no harness
// is installed (callers use the host clock).
func NowNs() (int64, bool) {
	if h := active.Load(); h != nil {
		return (*h).NowNs(), true
	}
	return 0, false
}

// Index returns the harness's stable identity for thread t, or ok=false
// when no harness is installed or t is not a managed virtual thread.
func Index(t any) (int, bool) {
	if h := active.Load(); h != nil {
		return (*h).Index(t)
	}
	return 0, false
}

package machsim

import (
	"fmt"

	"machlock/internal/machsim/simhook"
)

// The shadow models re-derive the protocol state the paper's invariants
// speak about — who holds what, in which mode, with how many references —
// purely from the notes the substrate emits at its commit points. They
// never call back into the lock APIs (a checker that takes locks would
// deadlock against the suspended holders it is checking), which is exactly
// why the notes are emitted inside the interlock critical sections: each
// note IS the state transition, so the model is never ahead of or behind
// the real lock.

type models struct {
	s   *Sim
	sp  map[any]*spModel
	cx  map[any]*cxModel
	ref map[any]*refModel
	obj map[any]*objModel
}

func newModels(s *Sim) *models {
	return &models{
		s:   s,
		sp:  make(map[any]*spModel),
		cx:  make(map[any]*cxModel),
		ref: make(map[any]*refModel),
		obj: make(map[any]*objModel),
	}
}

// spModel shadows one simple lock. For queue-based algorithms the model
// also tracks arrival order (from SpEnqueued notes) and the in-transit
// window between a holder's SpHandoff and the successor's SpAcquired, so
// it can check FIFO handoff: an acquirer that is queued but not at the
// head jumped the queue. Cohort locks deliberately emit no SpEnqueued
// (lock-wide order is not FIFO — that is the design), so for them this
// collapses back to the plain mutual-exclusion check.
type spModel struct {
	held    bool
	owner   *vthread
	transit bool       // handed off, successor not yet observed the grant
	fifo    []*vthread // queued waiters in arrival order
}

// cxModel shadows one complex lock.
type cxModel struct {
	readers  map[*vthread]int
	recDepth int

	writer    *vthread
	hasWriter bool

	wantWriteBy   *vthread
	hasWantWrite  bool
	wantUpgradeBy *vthread
	hasWantUp     bool

	revoking bool // between bias revoke and bias drained
}

func (m *cxModel) totalReaders() int {
	n := 0
	for _, c := range m.readers {
		n += c
	}
	return n
}

// refModel shadows one reference count (Count or Atomic).
type refModel struct {
	known bool
	n     int64
	dead  bool // the count has reached zero at least once
}

// objModel shadows one object.Object.
type objModel struct {
	destroyed bool
}

func (md *models) spOf(obj any) *spModel {
	m := md.sp[obj]
	if m == nil {
		m = &spModel{}
		md.sp[obj] = m
	}
	return m
}

func (md *models) cxOf(obj any) *cxModel {
	m := md.cx[obj]
	if m == nil {
		m = &cxModel{readers: make(map[*vthread]int)}
		md.cx[obj] = m
	}
	return m
}

func (md *models) refOf(obj any) *refModel {
	m := md.ref[obj]
	if m == nil {
		m = &refModel{}
		md.ref[obj] = m
	}
	return m
}

func (md *models) objOf(obj any) *objModel {
	m := md.obj[obj]
	if m == nil {
		m = &objModel{}
		md.obj[obj] = m
	}
	return m
}

func (md *models) fail(checker, format string, args ...any) {
	md.s.violate(checker, fmt.Sprintf(format, args...))
}

// note dispatches one observed protocol transition into the right model.
// a is the executing virtual thread (initActor during setup/at-end).
func (md *models) note(a *vthread, p simhook.Point, obj any, n int64) {
	name := func() string { return md.s.nameOf(obj) }
	switch p {
	// ---- simple locks: mutual exclusion, FIFO handoff ----
	case simhook.SpAcquired:
		m := md.spOf(obj)
		if m.held && !m.transit {
			md.fail("mutual-exclusion",
				"simple lock %s acquired by %s while held by %s", name(), a.name, m.owner.name)
		}
		if len(m.fifo) > 0 {
			if m.fifo[0] == a {
				m.fifo = m.fifo[1:]
			} else {
				for _, w := range m.fifo {
					if w == a {
						md.fail("fifo-handoff",
							"queue lock %s acquired by %s ahead of earlier waiter %s",
							name(), a.name, m.fifo[0].name)
						break
					}
				}
			}
		}
		m.held, m.owner, m.transit = true, a, false
	case simhook.SpEnqueued:
		md.spOf(obj).fifo = append(md.spOf(obj).fifo, a)
	case simhook.SpHandoff:
		m := md.spOf(obj)
		if !m.held || m.owner != a {
			md.fail("protocol",
				"simple lock %s handed off by %s, which does not hold it", name(), a.name)
		}
		m.owner, m.transit = nil, true
	case simhook.SpReleased:
		m := md.spOf(obj)
		if !m.held {
			md.fail("protocol", "simple lock %s released by %s while not held", name(), a.name)
		}
		m.held, m.owner, m.transit = false, nil, false

	// ---- complex locks: mutual exclusion, writer priority, bias safety ----
	case simhook.CxReadGrant:
		m := md.cxOf(obj)
		if m.hasWriter {
			md.fail("mutual-exclusion",
				"read of %s granted to %s while %s holds it for writing", name(), a.name, m.writer.name)
		}
		if m.hasWantWrite && m.wantWriteBy != a {
			md.fail("writer-priority",
				"read of %s granted to %s while %s has a write request outstanding", name(), a.name, m.wantWriteBy.name)
		}
		if m.hasWantUp && m.wantUpgradeBy != a {
			md.fail("writer-priority",
				"read of %s granted to %s while %s has an upgrade outstanding", name(), a.name, m.wantUpgradeBy.name)
		}
		m.readers[a]++
	case simhook.CxReadGrantRec:
		m := md.cxOf(obj)
		if m.hasWriter && m.writer != a {
			md.fail("mutual-exclusion",
				"recursive read of %s granted to %s while %s holds it for writing", name(), a.name, m.writer.name)
		}
		m.readers[a]++
	case simhook.CxRecurseGrant:
		m := md.cxOf(obj)
		if m.hasWriter && m.writer != a {
			md.fail("mutual-exclusion",
				"recursive write of %s granted to %s while %s holds it", name(), a.name, m.writer.name)
		}
		m.recDepth++
	case simhook.CxWriteWant:
		m := md.cxOf(obj)
		if m.hasWantWrite {
			md.fail("protocol", "second want_write on %s (by %s, already held by %s)",
				name(), a.name, m.wantWriteBy.name)
		}
		m.hasWantWrite, m.wantWriteBy = true, a
	case simhook.CxWriteGrant:
		m := md.cxOf(obj)
		if m.hasWriter {
			md.fail("mutual-exclusion",
				"write of %s granted to %s while %s holds it for writing", name(), a.name, m.writer.name)
		}
		if r := m.totalReaders(); r > 0 {
			md.fail("mutual-exclusion",
				"write of %s granted to %s with %d read hold(s) outstanding", name(), a.name, r)
		}
		m.hasWriter, m.writer = true, a
		if !m.hasWantWrite { // TryWrite takes the bit and the hold in one step
			m.hasWantWrite, m.wantWriteBy = true, a
		}
	case simhook.CxUpgradeWant:
		m := md.cxOf(obj)
		if m.hasWantUp {
			md.fail("protocol", "second want_upgrade on %s (by %s, already held by %s)",
				name(), a.name, m.wantUpgradeBy.name)
		}
		if m.readers[a] <= 0 {
			md.fail("protocol", "%s upgrades %s without a read hold", a.name, name())
		}
		m.readers[a]--
		m.hasWantUp, m.wantUpgradeBy = true, a
	case simhook.CxUpgradeFail:
		m := md.cxOf(obj)
		if m.readers[a] <= 0 {
			md.fail("protocol", "%s failed-upgrade on %s without a read hold", a.name, name())
		}
		m.readers[a]--
	case simhook.CxUpgradeGrant:
		m := md.cxOf(obj)
		if m.hasWriter {
			md.fail("mutual-exclusion",
				"upgrade of %s granted to %s while %s holds it for writing", name(), a.name, m.writer.name)
		}
		if r := m.totalReaders(); r > 0 {
			md.fail("mutual-exclusion",
				"upgrade of %s granted to %s with %d read hold(s) outstanding", name(), a.name, r)
		}
		m.hasWriter, m.writer = true, a
	case simhook.CxDowngradeDone:
		m := md.cxOf(obj)
		if !m.hasWriter || m.writer != a {
			md.fail("protocol", "%s downgrades %s without holding it for writing", a.name, name())
		}
		m.hasWriter, m.writer = false, nil
		if m.hasWantUp && m.wantUpgradeBy == a {
			m.hasWantUp, m.wantUpgradeBy = false, nil
		} else if m.hasWantWrite && m.wantWriteBy == a {
			m.hasWantWrite, m.wantWriteBy = false, nil
		}
		m.readers[a]++
	case simhook.CxReleaseRead:
		m := md.cxOf(obj)
		if m.readers[a] <= 0 {
			md.fail("protocol", "%s releases a read hold of %s it does not have", a.name, name())
		}
		m.readers[a]--
	case simhook.CxReleaseRecursive:
		m := md.cxOf(obj)
		if m.recDepth <= 0 {
			md.fail("protocol", "%s pops recursion on %s below zero", a.name, name())
		}
		m.recDepth--
	case simhook.CxReleaseWrite:
		m := md.cxOf(obj)
		if !m.hasWriter || m.writer != a {
			md.fail("protocol", "%s releases write hold of %s it does not have", a.name, name())
		}
		m.hasWriter, m.writer = false, nil
		m.hasWantWrite, m.wantWriteBy = false, nil
	case simhook.CxReleaseUpgrade:
		m := md.cxOf(obj)
		if !m.hasWriter || m.writer != a {
			md.fail("protocol", "%s releases upgrade hold of %s it does not have", a.name, name())
		}
		m.hasWriter, m.writer = false, nil
		m.hasWantUp, m.wantUpgradeBy = false, nil
	case simhook.CxBiasReadGrant:
		m := md.cxOf(obj)
		if m.hasWriter {
			md.fail("bias-revocation",
				"biased read of %s granted to %s while %s holds it for writing", name(), a.name, m.writer.name)
		}
		if m.revoking {
			md.fail("bias-revocation",
				"biased read of %s granted to %s during a revocation drain", name(), a.name)
		}
		m.readers[a]++
	case simhook.CxBiasRelease:
		m := md.cxOf(obj)
		if m.readers[a] <= 0 {
			md.fail("protocol", "%s releases a biased read hold of %s it does not have", a.name, name())
		}
		m.readers[a]--
	case simhook.CxBiasRevoke:
		md.cxOf(obj).revoking = true
	case simhook.CxBiasDrained, simhook.CxBiasRearm:
		// A failed TryWrite revokes without ever draining (the bias stays
		// down until the cooldown re-arm), so the re-arm also closes the
		// model's revocation window.
		md.cxOf(obj).revoking = false

	// ---- reference counts: never resurrect, never skew ----
	case simhook.RefClone:
		m := md.refOf(obj)
		if m.dead {
			md.fail("ref-resurrect",
				"%s cloned a reference to %s after its count reached zero", a.name, name())
		}
		if m.known && n != m.n+1 {
			md.fail("ref-skew", "clone of %s by %s: count went %d -> %d (lost update)",
				name(), a.name, m.n, n)
		}
		m.known, m.n = true, n
	case simhook.RefRelease:
		m := md.refOf(obj)
		if m.known && n != m.n-1 {
			md.fail("ref-skew", "release of %s by %s: count went %d -> %d (lost update)",
				name(), a.name, m.n, n)
		}
		if n < 0 {
			md.fail("protocol", "%s over-released %s (count %d)", a.name, name(), n)
		}
		m.known, m.n = true, n
		if n == 0 {
			m.dead = true
		}

	// ---- kernel objects: a reference is required to (re)lock ----
	case simhook.ObjLock:
		m := md.objOf(obj)
		if m.destroyed {
			md.fail("relock-reference", "%s locked destroyed object %s", a.name, name())
		}
		if n <= 0 {
			md.fail("relock-reference",
				"%s locked object %s with no reference outstanding (count %d)", a.name, name(), n)
		}
	case simhook.ObjDestroyed:
		md.objOf(obj).destroyed = true
	}
}

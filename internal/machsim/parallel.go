package machsim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"machlock/internal/machsim/simhook"
)

// Parallel exploration distributes disjoint schedule prefixes across
// worker goroutines. Each worker owns a private cooperative-scheduler
// instance (one Sim per run, one dfsDecider per worker), so every run is
// exactly as deterministic and race-clean as the serial engine; the only
// shared mutable state is the hook dispatcher's goroutine registry and the
// work counter.
//
// DETERMINISM. A work-stealing DFS would make the result depend on which
// worker wins which branch, so the engine explores in WAVES instead: the
// frontier is an ordered list of branches; one wave runs every branch of
// the list (workers claim list slots through an atomic counter, but each
// slot's outcome lands back in its own position), and the children each
// branch discovers are concatenated in parent order to form the next
// frontier. Outcomes are folded in frontier order — the first violating
// branch of the wave is the one reported — so the result and the final
// frontier are identical for any worker count and any host timing: same
// frontier in, same result out. The run budget is applied at list
// granularity (a wave takes a prefix of the frontier, the tail carries
// over), which is also what makes budgeted runs resumable mid-wave.

// ParallelConfig configures ExploreParallel.
type ParallelConfig struct {
	// Workers is the number of worker goroutines; 0 means GOMAXPROCS.
	Workers int
	// RunBudget caps the schedules executed by THIS call (the nightly
	// budget); 0 means run to exhaustion. Progress counts in the frontier
	// accumulate across resumed calls.
	RunBudget int
	// Resume continues from a checkpoint written by a previous call; nil
	// starts at the root. The checkpoint's search parameters must match
	// cfg/opt.
	Resume *Frontier
	// Scenario is the label recorded in the checkpoint (and checked on
	// resume).
	Scenario string
}

// runOutcome is one branch's result, collected per slot so folding is
// order-deterministic.
type runOutcome struct {
	steps        int
	inconclusive bool
	pruned       bool
	violations   []Violation
	schedule     string
	log          []string
	children     []dfsBranch
}

// ExploreParallel enumerates schedules like Explore, but across Workers
// goroutines with a checkpointable frontier. It returns the accumulated
// result (cumulative across resumed calls) and the final frontier: Done
// when the space is exhausted, otherwise the branches a later call can
// resume from. Unlike Explore it finishes the wave a violation occurs in
// (the wave's runs are already in flight), so Runs/Steps include the whole
// wave; the reported violation is still deterministic.
func ExploreParallel(scenario Scenario, cfg DFSConfig, par ParallelConfig, opt Options) (Result, *Frontier) {
	workers := par.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	fr := par.Resume
	if fr == nil {
		name := par.Scenario
		if name == "" {
			name = "unnamed"
		}
		fr = NewFrontier(name, cfg, opt)
	}
	var acc Result
	if err := checkResume(fr, cfg, par, opt); err != nil {
		acc.Violations = []Violation{{Checker: "checkpoint", Msg: err.Error()}}
		return acc, fr
	}
	acc.Runs = fr.Runs
	acc.Steps = fr.Steps
	acc.Inconclusive = fr.Inconclusive
	acc.Pruned = fr.Pruned

	frontier := make([]dfsBranch, len(fr.Branches))
	for i, br := range fr.Branches {
		frontier[i] = dfsBranch{prefix: br.Prefix, preempts: br.Preempts, sleep: br.Sleep}
	}

	disp := &dispatcher{}
	simhook.Install(disp)
	defer simhook.Uninstall()

	wave := fr.Wave
	ranThisCall := 0
	for len(frontier) > 0 {
		if par.RunBudget > 0 && ranThisCall >= par.RunBudget {
			break
		}
		batch := frontier
		var tail []dfsBranch
		if par.RunBudget > 0 && len(batch) > par.RunBudget-ranThisCall {
			batch = frontier[:par.RunBudget-ranThisCall]
			tail = frontier[par.RunBudget-ranThisCall:]
		}
		outcomes := make([]runOutcome, len(batch))
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				d := &dfsDecider{budget: cfg.Preemptions, reduce: cfg.Reduction}
				for {
					i := int(next.Add(1)) - 1
					if i >= len(batch) {
						return
					}
					d.stack = d.stack[:0]
					d.beginRun(batch[i])
					s := newSim(scenario, d, opt)
					s.disp = disp
					s.runOnce()
					outcomes[i] = runOutcome{
						steps:        s.steps,
						inconclusive: s.inconclusive,
						pruned:       s.pruned,
						violations:   s.violations,
						schedule:     s.scheduleString(),
						log:          append([]string(nil), s.events...),
						children:     append([]dfsBranch(nil), d.stack...),
					}
				}
			}()
		}
		wg.Wait()
		var children []dfsBranch
		violated := acc.Failed()
		for _, o := range outcomes {
			acc.Runs++
			ranThisCall++
			acc.Steps += int64(o.steps)
			if o.inconclusive {
				acc.Inconclusive++
			}
			if o.pruned {
				acc.Pruned++
			}
			if len(o.violations) > 0 && !violated {
				acc.Violations = o.violations
				acc.Schedule = o.schedule
				acc.Log = o.log
				violated = true
			}
			children = append(children, o.children...)
		}
		wave++
		frontier = append(tail, children...)
		if violated {
			break
		}
	}

	out := &Frontier{
		Schema:          FrontierSchema,
		Scenario:        fr.Scenario,
		Preemptions:     fr.Preemptions,
		Reduction:       fr.Reduction,
		MaxSteps:        fr.MaxSteps,
		FaultTries:      fr.FaultTries,
		SpuriousWakeups: fr.SpuriousWakeups,
		Wave:            wave,
		Runs:            acc.Runs,
		Steps:           acc.Steps,
		Inconclusive:    acc.Inconclusive,
		Pruned:          acc.Pruned,
		Done:            len(frontier) == 0,
	}
	for _, br := range frontier {
		out.Branches = append(out.Branches, FrontierBranch{
			Prefix: br.prefix, Preempts: br.preempts, Sleep: br.sleep,
		})
	}
	acc.Exhausted = out.Done && acc.Inconclusive == 0 && !acc.Failed()
	return acc, out
}

// checkResume refuses a checkpoint whose search parameters differ from the
// caller's: resuming a frontier under a different budget, reduction, or
// fault model would silently change what the eventual Exhausted verdict
// covers.
func checkResume(fr *Frontier, cfg DFSConfig, par ParallelConfig, opt Options) error {
	if err := fr.Validate(); err != nil {
		return err
	}
	maxSteps := opt.MaxSteps
	if maxSteps <= 0 {
		maxSteps = defaultMaxSteps
	}
	switch {
	case par.Scenario != "" && fr.Scenario != par.Scenario:
		return fmt.Errorf("checkpoint is for scenario %q, not %q", fr.Scenario, par.Scenario)
	case fr.Preemptions != cfg.Preemptions:
		return fmt.Errorf("checkpoint preemption bound %d, caller wants %d", fr.Preemptions, cfg.Preemptions)
	case fr.Reduction != cfg.Reduction.String():
		return fmt.Errorf("checkpoint reduction %q, caller wants %q", fr.Reduction, cfg.Reduction)
	case fr.MaxSteps != maxSteps:
		return fmt.Errorf("checkpoint max_steps %d, caller wants %d", fr.MaxSteps, maxSteps)
	case fr.FaultTries != opt.FaultTries || fr.SpuriousWakeups != opt.SpuriousWakeups:
		return fmt.Errorf("checkpoint fault model (tries=%v wakeups=%v) differs from caller (tries=%v wakeups=%v)",
			fr.FaultTries, fr.SpuriousWakeups, opt.FaultTries, opt.SpuriousWakeups)
	}
	return nil
}

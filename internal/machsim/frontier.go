package machsim

// This file defines the machlock-simfrontier/v1 schema: a checkpoint of an
// in-progress parallel exploration. The frontier is the ordered list of
// unexplored schedule prefixes (plus, per prefix, its preemption spend and
// POR sleep set); writing it after a budgeted wave and reading it back next
// run resumes the search exactly where it stopped instead of re-exploring
// from the root. Same Validate/Read/Write shape as internal/benchjson.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// FrontierSchema is the format identifier carried in every frontier file.
const FrontierSchema = "machlock-simfrontier/v1"

// FrontierBranch is one unexplored schedule prefix.
type FrontierBranch struct {
	// Prefix is the decision-token sequence reaching the branch point,
	// including the alternative taken there (empty for the root).
	Prefix []string `json:"prefix"`
	// Preempts is the preemption budget already spent by the prefix.
	Preempts int `json:"preempts"`
	// Sleep is the POR sleep set of the state the prefix reaches: thread
	// indices whose pending step a sibling exploration already covers.
	Sleep []int `json:"sleep,omitempty"`
}

// Frontier is one checkpoint of one scenario's bounded exploration. The
// configuration fields pin the search parameters: resuming under different
// parameters would silently change what "Exhausted" means, so
// ExploreParallel refuses mismatched checkpoints.
type Frontier struct {
	Schema   string `json:"schema"`
	Scenario string `json:"scenario"` // label, e.g. "scenarios/pageable"

	Preemptions     int    `json:"preemptions"`
	Reduction       string `json:"reduction"` // "none", "sleep", "persistent"
	MaxSteps        int    `json:"max_steps"`
	FaultTries      bool   `json:"fault_tries,omitempty"`
	SpuriousWakeups bool   `json:"spurious_wakeups,omitempty"`

	// Cumulative progress across every resumed session.
	Wave         int   `json:"wave"`
	Runs         int   `json:"runs"`
	Steps        int64 `json:"steps"`
	Inconclusive int   `json:"inconclusive"`
	Pruned       int   `json:"pruned"`

	// Done marks an exhausted search: the frontier emptied, nothing left
	// to resume.
	Done bool `json:"done"`

	Branches []FrontierBranch `json:"branches"`
}

// NewFrontier returns the root frontier for one scenario and search
// configuration: a single empty prefix, everything still to explore.
func NewFrontier(scenario string, cfg DFSConfig, opt Options) *Frontier {
	maxSteps := opt.MaxSteps
	if maxSteps <= 0 {
		maxSteps = defaultMaxSteps
	}
	return &Frontier{
		Schema:          FrontierSchema,
		Scenario:        scenario,
		Preemptions:     cfg.Preemptions,
		Reduction:       cfg.Reduction.String(),
		MaxSteps:        maxSteps,
		FaultTries:      opt.FaultTries,
		SpuriousWakeups: opt.SpuriousWakeups,
		Branches:        []FrontierBranch{{}},
	}
}

// Validate checks the frontier is well-formed: right schema, named
// scenario, parseable reduction, sane counts, branches within the
// preemption budget, and Done consistent with an empty frontier.
func (f *Frontier) Validate() error {
	if f == nil {
		return fmt.Errorf("frontier: nil frontier")
	}
	if f.Schema != FrontierSchema {
		return fmt.Errorf("frontier: schema %q, want %q", f.Schema, FrontierSchema)
	}
	if f.Scenario == "" {
		return fmt.Errorf("frontier: no scenario name")
	}
	if _, err := ParseReduction(f.Reduction); err != nil {
		return fmt.Errorf("frontier: %w", err)
	}
	if f.Preemptions < 0 || f.MaxSteps <= 0 {
		return fmt.Errorf("frontier: preemptions=%d max_steps=%d out of range",
			f.Preemptions, f.MaxSteps)
	}
	if f.Wave < 0 || f.Runs < 0 || f.Steps < 0 || f.Inconclusive < 0 || f.Pruned < 0 {
		return fmt.Errorf("frontier: negative progress counts")
	}
	if f.Done && len(f.Branches) > 0 {
		return fmt.Errorf("frontier: done but %d branches remain", len(f.Branches))
	}
	for i, br := range f.Branches {
		if br.Preempts < 0 || br.Preempts > f.Preemptions {
			return fmt.Errorf("frontier: branch %d spends %d preemptions of a budget of %d",
				i, br.Preempts, f.Preemptions)
		}
		for _, tok := range br.Prefix {
			if tok == "" {
				return fmt.Errorf("frontier: branch %d has an empty token", i)
			}
		}
		for _, u := range br.Sleep {
			if u < 0 || u >= maxThreads {
				return fmt.Errorf("frontier: branch %d sleeps thread %d (out of range)", i, u)
			}
		}
	}
	return nil
}

// WriteFrontier renders the frontier as indented JSON.
func WriteFrontier(w io.Writer, f *Frontier) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return fmt.Errorf("frontier: %w", err)
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// WriteFrontierFile writes the frontier to path ("-" for stdout),
// validating first.
func WriteFrontierFile(path string, f *Frontier) error {
	if err := f.Validate(); err != nil {
		return err
	}
	if path == "-" {
		return WriteFrontier(os.Stdout, f)
	}
	fh, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("frontier: %w", err)
	}
	if err := WriteFrontier(fh, f); err != nil {
		fh.Close()
		return err
	}
	return fh.Close()
}

// ReadFrontier parses and validates a frontier.
func ReadFrontier(r io.Reader) (*Frontier, error) {
	var f Frontier
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("frontier: %w", err)
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return &f, nil
}

// ReadFrontierFile parses and validates the frontier at path.
func ReadFrontierFile(path string) (*Frontier, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	f, err := ReadFrontier(fh)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

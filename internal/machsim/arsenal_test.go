package machsim

import (
	"testing"

	"machlock/internal/core/cxlock"
	"machlock/internal/core/splock"
	"machlock/internal/machsim/simhook"
	"machlock/internal/sched"
)

// The arsenal protocol suites: every selectable simple-lock algorithm must
// survive the same schedule exploration the default lock does, plus the
// algorithm-specific obligations — FIFO handoff for the queue lock, no
// lost wakeup for the parking one, bounded unfairness for the cohort.

// arsenalCounterScenario builds the canonical two-thread counter over a
// lock constructed with the given options.
func arsenalCounterScenario(o splock.Opts, perThread int) (func(*Sim), *int) {
	n := new(int)
	return func(s *Sim) {
		*n = 0
		l := splock.NewWith(o)
		s.Label(l, "arsenal.lock")
		body := func(_ *sched.Thread) {
			for i := 0; i < perThread; i++ {
				l.Lock()
				*n++
				l.Unlock()
			}
		}
		s.Spawn("incA", body)
		s.Spawn("incB", body)
		s.AtEnd(func(fail func(string, ...any)) {
			if *n != 2*perThread {
				fail("lost update: n=%d, want %d", *n, 2*perThread)
			}
		})
	}, n
}

// TestSimQueueLock explores the MCS queue lock exhaustively. The shadow
// model checks mutual exclusion AND FIFO handoff here: every acquisition
// emits SpEnqueued, so an acquirer overtaking an earlier waiter would be
// flagged as a fifo-handoff violation.
func TestSimQueueLock(t *testing.T) {
	scenario, _ := arsenalCounterScenario(splock.Opts{Algorithm: splock.Queue}, 2)
	res := Explore(scenario, DFSConfig{Preemptions: 2}, Options{})
	Check(t, res)
	if !res.Exhausted {
		t.Fatalf("expected the bounded space to be exhausted: %s", res.Summary())
	}
	if res.Runs < 2 {
		t.Fatalf("expected multiple schedules, got %d", res.Runs)
	}
}

// TestSimQueueFIFOCheckerCatchesOvertake plants a forged queue-jump — a
// thread that acquires while an earlier enqueued waiter is still in line —
// by emitting the protocol notes directly, and requires the shadow model
// to flag it. A FIFO checker that cannot catch a planted overtake proves
// nothing about the real handoff path.
func TestSimQueueFIFOCheckerCatchesOvertake(t *testing.T) {
	scenario := func(s *Sim) {
		l := &struct{ _ int }{} // stands in for a queue lock identity
		s.Label(l, "forged.lock")
		var enqueued, jumped bool
		s.Spawn("patient", func(_ *sched.Thread) {
			simhook.Note(simhook.SpEnqueued, l, 0)
			enqueued = true
			for !jumped {
				simhook.Yield(simhook.SpSpin, l)
			}
			simhook.Note(simhook.SpAcquired, l, 0)
			simhook.Note(simhook.SpReleased, l, 0)
		})
		s.Spawn("jumper", func(_ *sched.Thread) {
			for !enqueued {
				simhook.Yield(simhook.SpSpin, l)
			}
			simhook.Note(simhook.SpEnqueued, l, 0)
			simhook.Note(simhook.SpAcquired, l, 0) // overtakes "patient"
			jumped = true
			simhook.Note(simhook.SpReleased, l, 0)
		})
	}
	res := Random(scenario, 50, 1, Options{})
	if !res.Failed() {
		t.Fatal("FIFO checker missed a planted queue overtake")
	}
	if res.Violations[0].Checker != "fifo-handoff" {
		t.Fatalf("expected fifo-handoff, got %v", res.Violations[0])
	}
}

// TestSimCohortLock explores the cohort lock (two domains, handoff budget
// 1 so the global lock changes hands inside the bounded schedules). The
// cohort deliberately emits no SpEnqueued — lock-wide FIFO is exactly
// what it trades away — so the model checks mutual exclusion, and the
// AtEnd counter checks no increment was lost across the two grant paths
// (direct handoff with the global lock vs. fresh global acquisition).
func TestSimCohortLock(t *testing.T) {
	scenario, _ := arsenalCounterScenario(splock.Opts{
		Algorithm:     splock.Cohort,
		Domains:       2,
		HandoffBudget: 1,
	}, 2)
	res := Explore(scenario, DFSConfig{Preemptions: 2}, Options{})
	Check(t, res)
	if !res.Exhausted {
		t.Fatalf("expected the bounded space to be exhausted: %s", res.Summary())
	}
}

// TestSimCohortFairnessBudget: with a handoff budget of 1 a domain may
// keep the lock for at most one extra handoff before releasing the global
// word, so two threads pinned (by round-robin assignment) to different
// domains must both finish — the bounded-unfairness contract. A stuck
// cross-domain waiter would deadlock the exploration and fail Check.
func TestSimCohortFairnessBudget(t *testing.T) {
	scenario := func(s *Sim) {
		l := splock.NewWith(splock.Opts{
			Algorithm:     splock.Cohort,
			Domains:       2,
			HandoffBudget: 1,
		})
		s.Label(l, "cohort.lock")
		done := [2]int{}
		for i := 0; i < 2; i++ {
			i := i
			s.Spawn("cell", func(_ *sched.Thread) {
				for j := 0; j < 3; j++ {
					l.Lock()
					done[i]++
					l.Unlock()
				}
			})
		}
		s.AtEnd(func(fail func(string, ...any)) {
			if done[0] != 3 || done[1] != 3 {
				fail("a domain starved: %v", done)
			}
		})
	}
	res := Random(scenario, 200, 11, Options{})
	Check(t, res)
}

// TestSimAdaptivePark drives the adaptive lock with a spin budget of 1 so
// waiters park under contention, with spurious wakeups injected: a parked
// waiter woken for no reason must re-evaluate and re-park, never treat
// the wakeup as a grant, and never miss the real handoff (no lost
// wakeup, no duplicate hold).
func TestSimAdaptivePark(t *testing.T) {
	scenario, _ := arsenalCounterScenario(splock.Opts{
		Algorithm:  splock.Adaptive,
		SpinBudget: 1,
	}, 2)
	res := Random(scenario, 300, 3, Options{SpuriousWakeups: true})
	Check(t, res)

	res = Explore(scenario, DFSConfig{Preemptions: 2}, Options{})
	Check(t, res)
	if !res.Exhausted {
		t.Fatalf("expected the bounded space to be exhausted: %s", res.Summary())
	}
}

// TestSimAdaptiveActuallyParks confirms the adaptive scenario exercises
// the park path (otherwise the suite above would only ever test the spin
// window): across the explored schedules at least one waiter must have
// exhausted its one-iteration budget and parked.
func TestSimAdaptiveActuallyParks(t *testing.T) {
	var parks int64
	scenario := func(s *Sim) {
		l := splock.NewWith(splock.Opts{Algorithm: splock.Adaptive, SpinBudget: 1})
		s.Label(l, "adaptive.lock")
		body := func(_ *sched.Thread) {
			for i := 0; i < 2; i++ {
				l.Lock()
				l.Unlock()
			}
		}
		s.Spawn("a", body)
		s.Spawn("b", body)
		s.AtEnd(func(func(string, ...any)) {
			parks += l.AlgoStats().Parks
		})
	}
	res := Explore(scenario, DFSConfig{Preemptions: 2}, Options{})
	Check(t, res)
	if parks == 0 {
		t.Fatal("no schedule parked a waiter; the park path went untested")
	}
}

// TestSimCxSpinThenPark: the complex lock's spin-then-park waiting
// strategy under spurious wakeups. A waiter inside its spin window that
// is spuriously restarted, or parked and spuriously woken, must re-check
// the lock state under the interlock — the classic lost-wakeup and
// phantom-grant hazards of mixing spinning with blocking.
func TestSimCxSpinThenPark(t *testing.T) {
	scenario := func(s *Sim) {
		l := cxlock.NewWith(cxlock.Options{SpinPark: 2, Name: "stp"})
		s.Label(l, "stp")
		n := 0
		for _, name := range []string{"w1", "w2"} {
			s.Spawn(name, func(t *sched.Thread) {
				l.Write(t)
				n++
				l.Done(t)
			})
		}
		s.AtEnd(func(fail func(string, ...any)) {
			if n != 2 {
				fail("lost update through spin-then-park: n=%d, want 2", n)
			}
		})
	}
	res := Random(scenario, 300, 5, Options{SpuriousWakeups: true})
	Check(t, res)
	res = Explore(scenario, DFSConfig{Preemptions: 2}, Options{})
	Check(t, res)
}

// TestSimCxInterlockAlgorithms runs the complex-lock writer pair over
// each arsenal interlock: the interlock is a drop-in replacement, so the
// whole cxlock protocol must hold unchanged on top of it.
func TestSimCxInterlockAlgorithms(t *testing.T) {
	for _, p := range []splock.Policy{splock.Queue, splock.Cohort, splock.Adaptive} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			scenario := func(s *Sim) {
				l := cxlock.NewWith(cxlock.Options{Interlock: p, Name: "il." + p.String()})
				s.Label(l, "il."+p.String())
				n := 0
				for _, name := range []string{"w1", "w2"} {
					s.Spawn(name, func(t *sched.Thread) {
						l.Write(t)
						n++
						l.Done(t)
					})
				}
				s.AtEnd(func(fail func(string, ...any)) {
					if n != 2 {
						fail("lost update over %s interlock: n=%d, want 2", p, n)
					}
				})
			}
			res := Explore(scenario, DFSConfig{Preemptions: 2}, Options{})
			Check(t, res)
		})
	}
}

package scenarios

import (
	"machlock/internal/core/object"
	"machlock/internal/ipc"
	"machlock/internal/machsim"
	"machlock/internal/sched"
)

// kobj is a minimal kernel object behind a port: the embedded object base
// supplies the lock, reference count, and destruction tracking.
type kobj struct {
	object.Object
}

// PortShutdownScenario races a port's shutdown against a concurrent
// translation of that port to its kernel object — Sections 9 and 10: the
// destroyer strips the object pointer and drops the port's reference while
// a sender is halfway through port-to-object translation.
//
// fixed=true runs the repo's REAL protocol: Port.KObject clones the object
// reference UNDER the port lock, where it is covered by the port's own
// still-present reference, so the destroyer's release can never hit zero
// first. The bounded search must exhaust clean with the object and port
// destroyed exactly once.
//
// fixed=false plants the pre-fix translation on a minimal port replica:
// read the object pointer under the port lock, unlock, and only THEN take
// the reference. In the unlock-to-clone window the destroyer's release
// drops the last reference and destroys the object; the late TakeRef then
// locks freed storage, which the object discipline reports (a reference is
// required in order to relock an object). The search must find that
// window.
func PortShutdownScenario(fixed bool) machsim.Scenario {
	if fixed {
		return portShutdownReal
	}
	return portShutdownLoose
}

func portShutdownReal(s *machsim.Sim) {
	port := ipc.NewPort("svc")
	obj := &kobj{}
	obj.Init("svc.kobj")
	// The creator's reference on obj is donated to the port's kobject
	// pointer; the user thread gets its own port reference (translation
	// requires one).
	port.SetKObject(ipc.KindCustom, obj)
	port.TakeRef()

	var translated bool
	s.Spawn("user", func(t *sched.Thread) {
		_, ko, err := port.KObject()
		if err == nil {
			translated = true
			ko.Release(nil)
		}
		port.Release(nil)
	})
	s.Spawn("destroyer", func(t *sched.Thread) {
		port.Destroy()
	})
	s.AtEnd(func(fail func(string, ...any)) {
		if !obj.Destroyed() {
			fail("object leaked: refs survived shutdown (translated=%v)", translated)
		}
		if !port.Destroyed() {
			fail("port leaked after destroy and release")
		}
	})
}

// loosePort is the minimal replica carrying the planted bug; only the
// translation path differs from the real port.
type loosePort struct {
	object.Object
	kobj *kobj
}

func portShutdownLoose(s *machsim.Sim) {
	port := &loosePort{}
	port.Init("svc.loose")
	obj := &kobj{}
	obj.Init("svc.kobj")
	port.kobj = obj // donate the creator's reference, as the real port does
	port.TakeRef()  // the user thread's port reference

	s.Spawn("user", func(t *sched.Thread) {
		port.Lock()
		var ko *kobj
		if port.Active() {
			ko = port.kobj
		}
		port.Unlock()
		// BUG: the reference is taken AFTER dropping the port lock. The
		// port's own reference no longer covers this window — the
		// destroyer can strip the pointer and release it to zero first.
		if ko != nil {
			ko.TakeRef()
			ko.Release(nil)
		}
		port.Release(nil)
	})
	s.Spawn("destroyer", func(t *sched.Thread) {
		port.Lock()
		first := port.Deactivate()
		var ko *kobj
		if first {
			ko = port.kobj
			port.kobj = nil
		}
		port.Unlock()
		if ko != nil {
			ko.Release(nil) // the port's reference — possibly the last
		}
		port.Release(nil)
	})
}

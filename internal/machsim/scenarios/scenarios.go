// Package scenarios holds the multi-subsystem machsim scenarios: whole
// protocol slices from the paper — vm_map_pageable against the pageout
// daemon (Section 7.1), the interrupt-barrier exemption protocol
// (Section 7), and port/object shutdown against concurrent translation
// (Sections 9-10) — expressed as schedule-exploration scenarios.
//
// Every scenario comes in two flavours, following the harness's
// negative-control discipline: the PRE-FIX model plants the historical bug
// and the bounded search must re-find it (proving the search can see bugs
// of this shape), and the REAL protocol runs the repo's actual code and
// must exhaust its bounded schedule space clean. The registry lets tests
// and cmd/simfrontier enumerate both sets.
package scenarios

import (
	"machlock/internal/machsim"
)

// Named is one registered scenario with the exploration parameters its
// verdict is stated under.
type Named struct {
	Name     string
	Scenario machsim.Scenario
	// Preemptions is the CHESS preemption bound the verdict holds under.
	Preemptions int
	// Reduction is the POR mode the exhaustive runs use (the planted-bug
	// runs use it too; a reduction that hides a planted bug is unsound).
	Reduction machsim.Reduction
	// WantCheckers is empty for scenarios that must exhaust clean, and the
	// violated checker names the search must find for planted-bug models.
	WantCheckers []string
}

// All returns every registered scenario, planted-bug models first.
func All() []Named {
	return []Named{
		{
			Name:         "intbarrier-prefix",
			Scenario:     IntBarrierScenario(false),
			Preemptions:  1,
			Reduction:    machsim.ReduceSleep,
			WantCheckers: []string{"deadlock"},
		},
		{
			Name:         "pageable-prefix",
			Scenario:     PageableScenario(false),
			Preemptions:  1,
			Reduction:    machsim.ReduceSleep,
			WantCheckers: []string{"deadlock"},
		},
		{
			Name:         "portshutdown-prefix",
			Scenario:     PortShutdownScenario(false),
			Preemptions:  1,
			Reduction:    machsim.ReduceSleep,
			WantCheckers: []string{"relock-reference"},
		},
		{
			Name:        "intbarrier",
			Scenario:    IntBarrierScenario(true),
			Preemptions: 2,
			Reduction:   machsim.ReduceSleep,
		},
		{
			Name:        "pageable",
			Scenario:    PageableScenario(true),
			Preemptions: 2,
			Reduction:   machsim.ReduceSleep,
		},
		{
			Name:        "portshutdown",
			Scenario:    PortShutdownScenario(true),
			Preemptions: 2,
			Reduction:   machsim.ReduceSleep,
		},
	}
}

// Lookup returns the scenario registered under name.
func Lookup(name string) (Named, bool) {
	for _, n := range All() {
		if n.Name == name {
			return n, true
		}
	}
	return Named{}, false
}

package scenarios

import (
	"sort"
	"strings"
	"testing"

	"machlock/internal/machsim"
)

func checkers(res machsim.Result) []string {
	seen := map[string]bool{}
	var names []string
	for _, v := range res.Violations {
		if !seen[v.Checker] {
			seen[v.Checker] = true
			names = append(names, v.Checker)
		}
	}
	sort.Strings(names)
	return names
}

// TestSimScenarios drives every registered scenario through the bounded
// search under its stated parameters. Planted pre-fix models are negative
// controls: the search must re-find the historical bug and the reported
// schedule must replay to the same violation. Real-protocol scenarios must
// exhaust their bounded space with zero violations.
func TestSimScenarios(t *testing.T) {
	for _, n := range All() {
		t.Run(n.Name, func(t *testing.T) {
			cfg := machsim.DFSConfig{
				Preemptions: n.Preemptions,
				Reduction:   n.Reduction,
				MaxRuns:     200000,
			}
			res := machsim.Explore(n.Scenario, cfg, machsim.Options{})
			if len(n.WantCheckers) == 0 {
				machsim.Check(t, res)
				if !res.Exhausted {
					t.Fatalf("real protocol did not exhaust its bounded space: %s", res.Summary())
				}
				return
			}
			if !res.Failed() {
				t.Fatalf("search missed the planted bug: %s", res.Summary())
			}
			got := checkers(res)
			if strings.Join(got, ",") != strings.Join(n.WantCheckers, ",") {
				t.Fatalf("found %v, want %v\n%s", got, n.WantCheckers, res.Report())
			}
			rep := machsim.Replay(n.Scenario, res.Schedule, machsim.Options{})
			if strings.Join(checkers(rep), ",") != strings.Join(got, ",") {
				t.Fatalf("schedule %q replayed to %v, want %v", res.Schedule, checkers(rep), got)
			}
		})
	}
}

// TestSimScenariosParallel re-runs one planted model and one real protocol
// through the parallel wave engine: same verdicts as the serial search,
// from a multi-worker exploration.
func TestSimScenariosParallel(t *testing.T) {
	buggy, _ := Lookup("pageable-prefix")
	res, _ := machsim.ExploreParallel(buggy.Scenario,
		machsim.DFSConfig{Preemptions: buggy.Preemptions, Reduction: buggy.Reduction},
		machsim.ParallelConfig{Workers: 4, Scenario: buggy.Name}, machsim.Options{})
	if !res.Failed() || strings.Join(checkers(res), ",") != "deadlock" {
		t.Fatalf("parallel search missed the planted deadlock: %s", res.Summary())
	}

	clean, _ := Lookup("intbarrier")
	res, fr := machsim.ExploreParallel(clean.Scenario,
		machsim.DFSConfig{Preemptions: clean.Preemptions, Reduction: clean.Reduction},
		machsim.ParallelConfig{Workers: 4, Scenario: clean.Name}, machsim.Options{})
	machsim.Check(t, res)
	if !res.Exhausted || !fr.Done {
		t.Fatalf("parallel search did not exhaust the real protocol: %s", res.Summary())
	}
}

package scenarios

import (
	"machlock/internal/machsim"
	"machlock/internal/sched"
	"machlock/internal/vm"
)

// PageableScenario runs the REAL vm code through the Section 7.1 deadlock:
// vm_map_pageable wiring pages under a recursive map lock while the pageout
// daemon needs the map's write lock to free memory.
//
// The setup is a 2-page machine squeezed dry: a hog object owns both
// physical pages (resident, unwired — exactly what pageout reclaims) and a
// wire request arrives for two pages of a second object. The wire operation
// must fault its pages in, every fault hits the shortage, and only the
// pageout thread can resolve it.
//
// fixed=false uses Map.WireRecursive, the original protocol the paper
// dissects: the shortage wait happens with the outer recursive read hold
// still in place, the pageout thread blocks behind it on the write lock,
// and the system deadlocks — the search must find it. fixed=true uses
// Map.Wire, the rewrite that fully releases the map lock before faulting;
// the same squeeze must exhaust clean.
func PageableScenario(fixed bool) machsim.Scenario {
	return func(s *machsim.Sim) {
		pool := vm.NewPool(2)
		m := vm.NewMap(pool)
		hog := vm.NewObject(pool, 2)
		target := vm.NewObject(pool, 2)
		s.Label(m.DebugLock(), "vm.map.lock")

		// Setup (not a scheduling point): the hog's pages go resident,
		// emptying the pool before any virtual thread runs.
		init := sched.New("init")
		if err := m.Allocate(init, 0, 2, hog, 0); err != nil {
			panic(err)
		}
		if err := m.Allocate(init, 10, 2, target, 0); err != nil {
			panic(err)
		}
		for va := uint64(0); va < 2; va++ {
			if err := m.Fault(init, va, false); err != nil {
				panic(err)
			}
		}
		if pool.FreeCount() != 0 {
			panic("scenarios: pageable setup should drain the pool")
		}

		var wireErr error
		s.Spawn("wirer", func(t *sched.Thread) {
			if fixed {
				wireErr = m.Wire(t, 10, 12)
			} else {
				wireErr = m.WireRecursive(t, 10, 12)
			}
		})
		s.Spawn("pageout", func(t *sched.Thread) {
			// One reclaim pass, like the daemon's shortage response. The
			// hog's two unwired pages are the reclaimable set.
			m.ReclaimPages(t, 2)
		})
		s.AtEnd(func(fail func(string, ...any)) {
			if wireErr != nil {
				fail("wire failed: %v", wireErr)
			}
			for _, e := range m.Entries(initActorThread()) {
				if e.Start() == 10 && e.WireCount() != 1 {
					fail("target entry wire count %d, want 1", e.WireCount())
				}
			}
		})
	}
}

// initActorThread gives at-end checks a throwaway thread identity (at-end
// code runs outside any virtual thread, with the locks uncontended).
func initActorThread() *sched.Thread { return sched.New("at-end") }

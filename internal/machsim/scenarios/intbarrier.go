package scenarios

import (
	"machlock/internal/core/cxlock"
	"machlock/internal/core/splock"
	"machlock/internal/machsim"
	"machlock/internal/sched"
)

// IntBarrierScenario models the Section 7 interrupt-barrier deadlock: a
// processor updating hardware state holds the pmap lock and waits for every
// other processor to acknowledge an IPI, while another processor — about to
// acquire that same pmap lock — cannot service interrupts once it has
// committed to the acquisition. The paper's fix is the exemption protocol:
// a processor exempts itself from interrupt barriers before committing to a
// lock acquisition, and the barrier initiator counts exempt processors as
// acknowledged.
//
// The victim thread is one such processor: it takes the pmap lock for its
// own work, and it always services exactly one IPI — as soon as the IPI
// arrives, unless it is committed to the lock at that moment. The initiator
// holds the pmap lock, posts the IPI, and waits for the acknowledgement.
//
// fixed=false plants the pre-exemption protocol: the victim simply goes
// for the lock. On schedules where the initiator already holds it, the
// victim blocks uninterruptible, the ack never comes, and the search must
// find the resulting deadlock. fixed=true runs the exemption protocol —
// the victim registers exempt (waking the initiator) BEFORE committing,
// clears it after acquiring, and the initiator's wait loop re-checks the
// exemption on every wakeup — and must exhaust clean.
//
// Modeling note: the historical bug is a SPIN deadlock (interrupts
// disabled, spinning on the lock word), which a schedule explorer can only
// classify as a step-budget overrun. To make the cycle structurally
// visible to the deadlock checker, the pmap stand-in is a sleepable
// complex lock and both waits are event waits: identical wait-for graph,
// observable blocking.
func IntBarrierScenario(fixed bool) machsim.Scenario {
	return func(s *machsim.Sim) {
		pmap := cxlock.NewWith(cxlock.Options{Sleep: true, Name: "pmap"})
		ackLock := &splock.Lock{}
		type ackState struct {
			ipi    bool // initiator has posted its IPI
			acked  bool // victim acknowledged it
			exempt bool // victim exempted itself from barriers (fix only)
		}
		st := &ackState{}
		ipiEvent := sched.Event(&st.ipi)
		ackEvent := sched.Event(&st.acked)
		s.Label(pmap, "pmap.lock")
		s.Label(ackLock, "ack.lock")

		s.Spawn("victim", func(t *sched.Thread) {
			if fixed {
				// The exemption: declare "I cannot service interrupts"
				// BEFORE committing to the acquisition, and wake the
				// initiator so it can count the exemption as an ack.
				ackLock.Lock()
				st.exempt = true
				ackLock.Unlock()
				sched.ThreadWakeup(ackEvent)
			}
			pmap.Write(t) // committed: no interrupt service past this point
			if fixed {
				ackLock.Lock()
				st.exempt = false
				ackLock.Unlock()
			}
			pmap.Done(t)

			// Interrupts deliverable again: service the one IPI this run
			// sends, waiting for it if it has not arrived yet.
			ackLock.Lock()
			for !st.ipi {
				sched.AssertWait(t, ipiEvent)
				ackLock.Unlock()
				sched.ThreadBlock(t)
				ackLock.Lock()
			}
			st.acked = true
			ackLock.Unlock()
			sched.ThreadWakeup(ackEvent)
		})

		s.Spawn("initiator", func(t *sched.Thread) {
			pmap.Write(t) // the hardware update runs under the pmap lock
			ackLock.Lock()
			st.ipi = true
			ackLock.Unlock()
			sched.ThreadWakeup(ipiEvent)
			for {
				ackLock.Lock()
				done := st.acked || st.exempt
				if done {
					ackLock.Unlock()
					break
				}
				sched.AssertWait(t, ackEvent)
				ackLock.Unlock()
				//machvet:allow sleepwake — modeled protocol: the Section 7 barrier initiator holds pmap across the ack wait by design; the fix is the exemption, not dropping the lock
				sched.ThreadBlock(t)
			}
			pmap.Done(t)
		})
	}
}

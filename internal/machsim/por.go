package machsim

import (
	"fmt"
	"sort"

	"machlock/internal/machsim/simhook"
)

// This file is the partial-order-reduction layer of the Explore engine:
// sleep sets (Godefroid) and a persistent-set heuristic computed over the
// simhook event vocabulary, so the same Exhausted guarantee covers
// subsystem-sized scenarios whose unreduced schedule space is out of
// reach.
//
// THE INDEPENDENCE RELATION. A "step" is everything a virtual thread
// executes between two scheduling points. Its memory footprint is
// approximated by the pending operation at the step's opening yield — the
// (point, object) pair the thread is about to perform — which works
// because the substrate's instrumentation brackets every shared-state
// transition with yields on the owning object:
//
//   - splock steps (SpLock/SpSpin/SpTry/SpUnlock/SpPark) touch the lock
//     word, the queue/park nodes of that lock, and — in the step that runs
//     the caller's critical section — data protected by that lock. Two
//     steps on different lock objects commute.
//   - cxlock entry yields (CxRead/CxWrite/...) open empty steps: the very
//     next action is the interlock acquisition, which is an instrumented
//     splock with its own yields, so every access to the cx state machine
//     lands in a step footprinted on the interlock object. Same-object
//     steps are ordered; different locks have different interlocks.
//   - refcount steps (RefClone/RefRelease) touch one counter. Release-to-
//     zero ordering against a concurrent clone on the SAME counter is the
//     resurrection race, so same-object ref steps are always dependent;
//     different counters commute.
//   - sched steps (SchedAssertWait/SchedWakeup/SchedClearWait) touch the
//     wait table and thread states, never a lock word: the interlock
//     release after an assert gets its own SpUnlock yield, and lock paths
//     that wake waiters do it through sched entry points that yield first.
//     sched steps are mutually dependent (shared table, thread states) but
//     commute with lock and ref steps.
//   - anything else — a thread that has not run yet, one returning from a
//     block, a point the classifier does not know — is UNKNOWN and treated
//     as dependent with everything.
//
// Scenario data accesses ride along soundly under the data-race-freedom
// assumption the harness already makes: an access protected by lock l
// happens between l's acquisition yield and release yield, i.e. inside a
// step footprinted on l, so two conflicting accesses live in same-object
// (dependent) steps. A scenario that races on plain shared memory with no
// instrumented operation in between is invisible to the reduction exactly
// as it is invisible to the shadow models; the CrossCheck engine exists to
// validate the assumption empirically per suite.
//
// INTERACTION WITH THE PREEMPTION BOUND. Sleep sets prune an alternative
// only when a representative of its Mazurkiewicz trace is explored from an
// equivalent state. The representative can have a different preemption
// cost than the pruned member, so "Exhausted with reduction" proves
// coverage of the trace classes the bounded reduced search reaches — in
// practice the same verdicts, which is what CrossCheck asserts — rather
// than being schedule-for-schedule identical to the unreduced bound.

// Reduction selects the partial-order-reduction mode of the Explore
// engine.
type Reduction int

const (
	// ReduceNone explores every schedule within the preemption budget
	// (PR 5 behaviour).
	ReduceNone Reduction = iota
	// ReduceSleep maintains sleep sets: an alternative already explored
	// from an equivalent state (reachable by commuting independent steps)
	// is skipped. Sound under the independence relation above; prunes
	// nothing a violation could hide in.
	ReduceSleep
	// ReducePersistent adds a persistent-set restriction on top of sleep
	// sets: at each decision only the conflict-closure of the default
	// choice (computed over the candidates' pending operations) spawns
	// alternatives. This is a HEURISTIC, not a proof: with only one
	// pending operation of lookahead per thread, a thread whose next step
	// is independent but whose later steps conflict can be delayed past a
	// conflict the theory requires exploring. Use it for bug hunting at
	// scale; use ReduceSleep for Exhausted claims. CrossCheck validates
	// both against the unreduced search.
	ReducePersistent
)

var reductionNames = map[Reduction]string{
	ReduceNone: "none", ReduceSleep: "sleep", ReducePersistent: "persistent",
}

// String implements fmt.Stringer ("none", "sleep", "persistent").
func (r Reduction) String() string {
	if s, ok := reductionNames[r]; ok {
		return s
	}
	return fmt.Sprintf("reduction(%d)", int(r))
}

// ParseReduction is the inverse of String (frontier files, CLI flags).
func ParseReduction(s string) (Reduction, error) {
	for r, name := range reductionNames {
		if s == name {
			return r, nil
		}
	}
	return ReduceNone, fmt.Errorf("machsim: unknown reduction %q", s)
}

// opCat classifies a pending operation's footprint.
type opCat uint8

const (
	opUnknown   opCat = iota // dependent with everything
	opLockStep               // splock/cxlock step on opRef.obj
	opRefStep                // refcount step on opRef.obj
	opSchedStep              // wait-table / thread-state step
)

// opRef is the approximate footprint of one pending step.
type opRef struct {
	cat opCat
	obj any
}

// pendingOf classifies the step a virtual thread will execute when next
// scheduled, from the yield point it is suspended at.
func pendingOf(vt *vthread) opRef {
	switch vt.point {
	case simhook.SpLock, simhook.SpSpin, simhook.SpUnlock, simhook.SpTry,
		simhook.SpPark,
		simhook.CxRead, simhook.CxWrite, simhook.CxDone, simhook.CxTryRead,
		simhook.CxTryWrite, simhook.CxUpgrade, simhook.CxTryUpgrade,
		simhook.CxDowngrade, simhook.CxSpin, simhook.CxAcquired,
		simhook.CxBiasPublish:
		return opRef{cat: opLockStep, obj: vt.pobj}
	case simhook.RefClone, simhook.RefRelease:
		return opRef{cat: opRefStep, obj: vt.pobj}
	case simhook.SchedAssertWait, simhook.SchedWakeup, simhook.SchedClearWait:
		return opRef{cat: opSchedStep, obj: vt.pobj}
	default:
		// PointInvalid (never ran), SchedBlocked (returning from a block),
		// or a future point this classifier does not know.
		return opRef{cat: opUnknown}
	}
}

// independentOps reports whether two pending steps commute: executing them
// in either order from the same state reaches the same state, and neither
// disables the other. See the relation documented at the top of the file.
func independentOps(a, b opRef) bool {
	if a.cat == opUnknown || b.cat == opUnknown {
		return false
	}
	if a.cat == opSchedStep && b.cat == opSchedStep {
		return false
	}
	if a.cat == opSchedStep || b.cat == opSchedStep {
		return true
	}
	// lock/ref steps: footprint is the object; distinct objects commute
	// (distinct locks have distinct words and waiter structures, distinct
	// counters have distinct cells, and lock-vs-ref steps only collide
	// through an object they share).
	return a.obj != b.obj
}

// persistentSet computes the conflict closure of the chosen candidate over
// the decision's runnable candidates: start from the continuation and add
// every candidate whose pending step is dependent with (or unknown to) a
// member, to a fixpoint. Injection candidates are never restricted.
func persistentSet(s *Sim, cands []candidate, cont int) map[int]bool {
	if cands[cont].inject {
		return nil
	}
	P := map[int]bool{cands[cont].vt.idx: true}
	for changed := true; changed; {
		changed = false
		for _, c := range cands {
			if c.inject || P[c.vt.idx] {
				continue
			}
			op := pendingOf(c.vt)
			dep := op.cat == opUnknown
			if !dep {
				for _, q := range cands {
					if q.inject || !P[q.vt.idx] || q.vt.idx == c.vt.idx {
						continue
					}
					if !independentOps(op, pendingOf(q.vt)) {
						dep = true
						break
					}
				}
			}
			if dep {
				P[c.vt.idx] = true
				changed = true
			}
		}
	}
	return P
}

// filterSleep keeps the threads of idxs whose pending step is independent
// with op, sorted (sleep sets are order-free; sorting keeps schedules and
// frontier files byte-stable).
func filterSleep(s *Sim, idxs []int, op opRef) []int {
	var out []int
	seen := map[int]bool{}
	for _, u := range idxs {
		if seen[u] {
			continue
		}
		seen[u] = true
		if independentOps(pendingOf(s.vts[u]), op) {
			out = append(out, u)
		}
	}
	sort.Ints(out)
	return out
}

// CrossCheck runs the same bounded exploration three times — unreduced,
// with sleep sets, and with persistent sets — and compares outcomes. It
// returns the unreduced result plus a list of disagreements: a reduction
// that reports a different set of violated checkers, loses an Exhausted
// verdict the unreduced search established, or somehow runs MORE schedules
// than the search it is meant to prune. An empty list is the empirical
// soundness check the POR layer ships with.
func CrossCheck(scenario Scenario, cfg DFSConfig, opt Options) (Result, []string) {
	base := cfg
	base.Reduction = ReduceNone
	r0 := Explore(scenario, base, opt)
	sig0 := checkerSignature(r0)
	var mismatches []string
	for _, red := range []Reduction{ReduceSleep, ReducePersistent} {
		c := cfg
		c.Reduction = red
		r := Explore(scenario, c, opt)
		if sig := checkerSignature(r); sig != sig0 {
			mismatches = append(mismatches, fmt.Sprintf(
				"%s: violation sets differ: unreduced=%q reduced=%q (reduced schedule: %s)",
				red, sig0, sig, r.Schedule))
		}
		if r0.Exhausted && !r.Exhausted {
			mismatches = append(mismatches, fmt.Sprintf(
				"%s: unreduced search exhausted the space but the reduced search did not (%s)",
				red, r.Summary()))
		}
		if r.Runs > r0.Runs {
			mismatches = append(mismatches, fmt.Sprintf(
				"%s: reduction ran more schedules than the unreduced search (%d > %d)",
				red, r.Runs, r0.Runs))
		}
	}
	return r0, mismatches
}

// checkerSignature is the sorted, deduplicated set of violated checker
// names — the "violation set" the cross-check compares. Schedules and
// messages legitimately differ between reduced and unreduced searches;
// which properties failed must not.
func checkerSignature(r Result) string {
	seen := map[string]bool{}
	var names []string
	for _, v := range r.Violations {
		if !seen[v.Checker] {
			seen[v.Checker] = true
			names = append(names, v.Checker)
		}
	}
	sort.Strings(names)
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ","
		}
		out += n
	}
	return out
}

package machsim

import (
	"bytes"
	"runtime"
	"strconv"
	"sync"
	"time"

	"machlock/internal/machsim/simhook"
)

// The simhook seam is deliberately a single process-wide slot — the
// substrate's disabled fast path is one atomic load — so concurrent Sims
// cannot each install themselves. Parallel exploration instead installs
// ONE dispatcher that routes every hook call to the Sim owning the calling
// goroutine: each worker goroutine and each virtual-thread runner registers
// itself against its Sim for the duration of a run. Goroutines nobody
// registered (host test goroutines that happen to touch instrumented code
// while a parallel exploration is running) get the no-harness behaviour:
// yields and notes are dropped, Block/ForceFail report false so callers
// take their host paths, and the clock falls back to the host clock.

// goid returns the current goroutine's id, parsed from the runtime.Stack
// header ("goroutine 123 [running]:"). The header format is stable in
// practice (pprof labels and every crash dump depend on it); a parse
// failure returns 0, which no real goroutine has, so unknown callers
// degrade to the unregistered path rather than misrouting.
func goid() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	b := bytes.TrimPrefix(buf[:n], []byte("goroutine "))
	i := bytes.IndexByte(b, ' ')
	if i <= 0 {
		return 0
	}
	id, err := strconv.ParseUint(string(b[:i]), 10, 64)
	if err != nil {
		return 0
	}
	return id
}

// dispatcher multiplexes the single simhook slot across concurrent Sims.
type dispatcher struct {
	sims sync.Map // goroutine id (uint64) -> *Sim
}

// register binds the calling goroutine to s. Runner goroutines register
// before their first resume-receive, so every hook call a thread body makes
// is ordered after its registration.
func (d *dispatcher) register(s *Sim) { d.sims.Store(goid(), s) }

// unregister unbinds the calling goroutine.
func (d *dispatcher) unregister() { d.sims.Delete(goid()) }

func (d *dispatcher) cur() *Sim {
	if v, ok := d.sims.Load(goid()); ok {
		return v.(*Sim)
	}
	return nil
}

// ---- simhook.Hooks, routed per goroutine ----

func (d *dispatcher) Yield(p simhook.Point, obj any) {
	if s := d.cur(); s != nil {
		s.Yield(p, obj)
	}
}

func (d *dispatcher) Note(p simhook.Point, obj any, n int64) {
	if s := d.cur(); s != nil {
		s.Note(p, obj, n)
	}
}

func (d *dispatcher) ForceFail(p simhook.Point, obj any) bool {
	if s := d.cur(); s != nil {
		return s.ForceFail(p, obj)
	}
	return false
}

func (d *dispatcher) Block(t any) bool {
	if s := d.cur(); s != nil {
		return s.Block(t)
	}
	return false
}

func (d *dispatcher) Unblock(t any) bool {
	if s := d.cur(); s != nil {
		return s.Unblock(t)
	}
	return false
}

func (d *dispatcher) NowNs() int64 {
	if s := d.cur(); s != nil {
		return s.NowNs()
	}
	return time.Now().UnixNano()
}

func (d *dispatcher) Index(t any) (int, bool) {
	if s := d.cur(); s != nil {
		return s.Index(t)
	}
	return 0, false
}

package machsim

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"
)

// TestSimParallelDeterminism: the wave engine's contract is that the
// worker count is invisible — same scenario, same config, any Workers
// value, byte-identical outcome and frontier. Run a violating scenario and
// a clean one under 1, 2, and 8 workers and require identical results.
func TestSimParallelDeterminism(t *testing.T) {
	type outcome struct {
		res Result
		fr  Frontier
	}
	collect := func(sc Scenario, name string, cfg DFSConfig, workers int) outcome {
		res, fr := ExploreParallel(sc, cfg, ParallelConfig{Workers: workers, Scenario: name}, Options{})
		return outcome{res: res, fr: *fr}
	}
	cases := []struct {
		name string
		sc   Scenario
		cfg  DFSConfig
		fail bool
	}{
		{"lost-wakeup", lostWakeupScenario, DFSConfig{Preemptions: 1}, true},
		{"disjoint-clean", disjointLocksScenario(2, 3), DFSConfig{Preemptions: 2, Reduction: ReduceSleep}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base := collect(tc.sc, tc.name, tc.cfg, 1)
			if base.res.Failed() != tc.fail {
				t.Fatalf("workers=1: failed=%v, want %v: %s", base.res.Failed(), tc.fail, base.res.Summary())
			}
			for _, w := range []int{2, 8} {
				got := collect(tc.sc, tc.name, tc.cfg, w)
				if !reflect.DeepEqual(base.res, got.res) {
					t.Errorf("workers=%d result differs:\n  w1: %+v\n  w%d: %+v", w, base.res, w, got.res)
				}
				if !reflect.DeepEqual(base.fr, got.fr) {
					t.Errorf("workers=%d frontier differs:\n  w1: %+v\n  w%d: %+v", w, base.fr, w, got.fr)
				}
			}
		})
	}
}

// TestSimParallelMatchesSerialVerdict: ExploreParallel must reach the same
// verdict as the serial Explore engine — same exhaustion on clean
// scenarios, same violated checkers on buggy ones.
func TestSimParallelMatchesSerialVerdict(t *testing.T) {
	sc := disjointLocksScenario(2, 2)
	cfg := DFSConfig{Preemptions: 2, Reduction: ReduceSleep}
	serial := Explore(sc, cfg, Options{})
	par, fr := ExploreParallel(sc, cfg, ParallelConfig{Workers: 4, Scenario: "clean"}, Options{})
	if !serial.Exhausted || !par.Exhausted || !fr.Done {
		t.Fatalf("expected both engines to exhaust: serial=%s parallel=%s done=%v",
			serial.Summary(), par.Summary(), fr.Done)
	}
	if serial.Runs != par.Runs || serial.Steps != par.Steps || serial.Pruned != par.Pruned {
		t.Fatalf("engines explored different spaces: serial %s, parallel %s",
			serial.Summary(), par.Summary())
	}

	sres := Explore(lostWakeupScenario, DFSConfig{Preemptions: 1}, Options{})
	pres, _ := ExploreParallel(lostWakeupScenario, DFSConfig{Preemptions: 1},
		ParallelConfig{Workers: 4, Scenario: "buggy"}, Options{})
	if checkerSignature(sres) != checkerSignature(pres) {
		t.Fatalf("violation sets differ: serial=%q parallel=%q",
			checkerSignature(sres), checkerSignature(pres))
	}
	// The parallel engine's reported schedule must still replay.
	rep := Replay(lostWakeupScenario, pres.Schedule, Options{})
	if checkerSignature(rep) != checkerSignature(pres) {
		t.Fatalf("parallel schedule %q replayed to %q, want %q",
			pres.Schedule, checkerSignature(rep), checkerSignature(pres))
	}
}

// TestSimFrontierRoundTrip: a checkpoint must survive Write/Read intact,
// both through a buffer and through a file, and Validate must reject the
// obvious corruptions.
func TestSimFrontierRoundTrip(t *testing.T) {
	// A budgeted run leaves a non-trivial frontier to round-trip.
	_, fr := ExploreParallel(disjointLocksScenario(2, 3),
		DFSConfig{Preemptions: 2, Reduction: ReduceSleep},
		ParallelConfig{Workers: 2, RunBudget: 3, Scenario: "roundtrip"}, Options{})
	if fr.Done || len(fr.Branches) == 0 {
		t.Fatalf("budgeted run should leave work behind: done=%v branches=%d", fr.Done, len(fr.Branches))
	}

	var buf bytes.Buffer
	if err := WriteFrontier(&buf, fr); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFrontier(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fr, back) {
		t.Fatalf("buffer round trip changed the frontier:\n  out: %+v\n  in:  %+v", fr, back)
	}

	path := filepath.Join(t.TempDir(), "frontier.json")
	if err := WriteFrontierFile(path, fr); err != nil {
		t.Fatal(err)
	}
	back, err = ReadFrontierFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fr, back) {
		t.Fatalf("file round trip changed the frontier")
	}

	bad := *fr
	bad.Schema = "machlock-simfrontier/v0"
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted a wrong schema")
	}
	bad = *fr
	bad.Done = true
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted done=true with branches remaining")
	}
	bad = *fr
	bad.Reduction = "bogus"
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted an unknown reduction")
	}
}

// TestSimFrontierResume: a search chopped into budgeted slices, each
// resuming the previous checkpoint, must land on the exact verdict and
// cumulative counts of the one-shot search.
func TestSimFrontierResume(t *testing.T) {
	sc := disjointLocksScenario(2, 2)
	cfg := DFSConfig{Preemptions: 2, Reduction: ReduceSleep}
	oneShot, _ := ExploreParallel(sc, cfg, ParallelConfig{Workers: 2, Scenario: "resume"}, Options{})
	if !oneShot.Exhausted {
		t.Fatalf("one-shot search did not exhaust: %s", oneShot.Summary())
	}

	var res Result
	var fr *Frontier
	slices := 0
	for {
		res, fr = ExploreParallel(sc, cfg,
			ParallelConfig{Workers: 2, RunBudget: 7, Resume: fr, Scenario: "resume"}, Options{})
		if res.Failed() {
			t.Fatalf("resumed slice found a violation: %s", res.Report())
		}
		slices++
		if fr.Done {
			break
		}
		if slices > 1000 {
			t.Fatal("resumed search did not converge")
		}
	}
	if slices < 2 {
		t.Fatalf("budget did not actually slice the search (%d slices, %d runs)", slices, res.Runs)
	}
	if !res.Exhausted || res.Runs != oneShot.Runs || res.Steps != oneShot.Steps || res.Pruned != oneShot.Pruned {
		t.Fatalf("resumed search diverged from one-shot:\n  one-shot: %s\n  resumed:  %s (%d slices)",
			oneShot.Summary(), res.Summary(), slices)
	}
}

// TestSimFrontierRejectsMismatch: resuming a checkpoint under different
// search parameters would silently change what Exhausted means, so the
// engine must refuse.
func TestSimFrontierRejectsMismatch(t *testing.T) {
	sc := disjointLocksScenario(2, 2)
	cfg := DFSConfig{Preemptions: 2, Reduction: ReduceSleep}
	_, fr := ExploreParallel(sc, cfg, ParallelConfig{Workers: 1, RunBudget: 2, Scenario: "pin"}, Options{})
	if fr.Done {
		t.Fatal("budgeted run finished early; cannot test resume")
	}
	refuse := func(name string, cfg2 DFSConfig, par ParallelConfig, opt Options) {
		t.Helper()
		res, _ := ExploreParallel(sc, cfg2, par, opt)
		if !res.Failed() || res.Violations[0].Checker != "checkpoint" {
			t.Errorf("%s: expected a checkpoint refusal, got %+v", name, res.Violations)
		}
	}
	refuse("preemptions", DFSConfig{Preemptions: 3, Reduction: ReduceSleep},
		ParallelConfig{Resume: fr, Scenario: "pin"}, Options{})
	refuse("reduction", DFSConfig{Preemptions: 2, Reduction: ReduceNone},
		ParallelConfig{Resume: fr, Scenario: "pin"}, Options{})
	refuse("scenario", cfg, ParallelConfig{Resume: fr, Scenario: "other"}, Options{})
	refuse("fault-model", cfg, ParallelConfig{Resume: fr, Scenario: "pin"}, Options{FaultTries: true})
	refuse("max-steps", cfg, ParallelConfig{Resume: fr, Scenario: "pin"}, Options{MaxSteps: 99})
}

package machsim

import (
	"fmt"
	"strings"
	"testing"
)

// Violation is one checked property failing on one schedule.
type Violation struct {
	Checker string // which property: mutual-exclusion, deadlock, ref-resurrect, ...
	Msg     string
	Step    int // decision count when detected
}

func (v Violation) String() string {
	return fmt.Sprintf("[%s] step %d: %s", v.Checker, v.Step, v.Msg)
}

// Result is the outcome of an exploration.
type Result struct {
	Runs         int   // schedules executed
	Steps        int64 // total decisions across all runs
	Inconclusive int   // runs abandoned at MaxSteps (possible livelocks)
	Pruned       int   // runs abandoned by partial-order reduction (covered elsewhere)
	Exhausted    bool  // Explore only: the whole bounded space was covered
	Seed         int64 // Random only: the failing run's seed (or the base seed)
	Schedule     string
	Violations   []Violation
	Log          []string // event tail of the failing run
}

// Failed reports whether any property was violated.
func (r Result) Failed() bool { return len(r.Violations) > 0 }

// Report renders a human-readable failure report: the violations, the
// reproducing schedule and seed, and the tail of the event log.
func (r Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "machsim: %d violation(s) after %d run(s), %d step(s)\n",
		len(r.Violations), r.Runs, r.Steps)
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "  %s\n", v)
	}
	if r.Schedule != "" {
		fmt.Fprintf(&b, "%s%s\n", scheduleMarker, r.Schedule)
	}
	if r.Seed != 0 {
		fmt.Fprintf(&b, "seed: %d (rerun with MACHSIM_SEED=%d)\n", r.Seed, r.Seed)
	}
	if len(r.Log) > 0 {
		fmt.Fprintf(&b, "event tail (%d):\n", len(r.Log))
		for _, e := range r.Log {
			fmt.Fprintf(&b, "  %s\n", e)
		}
	}
	return b.String()
}

// Summary is a one-line outcome for passing runs.
func (r Result) Summary() string {
	s := fmt.Sprintf("%d run(s), %d step(s)", r.Runs, r.Steps)
	if r.Inconclusive > 0 {
		s += fmt.Sprintf(", %d inconclusive", r.Inconclusive)
	}
	if r.Pruned > 0 {
		s += fmt.Sprintf(", %d pruned", r.Pruned)
	}
	if r.Exhausted {
		s += ", space exhausted"
	}
	return s
}

// Check fails the test with a full report if the exploration found a
// violation, and logs the coverage summary otherwise.
func Check(t testing.TB, r Result) {
	t.Helper()
	if r.Failed() {
		t.Fatal(r.Report())
	}
	t.Logf("machsim: %s", r.Summary())
}

func resultOf(s *Sim, runs int) Result {
	r := Result{Runs: runs, Steps: int64(s.steps), Violations: s.violations}
	if s.inconclusive {
		r.Inconclusive = 1
	}
	if s.pruned {
		r.Pruned = 1
	}
	if len(s.violations) > 0 {
		r.Log = append([]string(nil), s.events...)
	}
	return r
}

// scheduleMarker prefixes the reproducing schedule in Report's output.
const scheduleMarker = "schedule (replay with machsim.Replay): "

// ScheduleFromReport extracts the reproducing schedule from a rendered
// failure report — the exact line a CI log or a t.Fatal prints — so a
// pasted report round-trips into machsim.Replay without hand-editing.
func ScheduleFromReport(report string) (string, bool) {
	for _, line := range strings.Split(report, "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), scheduleMarker); ok {
			return rest, true
		}
	}
	return "", false
}

package machsim

import (
	"fmt"
	"os"
	"strconv"
	"strings"
)

// decider chooses among candidate tokens at each decision point. toks[0]
// is the deterministic default (continue current / pass the try / the
// round-robin successor); costs give the preemption price of each
// alternative for the bounded-DFS engine. A decider returns the chosen
// index, or a negative value after recording a violation on s (replay
// divergence), which aborts the run.
type decider interface {
	choose(s *Sim, toks []string, costs []int) int
}

// ---- splitmix64: a tiny, Go-version-independent PRNG so seeds replay
// identically everywhere (math/rand's stream is not a compatibility
// promise). ----

type prng struct{ x uint64 }

func (p *prng) next() uint64 {
	p.x += 0x9E3779B97F4A7C15
	z := p.x
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

func (p *prng) n(n int) int { return int(p.next() % uint64(n)) }

// randomDecider is the seeded pseudo-random walk.
type randomDecider struct{ rng prng }

func (d *randomDecider) choose(s *Sim, toks []string, costs []int) int {
	return d.rng.n(len(toks))
}

// replayDecider replays a recorded schedule token by token. Any mismatch
// between the recorded token and the current candidates means the system
// under test diverged (a nondeterminism bug in the harness seam or the
// scenario) and is reported as a violation.
type replayDecider struct {
	toks []string
	pos  int
}

func (d *replayDecider) choose(s *Sim, toks []string, costs []int) int {
	if d.pos >= len(d.toks) {
		s.violate("replay", fmt.Sprintf(
			"schedule exhausted after %d tokens but the run wants another decision among %v",
			len(d.toks), toks))
		return -1
	}
	want := d.toks[d.pos]
	d.pos++
	for i, tok := range toks {
		if tok == want {
			return i
		}
	}
	s.violate("replay", fmt.Sprintf(
		"divergence at token %d: schedule says %q, candidates are %v",
		d.pos-1, want, toks))
	return -1
}

// dfsBranch is one unexplored alternative: replay prefix, take it, then
// run defaults to completion.
type dfsBranch struct {
	prefix   []string
	preempts int
}

// dfsDecider drives the bounded-preemption depth-first search. Each run
// replays a forced prefix, and at the frontier takes defaults while
// pushing every affordable alternative onto the stack for later runs.
type dfsDecider struct {
	budget   int
	stack    []dfsBranch
	forced   []string
	preempts int
	depth    int
	taken    []string
}

func (d *dfsDecider) beginRun(br dfsBranch) {
	d.forced = br.prefix
	d.preempts = br.preempts
	d.depth = 0
	d.taken = append(d.taken[:0], br.prefix...)
}

func (d *dfsDecider) choose(s *Sim, toks []string, costs []int) int {
	if d.depth < len(d.forced) {
		want := d.forced[d.depth]
		d.depth++
		for i, tok := range toks {
			if tok == want {
				return i
			}
		}
		s.violate("dfs", fmt.Sprintf(
			"nondeterministic replay at decision %d: prefix says %q, candidates are %v",
			d.depth-1, want, toks))
		return -1
	}
	// Frontier: schedule the alternatives, take the default.
	for i := 1; i < len(toks); i++ {
		if d.preempts+costs[i] <= d.budget {
			prefix := make([]string, len(d.taken)+1)
			copy(prefix, d.taken)
			prefix[len(d.taken)] = toks[i]
			d.stack = append(d.stack, dfsBranch{prefix: prefix, preempts: d.preempts + costs[i]})
		}
	}
	d.depth++
	d.taken = append(d.taken, toks[0])
	return 0
}

// ---- engines ----

// Replay runs the scenario once under a recorded schedule and returns the
// outcome. The schedule must have been produced by the same scenario and
// Options (fault decisions are part of the token stream).
func Replay(scenario Scenario, schedule string, opt Options) Result {
	s := newSim(scenario, &replayDecider{toks: strings.Split(schedule, ",")}, opt)
	s.runOnce()
	r := resultOf(s, 1)
	r.Schedule = s.scheduleString()
	return r
}

// Random explores `runs` seeded pseudo-random schedules, stopping at the
// first violation. Run i uses seed+i, so a failure's Seed pinpoints its
// exact walk; setting MACHSIM_SEED=<seed> overrides the base seed and runs
// that single walk, reproducing the failure byte for byte.
func Random(scenario Scenario, runs int, seed int64, opt Options) Result {
	if env := os.Getenv("MACHSIM_SEED"); env != "" {
		if v, err := strconv.ParseInt(env, 10, 64); err == nil {
			seed, runs = v, 1
		}
	}
	var acc Result
	for i := 0; i < runs; i++ {
		runSeed := seed + int64(i)
		s := newSim(scenario, &randomDecider{rng: prng{x: uint64(runSeed)}}, opt)
		s.runOnce()
		acc.Runs++
		acc.Steps += int64(s.steps)
		if s.inconclusive {
			acc.Inconclusive++
		}
		if len(s.violations) > 0 {
			acc.Seed = runSeed
			acc.Schedule = s.scheduleString()
			acc.Violations = s.violations
			acc.Log = append([]string(nil), s.events...)
			return acc
		}
	}
	acc.Seed = seed
	return acc
}

// DFSConfig bounds the Explore engine.
type DFSConfig struct {
	// Preemptions is the involuntary-context-switch budget per schedule
	// (CHESS's preemption bound). Fault injections and spurious wakeups
	// spend from the same budget.
	Preemptions int
	// MaxRuns caps the number of schedules explored; 0 means 10000.
	MaxRuns int
}

// Explore enumerates schedules depth-first within a preemption budget,
// stopping at the first violation. If it returns with Exhausted set, every
// schedule within the budget was run — a proof of the checked properties
// over that preemption bound.
func Explore(scenario Scenario, cfg DFSConfig, opt Options) Result {
	if cfg.MaxRuns <= 0 {
		cfg.MaxRuns = 10000
	}
	d := &dfsDecider{budget: cfg.Preemptions}
	br := dfsBranch{}
	var acc Result
	for {
		d.beginRun(br)
		s := newSim(scenario, d, opt)
		s.runOnce()
		acc.Runs++
		acc.Steps += int64(s.steps)
		if s.inconclusive {
			acc.Inconclusive++
		}
		if len(s.violations) > 0 {
			acc.Schedule = s.scheduleString()
			acc.Violations = s.violations
			acc.Log = append([]string(nil), s.events...)
			return acc
		}
		if len(d.stack) == 0 {
			acc.Exhausted = acc.Inconclusive == 0
			return acc
		}
		if acc.Runs >= cfg.MaxRuns {
			return acc
		}
		br = d.stack[len(d.stack)-1]
		d.stack = d.stack[:len(d.stack)-1]
	}
}

package machsim

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// decider chooses among candidates at each decision point. cands[0] is the
// deterministic default (continue current / pass the try / the round-robin
// successor); each candidate's cost is its preemption price for the
// bounded-DFS engine. A decider returns the chosen index, a negative value
// after recording a violation on s (replay divergence) which aborts the
// run, or pruneRun to abandon the run as redundant (POR).
type decider interface {
	choose(s *Sim, cands []candidate) int
}

// ---- splitmix64: a tiny, Go-version-independent PRNG so seeds replay
// identically everywhere (math/rand's stream is not a compatibility
// promise). ----

type prng struct{ x uint64 }

func (p *prng) next() uint64 {
	p.x += 0x9E3779B97F4A7C15
	z := p.x
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

func (p *prng) n(n int) int { return int(p.next() % uint64(n)) }

// randomDecider is the seeded pseudo-random walk.
type randomDecider struct{ rng prng }

func (d *randomDecider) choose(s *Sim, cands []candidate) int {
	return d.rng.n(len(cands))
}

// replayDecider replays a recorded schedule token by token. Any mismatch
// between the recorded token and the current candidates means the system
// under test diverged (a nondeterminism bug in the harness seam or the
// scenario) and is reported as a violation.
type replayDecider struct {
	toks []string
	pos  int
}

func (d *replayDecider) choose(s *Sim, cands []candidate) int {
	if d.pos >= len(d.toks) {
		toks := make([]string, len(cands))
		for i, c := range cands {
			toks[i] = c.tok
		}
		s.violate("replay", fmt.Sprintf(
			"schedule exhausted after %d tokens but the run wants another decision among %v",
			len(d.toks), toks))
		return -1
	}
	want := d.toks[d.pos]
	d.pos++
	for i, c := range cands {
		if c.tok == want {
			return i
		}
	}
	toks := make([]string, len(cands))
	for i, c := range cands {
		toks[i] = c.tok
	}
	s.violate("replay", fmt.Sprintf(
		"divergence at token %d: schedule says %q, candidates are %v",
		d.pos-1, want, toks))
	return -1
}

// dfsBranch is one unexplored alternative: replay prefix, take it, then
// run defaults to completion. sleep is the sleep set of the state the
// prefix reaches (thread indices whose pending step is already covered by
// a sibling exploration); empty without reduction.
type dfsBranch struct {
	prefix   []string
	preempts int
	sleep    []int
}

// dfsDecider drives the bounded-preemption depth-first search. Each run
// replays a forced prefix, and at the frontier takes defaults while
// pushing every affordable alternative onto the stack for later runs.
// With a Reduction set it additionally maintains sleep sets (and
// optionally a persistent-set restriction) over the candidates' pending
// operations; see por.go for the independence relation and the soundness
// argument.
type dfsDecider struct {
	budget int
	reduce Reduction
	stack  []dfsBranch

	forced    []string
	initSleep []int
	preempts  int
	depth     int
	taken     []string
	sleep     map[int]bool // nil until the first frontier decision
}

func (d *dfsDecider) beginRun(br dfsBranch) {
	d.forced = br.prefix
	d.initSleep = br.sleep
	d.preempts = br.preempts
	d.depth = 0
	d.taken = append(d.taken[:0], br.prefix...)
	d.sleep = nil
}

// push schedules one alternative for a later run.
func (d *dfsDecider) push(tok string, preempts int, sleep []int) {
	prefix := make([]string, len(d.taken)+1)
	copy(prefix, d.taken)
	prefix[len(d.taken)] = tok
	d.stack = append(d.stack, dfsBranch{prefix: prefix, preempts: preempts, sleep: sleep})
}

// sleepSlice materializes the running sleep set in sorted order.
func (d *dfsDecider) sleepSlice() []int {
	if len(d.sleep) == 0 {
		return nil
	}
	out := make([]int, 0, len(d.sleep))
	for u := range d.sleep {
		out = append(out, u)
	}
	sort.Ints(out)
	return out
}

func (d *dfsDecider) choose(s *Sim, cands []candidate) int {
	if d.depth < len(d.forced) {
		want := d.forced[d.depth]
		d.depth++
		for i, c := range cands {
			if c.tok == want {
				return i
			}
		}
		toks := make([]string, len(cands))
		for i, c := range cands {
			toks[i] = c.tok
		}
		s.violate("dfs", fmt.Sprintf(
			"nondeterministic replay at decision %d: prefix says %q, candidates are %v",
			d.depth-1, want, toks))
		return -1
	}
	if d.sleep == nil {
		d.sleep = make(map[int]bool, len(d.initSleep))
		for _, u := range d.initSleep {
			d.sleep[u] = true
		}
	}
	// Fault decisions (P/F) double the subtree without executing a new
	// thread step: both halves inherit the running sleep set unchanged.
	// Unreduced scheduling decisions take the same shape with an empty
	// sleep set.
	if d.reduce == ReduceNone || cands[0].fault {
		for i := 1; i < len(cands); i++ {
			if d.preempts+cands[i].cost <= d.budget {
				d.push(cands[i].tok, d.preempts+cands[i].cost, d.sleepSlice())
			}
		}
		d.depth++
		d.taken = append(d.taken, cands[0].tok)
		return 0
	}
	return d.chooseReduced(s, cands)
}

// chooseReduced is one scheduling decision under partial-order reduction.
func (d *dfsDecider) chooseReduced(s *Sim, cands []candidate) int {
	// Continuation: the first candidate not in the sleep set. Injection
	// candidates are wakeup deliveries, not thread steps — the sleep set
	// does not apply to them.
	cont := -1
	for i, c := range cands {
		if c.inject || !d.sleep[c.vt.idx] {
			cont = i
			break
		}
	}
	if cont < 0 {
		// Every enabled step is asleep: each is explored from an
		// equivalent state by a sibling, so this state's subtree is
		// redundant. Not a deadlock — abandon the run without a verdict.
		return pruneRun
	}
	var contOp opRef
	if !cands[cont].inject {
		contOp = pendingOf(cands[cont].vt)
	}
	var pset map[int]bool
	if d.reduce == ReducePersistent {
		pset = persistentSet(s, cands, cont)
	}
	// Push alternatives in candidate order. Following Godefroid's DFS
	// formulation, the sleep set handed to alternative t is the current
	// set plus the siblings explored before t, filtered to the entries
	// independent with t's own step. Which sibling is "before" which only
	// matters up to full exhaustion — every slept sibling is genuinely
	// explored from this state in some run — so the LIFO pop order of the
	// stack does not disturb soundness.
	cur := d.sleepSlice()
	explored := []int{}
	if !cands[cont].inject {
		explored = append(explored, cands[cont].vt.idx)
	}
	for i, c := range cands {
		if i == cont {
			continue
		}
		if !c.inject && d.sleep[c.vt.idx] {
			continue // covered by a sibling exploration: skip entirely
		}
		if d.preempts+c.cost > d.budget {
			continue
		}
		if pset != nil && !c.inject && !pset[c.vt.idx] {
			continue // persistent-set restriction (heuristic mode)
		}
		var altSleep []int
		if !c.inject {
			altSleep = filterSleep(s, append(append([]int{}, cur...), explored...), pendingOf(c.vt))
		}
		// Injection branches restart a blocked thread through the wait
		// table: dependent with everything, so they start with an empty
		// sleep set and are never added to a sibling's.
		d.push(c.tok, d.preempts+c.cost, altSleep)
		if !c.inject {
			explored = append(explored, c.vt.idx)
		}
	}
	// Take the continuation and advance the running sleep set: entries
	// whose step is dependent with the executed step wake up (the
	// commuting argument no longer applies past it).
	if cands[cont].inject {
		d.sleep = map[int]bool{}
	} else {
		for u := range d.sleep {
			if !independentOps(pendingOf(s.vts[u]), contOp) {
				delete(d.sleep, u)
			}
		}
	}
	d.depth++
	d.taken = append(d.taken, cands[cont].tok)
	return cont
}

// ---- engines ----

// Replay runs the scenario once under a recorded schedule and returns the
// outcome. The schedule must have been produced by the same scenario and
// Options (fault decisions are part of the token stream).
func Replay(scenario Scenario, schedule string, opt Options) Result {
	s := newSim(scenario, &replayDecider{toks: strings.Split(schedule, ",")}, opt)
	s.runOnce()
	r := resultOf(s, 1)
	r.Schedule = s.scheduleString()
	return r
}

// Random explores `runs` seeded pseudo-random schedules, stopping at the
// first violation. Run i uses seed+i, so a failure's Seed pinpoints its
// exact walk; setting MACHSIM_SEED=<seed> overrides the base seed and runs
// that single walk, reproducing the failure byte for byte.
func Random(scenario Scenario, runs int, seed int64, opt Options) Result {
	if env := os.Getenv("MACHSIM_SEED"); env != "" {
		if v, err := strconv.ParseInt(env, 10, 64); err == nil {
			seed, runs = v, 1
		}
	}
	var acc Result
	for i := 0; i < runs; i++ {
		runSeed := seed + int64(i)
		s := newSim(scenario, &randomDecider{rng: prng{x: uint64(runSeed)}}, opt)
		s.runOnce()
		acc.Runs++
		acc.Steps += int64(s.steps)
		if s.inconclusive {
			acc.Inconclusive++
		}
		if len(s.violations) > 0 {
			acc.Seed = runSeed
			acc.Schedule = s.scheduleString()
			acc.Violations = s.violations
			acc.Log = append([]string(nil), s.events...)
			return acc
		}
	}
	acc.Seed = seed
	return acc
}

// DFSConfig bounds the Explore engine.
type DFSConfig struct {
	// Preemptions is the involuntary-context-switch budget per schedule
	// (CHESS's preemption bound). Fault injections and spurious wakeups
	// spend from the same budget.
	Preemptions int
	// MaxRuns caps the number of schedules explored; 0 means 10000.
	MaxRuns int
	// Reduction selects the partial-order-reduction mode (por.go);
	// the zero value explores unreduced.
	Reduction Reduction
}

// Explore enumerates schedules depth-first within a preemption budget,
// stopping at the first violation. If it returns with Exhausted set, every
// schedule within the budget was run — a proof of the checked properties
// over that preemption bound (up to trace equivalence when a Reduction is
// set; see por.go).
func Explore(scenario Scenario, cfg DFSConfig, opt Options) Result {
	if cfg.MaxRuns <= 0 {
		cfg.MaxRuns = 10000
	}
	d := &dfsDecider{budget: cfg.Preemptions, reduce: cfg.Reduction}
	br := dfsBranch{}
	var acc Result
	for {
		d.beginRun(br)
		s := newSim(scenario, d, opt)
		s.runOnce()
		acc.Runs++
		acc.Steps += int64(s.steps)
		if s.inconclusive {
			acc.Inconclusive++
		}
		if s.pruned {
			acc.Pruned++
		}
		if len(s.violations) > 0 {
			acc.Schedule = s.scheduleString()
			acc.Violations = s.violations
			acc.Log = append([]string(nil), s.events...)
			return acc
		}
		if len(d.stack) == 0 {
			acc.Exhausted = acc.Inconclusive == 0
			return acc
		}
		if acc.Runs >= cfg.MaxRuns {
			return acc
		}
		br = d.stack[len(d.stack)-1]
		d.stack = d.stack[:len(d.stack)-1]
	}
}

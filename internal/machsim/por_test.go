package machsim

import (
	"fmt"
	"testing"

	"machlock/internal/core/splock"
	"machlock/internal/sched"
)

// disjointLocksScenario is the reduction benchmark: n threads, each taking
// its OWN lock iters times around its own counter. Every cross-thread pair
// of steps commutes, so the unreduced search pays the full factorial cost
// of interleaving them while the reduced search collapses each trace class
// to one representative.
func disjointLocksScenario(n, iters int) Scenario {
	return func(s *Sim) {
		for i := 0; i < n; i++ {
			l := &splock.Lock{}
			count := new(int)
			s.Label(l, fmt.Sprintf("disjoint.lock%d", i))
			s.Spawn(fmt.Sprintf("worker%d", i), func(_ *sched.Thread) {
				for k := 0; k < iters; k++ {
					l.Lock()
					*count++
					l.Unlock()
				}
			})
			s.AtEnd(func(fail func(string, ...any)) {
				if *count != iters {
					fail("lock %d: count=%d, want %d", i, *count, iters)
				}
			})
		}
	}
}

// TestSimPORReduction is the tentpole's scaling claim, measured: a
// disjoint-lock scenario whose unreduced bounded DFS blows through the
// default 10000-run cap without finishing, while sleep sets exhaust the
// same bounded space in at least 5x fewer schedules. The logged numbers
// feed EXPERIMENTS.md S2.
func TestSimPORReduction(t *testing.T) {
	sc := disjointLocksScenario(2, 6)
	const preemptions = 4

	reduced := Explore(sc, DFSConfig{Preemptions: preemptions, Reduction: ReduceSleep}, Options{})
	Check(t, reduced)
	if !reduced.Exhausted {
		t.Fatalf("sleep-set search did not exhaust the bounded space: %s", reduced.Summary())
	}

	// Under the default run cap the unreduced search cannot finish this
	// space — it was out of DFS reach before the reduction.
	capped := Explore(sc, DFSConfig{Preemptions: preemptions}, Options{})
	Check(t, capped)
	if capped.Exhausted {
		t.Fatalf("expected the unreduced search to hit the default run cap, but it exhausted in %d runs", capped.Runs)
	}

	// With the cap lifted, measure the true size of the unreduced space.
	unreduced := Explore(sc, DFSConfig{Preemptions: preemptions, MaxRuns: 1000000}, Options{})
	Check(t, unreduced)
	t.Logf("S2: unreduced %d runs / %d steps (exhausted=%v); sleep %d runs / %d steps (%d pruned); reduction %.1fx",
		unreduced.Runs, unreduced.Steps, unreduced.Exhausted,
		reduced.Runs, reduced.Steps, reduced.Pruned,
		float64(unreduced.Runs)/float64(reduced.Runs))
	if unreduced.Runs < 5*reduced.Runs {
		t.Fatalf("expected at least 5x schedule reduction: unreduced=%d reduced=%d",
			unreduced.Runs, reduced.Runs)
	}

	persistent := Explore(sc, DFSConfig{Preemptions: preemptions, Reduction: ReducePersistent}, Options{})
	Check(t, persistent)
	t.Logf("S2: persistent %d runs / %d steps (%d pruned)", persistent.Runs, persistent.Steps, persistent.Pruned)
	if persistent.Runs > reduced.Runs {
		t.Fatalf("persistent sets ran more schedules than sleep sets alone: %d > %d",
			persistent.Runs, reduced.Runs)
	}
}

// TestSimPORCrossCheckClean: reduced and unreduced searches must agree on
// the existing protocol suites' verdicts. Clean scenarios stay clean and
// keep their Exhausted proof.
func TestSimPORCrossCheckClean(t *testing.T) {
	scenarios := []struct {
		name string
		sc   Scenario
		cfg  DFSConfig
	}{
		{"disjoint-locks", disjointLocksScenario(2, 2), DFSConfig{Preemptions: 2}},
		{"shared-lock-counter", func(s *Sim) {
			l := &splock.Lock{}
			s.Label(l, "shared.lock")
			n := 0
			body := func(_ *sched.Thread) {
				for i := 0; i < 2; i++ {
					l.Lock()
					n++
					l.Unlock()
				}
			}
			s.Spawn("incA", body)
			s.Spawn("incB", body)
			s.AtEnd(func(fail func(string, ...any)) {
				if n != 4 {
					fail("lost update: n=%d, want 4", n)
				}
			})
		}, DFSConfig{Preemptions: 2}},
	}
	for _, tc := range scenarios {
		t.Run(tc.name, func(t *testing.T) {
			r0, mismatches := CrossCheck(tc.sc, tc.cfg, Options{})
			for _, m := range mismatches {
				t.Errorf("cross-check: %s", m)
			}
			if r0.Failed() {
				t.Fatalf("baseline unexpectedly failed: %s", r0.Report())
			}
		})
	}
}

// TestSimPORCrossCheckBuggy: on scenarios with planted bugs the reductions
// must find the SAME violated properties as the unreduced search — a
// reduction that prunes away the only schedule reaching a bug is unsound.
func TestSimPORCrossCheckBuggy(t *testing.T) {
	r0, mismatches := CrossCheck(lostWakeupScenario, DFSConfig{Preemptions: 1}, Options{})
	for _, m := range mismatches {
		t.Errorf("cross-check: %s", m)
	}
	if !r0.Failed() {
		t.Fatalf("baseline missed the planted lost wakeup: %s", r0.Summary())
	}
}

// TestSimPORPrunesRedundantRuns: sleep sets must actually abandon runs as
// redundant (Pruned > 0) on a commuting workload, and pruned runs must not
// cost the search its Exhausted verdict.
func TestSimPORPrunesRedundantRuns(t *testing.T) {
	res := Explore(disjointLocksScenario(3, 1),
		DFSConfig{Preemptions: 2, Reduction: ReduceSleep}, Options{})
	Check(t, res)
	if !res.Exhausted {
		t.Fatalf("expected exhaustion: %s", res.Summary())
	}
	if res.Pruned == 0 {
		t.Fatalf("expected sleep sets to prune at least one run: %s", res.Summary())
	}
}

// TestSimReductionRoundTrip: Reduction values survive String/ParseReduction
// (the frontier file's representation).
func TestSimReductionRoundTrip(t *testing.T) {
	for _, r := range []Reduction{ReduceNone, ReduceSleep, ReducePersistent} {
		got, err := ParseReduction(r.String())
		if err != nil || got != r {
			t.Fatalf("round trip of %v: got %v, err %v", r, got, err)
		}
	}
	if _, err := ParseReduction("bogus"); err == nil {
		t.Fatal("ParseReduction accepted garbage")
	}
}

// Package machsim is a deterministic schedule-exploration harness for the
// lock and reference-count protocols: the repo's answer to "the tests pass,
// but only on the interleavings the host scheduler happened to produce".
//
// A scenario spawns N virtual threads whose bodies call the real substrate
// (splock, cxlock, refcount, object, sched — and kernel code built on
// them). The harness installs itself as the process-wide simhook seam, so
// every lock/unlock/try/upgrade/clone/release boundary becomes a
// scheduling point. Exactly one virtual thread executes between points; at
// each point a decider chooses who runs next. The sequence of decisions is
// the SCHEDULE, recorded as a comma-separated token string — replaying the
// same schedule replays the exact interleaving, byte for byte.
//
// Three exploration engines share that core:
//
//   - Random: a seeded pseudo-random walk over schedules. A failure
//     reports its seed and schedule; MACHSIM_SEED=<seed> re-runs exactly
//     that walk, and Replay(schedule) pins the interleaving itself.
//   - Explore: bounded-preemption DFS in the style of CHESS (Musuvathi &
//     Qadeer): voluntary switches (a failed spin) are free, involuntary
//     preemptions are budgeted, and the search enumerates every schedule
//     within the budget. Exhausting the space is a proof over that budget.
//   - Fault options: FaultTries forces try/upgrade operations to fail on
//     demand (each is a two-way decision, recorded as P/F tokens);
//     SpuriousWakeups lets the decider inject sched.ClearWait against any
//     blocked thread (recorded as c<i> tokens), modeling thread-based
//     event occurrences arriving at the worst possible moment.
//
// While threads run, shadow models driven by simhook notes check the
// protocol invariants the paper states: mutual exclusion, writer priority,
// reader-bias revocation safety, refcount-never-resurrects, and
// relock-requires-reference. Deadlocks (every live thread blocked) are
// detected structurally. Any violation aborts the run and reports the
// schedule that produced it.
package machsim

import (
	"fmt"
	"strings"

	"machlock/internal/machsim/simhook"
	"machlock/internal/sched"
)

// Options configures a simulation run (shared by all engines).
type Options struct {
	// MaxSteps bounds one run's decisions; a run that exceeds it is
	// abandoned and counted as Inconclusive (usually a livelock or an
	// exploding spin schedule). 0 means the default of 20000.
	MaxSteps int
	// FaultTries makes every try-style operation (TryLock, TryRead,
	// TryWrite, TryReadToWrite) a fault-injection decision: the decider
	// may force it to fail even when it would succeed.
	FaultTries bool
	// SpuriousWakeups lets the decider inject sched.ClearWait against
	// blocked threads, forcing Restarted results at arbitrary points.
	SpuriousWakeups bool
}

const (
	defaultMaxSteps = 20000
	clockStepNs     = int64(1000) // virtual clock advance per decision
	clockBaseNs     = int64(1 << 40)
	maxThreads      = 62
	eventTailLen    = 200
)

// Scenario builds one run's system under test: construct fresh locks and
// objects, then Spawn the virtual threads that exercise them. It is called
// once per run with the harness already installed, so initial setup
// operations (taking a first reference, pre-locking) are observed by the
// shadow models but are not scheduling points.
type Scenario func(s *Sim)

// vthread states.
const (
	vtRunnable = iota
	vtBlocked
	vtFinished
)

type vthread struct {
	idx    int
	name   string
	thread *sched.Thread
	body   func(t *sched.Thread)
	resume chan struct{}
	state  int
	point  simhook.Point // last yield point, for deadlock reports
	pobj   any           // the yield's object: the pending step's footprint (POR)
}

// initActor attributes setup/at-end protocol events to a pseudo-thread.
var initActor = &vthread{idx: -1, name: "init"}

// simAbort unwinds a virtual thread when the run is over (violation found,
// schedule exhausted, or step budget blown). Recovered by the runner.
type simAbort struct{}

// Sim is one run of one scenario under one decider. It implements
// simhook.Hooks; it is NOT safe for concurrent use — the token-passing
// discipline (exactly one virtual thread between decisions) is what makes
// every access serialized and every run race-clean.
type Sim struct {
	opt      Options
	dec      decider
	scenario Scenario

	vts      []*vthread
	byThread map[*sched.Thread]*vthread
	current  *vthread
	engineCh chan struct{}
	setup    bool // scenario still running: Spawn legal, yields pass through

	steps        int
	clockNs      int64
	tokens       []string
	events       []string
	labels       map[any]string
	violations   []Violation
	aborted      bool
	inconclusive bool
	pruned       bool // run abandoned by the POR layer: covered elsewhere
	inject       bool // harness-internal sched call in progress: no re-entry

	mdl   *models
	atEnd []func(fail func(format string, args ...any))

	// disp routes this Sim's hooks through a shared dispatcher instead of
	// owning the global simhook slot (parallel exploration; dispatch.go).
	disp *dispatcher
}

func newSim(scenario Scenario, dec decider, opt Options) *Sim {
	if opt.MaxSteps <= 0 {
		opt.MaxSteps = defaultMaxSteps
	}
	s := &Sim{
		opt:      opt,
		dec:      dec,
		scenario: scenario,
		byThread: make(map[*sched.Thread]*vthread),
		engineCh: make(chan struct{}, 1),
		labels:   make(map[any]string),
		clockNs:  clockBaseNs,
	}
	s.mdl = newModels(s)
	return s
}

// Spawn registers a virtual thread. Only legal while the scenario function
// is running; bodies start executing after it returns, under the decider's
// control. The returned handle is the thread identity to pass to the lock
// APIs inside body.
func (s *Sim) Spawn(name string, body func(t *sched.Thread)) *sched.Thread {
	if !s.setup {
		panic("machsim: Spawn outside scenario setup")
	}
	if len(s.vts) >= maxThreads {
		panic("machsim: too many virtual threads")
	}
	t := sched.New(name)
	vt := &vthread{
		idx:    len(s.vts),
		name:   name,
		thread: t,
		body:   body,
		resume: make(chan struct{}, 1),
	}
	s.vts = append(s.vts, vt)
	s.byThread[t] = vt
	return t
}

// AtEnd registers a check to run after every thread has finished (on runs
// that complete without a violation). fail records a violation.
func (s *Sim) AtEnd(f func(fail func(format string, args ...any))) {
	if !s.setup {
		panic("machsim: AtEnd outside scenario setup")
	}
	s.atEnd = append(s.atEnd, f)
}

// Label names an object (a lock, a refcount) in event logs and reports.
func (s *Sim) Label(obj any, name string) { s.labels[obj] = name }

// Fail records a scenario-level violation and aborts the run. Callable
// from thread bodies (assertion failed mid-run).
func (s *Sim) Fail(format string, args ...any) {
	s.violate("scenario", fmt.Sprintf(format, args...))
	panic(simAbort{})
}

// Logf appends a line to the run's event log.
func (s *Sim) Logf(format string, args ...any) {
	s.trace(fmt.Sprintf(format, args...))
}

// runOnce executes the scenario once under s.dec. On return the harness is
// uninstalled (or, in dispatcher mode, this goroutine unregistered) and
// every spawned goroutine has exited.
func (s *Sim) runOnce() {
	if s.disp == nil {
		simhook.Install(s)
		defer simhook.Uninstall()
	} else {
		s.disp.register(s)
		defer s.disp.unregister()
	}
	s.setup = true
	s.scenario(s)
	s.setup = false
	if len(s.vts) == 0 {
		return
	}
	for _, vt := range s.vts {
		go s.runner(vt)
	}
	if first := s.pick(nil, false); first == nil {
		// Aborted before anyone ran (replay divergence on the first
		// decision): unwind the parked runners.
		s.drainNext()
	}
	<-s.engineCh
	if !s.aborted {
		s.current = nil
		for _, f := range s.atEnd {
			f(func(format string, args ...any) {
				s.violate("at-end", fmt.Sprintf(format, args...))
			})
		}
	}
}

func (s *Sim) runner(vt *vthread) {
	if s.disp != nil {
		// Bind this goroutine to its Sim before the first resume-receive:
		// every hook the body calls is ordered after the registration.
		s.disp.register(s)
		defer s.disp.unregister()
	}
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(simAbort); !ok {
				s.violate("panic", fmt.Sprintf("thread %s panicked: %v", vt.name, r))
			}
		}
		s.finish(vt)
	}()
	<-vt.resume
	if s.aborted {
		panic(simAbort{})
	}
	vt.body(vt.thread)
}

// finish retires a thread and hands the token onward: to the next chosen
// thread, to the abort drain, or to the engine when the run is over.
func (s *Sim) finish(vt *vthread) {
	vt.state = vtFinished
	s.trace(fmt.Sprintf("%s: finished", vt.name))
	if s.aborted {
		s.drainNext()
		return
	}
	if s.allFinished() {
		s.engineCh <- struct{}{}
		return
	}
	if s.pick(nil, false) == nil {
		s.drainNext()
	}
}

func (s *Sim) allFinished() bool {
	for _, vt := range s.vts {
		if vt.state != vtFinished {
			return false
		}
	}
	return true
}

// drainNext resumes one not-yet-finished thread during an abort so it can
// unwind; the chain of finish() calls drains them all, and the last one
// signals the engine. Blocked threads are cleared out of the wait table
// first so the global table is not left with stale entries.
func (s *Sim) drainNext() {
	for _, vt := range s.vts {
		if vt.state == vtFinished {
			continue
		}
		if vt.state == vtBlocked {
			s.inject = true
			sched.ClearWait(vt.thread)
			s.inject = false
			vt.state = vtRunnable
		}
		s.current = vt
		vt.resume <- struct{}{}
		return
	}
	s.engineCh <- struct{}{}
}

// violate records a violation and marks the run aborted. The caller keeps
// running until its next scheduling point (so critical sections unwind
// cleanly); every thread panics simAbort at its next yield or park.
func (s *Sim) violate(checker, msg string) {
	s.violations = append(s.violations, Violation{
		Checker: checker,
		Msg:     msg,
		Step:    s.steps,
	})
	s.trace(fmt.Sprintf("VIOLATION [%s] %s", checker, msg))
	s.aborted = true
}

// countStep charges one decision against the run budget and advances the
// virtual clock. Blows the run (as inconclusive, not failed) on overrun.
func (s *Sim) countStep() {
	s.steps++
	s.clockNs += clockStepNs
	if s.steps > s.opt.MaxSteps {
		s.inconclusive = true
		s.aborted = true
		panic(simAbort{})
	}
}

func (s *Sim) actor() *vthread {
	if s.current == nil {
		return initActor
	}
	return s.current
}

func (s *Sim) nameOf(obj any) string {
	if n, ok := s.labels[obj]; ok {
		return n
	}
	return fmt.Sprintf("%T", obj)
}

func (s *Sim) trace(line string) {
	if len(s.events) >= eventTailLen {
		copy(s.events, s.events[1:])
		s.events = s.events[:eventTailLen-1]
	}
	s.events = append(s.events, fmt.Sprintf("%5d %-12s %s", s.steps, s.actor().name, line))
}

func (s *Sim) scheduleString() string { return strings.Join(s.tokens, ",") }

// ---- simhook.Hooks implementation ----

// Yield is a scheduling point: consult the decider and maybe switch.
func (s *Sim) Yield(p simhook.Point, obj any) {
	vt := s.current
	if vt == nil || s.inject {
		return // setup/at-end code or harness-internal sched call
	}
	if s.aborted {
		panic(simAbort{})
	}
	vt.point = p
	vt.pobj = obj
	s.trace(fmt.Sprintf("yield %-18s %s", p, s.nameOf(obj)))
	s.countStep()
	voluntary := p == simhook.SpSpin || p == simhook.CxSpin || p == simhook.SpPark
	chosen := s.pick(vt, voluntary)
	if chosen == nil {
		panic(simAbort{})
	}
	if chosen != vt {
		<-vt.resume
		if s.aborted {
			panic(simAbort{})
		}
	}
}

// Note feeds the shadow models; it never suspends the caller (it may run
// inside an interlock critical section).
func (s *Sim) Note(p simhook.Point, obj any, n int64) {
	s.trace(fmt.Sprintf("note  %-18s %s n=%d", p, s.nameOf(obj), n))
	s.mdl.note(s.actor(), p, obj, n)
}

// ForceFail decides whether a try-style operation fails artificially.
func (s *Sim) ForceFail(p simhook.Point, obj any) bool {
	if s.current == nil || s.inject || !s.opt.FaultTries {
		return false
	}
	if s.aborted {
		panic(simAbort{})
	}
	s.countStep()
	cands := []candidate{
		{tok: "P", vt: s.current, fault: true},
		{tok: "F", vt: s.current, fault: true, cost: 1},
	}
	idx := s.dec.choose(s, cands)
	if idx < 0 || s.aborted {
		if idx == pruneRun {
			s.pruned = true
		}
		s.aborted = true
		panic(simAbort{})
	}
	fail := idx == 1
	s.tokens = append(s.tokens, cands[idx].tok)
	if fail {
		s.trace(fmt.Sprintf("force-fail %s %s", p, s.nameOf(obj)))
	}
	return fail
}

// Block parks the current virtual thread (called from sched.ThreadBlock).
func (s *Sim) Block(t any) bool {
	th, ok := t.(*sched.Thread)
	if !ok {
		return false
	}
	vt := s.byThread[th]
	if vt == nil || vt != s.current {
		return false
	}
	if s.aborted {
		panic(simAbort{})
	}
	vt.state = vtBlocked
	vt.point = simhook.SchedBlocked
	vt.pobj = nil
	s.trace("blocked")
	s.countStep()
	if s.pick(nil, false) == nil {
		// Deadlock (or replay divergence): this thread unwinds; its
		// finish() drives the drain of the others.
		panic(simAbort{})
	}
	<-vt.resume
	if s.aborted {
		panic(simAbort{})
	}
	return true
}

// Unblock marks a parked thread runnable without switching to it (called
// from sched's resume path, on the waker's goroutine).
func (s *Sim) Unblock(t any) bool {
	th, ok := t.(*sched.Thread)
	if !ok {
		return false
	}
	vt := s.byThread[th]
	if vt == nil {
		return false
	}
	if vt.state == vtBlocked {
		vt.state = vtRunnable
		s.trace(fmt.Sprintf("%s: unblocked", vt.name))
	}
	return true
}

// NowNs is the deterministic virtual clock.
func (s *Sim) NowNs() int64 { return s.clockNs }

// Index gives registered threads a stable small integer identity, so
// address-hashed structures (the reader-bias slot table) are deterministic
// under the harness.
func (s *Sim) Index(t any) (int, bool) {
	th, ok := t.(*sched.Thread)
	if !ok {
		return 0, false
	}
	vt := s.byThread[th]
	if vt == nil {
		return 0, false
	}
	return vt.idx, true
}

// ---- the scheduling decision ----

type candidate struct {
	tok    string
	vt     *vthread
	inject bool // spurious-wakeup injection, not a thread step
	fault  bool // fault-injection decision (P/F), not a scheduling decision
	cost   int
}

// pruneRun is the decider return value that abandons the run as redundant
// (the POR layer proved every remaining candidate is covered by a sibling
// exploration). Distinct from plain -1, which is an abort after a recorded
// violation.
const pruneRun = -2

// pick makes one scheduling decision. from is the yielding thread (still
// runnable; nil when the previous thread blocked, finished, or the engine
// is dispatching the first thread). voluntary marks a spin-style yield:
// switching away is free and the default, per CHESS. pick applies the
// choice — injection side effects, current switch, resume send — and
// returns the chosen thread, or nil when the run aborted (no candidates =
// deadlock, or the decider diverged).
func (s *Sim) pick(from *vthread, voluntary bool) *vthread {
	var cands []candidate
	add := func(vt *vthread, cost int) {
		cands = append(cands, candidate{tok: fmt.Sprint(vt.idx), vt: vt, cost: cost})
	}
	switch {
	case from != nil && !voluntary:
		// Involuntary point: continuing is the default; preempting to
		// any other runnable thread spends budget.
		add(from, 0)
		for _, vt := range s.vts {
			if vt != from && vt.state == vtRunnable {
				add(vt, 1)
			}
		}
	case from != nil && voluntary:
		// Spinning: switching is free. Round-robin order from the
		// spinner gives the deterministic default; spinning again is
		// only offered when nobody else can run.
		n := len(s.vts)
		for i := 1; i <= n; i++ {
			vt := s.vts[(from.idx+i)%n]
			if vt != from && vt.state == vtRunnable {
				add(vt, 0)
			}
		}
		if len(cands) == 0 {
			add(from, 0)
		}
	default:
		// Forced switch (block/finish/first dispatch): free.
		for _, vt := range s.vts {
			if vt.state == vtRunnable {
				add(vt, 0)
			}
		}
	}
	if s.opt.SpuriousWakeups {
		for _, vt := range s.vts {
			if vt.state == vtBlocked {
				cands = append(cands, candidate{
					tok: "c" + fmt.Sprint(vt.idx), vt: vt, inject: true, cost: 1,
				})
			}
		}
	}
	if len(cands) == 0 {
		s.violate("deadlock", s.deadlockMsg())
		return nil
	}
	idx := s.dec.choose(s, cands)
	if idx < 0 {
		if idx == pruneRun {
			s.pruned = true
		}
		s.aborted = true
		return nil
	}
	c := cands[idx]
	s.tokens = append(s.tokens, c.tok)
	if c.inject {
		// Spurious wakeup: a thread-based event occurrence (ClearWait)
		// delivered by the fault engine; the restarted thread runs next.
		s.trace(fmt.Sprintf("inject clear_wait -> %s", c.vt.name))
		s.inject = true
		sched.ClearWait(c.vt.thread)
		s.inject = false
		if c.vt.state != vtRunnable {
			c.vt.state = vtRunnable // belt and braces: ClearWait raced nothing
		}
	}
	if c.vt != from {
		s.current = c.vt
		c.vt.resume <- struct{}{}
	}
	return c.vt
}

func (s *Sim) deadlockMsg() string {
	var b strings.Builder
	b.WriteString("deadlock: every live thread is blocked:")
	for _, vt := range s.vts {
		if vt.state == vtBlocked {
			fmt.Fprintf(&b, " %s(at %s)", vt.name, vt.point)
		}
	}
	return b.String()
}

package machsim

import (
	"reflect"
	"strings"
	"testing"

	"machlock/internal/core/cxlock"
	"machlock/internal/core/splock"
	"machlock/internal/sched"
)

// forcedTryScenario fails its at-end check whenever the fault engine forces
// the try to fail — so a FaultTries exploration finds a violation whose
// schedule contains a fault token (P/F).
func forcedTryScenario(s *Sim) {
	l := cxlock.NewWith(cxlock.Options{Name: "try"})
	n := 0
	s.Spawn("trier", func(t *sched.Thread) {
		if l.TryWrite(nil) {
			n++
			l.Done(nil)
		}
	})
	s.AtEnd(func(fail func(string, ...any)) {
		if n != 1 {
			fail("uncontended try was forced to fail: n=%d", n)
		}
	})
}

// spuriousScenario completes cleanly when its waiter is woken normally, and
// fails its at-end check when the fault engine injects a spurious wakeup —
// so a SpuriousWakeups exploration finds a violation whose schedule
// contains an injection token (c<i>).
func spuriousScenario(s *Sim) {
	l := &splock.Lock{}
	type ev struct{ _ int }
	e := &ev{}
	ready := false
	var got sched.WaitResult
	s.Spawn("waiter", func(t *sched.Thread) {
		l.Lock()
		for !ready {
			sched.AssertWait(t, e)
			l.Unlock()
			got = sched.ThreadBlock(t)
			if got == sched.Restarted {
				return
			}
			l.Lock()
		}
		l.Unlock()
	})
	s.Spawn("waker", func(_ *sched.Thread) {
		l.Lock()
		ready = true
		l.Unlock()
		sched.ThreadWakeup(e)
	})
	s.AtEnd(func(fail func(string, ...any)) {
		if got == sched.Restarted {
			fail("waiter restarted by a spurious wakeup")
		}
	})
}

// TestSimReplayRoundTrip: for every engine — seeded random walk, bounded
// DFS, fault-injecting DFS, wakeup-injecting DFS, and the parallel wave
// engine — a violating Result's schedule string must Replay to the
// identical violations AND the identical event sequence. This is the
// harness's whole debugging contract: the schedule line in a failure
// report IS the bug, reproducible byte for byte.
func TestSimReplayRoundTrip(t *testing.T) {
	cases := []struct {
		name      string
		sc        Scenario
		opt       Options
		run       func(sc Scenario, opt Options) Result
		wantToken string // a token kind the schedule must exercise
	}{
		{
			name: "random",
			sc:   lostWakeupScenario,
			run: func(sc Scenario, opt Options) Result {
				return Random(sc, 400, 7, opt)
			},
		},
		{
			name: "dfs",
			sc:   lostWakeupScenario,
			run: func(sc Scenario, opt Options) Result {
				return Explore(sc, DFSConfig{Preemptions: 1}, opt)
			},
		},
		{
			name: "dfs-reduced",
			sc:   lostWakeupScenario,
			run: func(sc Scenario, opt Options) Result {
				return Explore(sc, DFSConfig{Preemptions: 1, Reduction: ReduceSleep}, opt)
			},
		},
		{
			name: "faulted",
			sc:   forcedTryScenario,
			opt:  Options{FaultTries: true},
			run: func(sc Scenario, opt Options) Result {
				return Explore(sc, DFSConfig{Preemptions: 1}, opt)
			},
			wantToken: "F",
		},
		{
			name: "spurious",
			sc:   spuriousScenario,
			opt:  Options{SpuriousWakeups: true},
			run: func(sc Scenario, opt Options) Result {
				return Explore(sc, DFSConfig{Preemptions: 1}, opt)
			},
			wantToken: "c0",
		},
		{
			name: "parallel",
			sc:   lostWakeupScenario,
			run: func(sc Scenario, opt Options) Result {
				res, _ := ExploreParallel(sc, DFSConfig{Preemptions: 1},
					ParallelConfig{Workers: 4, Scenario: "roundtrip"}, opt)
				return res
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := tc.run(tc.sc, tc.opt)
			if !res.Failed() {
				t.Fatalf("engine found no violation: %s", res.Summary())
			}
			if tc.wantToken != "" {
				found := false
				for _, tok := range strings.Split(res.Schedule, ",") {
					if tok == tc.wantToken {
						found = true
					}
				}
				if !found {
					t.Fatalf("schedule %q does not exercise token %q", res.Schedule, tc.wantToken)
				}
			}
			rep := Replay(tc.sc, res.Schedule, tc.opt)
			if !reflect.DeepEqual(res.Violations, rep.Violations) {
				t.Fatalf("replay violations differ:\n  explore: %+v\n  replay:  %+v", res.Violations, rep.Violations)
			}
			if !reflect.DeepEqual(res.Log, rep.Log) {
				t.Fatalf("replay event sequence differs:\n  explore:\n%s\n  replay:\n%s",
					strings.Join(res.Log, "\n"), strings.Join(rep.Log, "\n"))
			}
		})
	}
}

// TestSimScheduleFromReport: the schedule survives a round trip through the
// rendered failure report — paste a CI log line back into Replay.
func TestSimScheduleFromReport(t *testing.T) {
	res := Explore(lostWakeupScenario, DFSConfig{Preemptions: 1}, Options{})
	if !res.Failed() {
		t.Fatal("expected a violation")
	}
	sched, ok := ScheduleFromReport(res.Report())
	if !ok || sched != res.Schedule {
		t.Fatalf("ScheduleFromReport = %q, %v; want %q, true", sched, ok, res.Schedule)
	}
	if _, ok := ScheduleFromReport("no schedule here"); ok {
		t.Fatal("ScheduleFromReport invented a schedule")
	}
}

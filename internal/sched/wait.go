package sched

import (
	"hash/maphash"
	"runtime"
	"sync"
	"sync/atomic"

	"machlock/internal/machsim/simhook"
)

// nbuckets is the size of the event hash table. Mach sized its wait-event
// hash similarly; sharding keeps unrelated events (different locks) from
// contending on one bucket mutex.
const nbuckets = 64

var seed = maphash.MakeSeed()

// bucket is one shard of the event table.
type bucket struct {
	mu      sync.Mutex
	waiters map[Event][]*Thread
}

// Table is an event wait table. The package-level functions operate on a
// default global table, which is what the lock implementations use (events
// are unique pointers, so a global table is safe); tests may create private
// tables.
type Table struct {
	buckets [nbuckets]bucket

	wakeups      atomic.Int64 // threads made runnable by ThreadWakeup
	emptyWakeups atomic.Int64 // ThreadWakeup calls that found no waiter
	clearWaits   atomic.Int64
}

// NewTable creates an empty event table.
func NewTable() *Table { return &Table{} }

// defaultTable is the global event table used by the package-level wrappers.
var defaultTable = NewTable()

func (tb *Table) bucketOf(e Event) *bucket {
	h := maphash.Comparable(seed, e)
	return &tb.buckets[h%nbuckets]
}

// AssertWait declares that t intends to wait for event e. It must be called
// before releasing the locks that protect the condition being waited for;
// the subsequent ThreadBlock then blocks only if no wakeup has occurred in
// the interim. Asserting while a previous assertion is still pending is a
// protocol violation (the paper notes a second assert_wait between an
// assert_wait and its thread_block "is fatal") and panics.
func (tb *Table) AssertWait(t *Thread, e Event) {
	simhook.Yield(simhook.SchedAssertWait, e)
	if e == nil {
		// Null event: the thread can only be resumed by ClearWait.
		t.mu.Lock()
		if t.state != running {
			t.mu.Unlock()
			panic("sched: assert_wait while already waiting: " + t.name)
		}
		t.state = waiting
		t.event = nil
		t.mu.Unlock()
		return
	}
	b := tb.bucketOf(e)
	b.mu.Lock()
	t.mu.Lock()
	if t.state != running {
		t.mu.Unlock()
		b.mu.Unlock()
		panic("sched: assert_wait while already waiting: " + t.name)
	}
	t.state = waiting
	t.event = e
	t.mu.Unlock()
	if b.waiters == nil {
		b.waiters = make(map[Event][]*Thread)
	}
	b.waiters[e] = append(b.waiters[e], t)
	b.mu.Unlock()
}

// ThreadBlock parks the thread until its asserted event occurs. If the
// event already occurred (between AssertWait and this call), it returns
// NotWaiting immediately; otherwise the returned WaitResult says whether
// the thread was awakened by its event or restarted by ClearWait.
//
// Calling ThreadBlock while holding a checked simple lock panics: the paper
// makes holding a spin lock across a blocking operation a fatal design
// violation, and this substrate enforces it.
func (tb *Table) ThreadBlock(t *Thread) WaitResult {
	if t.spinHeld.Load() != 0 {
		panic("sched: thread_block while holding a simple lock: " + t.name)
	}
	t.mu.Lock()
	if t.state != waiting {
		// Wakeup (or clear_wait) beat us here: no context switch.
		t.mu.Unlock()
		t.shortBlocks.Add(1)
		return NotWaiting
	}
	t.state = blocked
	t.blocks.Add(1)
	if simhook.Enabled() {
		// Under the machsim harness the thread parks on the harness's own
		// scheduler instead of the host condition variable, so the context
		// switch is a deterministic scheduling decision. resume() marks
		// the thread runnable via simhook.Unblock; Block returns once the
		// harness actually selects it again. No wakeup can be lost: state
		// is already `blocked`, so a resume between the unlock below and
		// the park is delivered by the harness, which serializes them.
		t.mu.Unlock()
		simhook.Note(simhook.SchedBlocked, t, 0)
		if simhook.Block(t) {
			t.mu.Lock()
			r := t.result
			t.mu.Unlock()
			return r
		}
		t.mu.Lock() // not a harness thread: fall through to host blocking
	}
	for t.state == blocked {
		t.cond.Wait()
	}
	r := t.result
	t.mu.Unlock()
	return r
}

// ThreadWakeup makes every thread waiting on event e runnable. Waiters that
// have asserted but not yet blocked are simply marked runnable, so their
// ThreadBlock will not block — the race-free half of the split protocol.
// It returns the number of threads awakened.
func (tb *Table) ThreadWakeup(e Event) int {
	return tb.wakeup(e, false)
}

// ThreadWakeupOne wakes at most one waiter on event e, returning 1 if a
// thread was awakened. Mach's thread_wakeup_one; used by lock hand-off
// paths that know a single waiter can make progress.
func (tb *Table) ThreadWakeupOne(e Event) int {
	return tb.wakeup(e, true)
}

func (tb *Table) wakeup(e Event, one bool) int {
	if e == nil {
		panic("sched: thread_wakeup on nil event")
	}
	simhook.Yield(simhook.SchedWakeup, e)
	b := tb.bucketOf(e)
	b.mu.Lock()
	list := b.waiters[e]
	if len(list) == 0 {
		b.mu.Unlock()
		tb.emptyWakeups.Add(1)
		return 0
	}
	var woken int
	if one {
		t := list[0]
		if len(list) == 1 {
			delete(b.waiters, e)
		} else {
			b.waiters[e] = list[1:]
		}
		tb.resume(t, e, Awakened)
		woken = 1
	} else {
		delete(b.waiters, e)
		for _, t := range list {
			tb.resume(t, e, Awakened)
		}
		woken = len(list)
	}
	b.mu.Unlock()
	tb.wakeups.Add(int64(woken))
	// A wakeup that made threads runnable is a preemption point, as in Mach:
	// without this, a waker busy-looping on few host cores can hold the
	// processor for a full preemption quantum per pass while every thread it
	// awakened sits runnable but unscheduled — on GOMAXPROCS=1 that starves
	// waiters into wait-timeout territory even though no wakeup was lost.
	runtime.Gosched()
	return woken
}

// resume marks t runnable with the given result. The caller holds the
// bucket lock for t's asserted event, so t cannot concurrently re-assert on
// this event.
func (tb *Table) resume(t *Thread, e Event, r WaitResult) {
	t.mu.Lock()
	if t.event == e && t.state != running {
		was := t.state
		t.state = running
		t.event = nil
		t.result = r
		if was == blocked {
			wakeBlocked(t, r)
		}
	}
	t.mu.Unlock()
}

// wakeBlocked delivers the resume to a thread parked in ThreadBlock: via
// the machsim harness when the thread is under its control, else through
// the host condition variable. Caller holds t.mu.
func wakeBlocked(t *Thread, r WaitResult) {
	simhook.Note(simhook.SchedUnblocked, t, int64(r))
	if !simhook.Unblock(t) {
		t.cond.Signal()
	}
}

// ClearWait resumes a specific thread regardless of the event it is waiting
// for (thread-based event occurrence, Mach's clear_wait). The thread's
// ThreadBlock returns Restarted. ClearWait on a thread that is not waiting
// is a no-op, returning false.
func (tb *Table) ClearWait(t *Thread) bool {
	simhook.Yield(simhook.SchedClearWait, t)
	tb.clearWaits.Add(1)
	for {
		t.mu.Lock()
		if t.state == running {
			t.mu.Unlock()
			return false
		}
		e := t.event
		if e == nil {
			// Null-event wait: no table entry to remove.
			was := t.state
			t.state = running
			t.result = Restarted
			if was == blocked {
				wakeBlocked(t, Restarted)
			}
			t.mu.Unlock()
			return true
		}
		t.mu.Unlock()

		// Lock ordering is bucket then thread, so re-take in order and
		// re-validate; the thread may have been awakened meanwhile.
		b := tb.bucketOf(e)
		b.mu.Lock()
		t.mu.Lock()
		if t.state == running || t.event != e {
			t.mu.Unlock()
			b.mu.Unlock()
			continue // state changed under us; retry
		}
		list := b.waiters[e]
		for i, w := range list {
			if w == t {
				list = append(list[:i], list[i+1:]...)
				break
			}
		}
		if len(list) == 0 {
			delete(b.waiters, e)
		} else {
			b.waiters[e] = list
		}
		was := t.state
		t.state = running
		t.event = nil
		t.result = Restarted
		if was == blocked {
			wakeBlocked(t, Restarted)
		}
		t.mu.Unlock()
		b.mu.Unlock()
		return true
	}
}

// ThreadSleep releases a lock and waits for event e, atomically with
// respect to wakeups on e: the common "release a single lock to wait for an
// event" pattern that Mach packages as thread_sleep. unlock is called after
// the wait is asserted, so a wakeup occurring while the lock is being
// released is not lost.
func (tb *Table) ThreadSleep(t *Thread, e Event, unlock func()) WaitResult {
	tb.AssertWait(t, e)
	unlock()
	return tb.ThreadBlock(t)
}

// Waiting reports whether any thread is currently waiting on event e.
func (tb *Table) Waiting(e Event) bool {
	b := tb.bucketOf(e)
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.waiters[e]) > 0
}

// Wakeups returns the number of threads made runnable by wakeups.
func (tb *Table) Wakeups() int64 { return tb.wakeups.Load() }

// EmptyWakeups returns the number of wakeup calls that found no waiters.
func (tb *Table) EmptyWakeups() int64 { return tb.emptyWakeups.Load() }

// ClearWaits returns the number of ClearWait calls.
func (tb *Table) ClearWaits() int64 { return tb.clearWaits.Load() }

// Package-level wrappers over the default global table. These are the
// spellings the rest of the kernel uses, matching the paper's names.

// AssertWait declares t will wait for e (on the global table).
func AssertWait(t *Thread, e Event) { defaultTable.AssertWait(t, e) }

// ThreadBlock parks t until its asserted event occurs (global table).
func ThreadBlock(t *Thread) WaitResult { return defaultTable.ThreadBlock(t) }

// ThreadWakeup wakes all waiters on e (global table).
func ThreadWakeup(e Event) int { return defaultTable.ThreadWakeup(e) }

// ThreadWakeupOne wakes at most one waiter on e (global table).
func ThreadWakeupOne(e Event) int { return defaultTable.ThreadWakeupOne(e) }

// ClearWait resumes t regardless of its event (global table).
func ClearWait(t *Thread) bool { return defaultTable.ClearWait(t) }

// ThreadSleep releases a lock and waits for e atomically (global table).
func ThreadSleep(t *Thread, e Event, unlock func()) WaitResult {
	return defaultTable.ThreadSleep(t, e, unlock)
}

// Waiting reports whether e has waiters (global table).
func Waiting(e Event) bool { return defaultTable.Waiting(e) }

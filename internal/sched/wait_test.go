package sched

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitTimeout fails the test if fn doesn't complete in time; used to detect
// lost wakeups without hanging the suite.
func waitTimeout(t *testing.T, what string, fn func()) {
	t.Helper()
	done := make(chan struct{})
	go func() { fn(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("timed out: %s", what)
	}
}

func TestWakeupBeforeBlockIsNotLost(t *testing.T) {
	tb := NewTable()
	th := New("t")
	ev := new(int)
	tb.AssertWait(th, ev)
	if n := tb.ThreadWakeup(ev); n != 1 {
		t.Fatalf("wakeup woke %d, want 1", n)
	}
	// The event occurred between assert and block: block must not park.
	if r := tb.ThreadBlock(th); r != NotWaiting {
		t.Fatalf("ThreadBlock = %v, want not-waiting", r)
	}
	if th.ShortBlocks() != 1 || th.Blocks() != 0 {
		t.Fatalf("short=%d blocks=%d, want 1/0", th.ShortBlocks(), th.Blocks())
	}
}

func TestBlockThenWakeup(t *testing.T) {
	tb := NewTable()
	ev := new(int)
	started := make(chan struct{})
	th := Go("sleeper", func(self *Thread) {
		tb.AssertWait(self, ev)
		close(started)
		if r := tb.ThreadBlock(self); r != Awakened {
			t.Errorf("ThreadBlock = %v, want awakened", r)
		}
	})
	<-started
	// Wait until the thread is actually parked, then wake it.
	for th.Blocks() == 0 && tb.Waiting(ev) {
		time.Sleep(time.Millisecond)
		if th.Blocks() > 0 {
			break
		}
	}
	for tb.ThreadWakeup(ev) == 0 {
		time.Sleep(time.Millisecond)
	}
	waitTimeout(t, "sleeper join", th.Join)
}

func TestWakeupWakesAllWaiters(t *testing.T) {
	tb := NewTable()
	ev := new(int)
	const n = 8
	var ready sync.WaitGroup
	ready.Add(n)
	threads := make([]*Thread, n)
	for i := range threads {
		threads[i] = Go("w", func(self *Thread) {
			tb.AssertWait(self, ev)
			ready.Done()
			tb.ThreadBlock(self)
		})
	}
	ready.Wait()
	woken := tb.ThreadWakeup(ev)
	if woken != n {
		t.Fatalf("woke %d, want %d", woken, n)
	}
	for _, th := range threads {
		waitTimeout(t, "waiter join", th.Join)
	}
}

func TestWakeupOneWakesExactlyOne(t *testing.T) {
	tb := NewTable()
	ev := new(int)
	var ready sync.WaitGroup
	ready.Add(2)
	mk := func() *Thread {
		return Go("w", func(self *Thread) {
			tb.AssertWait(self, ev)
			ready.Done()
			tb.ThreadBlock(self)
		})
	}
	t1, t2 := mk(), mk()
	ready.Wait()
	if n := tb.ThreadWakeupOne(ev); n != 1 {
		t.Fatalf("ThreadWakeupOne woke %d, want 1", n)
	}
	if !tb.Waiting(ev) {
		t.Fatal("second waiter disappeared after single wakeup")
	}
	if n := tb.ThreadWakeupOne(ev); n != 1 {
		t.Fatalf("second ThreadWakeupOne woke %d, want 1", n)
	}
	waitTimeout(t, "t1", t1.Join)
	waitTimeout(t, "t2", t2.Join)
}

func TestWakeupDifferentEventDoesNotWake(t *testing.T) {
	tb := NewTable()
	ev1, ev2 := new(int), new(int)
	th := New("t")
	tb.AssertWait(th, ev1)
	if n := tb.ThreadWakeup(ev2); n != 0 {
		t.Fatalf("wakeup on unrelated event woke %d", n)
	}
	if !tb.Waiting(ev1) {
		t.Fatal("waiter lost by unrelated wakeup")
	}
	tb.ClearWait(th) // clean up
}

func TestEmptyWakeupCounted(t *testing.T) {
	tb := NewTable()
	tb.ThreadWakeup(new(int))
	if tb.EmptyWakeups() != 1 {
		t.Fatalf("empty wakeups = %d, want 1", tb.EmptyWakeups())
	}
}

func TestClearWaitBeforeBlock(t *testing.T) {
	tb := NewTable()
	th := New("t")
	ev := new(int)
	tb.AssertWait(th, ev)
	if !tb.ClearWait(th) {
		t.Fatal("ClearWait on waiting thread returned false")
	}
	if tb.Waiting(ev) {
		t.Fatal("thread still in event table after ClearWait")
	}
	if r := tb.ThreadBlock(th); r != NotWaiting {
		t.Fatalf("ThreadBlock = %v, want not-waiting", r)
	}
}

func TestClearWaitWakesBlockedThreadWithRestarted(t *testing.T) {
	tb := NewTable()
	ev := new(int)
	var got atomic.Int32
	th := Go("t", func(self *Thread) {
		tb.AssertWait(self, ev)
		got.Store(int32(tb.ThreadBlock(self)))
	})
	for th.Blocks() == 0 {
		time.Sleep(time.Millisecond)
	}
	if !tb.ClearWait(th) {
		t.Fatal("ClearWait on blocked thread returned false")
	}
	waitTimeout(t, "join", th.Join)
	if WaitResult(got.Load()) != Restarted {
		t.Fatalf("result = %v, want restarted", WaitResult(got.Load()))
	}
}

func TestClearWaitOnRunningThreadIsNoop(t *testing.T) {
	tb := NewTable()
	th := New("t")
	if tb.ClearWait(th) {
		t.Fatal("ClearWait on running thread returned true")
	}
}

func TestNullEventOnlyClearWaitWakes(t *testing.T) {
	tb := NewTable()
	var got atomic.Int32
	th := Go("t", func(self *Thread) {
		tb.AssertWait(self, nil)
		got.Store(int32(tb.ThreadBlock(self)))
	})
	for th.Blocks() == 0 {
		time.Sleep(time.Millisecond)
	}
	if !tb.ClearWait(th) {
		t.Fatal("ClearWait failed on null-event waiter")
	}
	waitTimeout(t, "join", th.Join)
	if WaitResult(got.Load()) != Restarted {
		t.Fatalf("result = %v, want restarted", WaitResult(got.Load()))
	}
}

func TestDoubleAssertWaitPanics(t *testing.T) {
	tb := NewTable()
	th := New("t")
	tb.AssertWait(th, new(int))
	defer func() {
		if recover() == nil {
			t.Fatal("second assert_wait did not panic")
		}
		tb.ClearWait(th)
	}()
	tb.AssertWait(th, new(int))
}

func TestThreadBlockWhileHoldingSpinLockPanics(t *testing.T) {
	tb := NewTable()
	th := New("t")
	th.NoteSpinAcquire()
	defer func() {
		if recover() == nil {
			t.Fatal("thread_block holding a simple lock did not panic")
		}
		th.NoteSpinRelease()
	}()
	tb.AssertWait(th, new(int))
	tb.ThreadBlock(th)
}

func TestThreadSleepAtomicWithUnlock(t *testing.T) {
	// A wakeup arriving exactly while the lock is being released must not
	// be lost: ThreadSleep asserts the wait before calling unlock.
	tb := NewTable()
	ev := new(int)
	var mu sync.Mutex
	mu.Lock()
	th := Go("sleeper", func(self *Thread) {
		r := tb.ThreadSleep(self, ev, mu.Unlock)
		if r != Awakened && r != NotWaiting {
			t.Errorf("ThreadSleep = %v", r)
		}
	})
	// Waker: as soon as it can take the lock, the sleeper has asserted.
	mu.Lock()
	tb.ThreadWakeup(ev)
	mu.Unlock()
	waitTimeout(t, "sleeper join", th.Join)
}

// TestNoLostWakeupStress is the core race-freedom property of the split
// protocol: a producer/consumer pair where the producer wakes after every
// item and the consumer uses assert-unlock-block must never hang.
func TestNoLostWakeupStress(t *testing.T) {
	tb := NewTable()
	ev := new(int)
	var mu sync.Mutex
	items := 0
	const total = 5000
	consumer := Go("consumer", func(self *Thread) {
		consumed := 0
		for consumed < total {
			mu.Lock()
			for items == 0 {
				tb.AssertWait(self, ev)
				mu.Unlock()
				tb.ThreadBlock(self)
				mu.Lock()
			}
			items--
			consumed++
			mu.Unlock()
		}
	})
	producer := Go("producer", func(self *Thread) {
		for i := 0; i < total; i++ {
			mu.Lock()
			items++
			mu.Unlock()
			tb.ThreadWakeup(ev)
		}
	})
	waitTimeout(t, "producer", producer.Join)
	waitTimeout(t, "consumer (lost wakeup?)", consumer.Join)
}

// TestManyEventsManyThreadsStress is the raw -race smoke layer; the
// deterministic schedule-exploration twin is TestSimManyEventsManyThreads
// in sim_test.go.
func TestManyEventsManyThreadsStress(t *testing.T) {
	tb := NewTable()
	const nev = 32
	events := make([]*int, nev)
	for i := range events {
		events[i] = new(int)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Wakers hammer all events.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, e := range events {
					tb.ThreadWakeup(e)
				}
			}
		}()
	}
	var threads []*Thread
	for i := 0; i < 8; i++ {
		ev := events[i%nev]
		threads = append(threads, Go("w", func(self *Thread) {
			for j := 0; j < 60; j++ {
				tb.AssertWait(self, ev)
				tb.ThreadBlock(self)
			}
		}))
	}
	for _, th := range threads {
		waitTimeout(t, "stress waiter", th.Join)
	}
	close(stop)
	wg.Wait()
}

func TestGoJoinPropagatesPanic(t *testing.T) {
	th := Go("boom", func(*Thread) { panic("kaboom") })
	defer func() {
		if r := recover(); r != "kaboom" {
			t.Fatalf("Join recovered %v, want kaboom", r)
		}
	}()
	th.Join()
}

func TestWaitResultStrings(t *testing.T) {
	if Awakened.String() != "awakened" || Restarted.String() != "restarted" ||
		NotWaiting.String() != "not-waiting" || WaitResult(9).String() != "waitresult(9)" {
		t.Fatal("WaitResult strings wrong")
	}
}

func TestRankTracking(t *testing.T) {
	th := New("t")
	th.PushRank(1)
	th.PushRank(3)
	if r := th.HeldRanks(); len(r) != 2 || r[0] != 1 || r[1] != 3 {
		t.Fatalf("held ranks = %v", r)
	}
	th.PopRank(1)
	if r := th.HeldRanks(); len(r) != 1 || r[0] != 3 {
		t.Fatalf("held ranks after pop = %v", r)
	}
	th.PopRank(3)
	defer func() {
		if recover() == nil {
			t.Fatal("popping unheld rank did not panic")
		}
	}()
	th.PopRank(7)
}

func TestGlobalTableWrappers(t *testing.T) {
	ev := new(int)
	th := New("t")
	AssertWait(th, ev)
	if !Waiting(ev) {
		t.Fatal("global Waiting false after AssertWait")
	}
	if n := ThreadWakeup(ev); n != 1 {
		t.Fatalf("global wakeup woke %d", n)
	}
	if r := ThreadBlock(th); r != NotWaiting {
		t.Fatalf("global ThreadBlock = %v", r)
	}
	AssertWait(th, ev)
	if !ClearWait(th) {
		t.Fatal("global ClearWait failed")
	}
	var mu sync.Mutex
	mu.Lock()
	AssertWaitDone := make(chan struct{})
	th2 := Go("t2", func(self *Thread) {
		ThreadSleep(self, ev, func() { mu.Unlock(); close(AssertWaitDone) })
	})
	<-AssertWaitDone
	mu.Lock()
	ThreadWakeupOne(ev)
	mu.Unlock()
	waitTimeout(t, "global sleeper", th2.Join)
}

func TestTableCounters(t *testing.T) {
	tb := NewTable()
	th := New("counted")
	ev := new(int)
	tb.AssertWait(th, ev)
	tb.ThreadWakeup(ev)
	tb.ThreadBlock(th)
	tb.ThreadWakeup(new(int)) // empty
	tb.AssertWait(th, ev)
	tb.ClearWait(th)
	if tb.Wakeups() != 1 || tb.EmptyWakeups() != 1 || tb.ClearWaits() != 1 {
		t.Fatalf("wakeups=%d empty=%d clears=%d", tb.Wakeups(), tb.EmptyWakeups(), tb.ClearWaits())
	}
	if th.Name() != "counted" || th.String() != "thread(counted)" {
		t.Fatalf("identity strings: %q %q", th.Name(), th.String())
	}
}

func TestSpinAccountingBalance(t *testing.T) {
	th := New("t")
	th.NoteSpinAcquire()
	th.NoteSpinAcquire()
	if th.SpinLocksHeld() != 2 {
		t.Fatalf("held = %d", th.SpinLocksHeld())
	}
	th.NoteSpinRelease()
	th.NoteSpinRelease()
	if th.SpinLocksHeld() != 0 {
		t.Fatalf("held = %d", th.SpinLocksHeld())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("over-release did not panic")
		}
	}()
	th.NoteSpinRelease()
}

// Package sched implements the kernel-thread substrate and the event wait
// primitives of the Mach kernel described in Section 6 of the paper:
//
//	assert_wait    — declare the event to be waited for
//	thread_block   — context switch; waits only if the event has not occurred
//	thread_wakeup  — event-based occurrence (wakes all waiters on an event)
//	clear_wait     — thread-based occurrence (wakes one specific thread)
//	thread_sleep   — release a single lock and wait for an event, atomically
//
// The essential design point is that declaration (AssertWait) and the
// conditional wait (ThreadBlock) are split: a thread that must release locks
// before waiting calls AssertWait first, releases the locks, and then calls
// ThreadBlock. If the event occurs in the interim, ThreadBlock degenerates
// to a no-op that leaves the thread runnable — there is no window in which a
// wakeup can be lost. Experiment E7 measures exactly this property against a
// naive check-then-wait protocol.
//
// Kernel threads are carried by goroutines; a *Thread handle stands in for
// Mach's implicit current_thread(), since Go deliberately exposes no
// goroutine-local storage.
package sched

import (
	"fmt"
	"sync"
	"sync/atomic"

	"machlock/internal/trace"
)

// Event identifies an occurrence a thread may wait for. In Mach an event is
// a kernel address; here it is any comparable value, and by convention the
// pointer to the data structure involved (e.g. a *cxlock.Lock). The nil
// event is special: a thread asserted on the nil event is not entered in
// the event table and can only be awakened by ClearWait — the paper's
// "block threads on event zero (the null event), from which only a
// clear_wait can awaken them".
type Event any

// WaitResult reports why a blocked thread resumed.
type WaitResult int32

const (
	// Awakened means the awaited event occurred (thread_wakeup).
	Awakened WaitResult = iota
	// Restarted means the thread was resumed by ClearWait rather than by
	// its event; the caller should re-evaluate its condition.
	Restarted
	// NotWaiting is returned by ThreadBlock when the event occurred
	// between AssertWait and ThreadBlock, so no context switch happened.
	NotWaiting
)

// String implements fmt.Stringer.
func (r WaitResult) String() string {
	switch r {
	case Awakened:
		return "awakened"
	case Restarted:
		return "restarted"
	case NotWaiting:
		return "not-waiting"
	default:
		return fmt.Sprintf("waitresult(%d)", int32(r))
	}
}

// threadState tracks where a thread is in the wait protocol.
type threadState int32

const (
	running threadState = iota
	waiting             // AssertWait done, not yet blocked
	blocked             // parked in ThreadBlock
)

// Thread is a kernel thread: the entity that holds locks and references in
// the Mach model. Create threads with New (bare) or Go (running a function
// on its own goroutine).
type Thread struct {
	name string
	tid  uint32 // trace.RegisterThread id, for timeline tracks and blame

	mu     sync.Mutex
	cond   *sync.Cond
	state  threadState
	event  Event
	result WaitResult

	// spinHeld counts checked simple locks currently held; ThreadBlock
	// panics while it is nonzero, enforcing the paper's design
	// requirement that simple locks may not be held across blocking
	// operations ("violations of this restriction cause kernel
	// deadlocks").
	spinHeld atomic.Int32

	// ranks is the stack of lock-ordering ranks held, maintained by the
	// splock hierarchy checker.
	ranks []int

	blocks      atomic.Int64 // ThreadBlock calls that actually blocked
	shortBlocks atomic.Int64 // ThreadBlock calls satisfied without blocking

	done chan struct{}
	err  any // recovered panic value from Go-started body, if any
}

// New creates a thread handle with the given name. The handle may be used
// from whatever goroutine is currently "being" the thread; the caller is
// responsible for using one goroutine at a time.
func New(name string) *Thread {
	t := &Thread{name: name, tid: trace.RegisterThread(name), done: make(chan struct{})}
	t.cond = sync.NewCond(&t.mu)
	close(t.done) // a bare thread is not joinable-pending
	return t
}

// Go creates a thread and runs body on a new goroutine. Join waits for the
// body to return. A panic in the body is captured and re-raised by Join.
func Go(name string, body func(t *Thread)) *Thread {
	t := &Thread{name: name, tid: trace.RegisterThread(name), done: make(chan struct{})}
	t.cond = sync.NewCond(&t.mu)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				t.err = r
			}
			close(t.done)
		}()
		body(t)
	}()
	return t
}

// Join waits for a Go-started thread's body to return, re-panicking with
// the body's panic value if it panicked.
func (t *Thread) Join() {
	<-t.done
	if t.err != nil {
		panic(t.err)
	}
}

// Name returns the thread's name.
func (t *Thread) Name() string { return t.name }

// TraceID returns the thread's trace id (see trace.RegisterThread). It
// satisfies trace.Identifiable, so spans opened by this thread land on its
// timeline track and lock events it records carry its identity.
func (t *Thread) TraceID() uint32 { return t.tid }

// String implements fmt.Stringer.
func (t *Thread) String() string { return "thread(" + t.name + ")" }

// Blocks returns the number of ThreadBlock calls that actually parked the
// thread.
func (t *Thread) Blocks() int64 { return t.blocks.Load() }

// ShortBlocks returns the number of ThreadBlock calls that found the event
// already occurred and did not park.
func (t *Thread) ShortBlocks() int64 { return t.shortBlocks.Load() }

// NoteSpinAcquire records that the thread acquired a checked simple lock.
// It is called by splock's checked lock implementation.
func (t *Thread) NoteSpinAcquire() { t.spinHeld.Add(1) }

// NoteSpinRelease records that the thread released a checked simple lock.
func (t *Thread) NoteSpinRelease() {
	if t.spinHeld.Add(-1) < 0 {
		panic("sched: simple lock release without acquire on " + t.name)
	}
}

// SpinLocksHeld returns the number of checked simple locks the thread
// currently holds.
func (t *Thread) SpinLocksHeld() int { return int(t.spinHeld.Load()) }

// PushRank records acquisition of a lock with the given ordering rank; part
// of the lock hierarchy checker protocol (see splock.Hierarchy).
func (t *Thread) PushRank(rank int) {
	t.mu.Lock()
	t.ranks = append(t.ranks, rank)
	t.mu.Unlock()
}

// PopRank records release of a lock with the given ordering rank.
func (t *Thread) PopRank(rank int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := len(t.ranks) - 1; i >= 0; i-- {
		if t.ranks[i] == rank {
			t.ranks = append(t.ranks[:i], t.ranks[i+1:]...)
			return
		}
	}
	panic(fmt.Sprintf("sched: %s released rank %d it does not hold", t.name, rank))
}

// HeldRanks returns a snapshot of the ordering ranks currently held.
func (t *Thread) HeldRanks() []int {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]int, len(t.ranks))
	copy(out, t.ranks)
	return out
}

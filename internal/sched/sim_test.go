// Machsim suite for the event-wait protocol's edge cases: the
// assert_wait/unlock/thread_block split exists precisely for the windows
// these tests explore. External test package so it can import machsim
// (which itself imports sched).
package sched_test

import (
	"fmt"
	"testing"

	"machlock/internal/core/splock"
	"machlock/internal/machsim"
	"machlock/internal/sched"
)

// TestSimThreadSleepNoLostWakeup explores Table.ThreadSleep's reason for
// existing: the wait is asserted BEFORE the lock protecting the condition
// is released, so a wakeup landing anywhere in the window cannot be lost.
// Every schedule must terminate (a lost wakeup would deadlock, which the
// harness reports structurally) with only legal wait results.
func TestSimThreadSleepNoLostWakeup(t *testing.T) {
	scenario := func(s *machsim.Sim) {
		l := &splock.Lock{}
		e := new(int)
		ready := false
		var results []sched.WaitResult
		s.Label(l, "cond.lock")
		s.Spawn("sleeper", func(t *sched.Thread) {
			l.Lock()
			for !ready {
				results = append(results, sched.ThreadSleep(t, e, l.Unlock))
				l.Lock()
			}
			l.Unlock()
		})
		s.Spawn("waker", func(_ *sched.Thread) {
			l.Lock()
			ready = true
			l.Unlock()
			sched.ThreadWakeup(e)
		})
		s.AtEnd(func(fail func(string, ...any)) {
			for _, r := range results {
				if r != sched.Awakened && r != sched.NotWaiting {
					fail("unexpected wait result %v", r)
				}
			}
		})
	}
	machsim.Check(t, machsim.Explore(scenario, machsim.DFSConfig{Preemptions: 2, MaxRuns: 1500}, machsim.Options{}))
	machsim.Check(t, machsim.Random(scenario, 200, 17, machsim.Options{}))
}

// TestSimWakeupBetweenAssertAndBlock pins the specific window the split
// protocol defends: the wait is asserted (during setup, so it is ordered
// before both bodies) and the wakeup races the ThreadBlock. Depending on
// which side wins, the blocker sees Awakened (it parked first) or
// NotWaiting (the wakeup beat it there); the exploration must produce
// both, and the wakeup must never be lost.
func TestSimWakeupBetweenAssertAndBlock(t *testing.T) {
	results := map[sched.WaitResult]bool{}
	scenario := func(s *machsim.Sim) {
		e := new(int)
		th := s.Spawn("blocker", func(t *sched.Thread) {
			r := sched.ThreadBlock(t)
			if r != sched.Awakened && r != sched.NotWaiting {
				s.Fail("wait result %v after a real wakeup", r)
			}
			results[r] = true
		})
		sched.AssertWait(th, e)
		s.Spawn("waker", func(_ *sched.Thread) {
			if n := sched.ThreadWakeup(e); n != 1 {
				s.Fail("wakeup resumed %d threads, want 1", n)
			}
		})
	}
	res := machsim.Explore(scenario, machsim.DFSConfig{Preemptions: 1, MaxRuns: 400}, machsim.Options{})
	machsim.Check(t, res)
	if !results[sched.Awakened] || !results[sched.NotWaiting] {
		t.Fatalf("exploration missed a window: results=%v (want both Awakened and NotWaiting)", results)
	}
}

// TestSimClearWaitRacesWakeup: a stale ClearWait (the thread-based event
// occurrence a timeout path would deliver) races the real event wakeup.
// Exactly one side may resume the thread — the loser must observe a
// thread that is already running and stand down — and the blocker's
// result must identify the winner.
func TestSimClearWaitRacesWakeup(t *testing.T) {
	saw := map[sched.WaitResult]bool{}
	scenario := func(s *machsim.Sim) {
		e := new(int)
		var result sched.WaitResult
		th := s.Spawn("blocker", func(t *sched.Thread) {
			result = sched.ThreadBlock(t)
		})
		sched.AssertWait(th, e)
		cleared, woken := false, 0
		s.Spawn("clearer", func(_ *sched.Thread) {
			cleared = sched.ClearWait(th)
		})
		s.Spawn("waker", func(_ *sched.Thread) {
			woken = sched.ThreadWakeup(e)
		})
		s.AtEnd(func(fail func(string, ...any)) {
			resumes := woken
			if cleared {
				resumes++
			}
			if resumes != 1 {
				fail("thread resumed %d times (cleared=%v woken=%d), want exactly once", resumes, cleared, woken)
			}
			switch {
			case cleared && result != sched.Restarted && result != sched.NotWaiting:
				fail("clear_wait won but result=%v", result)
			case woken == 1 && result != sched.Awakened && result != sched.NotWaiting:
				fail("wakeup won but result=%v", result)
			}
			saw[result] = true
		})
	}
	res := machsim.Explore(scenario, machsim.DFSConfig{Preemptions: 2, MaxRuns: 1500}, machsim.Options{})
	machsim.Check(t, res)
	if !saw[sched.Restarted] || !saw[sched.Awakened] {
		t.Fatalf("exploration missed an ordering: saw=%v (want both Restarted and Awakened)", saw)
	}
}

// TestSimManyEventsManyThreads is the machsim twin of
// TestManyEventsManyThreadsStress (which stays as a shortened raw -race
// smoke test): waiters on distinct events share one hash table while a
// waker posts their conditions and then hammers both events with stray
// wakeups. Every schedule must terminate — a wakeup delivered to the wrong
// queue, or lost in the assert/block window, deadlocks the waiter and the
// harness reports it structurally — and stray wakeups on empty queues must
// be harmless. Each waiter guards its condition with its own lock (the
// cross-thread coupling under test is the shared event table, not lock
// contention; a shared condition lock makes every spin a free DFS branch
// point and the space balloons without adding coverage).
func TestSimManyEventsManyThreads(t *testing.T) {
	scenario := func(s *machsim.Sim) {
		locks := []*splock.Lock{{}, {}}
		events := []*int{new(int), new(int)}
		flags := make([]bool, len(events))
		var results []sched.WaitResult
		for i := range events {
			s.Spawn(fmt.Sprintf("waiter%d", i), func(t *sched.Thread) {
				locks[i].Lock()
				for !flags[i] {
					r := sched.ThreadSleep(t, events[i], locks[i].Unlock)
					results = append(results, r)
					locks[i].Lock()
				}
				locks[i].Unlock()
			})
		}
		s.Spawn("waker", func(_ *sched.Thread) {
			for i := range events {
				locks[i].Lock()
				flags[i] = true
				locks[i].Unlock()
				sched.ThreadWakeup(events[i])
			}
			// Stray wakeups on events whose waiters may already be gone —
			// the raw stress's hammering wakers in miniature.
			for i := range events {
				sched.ThreadWakeup(events[i])
			}
		})
		s.AtEnd(func(fail func(string, ...any)) {
			for _, r := range results {
				if r != sched.Awakened && r != sched.NotWaiting {
					fail("unexpected wait result %v", r)
				}
			}
		})
	}
	machsim.Check(t, machsim.Random(scenario, 200, 37, machsim.Options{}))
	res := machsim.Explore(scenario, machsim.DFSConfig{
		Preemptions: 1,
		Reduction:   machsim.ReduceSleep,
		MaxRuns:     100000,
	}, machsim.Options{})
	machsim.Check(t, res)
	if !res.Exhausted {
		t.Fatalf("bounded space not exhausted: %s", res.Summary())
	}
}

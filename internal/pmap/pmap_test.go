package pmap

import (
	"sync"
	"testing"
	"testing/quick"
)

func modes() []Mode { return []Mode{SystemLock, Backout, ClassArbitration} }

func TestEnterLookup(t *testing.T) {
	for _, mode := range modes() {
		s := NewSystem(mode, 16)
		pm := s.NewPmap()
		s.Enter(pm, 0x1000, 3, ProtAll)
		pa, prot, ok := pm.Lookup(0x1000)
		if !ok || pa != 3 || prot != ProtAll {
			t.Fatalf("%v: lookup = %d %d %v", mode, pa, prot, ok)
		}
		if s.MappingsOf(3) != 1 {
			t.Fatalf("%v: pv entries = %d, want 1", mode, s.MappingsOf(3))
		}
		if pm.Len() != 1 {
			t.Fatalf("%v: len = %d", mode, pm.Len())
		}
	}
}

func TestRemove(t *testing.T) {
	for _, mode := range modes() {
		s := NewSystem(mode, 16)
		pm := s.NewPmap()
		s.Enter(pm, 0x1000, 3, ProtAll)
		if !s.Remove(pm, 0x1000) {
			t.Fatalf("%v: remove failed", mode)
		}
		if _, _, ok := pm.Lookup(0x1000); ok {
			t.Fatalf("%v: mapping survived remove", mode)
		}
		if s.MappingsOf(3) != 0 {
			t.Fatalf("%v: pv entry survived remove", mode)
		}
		if s.Remove(pm, 0x1000) {
			t.Fatalf("%v: removing absent mapping returned true", mode)
		}
	}
}

func TestEnterReplaceSamePage(t *testing.T) {
	for _, mode := range modes() {
		s := NewSystem(mode, 16)
		pm := s.NewPmap()
		s.Enter(pm, 0x1000, 3, ProtAll)
		s.Enter(pm, 0x1000, 3, ProtRead)
		_, prot, _ := pm.Lookup(0x1000)
		if prot != ProtRead {
			t.Fatalf("%v: prot = %d, want read", mode, prot)
		}
		if s.MappingsOf(3) != 1 {
			t.Fatalf("%v: duplicate pv entry on same-page replace", mode)
		}
	}
}

func TestEnterReplaceDifferentPage(t *testing.T) {
	for _, mode := range modes() {
		s := NewSystem(mode, 16)
		pm := s.NewPmap()
		s.Enter(pm, 0x1000, 3, ProtAll)
		s.Enter(pm, 0x1000, 7, ProtAll)
		pa, _, _ := pm.Lookup(0x1000)
		if pa != 7 {
			t.Fatalf("%v: pa = %d, want 7", mode, pa)
		}
		if s.MappingsOf(3) != 0 {
			t.Fatalf("%v: stale pv entry on old page", mode)
		}
		if s.MappingsOf(7) != 1 {
			t.Fatalf("%v: missing pv entry on new page", mode)
		}
		if err := s.CheckInvariants([]*Pmap{pm}); err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
	}
}

func TestPageProtectLowersAllMappings(t *testing.T) {
	for _, mode := range modes() {
		s := NewSystem(mode, 16)
		pms := []*Pmap{s.NewPmap(), s.NewPmap(), s.NewPmap()}
		for i, pm := range pms {
			s.Enter(pm, uint64(0x1000*(i+1)), 5, ProtAll)
		}
		s.PageProtect(5, ProtRead)
		for i, pm := range pms {
			_, prot, ok := pm.Lookup(uint64(0x1000 * (i + 1)))
			if !ok || prot != ProtRead {
				t.Fatalf("%v: pmap %d prot = %d %v, want read", mode, i, prot, ok)
			}
		}
		if err := s.CheckInvariants(pms); err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
	}
}

func TestPageProtectNoneRemovesAllMappings(t *testing.T) {
	for _, mode := range modes() {
		s := NewSystem(mode, 16)
		pms := []*Pmap{s.NewPmap(), s.NewPmap()}
		for i, pm := range pms {
			s.Enter(pm, uint64(0x2000*(i+1)), 9, ProtAll)
		}
		s.PageProtect(9, ProtNone)
		if s.MappingsOf(9) != 0 {
			t.Fatalf("%v: pv entries remain after protect-none", mode)
		}
		for i, pm := range pms {
			if _, _, ok := pm.Lookup(uint64(0x2000 * (i + 1))); ok {
				t.Fatalf("%v: pte survived protect-none in pmap %d", mode, i)
			}
		}
		if err := s.CheckInvariants(pms); err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
	}
}

func TestOutOfRangePagePanics(t *testing.T) {
	s := NewSystem(Backout, 4)
	pm := s.NewPmap()
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range page did not panic")
		}
	}()
	s.Enter(pm, 0, 100, ProtAll)
}

func TestModeStrings(t *testing.T) {
	if SystemLock.String() != "system-lock" || Backout.String() != "backout" {
		t.Fatal("mode strings wrong")
	}
}

// TestBothOrdersConcurrentlyStress is the Section 5 scenario itself:
// forward operations (pmap→pv) racing reverse operations (pv→pmap) under
// each arbitration strategy. The test passes if it neither deadlocks nor
// corrupts the pte/pv inverse invariant. Kept short: real concurrency under
// -race is the smoke layer; the deterministic schedule-exploration version
// is TestSimBothOrders in sim_test.go.
func TestBothOrdersConcurrentlyStress(t *testing.T) {
	for _, mode := range modes() {
		s := NewSystem(mode, 8)
		const npm = 4
		pms := make([]*Pmap, npm)
		for i := range pms {
			pms[i] = s.NewPmap()
		}
		var wg sync.WaitGroup
		// Forward mutators.
		for i := 0; i < npm; i++ {
			wg.Add(1)
			go func(pm *Pmap, seed uint64) {
				defer wg.Done()
				for j := 0; j < 120; j++ {
					va := (seed*131 + uint64(j)*17) % 64
					pa := (seed + uint64(j)) % 8
					s.Enter(pm, va, pa, ProtAll)
					if j%3 == 0 {
						s.Remove(pm, va)
					}
				}
			}(pms[i], uint64(i))
		}
		// Reverse mutators.
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func(seed int) {
				defer wg.Done()
				for j := 0; j < 60; j++ {
					pa := uint64((seed + j) % 8)
					if j%5 == 0 {
						s.PageProtect(pa, ProtNone)
					} else {
						s.PageProtect(pa, ProtRead)
					}
				}
			}(i)
		}
		wg.Wait()
		if err := s.CheckInvariants(pms); err != nil {
			t.Fatalf("%v: invariant violated: %v", mode, err)
		}
		if mode == Backout {
			t.Logf("backout retries: %d", s.Stats().Backouts)
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	s := NewSystem(SystemLock, 8)
	pm := s.NewPmap()
	s.Enter(pm, 1, 1, ProtAll)
	s.Remove(pm, 1)
	s.PageProtect(1, ProtRead)
	st := s.Stats()
	if st.Enters != 1 || st.Removes != 1 || st.PageProtects != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if s.NPages() != 8 {
		t.Fatalf("NPages = %d", s.NPages())
	}
	if pm.ID() == 0 {
		t.Fatal("pmap id not assigned")
	}
}

// Property: any single-threaded sequence of Enter/Remove/PageProtect keeps
// the pte↔pv invariant.
func TestInvariantQuick(t *testing.T) {
	type op struct {
		Kind uint8
		PM   uint8
		VA   uint8
		PA   uint8
	}
	for _, mode := range modes() {
		f := func(ops []op) bool {
			s := NewSystem(mode, 8)
			pms := []*Pmap{s.NewPmap(), s.NewPmap()}
			for _, o := range ops {
				pm := pms[int(o.PM)%2]
				va := uint64(o.VA % 32)
				pa := uint64(o.PA % 8)
				switch o.Kind % 4 {
				case 0, 1:
					s.Enter(pm, va, pa, ProtAll)
				case 2:
					s.Remove(pm, va)
				case 3:
					s.PageProtect(pa, Prot(o.VA%4))
				}
			}
			return s.CheckInvariants(pms) == nil
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
	}
}

// Package pmap implements the machine-dependent physical map layer of
// Mach's virtual memory system as described in Section 5 of the paper: the
// physical maps (pmaps) that hold virtual-to-physical translations in MMU
// format, and the physical-to-virtual (pv) lists that invert them.
//
// Both structures have locks, and the module contains routines that need
// them in both orders: Enter/Remove work virtual-to-physical (pmap, then pv
// list) while PageProtect works physical-to-virtual (pv list, then pmap).
// The paper describes two resolutions, both implemented here and compared
// by experiment E8:
//
//   - SystemLock: "a third lock (the pmap system lock) is used to arbitrate
//     between the orders in which these locks may be acquired. In some
//     systems this is a readers/writers lock, so that any procedure with a
//     write lock on this lock can assume exclusive access to the pv lists."
//     Forward operations take the system lock for reading and then both
//     structure locks in pmap→pv order; reverse operations take it for
//     writing, gaining exclusive pv access, and then only pmap locks.
//
//   - Backout: "a single attempt is made for the second lock, with failure
//     causing the first one to be released and reacquired later." Forward
//     operations lock pmap then pv unconditionally (the canonical order);
//     reverse operations lock pv then *try* each pmap, backing all the way
//     out and retrying on failure.
package pmap

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"machlock/internal/core/cxlock"
	"machlock/internal/core/splock"
)

// Prot is a page protection.
type Prot uint8

// Protections.
const (
	ProtNone  Prot = 0
	ProtRead  Prot = 1
	ProtWrite Prot = 2
	ProtAll        = ProtRead | ProtWrite
)

// Mode selects the lock-order arbitration strategy.
type Mode int

const (
	// SystemLock arbitrates with the pmap system readers/writers lock.
	SystemLock Mode = iota
	// Backout uses single-attempt acquisition with backout and retry.
	Backout
	// ClassArbitration uses the Section 5 custom lock with "two exclusive
	// classes of readers": all forward (pmap→pv) operations share one
	// class, all reverse (pv→pmap) operations the other. Same-class
	// operations use identical lock orders and cannot deadlock; the
	// classes exclude each other, so the orders never mix.
	ClassArbitration
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case SystemLock:
		return "system-lock"
	case Backout:
		return "backout"
	case ClassArbitration:
		return "class-lock"
	default:
		return "mode(?)"
	}
}

// mapping is one virtual-to-physical translation.
type mapping struct {
	pa   uint64
	prot Prot
}

// Pmap is one task's physical map. Its simple lock protects the
// translation table. Pmap locks are spin locks acquired at splvm with
// interrupts disabled in real Mach; the TLB shootdown package models that
// interaction.
type Pmap struct {
	lock splock.Lock
	sys  *System
	id   int
	ptes map[uint64]mapping
}

// pvEntry records that pmap maps va to this physical page.
type pvEntry struct {
	pm *Pmap
	va uint64
}

// physPage is the per-physical-page state: its pv list and its lock.
type physPage struct {
	lock splock.Lock
	pv   []pvEntry
}

// Stats is a snapshot of the system's operation accounting.
type Stats struct {
	Enters       int64
	Removes      int64
	PageProtects int64
	Backouts     int64 // reverse-order attempts that had to release and retry
}

// System is the pmap module: a set of physical pages with pv lists, a
// population of pmaps, the pmap system lock, and the configured arbitration
// mode.
type System struct {
	mode      Mode
	sysLock   cxlock.Lock       // the pmap system lock (spin readers/writers)
	classLock *cxlock.ClassLock // the two-exclusive-reader-classes custom lock
	pages     []physPage
	nextID    atomic.Int64

	enters       atomic.Int64
	removes      atomic.Int64
	pageProtects atomic.Int64
	backouts     atomic.Int64
}

// NewSystem creates a pmap module managing npages physical pages.
func NewSystem(mode Mode, npages int) *System {
	s := &System{mode: mode, pages: make([]physPage, npages)}
	s.sysLock.InitWith(cxlock.Options{Name: "pmap.system"}) // spin lock: pmap code never sleeps
	s.classLock = cxlock.NewClassLock()
	return s
}

// Mode returns the arbitration mode.
func (s *System) Mode() Mode { return s.mode }

// NPages returns the number of physical pages managed.
func (s *System) NPages() int { return len(s.pages) }

// NewPmap creates an empty physical map in this system.
func (s *System) NewPmap() *Pmap {
	return &Pmap{
		sys:  s,
		id:   int(s.nextID.Add(1)),
		ptes: make(map[uint64]mapping),
	}
}

func (s *System) page(pa uint64) *physPage {
	if pa >= uint64(len(s.pages)) {
		panic(fmt.Sprintf("pmap: physical page %d out of range", pa))
	}
	return &s.pages[pa]
}

// Enter establishes the translation va→pa with the given protection in pm
// (pmap_enter). Forward order: pmap, then pv list(s). Replacing a mapping
// that pointed at a different physical page must lock two pv lists — two
// locks of the same type, acquired in address (page-number) order per the
// paper's same-type convention.
func (s *System) Enter(pm *Pmap, va, pa uint64, prot Prot) {
	s.enters.Add(1)
	switch s.mode {
	case SystemLock:
		s.sysLock.Read(nil)
		defer s.sysLock.Done(nil)
	case ClassArbitration:
		s.classLock.Acquire(cxlock.Forward, nil)
		defer s.classLock.Release(cxlock.Forward, nil)
	}
	pp := s.page(pa)
	pm.lock.Lock()
	defer pm.lock.Unlock()

	old, had := pm.ptes[va]
	if had && old.pa != pa {
		oldPP := s.page(old.pa)
		first, second := oldPP, pp
		if pa < old.pa {
			first, second = pp, oldPP
		}
		first.lock.Lock()
		second.lock.Lock()
		removePV(oldPP, pm, va)
		pm.ptes[va] = mapping{pa: pa, prot: prot}
		pp.pv = append(pp.pv, pvEntry{pm: pm, va: va})
		second.lock.Unlock()
		first.lock.Unlock()
		return
	}

	pp.lock.Lock()
	pm.ptes[va] = mapping{pa: pa, prot: prot}
	if !had {
		pp.pv = append(pp.pv, pvEntry{pm: pm, va: va})
	}
	pp.lock.Unlock()
}

// Remove deletes the translation for va from pm (pmap_remove). Forward
// order, like Enter.
func (s *System) Remove(pm *Pmap, va uint64) bool {
	s.removes.Add(1)
	switch s.mode {
	case SystemLock:
		s.sysLock.Read(nil)
		defer s.sysLock.Done(nil)
	case ClassArbitration:
		s.classLock.Acquire(cxlock.Forward, nil)
		defer s.classLock.Release(cxlock.Forward, nil)
	}
	pm.lock.Lock()
	m, ok := pm.ptes[va]
	if !ok {
		pm.lock.Unlock()
		return false
	}
	pp := s.page(m.pa)
	pp.lock.Lock()
	delete(pm.ptes, va)
	removePV(pp, pm, va)
	pp.lock.Unlock()
	pm.lock.Unlock()
	return true
}

func removePV(pp *physPage, pm *Pmap, va uint64) {
	for i, e := range pp.pv {
		if e.pm == pm && e.va == va {
			pp.pv = append(pp.pv[:i], pp.pv[i+1:]...)
			return
		}
	}
}

// PageProtect lowers the protection of every mapping of physical page pa
// (pmap_page_protect, the shape of all reverse physical-to-virtual
// operations). Reverse order: pv list first, then each pmap — resolved per
// the system's mode. With ProtNone the mappings are removed entirely.
func (s *System) PageProtect(pa uint64, prot Prot) {
	s.pageProtects.Add(1)
	pp := s.page(pa)
	switch s.mode {
	case SystemLock:
		// Write hold on the system lock ⇒ exclusive access to ALL pv
		// lists: no pv lock needed. Forward operations hold it for
		// reading while they touch any pv list, so none are in flight.
		s.sysLock.Write(nil)
		for _, e := range snapshotPV(pp) {
			e.pm.lock.Lock()
			s.protectOne(pp, e, prot)
			e.pm.lock.Unlock()
		}
		s.sysLock.Done(nil)
	case ClassArbitration:
		// Reverse class: pv list first, then each pmap — safe because
		// every concurrent holder uses this same order (forward-order
		// users are excluded by the class lock).
		s.classLock.Acquire(cxlock.Reverse, nil)
		pp.lock.Lock()
		for i := 0; i < len(pp.pv); {
			e := pp.pv[i]
			//machvet:allow lockorder — reverse pv→pmap order is arbitrated by the class lock (Section 5): forward-order holders are excluded while the Reverse class is held
			e.pm.lock.Lock()
			s.protectOne(pp, e, prot)
			e.pm.lock.Unlock()
			if prot == ProtNone {
				continue // protectOne removed pp.pv[i]
			}
			i++
		}
		pp.lock.Unlock()
		s.classLock.Release(cxlock.Reverse, nil)
	case Backout:
		for {
			pp.lock.Lock()
			done := true
			for i := 0; i < len(pp.pv); {
				e := pp.pv[i]
				if !e.pm.lock.TryLock() {
					// Reverse of the usual order: single attempt,
					// failure backs all the way out and retries.
					s.backouts.Add(1)
					done = false
					break
				}
				s.protectOne(pp, e, prot)
				e.pm.lock.Unlock()
				if prot == ProtNone {
					// protectOne removed pp.pv[i]; don't advance.
					continue
				}
				i++
			}
			pp.lock.Unlock()
			if done {
				return
			}
			runtime.Gosched()
		}
	}
}

// snapshotPV copies the pv list; with the system write lock held no
// forward operation can mutate it concurrently.
func snapshotPV(pp *physPage) []pvEntry {
	out := make([]pvEntry, len(pp.pv))
	copy(out, pp.pv)
	return out
}

// protectOne applies prot to one pv entry; both relevant locks (or the
// system write lock standing in for the pv lock) are held.
func (s *System) protectOne(pp *physPage, e pvEntry, prot Prot) {
	if prot == ProtNone {
		delete(e.pm.ptes, e.va)
		removePV(pp, e.pm, e.va)
		return
	}
	if m, ok := e.pm.ptes[e.va]; ok {
		m.prot &= prot
		e.pm.ptes[e.va] = m
	}
}

// Lookup returns the translation for va in pm, if any.
func (pm *Pmap) Lookup(va uint64) (pa uint64, prot Prot, ok bool) {
	pm.lock.Lock()
	defer pm.lock.Unlock()
	m, found := pm.ptes[va]
	return m.pa, m.prot, found
}

// Len returns the number of translations in pm.
func (pm *Pmap) Len() int {
	pm.lock.Lock()
	defer pm.lock.Unlock()
	return len(pm.ptes)
}

// ID returns the pmap's identifier.
func (pm *Pmap) ID() int { return pm.id }

// MappingsOf returns the number of pv entries for physical page pa. Like
// every forward-direction pv access it holds the system lock for reading in
// SystemLock mode (a write holder assumes exclusive pv access, so readers
// must announce themselves).
func (s *System) MappingsOf(pa uint64) int {
	switch s.mode {
	case SystemLock:
		s.sysLock.Read(nil)
		defer s.sysLock.Done(nil)
	case ClassArbitration:
		s.classLock.Acquire(cxlock.Forward, nil)
		defer s.classLock.Release(cxlock.Forward, nil)
	}
	pp := s.page(pa)
	pp.lock.Lock()
	defer pp.lock.Unlock()
	return len(pp.pv)
}

// Stats returns operation accounting.
func (s *System) Stats() Stats {
	return Stats{
		Enters:       s.enters.Load(),
		Removes:      s.removes.Load(),
		PageProtects: s.pageProtects.Load(),
		Backouts:     s.backouts.Load(),
	}
}

// CheckInvariants verifies that ptes and pv lists are mutual inverses; it
// takes the whole system quiescent (callers must stop mutators first).
// Returns an error describing the first inconsistency found.
func (s *System) CheckInvariants(pmaps []*Pmap) error {
	// Every pte must have a pv entry.
	for _, pm := range pmaps {
		for va, m := range pm.ptes {
			pp := s.page(m.pa)
			found := false
			for _, e := range pp.pv {
				if e.pm == pm && e.va == va {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("pmap %d: pte %d→%d has no pv entry", pm.id, va, m.pa)
			}
		}
	}
	// Every pv entry must have a pte pointing back.
	for pa := range s.pages {
		for _, e := range s.pages[pa].pv {
			m, ok := e.pm.ptes[e.va]
			if !ok || m.pa != uint64(pa) {
				return fmt.Errorf("page %d: pv entry (pmap %d, va %d) has no matching pte", pa, e.pm.id, e.va)
			}
		}
	}
	return nil
}

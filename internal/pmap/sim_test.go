// Machsim suite for the Section 5 pmap arbitration strategies: forward
// operations (pmap→pv order) racing reverse operations (pv→pmap order)
// under deterministic schedule exploration. External test package so it can
// import machsim. The raw -race version, TestBothOrdersConcurrentlyStress
// in pmap_test.go, stays as a shortened smoke test.
package pmap_test

import (
	"testing"

	"machlock/internal/machsim"
	"machlock/internal/pmap"
	"machlock/internal/sched"
)

// TestSimBothOrders is the machsim twin of TestBothOrdersConcurrentlyStress:
// for each arbitration mode, a forward mutator (pmap→pv order) races a
// reverse mutator (pv→pmap order) over shared physical pages, and on every
// explored schedule the run must terminate (no cross-order deadlock) with
// the pte↔pv inverse invariant intact. This is the paper's Section 5 claim
// made schedule-exhaustive instead of wall-clock-lucky.
func TestSimBothOrders(t *testing.T) {
	for _, mode := range []pmap.Mode{pmap.SystemLock, pmap.Backout, pmap.ClassArbitration} {
		t.Run(mode.String(), func(t *testing.T) {
			var pm *pmap.Pmap
			var sys *pmap.System
			scenario := func(s *machsim.Sim) {
				sys = pmap.NewSystem(mode, 4)
				pm = sys.NewPmap()
				s.Spawn("fwd", func(_ *sched.Thread) {
					sys.Enter(pm, 0x10, 1, pmap.ProtAll)
					sys.Enter(pm, 0x20, 2, pmap.ProtAll)
					sys.Remove(pm, 0x10)
				})
				s.Spawn("rev", func(_ *sched.Thread) {
					sys.PageProtect(2, pmap.ProtRead)
					sys.PageProtect(1, pmap.ProtNone)
				})
				s.AtEnd(func(fail func(string, ...any)) {
					if err := sys.CheckInvariants([]*pmap.Pmap{pm}); err != nil {
						fail("pte/pv invariant violated: %v", err)
					}
					// Page 2 is never protected to none, so the forward
					// mapping of it must survive with some protection.
					if _, _, ok := pm.Lookup(0x20); !ok {
						fail("mapping of page 2 vanished (reverse op removed too much)")
					}
				})
			}
			machsim.Check(t, machsim.Random(scenario, 150, 29, machsim.Options{}))
			// Backout mode legitimately reports some runs inconclusive: an
			// adversarial schedule can keep re-colliding the two orders, and
			// the step budget is how the harness surfaces that the strategy
			// trades deadlock-freedom for possible retry livelock. Check only
			// rejects violations, so those schedules count but do not fail.
			machsim.Check(t, machsim.Explore(scenario, machsim.DFSConfig{
				Preemptions: 1,
				Reduction:   machsim.ReduceSleep,
				MaxRuns:     100000,
			}, machsim.Options{}))
		})
	}
}

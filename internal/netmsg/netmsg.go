// Package netmsg implements the network message server role of Section 3:
// "Most kernel operations are invoked by sending messages to the kernel,
// permitting transparent remote invocation over networks."
//
// Transparency is literal: Proxy returns an ordinary local *ipc.Port.
// Messages sent to it — by ipc.Call, by mig stubs, by anything — are
// forwarded over the connection to the exporting side, delivered to the
// real port there, and the replies travel back to the local sender's reply
// port. Client code cannot tell whether a port is local or a network
// proxy, which is exactly the property the paper describes.
//
// The wire format is gob-encoded frames; message bodies may carry the
// basic types registered below (the mig stub layer only ever sends
// []byte payloads, so typed interfaces cross the network unchanged).
package netmsg

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"machlock/internal/ipc"
	"machlock/internal/sched"
)

func init() {
	// Concrete body types allowed across the wire.
	gob.Register([]byte(nil))
	gob.Register("")
	gob.Register(int(0))
	gob.Register(int64(0))
	gob.Register(uint64(0))
	gob.Register(float64(0))
	gob.Register(true)
}

// Errors surfaced by the proxy.
var (
	// ErrConnection reports a broken transport under an in-flight call.
	ErrConnection = errors.New("netmsg: connection failed")
)

// RemoteError carries a remote-side failure (dispatcher or handler error)
// back to the local caller as text; error identity does not cross the
// wire.
type RemoteError struct {
	Msg string
}

// Error implements error.
func (e *RemoteError) Error() string { return "netmsg(remote): " + e.Msg }

// wireMsg is one frame: a request (Op, Body) or a reply (Op, Body, Err).
type wireMsg struct {
	Op   int
	Body []any
	Err  string
}

// Stats counts frames.
type Stats struct {
	RequestsForwarded int64
	RepliesReturned   int64
}

var (
	requestsForwarded atomic.Int64
	repliesReturned   atomic.Int64
)

// GlobalStats returns package-wide frame counts.
func GlobalStats() Stats {
	return Stats{
		RequestsForwarded: requestsForwarded.Load(),
		RepliesReturned:   repliesReturned.Load(),
	}
}

// ExportConn serves the target port over one connection: each decoded
// request frame becomes a local RPC to target and the reply frame travels
// back. It returns when the connection or the port dies. The caller's
// reference to target covers the calls made here.
func ExportConn(conn io.ReadWriteCloser, target *ipc.Port) error {
	defer conn.Close()
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	t := sched.New("netmsg-export")
	for {
		var req wireMsg
		if err := dec.Decode(&req); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		var out wireMsg
		resp, err := ipc.Call(t, target, req.Op, req.Body...)
		switch {
		case err != nil:
			out = wireMsg{Op: req.Op, Err: err.Error()}
		case resp.Err != nil:
			out = wireMsg{Op: resp.Op, Err: resp.Err.Error()}
			resp.Destroy()
		default:
			out = wireMsg{Op: resp.Op, Body: resp.Body}
			resp.Destroy()
		}
		if err := enc.Encode(out); err != nil {
			return err
		}
	}
}

// Export accepts connections and serves target on each until the listener
// closes. Run it on its own goroutine.
//
// Closing the listener is the shutdown path: Export closes every
// connection it is still serving — which unblocks their ExportConn
// goroutines out of the decode loop — and returns only after all of them
// have exited, so a daemon can tear down its network surface without
// leaking a goroutine per connected (or half-disconnected) client. A
// handler blocked inside the kernel RPC itself is not interruptible from
// here; the exporting side must destroy the target port (failing the call)
// before or alongside closing the listener.
func Export(l net.Listener, target *ipc.Port) {
	var (
		mu    sync.Mutex
		conns = make(map[io.Closer]struct{})
		wg    sync.WaitGroup
	)
	for {
		conn, err := l.Accept()
		if err != nil {
			mu.Lock()
			for c := range conns {
				c.Close()
			}
			mu.Unlock()
			wg.Wait()
			return
		}
		mu.Lock()
		conns[conn] = struct{}{}
		mu.Unlock()
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = ExportConn(conn, target)
			mu.Lock()
			delete(conns, conn)
			mu.Unlock()
		}()
	}
}

// ProxyConn builds the transparent local port for a connection to an
// exporting side. The returned port carries the creator's reference; the
// forwarder holds its own. Destroy the port to shut the proxy down (the
// connection closes and the forwarder exits).
//
// Requests are forwarded one at a time in arrival order — the message
// queue on the proxy port provides the buffering, exactly as a real port's
// queue would.
func ProxyConn(conn io.ReadWriteCloser, name string) *ipc.Port {
	proxy := ipc.NewPort(name)
	proxy.TakeRef() // the forwarder's reference
	sched.Go("netmsg-proxy:"+name, func(t *sched.Thread) {
		defer conn.Close()
		defer proxy.Release(nil)
		enc := gob.NewEncoder(conn)
		dec := gob.NewDecoder(conn)
		for {
			req, err := proxy.Receive(t)
			if err != nil {
				return // proxy destroyed
			}
			requestsForwarded.Add(1)

			var out wireMsg
			werr := enc.Encode(wireMsg{Op: req.Op, Body: req.Body})
			if werr == nil {
				werr = dec.Decode(&out)
			}
			var reply *ipc.Message
			switch {
			case werr != nil:
				reply = ipc.NewErrorReply(req, fmt.Errorf("%w: %v", ErrConnection, werr))
			case out.Err != "":
				reply = ipc.NewErrorReply(req, &RemoteError{Msg: out.Err})
			default:
				reply = ipc.NewReply(req, out.Body...)
			}
			if reply != nil {
				repliesReturned.Add(1)
				if err := reply.Dest.Send(reply); err != nil {
					reply.Destroy()
				}
			}
			req.Destroy()
			if werr != nil {
				return // transport is gone; stop forwarding
			}
		}
	})
	return proxy
}

// Proxy dials addr and returns the transparent port for it.
func Proxy(addr, name string) (*ipc.Port, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return ProxyConn(conn, name), nil
}

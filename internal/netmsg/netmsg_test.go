package netmsg

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"machlock/internal/core/object"
	"machlock/internal/ipc"
	"machlock/internal/mig"
	"machlock/internal/sched"
)

// echoObj is the exported kernel object.
type echoObj struct {
	object.Object
}

const (
	opEcho = iota
	opUpper
)

type echoArgs struct{ S string }
type echoReply struct{ S string }

// startService builds the remote side: a served port with an echo object.
func startService(t *testing.T) (*ipc.Port, func()) {
	t.Helper()
	srv := ipc.NewServer(ipc.Mach25)
	srv.Register(ipc.KindCustom, opEcho, func(ctx *ipc.Context, obj ipc.KObject, req *ipc.Message) *ipc.Message {
		return ipc.NewReply(req, req.Body...)
	})
	iface := mig.NewInterface(ipc.KindCustom)
	mig.Define(iface, opUpper, "upper", func(ctx *ipc.Context, obj ipc.KObject, a *echoArgs) (*echoReply, error) {
		if a.S == "explode" {
			return nil, errors.New("asked to explode")
		}
		return &echoReply{S: strings.ToUpper(a.S)}, nil
	})
	iface.Install(srv)

	port := ipc.NewPort("svc")
	o := &echoObj{}
	o.Init("echo")
	o.TakeRef()
	port.SetKObject(ipc.KindCustom, o)
	port.TakeRef()
	server := sched.Go("server", func(self *sched.Thread) {
		srv.Serve(self, port)
		port.Release(nil)
	})
	return port, func() {
		port.Destroy()
		server.Join()
	}
}

// pipePair wires a proxy to an exporter over an in-memory connection.
func pipePair(t *testing.T, target *ipc.Port) (*ipc.Port, func()) {
	t.Helper()
	c1, c2 := net.Pipe()
	exportDone := make(chan struct{})
	go func() {
		defer close(exportDone)
		_ = ExportConn(c2, target)
	}()
	proxy := ProxyConn(c1, "svc-proxy")
	return proxy, func() {
		proxy.Destroy()
		select {
		case <-exportDone:
		case <-time.After(5 * time.Second):
			t.Error("exporter did not shut down")
		}
	}
}

func TestTransparentCallThroughProxy(t *testing.T) {
	target, stop := startService(t)
	defer stop()
	proxy, stopProxy := pipePair(t, target)
	defer stopProxy()

	// Plain ipc.Call against the PROXY port — the caller cannot tell it
	// is remote.
	self := sched.New("client")
	resp, err := ipc.Call(self, proxy, opEcho, "hello", int64(42))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Body[0] != "hello" || resp.Body[1] != int64(42) {
		t.Fatalf("body = %+v", resp.Body)
	}
	resp.Destroy()
}

func TestMigStubsOverTheNetwork(t *testing.T) {
	target, stop := startService(t)
	defer stop()
	proxy, stopProxy := pipePair(t, target)
	defer stopProxy()

	self := sched.New("client")
	r, err := mig.Call[echoArgs, echoReply](self, proxy, opUpper, &echoArgs{S: "mach"})
	if err != nil {
		t.Fatal(err)
	}
	if r.S != "MACH" {
		t.Fatalf("reply = %+v", r)
	}
}

func TestRemoteHandlerErrorSurfaces(t *testing.T) {
	target, stop := startService(t)
	defer stop()
	proxy, stopProxy := pipePair(t, target)
	defer stopProxy()

	self := sched.New("client")
	_, err := mig.Call[echoArgs, echoReply](self, proxy, opUpper, &echoArgs{S: "explode"})
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %T %v, want *RemoteError", err, err)
	}
	if !strings.Contains(re.Error(), "explode") {
		t.Fatalf("remote error text = %q", re.Error())
	}
}

func TestSequentialCallsShareTheConnection(t *testing.T) {
	target, stop := startService(t)
	defer stop()
	proxy, stopProxy := pipePair(t, target)
	defer stopProxy()

	self := sched.New("client")
	for i := 0; i < 50; i++ {
		resp, err := ipc.Call(self, proxy, opEcho, int64(i))
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if resp.Body[0] != int64(i) {
			t.Fatalf("call %d echoed %v", i, resp.Body[0])
		}
		resp.Destroy()
	}
}

func TestProxyDestroyStopsForwarder(t *testing.T) {
	target, stop := startService(t)
	defer stop()
	proxy, stopProxy := pipePair(t, target)
	stopProxy() // destroys proxy and awaits exporter shutdown

	self := sched.New("client")
	proxyRefHeld := false
	defer func() {
		if r := recover(); r != nil && !proxyRefHeld {
			// Calling through a fully destroyed proxy panics by the
			// reference discipline; treat as the expected outcome.
			return
		}
	}()
	_, err := ipc.Call(self, proxy, opEcho, "late")
	if err == nil {
		t.Fatal("call through destroyed proxy succeeded")
	}
}

func TestBrokenTransportReturnsConnectionError(t *testing.T) {
	c1, c2 := net.Pipe()
	proxy := ProxyConn(c1, "broken")
	defer proxy.Destroy()
	c2.Close() // remote side gone before any call

	self := sched.New("client")
	resp, err := ipc.Call(self, proxy, opEcho, "x")
	if err != nil {
		return // the send itself may fail once the forwarder noticed
	}
	if resp.Err == nil || !errors.Is(resp.Err, ErrConnection) {
		t.Fatalf("resp.Err = %v, want ErrConnection", resp.Err)
	}
	resp.Destroy()
}

// TestExportShutdownTerminatesConns: closing the listener must terminate
// Export AND every ExportConn goroutine it spawned — including ones whose
// clients are idle and would otherwise keep the decode loop parked on an
// open socket forever. Export returns only after the per-connection
// handlers have exited, which is the property the regression pins.
func TestExportShutdownTerminatesConns(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback listener available: %v", err)
	}
	target, stop := startService(t)
	defer stop()

	exportDone := make(chan struct{})
	go func() {
		defer close(exportDone)
		Export(l, target)
	}()

	// Several clients connect; each performs one call to prove the conn is
	// being served, then goes idle with the socket still open.
	self := sched.New("client")
	proxies := make([]*ipc.Port, 4)
	for i := range proxies {
		p, err := Proxy(l.Addr().String(), "shutdown-proxy")
		if err != nil {
			t.Fatal(err)
		}
		proxies[i] = p
		if _, err := mig.Call[echoArgs, echoReply](self, p, opUpper, &echoArgs{S: "up"}); err != nil {
			t.Fatalf("proxy %d: %v", i, err)
		}
	}

	// Shutdown: close only the listener. Export must close the four idle
	// server-side conns and return once their handlers have drained.
	l.Close()
	select {
	case <-exportDone:
	case <-time.After(5 * time.Second):
		t.Fatal("Export did not return after listener close (conn handlers leaked)")
	}

	// The server-side close propagates: a call through any proxy now fails
	// with a connection error rather than hanging.
	for i, p := range proxies {
		resp, err := ipc.Call(self, p, opEcho, "late")
		if err == nil {
			if resp.Err == nil || !errors.Is(resp.Err, ErrConnection) {
				t.Fatalf("proxy %d: resp.Err = %v, want ErrConnection", i, resp.Err)
			}
			resp.Destroy()
		}
		p.Destroy()
	}
}

// TestExportAbruptClientDisconnect: a client that vanishes mid-session
// must not strand its ExportConn goroutine; the decode loop sees the
// broken transport and exits, and a later listener close still returns
// promptly (nothing left to wait for).
func TestExportAbruptClientDisconnect(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback listener available: %v", err)
	}
	target, stop := startService(t)
	defer stop()

	exportDone := make(chan struct{})
	go func() {
		defer close(exportDone)
		Export(l, target)
	}()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	conn.Close() // abrupt disconnect: no frame ever sent

	l.Close()
	select {
	case <-exportDone:
	case <-time.After(5 * time.Second):
		t.Fatal("Export did not return after abrupt client disconnect + listener close")
	}
}

func TestTCPEndToEnd(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback listener available: %v", err)
	}
	defer l.Close()
	target, stop := startService(t)
	defer stop()
	go Export(l, target)

	proxy, err := Proxy(l.Addr().String(), "tcp-proxy")
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Destroy()
	self := sched.New("client")
	r, err := mig.Call[echoArgs, echoReply](self, proxy, opUpper, &echoArgs{S: "over tcp"})
	if err != nil {
		t.Fatal(err)
	}
	if r.S != "OVER TCP" {
		t.Fatalf("reply = %+v", r)
	}
	if GlobalStats().RequestsForwarded == 0 {
		t.Fatal("frame counters not updated")
	}
}

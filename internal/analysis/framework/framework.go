// Package framework is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis driver surface, sized for this repository.
//
// The machvet checkers (internal/analysis/passes/...) are written against
// the same Analyzer/Pass/Diagnostic shape as real go/analysis passes so
// they could be ported to the upstream framework mechanically; the
// framework exists because this module is built offline and cannot vendor
// x/tools. Three deliberate simplifications versus upstream:
//
//   - Facts are package-level only, keyed by (analyzer, import path), and
//     live in an in-memory FactStore owned by the driver for one run; the
//     driver analyzes packages in dependency order so importers always see
//     their dependencies' facts.
//   - Suppression is centralized: a diagnostic whose position carries a
//     `//machvet:allow <pass>` annotation (same line, or the line below a
//     whole-line annotation comment) is dropped by Pass.Reportf itself, so
//     every pass gets the escape hatch for free.
//   - There is no Requires DAG; the five passes are independent.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"sync"
)

// Analyzer describes one static check, mirroring analysis.Analyzer.
type Analyzer struct {
	// Name identifies the pass in diagnostics and in //machvet:allow
	// annotations. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph description shown by `machvet -list`.
	Doc string
	// Run executes the pass over one package. The returned value is
	// currently unused (kept for upstream shape compatibility).
	Run func(*Pass) (any, error)
}

// Diagnostic is one finding, mirroring analysis.Diagnostic.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer *Analyzer
}

// Pass carries one analyzer's view of one type-checked package, mirroring
// analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// PkgPath is the package's import path. Facts are keyed by it, so it
	// stays meaningful across separately type-checked units (the same
	// dependency package re-imported from export data compares unequal as
	// a *types.Package but equal by path).
	PkgPath string

	diags *[]Diagnostic
	facts *FactStore

	allowOnce sync.Once
	allow     map[string]map[int]map[string]bool // filename -> line -> pass names
	holds     map[string]map[int]bool            // filename -> line -> //machlock:holds
}

// Reportf records a diagnostic at pos unless a //machvet:allow annotation
// for this pass covers the position's line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.Allowed(p.Analyzer.Name, pos) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer,
	})
}

// Allowed reports whether a //machvet:allow annotation for the named pass
// covers pos (trailing comment on the same line, or a whole-line comment
// directly above).
func (p *Pass) Allowed(pass string, pos token.Pos) bool {
	p.buildAnnotationIndex()
	position := p.Fset.Position(pos)
	lines, ok := p.allow[position.Filename]
	if !ok {
		return false
	}
	return lines[position.Line][pass]
}

// HoldsAt reports whether a //machlock:holds annotation covers pos: the
// acquisition at pos intentionally escapes the acquiring function still
// held (lock wrappers, lock-handoff protocols).
func (p *Pass) HoldsAt(pos token.Pos) bool {
	p.buildAnnotationIndex()
	position := p.Fset.Position(pos)
	return p.holds[position.Filename][position.Line]
}

func (p *Pass) buildAnnotationIndex() {
	p.allowOnce.Do(func() {
		p.allow = map[string]map[int]map[string]bool{}
		p.holds = map[string]map[int]bool{}
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					ann, ok := ParseAnnotation(c.Text)
					if !ok || ann.Bogus != "" {
						continue
					}
					endLine := p.Fset.Position(c.End()).Line
					fname := p.Fset.Position(c.Pos()).Filename
					// The annotation covers its own line and the next:
					// trailing comments annotate their statement, and
					// whole-line comments annotate the line below.
					for _, line := range []int{endLine, endLine + 1} {
						if ann.Holds {
							m := p.holds[fname]
							if m == nil {
								m = map[int]bool{}
								p.holds[fname] = m
							}
							m[line] = true
						}
						for _, name := range ann.Allow {
							m := p.allow[fname]
							if m == nil {
								m = map[int]map[string]bool{}
								p.allow[fname] = m
							}
							if m[line] == nil {
								m[line] = map[string]bool{}
							}
							m[line][name] = true
						}
					}
				}
			}
		}
	})
}

// FactStore holds package-level facts for one driver run, keyed by
// (analyzer, package import path).
type FactStore struct {
	mu sync.Mutex
	m  map[factKey]any
}

type factKey struct{ analyzer, pkg string }

// NewFactStore creates an empty fact store.
func NewFactStore() *FactStore { return &FactStore{m: map[factKey]any{}} }

// ExportPackageFact publishes v as this analyzer's fact for the package
// under analysis, replacing any previous value.
func (p *Pass) ExportPackageFact(v any) {
	if p.facts == nil {
		return
	}
	p.facts.mu.Lock()
	defer p.facts.mu.Unlock()
	p.facts.m[factKey{p.Analyzer.Name, p.PkgPath}] = v
}

// ImportPackageFact returns the fact this analyzer exported for the
// package with the given import path, if the driver has analyzed it.
func (p *Pass) ImportPackageFact(pkgPath string) (any, bool) {
	if p.facts == nil {
		return nil, false
	}
	p.facts.mu.Lock()
	defer p.facts.mu.Unlock()
	v, ok := p.facts.m[factKey{p.Analyzer.Name, pkgPath}]
	return v, ok
}

// RunAnalyzers executes the analyzers, in order, over one loaded package,
// returning position-sorted diagnostics. facts may be nil for a one-shot
// run without cross-package state.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer, facts *FactStore) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			PkgPath:   pkg.ImportPath,
			diags:     &diags,
			facts:     facts,
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := diags[i].Pos, diags[j].Pos
		if pi != pj {
			return pi < pj
		}
		return diags[i].Message < diags[j].Message
	})
	return diags, nil
}

package framework

import "strings"

// The two machvet annotation families:
//
//	//machlock:holds
//	    placed on (or directly above) a lock acquisition whose hold
//	    intentionally escapes the acquiring function — lock wrapper
//	    methods, lock-handoff protocols. Honored by the unlockpath pass.
//
//	//machvet:allow pass1,pass2 — optional free-text reason
//	    suppresses diagnostics from the named passes on the annotated
//	    line (trailing form) or the line below (whole-line form). The
//	    reason after the separator is for the human reader.
//
// Anything else under the machlock:/machvet: prefixes is a bogus
// annotation — a typo that would otherwise silently fail open — and is
// itself reported (by the unlockpath pass, which owns annotation hygiene).

// KnownPasses is the set of pass names valid in //machvet:allow.
var KnownPasses = map[string]bool{
	"holdblock":     true,
	"lockorder":     true,
	"unlockpath":    true,
	"refdiscipline": true,
	"atomicity":     true,
	"sleepwake":     true,
	"deprecated":    true,
}

// Annotation is one parsed machvet/machlock annotation comment.
type Annotation struct {
	// Holds is set for //machlock:holds.
	Holds bool
	// Allow lists the pass names of a //machvet:allow annotation.
	Allow []string
	// Bogus carries a description of why the annotation is malformed;
	// empty for a valid annotation.
	Bogus string
}

// ParseAnnotation parses a single comment's text. ok is false when the
// comment is not an annotation at all (does not start with //machlock: or
// //machvet:); a malformed annotation returns ok=true with Bogus set.
func ParseAnnotation(text string) (ann Annotation, ok bool) {
	switch {
	case strings.HasPrefix(text, "//machlock:"):
		rest := strings.TrimPrefix(text, "//machlock:")
		// Free text after whitespace is a human-readable reason.
		verb, _, _ := strings.Cut(rest, " ")
		if verb != "holds" {
			return Annotation{Bogus: "unknown machlock annotation " + quoteVerb(verb) + " (only //machlock:holds exists)"}, true
		}
		return Annotation{Holds: true}, true
	case strings.HasPrefix(text, "//machvet:"):
		rest := strings.TrimPrefix(text, "//machvet:")
		verb, args, _ := strings.Cut(rest, " ")
		if verb != "allow" {
			return Annotation{Bogus: "unknown machvet annotation " + quoteVerb(verb) + " (only //machvet:allow exists)"}, true
		}
		// The pass list is the first field; everything after it is the
		// free-text reason (conventionally set off with a dash).
		args = strings.TrimSpace(args)
		list, _, _ := strings.Cut(args, " ")
		if list == "" {
			return Annotation{Bogus: "machvet:allow without a pass name"}, true
		}
		var names []string
		for _, name := range strings.Split(list, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if !KnownPasses[name] {
				return Annotation{Bogus: "machvet:allow names unknown pass " + quoteVerb(name)}, true
			}
			names = append(names, name)
		}
		if len(names) == 0 {
			return Annotation{Bogus: "machvet:allow without a pass name"}, true
		}
		return Annotation{Allow: names}, true
	}
	return Annotation{}, false
}

func quoteVerb(v string) string {
	if v == "" {
		return `""`
	}
	return `"` + v + `"`
}

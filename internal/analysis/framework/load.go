package framework

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// The loader is a `go list -export` driver, the same strategy go vet's
// unitchecker uses: target packages are parsed and type-checked from
// source, while every dependency (std and in-module alike) is imported
// from the compiler's export data, which `go list -export` materializes
// out of the build cache. This keeps the loader fast, offline, and free
// of any dependency on x/tools' go/packages.

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	Name       string
	GoFiles    []string
	Imports    []string
	DepOnly    bool
	Standard   bool
}

// Loader loads packages named by `go list` patterns, plus ad-hoc source
// directories (testdata packages), against one shared file set and
// importer so dependency type identities are consistent.
type Loader struct {
	ModuleRoot string
	Fset       *token.FileSet

	list  map[string]*listedPackage
	order []string // go list output order: dependencies before dependents
	imp   types.Importer
}

// ModuleRoot walks up from dir to the directory containing go.mod.
func ModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// NewLoader runs `go list -export -deps` over the patterns (resolved
// relative to moduleRoot) and prepares an importer over the resulting
// export data.
func NewLoader(moduleRoot string, patterns ...string) (*Loader, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,Name,GoFiles,Imports,DepOnly,Standard",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = moduleRoot
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	ld := &Loader{
		ModuleRoot: moduleRoot,
		Fset:       token.NewFileSet(),
		list:       map[string]*listedPackage{},
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		q := p
		ld.list[p.ImportPath] = &q
		ld.order = append(ld.order, p.ImportPath)
	}
	ld.imp = importer.ForCompiler(ld.Fset, "gc", func(path string) (io.ReadCloser, error) {
		p, ok := ld.list[path]
		if !ok || p.Export == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(p.Export)
	})
	return ld, nil
}

// Roots returns the import paths the patterns named directly (not mere
// dependencies), in dependency order: `go list -deps` emits a package
// only after all of its dependencies, which is exactly the order the
// driver needs for package facts to flow importers-first.
func (ld *Loader) Roots() []string {
	var roots []string
	for _, path := range ld.order {
		if p := ld.list[path]; !p.DepOnly && !p.Standard {
			roots = append(roots, path)
		}
	}
	return roots
}

// Load parses and type-checks one listed package from source.
func (ld *Loader) Load(importPath string) (*Package, error) {
	p, ok := ld.list[importPath]
	if !ok {
		return nil, fmt.Errorf("package %q not in the loaded package set", importPath)
	}
	var files []string
	for _, f := range p.GoFiles {
		files = append(files, filepath.Join(p.Dir, f))
	}
	return ld.check(importPath, p.Dir, files)
}

// LoadDir parses and type-checks an unlisted source directory (a testdata
// package) under a synthetic import path. All non-test .go files in the
// directory are included; imports resolve against the loader's package
// set, so a testdata package may import anything the listed patterns
// cover.
func (ld *Loader) LoadDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	return ld.check(importPath, dir, files)
}

func (ld *Loader) check(importPath, dir string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(ld.Fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: ld.imp}
	pkg, err := conf.Check(importPath, ld.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       ld.Fset,
		Files:      files,
		Types:      pkg,
		TypesInfo:  info,
	}, nil
}

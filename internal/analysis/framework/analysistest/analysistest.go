// Package analysistest is the golden-test harness for machvet passes,
// mirroring golang.org/x/tools/go/analysis/analysistest: testdata packages
// carry `// want "regexp"` comments on the lines where diagnostics are
// expected, and the harness fails the test for every unmatched expectation
// and every unexpected diagnostic.
//
// Testdata packages live under internal/analysis/testdata/src/<name> and
// may import any machlock package (the harness loads the whole module's
// export data once per test binary).
package analysistest

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"sync"
	"testing"

	"machlock/internal/analysis/framework"
)

var (
	loaderOnce sync.Once
	loader     *framework.Loader
	loaderErr  error
)

// sharedLoader loads export data for the whole module once per process;
// individual testdata packages type-check against it in milliseconds.
func sharedLoader() (*framework.Loader, error) {
	loaderOnce.Do(func() {
		wd, err := os.Getwd()
		if err != nil {
			loaderErr = err
			return
		}
		root, err := framework.ModuleRoot(wd)
		if err != nil {
			loaderErr = err
			return
		}
		loader, loaderErr = framework.NewLoader(root, "machlock/...")
	})
	return loader, loaderErr
}

// TestData returns the shared testdata root, internal/analysis/testdata.
func TestData(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := framework.ModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Join(root, "internal", "analysis", "testdata")
}

// Run analyzes each named testdata package (a directory under
// testdata/src) with the analyzer and checks its diagnostics against the
// package's want comments.
func Run(t *testing.T, testdata string, a *framework.Analyzer, pkgs ...string) {
	t.Helper()
	ld, err := sharedLoader()
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	for _, name := range pkgs {
		t.Run(name, func(t *testing.T) {
			dir := filepath.Join(testdata, "src", name)
			pkg, err := ld.LoadDir(dir, "machvet.test/"+name)
			if err != nil {
				t.Fatalf("loading %s: %v", dir, err)
			}
			diags, err := framework.RunAnalyzers(pkg, []*framework.Analyzer{a}, framework.NewFactStore())
			if err != nil {
				t.Fatal(err)
			}
			check(t, pkg, diags)
		})
	}
}

// expectation is one want regexp at a file:line.
type expectation struct {
	file string
	line int
	rx   *regexp.Regexp
	text string
	met  bool
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// Patterns may be double-quoted (escapes apply) or backquoted (raw), as in
// x/tools analysistest; strconv.Unquote handles both.
var quotedRe = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

func check(t *testing.T, pkg *framework.Package, diags []framework.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range quotedRe.FindAllString(m[1], -1) {
					text, err := strconv.Unquote(q)
					if err != nil {
						t.Errorf("%s: bad want pattern %s: %v", pos, q, err)
						continue
					}
					rx, err := regexp.Compile(text)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", pos, text, err)
						continue
					}
					wants = append(wants, &expectation{
						file: pos.Filename, line: pos.Line, rx: rx, text: text,
					})
				}
			}
		}
	}

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		if !matchWant(wants, pos, d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.text)
		}
	}
}

func matchWant(wants []*expectation, pos token.Position, msg string) bool {
	for _, w := range wants {
		if !w.met && w.file == pos.Filename && w.line == pos.Line && w.rx.MatchString(msg) {
			w.met = true
			return true
		}
	}
	return false
}

// Fprint is a debugging helper: print diagnostics the way machvet would.
func Fprint(pkg *framework.Package, diags []framework.Diagnostic) string {
	s := ""
	for _, d := range diags {
		s += fmt.Sprintf("%s: [%s] %s\n", pkg.Fset.Position(d.Pos), d.Analyzer.Name, d.Message)
	}
	return s
}

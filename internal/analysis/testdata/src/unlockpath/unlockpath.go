// Fixture for the unlockpath pass: leaked holds, balanced holds, the
// //machlock:holds escape, and annotation hygiene.
package unlockpath

import "machlock/internal/core/splock"

type thing struct {
	mu splock.Lock
}

// The early return leaks the hold.
func leaky(t *thing, cond bool) {
	t.mu.Lock() // want `t\.mu acquired here is still held when leaky returns`
	if cond {
		return
	}
	t.mu.Unlock()
}

func balanced(t *thing, cond bool) {
	t.mu.Lock()
	if cond {
		t.mu.Unlock()
		return
	}
	t.mu.Unlock()
}

func deferred(t *thing, cond bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if cond {
		return
	}
}

// The annotation declares an intentionally escaping hold.
func handoff(t *thing) {
	t.mu.Lock() //machlock:holds — the caller inherits the hold
}

//machlock:holdz — typo // want `bad annotation: unknown machlock annotation "holdz"`
func typoHolds(t *thing) {
	t.mu.Lock() // want `t\.mu acquired here is still held when typoHolds returns`
}

//machvet:allow nosuchpass // want `bad annotation: machvet:allow names unknown pass "nosuchpass"`
func typoAllow() {}

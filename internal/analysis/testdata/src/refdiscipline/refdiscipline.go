// Fixture for the refdiscipline pass: relock without a reference, stale
// loads across an unlock/relock window, container extraction without a
// reference, and the two sanctioned idioms (reference-across-window and
// recheck-after-relock).
package refdiscipline

import "machlock/internal/core/object"

type task struct {
	object.Object
	state int
}

type table struct {
	m map[int]*task
}

func relockNoRef(t *task) {
	t.Lock()
	v := t.state
	t.Unlock()
	work(v)
	t.Lock()        // want `t is relocked after an unlock without holding a new reference`
	t.state = v + 1 // want `v was loaded from t before its lock was dropped and reacquired`
	t.Unlock()
}

// A reference taken before the unlock covers the window.
func relockWithRef(t *task) {
	t.Lock()
	t.Reference()
	t.Unlock()
	t.Lock()
	t.Unlock()
	t.Release(nil)
}

// Re-validating after the relock is the deactivation-recheck idiom.
func relockRecheck(t *task) error {
	t.Lock()
	t.Unlock()
	t.Lock()
	if err := t.CheckActive(); err != nil {
		t.Unlock()
		return err
	}
	t.Unlock()
	return nil
}

// The container's reference is not the caller's.
func fromMap(tab *table, id int) {
	t := tab.m[id]
	t.Lock() // want `locking t, which was taken from a shared container without a reference`
	t.Unlock()
}

func fromMapRef(tab *table, id int) {
	t := tab.m[id]
	t.TakeRef()
	t.Lock()
	t.Unlock()
	t.Release(nil)
}

func work(int) {}

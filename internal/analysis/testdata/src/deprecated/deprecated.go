// Fixture for the deprecated pass: every superseded constructor and
// mutator, plus the replacements (which must stay silent).
package deprecated

import (
	"machlock"
	"machlock/internal/core/cxlock"
	"machlock/internal/core/splock"
)

func uses() {
	l := cxlock.New(false) // want `cxlock\.New is deprecated: use cxlock\.NewWith`
	_ = l

	var embedded cxlock.Lock
	embedded.Init(true) // want `cxlock\.Init is deprecated: use \(\*Lock\)\.InitWith`

	cxlock.SetObserver(nil) // want `cxlock\.SetObserver is deprecated: use cxlock\.AddObserver/RemoveObserver`

	sim := splock.NewSim(nil, splock.TTAS) // want `splock\.NewSim is deprecated: use splock\.NewSimWith`
	_ = sim
}

func replacements() {
	rw := machlock.NewLock(machlock.WithSleep())
	_ = rw

	sl := machlock.NewSimpleLock(machlock.WithAlgorithm(machlock.Queue))
	_ = sl

	l := cxlock.NewWith(cxlock.Options{Sleep: true})
	_ = l

	var embedded cxlock.Lock
	embedded.InitWith(cxlock.Options{})

	sim := splock.NewSimWith(splock.Opts{})
	_ = sim
}

// Fixture for the deprecated pass: every superseded constructor and
// mutator, plus the replacements (which must stay silent).
package deprecated

import (
	"machlock"
	"machlock/internal/core/cxlock"
)

func uses() {
	rw := machlock.NewComplexLock(true) // want `machlock\.NewComplexLock is deprecated: use machlock\.NewLock`
	_ = rw

	l := cxlock.New(false) // want `cxlock\.New is deprecated: use cxlock\.NewWith`
	l.SetSleepable(true)   // want `cxlock\.SetSleepable is deprecated: set Sleep up front`

	var embedded cxlock.Lock
	embedded.Init(true) // want `cxlock\.Init is deprecated: use \(\*Lock\)\.InitWith`

	cxlock.SetObserver(nil) // want `cxlock\.SetObserver is deprecated: use cxlock\.AddObserver/RemoveObserver`
}

func replacements() {
	rw := machlock.NewLock(machlock.WithSleep())
	_ = rw

	l := cxlock.NewWith(cxlock.Options{Sleep: true})
	_ = l

	var embedded cxlock.Lock
	embedded.InitWith(cxlock.Options{})
}

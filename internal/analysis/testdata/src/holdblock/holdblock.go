// Fixture for the holdblock pass: simple locks held across each family of
// blocking operation, the transitive-call case, and the sanctioned
// release-under-own-lock protocol suppressed with //machvet:allow.
package holdblock

import (
	"time"

	"machlock/internal/core/refcount"
	"machlock/internal/core/splock"
	"machlock/internal/sched"
)

type widget struct {
	mu   splock.Lock
	refs refcount.Count
	ch   chan int
}

// Seeded violation: a reference release (which may run a blocking
// destructor) under a spin lock.
func releaseUnderLock(w *widget) {
	w.mu.Lock()
	w.refs.Release() // want `simple lock w\.mu .*held across a blocking operation`
	w.mu.Unlock()
}

func sleepUnderLock(w *widget) {
	w.mu.Lock()
	time.Sleep(time.Millisecond) // want `simple lock w\.mu .*held across a blocking operation`
	w.mu.Unlock()
}

func recvUnderLock(w *widget) {
	w.mu.Lock()
	<-w.ch // want `simple lock w\.mu .*held across a blocking operation`
	w.mu.Unlock()
}

func waitUnderLock(w *widget, t *sched.Thread) {
	w.mu.Lock()
	sched.ThreadBlock(t) // want `simple lock w\.mu .*held across a blocking operation`
	w.mu.Unlock()
}

// Released before the block: clean.
func releasedFirst(w *widget) {
	w.mu.Lock()
	w.mu.Unlock()
	time.Sleep(time.Millisecond)
}

// The block is reached through a call: the callee's may-block summary
// propagates to the caller.
func helper() {
	time.Sleep(time.Millisecond)
}

func callsHelper(w *widget) {
	w.mu.Lock()
	helper() // want `simple lock w\.mu .*held across a blocking operation`
	w.mu.Unlock()
}

// The release-under-own-lock protocol, suppressed where sanctioned.
func allowed(w *widget) {
	w.mu.Lock()
	//machvet:allow holdblock — fixture: the decrement under the owning lock is the release protocol
	w.refs.Release()
	w.mu.Unlock()
}

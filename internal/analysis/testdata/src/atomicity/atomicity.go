// Fixture for the atomicity pass: stale loads and check-then-act gates
// across an unlock/relock window of the same (non-object) lock, plus the
// sanctioned shapes — re-reading after the relock, single continuous
// holds, and spin-loop conditions that re-test by construction.
package atomicity

import (
	"errors"

	"machlock/internal/core/cxlock"
	"machlock/internal/core/splock"
)

var errTerminated = errors.New("terminated")

type res struct {
	lock  splock.Lock
	busy  bool
	count int
}

// A value loaded under the first hold is stale after the relock.
func staleLoad(m *res) {
	m.lock.Lock()
	v := m.count
	m.lock.Unlock()
	work(v)
	m.lock.Lock()
	m.count = v + 1 // want `v was loaded from m while m.lock was held`
	m.lock.Unlock()
}

// Re-reading under the new hold is the fix; the load entry moves past the
// window and self-suppresses.
func staleLoadFixed(m *res) {
	m.lock.Lock()
	v := m.count
	m.lock.Unlock()
	work(v)
	m.lock.Lock()
	v = m.count
	m.count = v + 1
	m.lock.Unlock()
}

// One continuous hold has no window and nothing to report.
func continuousHold(m *res) {
	m.lock.Lock()
	v := m.count
	m.count = v + 1
	m.lock.Unlock()
}

// A spin loop's condition re-tests on every iteration; the unlock/relock
// inside it is the sanctioned wait pattern, not a stale gate.
func spinGate(m *res) {
	m.lock.Lock()
	for m.busy {
		m.lock.Unlock()
		pause()
		m.lock.Lock()
	}
	m.count++
	m.lock.Unlock()
}

// Replica of the pre-fix pset draining gate: liveness is tested under one
// write hold, the hold is dropped for the slow path, and the append runs
// under a fresh hold without re-testing — Destroy's drain can slip into
// the window and the task leaks onto a dead set.
type pset struct {
	members  cxlock.Lock
	draining bool
	tasks    []*task
}

type task struct{ id int }

func assignDrainRace(s *pset, t *task) error {
	s.members.Write(nil)
	if s.draining {
		s.members.Done(nil)
		return errTerminated
	}
	s.members.Done(nil)
	prepare(t)
	s.members.Write(nil)
	s.tasks = append(s.tasks, t) // want `s\.draining was checked while s\.members was held`
	s.members.Done(nil)
	return nil
}

// Re-checking the gate under the new hold is the fix (this is what
// AssignTask does today).
func assignDrainChecked(s *pset, t *task) error {
	s.members.Write(nil)
	if s.draining {
		s.members.Done(nil)
		return errTerminated
	}
	s.members.Done(nil)
	prepare(t)
	s.members.Write(nil)
	if s.draining {
		s.members.Done(nil)
		return errTerminated
	}
	s.tasks = append(s.tasks, t)
	s.members.Done(nil)
	return nil
}

// Structural conditions (len, counts) are not gates: the loop that reads
// them re-checks on every pass, and the post-loop write is governed by
// the loop's own protocol.
func drainAll(s *pset) {
	for {
		s.members.Write(nil)
		if len(s.tasks) == 0 {
			s.members.Done(nil)
			break
		}
		t := s.tasks[0]
		s.tasks = s.tasks[1:]
		s.members.Done(nil)
		prepare(t)
	}
	s.members.Write(nil)
	s.draining = false
	s.members.Done(nil)
}

func work(int)      {}
func pause()        {}
func prepare(*task) {}

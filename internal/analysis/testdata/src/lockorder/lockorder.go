// Fixture for the lockorder pass: an order established by one function and
// inverted by another, a declared-rank violation, and the try-acquire
// (backout protocol) exemption.
package lockorder

import (
	"machlock/internal/core/splock"
	"machlock/internal/sched"
)

type a struct{ mu splock.Lock }
type b struct{ mu splock.Lock }

// Establishes the order a.mu before b.mu.
func forward(x *a, y *b) {
	x.mu.Lock()
	y.mu.Lock()
	y.mu.Unlock()
	x.mu.Unlock()
}

// Inverts it.
func backward(x *a, y *b) {
	y.mu.Lock()
	x.mu.Lock() // want `inconsistent lock order: lockorder\.b\.mu is acquired before lockorder\.a\.mu here, but lockorder\.a\.mu before lockorder\.b\.mu at `
	x.mu.Unlock()
	y.mu.Unlock()
}

// A single attempt against the order is the sanctioned backout protocol.
func backout(x *a, y *b) {
	y.mu.Lock()
	if x.mu.TryLock() {
		x.mu.Unlock()
	}
	y.mu.Unlock()
}

var hier = splock.NewHierarchy(false)

var low = hier.NewOrdered("low", 10)
var high = hier.NewOrdered("high", 20)

// Declared ranks must strictly increase along an acquisition chain.
func ranked(t *sched.Thread) {
	high.Lock(t)
	low.Lock(t) // want `hierarchy violation: acquiring lockorder\.low \(rank 10\) while holding lockorder\.high \(rank 20\)`
	low.Unlock(t)
	high.Unlock(t)
}

// Fixture for the sleepwake pass: the assert-wait window discipline.
// Correct waiters assert under the condition's lock, release, then block;
// the violations are asserting after the release (lost wakeup), holding
// the lock through ThreadBlock, and double asserts. ThreadSleep's unlock
// closure is the sanctioned atomic form.
package sleepwake

import (
	"machlock/internal/core/splock"
	"machlock/internal/sched"
)

type cond struct {
	lock  splock.Lock
	ready bool
	ev    sched.Event
}

// The paper's shape: assert under the lock, release, block, retest.
func waitCorrect(t *sched.Thread, c *cond) {
	c.lock.Lock()
	for !c.ready {
		sched.AssertWait(t, c.ev)
		c.lock.Unlock()
		sched.ThreadBlock(t)
		c.lock.Lock()
	}
	c.lock.Unlock()
}

// Releasing the condition's lock before asserting opens the lost-wakeup
// window: the waker can fire between the unlock and the assert.
func waitLostWakeup(t *sched.Thread, c *cond) {
	c.lock.Lock()
	c.ready = false
	c.lock.Unlock()
	sched.AssertWait(t, c.ev) // want `AssertWait after the condition's lock was already released`
	sched.ThreadBlock(t)
}

// Holding the lock from the assert through the block starves the waker.
func blockWhileHeld(t *sched.Thread, c *cond) {
	c.lock.Lock()
	sched.AssertWait(t, c.ev)
	sched.ThreadBlock(t) // want `c\.lock is held from the AssertWait through ThreadBlock`
	c.lock.Unlock()
}

// Two asserts with no block or clear between them panic at runtime.
func doubleAssert(t *sched.Thread, c *cond) {
	c.lock.Lock()
	sched.AssertWait(t, c.ev)
	sched.AssertWait(t, c.ev) // want `second AssertWait without an intervening`
	c.lock.Unlock()
	sched.ThreadBlock(t)
}

// ThreadSleep asserts internally, so a pending assert is the same panic.
func sleepWhilePending(t *sched.Thread, c *cond) {
	c.lock.Lock()
	sched.AssertWait(t, c.ev)
	sched.ThreadSleep(t, c.ev, func() { c.lock.Unlock() }) // want `ThreadSleep while an AssertWait is already pending`
}

// The atomic assert-and-release idiom is correct by construction.
func sleepIdiom(t *sched.Thread, c *cond) {
	c.lock.Lock()
	for !c.ready {
		sched.ThreadSleep(t, c.ev, func() { c.lock.Unlock() })
		c.lock.Lock()
	}
	c.lock.Unlock()
}

// ClearWait closes the window; a fresh assert afterwards is fine.
func assertClearAssert(t *sched.Thread, c *cond) {
	c.lock.Lock()
	sched.AssertWait(t, c.ev)
	if c.ready {
		sched.ClearWait(t)
		sched.AssertWait(t, c.ev)
	}
	c.lock.Unlock()
	sched.ThreadBlock(t)
}

// The Table-method forms follow the same discipline.
func tableForms(tb *sched.Table, t *sched.Thread, c *cond) {
	c.lock.Lock()
	c.ready = false
	c.lock.Unlock()
	tb.AssertWait(t, c.ev) // want `AssertWait after the condition's lock was already released`
	tb.ThreadBlock(t)
}

// Waiters usually live in sched.Go closures; each literal is its own
// frame.
func goFrame(c *cond) {
	sched.Go("waiter", func(t *sched.Thread) {
		c.lock.Lock()
		c.ready = false
		c.lock.Unlock()
		sched.AssertWait(t, c.ev) // want `AssertWait after the condition's lock was already released`
		sched.ThreadBlock(t)
	})
}

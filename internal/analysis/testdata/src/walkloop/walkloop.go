// Fixture for the lockstate walker's loop/defer bookkeeping, driven
// directly by walk_test.go (no want comments — the test asserts on hook
// events). Each function is one shape the walker must model correctly.
package walkloop

import "machlock/internal/core/splock"

type res struct {
	lock splock.Lock
}

// deferInLoop acquires every lock in the slice and defers every unlock:
// balanced at runtime (N acquisitions, N deferred releases), so the exit
// must see no effective holds.
func deferInLoop(ls []*res) {
	for _, l := range ls {
		l.lock.Lock()
		defer l.lock.Unlock()
	}
	work()
}

// loopLeak acquires in a loop and never releases: the exit must still see
// the hold.
func loopLeak(ls []*res) {
	for _, l := range ls {
		l.lock.Lock()
	}
	work()
}

// oneReleaseManyAcquires acquires N locks through the loop variable but
// releases only one, through a different expression: the single release
// must not be credited against the loop's acquisitions.
func oneReleaseManyAcquires(ls []*res) {
	for _, l := range ls {
		l.lock.Lock()
	}
	ls[0].lock.Unlock()
}

// balancedInLoop locks and unlocks within each iteration: nothing escapes.
func balancedInLoop(ls []*res) {
	for _, l := range ls {
		l.lock.Lock()
		work()
		l.lock.Unlock()
	}
}

func work() {}

package lockstate_test

import (
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"testing"

	"machlock/internal/analysis/framework"
	"machlock/internal/analysis/lockstate"
)

// loadWalkloop loads the walkloop testdata package once for the walker
// regression tests below.
func loadWalkloop(t *testing.T) *framework.Package {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := framework.ModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	ld, err := framework.NewLoader(root, "machlock/...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	dir := filepath.Join(root, "internal", "analysis", "testdata", "src", "walkloop")
	pkg, err := ld.LoadDir(dir, "machvet.test/walkloop")
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	return pkg
}

func funcBody(t *testing.T, pkg *framework.Package, name string) *ast.BlockStmt {
	t.Helper()
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Name == name && fd.Body != nil {
				return fd.Body
			}
		}
	}
	t.Fatalf("function %s not found in walkloop fixture", name)
	return nil
}

// exitHolds walks the named fixture function and returns the lock keys
// effectively held at each exit (deferred releases already subtracted),
// plus the total number of Acquire events the walker fired.
func exitHolds(t *testing.T, pkg *framework.Package, name string) (exits [][]string, acquires int) {
	t.Helper()
	w := &lockstate.Walker{
		Info: pkg.TypesInfo,
		Hooks: lockstate.Hooks{
			Acquire: func(op lockstate.Op, _ []lockstate.Held) { acquires++ },
			Exit: func(_ token.Pos, held []lockstate.Held) {
				var keys []string
				for _, h := range held {
					keys = append(keys, h.Op.Key)
				}
				exits = append(exits, keys)
			},
		},
	}
	if !w.WalkFunc(funcBody(t, pkg, name)) {
		t.Fatalf("%s: walk aborted", name)
	}
	return exits, acquires
}

// TestDeferInLoopBalances pins the defer-inside-a-loop shape: every
// iteration defers its own unlock, so the exit must be hold-free.
func TestDeferInLoopBalances(t *testing.T) {
	pkg := loadWalkloop(t)
	exits, acquires := exitHolds(t, pkg, "deferInLoop")
	if acquires == 0 {
		t.Fatal("walker saw no acquisitions")
	}
	for _, held := range exits {
		if len(held) != 0 {
			t.Errorf("deferInLoop exit still holds %v; loop defers must credit the loop's acquisitions", held)
		}
	}
}

// TestLoopLeakStillHeld pins the failure direction: acquisitions in a
// loop with no release anywhere must survive to the exit.
func TestLoopLeakStillHeld(t *testing.T) {
	pkg := loadWalkloop(t)
	exits, _ := exitHolds(t, pkg, "loopLeak")
	if len(exits) == 0 {
		t.Fatal("no exits recorded")
	}
	for _, held := range exits {
		if len(held) == 0 {
			t.Error("loopLeak exit shows no holds; the loop's acquisitions were lost")
		}
	}
}

// TestOneReleaseDoesNotCreditLoop is the regression the summary layer
// depends on: releasing one lock through a different expression (ls[0])
// must not cancel the loop-variable acquisitions — one release, N
// acquisitions.
func TestOneReleaseDoesNotCreditLoop(t *testing.T) {
	pkg := loadWalkloop(t)
	exits, _ := exitHolds(t, pkg, "oneReleaseManyAcquires")
	if len(exits) == 0 {
		t.Fatal("no exits recorded")
	}
	for _, held := range exits {
		if len(held) == 0 {
			t.Error("oneReleaseManyAcquires exit shows no holds; a single ls[0] release was credited against the loop's N acquisitions")
		}
	}
}

// TestBalancedLoopClean pins the no-false-positive side.
func TestBalancedLoopClean(t *testing.T) {
	pkg := loadWalkloop(t)
	exits, _ := exitHolds(t, pkg, "balancedInLoop")
	for _, held := range exits {
		if len(held) != 0 {
			t.Errorf("balancedInLoop exit still holds %v", held)
		}
	}
}

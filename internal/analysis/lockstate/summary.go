package lockstate

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// Function may-block summaries.
//
// The holdblock pass must understand that cxlock.Lock.Write may sleep
// even though its body only calls unexported helpers, and — just as
// important — that cxlock's wait() RELEASES l.interlock before parking
// the thread, so a caller that holds that very interlock at the call is
// following the protocol, not violating it. Summaries capture both: a
// MayBlock bit propagated through the call graph, and the set of
// receiver/parameter-rooted lock keys the function releases before its
// first blocking point ("release-before-block"). Keys are stored with
// placeholders ("<recv>.interlock", "<param:2>") and translated to the
// caller's expressions at each call site.

// FuncSummary is the exported, per-function may-block fact.
type FuncSummary struct {
	MayBlock bool
	// BlockDesc names the first blocking thing, for diagnostics.
	BlockDesc string
	// ReleasedFirst lists placeholder-rooted lock keys released before
	// the first blocking point: "<recv>", "<recv>.field", "<param:i>",
	// "<param:i>.field".
	ReleasedFirst []string
}

// SummaryFact is an analyzer package fact: summaries for a package's
// declared functions, keyed by FuncID.
type SummaryFact map[string]FuncSummary

const (
	evRelease = iota
	evBlock
	evCall
)

type event struct {
	kind int
	key  string      // evRelease: lock key in the function's own frame
	fn   *types.Func // evCall
	desc string      // evBlock
}

type funcInfo struct {
	fn       *types.Func
	recvName string
	params   []string
	events   []event
	sum      FuncSummary
}

// Summaries holds the per-package summary table plus access to imported
// facts, and answers may-block queries at call sites.
type Summaries struct {
	pkg      *types.Package
	byFunc   map[*types.Func]*funcInfo
	imported func(pkgPath string) (SummaryFact, bool)
}

// ComputeSummaries builds may-block summaries for every function declared
// in the package. imported fetches the SummaryFact of a dependency
// package (may be nil). The returned SummaryFact is what the pass should
// export for downstream packages.
func ComputeSummaries(info *types.Info, files []*ast.File, pkg *types.Package, imported func(string) (SummaryFact, bool)) (*Summaries, SummaryFact) {
	s := &Summaries{pkg: pkg, byFunc: map[*types.Func]*funcInfo{}, imported: imported}

	// Phase 1: per-function event streams (releases, direct blocks, calls).
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			fi := &funcInfo{fn: fn}
			if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
				fi.recvName = fd.Recv.List[0].Names[0].Name
			}
			if fd.Type.Params != nil {
				for _, field := range fd.Type.Params.List {
					for _, name := range field.Names {
						fi.params = append(fi.params, name.Name)
					}
				}
			}
			w := &Walker{
				Info: info,
				Hooks: Hooks{
					Release: func(op Op) {
						fi.events = append(fi.events, event{kind: evRelease, key: op.Key})
					},
					Blocking: func(n ast.Node, desc string, held []Held) {
						fi.events = append(fi.events, event{kind: evBlock, desc: desc})
					},
					Call: func(call *ast.CallExpr) {
						if callee, _ := CalleeFunc(info, call); callee != nil {
							fi.events = append(fi.events, event{kind: evCall, fn: callee})
						}
					},
				},
			}
			w.WalkFunc(fd.Body)
			s.byFunc[fn] = fi
		}
	}

	// Phase 2: fixpoint MayBlock propagation over intra-package calls.
	// Cross-package callees resolve against already-exported facts (the
	// driver analyzes dependencies first).
	for changed := true; changed; {
		changed = false
		for _, fi := range s.byFunc {
			if fi.sum.MayBlock {
				continue
			}
			for _, ev := range fi.events {
				if s.eventBlocks(ev) {
					fi.sum.MayBlock = true
					changed = true
					break
				}
			}
		}
	}

	// Phase 3: for blocking functions, collect releases that precede the
	// first blocking event and are rooted at the receiver or a parameter.
	for _, fi := range s.byFunc {
		if !fi.sum.MayBlock {
			continue
		}
		for _, ev := range fi.events {
			if s.eventBlocks(ev) {
				switch ev.kind {
				case evBlock:
					fi.sum.BlockDesc = ev.desc
				case evCall:
					fi.sum.BlockDesc = "calls " + FuncID(ev.fn) + ", which may block"
				}
				break
			}
			if ev.kind == evRelease {
				if ph := fi.placeholder(ev.key); ph != "" {
					fi.sum.ReleasedFirst = append(fi.sum.ReleasedFirst, ph)
				}
			}
		}
	}

	fact := SummaryFact{}
	for fn, fi := range s.byFunc {
		if fi.sum.MayBlock {
			fact[FuncID(fn)] = fi.sum
		}
	}
	return s, fact
}

func (s *Summaries) eventBlocks(ev event) bool {
	switch ev.kind {
	case evBlock:
		return true
	case evCall:
		sum, ok := s.lookup(ev.fn)
		return ok && sum.MayBlock
	}
	return false
}

// lookup finds a callee's summary: same package directly, other packages
// via imported facts.
func (s *Summaries) lookup(fn *types.Func) (FuncSummary, bool) {
	if fi, ok := s.byFunc[fn]; ok {
		return fi.sum, true
	}
	if fn.Pkg() == nil || trustedLeafPkgs[fn.Pkg().Path()] {
		return FuncSummary{}, false
	}
	if fn.Pkg() == s.pkg || s.imported == nil {
		return FuncSummary{}, false
	}
	fact, ok := s.imported(fn.Pkg().Path())
	if !ok {
		return FuncSummary{}, false
	}
	sum, ok := fact[FuncID(fn)]
	return sum, ok
}

// placeholder rewrites a release key in the function's own frame to its
// placeholder form, or "" when the key is not receiver/parameter rooted
// (locals can't be named by callers anyway).
func (fi *funcInfo) placeholder(key string) string {
	root, rest, _ := strings.Cut(key, ".")
	if rest != "" {
		rest = "." + rest
	}
	if fi.recvName != "" && root == fi.recvName {
		return "<recv>" + rest
	}
	for i, p := range fi.params {
		if p == root {
			return "<param:" + strconv.Itoa(i) + ">" + rest
		}
	}
	return ""
}

// CallBlocks reports whether a call may block per the summaries, with a
// description and the lock keys — translated into the caller's frame —
// that the callee releases before blocking. Use as a Walker.IsBlocking
// (dropping the released list) and again inside the Blocking hook to
// exempt released-before-block locks.
func (s *Summaries) CallBlocks(info *types.Info, call *ast.CallExpr) (desc string, released []string, ok bool) {
	fn, recv := CalleeFunc(info, call)
	if fn == nil {
		return "", nil, false
	}
	sum, found := s.lookup(fn)
	if !found || !sum.MayBlock {
		return "", nil, false
	}
	for _, ph := range sum.ReleasedFirst {
		if k := translateKey(ph, recv, call); k != "" {
			released = append(released, k)
		}
	}
	d := sum.BlockDesc
	if d == "" {
		d = "may block"
	}
	return "call to " + FuncID(fn) + " (" + d + ")", released, true
}

// translateKey substitutes a placeholder root with the call-site
// expression for the receiver or argument.
func translateKey(ph string, recv ast.Expr, call *ast.CallExpr) string {
	root, rest, _ := strings.Cut(ph, ".")
	if rest != "" {
		rest = "." + rest
	}
	if root == "<recv>" {
		if recv == nil {
			return ""
		}
		return ExprKey(recv) + rest
	}
	if strings.HasPrefix(root, "<param:") {
		n := strings.TrimSuffix(strings.TrimPrefix(root, "<param:"), ">")
		i, err := strconv.Atoi(n)
		if err != nil || i < 0 || i >= len(call.Args) {
			return ""
		}
		return ExprKey(call.Args[i]) + rest
	}
	return ""
}

var _ = token.NoPos

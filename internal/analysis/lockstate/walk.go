package lockstate

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Held is one live acquisition on the walker's current path.
type Held struct {
	Op  Op
	Pos token.Pos // the acquiring call
}

// Hooks are the walker's callbacks. Every field may be nil. Each AST node
// is visited at most once per WalkFunc, so hooks never see the same
// (node, event) pair twice; held slices passed to hooks are copies.
type Hooks struct {
	// Acquire fires before op is added to the held set; held is the set
	// at that moment (for ordering checks).
	Acquire func(op Op, held []Held)
	// Release fires for every release, even of a lock this function never
	// acquired (lock-handoff callees unlock their caller's hold).
	Release func(op Op)
	// Ref fires for reference operations (takes and releases; distinguish
	// by op.Kind) with the held set at the call. Object-rooted takes and
	// releases acquire the object's lock internally, so the graph pass
	// needs the holds; refdiscipline needs the take itself.
	Ref func(op Op, held []Held)
	// Blocking fires at a blocking operation with the locks then held.
	// n is the *ast.CallExpr for calls, or the channel/select/range
	// statement for channel operations.
	Blocking func(n ast.Node, desc string, held []Held)
	// Call fires for calls that are not part of the locking vocabulary
	// (used to build may-block call summaries).
	Call func(call *ast.CallExpr)
	// CallHeld fires for the same calls as Call, with the held set at the
	// call site (used to build interprocedural lock-graph edges: the
	// callee's transitive acquisitions nest under these holds).
	CallHeld func(call *ast.CallExpr, held []Held)
	// Exit fires at each return and at an implicit fall-off-the-end exit,
	// with the held set minus deferred releases.
	Exit func(pos token.Pos, held []Held)
	// Goto fires when the function contains a goto; the walk is abandoned
	// (the structured walker cannot model arbitrary jumps).
	Goto func(pos token.Pos)
}

// Walker runs a structured, branch-aware traversal of one function body,
// tracking held locks. It understands the repository's idioms:
//
//   - if l.TryLock() { ... } / if !l.TryLock() { return } branch modeling,
//     including try results bound to a variable and tested later;
//   - for !l.TryLock() {} spin-acquire loops;
//   - if l.ReadToWrite() { ... }: true means the hold was dropped;
//   - defer l.Unlock() (and defer func(){ l.Unlock() }()) canceling the
//     hold at exits while the lock stays held for intervening code;
//   - sched.ThreadSleep(t, ev, func(){ l.Unlock() }): closure arguments
//     release their locks before the callee blocks;
//   - select without default, channel send/receive, and range over a
//     channel as blocking points.
type Walker struct {
	Info *types.Info
	// IsBlocking extends the built-in blocking tables (callee summaries).
	IsBlocking func(call *ast.CallExpr) (desc string, ok bool)
	Hooks      Hooks

	aborted      bool
	tryBind      map[types.Object]Op
	suppressChan bool
}

type wstate struct {
	held []Held
	// deferred keys are released at function exit; shared function-wide
	// (a defer registered on any path guards every later exit).
	deferred   map[string]bool
	terminated bool
}

func (s *wstate) clone() *wstate {
	return &wstate{held: append([]Held(nil), s.held...), deferred: s.deferred}
}

func merge(dst *wstate, branches ...*wstate) {
	var alive []*wstate
	for _, b := range branches {
		if b != nil && !b.terminated {
			alive = append(alive, b)
		}
	}
	if len(alive) == 0 {
		dst.terminated = true
		return
	}
	// Union: a lock held on any surviving branch is treated as held after
	// the join (conservative for holdblock/lockorder; unlockpath checks
	// exits, which happen before joins collapse anything). Dedup is by
	// lock key, not acquisition site: a loop that releases and reacquires
	// the same lock (the AssertWait/relock pattern) holds it once, not
	// once per acquisition site, so a single later Unlock clears it.
	seen := map[string]bool{}
	var out []Held
	for _, b := range alive {
		for _, h := range b.held {
			if !seen[h.Op.Key] {
				seen[h.Op.Key] = true
				out = append(out, h)
			}
		}
	}
	dst.held = out
	dst.terminated = false
}

func effectiveHeld(st *wstate) []Held {
	var out []Held
	for _, h := range st.held {
		if !st.deferred[h.Op.Key] {
			out = append(out, h)
		}
	}
	return out
}

// WalkFunc traverses body. It returns false when the walk was abandoned
// (goto), in which case no Exit hook fired for remaining paths.
func (w *Walker) WalkFunc(body *ast.BlockStmt) bool {
	w.aborted = false
	w.suppressChan = false
	w.tryBind = map[types.Object]Op{}
	st := &wstate{deferred: map[string]bool{}}
	w.stmt(body, st)
	if !w.aborted && !st.terminated && w.Hooks.Exit != nil {
		w.Hooks.Exit(body.Rbrace, effectiveHeld(st))
	}
	return !w.aborted
}

func (w *Walker) blockingAt(n ast.Node, desc string, st *wstate) {
	if w.Hooks.Blocking != nil {
		w.Hooks.Blocking(n, desc, append([]Held(nil), st.held...))
	}
}

func blockDesc(op Op) string {
	target := op.FuncName
	if op.Key != "" {
		target = op.Key + "." + op.FuncName
	}
	if op.Kind == OpRefRelease {
		return "call to " + target + " (dropping the last reference destroys the object, which may block)"
	}
	return "call to " + target + " (complex-lock operation may sleep)"
}

// handleCall processes one call: unlock-closure arguments first, then the
// blocking check against the held set, then the call's own lock effects.
func (w *Walker) handleCall(call *ast.CallExpr, st *wstate) {
	for _, arg := range call.Args {
		if fl, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
			w.closureReleases(fl, st)
		}
	}
	ops := Classify(w.Info, call)
	desc := ""
	for _, op := range ops {
		if op.MayBlock {
			desc = blockDesc(op)
			break
		}
	}
	if len(ops) == 0 {
		if d, ok := BlockingCall(w.Info, call); ok {
			desc = "call to " + d
		} else if w.IsBlocking != nil {
			if d, ok := w.IsBlocking(call); ok {
				desc = d
			}
		}
		if w.Hooks.Call != nil {
			w.Hooks.Call(call)
		}
		if w.Hooks.CallHeld != nil {
			w.Hooks.CallHeld(call, append([]Held(nil), st.held...))
		}
	}
	if desc != "" {
		w.blockingAt(call, desc, st)
	}
	for _, op := range ops {
		w.apply(op, st)
	}
}

func (w *Walker) apply(op Op, st *wstate) {
	switch op.Kind {
	case OpAcquire:
		if w.Hooks.Acquire != nil {
			w.Hooks.Acquire(op, append([]Held(nil), st.held...))
		}
		st.held = append(st.held, Held{Op: op, Pos: op.Call.Pos()})
	case OpRelease:
		w.release(op, st)
	case OpRefTake, OpRefRelease:
		if w.Hooks.Ref != nil {
			w.Hooks.Ref(op, append([]Held(nil), st.held...))
		}
	}
	// OpTryAcquire and the upgrade/downgrade ops only change state through
	// branch conditions; see cond/applyCond.
}

func (w *Walker) release(op Op, st *wstate) {
	for i := len(st.held) - 1; i >= 0; i-- {
		if st.held[i].Op.Key == op.Key {
			st.held = append(st.held[:i:i], st.held[i+1:]...)
			break
		}
	}
	if w.Hooks.Release != nil {
		w.Hooks.Release(op)
	}
}

// closureReleases applies the release operations inside a function
// literal passed as a call argument: the sched.ThreadSleep unlock-closure
// idiom runs the closure before the callee blocks.
func (w *Walker) closureReleases(fl *ast.FuncLit, st *wstate) {
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			for _, op := range Classify(w.Info, call) {
				if op.Kind == OpRelease {
					w.release(op, st)
				}
			}
		}
		return true
	})
}

// expr traverses an expression, handling calls and channel receives.
// Function literal bodies are opaque (their own goroutine/deferred frame),
// except as handled by closureReleases at call sites.
func (w *Walker) expr(e ast.Expr, st *wstate) {
	if e == nil || w.aborted {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if w.aborted {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			w.handleCall(n, st)
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !w.suppressChan {
				w.blockingAt(n, "channel receive", st)
			}
		}
		return true
	})
}

func condKind(k OpKind) bool {
	return k == OpTryAcquire || k == OpUpgradeMayDrop || k == OpUpgradeKeep
}

// cond analyzes a branch condition. When the condition is (a negation of)
// a try/upgrade operation, or a variable bound to one, it returns the op
// and whether the chain negates the call's result.
func (w *Walker) cond(cond ast.Expr, st *wstate) (*Op, bool) {
	e := ast.Unparen(cond)
	neg := false
	for {
		u, ok := e.(*ast.UnaryExpr)
		if !ok || u.Op != token.NOT {
			break
		}
		neg = !neg
		e = ast.Unparen(u.X)
	}
	if call, ok := e.(*ast.CallExpr); ok {
		ops := Classify(w.Info, call)
		if len(ops) == 1 && condKind(ops[0].Kind) {
			w.expr(cond, st) // nested argument effects + may-block reporting
			return &ops[0], neg
		}
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := w.Info.Uses[id]; obj != nil {
			if op, ok := w.tryBind[obj]; ok {
				return &op, neg
			}
		}
	}
	w.expr(cond, st)
	return nil, false
}

// applyCond applies the branch-dependent effect of a try/upgrade op given
// the call's boolean result on this branch.
func (w *Walker) applyCond(op Op, result bool, st *wstate) {
	switch op.Kind {
	case OpTryAcquire:
		if result {
			acq := op
			acq.Kind = OpAcquire
			acq.FromTry = true
			w.apply(acq, st)
		}
	case OpUpgradeMayDrop:
		// cxlock ReadToWrite: true means the hold was dropped.
		if result {
			rel := op
			rel.Kind = OpRelease
			w.release(rel, st)
		}
	case OpUpgradeKeep:
		// TryReadToWrite keeps the hold either way.
	}
}

func (w *Walker) bindTry(id *ast.Ident, rhs ast.Expr) {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok {
		return
	}
	ops := Classify(w.Info, call)
	if len(ops) != 1 || !condKind(ops[0].Kind) {
		return
	}
	obj := w.Info.Defs[id]
	if obj == nil {
		obj = w.Info.Uses[id]
	}
	if obj != nil {
		w.tryBind[obj] = ops[0]
	}
}

func (w *Walker) stmt(s ast.Stmt, st *wstate) {
	if s == nil || st.terminated || w.aborted {
		return
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, x := range s.List {
			w.stmt(x, st)
			if st.terminated || w.aborted {
				return
			}
		}

	case *ast.ExprStmt:
		w.expr(s.X, st)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && IsPanic(w.Info, call) {
			st.terminated = true
		}

	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			w.expr(r, st)
		}
		for _, l := range s.Lhs {
			if _, ok := l.(*ast.Ident); !ok {
				w.expr(l, st)
			}
		}
		if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
			if id, ok := s.Lhs[0].(*ast.Ident); ok {
				w.bindTry(id, s.Rhs[0])
			}
		}

	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, v := range vs.Values {
					w.expr(v, st)
				}
				if len(vs.Names) == 1 && len(vs.Values) == 1 {
					w.bindTry(vs.Names[0], vs.Values[0])
				}
			}
		}

	case *ast.IfStmt:
		w.stmt(s.Init, st)
		condOp, negated := w.cond(s.Cond, st)
		thenSt := st.clone()
		elseSt := st.clone()
		if condOp != nil {
			w.applyCond(*condOp, !negated, thenSt)
			w.applyCond(*condOp, negated, elseSt)
		}
		w.stmt(s.Body, thenSt)
		if s.Else != nil {
			w.stmt(s.Else, elseSt)
		}
		merge(st, thenSt, elseSt)

	case *ast.ForStmt:
		w.stmt(s.Init, st)
		var spin *Op
		if s.Cond != nil {
			op, neg := w.cond(s.Cond, st)
			// for !l.TryLock() {} — the loop only exits having acquired.
			if op != nil && neg && op.Kind == OpTryAcquire {
				spin = op
			}
		}
		body := st.clone()
		w.stmt(s.Body, body)
		if !body.terminated {
			w.stmt(s.Post, body)
		}
		if s.Cond == nil && !hasBreak(s.Body) {
			// for {} with no break never falls through; its only exits are
			// the returns inside, which already fired their Exit hooks.
			st.terminated = true
			return
		}
		entry := st.clone()
		merge(st, entry, body)
		if spin != nil && !st.terminated {
			acq := *spin
			acq.Kind = OpAcquire
			acq.FromTry = true
			w.apply(acq, st)
		}

	case *ast.RangeStmt:
		w.expr(s.X, st)
		if tv, ok := w.Info.Types[s.X]; ok && ChanType(tv.Type) {
			w.blockingAt(s, "receive in range over channel", st)
		}
		body := st.clone()
		w.stmt(s.Body, body)
		entry := st.clone()
		merge(st, entry, body)

	case *ast.SwitchStmt:
		w.stmt(s.Init, st)
		w.expr(s.Tag, st)
		w.caseBranches(s.Body, st)

	case *ast.TypeSwitchStmt:
		w.stmt(s.Init, st)
		w.stmt(s.Assign, st)
		w.caseBranches(s.Body, st)

	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			w.blockingAt(s, "select with no default case", st)
		}
		var branches []*wstate
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			cs := st.clone()
			save := w.suppressChan
			w.suppressChan = true // the select itself was the blocking point
			w.stmt(cc.Comm, cs)
			w.suppressChan = save
			for _, b := range cc.Body {
				w.stmt(b, cs)
				if cs.terminated || w.aborted {
					break
				}
			}
			branches = append(branches, cs)
		}
		merge(st, branches...)

	case *ast.SendStmt:
		w.expr(s.Chan, st)
		w.expr(s.Value, st)
		if !w.suppressChan {
			w.blockingAt(s, "channel send", st)
		}

	case *ast.DeferStmt:
		for _, a := range s.Call.Args {
			if _, ok := ast.Unparen(a).(*ast.FuncLit); !ok {
				w.expr(a, st)
			}
		}
		if fl, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			ast.Inspect(fl.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					for _, op := range Classify(w.Info, call) {
						if op.Kind == OpRelease {
							st.deferred[op.Key] = true
						}
					}
				}
				return true
			})
		} else {
			for _, op := range Classify(w.Info, s.Call) {
				if op.Kind == OpRelease {
					st.deferred[op.Key] = true
				}
			}
		}

	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.expr(r, st)
		}
		if w.Hooks.Exit != nil {
			w.Hooks.Exit(s.Return, effectiveHeld(st))
		}
		st.terminated = true

	case *ast.BranchStmt:
		if s.Tok == token.GOTO {
			w.aborted = true
			if w.Hooks.Goto != nil {
				w.Hooks.Goto(s.Pos())
			}
		} else {
			// break/continue: abandon this path's tail. The enclosing
			// loop/switch merge keeps the entry state alive.
			st.terminated = true
		}

	case *ast.LabeledStmt:
		w.stmt(s.Stmt, st)

	case *ast.GoStmt:
		for _, a := range s.Call.Args {
			if _, ok := ast.Unparen(a).(*ast.FuncLit); !ok {
				w.expr(a, st)
			}
		}

	case *ast.IncDecStmt:
		w.expr(s.X, st)
	}
}

// hasBreak reports whether body contains a break that targets the
// enclosing loop (nested loops, switches, and selects consume their own
// breaks; labeled breaks are conservatively counted).
func hasBreak(body *ast.BlockStmt) bool {
	found := false
	var scan func(s ast.Stmt)
	scan = func(s ast.Stmt) {
		if found || s == nil {
			return
		}
		switch s := s.(type) {
		case *ast.BranchStmt:
			if s.Tok == token.BREAK {
				found = true
			}
		case *ast.BlockStmt:
			for _, x := range s.List {
				scan(x)
			}
		case *ast.IfStmt:
			scan(s.Body)
			scan(s.Else)
		case *ast.LabeledStmt:
			scan(s.Stmt)
			// Nested loops/switches/selects swallow unlabeled breaks; a
			// labeled break inside them is rare enough to ignore here.
		}
	}
	scan(body)
	return found
}

func (w *Walker) caseBranches(body *ast.BlockStmt, st *wstate) {
	hasDefault := false
	var branches []*wstate
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		cs := st.clone()
		for _, e := range cc.List {
			w.expr(e, cs)
		}
		for _, b := range cc.Body {
			w.stmt(b, cs)
			if cs.terminated || w.aborted {
				break
			}
		}
		branches = append(branches, cs)
	}
	if !hasDefault {
		branches = append(branches, st.clone())
	}
	merge(st, branches...)
}

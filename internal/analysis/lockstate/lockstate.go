// Package lockstate is the shared semantic layer under the machvet
// passes: it classifies calls against the repository's locking vocabulary
// (splock simple locks, cxlock complex locks, object.Object's embedded
// discipline, refcount, sched's blocking primitives) and provides a
// structured statement walker that tracks the set of locks held along a
// function's paths.
//
// The classification is deliberately table-driven and type-exact: an
// operation is recognized by the (package, receiver type, method) triple
// of the *declared* callee, so promoted methods (ipc.Port embedding
// object.Object) and interface calls (splock.Mutex, machlock.RWLocker)
// resolve to the same table rows as direct calls.
package lockstate

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// LockClass distinguishes the two lock families of the paper.
type LockClass int

const (
	// Simple is a spin lock: splock.Lock and its wrappers, and the
	// object.Object embedded lock. May never be held across a blocking
	// operation.
	Simple LockClass = iota + 1
	// Complex is a cxlock readers/writer lock; acquisitions may sleep.
	Complex
)

func (c LockClass) String() string {
	switch c {
	case Simple:
		return "simple lock"
	case Complex:
		return "complex lock"
	default:
		return "lock"
	}
}

// OpKind is the effect a recognized call has on lock/reference state.
type OpKind int

const (
	OpNone OpKind = iota
	// OpAcquire unconditionally acquires (splock Lock, cxlock Read/Write,
	// ClassLock Acquire).
	OpAcquire
	// OpTryAcquire acquires only if the call's boolean result is true.
	OpTryAcquire
	// OpRelease releases (Unlock, Done, ClassLock Release).
	OpRelease
	// OpUpgradeMayDrop is cxlock ReadToWrite: a true result means the
	// hold was LOST to a competing upgrader.
	OpUpgradeMayDrop
	// OpUpgradeKeep is cxlock TryReadToWrite: the hold survives either
	// result.
	OpUpgradeKeep
	// OpDowngrade is cxlock WriteToRead: the hold continues in read mode.
	OpDowngrade
	// OpRefTake clones a reference (Reference, TakeRef, refcount Clone).
	OpRefTake
	// OpRefRelease drops a reference; the paper makes this a potentially
	// blocking operation ("Release may destroy and therefore block").
	OpRefRelease
)

// Op is one classified lock/reference operation at a call site.
type Op struct {
	Kind  OpKind
	Class LockClass
	// Key identifies the lock instance within the enclosing function: the
	// canonical rendering of the receiver expression ("m.refLock", "p").
	Key string
	// ClassKey identifies the lock's type-level class for cross-function
	// order graphs ("vm.Map.refLock", "ipc.Port"); see ClassKeyOf.
	ClassKey string
	// Root is the base variable of the receiver expression, if it is one.
	Root types.Object
	// Recv is the receiver expression; nil for package-level functions.
	Recv ast.Expr
	Call *ast.CallExpr
	// MayBlock marks operations that can sleep or destroy: cxlock
	// acquisitions and reference releases.
	MayBlock bool
	// IsObject marks the object.Object discipline (deactivatable kernel
	// objects), which the refdiscipline pass cares about.
	IsObject bool
	// FromLockPair marks the two acquisitions synthesized for
	// splock.LockPair, which is the sanctioned same-rank ordering escape.
	FromLockPair bool
	// FromTry marks an acquisition that happened through a successful
	// TryLock (branch-condition or spin-loop). Try-acquires are the
	// paper's backout protocol and exempt from ordering checks.
	FromTry bool
	// FuncName is the callee's name, for diagnostics.
	FuncName string
}

const (
	pkgSplock = "machlock/internal/core/splock"
	pkgCxlock = "machlock/internal/core/cxlock"
	pkgObject = "machlock/internal/core/object"
	pkgRefcnt = "machlock/internal/core/refcount"
	pkgSched  = "machlock/internal/sched"
	pkgVM     = "machlock/internal/vm"
	pkgMach   = "machlock"
	pkgSync   = "sync"
	pkgTime   = "time"
)

type opEntry struct {
	kind     OpKind
	class    LockClass
	mayBlock bool
	isObject bool
}

// methodTable maps pkgPath + "\x00" + recvTypeName + "\x00" + method to
// the operation it performs. Receiver-less (package-level) functions use
// an empty receiver name.
var methodTable = map[string]opEntry{}

func reg(pkg, recv, method string, e opEntry) {
	methodTable[pkg+"\x00"+recv+"\x00"+method] = e
}

func init() {
	// splock simple locks: every implementation and the Mutex interface.
	// splock.Lock covers the whole algorithm arsenal (TAS/TTAS/queue/
	// cohort/adaptive): the algorithm is an option on the one type, so the
	// type-exact rows below classify every variant identically. SimLock is
	// the coherence-simulation twin with the same hold discipline.
	for _, recv := range []string{"Lock", "Checked", "StatLock", "OrderedLock", "Noop", "Mutex", "SimLock"} {
		reg(pkgSplock, recv, "Lock", opEntry{kind: OpAcquire, class: Simple})
		reg(pkgSplock, recv, "TryLock", opEntry{kind: OpTryAcquire, class: Simple})
		reg(pkgSplock, recv, "Unlock", opEntry{kind: OpRelease, class: Simple})
	}

	// object.Object: the embedded simple lock plus the reference protocol.
	reg(pkgObject, "Object", "Lock", opEntry{kind: OpAcquire, class: Simple, isObject: true})
	reg(pkgObject, "Object", "TryLock", opEntry{kind: OpTryAcquire, class: Simple, isObject: true})
	reg(pkgObject, "Object", "Unlock", opEntry{kind: OpRelease, class: Simple, isObject: true})
	reg(pkgObject, "Object", "Reference", opEntry{kind: OpRefTake, isObject: true})
	reg(pkgObject, "Object", "TakeRef", opEntry{kind: OpRefTake, isObject: true})
	reg(pkgObject, "Object", "Release", opEntry{kind: OpRefRelease, mayBlock: true, isObject: true})

	// refcount: Clone never blocks; Release may destroy and so may block.
	for _, recv := range []string{"Count", "Atomic"} {
		reg(pkgRefcnt, recv, "Clone", opEntry{kind: OpRefTake})
		reg(pkgRefcnt, recv, "Release", opEntry{kind: OpRefRelease, mayBlock: true})
	}

	// cxlock complex locks (machlock.ComplexLock is an alias of
	// cxlock.Lock, so the facade resolves here too), plus the machlock
	// Locker/RWLocker interfaces.
	for _, tr := range []struct{ pkg, recv string }{
		{pkgCxlock, "Lock"},
		{pkgMach, "Locker"},
		{pkgMach, "RWLocker"},
	} {
		reg(tr.pkg, tr.recv, "Read", opEntry{kind: OpAcquire, class: Complex, mayBlock: true})
		reg(tr.pkg, tr.recv, "Write", opEntry{kind: OpAcquire, class: Complex, mayBlock: true})
		reg(tr.pkg, tr.recv, "TryRead", opEntry{kind: OpTryAcquire, class: Complex})
		reg(tr.pkg, tr.recv, "TryWrite", opEntry{kind: OpTryAcquire, class: Complex})
		reg(tr.pkg, tr.recv, "Done", opEntry{kind: OpRelease, class: Complex})
		reg(tr.pkg, tr.recv, "ReadToWrite", opEntry{kind: OpUpgradeMayDrop, class: Complex, mayBlock: true})
		reg(tr.pkg, tr.recv, "TryReadToWrite", opEntry{kind: OpUpgradeKeep, class: Complex, mayBlock: true})
		reg(tr.pkg, tr.recv, "WriteToRead", opEntry{kind: OpDowngrade, class: Complex})
	}
	reg(pkgCxlock, "ClassLock", "Acquire", opEntry{kind: OpAcquire, class: Complex, mayBlock: true})
	reg(pkgCxlock, "ClassLock", "TryAcquire", opEntry{kind: OpTryAcquire, class: Complex})
	reg(pkgCxlock, "ClassLock", "Release", opEntry{kind: OpRelease, class: Complex})
}

// blockingTable lists calls that block (or may block) outright, beyond
// the MayBlock lock/reference operations above. vm's Release methods are
// the "object release paths" of the paper: the last reference tears down
// entries, pages, and pagers, all of which can block.
var blockingTable = map[string]string{
	pkgSched + "\x00\x00ThreadBlock":      "sched.ThreadBlock",
	pkgSched + "\x00\x00ThreadSleep":      "sched.ThreadSleep",
	pkgSched + "\x00Table\x00ThreadBlock": "sched.Table.ThreadBlock",
	pkgSched + "\x00Table\x00ThreadSleep": "sched.Table.ThreadSleep",
	pkgVM + "\x00Map\x00Release":          "vm.Map.Release (may destroy)",
	pkgVM + "\x00Object\x00Release":       "vm.Object.Release (may destroy)",
	pkgTime + "\x00\x00Sleep":             "time.Sleep",
	pkgSync + "\x00WaitGroup\x00Wait":     "sync.WaitGroup.Wait",
	pkgSync + "\x00Cond\x00Wait":          "sync.Cond.Wait",
}

// trustedLeafPkgs are the simulation substrate: the scheduler's own
// machinery (AssertWait, ThreadWakeup, ClearWait are *defined* to be
// callable with simple locks held — the AssertWait/unlock/ThreadBlock
// idiom depends on it) and the hardware model (IPI delivery, SPL). Their
// internal channels and mutexes model hardware, not kernel sleeps, so
// may-block summaries never propagate out of them; the genuinely blocking
// entry points (ThreadBlock, ThreadSleep) are in blockingTable above.
// sync.Mutex is excluded from blockingTable for the same reason: the
// simulation uses host mutexes as interlocks, not as sleep points.
var trustedLeafPkgs = map[string]bool{
	pkgSched:               true,
	"machlock/internal/hw": true,
	// The machsim seam and harness: Yield may suspend a virtual thread,
	// but that suspension models a preemption (hardware), not a kernel
	// sleep — a spinning holder parked at a yield point is exactly the
	// preempted-holder schedule the harness exists to explore.
	"machlock/internal/machsim/simhook": true,
	"machlock/internal/machsim":         true,
}

// CalleeFunc resolves the called function and the receiver expression of
// a call, or nil when the callee is not a statically known function.
func CalleeFunc(info *types.Info, call *ast.CallExpr) (*types.Func, ast.Expr) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			if fn.Signature().Recv() != nil {
				return fn, fun.X
			}
			return fn, nil
		}
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn, nil
		}
	}
	return nil, nil
}

// funcKey builds the method-table key for a declared function.
func funcKey(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	recv := ""
	if r := fn.Signature().Recv(); r != nil {
		t := r.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			recv = n.Obj().Name()
		} else if iface, ok := t.(*types.Interface); ok {
			_ = iface // unnamed interface receiver: leave recv empty
		}
	}
	return pkg + "\x00" + recv + "\x00" + fn.Name()
}

// FuncID renders a declared function for cross-package fact keys and
// diagnostics: "Func", "Type.Method" or "(*Type).Method".
func FuncID(fn *types.Func) string {
	r := fn.Signature().Recv()
	if r == nil {
		return fn.Name()
	}
	t := r.Type()
	ptr := ""
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
		ptr = "*"
	}
	name := "?"
	if n, ok := t.(*types.Named); ok {
		name = n.Obj().Name()
	}
	if ptr != "" {
		return "(" + ptr + name + ")." + fn.Name()
	}
	return name + "." + fn.Name()
}

// Classify returns the lock/reference operations a call performs, empty
// when the call is not part of the locking vocabulary. splock.LockPair
// yields two acquisition ops (its second and third arguments).
func Classify(info *types.Info, call *ast.CallExpr) []Op {
	fn, recv := CalleeFunc(info, call)
	if fn == nil {
		return nil
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == pkgSplock && fn.Name() == "LockPair" && fn.Signature().Recv() == nil {
		if len(call.Args) != 3 {
			return nil
		}
		var ops []Op
		for _, arg := range call.Args[1:] {
			ops = append(ops, Op{
				Kind: OpAcquire, Class: Simple,
				Key:      ExprKey(arg),
				ClassKey: ClassKeyOf(info, arg),
				Root:     RootObject(info, arg),
				Recv:     arg, Call: call,
				FromLockPair: true,
				FuncName:     "LockPair",
			})
		}
		return ops
	}
	e, ok := methodTable[funcKey(fn)]
	if !ok {
		return nil
	}
	op := Op{
		Kind: e.kind, Class: e.class, MayBlock: e.mayBlock, IsObject: e.isObject,
		Recv: recv, Call: call, FuncName: fn.Name(),
	}
	if recv != nil {
		op.Key = ExprKey(recv)
		op.ClassKey = ClassKeyOf(info, recv)
		op.Root = RootObject(info, recv)
	}
	return []Op{op}
}

// BlockingCall reports whether the call blocks (or may block) according
// to the curated table; the description names the callee for diagnostics.
func BlockingCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn, _ := CalleeFunc(info, call)
	if fn == nil {
		return "", false
	}
	desc, ok := blockingTable[funcKey(fn)]
	return desc, ok
}

// ExprKey renders an expression as a canonical lock-instance key.
func ExprKey(e ast.Expr) string { return types.ExprString(ast.Unparen(e)) }

// RootObject returns the variable at the base of a selector chain
// ("m.refLock" -> m), or nil.
func RootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil {
				return obj
			}
			return info.Defs[x]
		default:
			return nil
		}
	}
}

// namedTypeName returns "pkg.Type" for a (possibly pointer-to) named
// type, or "".
func namedTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Name() + "." + obj.Name()
}

// isLockTypeName reports whether a named type is itself one of the lock
// types — such types must not anchor a ClassKey, or every splock.Lock in
// the program would collapse into one ordering class.
func isLockTypeName(name string) bool {
	switch name {
	case "splock.Lock", "splock.Checked", "splock.StatLock", "splock.OrderedLock",
		"splock.Noop", "splock.Mutex", "cxlock.Lock", "cxlock.ClassLock",
		"machlock.ComplexLock", "object.Object":
		return true
	}
	return false
}

// ClassKeyOf derives the type-level ordering class of a lock receiver
// expression:
//
//   - a field of a named container type anchors there: m.refLock on
//     *vm.Map -> "vm.Map.refLock";
//   - a bare variable of a non-lock named type (an object.Object
//     embedder) is classed by its type: p *ipc.Port -> "ipc.Port";
//   - a package-level lock variable is classed by name: "pkg.GlobalLock";
//   - a local lock variable gets a position-unique class, which can never
//     conflict across functions (by design: nothing is known about it).
func ClassKeyOf(info *types.Info, e ast.Expr) string {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.SelectorExpr:
		if tv, ok := info.Types[x.X]; ok {
			if name := namedTypeName(tv.Type); name != "" && !isLockTypeName(name) {
				return name + "." + x.Sel.Name
			}
		}
		return ClassKeyOf(info, x.X) + "." + x.Sel.Name
	case *ast.Ident:
		obj := info.Uses[x]
		if obj == nil {
			obj = info.Defs[x]
		}
		if v, ok := obj.(*types.Var); ok {
			if name := namedTypeName(v.Type()); name != "" && !isLockTypeName(name) {
				return name
			}
			if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return v.Pkg().Name() + "." + v.Name()
			}
			return "local:" + v.Name() + "@" + strconv.Itoa(int(v.Pos()))
		}
		return x.Name
	case *ast.IndexExpr:
		return ClassKeyOf(info, x.X) + "[]"
	case *ast.StarExpr:
		return ClassKeyOf(info, x.X)
	default:
		return types.ExprString(e)
	}
}

// IsPanic reports whether the call is the panic builtin.
func IsPanic(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

// ChanType reports whether t is (or points to) a channel type.
func ChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

var _ = token.NoPos

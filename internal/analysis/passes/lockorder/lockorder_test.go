package lockorder_test

import (
	"testing"

	"machlock/internal/analysis/framework/analysistest"
	"machlock/internal/analysis/passes/lockorder"
)

func TestLockorder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), lockorder.Analyzer, "lockorder")
}

// Package lockorder checks lock acquisition order in two ways:
//
//  1. Against declared hierarchy ranks: locks created with
//     (*splock.Hierarchy).NewOrdered(name, rank) carry a compile-time
//     constant rank; acquiring a lock while holding one of equal or
//     higher rank is the same violation the runtime checker reports,
//     caught statically.
//  2. Against the rest of the program: every nested acquisition records
//     a directed edge between the two locks' type-level classes
//     ("vm.Map.refLock" -> "vm.Object.lock"); an edge whose reverse was
//     recorded anywhere else — earlier in this package or in any
//     dependency, via package facts — is an inconsistency, reported with
//     both sites.
//
// Try-acquires are exempt (the paper's backout protocol acquires against
// the order on purpose, failing back out on contention), as is
// splock.LockPair (the sanctioned address-ordered same-class pair).
package lockorder

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"machlock/internal/analysis/framework"
	"machlock/internal/analysis/lockstate"
)

var Analyzer = &framework.Analyzer{
	Name: "lockorder",
	Doc: "lockorder reports lock acquisitions that invert an order established " +
		"elsewhere in the program, and acquisitions that violate declared " +
		"splock.Hierarchy ranks.",
	Run: run,
}

// Fact is the aggregate ordering knowledge at and below one package:
// first-seen sites for each directed edge between lock classes, and the
// declared hierarchy ranks. Aggregating transitively means a package only
// needs its direct imports' facts.
type Fact struct {
	Edges map[string]string // "from\x00to" -> "file:line:col"
	Ranks map[string]int    // lock class -> hierarchy rank
}

const splockPath = "machlock/internal/core/splock"

func run(pass *framework.Pass) (any, error) {
	agg := Fact{Edges: map[string]string{}, Ranks: map[string]int{}}
	for _, imp := range pass.Pkg.Imports() {
		v, ok := pass.ImportPackageFact(imp.Path())
		if !ok {
			continue
		}
		f, ok := v.(Fact)
		if !ok {
			continue
		}
		for k, site := range f.Edges {
			if _, dup := agg.Edges[k]; !dup {
				agg.Edges[k] = site
			}
		}
		for k, r := range f.Ranks {
			agg.Ranks[k] = r
		}
	}

	collectRanks(pass, agg.Ranks)

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd, &agg)
		}
	}

	pass.ExportPackageFact(agg)
	return nil, nil
}

func checkFunc(pass *framework.Pass, fd *ast.FuncDecl, agg *Fact) {
	w := &lockstate.Walker{
		Info: pass.TypesInfo,
		Hooks: lockstate.Hooks{
			Acquire: func(op lockstate.Op, held []lockstate.Held) {
				if op.FromTry || op.ClassKey == "" || skipClass(op.ClassKey) {
					return
				}
				for _, h := range held {
					from, to := h.Op.ClassKey, op.ClassKey
					if from == to || skipClass(from) {
						continue
					}
					if h.Op.FromLockPair && op.FromLockPair {
						continue
					}
					if ra, okA := agg.Ranks[from]; okA {
						if rb, okB := agg.Ranks[to]; okB && ra >= rb {
							pass.Reportf(op.Call.Pos(),
								"hierarchy violation: acquiring %s (rank %d) while holding %s (rank %d); ranks must strictly increase",
								to, rb, from, ra)
						}
					}
					if site, inverted := agg.Edges[to+"\x00"+from]; inverted {
						pass.Reportf(op.Call.Pos(),
							"inconsistent lock order: %s is acquired before %s here, but %s before %s at %s",
							from, to, to, from, site)
						continue // don't record both directions from one conflict
					}
					key := from + "\x00" + to
					if _, seen := agg.Edges[key]; !seen {
						agg.Edges[key] = pass.Fset.Position(op.Call.Pos()).String()
					}
				}
			},
		},
	}
	w.WalkFunc(fd.Body)
}

// skipClass drops classes that cannot meaningfully match across
// functions: locals are unique by construction.
func skipClass(class string) bool {
	return strings.HasPrefix(class, "local:")
}

// collectRanks finds h.NewOrdered(name, rank) calls whose result is bound
// to a variable, and maps that variable's lock class to the constant rank.
func collectRanks(pass *framework.Pass, ranks map[string]int) {
	bind := func(lhs ast.Expr, rhs ast.Expr) {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || len(call.Args) != 2 {
			return
		}
		fn, _ := lockstate.CalleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.Name() != "NewOrdered" || fn.Pkg() == nil || fn.Pkg().Path() != splockPath {
			return
		}
		tv, ok := pass.TypesInfo.Types[call.Args[1]]
		if !ok || tv.Value == nil {
			return
		}
		rank, ok := constant.Int64Val(constant.ToInt(tv.Value))
		if !ok {
			return
		}
		if id, isIdent := lhs.(*ast.Ident); isIdent {
			key := lockstate.ClassKeyOf(pass.TypesInfo, id)
			if !skipClass(key) {
				ranks[key] = int(rank)
			}
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ValueSpec:
				for i := range n.Values {
					if i < len(n.Names) {
						bind(n.Names[i], n.Values[i])
					}
				}
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i := range n.Rhs {
						bind(n.Lhs[i], n.Rhs[i])
					}
				}
			}
			return true
		})
	}
}

var _ = types.Universe

package sleepwake_test

import (
	"testing"

	"machlock/internal/analysis/framework/analysistest"
	"machlock/internal/analysis/passes/sleepwake"
)

func TestSleepwake(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), sleepwake.Analyzer, "sleepwake")
}

// Package sleepwake enforces the sched wait-protocol window discipline
// (the paper's assert_wait/thread_block split, Figure "simple locking for
// sleep/wakeup"):
//
//  1. Lost wakeup: sched.AssertWait must run BEFORE the lock guarding the
//     awaited condition is released. A function that releases its locks
//     and only then asserts the wait has opened a window in which the
//     wakeup can fire with nobody registered — the wakeup is lost and the
//     thread sleeps forever.
//  2. Block while holding: a lock held at the AssertWait must be released
//     before ThreadBlock (the runtime panics on spin locks held across a
//     block; the static check also covers complex locks, which would
//     deadlock the waker). ThreadSleep is exempt — its unlock closure is
//     the sanctioned atomic assert-and-release.
//  3. Double assert: a second AssertWait (or ThreadSleep, which asserts
//     internally) without an intervening ThreadBlock/ThreadSleep/ClearWait
//     panics at runtime ("assert_wait while already waiting").
//
// Function literals are walked as their own frames: waiters in this
// repository are usually sched.Go closures.
package sleepwake

import (
	"go/ast"
	"go/token"

	"machlock/internal/analysis/framework"
	"machlock/internal/analysis/lockstate"
)

var Analyzer = &framework.Analyzer{
	Name: "sleepwake",
	Doc: "sleepwake reports violations of the assert-wait window discipline: " +
		"asserting a wait after the condition's locks were already released " +
		"(lost wakeup), holding a lock from the assert through ThreadBlock, " +
		"and double asserts without an intervening block or clear.",
	Run: run,
}

const schedPath = "machlock/internal/sched"

func run(pass *framework.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFrame(pass, fd.Body)
			// Each function literal is a separate execution frame (usually
			// a sched.Go thread body) with its own wait-protocol state.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					checkFrame(pass, fl.Body)
				}
				return true
			})
		}
	}
	return nil, nil
}

// schedCall classifies a call as one of the wait-protocol entry points
// (package-level or Table method).
func schedCall(pass *framework.Pass, call *ast.CallExpr) string {
	fn, _ := lockstate.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != schedPath {
		return ""
	}
	switch fn.Name() {
	case "AssertWait", "ThreadBlock", "ThreadSleep", "ClearWait":
		return fn.Name()
	}
	return ""
}

func checkFrame(pass *framework.Pass, body *ast.BlockStmt) {
	// Wait-protocol state along the walker's traversal. The walker fires
	// hooks in source order within each path, so a linear state machine
	// tracks the assert→block window.
	var (
		pendingAssert token.Pos // active AssertWait awaiting its block
		assertHeld    []lockstate.Held
		releasedSince bool // a classified lock was released since the last block
	)

	w := &lockstate.Walker{
		Info: pass.TypesInfo,
		Hooks: lockstate.Hooks{
			Release: func(op lockstate.Op) {
				if op.Kind == lockstate.OpRelease {
					releasedSince = true
				}
			},
			CallHeld: func(call *ast.CallExpr, held []lockstate.Held) {
				switch schedCall(pass, call) {
				case "AssertWait":
					if pendingAssert != token.NoPos {
						pass.Reportf(call.Pos(),
							"second AssertWait without an intervening ThreadBlock/ThreadSleep/ClearWait; the scheduler panics on assert_wait while already waiting")
					}
					if len(held) == 0 && releasedSince {
						pass.Reportf(call.Pos(),
							"AssertWait after the condition's lock was already released: a wakeup in the window is lost — assert the wait first, then unlock, then ThreadBlock")
					}
					pendingAssert = call.Pos()
					assertHeld = held
				case "ThreadSleep":
					// Asserts internally; its unlock closure already ran
					// (the walker applies closure releases first), so the
					// atomic assert-and-release idiom is correct by
					// construction. It still trips a pending assert.
					if pendingAssert != token.NoPos {
						pass.Reportf(call.Pos(),
							"ThreadSleep while an AssertWait is already pending; the scheduler panics on assert_wait while already waiting")
					}
					pendingAssert = token.NoPos
					assertHeld = nil
					releasedSince = false
				case "ThreadBlock":
					if pendingAssert != token.NoPos {
						for _, h := range assertHeld {
							if stillHeld(held, h.Op.Key) {
								pass.Reportf(call.Pos(),
									"%s is held from the AssertWait through ThreadBlock; release it between the assert and the block (the waker needs it to deliver the wakeup)",
									h.Op.Key)
							}
						}
					}
					pendingAssert = token.NoPos
					assertHeld = nil
					releasedSince = false
				case "ClearWait":
					pendingAssert = token.NoPos
					assertHeld = nil
				}
			},
		},
	}
	w.WalkFunc(body)
}

func stillHeld(held []lockstate.Held, key string) bool {
	for _, h := range held {
		if h.Op.Key == key {
			return true
		}
	}
	return false
}

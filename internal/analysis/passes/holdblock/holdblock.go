// Package holdblock enforces the paper's cardinal simple-lock rule: a
// spin lock may never be held across an operation that can block. The
// blocking operations are:
//
//   - complex-lock acquisitions and upgrades (cxlock Read/Write,
//     ReadToWrite, TryReadToWrite, ClassLock.Acquire), which park the
//     thread when contended;
//   - reference releases (refcount.Release, object.Object.Release,
//     vm.Map/Object.Release): dropping the last reference runs the
//     destructor, which may itself sleep;
//   - scheduler waits (sched.ThreadBlock/ThreadSleep), time.Sleep, sync
//     waits, channel sends/receives, select without default, range over
//     a channel;
//   - any call whose callee may transitively do one of the above, per
//     call-graph summaries propagated package-by-package as facts.
//
// The summaries also record release-before-block: a callee that drops a
// caller-visible lock before parking (cxlock's wait() releasing the
// interlock, the sched.ThreadSleep unlock-closure idiom) does not count
// that lock as held across the block.
package holdblock

import (
	"go/ast"

	"machlock/internal/analysis/framework"
	"machlock/internal/analysis/lockstate"
)

var Analyzer = &framework.Analyzer{
	Name: "holdblock",
	Doc: "holdblock reports simple (spin) locks held across blocking operations: " +
		"complex-lock acquisitions, reference releases, scheduler waits, channel " +
		"operations, and calls that transitively block.",
	Run: run,
}

func run(pass *framework.Pass) (any, error) {
	summaries, fact := lockstate.ComputeSummaries(
		pass.TypesInfo, pass.Files, pass.Pkg,
		func(path string) (lockstate.SummaryFact, bool) {
			v, ok := pass.ImportPackageFact(path)
			if !ok {
				return nil, false
			}
			f, ok := v.(lockstate.SummaryFact)
			return f, ok
		})
	pass.ExportPackageFact(fact)

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, summaries, fd)
		}
	}
	return nil, nil
}

func checkFunc(pass *framework.Pass, summaries *lockstate.Summaries, fd *ast.FuncDecl) {
	w := &lockstate.Walker{
		Info: pass.TypesInfo,
		IsBlocking: func(call *ast.CallExpr) (string, bool) {
			desc, _, ok := summaries.CallBlocks(pass.TypesInfo, call)
			return desc, ok
		},
	}
	w.Hooks.Blocking = func(n ast.Node, desc string, held []lockstate.Held) {
		exempt := map[string]bool{}
		if call, ok := n.(*ast.CallExpr); ok {
			if _, released, ok := summaries.CallBlocks(pass.TypesInfo, call); ok {
				for _, k := range released {
					exempt[k] = true
				}
			}
		}
		for _, h := range held {
			if h.Op.Class != lockstate.Simple || exempt[h.Op.Key] {
				continue
			}
			pass.Reportf(n.Pos(),
				"simple lock %s (acquired at %s) is held across a blocking operation: %s",
				h.Op.Key, pass.Fset.Position(h.Pos), desc)
		}
	}
	w.WalkFunc(fd.Body)
}

package holdblock_test

import (
	"testing"

	"machlock/internal/analysis/framework/analysistest"
	"machlock/internal/analysis/passes/holdblock"
)

func TestHoldblock(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), holdblock.Analyzer, "holdblock")
}

// Package deprecated flags uses of the locking APIs this repository has
// superseded, with the replacement spelled out in the diagnostic:
//
//   - cxlock.New / (*Lock).Init -> cxlock.NewWith(cxlock.Options{...})
//   - cxlock.SetObserver -> cxlock.AddObserver / RemoveObserver
//   - splock.NewSim -> splock.NewSimWith(splock.Opts{...})
//
// (machlock.NewComplexLock and cxlock.SetSleepable completed the cycle:
// deprecated in PR 2, deleted in PR 7 once no in-repo callers remained.)
//
// Uses inside the package that declares the symbol are exempt (the
// deprecated shims have to call something).
package deprecated

import (
	"go/types"

	"machlock/internal/analysis/framework"
	"machlock/internal/analysis/lockstate"
)

var Analyzer = &framework.Analyzer{
	Name: "deprecated",
	Doc: "deprecated flags calls to superseded locking APIs (cxlock.New/Init, " +
		"cxlock.SetObserver, splock.NewSim) and names the replacement.",
	Run: run,
}

const (
	cxlockPath = "machlock/internal/core/cxlock"
	splockPath = "machlock/internal/core/splock"
)

// targets maps (declaring package, FuncID) to the suggested fix.
var targets = map[[2]string]string{
	{cxlockPath, "New"}:          "use cxlock.NewWith(cxlock.Options{Sleep: canSleep}) instead",
	{cxlockPath, "(*Lock).Init"}: "use (*Lock).InitWith(cxlock.Options{...}) instead",
	{cxlockPath, "SetObserver"}:  "use cxlock.AddObserver/RemoveObserver so multiple observers can coexist instead of silently evicting one another",
	{splockPath, "NewSim"}:       "use splock.NewSimWith(splock.Opts{Machine: m, Algorithm: p}) so the lock can carry a name, class, and algorithm options",
}

func run(pass *framework.Pass) (any, error) {
	for id, obj := range pass.TypesInfo.Uses {
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() == pass.PkgPath {
			continue
		}
		if fix, ok := targets[[2]string{fn.Pkg().Path(), lockstate.FuncID(fn)}]; ok {
			pass.Reportf(id.Pos(), "%s.%s is deprecated: %s", fn.Pkg().Name(), fn.Name(), fix)
		}
	}
	return nil, nil
}

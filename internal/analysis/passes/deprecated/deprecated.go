// Package deprecated flags uses of the locking APIs this repository has
// superseded, with the replacement spelled out in the diagnostic:
//
//   - machlock.NewComplexLock  -> machlock.NewLock(machlock.WithSleep(...))
//   - cxlock.New / (*Lock).Init -> cxlock.NewWith(cxlock.Options{...})
//   - (*cxlock.Lock).SetSleepable -> construct via cxlock.NewWith
//   - cxlock.SetObserver -> cxlock.AddObserver / RemoveObserver
//
// Uses inside the package that declares the symbol are exempt (the
// deprecated shims have to call something).
package deprecated

import (
	"go/types"

	"machlock/internal/analysis/framework"
	"machlock/internal/analysis/lockstate"
)

var Analyzer = &framework.Analyzer{
	Name: "deprecated",
	Doc: "deprecated flags calls to superseded locking APIs (NewComplexLock, " +
		"cxlock.New/Init/SetSleepable, cxlock.SetObserver) and names the replacement.",
	Run: run,
}

const cxlockPath = "machlock/internal/core/cxlock"

// targets maps (declaring package, FuncID) to the suggested fix.
var targets = map[[2]string]string{
	{"machlock", "NewComplexLock"}:       "use machlock.NewLock (machlock.WithSleep() for canSleep=true) instead",
	{cxlockPath, "New"}:                  "use cxlock.NewWith(cxlock.Options{Sleep: canSleep}) instead",
	{cxlockPath, "(*Lock).Init"}:         "use (*Lock).InitWith(cxlock.Options{...}) instead",
	{cxlockPath, "(*Lock).SetSleepable"}: "set Sleep up front via cxlock.NewWith(cxlock.Options{...}); mutating it after construction races with waiters",
	{cxlockPath, "SetObserver"}:          "use cxlock.AddObserver/RemoveObserver so multiple observers can coexist instead of silently evicting one another",
}

func run(pass *framework.Pass) (any, error) {
	for id, obj := range pass.TypesInfo.Uses {
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() == pass.PkgPath {
			continue
		}
		if fix, ok := targets[[2]string{fn.Pkg().Path(), lockstate.FuncID(fn)}]; ok {
			pass.Reportf(id.Pos(), "%s.%s is deprecated: %s", fn.Pkg().Name(), fn.Name(), fix)
		}
	}
	return nil, nil
}

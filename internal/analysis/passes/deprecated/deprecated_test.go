package deprecated_test

import (
	"testing"

	"machlock/internal/analysis/framework/analysistest"
	"machlock/internal/analysis/passes/deprecated"
)

func TestDeprecated(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), deprecated.Analyzer, "deprecated")
}

// Package atomicity generalizes the deactivation-recheck rule from
// deactivatable objects (refdiscipline's territory) to ordinary locked
// state: a function that drops a lock and takes it again has published an
// atomicity hole, and anything it learned under the first hold is
// unreliable under the second.
//
//  1. Stale loads: a value loaded from the protected structure while the
//     lock was held is stale after an unlock/relock of that same lock and
//     must be re-read under the new hold.
//  2. Check-then-act: a boolean gate field tested under the first hold
//     (an if-guard like pset's `draining` gate) does not authorize
//     mutating the structure after the relock; the gate must be re-read
//     first, because a competing thread may have flipped it in the
//     window. Only boolean fields are gates — structural conditions like
//     `len(s.procs) == 0` govern the iteration that re-checks them. The
//     paper's customized-lock protocol is sanctioned: a function that
//     sets an in-progress boolean on the structure under the first hold
//     has claimed the gate and owns the window.
//
// Both rules apply to the non-object locking vocabulary (splock wrappers,
// cxlock, machlock interfaces); windows on object.Object holds are
// refdiscipline's, which additionally demands a reference across them.
package atomicity

import (
	"go/ast"
	"go/token"
	"go/types"

	"machlock/internal/analysis/framework"
	"machlock/internal/analysis/lockstate"
)

var Analyzer = &framework.Analyzer{
	Name: "atomicity",
	Doc: "atomicity reports check-then-act races across an unlock/relock " +
		"window of the same lock: values loaded under the first hold that are " +
		"reused after the relock, and if-guards tested under the first hold " +
		"whose structure is mutated after the relock without re-checking.",
	Run: run,
}

func run(pass *framework.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil, nil
}

// window is one unlock→relock span of a single lock key within a
// function. firstAcq is the first in-function acquisition of that lock
// (NoPos for lock-handoff callees that release a hold they never took).
type window struct {
	root     types.Object // receiver variable of the lock expression
	key      string       // lock-instance key ("s.members", "z.lock")
	firstAcq token.Pos
	unlock   token.Pos
	relock   token.Pos
}

// fieldLoad records "v := x.field" (root x) for the staleness rule.
type fieldLoad struct {
	root types.Object
	pos  token.Pos
}

// guard records a field read inside an if condition, for check-then-act:
// root.field was tested at pos.
type guard struct {
	root  types.Object
	field types.Object
	pos   token.Pos
}

// fieldWrite records a direct assignment through root.field at pos.
// boolField marks gate writes (in-progress/state flags).
type fieldWrite struct {
	root      types.Object
	pos       token.Pos
	boolField bool
}

func checkFunc(pass *framework.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo

	// Window pairing per lock key: each release records the most recent
	// unlock, and the next acquisition of the same key closes a window
	// against it. Pairing against the LAST unlock (not the first) matters
	// when a back-out branch releases early and returns: the window that
	// reaches the relock is the fall-through path's, and that is the one
	// whose hold the guard must be re-established under.
	type keyState struct {
		root       types.Object
		firstAcq   token.Pos
		lastUnlock token.Pos
	}
	keys := map[string]*keyState{}
	var open []*window

	w := &lockstate.Walker{
		Info: info,
		Hooks: lockstate.Hooks{
			Acquire: func(op lockstate.Op, _ []lockstate.Held) {
				if op.IsObject || op.Key == "" {
					return
				}
				ks, ok := keys[op.Key]
				if !ok {
					keys[op.Key] = &keyState{root: op.Root, firstAcq: op.Call.Pos()}
					return
				}
				if ks.lastUnlock != token.NoPos {
					open = append(open, &window{
						root: ks.root, key: op.Key, firstAcq: ks.firstAcq,
						unlock: ks.lastUnlock, relock: op.Call.Pos(),
					})
					ks.lastUnlock = token.NoPos
				}
			},
			Release: func(op lockstate.Op) {
				if op.IsObject || op.Kind != lockstate.OpRelease || op.Key == "" {
					return
				}
				ks, ok := keys[op.Key]
				if !ok {
					// Lock-handoff: releasing a hold the caller passed in.
					ks = &keyState{root: op.Root}
					keys[op.Key] = ks
				}
				ks.lastUnlock = op.Call.Pos()
			},
		},
	}
	if !w.WalkFunc(fd.Body) {
		return // goto: control flow too irregular to judge
	}

	var wins []*window
	for _, win := range open {
		if win.root != nil {
			wins = append(wins, win)
		}
	}
	if len(wins) == 0 {
		return
	}
	open = wins

	loads, guards, writes, rereads, breaks := prescan(info, fd.Body)

	// Rule 1 — stale loads: v was loaded from win.root under the first
	// hold and is used after the relock. Last-wins load tracking means a
	// re-read after the relock self-suppresses (the load entry moves past
	// the window).
	for v, ld := range loads {
		for _, win := range open {
			if ld.root != win.root {
				continue
			}
			if !inWindowPrefix(ld.pos, win) {
				continue
			}
			use := firstUseAfter(info, fd.Body, v, win.relock)
			if use == token.NoPos {
				continue
			}
			pass.Reportf(use,
				"%s was loaded from %s while %s was held, but the lock was dropped and reacquired; the value is stale under the new hold — re-read it after relocking",
				v.Name(), ld.root.Name(), win.key)
			break
		}
	}

	// Rule 2 — check-then-act: an if-guard tested root.field under the
	// first hold, and the structure is written after the relock without
	// re-reading that field under the new hold. Sanctioned escapes:
	//   - a boolean field written on the root under the first hold is a
	//     claimed in-progress flag (the customized-lock protocol) and
	//     privatizes the whole window;
	//   - writes to boolean fields are gate updates, not acts;
	//   - a continue/break/return between the relock and the write means
	//     the two are not straight-line (wait loops relock and loop back
	//     to re-run the guards).
	for _, g := range guards {
		for _, win := range open {
			if g.root != win.root || !inWindowPrefix(g.pos, win) {
				continue
			}
			if claimsGate(writes, win) {
				continue
			}
			for _, fw := range writes {
				if fw.root != g.root || fw.pos <= win.relock || fw.boolField {
					continue
				}
				if rereadBetween(rereads, g.field, win.relock, fw.pos) {
					continue
				}
				if anyPosBetween(breaks, win.relock, fw.pos) {
					continue
				}
				pass.Reportf(fw.pos,
					"%s.%s was checked while %s was held, but the lock was dropped and reacquired before this write; the guard no longer holds — re-check %s.%s under the new hold",
					g.root.Name(), g.field.Name(), win.key, g.root.Name(), g.field.Name())
				break
			}
		}
	}
}

// claimsGate reports whether the function wrote a boolean field on the
// window's root under the first hold — the customized-lock in-progress
// claim that makes the unlock/relock window private.
func claimsGate(writes []fieldWrite, win *window) bool {
	for _, fw := range writes {
		if fw.boolField && fw.root == win.root && inWindowPrefix(fw.pos, win) {
			return true
		}
	}
	return false
}

// anyPosBetween reports whether any position in ps falls in (lo, hi).
func anyPosBetween(ps []token.Pos, lo, hi token.Pos) bool {
	for _, p := range ps {
		if p > lo && p < hi {
			return true
		}
	}
	return false
}

// inWindowPrefix reports whether pos falls inside the first hold: after
// the window's in-function acquisition (when there is one) and before its
// unlock.
func inWindowPrefix(pos token.Pos, win *window) bool {
	if pos >= win.unlock {
		return false
	}
	return win.firstAcq == token.NoPos || pos > win.firstAcq
}

// prescan collects, in one pass over the body: last-wins field loads
// (v := x.field), if-condition field reads (guards), direct field writes
// (x.field = ...), every field-read position (for recheck detection), and
// the positions of continue/break/return statements (straight-line
// detection for rule 2).
func prescan(info *types.Info, body *ast.BlockStmt) (map[types.Object]fieldLoad, []guard, []fieldWrite, map[types.Object][]token.Pos, []token.Pos) {
	loads := map[types.Object]fieldLoad{}
	var guards []guard
	var writes []fieldWrite
	rereads := map[types.Object][]token.Pos{}
	var breaks []token.Pos

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // separate frame; its state is its own problem
		case *ast.ReturnStmt:
			breaks = append(breaks, n.Pos())
		case *ast.BranchStmt:
			if n.Tok != token.GOTO {
				breaks = append(breaks, n.Pos())
			}
		case *ast.SelectorExpr:
			if fobj, ok := info.Uses[n.Sel].(*types.Var); ok && fobj.IsField() {
				rereads[fobj] = append(rereads[fobj], n.Sel.Pos())
			}
		case *ast.IfStmt:
			collectGuards(info, n.Cond, &guards)
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
					if root := lockstate.RootObject(info, sel.X); root != nil {
						writes = append(writes, fieldWrite{
							root: root, pos: lhs.Pos(),
							boolField: isBoolField(info, sel),
						})
					}
					continue
				}
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" || len(n.Lhs) != len(n.Rhs) {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj == nil {
					continue
				}
				if sel, ok := ast.Unparen(n.Rhs[i]).(*ast.SelectorExpr); ok {
					if root := lockstate.RootObject(info, sel.X); root != nil && root != obj {
						loads[obj] = fieldLoad{root: root, pos: n.Pos()}
					}
				}
			}
		case *ast.IncDecStmt:
			if sel, ok := ast.Unparen(n.X).(*ast.SelectorExpr); ok {
				if root := lockstate.RootObject(info, sel.X); root != nil {
					writes = append(writes, fieldWrite{root: root, pos: n.Pos()})
				}
			}
		}
		return true
	})
	return loads, guards, writes, rereads, breaks
}

// isBoolField reports whether sel resolves to a boolean struct field.
func isBoolField(info *types.Info, sel *ast.SelectorExpr) bool {
	fobj, ok := info.Uses[sel.Sel].(*types.Var)
	if !ok || !fobj.IsField() {
		return false
	}
	b, ok := fobj.Type().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Bool
}

// collectGuards records every boolean gate field read inside an if
// condition. Only if conditions count: for-loop conditions re-test on
// every iteration by construction (the spin/relock pattern). Only boolean
// fields count: they are the state gates (draining, active, wired) whose
// check authorizes the act; structural reads like len(s.procs) are the
// loop bookkeeping around them.
func collectGuards(info *types.Info, cond ast.Expr, out *[]guard) {
	ast.Inspect(cond, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fobj, ok := info.Uses[sel.Sel].(*types.Var)
		if !ok || !fobj.IsField() {
			return true
		}
		if b, ok := fobj.Type().Underlying().(*types.Basic); !ok || b.Kind() != types.Bool {
			return true
		}
		if root := lockstate.RootObject(info, sel.X); root != nil {
			*out = append(*out, guard{root: root, field: fobj, pos: sel.Pos()})
		}
		return true
	})
}

// rereadBetween reports whether field was read anywhere in (lo, hi) —
// the recheck that legitimizes acting on an old guard.
func rereadBetween(rereads map[types.Object][]token.Pos, field types.Object, lo, hi token.Pos) bool {
	for _, p := range rereads[field] {
		if p > lo && p < hi {
			return true
		}
	}
	return false
}

// firstUseAfter returns the position of the first use of v after pos.
func firstUseAfter(info *types.Info, body *ast.BlockStmt, v types.Object, pos token.Pos) token.Pos {
	first := token.NoPos
	ast.Inspect(body, func(n ast.Node) bool {
		if first != token.NoPos {
			return false
		}
		id, ok := n.(*ast.Ident)
		if ok && id.Pos() > pos && info.Uses[id] == v {
			first = id.Pos()
		}
		return first == token.NoPos
	})
	return first
}

package atomicity_test

import (
	"testing"

	"machlock/internal/analysis/framework/analysistest"
	"machlock/internal/analysis/passes/atomicity"
)

func TestAtomicity(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), atomicity.Analyzer, "atomicity")
}

// Package refdiscipline enforces the paper's reference-before-lock rules
// for deactivatable kernel objects (types embedding object.Object):
//
//  1. Reference to relock: a function that unlocks such an object and
//     later locks it again must hold its own reference across the window
//     (Reference/TakeRef/Clone before the unlock) or re-validate with
//     Active/CheckActive after relocking — otherwise the object may have
//     been deactivated and reused while unlocked.
//  2. No caching across unlock/relock: a value loaded from the object's
//     fields before the unlock is stale after the relock and must be
//     re-fetched (the deactivation-recheck rule).
//  3. Objects pulled out of shared containers (map/slice indexing) must
//     take a reference before their first Lock: the container's reference
//     is not the caller's.
package refdiscipline

import (
	"go/ast"
	"go/token"
	"go/types"

	"machlock/internal/analysis/framework"
	"machlock/internal/analysis/lockstate"
)

var Analyzer = &framework.Analyzer{
	Name: "refdiscipline",
	Doc: "refdiscipline reports locking a deactivatable object without a " +
		"reference (relock after unlock, or straight out of a shared container) " +
		"and reuse of values loaded before an unlock/relock window.",
	Run: run,
}

const objectPath = "machlock/internal/core/object"

// embedsObject reports whether t (or what it points to) is a struct that
// embeds object.Object, directly or through another embedded struct.
func embedsObject(t types.Type) bool {
	return embedsObject1(t, 0)
}

func embedsObject1(t types.Type, depth int) bool {
	if t == nil || depth > 3 {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	if n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == objectPath && n.Obj().Name() == "Object" {
		return true
	}
	st, ok := n.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Embedded() && embedsObject1(f.Type(), depth+1) {
			return true
		}
	}
	return false
}

func run(pass *framework.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil, nil
}

// fieldLoad records "v := obj.Field" for later staleness checks.
type fieldLoad struct {
	root types.Object // the object variable loaded from
	pos  token.Pos
}

func checkFunc(pass *framework.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo

	// Prescan: values loaded from deactivatable objects, and object
	// variables populated straight from an indexing expression.
	loads := map[types.Object]fieldLoad{}
	fromContainer := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if ok && id.Name == "_" {
				ok = false
			}
			if !ok {
				continue
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			if obj == nil {
				continue
			}
			switch rhs := ast.Unparen(as.Rhs[i]).(type) {
			case *ast.SelectorExpr:
				if root := lockstate.RootObject(info, rhs); root != nil &&
					root != obj && embedsObject(root.Type()) {
					loads[obj] = fieldLoad{root: root, pos: as.Pos()}
				}
			case *ast.IndexExpr:
				if embedsObject(obj.Type()) {
					fromContainer[obj] = true
				}
			}
		}
		return true
	})

	type window struct {
		unlock token.Pos
		relock token.Pos
	}
	const (
		stUntouched = iota
		stUnlocked
		stRelocked
	)
	phase := map[types.Object]int{}
	windows := map[types.Object]window{}
	refTaken := map[types.Object]bool{}
	type pendingRelock struct {
		pos  token.Pos
		root types.Object
		key  string
	}
	var relocks []pendingRelock

	w := &lockstate.Walker{
		Info: info,
		Hooks: lockstate.Hooks{
			Ref: func(op lockstate.Op, _ []lockstate.Held) {
				if op.Kind == lockstate.OpRefTake && op.Root != nil {
					refTaken[op.Root] = true
				}
			},
			Release: func(op lockstate.Op) {
				if !op.IsObject || op.Kind != lockstate.OpRelease || op.Root == nil {
					return
				}
				if phase[op.Root] == stUntouched {
					phase[op.Root] = stUnlocked
					win := windows[op.Root]
					win.unlock = op.Call.Pos()
					windows[op.Root] = win
				}
			},
			Acquire: func(op lockstate.Op, held []lockstate.Held) {
				if !op.IsObject || op.Root == nil {
					return
				}
				if fromContainer[op.Root] && !refTaken[op.Root] {
					delete(fromContainer, op.Root) // one report per variable
					pass.Reportf(op.Call.Pos(),
						"locking %s, which was taken from a shared container without a reference; Reference/TakeRef it first (the container's reference is not yours)",
						op.Key)
				}
				if phase[op.Root] == stUnlocked {
					phase[op.Root] = stRelocked
					win := windows[op.Root]
					win.relock = op.Call.Pos()
					windows[op.Root] = win
					if !refTaken[op.Root] {
						relocks = append(relocks, pendingRelock{
							pos: op.Call.Pos(), root: op.Root, key: op.Key,
						})
					}
				}
			},
		},
	}
	if !w.WalkFunc(fd.Body) {
		return // goto: control flow too irregular to judge
	}

	// Relock-without-reference, unless the code re-validates the object
	// after relocking (the deactivation-recheck idiom).
	for _, r := range relocks {
		if rechecksActive(info, fd.Body, r.root, r.pos) {
			continue
		}
		pass.Reportf(r.pos,
			"%s is relocked after an unlock without holding a new reference; the object may have been deactivated while unlocked — take a reference before unlocking, or recheck Active/CheckActive after relocking",
			r.key)
	}

	// Staleness: values loaded before the unlock, used after the relock.
	for v, ld := range loads {
		win, ok := windows[ld.root]
		if !ok || win.relock == token.NoPos || ld.pos >= win.unlock {
			continue
		}
		use := firstUseAfter(info, fd.Body, v, win.relock)
		if use == token.NoPos {
			continue
		}
		pass.Reportf(use,
			"%s was loaded from %s before its lock was dropped and reacquired; the value is stale after the relock — re-read it under the new hold",
			v.Name(), ld.root.Name())
	}
}

// rechecksActive reports whether root's Active or CheckActive method is
// called after pos.
func rechecksActive(info *types.Info, body *ast.BlockStmt, root types.Object, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= pos {
			return true
		}
		fn, recv := lockstate.CalleeFunc(info, call)
		if fn == nil || recv == nil {
			return true
		}
		if fn.Name() != "Active" && fn.Name() != "CheckActive" {
			return true
		}
		if lockstate.RootObject(info, recv) == root {
			found = true
		}
		return !found
	})
	return found
}

// firstUseAfter returns the position of the first use of v after pos.
func firstUseAfter(info *types.Info, body *ast.BlockStmt, v types.Object, pos token.Pos) token.Pos {
	first := token.NoPos
	ast.Inspect(body, func(n ast.Node) bool {
		if first != token.NoPos {
			return false
		}
		id, ok := n.(*ast.Ident)
		if ok && id.Pos() > pos && info.Uses[id] == v {
			first = id.Pos()
		}
		return first == token.NoPos
	})
	return first
}

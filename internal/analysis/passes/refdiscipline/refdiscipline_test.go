package refdiscipline_test

import (
	"testing"

	"machlock/internal/analysis/framework/analysistest"
	"machlock/internal/analysis/passes/refdiscipline"
)

func TestRefdiscipline(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), refdiscipline.Analyzer, "refdiscipline")
}

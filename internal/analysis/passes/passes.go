// Package passes aggregates the machvet analyzers in their canonical
// order. The order matters only for deterministic output; diagnostics are
// position-sorted per package anyway.
package passes

import (
	"machlock/internal/analysis/framework"
	"machlock/internal/analysis/passes/atomicity"
	"machlock/internal/analysis/passes/deprecated"
	"machlock/internal/analysis/passes/holdblock"
	"machlock/internal/analysis/passes/lockorder"
	"machlock/internal/analysis/passes/refdiscipline"
	"machlock/internal/analysis/passes/sleepwake"
	"machlock/internal/analysis/passes/unlockpath"
)

// All returns the full machvet suite.
func All() []*framework.Analyzer {
	return []*framework.Analyzer{
		holdblock.Analyzer,
		lockorder.Analyzer,
		unlockpath.Analyzer,
		refdiscipline.Analyzer,
		atomicity.Analyzer,
		sleepwake.Analyzer,
		deprecated.Analyzer,
	}
}

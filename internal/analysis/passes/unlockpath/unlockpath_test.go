package unlockpath_test

import (
	"testing"

	"machlock/internal/analysis/framework/analysistest"
	"machlock/internal/analysis/passes/unlockpath"
)

func TestUnlockpath(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), unlockpath.Analyzer, "unlockpath")
}

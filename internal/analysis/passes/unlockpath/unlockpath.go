// Package unlockpath enforces the balanced-unlock rule: every lock
// acquisition must be released on every path out of the acquiring
// function, unless the acquisition carries a //machlock:holds annotation
// declaring that the hold intentionally escapes (lock wrapper methods,
// lock-handoff protocols such as cxlock's wait() reacquiring the
// interlock for its caller).
//
// unlockpath also owns annotation hygiene: a malformed //machlock: or
// //machvet: comment would otherwise fail open silently, so bogus
// annotations are themselves diagnostics.
package unlockpath

import (
	"go/ast"
	"go/token"

	"machlock/internal/analysis/framework"
	"machlock/internal/analysis/lockstate"
)

var Analyzer = &framework.Analyzer{
	Name: "unlockpath",
	Doc: "unlockpath reports lock acquisitions that can reach a return while " +
		"still held without a //machlock:holds annotation, and malformed " +
		"machlock/machvet annotations.",
	Run: run,
}

func run(pass *framework.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if ann, ok := framework.ParseAnnotation(c.Text); ok && ann.Bogus != "" {
					pass.Reportf(c.Pos(), "bad annotation: %s", ann.Bogus)
				}
			}
		}
	}

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil, nil
}

func checkFunc(pass *framework.Pass, fd *ast.FuncDecl) {
	// One report per acquisition, even when several exits leak it.
	reported := map[token.Pos]bool{}
	w := &lockstate.Walker{
		Info: pass.TypesInfo,
		Hooks: lockstate.Hooks{
			Exit: func(pos token.Pos, held []lockstate.Held) {
				for _, h := range held {
					if reported[h.Pos] || pass.HoldsAt(h.Pos) {
						continue
					}
					reported[h.Pos] = true
					pass.Reportf(h.Pos,
						"%s %s acquired here is still held when %s returns; release it on every path, or annotate the acquisition with //machlock:holds if the hold intentionally escapes",
						h.Op.Class, h.Op.Key, fd.Name.Name)
				}
			},
		},
	}
	w.WalkFunc(fd.Body)
}

// Package graph emits the static half of the machlock-lockgraph/v1
// cross-check: a whole-program graph of ordered lock-class acquisitions
// (held -> acquired) proven by the lockstate walker, interprocedurally.
//
// Per function it records three things:
//
//   - direct edges: an acquisition performed while other classes are held;
//   - a transitive acquire set: every class the function (or anything it
//     calls, including its function literals) can acquire — propagated
//     intra-package by fixpoint and cross-package through package facts;
//   - call-site edges: for each call made while holding locks, one edge
//     from each held class to each class in the callee's transitive set.
//
// Object reference ops that lock internally (object.Object TakeRef and
// Release) contribute an ephemeral acquisition of the object's class.
// Function literals are walked as their own frames (a closure body may
// run under the locks of whoever invokes it, which the dynamic collector
// observes per-goroutine), and their acquire sets fold into the enclosing
// function's summary — the sound over-approximation for closures invoked
// synchronously by callees (unlock closures, pager fetchers).
//
// The pass reports nothing; `machvet -graph` drains the process-wide
// accumulator with Snapshot after the analyzers run.
package graph

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strconv"
	"sync"

	"machlock/internal/analysis/framework"
	"machlock/internal/analysis/lockstate"
	"machlock/internal/lockgraph"
)

var Analyzer = &framework.Analyzer{
	Name: "graph",
	Doc: "graph accumulates the whole-program lock-class acquisition graph " +
		"(held -> acquired edges with proving sites) for machvet -graph; it " +
		"reports no diagnostics of its own.",
	Run: run,
}

// AcqFlags qualifies one class in a transitive acquire set.
type AcqFlags struct {
	// MayBlock: the acquisition can sleep (complex-lock operations).
	MayBlock bool
	// TryOnly: every path to this acquisition goes through a try/backout
	// acquire, the discipline's sanctioned out-of-order escape.
	TryOnly bool
}

// Fact is the per-package export: each declared function's transitive
// acquire set (class key -> flags), keyed by lockstate.FuncID. Only
// functions that can acquire something are listed.
type Fact map[string]map[string]AcqFlags

// collector is the process-wide edge accumulator. machvet runs all
// packages in one process, so the graph pass folds every package's edges
// here; Snapshot renders and Reset clears.
var collector struct {
	mu      sync.Mutex
	edges   map[[2]string]*edgeAgg
	classes map[string]bool
}

type edgeAgg struct {
	mayBlock bool
	tryOnly  bool
	sites    []string
}

const maxSitesPerEdge = 8

// Reset clears the accumulator (call before a -graph run).
func Reset() {
	collector.mu.Lock()
	defer collector.mu.Unlock()
	collector.edges = nil
	collector.classes = nil
}

func addEdge(from, to string, mayBlock, tryOnly bool, site string) {
	collector.mu.Lock()
	defer collector.mu.Unlock()
	if collector.edges == nil {
		collector.edges = map[[2]string]*edgeAgg{}
		collector.classes = map[string]bool{}
	}
	collector.classes[from] = true
	collector.classes[to] = true
	k := [2]string{from, to}
	e, ok := collector.edges[k]
	if !ok {
		e = &edgeAgg{tryOnly: true}
		collector.edges[k] = e
	}
	e.mayBlock = e.mayBlock || mayBlock
	e.tryOnly = e.tryOnly && tryOnly
	if len(e.sites) < maxSitesPerEdge {
		for _, s := range e.sites {
			if s == site {
				return
			}
		}
		e.sites = append(e.sites, site)
	}
}

// Snapshot renders the accumulated edges as a validated static graph,
// canonicalizing class names (lockgraph.CanonicalStatic): runtime-traced
// classes take their trace name and Observable=true; untraced classes
// keep their machvet key with Observable=false; local classes never reach
// the accumulator.
func Snapshot(generator string) *lockgraph.Graph {
	collector.mu.Lock()
	defer collector.mu.Unlock()
	g := &lockgraph.Graph{
		Schema:    lockgraph.Schema,
		Source:    lockgraph.SourceStatic,
		Generator: generator,
	}
	canon := map[string]string{}
	nodeSeen := map[string]bool{}
	for cls := range collector.classes {
		name, obs := lockgraph.CanonicalStatic(cls)
		canon[cls] = name
		if name == "" || nodeSeen[name] {
			continue
		}
		nodeSeen[name] = true
		g.Nodes = append(g.Nodes, lockgraph.Node{
			Class:      name,
			Kind:       lockgraph.KindOf(name),
			Observable: obs,
		})
	}
	merged := map[[2]string]*lockgraph.Edge{}
	for k, e := range collector.edges {
		from, to := canon[k[0]], canon[k[1]]
		if from == "" || to == "" || from == to {
			continue
		}
		mk := [2]string{from, to}
		dst, ok := merged[mk]
		if !ok {
			dst = &lockgraph.Edge{From: from, To: to, MayBlock: e.mayBlock, TryOnly: e.tryOnly}
			merged[mk] = dst
		} else {
			dst.MayBlock = dst.MayBlock || e.mayBlock
			dst.TryOnly = dst.TryOnly && e.tryOnly
		}
		for _, s := range e.sites {
			if len(dst.Sites) < maxSitesPerEdge {
				dst.Sites = append(dst.Sites, s)
			}
		}
	}
	for _, e := range merged {
		g.Edges = append(g.Edges, *e)
	}
	g.Normalize()
	return g
}

// funcRecord is the per-function walk result.
type funcRecord struct {
	fn     *types.Func
	direct map[string]AcqFlags // classes acquired in this body (and its FuncLits)
	calls  []callRecord
}

type callRecord struct {
	callee *types.Func
	held   []heldClass
	pos    token.Pos
}

type heldClass struct {
	class   string
	fromTry bool
}

func run(pass *framework.Pass) (any, error) {
	// Imported transitive acquire sets, resolvable by *types.Func.
	extern := func(fn *types.Func) (map[string]AcqFlags, bool) {
		if fn.Pkg() == nil || fn.Pkg() == pass.Pkg {
			return nil, false
		}
		v, ok := pass.ImportPackageFact(fn.Pkg().Path())
		if !ok {
			return nil, false
		}
		f, ok := v.(Fact)
		if !ok {
			return nil, false
		}
		acq, ok := f[lockstate.FuncID(fn)]
		return acq, ok
	}

	var records []*funcRecord
	byFunc := map[*types.Func]*funcRecord{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			rec := &funcRecord{fn: fn, direct: map[string]AcqFlags{}}
			walkBody(pass, fd.Body, rec)
			// Function literals are separate frames: direct edges use the
			// literal's own held evolution, but the acquire set folds into
			// the enclosing function's summary.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					walkBody(pass, fl.Body, rec)
					return false
				}
				return true
			})
			records = append(records, rec)
			byFunc[fn] = rec
		}
	}

	// Fixpoint: fold callees' transitive sets into each caller until the
	// package stabilizes. Cross-package callees come from facts (analyzed
	// first, in dependency order); same-package callees from the evolving
	// records.
	trans := map[*types.Func]map[string]AcqFlags{}
	for _, rec := range records {
		t := map[string]AcqFlags{}
		for cls, fl := range rec.direct {
			t[cls] = fl
		}
		trans[rec.fn] = t
	}
	for changed := true; changed; {
		changed = false
		for _, rec := range records {
			t := trans[rec.fn]
			for _, call := range rec.calls {
				var acq map[string]AcqFlags
				if local, ok := byFunc[call.callee]; ok {
					acq = trans[local.fn]
				} else if ext, ok := extern(call.callee); ok {
					acq = ext
				}
				for cls, fl := range acq {
					if mergeFlags(t, cls, fl) {
						changed = true
					}
				}
			}
		}
	}

	// Call-site edges: each held class at a call reaches everything the
	// callee can transitively acquire.
	for _, rec := range records {
		for _, call := range rec.calls {
			var acq map[string]AcqFlags
			if local, ok := byFunc[call.callee]; ok {
				acq = trans[local.fn]
			} else if ext, ok := extern(call.callee); ok {
				acq = ext
			}
			if len(acq) == 0 {
				continue
			}
			site := renderSite(pass, call.pos)
			for _, h := range call.held {
				for cls, fl := range acq {
					if cls == h.class {
						continue
					}
					addEdge(h.class, cls, fl.MayBlock, fl.TryOnly || h.fromTry, site)
				}
			}
		}
	}

	fact := Fact{}
	for _, rec := range records {
		if t := trans[rec.fn]; len(t) > 0 {
			fact[lockstate.FuncID(rec.fn)] = t
		}
	}
	pass.ExportPackageFact(fact)
	return nil, nil
}

// mergeFlags folds one acquired class into a set; reports whether the set
// changed (new class, newly blocking, or no longer try-only).
func mergeFlags(t map[string]AcqFlags, cls string, fl AcqFlags) bool {
	old, ok := t[cls]
	if !ok {
		t[cls] = fl
		return true
	}
	merged := AcqFlags{MayBlock: old.MayBlock || fl.MayBlock, TryOnly: old.TryOnly && fl.TryOnly}
	if merged != old {
		t[cls] = merged
		return true
	}
	return false
}

// walkBody walks one frame (function body or function literal body),
// recording direct acquisitions, ephemeral object-ref acquisitions, and
// calls with their held context into rec.
func walkBody(pass *framework.Pass, body *ast.BlockStmt, rec *funcRecord) {
	acquireAt := func(cls string, mayBlock, tryOnly bool, held []lockstate.Held, pos token.Pos) {
		if !usableClass(cls) {
			return
		}
		mergeFlags(rec.direct, cls, AcqFlags{MayBlock: mayBlock, TryOnly: tryOnly})
		site := renderSite(pass, pos)
		for _, h := range held {
			if !usableClass(h.Op.ClassKey) || h.Op.ClassKey == cls {
				continue
			}
			addEdge(h.Op.ClassKey, cls, mayBlock, tryOnly || h.Op.FromTry, site)
		}
	}
	w := &lockstate.Walker{
		Info: pass.TypesInfo,
		Hooks: lockstate.Hooks{
			Acquire: func(op lockstate.Op, held []lockstate.Held) {
				acquireAt(op.ClassKey, op.MayBlock, op.FromTry, held, op.Call.Pos())
			},
			Ref: func(op lockstate.Op, held []lockstate.Held) {
				// object.Object's TakeRef and Release lock the object
				// internally; Reference and the bare refcount ops do not.
				if op.IsObject && (op.FuncName == "TakeRef" || op.FuncName == "Release") {
					acquireAt(op.ClassKey, false, false, held, op.Call.Pos())
				}
			},
			CallHeld: func(call *ast.CallExpr, held []lockstate.Held) {
				if len(held) == 0 {
					return
				}
				callee, _ := lockstate.CalleeFunc(pass.TypesInfo, call)
				if callee == nil {
					return
				}
				var hc []heldClass
				for _, h := range held {
					if usableClass(h.Op.ClassKey) {
						hc = append(hc, heldClass{class: h.Op.ClassKey, fromTry: h.Op.FromTry})
					}
				}
				if len(hc) == 0 {
					return
				}
				rec.calls = append(rec.calls, callRecord{callee: callee, held: hc, pos: call.Pos()})
			},
		},
	}
	w.WalkFunc(body)
}

// usableClass drops classes that cannot name a graph node: locals are
// position-unique by construction.
func usableClass(cls string) bool {
	if cls == "" {
		return false
	}
	name, _ := lockgraph.CanonicalStatic(cls)
	return name != ""
}

// renderSite renders a position as "pkgpath/file.go:line" — stable across
// checkouts (no absolute paths) for committed baselines and CI artifacts.
func renderSite(pass *framework.Pass, pos token.Pos) string {
	p := pass.Fset.Position(pos)
	return pass.Pkg.Path() + "/" + filepath.Base(p.Filename) + ":" + strconv.Itoa(p.Line)
}

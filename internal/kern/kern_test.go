package kern

import (
	"errors"
	"sync"
	"testing"

	"machlock/internal/ipc"
	"machlock/internal/sched"
	"machlock/internal/vm"
)

func newTask(name string) *Task {
	return NewTask(name, vm.NewPool(16))
}

func TestTaskCreation(t *testing.T) {
	task := newTask("init")
	if task.Name() != "init" {
		t.Fatalf("name = %q", task.Name())
	}
	if task.SelfPort() == nil || task.Map() == nil || task.Space() == nil {
		t.Fatal("task missing resources")
	}
	// The self port translates back to the task.
	kind, obj, err := task.SelfPort().KObject()
	if err != nil || kind != ipc.KindTask || obj != task {
		t.Fatalf("translation = %v %v %v", kind, obj, err)
	}
	obj.Release(nil)
}

func TestCreateThread(t *testing.T) {
	task := newTask("t")
	th, err := task.CreateThread("worker")
	if err != nil {
		t.Fatal(err)
	}
	if th.Task() != task {
		t.Fatal("thread's task pointer wrong")
	}
	if task.ThreadCount() != 1 {
		t.Fatalf("thread count = %d", task.ThreadCount())
	}
	if th.Sched() == nil {
		t.Fatal("no schedulable identity")
	}
	kind, obj, err := th.SelfPort().KObject()
	if err != nil || kind != ipc.KindThread || obj != th {
		t.Fatalf("thread port translation = %v %v %v", kind, obj, err)
	}
	obj.Release(nil)
}

func TestThreadsSnapshotClonesRefs(t *testing.T) {
	task := newTask("t")
	a, _ := task.CreateThread("a")
	b, _ := task.CreateThread("b")
	snap := task.Threads()
	if len(snap) != 2 {
		t.Fatalf("snapshot = %d", len(snap))
	}
	for _, th := range snap {
		th.Lock()
		if th.Refs() < 4 { // creator + port + list + snapshot clone
			t.Fatalf("thread %s refs = %d", th.Name(), th.Refs())
		}
		th.Unlock()
		th.Release(nil)
	}
	_, _ = a, b
}

func TestSuspendResume(t *testing.T) {
	task := newTask("t")
	if err := task.Suspend(); err != nil {
		t.Fatal(err)
	}
	if err := task.Suspend(); err != nil {
		t.Fatal(err)
	}
	if task.SuspendCount() != 2 {
		t.Fatalf("suspend count = %d", task.SuspendCount())
	}
	task.Resume()
	task.Resume()
	if err := task.Resume(); err == nil {
		t.Fatal("resume below zero accepted")
	}
}

func TestPortTranslationParallelToTaskOps(t *testing.T) {
	// The two-lock design: port translations (ipc lock) proceed while
	// task operations (task lock) run. We can't easily prove parallelism
	// deterministically, but we can prove independence: translation works
	// while the task lock is held.
	task := newTask("t")
	p := ipc.NewPort("svc")
	n := task.InsertPort(nil, p)

	task.Lock() // task lock held...
	got, err := task.TranslatePort(nil, n)
	task.Unlock()
	if err != nil || got != p {
		t.Fatalf("translate under task lock = %v %v", got, err)
	}
	got.Release(nil)
	p.Destroy()
}

func TestTranslateBadName(t *testing.T) {
	task := newTask("t")
	if _, err := task.TranslatePort(nil, 999); !errors.Is(err, ipc.ErrBadName) {
		t.Fatalf("err = %v", err)
	}
}

func TestThreadTerminate(t *testing.T) {
	task := newTask("t")
	th, _ := task.CreateThread("w")
	// Hold references, as any code operating on the objects must; without
	// them the structures are legitimately gone after terminate.
	th.TakeRef()
	port := th.SelfPort()
	port.TakeRef()

	if err := th.Terminate(nil); err != nil {
		t.Fatal(err)
	}
	if task.ThreadCount() != 0 {
		t.Fatal("thread still in task list")
	}
	// The thread's port no longer translates (it is dead).
	if _, _, err := port.KObject(); err == nil {
		t.Fatal("port still translates after terminate")
	}
	// Double-terminate loses cleanly.
	if err := th.Terminate(nil); !errors.Is(err, ErrTerminated) {
		t.Fatalf("second terminate = %v", err)
	}
	port.Release(nil)
	th.Release(nil)
	if !th.Destroyed() {
		t.Fatal("thread survived final release")
	}
}

func TestThreadStructureSurvivesWhileReferenced(t *testing.T) {
	task := newTask("t")
	th, _ := task.CreateThread("w")
	th.TakeRef() // our hold
	if err := th.Terminate(nil); err != nil {
		t.Fatal(err)
	}
	// Deactivated but alive: we can lock and observe.
	th.Lock()
	if th.Active() {
		t.Fatal("thread active after terminate")
	}
	th.Unlock()
	th.Release(nil)
	if !th.Destroyed() {
		t.Fatal("thread not destroyed after last release")
	}
}

func TestCreateThreadOnTerminatedTaskFails(t *testing.T) {
	task := newTask("t")
	task.TakeRef() // our hold: the structure must outlive termination
	cur := sched.New("killer")
	if err := task.Terminate(cur); err != nil {
		t.Fatal(err)
	}
	if _, err := task.CreateThread("late"); !errors.Is(err, ErrTerminated) {
		t.Fatalf("create on dead task = %v", err)
	}
	task.Release(nil)
}

func TestTaskTerminateKillsThreads(t *testing.T) {
	task := newTask("t")
	task.TakeRef()
	defer task.Release(nil)
	var ths []*Thread
	for i := 0; i < 3; i++ {
		th, err := task.CreateThread("w")
		if err != nil {
			t.Fatal(err)
		}
		th.TakeRef() // keep structures observable
		ths = append(ths, th)
	}
	cur := sched.New("killer")
	if err := task.Terminate(cur); err != nil {
		t.Fatal(err)
	}
	for _, th := range ths {
		th.Lock()
		if th.Active() {
			t.Fatal("thread survived task termination")
		}
		th.Unlock()
		th.Release(nil)
	}
	if err := task.Terminate(cur); !errors.Is(err, ErrTerminated) {
		t.Fatalf("second task terminate = %v", err)
	}
}

func TestTaskTerminateReleasesEverything(t *testing.T) {
	pool := vm.NewPool(8)
	task := NewTask("t", pool)
	cur := sched.New("cur")
	// Give the task some memory so teardown has something to free.
	obj := vm.NewObject(pool, 4)
	if err := task.Map().Allocate(cur, 0, 4, obj, 0); err != nil {
		t.Fatal(err)
	}
	obj.Release(cur) // map entry keeps its own reference
	for va := uint64(0); va < 4; va++ {
		if err := task.Map().Fault(cur, va, false); err != nil {
			t.Fatal(err)
		}
	}
	if pool.FreeCount() != 4 {
		t.Fatalf("setup free = %d", pool.FreeCount())
	}
	task.TakeRef() // hold so we can observe destruction explicitly
	if err := task.Terminate(cur); err != nil {
		t.Fatal(err)
	}
	if pool.FreeCount() != 8 {
		t.Fatalf("pages not freed by task teardown: free = %d", pool.FreeCount())
	}
	task.Release(nil)
	if !task.Destroyed() {
		t.Fatal("task structure not destroyed after last reference")
	}
}

func TestConcurrentTerminationsOneWinner(t *testing.T) {
	task := newTask("t")
	for i := 0; i < 4; i++ {
		task.CreateThread("w")
	}
	task.TakeRef() // covers all racers' access to the structure
	const racers = 6
	wins := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cur := sched.New("killer")
			if task.Terminate(cur) == nil {
				mu.Lock()
				wins++
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	if wins != 1 {
		t.Fatalf("termination winners = %d, want 1", wins)
	}
	task.Release(nil)
}

func TestConcurrentCreateAndTerminate(t *testing.T) {
	task := newTask("t")
	task.TakeRef()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				th, err := task.CreateThread("w")
				if err != nil {
					return // task died; expected
				}
				th.Terminate(nil)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		cur := sched.New("killer")
		task.Terminate(cur)
	}()
	wg.Wait()
	if task.ThreadCount() != 0 {
		t.Fatalf("threads remain: %d", task.ThreadCount())
	}
	task.Release(nil)
}

package kern

import (
	"errors"

	"machlock/internal/ipc"
	"machlock/internal/mig"
)

// The thread interface: the operations user programs invoke on a thread's
// self port, mirroring the task interface. Suspend/resume manipulate the
// thread's suspend count under its object lock; terminate runs the
// Section 10 shutdown protocol.

// Thread interface operation numbers.
const (
	OpThreadInfo = iota + 200
	OpThreadSuspend
	OpThreadResume
	OpThreadTerminate
)

// ThreadInfoArgs requests thread information.
type ThreadInfoArgs struct{}

// ThreadInfoReply carries the thread's observable state.
type ThreadInfoReply struct {
	Name         string
	TaskName     string
	SuspendCount int
}

// ThreadSuspendArgs / ThreadSuspendReply wrap thread_suspend.
type ThreadSuspendArgs struct{}

// ThreadSuspendReply reports the new suspend count.
type ThreadSuspendReply struct{ SuspendCount int }

// ThreadResumeArgs / ThreadResumeReply wrap thread_resume.
type ThreadResumeArgs struct{}

// ThreadResumeReply reports the new suspend count.
type ThreadResumeReply struct{ SuspendCount int }

// ThreadTerminateArgs / ThreadTerminateReply wrap thread_terminate.
type ThreadTerminateArgs struct{}

// ThreadTerminateReply reports whether this call won the termination race.
type ThreadTerminateReply struct{ Won bool }

// Suspend increments the thread's suspend count.
func (th *Thread) Suspend() error {
	th.Lock()
	defer th.Unlock()
	if err := th.CheckActive(); err != nil {
		return ErrTerminated
	}
	th.suspend++
	return nil
}

// Resume decrements the thread's suspend count.
func (th *Thread) Resume() error {
	th.Lock()
	defer th.Unlock()
	if err := th.CheckActive(); err != nil {
		return ErrTerminated
	}
	if th.suspend == 0 {
		return errors.New("kern: resume of non-suspended thread")
	}
	th.suspend--
	return nil
}

// SuspendCount returns the thread's suspend count.
func (th *Thread) SuspendCount() int {
	th.Lock()
	defer th.Unlock()
	return th.suspend
}

// ThreadInterface builds the typed thread interface for dispatchers.
func ThreadInterface() *mig.Interface {
	iface := mig.NewInterface(ipc.KindThread)

	mig.Define(iface, OpThreadInfo, "thread_info",
		func(ctx *ipc.Context, obj ipc.KObject, a *ThreadInfoArgs) (*ThreadInfoReply, error) {
			th := obj.(*Thread)
			th.Lock()
			defer th.Unlock()
			if err := th.CheckActive(); err != nil {
				return nil, err
			}
			reply := &ThreadInfoReply{Name: th.Name(), SuspendCount: th.suspend}
			if th.task != nil {
				reply.TaskName = th.task.Name()
			}
			return reply, nil
		})

	mig.Define(iface, OpThreadSuspend, "thread_suspend",
		func(ctx *ipc.Context, obj ipc.KObject, a *ThreadSuspendArgs) (*ThreadSuspendReply, error) {
			th := obj.(*Thread)
			if err := th.Suspend(); err != nil {
				return nil, err
			}
			return &ThreadSuspendReply{SuspendCount: th.SuspendCount()}, nil
		})

	mig.Define(iface, OpThreadResume, "thread_resume",
		func(ctx *ipc.Context, obj ipc.KObject, a *ThreadResumeArgs) (*ThreadResumeReply, error) {
			th := obj.(*Thread)
			if err := th.Resume(); err != nil {
				return nil, err
			}
			return &ThreadResumeReply{SuspendCount: th.SuspendCount()}, nil
		})

	mig.Define(iface, OpThreadTerminate, "thread_terminate",
		func(ctx *ipc.Context, obj ipc.KObject, a *ThreadTerminateArgs) (*ThreadTerminateReply, error) {
			th := obj.(*Thread)
			err := th.Terminate(ctx.Thread)
			return &ThreadTerminateReply{Won: err == nil}, nil
		})

	return iface
}

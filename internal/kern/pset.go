package kern

import (
	"errors"
	"fmt"

	"machlock/internal/core/cxlock"
	"machlock/internal/core/object"
	"machlock/internal/hw"
	"machlock/internal/sched"
	"machlock/internal/trace"
)

// Observability classes for the processor-allocation subsystem.
var (
	classProcessor   = trace.NewClass("kern", "kern.processor", trace.KindObject)
	classPset        = trace.NewClass("kern", "kern.pset", trace.KindObject)
	classPsetMembers = trace.NewClass("kern", "kern.pset.members", trace.KindComplex)
	classAssign      = trace.NewClass("kern", "kern.host.assign", trace.KindComplex)
)

// Processor sets are the paper's cited example of a subsystem designed on
// top of its primitives after the fact: "The locking primitives have been
// extensively used in subsequently designed kernel subsystems (e.g.,
// processor allocation [3])." A processor set is a group of processors
// that tasks can be assigned to; processors and tasks migrate between sets
// under the set locks, and destroying a set migrates everything to the
// default set — another instance of the Section 10 active-termination
// shape.

// ErrDefaultSet is returned by operations forbidden on the default set.
var ErrDefaultSet = errors.New("kern: operation not allowed on the default processor set")

// Processor is the kernel object for one (simulated) CPU.
type Processor struct {
	object.Object
	cpu *hw.CPU
	set *ProcessorSet // current assignment; the pointer is a counted ref
}

// CPU returns the underlying simulated processor.
func (p *Processor) CPU() *hw.CPU { return p.cpu }

// AssignedSet returns the processor's current set (borrowed pointer,
// covered by the processor's reference to it).
func (p *Processor) AssignedSet() *ProcessorSet {
	p.Lock()
	defer p.Unlock()
	return p.set
}

// ProcessorSet is a named group of processors with assigned tasks.
//
// The membership slices live under their own reader-biased complex lock
// (members), separate from the object lock, so scheduler-style iteration
// over a set's processors and tasks scales with readers instead of
// serializing on the set's object lock. Lock order: object lock before
// members.
type ProcessorSet struct {
	object.Object
	host      *Host
	isDefault bool

	members cxlock.Lock
	procs   []*Processor
	tasks   []*Task
	// draining marks that Destroy has swept (or is sweeping) the task
	// list. Set and tested under members.Write: it is the liveness gate a
	// racing AssignTask re-checks once it wins the members lock, since the
	// object lock cannot be held across the (sleepable) members lock.
	draining bool
}

// Host owns the processor sets of one machine: the default set, the
// machine's processors, and the assignment arbitration lock. Processor
// reassignment locks two sets; instead of ordering set locks by address
// each time, the host serializes reassignments with a single assignment
// lock — the "order by type, and a designated arbiter above equal types"
// convention of Section 5 in its simplest form. The lock is a sleepable
// complex lock held in write mode: reassignment releases references and
// takes the members write lock, both of which may block, so a simple lock
// here would violate the no-blocking-while-held rule.
type Host struct {
	machine    *hw.Machine
	assignLock cxlock.Lock
	defaultSet *ProcessorSet
	procs      []*Processor
}

// NewHost builds the host state for a machine: a default processor set
// containing a Processor per simulated CPU.
func NewHost(m *hw.Machine) *Host {
	h := &Host{machine: m}
	h.assignLock.InitWith(cxlock.Options{
		Sleep: true, // reassignment drops references, which may block
		// Assignment holds are almost always short (relink two lists);
		// spin a bounded window before paying a block/wakeup pair.
		SpinPark: 64,
		Name:     "kern.host.assign",
		Class:    classAssign,
	})
	h.defaultSet = h.newSet("default", true)
	for i := 0; i < m.NCPU(); i++ {
		p := &Processor{cpu: m.CPU(i)}
		p.Init(fmt.Sprintf("cpu%d", i))
		p.SetClass(classProcessor)
		h.procs = append(h.procs, p)
		h.attach(p, h.defaultSet)
	}
	return h
}

func (h *Host) newSet(name string, isDefault bool) *ProcessorSet {
	s := &ProcessorSet{host: h, isDefault: isDefault}
	s.Init(name)
	s.SetClass(classPset)
	s.members.InitWith(cxlock.Options{
		ReaderBias: true, // iteration dominates; reassignment is rare
		Name:       "kern.pset.members",
		Class:      classPsetMembers,
	})
	return s
}

// DefaultSet returns the host's default processor set.
func (h *Host) DefaultSet() *ProcessorSet { return h.defaultSet }

// Processor returns processor i.
func (h *Host) Processor(i int) *Processor { return h.procs[i] }

// NewSet creates an empty, destroyable processor set.
func (h *Host) NewSet(name string) *ProcessorSet { return h.newSet(name, false) }

// attach links p into set (no prior set). Assignment lock held or
// construction-time single-threaded.
func (h *Host) attach(p *Processor, set *ProcessorSet) {
	set.Lock()
	set.Reference() // the processor's set pointer
	set.Unlock()
	// The members write lock may sleep, so it is taken after the object
	// lock is dropped; the assignment lock (or construction) already
	// serializes membership changes.
	set.members.Write(nil)
	set.procs = append(set.procs, p)
	set.members.Done(nil)
	p.Lock()
	p.set = set
	p.Reference() // the set's member pointer to the processor
	p.Unlock()
}

// Name-level invariants: every processor is in exactly one set; every
// membership direction carries a reference.

// AssignProcessor moves p into set s. Fails if s is deactivated. Moving
// into the set already holding p is a no-op.
func (h *Host) AssignProcessor(p *Processor, s *ProcessorSet) error {
	h.assignLock.Write(nil)
	defer h.assignLock.Done(nil)
	return h.assignProcessorLocked(p, s)
}

// assignProcessorLocked is AssignProcessor with h.assignLock already held
// in write mode. Destroy calls it directly so the lock covers its whole
// migration phase, not just each individual reassignment.
func (h *Host) assignProcessorLocked(p *Processor, s *ProcessorSet) error {
	// Settle liveness and take the destination reference in one hold, so
	// a failure needs no backout. The assignment lock is held from this
	// check through the attach below, and Destroy holds it across its
	// entire processor-migration phase: a destroyer either runs before us
	// (this check fails) or after us (its sweep finds p in s.procs and
	// migrates it back out) — the attach is never stranded.
	s.Lock()
	if err := s.CheckActive(); err != nil {
		s.Unlock()
		return err
	}
	s.Reference() // p's set pointer
	s.Unlock()

	p.Lock()
	old := p.set
	p.Reference() // migration reference: covers p across the blocking section
	p.Unlock()
	if old == s {
		p.Release(nil) // the migration reference
		s.Release(nil) // the set pointer p already holds
		return nil
	}

	// Detach from the old set. The membership slice is under the
	// members lock; its Write drains any biased iterators first. Only the
	// (sleepable) assignment lock is held across it.
	old.members.Write(nil)
	for i, x := range old.procs {
		if x == p {
			old.procs = append(old.procs[:i], old.procs[i+1:]...)
			break
		}
	}
	old.members.Done(nil)
	p.Release(nil) // the old set's member reference to p

	// Attach to the new set: both membership pointers are counted
	// references (Section 8, inter-object pointers).
	s.members.Write(nil)
	s.procs = append(s.procs, p)
	s.members.Done(nil)
	p.Lock()
	old = p.set // re-read under the relock, per the no-caching rule
	p.set = s
	p.Reference() // s's member pointer to p
	p.Unlock()
	old.Release(nil) // p's reference to the old set
	p.Release(nil)   // the migration reference
	return nil
}

// AssignTask assigns a task to the set (tasks start unassigned in this
// model). The set holds a reference to the task and vice versa is not
// needed — tasks do not point back.
func (s *ProcessorSet) AssignTask(t *Task) error {
	s.Lock()
	if err := s.CheckActive(); err != nil {
		s.Unlock()
		return err
	}
	s.Unlock()
	t.TakeRef()
	// Liveness is re-decided under the members write lock, which cannot be
	// taken with the object lock held (it may sleep): Destroy deactivates
	// first and only then sets draining under its own write hold, so
	// whichever of append and drain wins this lock settles the task's
	// owner — the drain sweeps tasks appended before it, and an assigner
	// arriving after it backs out.
	s.members.Write(nil)
	if s.draining {
		s.members.Done(nil)
		t.Release(nil)
		return ErrTerminated
	}
	s.tasks = append(s.tasks, t)
	s.members.Done(nil)
	return nil
}

// Processors returns a snapshot of the set's processors. cur is the
// iterating thread: with it, concurrent snapshots ride the members lock's
// reader-bias fast path and never touch the set's object lock.
func (s *ProcessorSet) Processors(cur *sched.Thread) []*Processor {
	s.members.Read(cur)
	defer s.members.Done(cur)
	out := make([]*Processor, len(s.procs))
	copy(out, s.procs)
	return out
}

// TaskCount returns the number of assigned tasks.
func (s *ProcessorSet) TaskCount(cur *sched.Thread) int {
	s.members.Read(cur)
	defer s.members.Done(cur)
	return len(s.tasks)
}

// Destroy deactivates the set and migrates its processors and tasks to the
// default set, per the processor-allocation design. The default set cannot
// be destroyed. Exactly one concurrent destroyer wins.
func (s *ProcessorSet) Destroy() error {
	if s.isDefault {
		return ErrDefaultSet
	}
	s.Lock()
	won := s.Deactivate()
	s.Unlock()
	if !won {
		return ErrTerminated
	}

	// Migrate processors. The host assignment lock is held across the
	// whole phase, not per reassignment: an assigner holds it from its
	// liveness check through its attach, so once this holds the lock an
	// empty procs list really means no processor is inbound — a racer
	// that passed CheckActive before the deactivate above has already
	// completed its attach and is swept here, and any later assigner
	// serializes behind this phase and fails CheckActive.
	s.host.assignLock.Write(nil)
	for {
		s.members.Read(nil)
		if len(s.procs) == 0 {
			s.members.Done(nil)
			break
		}
		p := s.procs[0]
		s.members.Done(nil)
		if err := s.host.assignProcessorLocked(p, s.host.defaultSet); err != nil {
			// The destination is the indestructible default set, so the
			// liveness check — the only failure — cannot fire. Returning
			// the error would leave the set half-destroyed (deactivated,
			// tasks undrained, creator reference unreleased).
			panic("kern: pset destroy: migration to default set failed: " + err.Error())
		}
	}
	s.host.assignLock.Done(nil)
	// The set is deactivated, so no new assignment passes AssignTask's
	// object-lock check; one already past it races this drain, and the
	// draining flag — set and tested under the members write lock —
	// decides who owns each task: the drain sweeps everything appended
	// before it, the assigner backs out after it.
	s.members.Write(nil)
	s.draining = true
	tasks := s.tasks
	s.tasks = nil
	s.members.Done(nil)

	// Move the tasks to the default set; release this set's references.
	for _, t := range tasks {
		if err := s.host.defaultSet.AssignTask(t); err == nil {
			t.Release(nil)
		} else {
			t.Release(nil)
		}
	}
	// Creator's reference: the structure survives while others reference
	// it (e.g. a processor mid-reassignment elsewhere).
	s.Release(nil)
	return nil
}

package kern

import (
	"machlock/internal/ipc"
	"machlock/internal/mig"
)

// The task interface: the kernel operations user programs invoke on a
// task's self port, defined through the MiG-style stub layer exactly as
// Section 10 describes ("The request message is received… The represented
// object is determined from the port and a reference is obtained… The
// operation executes… Interface code releases the object reference").
//
// Install the interface on a dispatcher, serve the task's self port, and
// clients drive the task with typed calls:
//
//	srv := kern.TaskInterface().Server(ipc.Mach25)
//	go srv.Serve(kernelThread, task.SelfPort())
//	…
//	r, err := mig.Call[kern.TaskSuspendArgs, kern.TaskSuspendReply](
//	    self, taskPort, kern.OpTaskSuspend, &kern.TaskSuspendArgs{})

// Task interface operation numbers.
const (
	OpTaskInfo = iota + 100
	OpTaskSuspend
	OpTaskResume
	OpTaskThreadCreate
	OpTaskTerminate
)

// TaskInfoArgs requests task information.
type TaskInfoArgs struct{}

// TaskInfoReply carries the task's observable state.
type TaskInfoReply struct {
	Name         string
	ThreadCount  int
	SuspendCount int
	PortNames    int
}

// TaskSuspendArgs / TaskSuspendReply wrap task_suspend.
type TaskSuspendArgs struct{}

// TaskSuspendReply reports the resulting suspend count.
type TaskSuspendReply struct{ SuspendCount int }

// TaskResumeArgs / TaskResumeReply wrap task_resume.
type TaskResumeArgs struct{}

// TaskResumeReply reports the resulting suspend count.
type TaskResumeReply struct{ SuspendCount int }

// ThreadCreateArgs names the new thread.
type ThreadCreateArgs struct{ Name string }

// ThreadCreateReply confirms creation.
type ThreadCreateReply struct{ ThreadCount int }

// TaskTerminateArgs / TaskTerminateReply wrap task_terminate.
type TaskTerminateArgs struct{}

// TaskTerminateReply reports whether this call won the termination race.
type TaskTerminateReply struct{ Won bool }

// TaskInterface builds the typed task interface. Each handler follows the
// kernel-operation discipline: the dispatcher has already translated the
// port and acquired a reference, so the task structure cannot vanish; the
// handler's own locking re-checks liveness.
func TaskInterface() *mig.Interface {
	iface := mig.NewInterface(ipc.KindTask)

	mig.Define(iface, OpTaskInfo, "task_info",
		func(ctx *ipc.Context, obj ipc.KObject, a *TaskInfoArgs) (*TaskInfoReply, error) {
			task := obj.(*Task)
			task.Lock()
			if err := task.CheckActive(); err != nil {
				task.Unlock()
				return nil, err
			}
			reply := &TaskInfoReply{
				Name:         task.Name(),
				ThreadCount:  len(task.threads),
				SuspendCount: task.suspend,
			}
			task.Unlock()
			// The name space has its own lock (the second task lock);
			// taking it after the task lock is released keeps the two
			// independent, as the two-lock design intends.
			reply.PortNames = task.Space().Len(ctx.Thread)
			return reply, nil
		})

	mig.Define(iface, OpTaskSuspend, "task_suspend",
		func(ctx *ipc.Context, obj ipc.KObject, a *TaskSuspendArgs) (*TaskSuspendReply, error) {
			task := obj.(*Task)
			if err := task.Suspend(); err != nil {
				return nil, err
			}
			return &TaskSuspendReply{SuspendCount: task.SuspendCount()}, nil
		})

	mig.Define(iface, OpTaskResume, "task_resume",
		func(ctx *ipc.Context, obj ipc.KObject, a *TaskResumeArgs) (*TaskResumeReply, error) {
			task := obj.(*Task)
			if err := task.Resume(); err != nil {
				return nil, err
			}
			return &TaskResumeReply{SuspendCount: task.SuspendCount()}, nil
		})

	mig.Define(iface, OpTaskThreadCreate, "thread_create",
		func(ctx *ipc.Context, obj ipc.KObject, a *ThreadCreateArgs) (*ThreadCreateReply, error) {
			task := obj.(*Task)
			if _, err := task.CreateThread(a.Name); err != nil {
				return nil, err
			}
			return &ThreadCreateReply{ThreadCount: task.ThreadCount()}, nil
		})

	mig.Define(iface, OpTaskTerminate, "task_terminate",
		func(ctx *ipc.Context, obj ipc.KObject, a *TaskTerminateArgs) (*TaskTerminateReply, error) {
			task := obj.(*Task)
			err := task.Terminate(ctx.Thread)
			return &TaskTerminateReply{Won: err == nil}, nil
		})

	return iface
}

package kern

// Machsim suite for the processor-allocation subsystem: the PR-4 era
// Destroy-vs-AssignProcessor stranding race, reproduced deterministically.
//
// Two tests bracket the fix. TestSimPsetDestroyVsAssign explores the REAL
// protocol (assignment lock held across Destroy's whole migration phase)
// and requires that no schedule strands a processor. TestSimStranding-
// FoundInPreFixProtocol re-implements the pre-fix protocol shape — the
// liveness check and the attach are separated by a window no lock covers —
// and requires the bounded DFS to FIND the stranding; that is the
// harness's regression proof that it would have caught the original bug.

import (
	"testing"

	"machlock/internal/core/object"
	"machlock/internal/core/splock"
	"machlock/internal/hw"
	"machlock/internal/machsim"
	"machlock/internal/sched"
)

// TestSimPsetDestroyVsAssign is the machsim version of
// TestDestroyRacesAssignProcessorNoStranding (which stays as a short raw
// -race smoke test): AssignProcessor races Destroy over explored and
// seeded-random schedules, and on every one the processor must end up in
// the default set with the destroyed set empty.
func TestSimPsetDestroyVsAssign(t *testing.T) {
	scenario := func(s *machsim.Sim) {
		m := hw.New(2)
		h := NewHost(m)
		set := h.NewSet("doomed")
		set.TakeRef() // keep the structure observable past Destroy
		p := h.Processor(0)
		s.Label(set, "doomed")
		s.Spawn("assigner", func(_ *sched.Thread) {
			_ = h.AssignProcessor(p, set) // may lose to Destroy
		})
		s.Spawn("destroyer", func(_ *sched.Thread) {
			if err := set.Destroy(); err != nil {
				s.Fail("destroy: %v", err)
			}
		})
		s.AtEnd(func(fail func(string, ...any)) {
			if got := p.AssignedSet(); got != h.DefaultSet() {
				fail("processor stranded in %q", got.Name())
			}
			if n := len(set.Processors(nil)); n != 0 {
				fail("destroyed set still holds %d processors", n)
			}
		})
	}
	machsim.Check(t, machsim.Random(scenario, 100, 23, machsim.Options{}))
	machsim.Check(t, machsim.Explore(scenario, machsim.DFSConfig{Preemptions: 1, MaxRuns: 400}, machsim.Options{}))
}

// looseSet/looseAssign/looseDestroy re-implement the PRE-FIX assignment
// protocol in miniature: the assigner settles liveness under the object
// lock, then attaches under the members lock — with nothing held across
// the gap, exactly the window the committed fix closes by holding the
// host assignment lock from the liveness check through the attach (and
// across Destroy's whole migration phase).
type looseSet struct {
	object.Object
	members splock.Lock
	procs   []*looseProc
}

type looseProc struct {
	set *looseSet
}

func looseAssign(p *looseProc, s *looseSet) error {
	s.Lock()
	if err := s.CheckActive(); err != nil {
		s.Unlock()
		return err
	}
	s.Unlock()
	// BUG (pre-fix shape): the liveness verdict is stale from here on. A
	// destroyer can deactivate AND run its whole sweep inside this window,
	// after which the attach below strands the processor.
	s.members.Lock()
	s.procs = append(s.procs, p)
	p.set = s
	s.members.Unlock()
	return nil
}

func looseDestroy(s, def *looseSet) {
	s.Lock()
	s.Deactivate()
	s.Unlock()
	s.members.Lock()
	for _, p := range s.procs {
		p.set = def
		def.procs = append(def.procs, p)
	}
	s.procs = nil
	s.members.Unlock()
}

// TestSimStrandingFoundInPreFixProtocol: bounded DFS with a single
// preemption must find the stranding in the pre-fix protocol, and the
// reported schedule must replay to the same violation. This is the
// acceptance check that the harness re-finds the pset race when the PR-4
// fix is absent.
func TestSimStrandingFoundInPreFixProtocol(t *testing.T) {
	scenario := func(s *machsim.Sim) {
		def := &looseSet{}
		def.Init("default")
		doomed := &looseSet{}
		doomed.Init("doomed")
		p := &looseProc{set: def}
		def.procs = []*looseProc{p}
		s.Label(doomed, "doomed")
		s.Spawn("assigner", func(_ *sched.Thread) {
			if looseAssign(p, doomed) == nil {
				// In the broken protocol the assigner believes it moved p
				// out of def; mirror the detach so the sweep is the only
				// thing that can save it.
				def.members.Lock()
				def.procs = nil
				def.members.Unlock()
			}
		})
		s.Spawn("destroyer", func(_ *sched.Thread) {
			looseDestroy(doomed, def)
		})
		s.AtEnd(func(fail func(string, ...any)) {
			if p.set == doomed || len(doomed.procs) != 0 {
				fail("processor stranded in destroyed set (procs=%d)", len(doomed.procs))
			}
		})
	}
	res := machsim.Explore(scenario, machsim.DFSConfig{Preemptions: 1, MaxRuns: 2000}, machsim.Options{})
	if !res.Failed() {
		t.Fatalf("bounded DFS missed the pre-fix stranding race: %s", res.Summary())
	}
	if res.Violations[0].Checker != "at-end" {
		t.Fatalf("expected the at-end stranding check to fire, got %v", res.Violations[0])
	}
	rep := machsim.Replay(scenario, res.Schedule, machsim.Options{})
	if !rep.Failed() || rep.Violations[0].Checker != "at-end" {
		t.Fatalf("stranding schedule %q did not replay: %+v", res.Schedule, rep.Violations)
	}
}

// TestSimConcurrentReassignment is the machsim twin of
// TestConcurrentReassignmentStress (which stays as a shortened raw -race
// smoke test): two assigners shuttle the same processors between three sets
// over explored schedules, and every schedule must leave each processor in
// exactly one set with memberships coherent — no schedule may strand a
// processor between a detach and an attach.
func TestSimConcurrentReassignment(t *testing.T) {
	scenario := func(s *machsim.Sim) {
		m := hw.New(2)
		h := NewHost(m)
		sets := []*ProcessorSet{h.DefaultSet(), h.NewSet("a"), h.NewSet("b")}
		p0, p1 := h.Processor(0), h.Processor(1)
		s.Spawn("assigner0", func(_ *sched.Thread) {
			if err := h.AssignProcessor(p0, sets[1]); err != nil {
				s.Fail("assign p0->a: %v", err)
			}
			if err := h.AssignProcessor(p1, sets[2]); err != nil {
				s.Fail("assign p1->b: %v", err)
			}
		})
		s.Spawn("assigner1", func(_ *sched.Thread) {
			if err := h.AssignProcessor(p0, sets[2]); err != nil {
				s.Fail("assign p0->b: %v", err)
			}
			if err := h.AssignProcessor(p0, sets[0]); err != nil {
				s.Fail("assign p0->default: %v", err)
			}
		})
		s.AtEnd(func(fail func(string, ...any)) {
			total := 0
			for _, set := range sets {
				for _, p := range set.Processors(nil) {
					if p.AssignedSet() != set {
						fail("processor %s membership mismatch", p.Name())
					}
					total++
				}
			}
			if total != 2 {
				fail("processors across sets = %d, want 2", total)
			}
		})
	}
	machsim.Check(t, machsim.Random(scenario, 150, 31, machsim.Options{}))
	machsim.Check(t, machsim.Explore(scenario, machsim.DFSConfig{
		Preemptions: 1,
		Reduction:   machsim.ReduceSleep,
		MaxRuns:     100000,
	}, machsim.Options{}))
}

package kern

import (
	"testing"

	"machlock/internal/ipc"
	"machlock/internal/mig"
	"machlock/internal/sched"
	"machlock/internal/vm"
)

// serveTask puts a task's self port behind the typed task interface.
func serveTask(t *testing.T, task *Task) (stop func()) {
	t.Helper()
	srv := TaskInterface().Server(ipc.Mach25)
	port := task.SelfPort()
	port.TakeRef()
	server := sched.Go("task-server", func(self *sched.Thread) {
		srv.Serve(self, port)
		port.Release(nil)
	})
	return func() {
		port.TakeRef() // Destroy consumes exactly this reference
		port.Destroy()
		server.Join()
	}
}

func TestTaskInterfaceInfo(t *testing.T) {
	task := NewTask("app", vm.NewPool(8))
	task.CreateThread("w1")
	task.CreateThread("w2")
	task.InsertPort(nil, ipc.NewPort("svc"))
	stop := serveTask(t, task)
	defer stop()

	self := sched.New("client")
	info, err := mig.Call[TaskInfoArgs, TaskInfoReply](self, task.SelfPort(), OpTaskInfo, &TaskInfoArgs{})
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "app" || info.ThreadCount != 2 || info.PortNames != 1 {
		t.Fatalf("info = %+v", info)
	}
}

func TestTaskInterfaceSuspendResume(t *testing.T) {
	task := NewTask("app", vm.NewPool(8))
	stop := serveTask(t, task)
	defer stop()
	self := sched.New("client")

	s, err := mig.Call[TaskSuspendArgs, TaskSuspendReply](self, task.SelfPort(), OpTaskSuspend, &TaskSuspendArgs{})
	if err != nil || s.SuspendCount != 1 {
		t.Fatalf("suspend = %+v, %v", s, err)
	}
	r, err := mig.Call[TaskResumeArgs, TaskResumeReply](self, task.SelfPort(), OpTaskResume, &TaskResumeArgs{})
	if err != nil || r.SuspendCount != 0 {
		t.Fatalf("resume = %+v, %v", r, err)
	}
	// Resume below zero surfaces the handler error through the stubs.
	if _, err := mig.Call[TaskResumeArgs, TaskResumeReply](self, task.SelfPort(), OpTaskResume, &TaskResumeArgs{}); err == nil {
		t.Fatal("over-resume did not error")
	}
}

func TestTaskInterfaceThreadCreateAndTerminate(t *testing.T) {
	task := NewTask("app", vm.NewPool(8))
	task.TakeRef()
	defer task.Release(nil)
	port := task.SelfPort()
	port.TakeRef()
	defer port.Release(nil) // LIFO: released after stop() finishes
	stop := serveTask(t, task)
	defer stop()
	self := sched.New("client")

	c, err := mig.Call[ThreadCreateArgs, ThreadCreateReply](self, port, OpTaskThreadCreate, &ThreadCreateArgs{Name: "w"})
	if err != nil || c.ThreadCount != 1 {
		t.Fatalf("create = %+v, %v", c, err)
	}

	term, err := mig.Call[TaskTerminateArgs, TaskTerminateReply](self, port, OpTaskTerminate, &TaskTerminateArgs{})
	if err != nil || !term.Won {
		t.Fatalf("terminate = %+v, %v", term, err)
	}
	// Post-termination operations fail cleanly: translation is disabled
	// by the shutdown protocol.
	if _, err := mig.Call[TaskInfoArgs, TaskInfoReply](self, port, OpTaskInfo, &TaskInfoArgs{}); err == nil {
		t.Fatal("info on terminated task succeeded")
	}
	if task.ThreadCount() != 0 {
		t.Fatal("threads survived terminate")
	}
}

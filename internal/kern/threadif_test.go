package kern

import (
	"testing"

	"machlock/internal/ipc"
	"machlock/internal/mig"
	"machlock/internal/sched"
	"machlock/internal/vm"
)

// serveThread puts a thread's self port behind the typed thread interface.
func serveThread(t *testing.T, th *Thread) (stop func()) {
	t.Helper()
	srv := ThreadInterface().Server(ipc.Mach25)
	port := th.SelfPort()
	port.TakeRef()
	server := sched.Go("thread-server", func(self *sched.Thread) {
		srv.Serve(self, port)
		port.Release(nil)
	})
	return func() {
		port.TakeRef()
		port.Destroy()
		server.Join()
	}
}

func TestThreadInterfaceInfoSuspendResume(t *testing.T) {
	task := NewTask("app", vm.NewPool(4))
	th, err := task.CreateThread("worker")
	if err != nil {
		t.Fatal(err)
	}
	stop := serveThread(t, th)
	defer stop()
	self := sched.New("client")
	port := th.SelfPort()

	info, err := mig.Call[ThreadInfoArgs, ThreadInfoReply](self, port, OpThreadInfo, &ThreadInfoArgs{})
	if err != nil || info.Name != "worker" || info.TaskName != "app" || info.SuspendCount != 0 {
		t.Fatalf("info = %+v, %v", info, err)
	}

	s, err := mig.Call[ThreadSuspendArgs, ThreadSuspendReply](self, port, OpThreadSuspend, &ThreadSuspendArgs{})
	if err != nil || s.SuspendCount != 1 {
		t.Fatalf("suspend = %+v, %v", s, err)
	}
	r, err := mig.Call[ThreadResumeArgs, ThreadResumeReply](self, port, OpThreadResume, &ThreadResumeArgs{})
	if err != nil || r.SuspendCount != 0 {
		t.Fatalf("resume = %+v, %v", r, err)
	}
	if _, err := mig.Call[ThreadResumeArgs, ThreadResumeReply](self, port, OpThreadResume, &ThreadResumeArgs{}); err == nil {
		t.Fatal("over-resume did not error")
	}
}

func TestThreadInterfaceTerminate(t *testing.T) {
	task := NewTask("app", vm.NewPool(4))
	th, err := task.CreateThread("worker")
	if err != nil {
		t.Fatal(err)
	}
	th.TakeRef()
	defer th.Release(nil)
	port := th.SelfPort()
	port.TakeRef()
	defer port.Release(nil)
	stop := serveThread(t, th)
	defer stop()
	self := sched.New("client")

	term, err := mig.Call[ThreadTerminateArgs, ThreadTerminateReply](self, port, OpThreadTerminate, &ThreadTerminateArgs{})
	if err != nil || !term.Won {
		t.Fatalf("terminate = %+v, %v", term, err)
	}
	if task.ThreadCount() != 0 {
		t.Fatal("thread still in task after terminate")
	}
	// Post-termination calls fail cleanly (translation disabled).
	if _, err := mig.Call[ThreadInfoArgs, ThreadInfoReply](self, port, OpThreadInfo, &ThreadInfoArgs{}); err == nil {
		t.Fatal("info on terminated thread succeeded")
	}
	// Suspend/resume on the deactivated structure fail with ErrTerminated.
	if err := th.Suspend(); err == nil {
		t.Fatal("suspend on terminated thread succeeded")
	}
}

// Package kern implements the task and thread kernel objects, tying the
// whole coordination machinery together the way the Mach kernel does:
//
//   - A task "has two locks to allow task operations and ipc translations
//     to occur in parallel" (Section 5): the object lock for task state and
//     a separate translation lock in front of its port name space.
//   - Tasks and threads are deactivatable objects terminated by the
//     Section 10 shutdown protocol, exported through self ports.
//   - Inter-object pointers (task↔thread, task→map) each carry a counted
//     reference.
package kern

import (
	"errors"
	"fmt"

	"machlock/internal/core/object"
	"machlock/internal/ipc"
	"machlock/internal/sched"
	"machlock/internal/trace"
	"machlock/internal/vm"
)

// Observability classes: all tasks aggregate under one class, all threads
// under another, so the contention profile — and the live census the
// monitor's leak detection watches — describes the kernel type, not one
// instance.
var (
	classTask   = trace.NewClass("kern", "kern.task", trace.KindObject)
	classThread = trace.NewClass("kern", "kern.thread", trace.KindObject)

	// Operation spans for the task lifecycle (see trace.BeginSpan).
	// Creation has no calling kernel thread in this API, so its span is
	// anonymous: latency is recorded, lock waits are not credited.
	opTaskCreate    = trace.NewOp("kern", "op.task-create")
	opTaskTerminate = trace.NewOp("kern", "op.task-terminate")
)

// ErrTerminated is returned by operations on a terminated task or thread.
var ErrTerminated = errors.New("kern: terminated")

// Task is an execution environment: "the basic unit of resource
// allocation, consisting of a paged virtual address space and access to
// resources (via ports)".
type Task struct {
	object.Object // the task lock, reference count, active flag

	// The task's second lock — the one that lets translations
	// parallelize against task operations — lives inside the space
	// itself: a reader-biased complex lock, so concurrent translators
	// also parallelize against each other.

	space    *ipc.Space
	vmMap    *vm.Map
	threads  []*Thread
	selfPort *ipc.Port
	suspend  int
}

// Thread is a locus of control within a task. The kernel object wraps the
// schedulable sched.Thread.
type Thread struct {
	object.Object

	task     *Task // counted reference
	sch      *sched.Thread
	selfPort *ipc.Port
	suspend  int
}

// NewTask creates a task with an empty address space over pool, a fresh
// port name space, and a self port whose kernel object is the task.
func NewTask(name string, pool *vm.PagePool) *Task {
	defer trace.BeginSpan(nil, opTaskCreate).End()
	t := &Task{
		space: ipc.NewSpace(),
		vmMap: vm.NewMap(pool),
	}
	t.Init(name)
	t.SetClass(classTask)
	t.selfPort = ipc.NewPort(name + ".self")
	t.TakeRef() // the port's kobject pointer holds a reference
	t.selfPort.SetKObject(ipc.KindTask, t)
	return t
}

// SelfPort returns the task's self port.
func (t *Task) SelfPort() *ipc.Port { return t.selfPort }

// Map returns the task's address space.
func (t *Task) Map() *vm.Map { return t.vmMap }

// Space returns the task's port name space.
func (t *Task) Space() *ipc.Space { return t.space }

// InsertPort registers a port in the task's name space under the space's
// translation lock — the parallel path that never touches the task lock.
// cur is the inserting thread (nil forces the lock's slow path).
func (t *Task) InsertPort(cur *sched.Thread, p *ipc.Port) ipc.Name {
	return t.space.Insert(cur, p)
}

// TranslatePort resolves a port name, cloning a reference for the caller.
// Translation holds only the space's reader-biased lock, so it runs in
// parallel both with task operations (which hold the task lock) and with
// other translations (which share the read side).
func (t *Task) TranslatePort(cur *sched.Thread, n ipc.Name) (*ipc.Port, error) {
	return t.space.Translate(cur, n)
}

// Suspend increments the task's suspend count (a task operation: task
// lock). Fails on a terminated task.
func (t *Task) Suspend() error {
	t.Lock()
	defer t.Unlock()
	if err := t.CheckActive(); err != nil {
		return ErrTerminated
	}
	t.suspend++
	return nil
}

// Resume decrements the suspend count.
func (t *Task) Resume() error {
	t.Lock()
	defer t.Unlock()
	if err := t.CheckActive(); err != nil {
		return ErrTerminated
	}
	if t.suspend == 0 {
		return fmt.Errorf("kern: resume of non-suspended task")
	}
	t.suspend--
	return nil
}

// SuspendCount returns the current suspend count.
func (t *Task) SuspendCount() int {
	t.Lock()
	defer t.Unlock()
	return t.suspend
}

// CreateThread adds a thread to the task. The thread holds a reference to
// the task and vice versa (inter-object pointers are counted references).
func (t *Task) CreateThread(name string) (*Thread, error) {
	th := &Thread{sch: sched.New(name)}
	th.Init(name)
	th.SetClass(classThread)
	th.selfPort = ipc.NewPort(name + ".self")
	th.TakeRef()
	th.selfPort.SetKObject(ipc.KindThread, th)

	t.Lock()
	if err := t.CheckActive(); err != nil {
		t.Unlock()
		// Creation failed: unwind the thread's port and self.
		th.selfPort.Destroy() // releases the kobject reference
		th.Release(nil)       // creator reference; destroys the shell
		return nil, ErrTerminated
	}
	t.Reference() // the thread's task pointer
	th.TakeRef()  // the task's thread-list pointer
	t.threads = append(t.threads, th)
	t.Unlock()

	th.task = t
	return th, nil
}

// Threads returns a snapshot of the task's thread list, each with a cloned
// reference the caller must release.
func (t *Task) Threads() []*Thread {
	t.Lock()
	defer t.Unlock()
	out := make([]*Thread, len(t.threads))
	for i, th := range t.threads {
		th.TakeRef()
		out[i] = th
	}
	return out
}

// ThreadCount returns the number of live threads.
func (t *Task) ThreadCount() int {
	t.Lock()
	defer t.Unlock()
	return len(t.threads)
}

// Sched returns the thread's schedulable identity.
func (th *Thread) Sched() *sched.Thread { return th.sch }

// SelfPort returns the thread's self port.
func (th *Thread) SelfPort() *ipc.Port { return th.selfPort }

// Task returns the thread's task (borrowed pointer; covered by the
// thread's own reference to the task).
func (th *Thread) Task() *Task { return th.task }

// Terminate runs the Section 10 shutdown protocol on the thread: exactly
// one caller wins; it is detached from its task and its structure survives
// until the last reference drops. cur is the kernel thread executing the
// termination (releases may block).
func (th *Thread) Terminate(cur *sched.Thread) error {
	// Step 1-2: deactivate and disable port translation.
	if !ipc.Shutdown(th.selfPort, th, func() {
		// Step 3: shutdown the object — detach from the task.
		task := th.task
		if task == nil {
			return
		}
		task.Lock()
		for i, x := range task.threads {
			if x == th {
				task.threads = append(task.threads[:i], task.threads[i+1:]...)
				// Release the task's reference to the thread.
				defer th.Release(nil)
				break
			}
		}
		task.Unlock()
		// Release the thread's reference to the task.
		task.Release(nil)
	}) {
		return ErrTerminated
	}
	th.selfPort.Destroy()
	return nil
}

// Terminate runs the shutdown protocol on the task, terminating every
// thread first. cur is the executing kernel thread.
func (t *Task) Terminate(cur *sched.Thread) error {
	defer trace.BeginSpan(cur, opTaskTerminate).End()
	// Terminating the task terminates its threads; snapshot them first
	// (references keep them valid across the unlock).
	threads := t.Threads()
	if !ipc.Shutdown(t.selfPort, t, func() {
		for _, th := range threads {
			th.Terminate(cur) // a lost race here is fine: already dying
		}
		t.space.DestroyAll(cur)
		t.vmMap.Release(cur)
	}) {
		for _, th := range threads {
			th.Release(nil)
		}
		return ErrTerminated
	}
	for _, th := range threads {
		th.Release(nil)
	}
	t.selfPort.Destroy()
	return nil
}

package kern

import (
	"os"
	"testing"

	"machlock/internal/trace"
)

// TestMain lets `make sim` double as a dynamic lock-order probe: with
// MACHLOCK_LOCKGRAPH set, the whole binary runs traced and dumps the
// observed kern-class graph for machvet -diff.
func TestMain(m *testing.M) {
	os.Exit(trace.LockGraphTestMain("kern", m.Run))
}

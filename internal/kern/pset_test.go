package kern

import (
	"errors"
	"sync"
	"testing"

	"machlock/internal/hw"
	"machlock/internal/vm"
)

func TestHostDefaultSetOwnsAllProcessors(t *testing.T) {
	m := hw.New(4)
	h := NewHost(m)
	if got := len(h.DefaultSet().Processors(nil)); got != 4 {
		t.Fatalf("default set has %d processors, want 4", got)
	}
	for i := 0; i < 4; i++ {
		p := h.Processor(i)
		if p.AssignedSet() != h.DefaultSet() {
			t.Fatalf("cpu %d not in default set", i)
		}
		if p.CPU() != m.CPU(i) {
			t.Fatalf("cpu %d wrong hw binding", i)
		}
	}
}

func TestAssignProcessorMovesBetweenSets(t *testing.T) {
	m := hw.New(2)
	h := NewHost(m)
	s := h.NewSet("batch")
	p := h.Processor(1)

	if err := h.AssignProcessor(p, s); err != nil {
		t.Fatal(err)
	}
	if p.AssignedSet() != s {
		t.Fatal("processor not in new set")
	}
	if len(s.Processors(nil)) != 1 || len(h.DefaultSet().Processors(nil)) != 1 {
		t.Fatalf("membership counts wrong: %d / %d",
			len(s.Processors(nil)), len(h.DefaultSet().Processors(nil)))
	}
	// No-op reassign.
	if err := h.AssignProcessor(p, s); err != nil {
		t.Fatal(err)
	}
	if len(s.Processors(nil)) != 1 {
		t.Fatal("no-op reassign duplicated membership")
	}
	// Move back.
	if err := h.AssignProcessor(p, h.DefaultSet()); err != nil {
		t.Fatal(err)
	}
	if len(h.DefaultSet().Processors(nil)) != 2 {
		t.Fatal("processor lost on the way back")
	}
}

func TestAssignToDeactivatedSetFails(t *testing.T) {
	m := hw.New(2)
	h := NewHost(m)
	s := h.NewSet("batch")
	s.TakeRef() // keep the structure observable past Destroy
	if err := s.Destroy(); err != nil {
		t.Fatal(err)
	}
	if err := h.AssignProcessor(h.Processor(0), s); err == nil {
		t.Fatal("assignment to destroyed set succeeded")
	}
	task := NewTask("t", vm.NewPool(4))
	if err := s.AssignTask(task); err == nil {
		t.Fatal("task assignment to destroyed set succeeded")
	}
	s.Release(nil)
}

func TestDestroyMigratesEverythingToDefault(t *testing.T) {
	m := hw.New(4)
	h := NewHost(m)
	s := h.NewSet("batch")
	for i := 1; i < 4; i++ {
		if err := h.AssignProcessor(h.Processor(i), s); err != nil {
			t.Fatal(err)
		}
	}
	task := NewTask("worker", vm.NewPool(4))
	if err := s.AssignTask(task); err != nil {
		t.Fatal(err)
	}
	if s.TaskCount(nil) != 1 || len(s.Processors(nil)) != 3 {
		t.Fatal("setup wrong")
	}

	if err := s.Destroy(); err != nil {
		t.Fatal(err)
	}
	if got := len(h.DefaultSet().Processors(nil)); got != 4 {
		t.Fatalf("default set has %d processors after destroy, want 4", got)
	}
	if h.DefaultSet().TaskCount(nil) != 1 {
		t.Fatal("task not migrated to default set")
	}
	for i := 0; i < 4; i++ {
		if h.Processor(i).AssignedSet() != h.DefaultSet() {
			t.Fatalf("cpu %d stranded", i)
		}
	}
}

func TestDestroyDefaultSetRefused(t *testing.T) {
	h := NewHost(hw.New(1))
	if err := h.DefaultSet().Destroy(); !errors.Is(err, ErrDefaultSet) {
		t.Fatalf("err = %v, want ErrDefaultSet", err)
	}
}

func TestDoubleDestroyLosesCleanly(t *testing.T) {
	h := NewHost(hw.New(1))
	s := h.NewSet("x")
	s.TakeRef()
	defer s.Release(nil)
	if err := s.Destroy(); err != nil {
		t.Fatal(err)
	}
	if err := s.Destroy(); !errors.Is(err, ErrTerminated) {
		t.Fatalf("second destroy = %v, want ErrTerminated", err)
	}
}

func TestDestroyRacesAssignProcessorNoStranding(t *testing.T) {
	// Regression: an AssignProcessor that passed the liveness check must
	// not strand its processor in a set whose Destroy saw an empty procs
	// list. Destroy holds the host assignment lock across its whole
	// migration phase, so whichever side wins, the processor ends up in
	// the default set (assigner lost) or gets swept back there (Destroy
	// ran after a completed attach).
	//
	// This is the raw -race smoke version; the schedule-exhaustive version
	// is TestSimPsetDestroyVsAssign in sim_test.go, and
	// TestSimStrandingFoundInPreFixProtocol proves the harness finds the
	// race when the covering lock is absent.
	for i := 0; i < 30; i++ {
		m := hw.New(2)
		h := NewHost(m)
		s := h.NewSet("doomed")
		s.TakeRef() // keep the structure observable past Destroy
		p := h.Processor(0)
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			_ = h.AssignProcessor(p, s) // may lose to Destroy
		}()
		go func() {
			defer wg.Done()
			if err := s.Destroy(); err != nil {
				t.Errorf("iter %d: destroy: %v", i, err)
			}
		}()
		wg.Wait()
		if got := p.AssignedSet(); got != h.DefaultSet() {
			t.Fatalf("iter %d: processor stranded in %q", i, got.Name())
		}
		if n := len(s.Processors(nil)); n != 0 {
			t.Fatalf("iter %d: destroyed set still holds %d processors", i, n)
		}
		s.Release(nil)
	}
}

// TestConcurrentReassignmentStress is the raw -race smoke layer; the
// deterministic schedule-exploration twin is TestSimConcurrentReassignment
// in sim_test.go.
func TestConcurrentReassignmentStress(t *testing.T) {
	m := hw.New(4)
	h := NewHost(m)
	sets := []*ProcessorSet{h.DefaultSet(), h.NewSet("a"), h.NewSet("b")}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				p := h.Processor((seed + i) % 4)
				s := sets[(seed*7+i)%3]
				if err := h.AssignProcessor(p, s); err != nil {
					t.Errorf("assign: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	// Invariant: every processor in exactly one set, memberships coherent.
	total := 0
	for _, s := range sets {
		for _, p := range s.Processors(nil) {
			if p.AssignedSet() != s {
				t.Fatalf("processor %s membership mismatch", p.Name())
			}
			total++
		}
	}
	if total != 4 {
		t.Fatalf("processors across sets = %d, want 4", total)
	}
}

// Package timer implements the usage-timing subsystem the paper cites as
// the one exception to multiprocessor locking in the Mach kernel
// (Section 2, referencing Black's "The Mach Timing Facility", 1990).
//
// Each timer is updated by exactly one processor — its owner — so no
// mutual exclusion is needed for writes. Readers on other processors use
// an "independently accessible memory cell per processor" technique: the
// timer value is split into low and high words plus a check word, written
// in a fixed order; a reader retries until it observes a consistent pair.
// This trades a single-cell lock for a retry loop, exactly the contrast
// the paper draws with multiprocessor locking solutions.
//
// The update protocol (writer, owner CPU only):
//
//  1. low += delta
//  2. on low-word overflow: high++ … then … highCheck = high
//
// The read protocol (any CPU):
//
//  1. check := highCheck
//  2. low   := low
//  3. high  := high
//  4. if check == high → value is (high, low); else retry
//
// If a rollover intervenes, high ≠ highCheck and the reader retries.
package timer

import (
	"sync/atomic"
)

// LowMax is the low-word range: low ∈ [0, LowMax). Small enough that
// rollovers actually happen in tests and benchmarks; the real facility used
// the hardware word size.
const LowMax = 1 << 32

// Timer is a per-processor usage timer. One designated owner calls Add;
// any processor may call Read. The zero value is a zeroed timer.
type Timer struct {
	low       atomic.Int64 // owner-written; always < LowMax
	high      atomic.Int64 // rollover count, written first
	highCheck atomic.Int64 // rollover count, written last
}

// Add accumulates delta (e.g. nanoseconds of usage) into the timer. Only
// the owning processor may call Add; concurrent Adds are a protocol
// violation (they would need the lock this design exists to avoid).
func (t *Timer) Add(delta int64) {
	if delta < 0 {
		panic("timer: negative delta")
	}
	low := t.low.Load() + delta
	if low >= LowMax {
		// Rollover: bump high FIRST, publish the new low, and only
		// then publish highCheck. A reader that catches the middle
		// sees high != highCheck and retries.
		t.high.Add(low / LowMax)
		t.low.Store(low % LowMax)
		t.highCheck.Store(t.high.Load())
		return
	}
	t.low.Store(low)
}

// Read returns a consistent snapshot of the timer from any processor,
// retrying while an update is mid-rollover. It also returns how many
// retries were needed (0 in the common case), which experiment E12 reports.
func (t *Timer) Read() (value int64, retries int) {
	for {
		check := t.highCheck.Load()
		low := t.low.Load()
		high := t.high.Load()
		if check == high {
			return high*LowMax + low, retries
		}
		retries++
	}
}

// Value returns the timer value, discarding the retry count.
func (t *Timer) Value() int64 {
	v, _ := t.Read()
	return v
}

// Set initializes the timer to an absolute value; owner only, and only
// while no readers are active (used at thread creation).
func (t *Timer) Set(v int64) {
	if v < 0 {
		panic("timer: negative value")
	}
	t.high.Store(v / LowMax)
	t.low.Store(v % LowMax)
	t.highCheck.Store(v / LowMax)
}

// Group is a set of per-processor timers, as the kernel keeps one usage
// timer per CPU (plus per-thread timers charged to the running thread).
type Group struct {
	timers []Timer
}

// NewGroup creates n per-processor timers.
func NewGroup(n int) *Group {
	return &Group{timers: make([]Timer, n)}
}

// Timer returns processor i's timer.
func (g *Group) Timer(i int) *Timer { return &g.timers[i] }

// Total sums a consistent snapshot of every timer. Each individual read is
// consistent; the total is a sum of per-timer snapshots (the facility's
// documented semantics — totals are not globally atomic).
func (g *Group) Total() int64 {
	var sum int64
	for i := range g.timers {
		sum += g.timers[i].Value()
	}
	return sum
}

package timer

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestZeroValue(t *testing.T) {
	var tm Timer
	if v := tm.Value(); v != 0 {
		t.Fatalf("zero timer = %d", v)
	}
}

func TestAddAccumulates(t *testing.T) {
	var tm Timer
	tm.Add(100)
	tm.Add(250)
	if v := tm.Value(); v != 350 {
		t.Fatalf("value = %d, want 350", v)
	}
}

func TestRollover(t *testing.T) {
	var tm Timer
	tm.Set(LowMax - 10)
	tm.Add(25)
	if v := tm.Value(); v != LowMax+15 {
		t.Fatalf("value = %d, want %d", v, int64(LowMax+15))
	}
}

func TestMultipleRolloversInOneAdd(t *testing.T) {
	var tm Timer
	tm.Add(3*LowMax + 7)
	if v := tm.Value(); v != 3*LowMax+7 {
		t.Fatalf("value = %d, want %d", v, int64(3*LowMax+7))
	}
}

func TestSet(t *testing.T) {
	var tm Timer
	tm.Set(5*LowMax + 123)
	if v := tm.Value(); v != 5*LowMax+123 {
		t.Fatalf("value = %d", v)
	}
}

func TestNegativeDeltaPanics(t *testing.T) {
	var tm Timer
	defer func() {
		if recover() == nil {
			t.Fatal("negative delta did not panic")
		}
	}()
	tm.Add(-1)
}

func TestNegativeSetPanics(t *testing.T) {
	var tm Timer
	defer func() {
		if recover() == nil {
			t.Fatal("negative set did not panic")
		}
	}()
	tm.Set(-5)
}

// TestConcurrentReadersSeeMonotonicConsistentValues is the core property:
// one owner updating through rollovers, many lock-free readers, and no
// reader ever observes a torn (inconsistent) or decreasing value.
func TestConcurrentReadersSeeMonotonicConsistentValues(t *testing.T) {
	var tm Timer
	tm.Set(LowMax - 5000) // start near a rollover to exercise the window
	const writes = 20000
	var totalRetries atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last int64
			for {
				select {
				case <-stop:
					return
				default:
				}
				v, retries := tm.Read()
				totalRetries.Add(int64(retries))
				if v < last {
					t.Errorf("timer went backwards: %d -> %d", last, v)
					return
				}
				if low := v % LowMax; low < 0 {
					t.Errorf("torn read: %d", v)
					return
				}
				last = v
			}
		}()
	}
	for i := 0; i < writes; i++ {
		tm.Add(1000) // rolls over every ~LowMax/1000 writes
	}
	close(stop)
	wg.Wait()
	want := int64(LowMax-5000) + int64(writes)*1000
	if v := tm.Value(); v != want {
		t.Fatalf("final value = %d, want %d", v, want)
	}
}

func TestGroupTotal(t *testing.T) {
	g := NewGroup(4)
	for i := 0; i < 4; i++ {
		g.Timer(i).Add(int64(100 * (i + 1)))
	}
	if total := g.Total(); total != 1000 {
		t.Fatalf("total = %d, want 1000", total)
	}
}

func TestGroupConcurrentOwners(t *testing.T) {
	g := NewGroup(4)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tm := g.Timer(i)
			for j := 0; j < 10000; j++ {
				tm.Add(10)
			}
		}(i)
	}
	wg.Wait()
	if total := g.Total(); total != 4*10000*10 {
		t.Fatalf("total = %d, want %d", total, 4*10000*10)
	}
}

// Property: a sequence of adds equals its sum regardless of rollovers.
func TestAddSumQuick(t *testing.T) {
	f := func(deltas []uint32) bool {
		var tm Timer
		var sum int64
		for _, d := range deltas {
			// Scale up so rollovers occur within few adds.
			dd := int64(d) * 4096
			tm.Add(dd)
			sum += dd
		}
		return tm.Value() == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

package vm

import (
	"sync"
	"sync/atomic"
	"time"

	"machlock/internal/sched"
)

// Pageout is the pageout daemon: a kernel thread that reclaims unwired
// resident pages when the free pool runs low. Reclaiming requires the
// write lock on each map it scans — the dependency that closes the
// Section 7.1 deadlock cycle against WireRecursive.
type Pageout struct {
	pool *PagePool

	mu   sync.Mutex
	maps []*Map

	reclaims atomic.Int64
	passes   atomic.Int64

	stop   chan struct{}
	thread *sched.Thread
}

// NewPageout creates a daemon over the pool.
func NewPageout(pool *PagePool) *Pageout {
	return &Pageout{pool: pool, stop: make(chan struct{})}
}

// AddMap registers a map for scanning.
func (pd *Pageout) AddMap(m *Map) {
	pd.mu.Lock()
	pd.maps = append(pd.maps, m)
	pd.mu.Unlock()
}

// Start launches the daemon thread. It polls the pool and, when it is
// exhausted, reclaims from every registered map.
func (pd *Pageout) Start() {
	pd.thread = sched.Go("pageout", func(t *sched.Thread) {
		for {
			select {
			case <-pd.stop:
				return
			default:
			}
			if pd.pool.FreeCount() == 0 {
				pd.passes.Add(1)
				pd.mu.Lock()
				maps := make([]*Map, len(pd.maps))
				copy(maps, pd.maps)
				pd.mu.Unlock()
				for _, m := range maps {
					n := m.ReclaimPages(t, 16)
					pd.reclaims.Add(int64(n))
				}
			}
			time.Sleep(time.Millisecond)
		}
	})
}

// Stop terminates the daemon and waits for it.
func (pd *Pageout) Stop() {
	close(pd.stop)
	if pd.thread != nil {
		pd.thread.Join()
	}
}

// Reclaims returns the number of pages the daemon has freed.
func (pd *Pageout) Reclaims() int64 { return pd.reclaims.Load() }

// Passes returns the number of shortage passes the daemon has run.
func (pd *Pageout) Passes() int64 { return pd.passes.Load() }

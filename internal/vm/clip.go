package vm

import (
	"fmt"

	"machlock/internal/sched"
)

// Entry clipping: Mach's map operations act on arbitrary address ranges by
// splitting (clipping) entries at the range boundaries, so that wiring or
// deallocating part of a region affects exactly that part. Clipping is a
// pure entry-list transformation under the map's write lock; each new
// entry takes its own counted reference on the backing object.

// clipAt splits the entry at index i so that a new entry begins at addr
// (which must lie strictly inside the entry). Map write lock held.
func (m *Map) clipAt(i int, addr uint64) {
	e := m.entries[i]
	if addr <= e.start || addr >= e.end {
		panic(fmt.Sprintf("vm: clip at %d outside entry [%d,%d)", addr, e.start, e.end))
	}
	tail := &Entry{
		start:        addr,
		end:          e.end,
		object:       e.object,
		offset:       e.offset + (addr - e.start),
		wired:        e.wired,
		inTransition: e.inTransition,
	}
	tail.object.Reference() // the new entry's pointer to the object
	e.end = addr
	m.entries = append(m.entries, nil)
	copy(m.entries[i+2:], m.entries[i+1:])
	m.entries[i+1] = tail
}

// clipRange splits entries so that the boundaries of [start, end) coincide
// with entry boundaries, returning the entries exactly covering the range.
// The range must be fully allocated. Map write lock held.
func (m *Map) clipRange(start, end uint64) ([]*Entry, error) {
	if end <= start {
		return nil, fmt.Errorf("vm: bad range [%d, %d)", start, end)
	}
	// Verify coverage first so a partial failure clips nothing.
	addr := start
	for _, e := range m.entries {
		if e.end <= addr {
			continue
		}
		if e.start > addr {
			return nil, ErrNoEntry
		}
		addr = e.end
		if addr >= end {
			break
		}
	}
	if addr < end {
		return nil, ErrNoEntry
	}
	// Clip the boundary entries.
	for i := 0; i < len(m.entries); i++ {
		e := m.entries[i]
		if e.start < start && start < e.end {
			m.clipAt(i, start)
		}
	}
	for i := 0; i < len(m.entries); i++ {
		e := m.entries[i]
		if e.start < end && end < e.end {
			m.clipAt(i, end)
		}
	}
	// Collect the covered entries.
	var out []*Entry
	for _, e := range m.entries {
		if e.start >= start && e.end <= end {
			out = append(out, e)
		}
	}
	return out, nil
}

// DeallocateRange removes [start, end) from the map, clipping boundary
// entries so that only the requested range is affected. Wired or
// in-transition entries in the range refuse, leaving the map semantically
// unchanged (the clips themselves are invisible). Resident pages stay
// cached in their objects; they return to the pool when the object's last
// reference drops or the pageout daemon reclaims them — object lifetime,
// not mapping lifetime, owns the memory (Section 8).
func (m *Map) DeallocateRange(t *sched.Thread, start, end uint64) error {
	m.lock.Write(t)
	entries, err := m.clipRange(start, end)
	if err != nil {
		m.lock.Done(t)
		return err
	}
	for _, e := range entries {
		if e.wired > 0 || e.inTransition {
			m.lock.Done(t)
			return fmt.Errorf("vm: entry at %d is wired", e.start)
		}
	}
	kept := m.entries[:0]
	var victims []*Entry
	for _, e := range m.entries {
		if e.start >= start && e.end <= end {
			victims = append(victims, e)
		} else {
			kept = append(kept, e)
		}
	}
	m.entries = kept
	m.lock.Done(t)
	// Release outside the map lock: a last release terminates the object
	// and may block.
	for _, e := range victims {
		e.object.Release(t)
	}
	return nil
}

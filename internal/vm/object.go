package vm

import (
	"fmt"

	"machlock/internal/core/refcount"
	"machlock/internal/core/splock"
	"machlock/internal/ipc"
	"machlock/internal/sched"
	"machlock/internal/trace"
)

// classObject aggregates lock and reference traffic for every memory
// object under one profile entry.
var classObject = trace.NewClass("vm", "vm.object", trace.KindSpin)

// Object is a memory object: "a region of data provided by a server that
// can be mapped into a task", represented by a data structure and its
// pager port. It is the paper's showcase for two techniques:
//
//   - Dual reference counts (Section 8): a conventional reference count
//     for the data structure, plus pagingInProgress — "a hybrid of a
//     reference and a lock because it excludes operations such as object
//     termination that cannot be performed while paging is in progress."
//
//   - A customized lock (Section 5): pager-port creation can block, so it
//     cannot happen under the object's simple lock; instead two boolean
//     flags set under the simple lock extend it into a creation lock
//     (pagerCreated: someone is creating; pagerInitialized: done).
type Object struct {
	lock splock.Lock
	refs refcount.Count

	pagingInProgress int32
	terminating      bool

	pages map[uint64]*Page
	size  uint64 // in pages

	pager            *ipc.Port
	pagerCreated     bool
	pagerInitialized bool
	pagerWanted      bool

	pool *PagePool
}

// NewObject creates a memory object of the given size (in pages) backed by
// the pool, holding one creator reference.
func NewObject(pool *PagePool, size uint64) *Object {
	o := &Object{pages: make(map[uint64]*Page), size: size, pool: pool}
	o.lock.InitWith(splock.Opts{Class: classObject, Name: "vm.object"})
	o.refs.Init(1)
	o.refs.SetClass(classObject)
	return o
}

// Size returns the object's size in pages.
func (o *Object) Size() uint64 { return o.size }

// Reference clones a reference to the object (lock, increment, unlock).
func (o *Object) Reference() {
	o.lock.Lock()
	o.refs.Clone()
	o.lock.Unlock()
}

// Refs returns the current reference count (for tests).
func (o *Object) Refs() int32 {
	o.lock.Lock()
	defer o.lock.Unlock()
	return o.refs.Refs()
}

// Release drops one reference. Dropping the last one terminates the
// object: termination waits for paging operations to drain (the hybrid
// count's lock half), then frees all resident pages and destroys the pager
// port. Like every release it may block, so callers may not hold simple
// locks.
func (o *Object) Release(t *sched.Thread) {
	o.lock.Lock()
	//machvet:allow holdblock — decrement under the object's own lock is the release protocol; the blocking teardown runs after Unlock
	if !o.refs.Release() {
		o.lock.Unlock()
		return
	}
	// Last reference: terminate. Paging in progress excludes termination;
	// wait for it to drain.
	o.terminating = true
	for o.pagingInProgress > 0 {
		sched.ThreadSleep(t, sched.Event(&o.pagingInProgress), func() { o.lock.Unlock() })
		o.lock.Lock()
	}
	pages := o.pages
	o.pages = nil
	pager := o.pager
	o.pager = nil
	o.lock.Unlock()

	for _, pg := range pages {
		o.pool.Free(pg.pa)
	}
	if pager != nil {
		pager.Destroy()
	}
}

// PagingBegin registers a paging operation in progress, failing if the
// object is terminating (new operations are excluded, exactly like a lock
// that termination holds forever).
func (o *Object) PagingBegin() error {
	o.lock.Lock()
	defer o.lock.Unlock()
	if o.terminating {
		return ErrTerminating
	}
	o.pagingInProgress++
	return nil
}

// PagingEnd retires a paging operation, waking a terminator waiting for
// the count to drain.
func (o *Object) PagingEnd() {
	o.lock.Lock()
	o.pagingInProgress--
	if o.pagingInProgress < 0 {
		o.lock.Unlock()
		panic("vm: PagingEnd without PagingBegin")
	}
	wake := o.pagingInProgress == 0 && o.terminating
	o.lock.Unlock()
	if wake {
		sched.ThreadWakeup(sched.Event(&o.pagingInProgress))
	}
}

// PagingInProgress returns the current paging count (for tests).
func (o *Object) PagingInProgress() int32 {
	o.lock.Lock()
	defer o.lock.Unlock()
	return o.pagingInProgress
}

// EnsurePager returns the object's pager port, creating it at most once
// via the customized-lock protocol: "a boolean flag is set to indicate
// that the operation is in progress and a second one is set when the
// operation is complete. Both of these flags are set while holding a
// simple lock on the memory object structure." The create callback may
// block (port allocation does), which is the whole reason the simple lock
// alone cannot cover the operation.
func (o *Object) EnsurePager(t *sched.Thread, create func() *ipc.Port) *ipc.Port {
	o.lock.Lock()
	for {
		if o.pagerInitialized {
			p := o.pager
			o.lock.Unlock()
			return p
		}
		if o.pagerCreated {
			// Another thread is creating: wait for completion.
			o.pagerWanted = true
			sched.ThreadSleep(t, sched.Event(&o.pagerCreated), func() { o.lock.Unlock() })
			o.lock.Lock()
			continue
		}
		// We create. Mark in-progress under the lock, then drop the
		// lock for the blocking allocation.
		o.pagerCreated = true
		o.lock.Unlock()

		port := create()

		o.lock.Lock()
		o.pager = port
		o.pagerInitialized = true
		wake := o.pagerWanted
		o.pagerWanted = false
		if wake {
			// Wakeup is safe under a simple lock (it never blocks).
			sched.ThreadWakeup(sched.Event(&o.pagerCreated))
		}
	}
}

// Pager returns the pager port if initialized (nil otherwise).
func (o *Object) Pager() *ipc.Port {
	o.lock.Lock()
	defer o.lock.Unlock()
	if !o.pagerInitialized {
		return nil
	}
	return o.pager
}

// lookupPage returns the resident page at offset; object lock held.
func (o *Object) lookupPage(offset uint64) (*Page, bool) {
	pg, ok := o.pages[offset]
	return pg, ok
}

// ResidentPages returns the number of resident pages.
func (o *Object) ResidentPages() int {
	o.lock.Lock()
	defer o.lock.Unlock()
	return len(o.pages)
}

// String implements fmt.Stringer.
func (o *Object) String() string {
	return fmt.Sprintf("vm.Object(size=%d, resident=%d)", o.size, o.ResidentPages())
}

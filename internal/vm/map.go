package vm

import (
	"fmt"
	"sort"
	"sync/atomic"

	"machlock/internal/core/cxlock"
	"machlock/internal/core/refcount"
	"machlock/internal/core/splock"
	"machlock/internal/sched"
	"machlock/internal/trace"
)

// Observability classes: every map shares one class per lock site, so the
// contention profile aggregates across all maps in the system.
var (
	classMap    = trace.NewClass("vm", "vm.map", trace.KindComplex)
	classMapRef = trace.NewClass("vm", "vm.map.ref", trace.KindRef)

	// opFault spans one page fault end to end, splitting its latency into
	// lock wait and work (see trace.BeginSpan).
	opFault = trace.NewOp("vm", "op.fault")
)

// Entry is one allocated region of a map: [start, end) in page numbers,
// backed by object at the given page offset. Protected by the map's
// complex lock.
type Entry struct {
	start, end   uint64
	object       *Object
	offset       uint64
	wired        int
	inTransition bool
}

// Start returns the entry's first page number.
func (e *Entry) Start() uint64 { return e.start }

// End returns one past the entry's last page number.
func (e *Entry) End() uint64 { return e.end }

// WireCount returns the entry's wire count.
func (e *Entry) WireCount() int { return e.wired }

// Fetcher supplies page contents during a fault — the pager upcall. It may
// block (an RPC to an external pager), which is legal while holding the
// map's sleepable lock. A nil fetcher means zero-fill.
type Fetcher func(t *sched.Thread, o *Object, offset uint64) []byte

// Map is a task's address space description: "a paged virtual address
// space", protected by a sleepable complex lock ("Most complex locks use
// the sleep option, including the lock on a memory map data structure").
// Maps are refcounted but never deactivated — they are the paper's example
// of objects that "passively vanish when the last reference to them
// disappears".
type Map struct {
	lock cxlock.Lock

	refLock splock.Lock
	refs    refcount.Count

	entries []*Entry
	pool    *PagePool
	fetch   Fetcher

	faults    atomic.Int64
	shortWait atomic.Int64 // faults that hit a memory shortage and waited
}

// NewMap creates an empty map over the pool with one creator reference.
// The map lock is sleepable (pager RPCs block under it), recursive (the
// vm_map_pageable protocol re-acquires it), and reader-biased: lookups and
// faults — the hot paths — take the lock for reading far more often than
// allocations take it for writing, so readers publish themselves in the
// BRAVO slot table instead of serializing on the interlock.
func NewMap(pool *PagePool) *Map {
	m := &Map{pool: pool}
	m.lock.InitWith(cxlock.Options{
		Sleep:      true, // pager upcalls block under the map lock
		Recursive:  true, // vm_map_pageable's recursive hold (Section 7.1)
		ReaderBias: true,
		Name:       "vm.map",
		Class:      classMap,
	})
	m.refs.Init(1)
	m.refs.SetClass(classMapRef)
	m.refLock.InitWith(splock.Opts{Class: classMapRef, Name: "vm.map.ref"})
	classMapRef.CensusInc() // maps passively vanish; census out in Release
	return m
}

// SetFetcher installs the pager upcall.
func (m *Map) SetFetcher(f Fetcher) { m.fetch = f }

// DebugLock exposes the map's complex lock for debugging tools (naming it
// in the deadlock tracker). Operating on the lock directly bypasses the
// map's protocol; tools must only observe.
func (m *Map) DebugLock() *cxlock.Lock { return &m.lock }

// Reference clones a reference to the map.
func (m *Map) Reference() {
	m.refLock.Lock()
	m.refs.Clone()
	m.refLock.Unlock()
}

// Release drops a reference; the last one tears the map down, releasing
// each entry's object reference (which may terminate the objects and free
// their pages).
func (m *Map) Release(t *sched.Thread) {
	m.refLock.Lock()
	//machvet:allow holdblock — decrement under the map's own ref lock is the release protocol; the blocking teardown runs after Unlock
	last := m.refs.Release()
	m.refLock.Unlock()
	if !last {
		return
	}
	classMapRef.CensusDec()
	m.lock.Write(t)
	entries := m.entries
	m.entries = nil
	m.lock.Done(t)
	for _, e := range entries {
		e.object.Release(t)
	}
}

// Allocate inserts a region [start, start+npages) backed by obj at page
// offset objOffset, cloning a reference to obj for the entry. The paper's
// lock-ordering convention ("always lock the memory map before the memory
// object") is followed throughout the package.
func (m *Map) Allocate(t *sched.Thread, start, npages uint64, obj *Object, objOffset uint64) error {
	if npages == 0 {
		return fmt.Errorf("vm: zero-length allocation")
	}
	end := start + npages
	m.lock.Write(t)
	defer m.lock.Done(t)
	idx := sort.Search(len(m.entries), func(i int) bool { return m.entries[i].start >= end })
	if idx > 0 && m.entries[idx-1].end > start {
		return ErrOverlap
	}
	obj.Reference()
	e := &Entry{start: start, end: end, object: obj, offset: objOffset}
	m.entries = append(m.entries, nil)
	copy(m.entries[idx+1:], m.entries[idx:])
	m.entries[idx] = e
	return nil
}

// Deallocate removes the entry starting exactly at start, releasing its
// object reference. Wired or in-transition entries cannot be deallocated.
func (m *Map) Deallocate(t *sched.Thread, start uint64) error {
	m.lock.Write(t)
	var victim *Entry
	for i, e := range m.entries {
		if e.start == start {
			if e.wired > 0 || e.inTransition {
				m.lock.Done(t)
				return fmt.Errorf("vm: entry at %d is wired", start)
			}
			victim = e
			m.entries = append(m.entries[:i], m.entries[i+1:]...)
			break
		}
	}
	m.lock.Done(t)
	if victim == nil {
		return ErrNoEntry
	}
	victim.object.Release(t)
	return nil
}

// findEntry locates the entry covering va; map lock held (any mode).
func (m *Map) findEntry(va uint64) *Entry {
	idx := sort.Search(len(m.entries), func(i int) bool { return m.entries[i].end > va })
	if idx < len(m.entries) && m.entries[idx].start <= va {
		return m.entries[idx]
	}
	return nil
}

// Entries returns a snapshot of the entry list (for tests and tools).
func (m *Map) Entries(t *sched.Thread) []*Entry {
	m.lock.Read(t)
	defer m.lock.Done(t)
	out := make([]*Entry, len(m.entries))
	copy(out, m.entries)
	return out
}

// Faults returns the number of page faults handled.
func (m *Map) Faults() int64 { return m.faults.Load() }

// ShortageWaits returns how many faults had to wait for free memory.
func (m *Map) ShortageWaits() int64 { return m.shortWait.Load() }

// Fault resolves a page fault at va, bringing the page resident (and
// wiring it if wire is set). The protocol follows Mach's fault handler:
//
//   - take the map lock for reading (a recursive holder's read bypasses
//     pending writers, which is what lets vm_map_pageable call this with
//     the lock held recursively);
//   - busy pages are waited for and the whole fault retried;
//   - on memory shortage the fault "drops its lock to wait for memory" —
//     the exact behaviour that deadlocks under a recursive hold, since
//     only this fault's own hold is dropped, not the outer one.
func (m *Map) Fault(t *sched.Thread, va uint64, wire bool) error {
	defer trace.BeginSpan(t, opFault).End()
	for {
		m.lock.Read(t)
		e := m.findEntry(va)
		if e == nil {
			m.lock.Done(t)
			return ErrNoEntry
		}
		obj := e.object
		off := e.offset + (va - e.start)
		if err := obj.PagingBegin(); err != nil {
			m.lock.Done(t)
			return err
		}

		obj.lock.Lock()
		if pg, ok := obj.lookupPage(off); ok {
			if pg.busy {
				// Another fault is filling this page: wait for it
				// and retry from the top (pointers cannot be
				// cached across the unlock).
				pg.wanted = true
				sched.AssertWait(t, sched.Event(pg))
				obj.lock.Unlock()
				obj.PagingEnd()
				m.lock.Done(t)
				sched.ThreadBlock(t)
				continue
			}
			if wire {
				pg.wired = true
			}
			obj.lock.Unlock()
			obj.PagingEnd()
			m.faults.Add(1)
			m.lock.Done(t)
			return nil
		}
		// Not resident: insert a busy placeholder and fill it.
		pg := &Page{offset: off, busy: true, wired: wire}
		obj.pages[off] = pg
		obj.lock.Unlock()

		pa, ok := m.pool.TryAlloc()
		if !ok {
			// Memory shortage. Undo the placeholder, drop the map
			// lock, wait for memory, retry. With a recursive outer
			// hold this Done releases only the inner acquisition:
			// the map stays read-locked while we sleep — the
			// Section 7.1 deadlock ingredient.
			obj.lock.Lock()
			delete(obj.pages, off)
			wanted := pg.wanted
			obj.lock.Unlock()
			if wanted {
				sched.ThreadWakeup(sched.Event(pg))
			}
			obj.PagingEnd()
			m.shortWait.Add(1)
			m.lock.Done(t)
			m.pool.WaitForPages(t)
			continue
		}

		// Fill: from the pager if one is installed (may block — legal
		// under the sleepable map lock), else zero-fill.
		var data []byte
		if m.fetch != nil {
			data = m.fetch(t, obj, off)
		}
		obj.lock.Lock()
		pg.pa = pa
		pg.data = data
		pg.busy = false
		wanted := pg.wanted
		pg.wanted = false
		obj.lock.Unlock()
		if wanted {
			sched.ThreadWakeup(sched.Event(pg))
		}
		obj.PagingEnd()
		m.faults.Add(1)
		m.lock.Done(t)
		return nil
	}
}

// ReclaimPages frees up to max unwired, non-busy resident pages from the
// map's objects, returning the number freed. It requires the map lock for
// writing — which is why a pageout daemon blocks behind vm_map_pageable's
// outstanding recursive read hold in the Section 7.1 deadlock.
func (m *Map) ReclaimPages(t *sched.Thread, max int) int {
	m.lock.Write(t)
	defer m.lock.Done(t)
	freed := 0
	for _, e := range m.entries {
		if freed >= max {
			break
		}
		o := e.object
		o.lock.Lock()
		for off, pg := range o.pages {
			if freed >= max {
				break
			}
			if pg.busy || pg.wired {
				continue
			}
			delete(o.pages, off)
			m.pool.Free(pg.pa)
			freed++
		}
		o.lock.Unlock()
	}
	return freed
}

package vm

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"machlock/internal/ipc"
	"machlock/internal/sched"
)

func join(t *testing.T, what string, threads ...*sched.Thread) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		for _, th := range threads {
			th.Join()
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatalf("timed out waiting for %s", what)
	}
}

func TestPoolAllocFree(t *testing.T) {
	p := NewPool(3)
	if p.Total() != 3 || p.FreeCount() != 3 {
		t.Fatalf("fresh pool: total=%d free=%d", p.Total(), p.FreeCount())
	}
	seen := map[uint64]bool{}
	for i := 0; i < 3; i++ {
		pa, ok := p.TryAlloc()
		if !ok || seen[pa] {
			t.Fatalf("alloc %d: ok=%v pa=%d", i, ok, pa)
		}
		seen[pa] = true
	}
	if _, ok := p.TryAlloc(); ok {
		t.Fatal("alloc from empty pool succeeded")
	}
	if p.Shortages() != 1 {
		t.Fatalf("shortages = %d", p.Shortages())
	}
	p.Free(0)
	if pa, ok := p.TryAlloc(); !ok || pa != 0 {
		t.Fatalf("re-alloc after free: %d %v", pa, ok)
	}
}

func TestPoolWaitForPages(t *testing.T) {
	p := NewPool(1)
	pa, _ := p.TryAlloc()
	waiter := sched.Go("w", func(self *sched.Thread) {
		p.WaitForPages(self)
	})
	deadline := time.Now().Add(2 * time.Second)
	for waiter.Blocks() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never blocked")
		}
		time.Sleep(time.Millisecond)
	}
	p.Free(pa)
	join(t, "pool waiter", waiter)
}

func TestPoolWaitWhenPagesAvailableReturnsImmediately(t *testing.T) {
	p := NewPool(1)
	th := sched.New("t")
	p.WaitForPages(th) // must not block
	if th.Blocks() != 0 {
		t.Fatal("waiter blocked with pages available")
	}
}

func TestObjectDualCounts(t *testing.T) {
	pool := NewPool(8)
	o := NewObject(pool, 4)
	if err := o.PagingBegin(); err != nil {
		t.Fatal(err)
	}
	if o.PagingInProgress() != 1 {
		t.Fatalf("paging = %d", o.PagingInProgress())
	}
	// Termination (last release) must wait for the paging count.
	released := make(chan struct{})
	rel := sched.Go("rel", func(self *sched.Thread) {
		o.Release(self)
		close(released)
	})
	select {
	case <-released:
		t.Fatal("termination completed while paging in progress")
	case <-time.After(50 * time.Millisecond):
	}
	// New paging operations are excluded during termination.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if err := o.PagingBegin(); err != nil {
			if !errors.Is(err, ErrTerminating) {
				t.Fatalf("PagingBegin = %v", err)
			}
			break
		}
		// Terminator hasn't set the flag yet; undo and retry.
		o.PagingEnd()
		if time.Now().After(deadline) {
			t.Fatal("terminating flag never observed")
		}
		time.Sleep(time.Millisecond)
	}
	o.PagingEnd() // drain: termination proceeds
	join(t, "terminator", rel)
}

func TestObjectReleaseFreesPages(t *testing.T) {
	pool := NewPool(4)
	m := NewMap(pool)
	o := NewObject(pool, 4)
	th := sched.New("t")
	if err := m.Allocate(th, 0, 4, o, 0); err != nil {
		t.Fatal(err)
	}
	for va := uint64(0); va < 4; va++ {
		if err := m.Fault(th, va, false); err != nil {
			t.Fatal(err)
		}
	}
	if pool.FreeCount() != 0 {
		t.Fatalf("free = %d, want 0", pool.FreeCount())
	}
	o.Release(th) // creator ref; entry still holds one
	m.Release(th) // tears down entry → object terminates → pages freed
	if pool.FreeCount() != 4 {
		t.Fatalf("free after release = %d, want 4", pool.FreeCount())
	}
}

func TestPagingEndWithoutBeginPanics(t *testing.T) {
	o := NewObject(NewPool(1), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	o.PagingEnd()
}

func TestEnsurePagerCreatesExactlyOnce(t *testing.T) {
	pool := NewPool(1)
	o := NewObject(pool, 1)
	var creations atomic.Int32
	gate := make(chan struct{})
	create := func() *ipc.Port {
		creations.Add(1)
		<-gate // creation blocks, as port allocation may
		return ipc.NewPort("pager")
	}
	results := make(chan *ipc.Port, 4)
	var threads []*sched.Thread
	for i := 0; i < 4; i++ {
		threads = append(threads, sched.Go("t", func(self *sched.Thread) {
			results <- o.EnsurePager(self, create)
		}))
	}
	time.Sleep(20 * time.Millisecond) // let waiters pile up on the flags
	close(gate)
	join(t, "pager creators", threads...)
	first := <-results
	for i := 1; i < 4; i++ {
		if p := <-results; p != first {
			t.Fatal("EnsurePager returned different ports")
		}
	}
	if creations.Load() != 1 {
		t.Fatalf("create ran %d times, want 1", creations.Load())
	}
	if o.Pager() != first {
		t.Fatal("Pager() disagrees")
	}
}

func TestMapAllocateOverlapRejected(t *testing.T) {
	pool := NewPool(8)
	m := NewMap(pool)
	o := NewObject(pool, 8)
	th := sched.New("t")
	if err := m.Allocate(th, 0, 4, o, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Allocate(th, 2, 4, o, 0); !errors.Is(err, ErrOverlap) {
		t.Fatalf("overlap = %v, want ErrOverlap", err)
	}
	if err := m.Allocate(th, 4, 4, o, 4); err != nil {
		t.Fatalf("adjacent allocation failed: %v", err)
	}
	if n := len(m.Entries(th)); n != 2 {
		t.Fatalf("entries = %d", n)
	}
}

func TestFaultZeroFillAndResidency(t *testing.T) {
	pool := NewPool(4)
	m := NewMap(pool)
	o := NewObject(pool, 4)
	th := sched.New("t")
	if err := m.Allocate(th, 100, 4, o, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Fault(th, 102, false); err != nil {
		t.Fatal(err)
	}
	if o.ResidentPages() != 1 {
		t.Fatalf("resident = %d", o.ResidentPages())
	}
	// Second fault on the same page is a soft fault: no new allocation.
	if err := m.Fault(th, 102, false); err != nil {
		t.Fatal(err)
	}
	if pool.FreeCount() != 3 {
		t.Fatalf("free = %d, want 3", pool.FreeCount())
	}
	if m.Faults() != 2 {
		t.Fatalf("faults = %d", m.Faults())
	}
}

func TestFaultNoEntry(t *testing.T) {
	m := NewMap(NewPool(1))
	th := sched.New("t")
	if err := m.Fault(th, 55, false); !errors.Is(err, ErrNoEntry) {
		t.Fatalf("fault = %v, want ErrNoEntry", err)
	}
}

func TestFaultUsesFetcher(t *testing.T) {
	pool := NewPool(4)
	m := NewMap(pool)
	o := NewObject(pool, 4)
	th := sched.New("t")
	m.SetFetcher(func(_ *sched.Thread, _ *Object, off uint64) []byte {
		return []byte{byte(off), 0xAB}
	})
	if err := m.Allocate(th, 0, 4, o, 7); err != nil {
		t.Fatal(err)
	}
	if err := m.Fault(th, 2, false); err != nil {
		t.Fatal(err)
	}
	o.lock.Lock()
	pg := o.pages[9] // entry offset 7 + (va 2 - start 0)
	o.lock.Unlock()
	if pg == nil || pg.Data()[0] != 9 || pg.Data()[1] != 0xAB {
		t.Fatalf("page data = %+v", pg)
	}
}

func TestConcurrentFaultsSamePageSingleFill(t *testing.T) {
	pool := NewPool(8)
	m := NewMap(pool)
	o := NewObject(pool, 4)
	var fills atomic.Int32
	m.SetFetcher(func(*sched.Thread, *Object, uint64) []byte {
		fills.Add(1)
		time.Sleep(10 * time.Millisecond) // widen the busy window
		return []byte{1}
	})
	boss := sched.New("boss")
	if err := m.Allocate(boss, 0, 4, o, 0); err != nil {
		t.Fatal(err)
	}
	var threads []*sched.Thread
	for i := 0; i < 6; i++ {
		threads = append(threads, sched.Go("faulter", func(self *sched.Thread) {
			if err := m.Fault(self, 1, false); err != nil {
				t.Errorf("fault: %v", err)
			}
		}))
	}
	join(t, "concurrent faulters", threads...)
	if fills.Load() != 1 {
		t.Fatalf("page filled %d times, want 1 (busy protocol broken)", fills.Load())
	}
	if pool.FreeCount() != 7 {
		t.Fatalf("free = %d, want 7 (double allocation)", pool.FreeCount())
	}
}

func TestFaultShortageWaitsAndResumes(t *testing.T) {
	pool := NewPool(1)
	m := NewMap(pool)
	o := NewObject(pool, 4)
	th := sched.New("t")
	if err := m.Allocate(th, 0, 4, o, 0); err != nil {
		t.Fatal(err)
	}
	pa, _ := pool.TryAlloc() // drain the pool
	faulter := sched.Go("faulter", func(self *sched.Thread) {
		if err := m.Fault(self, 0, false); err != nil {
			t.Errorf("fault: %v", err)
		}
	})
	deadline := time.Now().Add(2 * time.Second)
	for m.ShortageWaits() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("fault never hit the shortage path")
		}
		time.Sleep(time.Millisecond)
	}
	pool.Free(pa)
	join(t, "shortage faulter", faulter)
	if o.ResidentPages() != 1 {
		t.Fatal("page not resident after shortage resolved")
	}
}

func TestWireAndUnwire(t *testing.T) {
	pool := NewPool(8)
	m := NewMap(pool)
	o := NewObject(pool, 8)
	th := sched.New("t")
	if err := m.Allocate(th, 0, 4, o, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Wire(th, 0, 4); err != nil {
		t.Fatal(err)
	}
	if o.ResidentPages() != 4 {
		t.Fatalf("resident = %d", o.ResidentPages())
	}
	// Wired pages are not reclaimable.
	if n := m.ReclaimPages(th, 10); n != 0 {
		t.Fatalf("reclaimed %d wired pages", n)
	}
	if err := m.Unwire(th, 0, 4); err != nil {
		t.Fatal(err)
	}
	if n := m.ReclaimPages(th, 10); n != 4 {
		t.Fatalf("reclaimed %d, want 4 after unwire", n)
	}
	if pool.FreeCount() != 8 {
		t.Fatalf("free = %d, want 8", pool.FreeCount())
	}
}

func TestWireRecursiveSucceedsWithEnoughMemory(t *testing.T) {
	pool := NewPool(8)
	m := NewMap(pool)
	o := NewObject(pool, 8)
	boss := sched.New("boss")
	if err := m.Allocate(boss, 0, 4, o, 0); err != nil {
		t.Fatal(err)
	}
	w := sched.Go("wire", func(self *sched.Thread) {
		if err := m.WireRecursive(self, 0, 4); err != nil {
			t.Errorf("WireRecursive: %v", err)
		}
	})
	join(t, "recursive wire", w)
	if o.ResidentPages() != 4 {
		t.Fatalf("resident = %d", o.ResidentPages())
	}
	ents := m.Entries(boss)
	if len(ents) != 1 || ents[0].WireCount() != 1 {
		t.Fatalf("entries = %+v", ents)
	}
}

func TestWireRangeErrors(t *testing.T) {
	pool := NewPool(8)
	m := NewMap(pool)
	o := NewObject(pool, 8)
	th := sched.New("t")
	if err := m.Allocate(th, 0, 2, o, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Wire(th, 0, 0); err == nil {
		t.Fatal("empty range accepted")
	}
	if err := m.Wire(th, 0, 4); !errors.Is(err, ErrNoEntry) {
		t.Fatalf("uncovered range = %v, want ErrNoEntry", err)
	}
	if err := m.Unwire(th, 0, 2); err == nil {
		t.Fatal("unwire of unwired entry accepted")
	}
}

func TestDeallocateWiredRefused(t *testing.T) {
	pool := NewPool(8)
	m := NewMap(pool)
	o := NewObject(pool, 8)
	th := sched.New("t")
	m.Allocate(th, 0, 2, o, 0)
	if err := m.Wire(th, 0, 2); err != nil {
		t.Fatal(err)
	}
	if err := m.Deallocate(th, 0); err == nil {
		t.Fatal("deallocate of wired entry accepted")
	}
	m.Unwire(th, 0, 2)
	if err := m.Deallocate(th, 0); err != nil {
		t.Fatal(err)
	}
}

// TestSection71DeadlockRecursive reproduces the paper's vm_map_pageable
// deadlock: WireRecursive holds a recursive read lock on the map while a
// fault inside it waits for memory; the pageout daemon needs the map's
// write lock to free memory; nothing can proceed. The test detects the
// deadlock (no progress), then resolves it by adding emergency pages so
// everything can be torn down.
func TestSection71DeadlockRecursive(t *testing.T) {
	pool := NewPool(4)
	m := NewMap(pool)
	hog := NewObject(pool, 4)    // entry B: consumes all memory, unwired
	target := NewObject(pool, 4) // entry A: to be wired
	boss := sched.New("boss")
	if err := m.Allocate(boss, 0, 4, hog, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Allocate(boss, 10, 4, target, 0); err != nil {
		t.Fatal(err)
	}
	for va := uint64(0); va < 4; va++ {
		if err := m.Fault(boss, va, false); err != nil {
			t.Fatal(err)
		}
	}
	if pool.FreeCount() != 0 {
		t.Fatal("setup: pool should be exhausted")
	}

	// The daemon is started only after the wire hits the shortage, so the
	// interleaving is deterministic: the recursive read hold is already in
	// place when the daemon first tries for the write lock.
	pd := NewPageout(pool)
	pd.AddMap(m)
	defer pd.Stop()

	wireDone := make(chan struct{})
	wirer := sched.Go("wirer", func(self *sched.Thread) {
		if err := m.WireRecursive(self, 10, 14); err != nil {
			t.Errorf("WireRecursive: %v", err)
		}
		close(wireDone)
	})

	// The wire must hit the shortage and stall; the daemon must be unable
	// to reclaim the hog's 4 unwired pages because the write lock is
	// unavailable.
	deadline := time.Now().Add(5 * time.Second)
	for m.ShortageWaits() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("wire never hit the shortage path")
		}
		time.Sleep(time.Millisecond)
	}
	pd.Start()
	time.Sleep(200 * time.Millisecond) // give the daemon every chance
	select {
	case <-wireDone:
		t.Fatal("recursive wire completed; deadlock not reproduced")
	default:
	}
	if pd.Reclaims() != 0 {
		t.Fatalf("daemon reclaimed %d pages through the recursive hold", pd.Reclaims())
	}

	// Resolve: inject memory, as cmd/deadlockdemo does to report cleanly.
	pool.EmergencyAdd(4)
	join(t, "wirer after emergency", wirer)
	<-wireDone
}

// TestSection71RewriteAvoidsDeadlock runs the identical scenario against
// the rewritten Wire: the pageout daemon can take the write lock between
// faults, reclaims the hog's pages, and the wire completes with no
// emergency memory.
func TestSection71RewriteAvoidsDeadlock(t *testing.T) {
	pool := NewPool(4)
	m := NewMap(pool)
	hog := NewObject(pool, 4)
	target := NewObject(pool, 4)
	boss := sched.New("boss")
	if err := m.Allocate(boss, 0, 4, hog, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Allocate(boss, 10, 4, target, 0); err != nil {
		t.Fatal(err)
	}
	for va := uint64(0); va < 4; va++ {
		if err := m.Fault(boss, va, false); err != nil {
			t.Fatal(err)
		}
	}

	pd := NewPageout(pool)
	pd.AddMap(m)
	pd.Start()
	defer pd.Stop()

	wirer := sched.Go("wirer", func(self *sched.Thread) {
		if err := m.Wire(self, 10, 14); err != nil {
			t.Errorf("Wire: %v", err)
		}
	})
	join(t, "rewritten wire under memory pressure", wirer)
	if pd.Reclaims() == 0 {
		t.Fatal("daemon never reclaimed (scenario did not exercise pressure)")
	}
	if target.ResidentPages() != 4 {
		t.Fatalf("wired pages resident = %d", target.ResidentPages())
	}
}

package vm

import (
	"strings"
	"testing"
	"time"

	"machlock/internal/sched"
)

func TestAccessors(t *testing.T) {
	pool := NewPool(8)
	m := NewMap(pool)
	o := NewObject(pool, 8)
	th := sched.New("t")

	if o.Size() != 8 {
		t.Fatalf("size = %d", o.Size())
	}
	if !strings.Contains(o.String(), "size=8") {
		t.Fatalf("String = %q", o.String())
	}
	if m.DebugLock() == nil {
		t.Fatal("DebugLock nil")
	}

	if err := m.Allocate(th, 0, 4, o, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Fault(th, 1, true); err != nil {
		t.Fatal(err)
	}
	o.lock.Lock()
	pg := o.pages[1]
	o.lock.Unlock()
	if !pg.Wired() {
		t.Fatal("page not wired")
	}
	if pg.PA() > 7 {
		t.Fatalf("pa = %d out of pool range", pg.PA())
	}

	// Map references: clone and release without destruction.
	m.Reference()
	m.Release(th) // drops the clone; map survives
	if err := m.Fault(th, 2, false); err != nil {
		t.Fatal(err)
	}
}

func TestPageoutPasses(t *testing.T) {
	pool := NewPool(2)
	m := NewMap(pool)
	o := NewObject(pool, 2)
	th := sched.New("t")
	if err := m.Allocate(th, 0, 2, o, 0); err != nil {
		t.Fatal(err)
	}
	for va := uint64(0); va < 2; va++ {
		if err := m.Fault(th, va, false); err != nil {
			t.Fatal(err)
		}
	}
	pd := NewPageout(pool)
	pd.AddMap(m)
	pd.Start()
	deadline := time.Now().Add(5 * time.Second)
	for pd.Passes() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("daemon never ran a shortage pass")
		}
		time.Sleep(time.Millisecond)
	}
	pd.Stop()
	if pd.Reclaims() == 0 {
		t.Fatal("daemon reclaimed nothing from an exhausted pool")
	}
}

func TestWireRecursiveRangeErrors(t *testing.T) {
	pool := NewPool(8)
	m := NewMap(pool)
	o := NewObject(pool, 8)
	th := sched.New("t")
	m.Allocate(th, 0, 2, o, 0)
	if err := m.WireRecursive(th, 0, 6); err != ErrNoEntry {
		t.Fatalf("uncovered recursive wire = %v, want ErrNoEntry", err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("nil-thread WireRecursive did not panic")
			}
		}()
		m.WireRecursive(nil, 0, 2)
	}()
}

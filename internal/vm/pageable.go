package vm

import (
	"fmt"

	"machlock/internal/sched"
)

// WireRecursive is the ORIGINAL vm_map_pageable design the paper dissects
// in Section 7.1 — "the original motivation for recursive locking and an
// example of its drawbacks":
//
//	"When making memory nonpageable (i.e., wired or pinned), it acquires
//	a write lock on the memory map to change the appropriate map entries,
//	and downgrades to a recursive read lock to fault in the memory."
//
// The fault routine's read acquisitions succeed against pending writers
// because this thread is the recursive holder. But if a fault hits a
// memory shortage it drops only ITS OWN lock to wait for memory, while the
// outer recursive read hold remains — and if obtaining more memory
// requires a write lock on the same map (the pageout path), the system
// deadlocks. "While these deadlocks are difficult to cause, they have been
// observed in practice."
//
// This implementation is kept deliberately faithful so the deadlock can be
// demonstrated (experiment E11, cmd/deadlockdemo). Use Wire for the
// rewritten, deadlock-free protocol.
func (m *Map) WireRecursive(t *sched.Thread, start, end uint64) error {
	if t == nil {
		panic("vm: WireRecursive requires a thread identity")
	}
	// Write lock to update the entries.
	m.lock.Write(t)
	entries, err := m.clipRange(start, end)
	if err != nil {
		m.lock.Done(t)
		return err
	}
	for _, e := range entries {
		e.wired++
	}
	// Downgrade to a recursive read lock and fault the pages in. To
	// avoid an upgrade later, "vm_map_pageable must perform any work that
	// would otherwise necessitate a write lock" before downgrading —
	// we already did (the wired counts).
	m.lock.SetRecursive(t)
	m.lock.WriteToRead(t)

	faultErr := m.faultRange(t, start, end)

	if faultErr != nil {
		// Unwind under the still-held recursive read lock: the wired
		// counts were taken under the write lock; correcting them needs
		// it again, so upgrade by draining our own recursion first.
		// (In this simplified model the counts are only read under the
		// write lock, so adjusting them under our read hold is safe.)
		for _, e := range entries {
			e.wired--
		}
	}
	m.lock.ClearRecursive(t)
	m.lock.Done(t)
	return faultErr
}

// Wire is the REWRITTEN vm_map_pageable: "To eliminate [the deadlocks],
// vm_map_pageable is being rewritten to avoid the use of recursive locks."
// The write lock marks the entries in-transition and is then fully
// released; the faults run under ordinary short read holds, so a pageout
// daemon needing the write lock can always make progress; a final write
// lock clears the transition state.
func (m *Map) Wire(t *sched.Thread, start, end uint64) error {
	m.lock.Write(t)
	entries, err := m.clipRange(start, end)
	if err != nil {
		m.lock.Done(t)
		return err
	}
	for _, e := range entries {
		if e.inTransition {
			// Another wire operation is in flight on this entry;
			// real Mach waits for it. Keep the model simple and
			// refuse without having modified anything.
			m.lock.Done(t)
			return fmt.Errorf("vm: entry at %d already in transition", e.start)
		}
	}
	for _, e := range entries {
		e.wired++
		e.inTransition = true
	}
	m.lock.Done(t)

	faultErr := m.faultRange(t, start, end)

	m.lock.Write(t)
	for _, e := range entries {
		e.inTransition = false
		if faultErr != nil {
			e.wired-- // unwind a failed wire
		}
	}
	m.lock.Done(t)
	return faultErr
}

// Unwire reverses a successful wire of [start, end).
func (m *Map) Unwire(t *sched.Thread, start, end uint64) error {
	m.lock.Write(t)
	defer m.lock.Done(t)
	entries, err := m.clipRange(start, end)
	if err != nil {
		return err
	}
	// Validate the whole range before mutating anything: a failure
	// halfway through must not leave earlier entries half-unwired.
	for _, e := range entries {
		if e.wired == 0 {
			return fmt.Errorf("vm: entry at %d not wired", e.start)
		}
	}
	for _, e := range entries {
		e.wired--
		if e.wired == 0 {
			o := e.object
			o.lock.Lock()
			for off := e.offset; off < e.offset+(e.end-e.start); off++ {
				if pg, ok := o.pages[off]; ok {
					pg.wired = false
				}
			}
			o.lock.Unlock()
		}
	}
	return nil
}

// faultRange faults every page of [start, end), wiring each.
func (m *Map) faultRange(t *sched.Thread, start, end uint64) error {
	for va := start; va < end; va++ {
		if err := m.Fault(t, va, true); err != nil {
			return err
		}
	}
	return nil
}

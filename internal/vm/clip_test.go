package vm

import (
	"testing"
	"testing/quick"

	"machlock/internal/sched"
)

func TestPartialWireClipsEntry(t *testing.T) {
	pool := NewPool(16)
	m := NewMap(pool)
	o := NewObject(pool, 16)
	th := sched.New("t")
	if err := m.Allocate(th, 0, 16, o, 0); err != nil {
		t.Fatal(err)
	}
	// Wire only the middle four pages of the sixteen-page entry.
	if err := m.Wire(th, 6, 10); err != nil {
		t.Fatal(err)
	}
	ents := m.Entries(th)
	if len(ents) != 3 {
		t.Fatalf("entries after clip = %d, want 3", len(ents))
	}
	for _, e := range ents {
		wantWired := 0
		if e.Start() == 6 && e.End() == 10 {
			wantWired = 1
		}
		if e.WireCount() != wantWired {
			t.Fatalf("entry [%d,%d) wired=%d, want %d", e.Start(), e.End(), e.WireCount(), wantWired)
		}
	}
	if o.ResidentPages() != 4 {
		t.Fatalf("resident = %d, want 4 (only the wired window faults)", o.ResidentPages())
	}
	// Unwire exactly that window.
	if err := m.Unwire(th, 6, 10); err != nil {
		t.Fatal(err)
	}
	if n := m.ReclaimPages(th, 16); n != 4 {
		t.Fatalf("reclaimed %d, want 4", n)
	}
}

func TestConcurrentWiresOfDisjointSubranges(t *testing.T) {
	// The case the kernel smoke test originally hit: two wires on
	// disjoint parts of ONE entry must both succeed via clipping.
	pool := NewPool(32)
	m := NewMap(pool)
	o := NewObject(pool, 32)
	boss := sched.New("boss")
	if err := m.Allocate(boss, 0, 32, o, 0); err != nil {
		t.Fatal(err)
	}
	w1 := sched.Go("w1", func(self *sched.Thread) {
		if err := m.Wire(self, 0, 8); err != nil {
			t.Errorf("wire 1: %v", err)
		}
	})
	w2 := sched.Go("w2", func(self *sched.Thread) {
		if err := m.Wire(self, 16, 24); err != nil {
			t.Errorf("wire 2: %v", err)
		}
	})
	w1.Join()
	w2.Join()
	if o.ResidentPages() != 16 {
		t.Fatalf("resident = %d, want 16", o.ResidentPages())
	}
}

func TestClipPreservesFaultSemantics(t *testing.T) {
	pool := NewPool(16)
	m := NewMap(pool)
	o := NewObject(pool, 16)
	th := sched.New("t")
	m.SetFetcher(func(_ *sched.Thread, _ *Object, off uint64) []byte {
		return []byte{byte(off)}
	})
	if err := m.Allocate(th, 100, 16, o, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Wire(th, 104, 108); err != nil { // clips
		t.Fatal(err)
	}
	// Fault outside the wired window: the clipped entries must still
	// translate addresses to the right object offsets.
	if err := m.Fault(th, 110, false); err != nil {
		t.Fatal(err)
	}
	o.lock.Lock()
	pg := o.pages[10]
	o.lock.Unlock()
	if pg == nil || pg.Data()[0] != 10 {
		t.Fatalf("post-clip fault resolved wrong offset: %+v", pg)
	}
}

func TestDeallocateRangeMiddleOfEntry(t *testing.T) {
	pool := NewPool(16)
	m := NewMap(pool)
	o := NewObject(pool, 16)
	th := sched.New("t")
	if err := m.Allocate(th, 0, 16, o, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.DeallocateRange(th, 4, 12); err != nil {
		t.Fatal(err)
	}
	ents := m.Entries(th)
	if len(ents) != 2 {
		t.Fatalf("entries = %d, want 2", len(ents))
	}
	// The hole must not fault.
	if err := m.Fault(th, 8, false); err != ErrNoEntry {
		t.Fatalf("fault in hole = %v, want ErrNoEntry", err)
	}
	// The flanks must.
	if err := m.Fault(th, 2, false); err != nil {
		t.Fatal(err)
	}
	if err := m.Fault(th, 14, false); err != nil {
		t.Fatal(err)
	}
	// The object survived: two entries still reference it.
	if o.Refs() != 3 { // creator + two clipped entries
		t.Fatalf("object refs = %d, want 3", o.Refs())
	}
}

func TestDeallocateRangeWiredRefused(t *testing.T) {
	pool := NewPool(16)
	m := NewMap(pool)
	o := NewObject(pool, 16)
	th := sched.New("t")
	m.Allocate(th, 0, 8, o, 0)
	if err := m.Wire(th, 2, 4); err != nil {
		t.Fatal(err)
	}
	if err := m.DeallocateRange(th, 0, 8); err == nil {
		t.Fatal("deallocating a wired range succeeded")
	}
	// The unwired flank can go.
	if err := m.DeallocateRange(th, 4, 8); err != nil {
		t.Fatal(err)
	}
}

func TestDeallocateRangeUncoveredFails(t *testing.T) {
	pool := NewPool(16)
	m := NewMap(pool)
	o := NewObject(pool, 16)
	th := sched.New("t")
	m.Allocate(th, 0, 4, o, 0)
	if err := m.DeallocateRange(th, 0, 8); err != ErrNoEntry {
		t.Fatalf("err = %v, want ErrNoEntry", err)
	}
	if err := m.DeallocateRange(th, 8, 4); err == nil {
		t.Fatal("inverted range accepted")
	}
	// Nothing was clipped by the failed attempts.
	if n := len(m.Entries(th)); n != 1 {
		t.Fatalf("entries = %d, want 1 (failed deallocate must not clip)", n)
	}
}

// Property: after any sequence of partial wires and unwires on one entry,
// (a) entries exactly tile the original range, (b) offsets stay consistent
// with addresses, and (c) wire counts are never negative.
func TestClipTilingQuick(t *testing.T) {
	type op struct {
		Wire  bool
		Start uint8
		Len   uint8
	}
	f := func(ops []op) bool {
		pool := NewPool(64)
		m := NewMap(pool)
		o := NewObject(pool, 32)
		th := sched.New("t")
		if err := m.Allocate(th, 0, 32, o, 0); err != nil {
			return false
		}
		wired := make([]int, 32) // reference wire counts per page
		for _, oper := range ops {
			start := uint64(oper.Start % 32)
			length := uint64(oper.Len%8) + 1
			end := start + length
			if end > 32 {
				end = 32
			}
			if oper.Wire {
				if err := m.Wire(th, start, end); err != nil {
					return false
				}
				for p := start; p < end; p++ {
					wired[p]++
				}
			} else {
				legal := true
				for p := start; p < end; p++ {
					if wired[p] == 0 {
						legal = false
					}
				}
				err := m.Unwire(th, start, end)
				if legal != (err == nil) {
					return false
				}
				if err == nil {
					for p := start; p < end; p++ {
						wired[p]--
					}
				}
			}
		}
		// Tiling + consistency checks.
		ents := m.Entries(th)
		addr := uint64(0)
		for _, e := range ents {
			if e.Start() != addr {
				return false // gap or overlap
			}
			if e.offset != e.start {
				return false // offsets must track addresses (offset base 0)
			}
			for p := e.Start(); p < e.End(); p++ {
				if e.WireCount() != wired[p] {
					return false
				}
			}
			addr = e.End()
		}
		return addr == 32
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Package vm implements the machine-independent virtual memory substrate
// the paper's examples live in: memory maps protected by sleepable complex
// locks, memory objects with the dual reference counts of Section 8, the
// pager-port customized lock of Section 5, the fault path, and both the
// recursive-lock vm_map_pageable the paper criticizes (Section 7.1) and
// the rewritten version that replaced it.
package vm

import (
	"errors"

	"machlock/internal/core/splock"
	"machlock/internal/sched"
)

// Errors returned by VM operations.
var (
	ErrNoEntry     = errors.New("vm: no map entry covers address")
	ErrTerminating = errors.New("vm: memory object is terminating")
	ErrOverlap     = errors.New("vm: entry overlaps existing allocation")
	ErrDeadlock    = errors.New("vm: wire operation deadlocked (recursive lock)")
)

// Page is one resident page of a memory object. Its fields are protected
// by the owning object's lock. busy marks a page mid-fill: other faulters
// set wanted and sleep on the page.
type Page struct {
	offset uint64
	pa     uint64
	busy   bool
	wanted bool
	wired  bool
	data   []byte
}

// PA returns the physical page backing this page.
func (p *Page) PA() uint64 { return p.pa }

// Wired reports whether the page is wired (non-pageable).
func (p *Page) Wired() bool { return p.wired }

// Data returns the page contents (nil for untouched zero-fill pages).
func (p *Page) Data() []byte { return p.data }

// PagePool is the free physical page pool. Allocation never blocks by
// itself; callers that find the pool empty use WaitForPages — releasing
// their locks first per the paper's shortage protocol — and retry.
type PagePool struct {
	lock    splock.Lock
	free    []uint64
	total   int
	waiting bool

	allocs    int64
	frees     int64
	shortages int64
}

// NewPool creates a pool of npages physical pages numbered 0..npages-1.
// The pool lock is the kernel's single hottest simple lock — every fault
// and every teardown goes through it from every processor — so it uses
// the queue algorithm from the arsenal: constant interconnect traffic and
// FIFO handoff instead of a TTAS stampede per release.
func NewPool(npages int) *PagePool {
	p := &PagePool{total: npages}
	p.lock.InitWith(splock.Opts{Algorithm: splock.Queue, Name: "vm.pagepool"})
	p.free = make([]uint64, npages)
	for i := range p.free {
		p.free[i] = uint64(i)
	}
	return p
}

// TryAlloc grabs a free page, returning ok=false on shortage.
func (p *PagePool) TryAlloc() (pa uint64, ok bool) {
	p.lock.Lock()
	defer p.lock.Unlock()
	if len(p.free) == 0 {
		p.shortages++
		return 0, false
	}
	pa = p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	p.allocs++
	return pa, true
}

// Free returns a page to the pool and wakes any shortage waiters.
func (p *PagePool) Free(pa uint64) {
	p.lock.Lock()
	p.free = append(p.free, pa)
	p.frees++
	wake := p.waiting
	p.waiting = false
	p.lock.Unlock()
	if wake {
		sched.ThreadWakeup(sched.Event(p))
	}
}

// WaitForPages blocks t until a page is freed. The caller must hold no
// locks (the fault path drops the map lock before waiting — the exact step
// that interacts so badly with recursive locks in Section 7.1).
func (p *PagePool) WaitForPages(t *sched.Thread) {
	p.lock.Lock()
	if len(p.free) > 0 {
		p.lock.Unlock()
		return
	}
	p.waiting = true
	sched.ThreadSleep(t, sched.Event(p), func() { p.lock.Unlock() })
}

// FreeCount returns the number of free pages.
func (p *PagePool) FreeCount() int {
	p.lock.Lock()
	defer p.lock.Unlock()
	return len(p.free)
}

// Total returns the pool's size.
func (p *PagePool) Total() int { return p.total }

// Shortages returns how many allocations failed for lack of memory.
func (p *PagePool) Shortages() int64 {
	p.lock.Lock()
	defer p.lock.Unlock()
	return p.shortages
}

// EmergencyAdd grows the pool by n fresh pages (numbered beyond the
// original range) and wakes waiters. Used by the deadlock demonstrations
// to resolve an induced deadlock so the process can report it.
func (p *PagePool) EmergencyAdd(n int) {
	p.lock.Lock()
	for i := 0; i < n; i++ {
		p.free = append(p.free, uint64(p.total+i))
	}
	p.total += n
	p.waiting = false
	p.lock.Unlock()
	sched.ThreadWakeup(sched.Event(p))
}

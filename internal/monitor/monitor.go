// Package monitor is the kernel's continuous self-observation service: a
// background watchdog that watches the trace layer's contention profiles,
// the deadlock tracker's wait-for graph, and the live-object census, and
// files structured incident reports when any of them crosses a configured
// threshold. It is the "always on in production" complement to the
// on-demand tools (cmd/locktrace, cmd/deadlockdemo): where those require a
// developer at the keyboard, the monitor captures the evidence — offending
// class, holder and waiter threads, flight-recorder tail, wait-for graph —
// at the moment the anomaly happens, into a bounded in-memory log served
// over HTTP (see Handler).
//
// The monitor deliberately layers on the existing observability surfaces
// rather than adding new hooks: it installs a deadlock.Tracker through the
// cxlock observer fan-out (coexisting with any other observers) and reads
// the same trace.Profiles() the exporters read. With the monitor stopped,
// kernel hot paths pay exactly what they paid before — one atomic load per
// trace hook and one nil check per observer dispatch.
package monitor

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"machlock/internal/core/splock"
	"machlock/internal/deadlock"
	"machlock/internal/opspan"
	"machlock/internal/trace"
)

// Config tunes the watchdog. The zero value is usable: deadlock detection
// on, every threshold check off.
type Config struct {
	// Interval between watchdog passes (default 100ms).
	Interval time.Duration

	// LongHoldNs files a long-hold incident when a class's maximum
	// observed hold time crosses it. 0 disables the check.
	LongHoldNs int64
	// LongWaitNs files a long-wait incident when a class's maximum
	// observed wait time crosses it. 0 disables the check.
	LongWaitNs int64
	// RefLeakLive files a ref-leak incident when a class's live census
	// exceeds it — the signature of a missing Release in a loop.
	// 0 disables the check.
	RefLeakLive int64

	// DeadlockSamples and DeadlockSampleGap parameterize
	// deadlock.DetectStable on each pass (defaults 3 and 1ms): cycles must
	// persist across all samples, filtering transient spin waits.
	DeadlockSamples   int
	DeadlockSampleGap time.Duration

	// Incidents bounds the incident log (default DefaultIncidentCapacity).
	Incidents int
	// RingTail is how many flight-recorder events each incident captures
	// (default 32).
	RingTail int

	// Rearm re-arms the per-anomaly incident dedup on this period, so an
	// anomaly that persists (a lock held for minutes, a census that keeps
	// climbing) files fresh incidents instead of exactly one per monitor
	// run. 0 keeps the original file-once behaviour — right for tests and
	// short tools, wrong for a long-running daemon.
	Rearm time.Duration
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 100 * time.Millisecond
	}
	if c.DeadlockSamples < 1 {
		c.DeadlockSamples = 3
	}
	if c.DeadlockSampleGap <= 0 {
		c.DeadlockSampleGap = time.Millisecond
	}
	if c.RingTail < 1 {
		c.RingTail = 32
	}
	return c
}

// Monitor is the watchdog service. Create with New, start with Start,
// inspect through Incidents/Tracker/Handler.
type Monitor struct {
	cfg     Config
	tracker *deadlock.Tracker
	log     *IncidentLog
	spc     spCensus

	ticks     atomic.Int64
	byKind    [4]atomic.Int64 // indexed by kindIndex
	startedAt atomic.Int64    // unix ns; 0 = not running
	lastRearm atomic.Int64    // unix ns of the last dedup re-arm

	mu       sync.Mutex
	reported map[string]bool // dedup: incidents already filed this run
	running  bool
	ownTrace bool // we enabled tracing, so Stop disables it
	stop     chan struct{}
	done     chan struct{}
}

// spCensus is the monitor's simple-lock observer: an aggregate census of
// spin-lock traffic (PR 3 noted spin locks were invisible to the monitor;
// the splock observer fan-out closes that). Counts are monitor-lifetime —
// collection starts at Start and pauses at Stop.
type spCensus struct {
	acquired  atomic.Int64
	contended atomic.Int64
	released  atomic.Int64
	spinning  atomic.Int64 // threads currently in a contended spin
}

func (c *spCensus) Acquired(l *splock.Lock, contended bool) {
	c.acquired.Add(1)
	if contended {
		c.contended.Add(1)
	}
}

func (c *spCensus) Released(l *splock.Lock) { c.released.Add(1) }

func (c *spCensus) Waiting(l *splock.Lock) { c.spinning.Add(1) }

func (c *spCensus) DoneWaiting(l *splock.Lock) { c.spinning.Add(-1) }

func kindIndex(k IncidentKind) int {
	switch k {
	case KindDeadlock:
		return 0
	case KindLongHold:
		return 1
	case KindLongWait:
		return 2
	default:
		return 3 // KindRefLeak
	}
}

// New creates a monitor with its own deadlock tracker and incident log.
// Nothing observes or runs until Start.
func New(cfg Config) *Monitor {
	cfg = cfg.withDefaults()
	return &Monitor{
		cfg:      cfg,
		tracker:  deadlock.NewTracker(),
		log:      NewIncidentLog(cfg.Incidents),
		reported: make(map[string]bool),
	}
}

// Tracker returns the monitor's deadlock tracker (for naming locks in
// reports: tracker.Name).
func (m *Monitor) Tracker() *deadlock.Tracker { return m.tracker }

// Incidents returns the monitor's incident log.
func (m *Monitor) Incidents() *IncidentLog { return m.log }

// Ticks returns how many watchdog passes have run.
func (m *Monitor) Ticks() int64 { return m.ticks.Load() }

// IncidentCount returns how many incidents of kind have been filed.
func (m *Monitor) IncidentCount(kind IncidentKind) int64 {
	return m.byKind[kindIndex(kind)].Load()
}

// Running reports whether the watchdog goroutine is live.
func (m *Monitor) Running() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.running
}

// Start enables tracing (if it was off), installs the deadlock tracker as
// a cxlock observer, the span-wait bridge (internal/opspan), and the
// simple-lock census observer, and launches the watchdog goroutine.
// Idempotent while running.
func (m *Monitor) Start() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.running {
		return
	}
	if !trace.Enabled() {
		trace.Enable()
		m.ownTrace = true
	}
	m.tracker.Install()
	opspan.Install()
	splock.AddObserver(&m.spc)
	m.stop = make(chan struct{})
	m.done = make(chan struct{})
	m.running = true
	m.startedAt.Store(time.Now().UnixNano())
	go m.run(m.stop, m.done)
}

// Stop halts the watchdog, uninstalls the tracker, and disables tracing if
// Start had enabled it. The incident log and counters survive for
// inspection. Idempotent while stopped.
func (m *Monitor) Stop() {
	m.mu.Lock()
	if !m.running {
		m.mu.Unlock()
		return
	}
	stop, done := m.stop, m.done
	m.running = false
	m.mu.Unlock()

	close(stop)
	<-done

	m.tracker.Uninstall()
	splock.RemoveObserver(&m.spc)
	opspan.Uninstall()
	m.mu.Lock()
	if m.ownTrace {
		trace.Disable()
		m.ownTrace = false
	}
	m.startedAt.Store(0)
	m.mu.Unlock()
}

func (m *Monitor) run(stop, done chan struct{}) {
	defer close(done)
	tick := time.NewTicker(m.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			m.Pass()
		}
	}
}

// Pass runs one watchdog pass synchronously: deadlock detection plus every
// enabled threshold check. Exposed so tests (and the smoke tool) can force
// a pass without waiting out the interval.
func (m *Monitor) Pass() {
	m.ticks.Add(1)
	m.maybeRearm()
	m.checkDeadlocks()
	m.checkProfiles()
}

// maybeRearm clears the incident dedup set once per cfg.Rearm period.
func (m *Monitor) maybeRearm() {
	if m.cfg.Rearm <= 0 {
		return
	}
	now := time.Now().UnixNano()
	last := m.lastRearm.Load()
	if last == 0 {
		m.lastRearm.CompareAndSwap(0, now)
		return
	}
	if now-last < int64(m.cfg.Rearm) || !m.lastRearm.CompareAndSwap(last, now) {
		return
	}
	m.mu.Lock()
	m.reported = make(map[string]bool)
	m.mu.Unlock()
}

// once returns true the first time key is seen, filing at most one
// incident per distinct anomaly per monitor run.
func (m *Monitor) once(key string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.reported[key] {
		return false
	}
	m.reported[key] = true
	return true
}

// file stamps and stores an incident, capturing the wait-for graph and the
// flight recorder tail.
func (m *Monitor) file(in Incident) {
	in.Time = time.Now()
	in.WaitGraphDOT = m.tracker.WaitGraphDOT()
	events := trace.Events(m.cfg.RingTail)
	in.RingTail = make([]string, len(events))
	for i, e := range events {
		in.RingTail[i] = e.String()
	}
	m.byKind[kindIndex(in.Kind)].Add(1)
	m.log.Add(in)
}

func (m *Monitor) checkDeadlocks() {
	cycles := m.tracker.DetectStable(m.cfg.DeadlockSamples, m.cfg.DeadlockSampleGap)
	if len(cycles) == 0 {
		return
	}
	var fresh []string
	for _, c := range cycles {
		if m.once("deadlock:" + c.String()) {
			fresh = append(fresh, c.String())
		}
	}
	if len(fresh) == 0 {
		return
	}
	m.file(Incident{
		Kind: KindDeadlock,
		Summary: fmt.Sprintf("wait-for cycle stable across %d samples (%d cycle(s))",
			m.cfg.DeadlockSamples, len(fresh)),
		Detail: m.tracker.Snapshot(),
		Cycles: fresh,
	})
}

func (m *Monitor) checkProfiles() {
	if m.cfg.LongHoldNs == 0 && m.cfg.LongWaitNs == 0 && m.cfg.RefLeakLive == 0 {
		return
	}
	for _, p := range trace.Profiles() {
		key := p.Pkg + "/" + p.Name
		if m.cfg.LongHoldNs > 0 && p.MaxHoldNs > m.cfg.LongHoldNs && m.once("long-hold:"+key) {
			m.file(Incident{
				Kind:  KindLongHold,
				Class: key,
				Summary: fmt.Sprintf("max hold %dns exceeds threshold %dns (p99 %dns over %d releases)",
					p.MaxHoldNs, m.cfg.LongHoldNs, p.P99HoldNs, p.Releases),
			})
		}
		if m.cfg.LongWaitNs > 0 && p.MaxWaitNs > m.cfg.LongWaitNs && m.once("long-wait:"+key) {
			m.file(Incident{
				Kind:  KindLongWait,
				Class: key,
				Summary: fmt.Sprintf("max wait %dns exceeds threshold %dns (p99 %dns over %d contended acquisitions)",
					p.MaxWaitNs, m.cfg.LongWaitNs, p.P99WaitNs, p.Contended),
			})
		}
		if m.cfg.RefLeakLive > 0 && p.Live > m.cfg.RefLeakLive && m.once("ref-leak:"+key) {
			m.file(Incident{
				Kind:  KindRefLeak,
				Class: key,
				Summary: fmt.Sprintf("live census %d exceeds threshold %d (%d clones / %d releases)",
					p.Live, m.cfg.RefLeakLive, p.RefClones, p.RefReleases),
			})
		}
	}
}

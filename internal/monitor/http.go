package monitor

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"machlock/internal/lockgraph"
	"machlock/internal/trace"
)

// Handler returns the monitor's HTTP debug surface, ready to mount on any
// server (http.ListenAndServe(addr, m.Handler()) or a sub-route of an
// existing mux):
//
//	/debug/machlock/             index
//	/debug/machlock/profiles     contention profiles (text; ?format=csv|vars)
//	/debug/machlock/metrics      Prometheus text exposition
//	/debug/machlock/waitgraph    wait-for graph (Graphviz DOT)
//	/debug/machlock/incidents    incident log (text; ?format=json)
//	/debug/machlock/ring         flight-recorder tail (?n=200)
//	/debug/machlock/pprof/waits  waiter-stack profile (pprof proto, gzipped)
//	/debug/machlock/pprof/holds  holder-stack hold-time profile (pprof proto)
//	/debug/machlock/pprof/blame  holder-stack blamed-wait profile (pprof proto)
//	/debug/machlock/timeline     flight recorder as Chrome trace-event JSON
//
// The pprof endpoints speak go tool pprof's native protocol:
//
//	go tool pprof http://host:port/debug/machlock/pprof/waits
//
// and the timeline loads directly into ui.perfetto.dev or chrome://tracing.
//
// All endpoints are read-only snapshots; hitting them never perturbs the
// kernel beyond the snapshot reads themselves.
func (m *Monitor) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/machlock/", m.serveIndex)
	mux.HandleFunc("/debug/machlock/profiles", m.serveProfiles)
	mux.HandleFunc("/debug/machlock/metrics", m.serveMetrics)
	mux.HandleFunc("/debug/machlock/waitgraph", m.serveWaitGraph)
	mux.HandleFunc("/debug/machlock/incidents", m.serveIncidents)
	mux.HandleFunc("/debug/machlock/ring", m.serveRing)
	mux.HandleFunc("/debug/machlock/pprof/", m.servePprof)
	mux.HandleFunc("/debug/machlock/timeline", m.serveTimeline)
	mux.HandleFunc("/debug/machlock/lockgraph", m.serveLockGraph)
	return mux
}

func (m *Monitor) serveIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/debug/machlock/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "machlock monitor (running=%v, ticks=%d, incidents=%d)\n\n",
		m.Running(), m.Ticks(), m.log.Total())
	fmt.Fprintln(w, "endpoints:")
	fmt.Fprintln(w, "  /debug/machlock/profiles     contention profiles (?format=csv|vars)")
	fmt.Fprintln(w, "  /debug/machlock/metrics      Prometheus text exposition")
	fmt.Fprintln(w, "  /debug/machlock/waitgraph    wait-for graph (Graphviz DOT)")
	fmt.Fprintln(w, "  /debug/machlock/incidents    incident log (?format=json)")
	fmt.Fprintln(w, "  /debug/machlock/ring         flight-recorder tail (?n=200)")
	fmt.Fprintln(w, "  /debug/machlock/pprof/waits  waiter-stack wait profile (go tool pprof)")
	fmt.Fprintln(w, "  /debug/machlock/pprof/holds  holder-stack hold profile (go tool pprof)")
	fmt.Fprintln(w, "  /debug/machlock/pprof/blame  holder-stack blamed-wait profile (go tool pprof)")
	fmt.Fprintln(w, "  /debug/machlock/timeline     Chrome trace-event JSON (Perfetto)")
	fmt.Fprintln(w, "  /debug/machlock/lockgraph    observed class-order graph (machlock-lockgraph/v1 JSON)")
}

func (m *Monitor) serveProfiles(w http.ResponseWriter, r *http.Request) {
	profiles := trace.Profiles()
	switch r.URL.Query().Get("format") {
	case "csv":
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		trace.WriteCSV(w, profiles)
	case "vars":
		w.Header().Set("Content-Type", "application/json")
		trace.WriteVars(w, profiles)
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		trace.WriteText(w, profiles)
	}
}

func (m *Monitor) serveMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	m.WriteMetrics(w)
}

// WriteMetrics renders the full Prometheus scrape — the trace layer's
// per-class and per-op families followed by the monitor's own — to w.
// Exported so surfaces that extend the scrape with more families (machd's
// SLO layer) can serve one combined exposition.
func (m *Monitor) WriteMetrics(w io.Writer) {
	trace.WriteProm(w, trace.Profiles())
	m.writeOwnMetrics(w)
}

// writeOwnMetrics appends the monitor's self-describing families to a
// Prometheus scrape.
func (m *Monitor) writeOwnMetrics(w io.Writer) {
	fmt.Fprintln(w, "# HELP machlock_monitor_up Whether the watchdog goroutine is running.")
	fmt.Fprintln(w, "# TYPE machlock_monitor_up gauge")
	up := 0
	if m.Running() {
		up = 1
	}
	fmt.Fprintf(w, "machlock_monitor_up %d\n", up)
	fmt.Fprintln(w, "# HELP machlock_monitor_ticks_total Watchdog passes completed.")
	fmt.Fprintln(w, "# TYPE machlock_monitor_ticks_total counter")
	fmt.Fprintf(w, "machlock_monitor_ticks_total %d\n", m.Ticks())
	fmt.Fprintln(w, "# HELP machlock_monitor_incidents_total Incidents filed, by kind.")
	fmt.Fprintln(w, "# TYPE machlock_monitor_incidents_total counter")
	for _, k := range []IncidentKind{KindDeadlock, KindLongHold, KindLongWait, KindRefLeak} {
		fmt.Fprintf(w, "machlock_monitor_incidents_total{kind=%q} %d\n", string(k), m.IncidentCount(k))
	}
	fmt.Fprintln(w, "# HELP machlock_monitor_incidents_dropped_total Incidents evicted from the bounded log.")
	fmt.Fprintln(w, "# TYPE machlock_monitor_incidents_dropped_total counter")
	fmt.Fprintf(w, "machlock_monitor_incidents_dropped_total %d\n", m.log.Dropped())
	fmt.Fprintln(w, "# HELP machlock_monitor_splock_acquisitions_total Simple-lock acquisitions observed (monitor running).")
	fmt.Fprintln(w, "# TYPE machlock_monitor_splock_acquisitions_total counter")
	fmt.Fprintf(w, "machlock_monitor_splock_acquisitions_total %d\n", m.spc.acquired.Load())
	fmt.Fprintln(w, "# HELP machlock_monitor_splock_contended_total Observed simple-lock acquisitions that spun.")
	fmt.Fprintln(w, "# TYPE machlock_monitor_splock_contended_total counter")
	fmt.Fprintf(w, "machlock_monitor_splock_contended_total %d\n", m.spc.contended.Load())
	fmt.Fprintln(w, "# HELP machlock_monitor_splock_releases_total Simple-lock releases observed.")
	fmt.Fprintln(w, "# TYPE machlock_monitor_splock_releases_total counter")
	fmt.Fprintf(w, "machlock_monitor_splock_releases_total %d\n", m.spc.released.Load())
	fmt.Fprintln(w, "# HELP machlock_monitor_splock_spinners Threads currently spinning on a simple lock.")
	fmt.Fprintln(w, "# TYPE machlock_monitor_splock_spinners gauge")
	fmt.Fprintf(w, "machlock_monitor_splock_spinners %d\n", m.spc.spinning.Load())
	if started := m.startedAt.Load(); started != 0 {
		fmt.Fprintln(w, "# HELP machlock_monitor_uptime_seconds Seconds since the watchdog started.")
		fmt.Fprintln(w, "# TYPE machlock_monitor_uptime_seconds gauge")
		fmt.Fprintf(w, "machlock_monitor_uptime_seconds %.3f\n",
			time.Since(time.Unix(0, started)).Seconds())
	}
}

// servePprof serves the three site profiles in pprof's wire format. The
// path selects the kind: pprof/waits, pprof/holds, pprof/blame.
func (m *Monitor) servePprof(w http.ResponseWriter, r *http.Request) {
	var kind trace.SiteKind
	switch r.URL.Path {
	case "/debug/machlock/pprof/waits":
		kind = trace.SiteWaits
	case "/debug/machlock/pprof/holds":
		kind = trace.SiteHolds
	case "/debug/machlock/pprof/blame":
		kind = trace.SiteBlame
	default:
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition",
		fmt.Sprintf(`attachment; filename="machlock-%s.pb.gz"`, kind))
	trace.WritePprof(w, kind)
}

// serveTimeline serves the flight-recorder tail as Chrome trace-event
// JSON; ?n bounds the number of events (default the whole ring).
func (m *Monitor) serveTimeline(w http.ResponseWriter, r *http.Request) {
	n := 0 // 0 = everything the ring retains
	if s := r.URL.Query().Get("n"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			n = v
		}
	}
	w.Header().Set("Content-Type", "application/json")
	trace.WriteTimeline(w, trace.Events(n))
}

// serveLockGraph serves the runtime lock-order collector's snapshot in the
// machlock-lockgraph/v1 schema — the dynamic half of machvet -diff. An
// empty graph (collector never enabled, or nothing ran) is still valid
// output; the differ treats it as zero coverage, not an error.
func (m *Monitor) serveLockGraph(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	g := trace.LockGraphSnapshot("monitor /debug/machlock/lockgraph")
	if err := lockgraph.Write(w, g); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (m *Monitor) serveWaitGraph(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/vnd.graphviz; charset=utf-8")
	fmt.Fprint(w, m.tracker.WaitGraphDOT())
}

func (m *Monitor) serveIncidents(w http.ResponseWriter, r *http.Request) {
	incidents := m.log.Snapshot()
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(incidents)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "incidents: %d retained, %d total, %d dropped\n\n",
		len(incidents), m.log.Total(), m.log.Dropped())
	for _, in := range incidents {
		fmt.Fprintln(w, in.String())
	}
}

func (m *Monitor) serveRing(w http.ResponseWriter, r *http.Request) {
	n := 200
	if s := r.URL.Query().Get("n"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			n = v
		}
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	trace.WriteEvents(w, trace.Events(n))
}

package monitor

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"machlock/internal/core/cxlock"
	"machlock/internal/sched"
	"machlock/internal/trace"
)

// startMonitor starts m and guarantees Stop runs at test end.
func startMonitor(t *testing.T, m *Monitor) {
	t.Helper()
	m.Start()
	t.Cleanup(m.Stop)
}

func TestWatchdogCatchesInjectedDeadlock(t *testing.T) {
	m := New(Config{
		Interval:          5 * time.Millisecond,
		DeadlockSamples:   3,
		DeadlockSampleGap: time.Millisecond,
	})
	startMonitor(t, m)

	// Traced classes so the flight recorder has events for the ring tail.
	ca := trace.NewClass("montest", "montest.A", trace.KindComplex)
	cb := trace.NewClass("montest", "montest.B", trace.KindComplex)
	a := cxlock.NewWith(cxlock.Options{Sleep: true, Name: "mon.A", Class: ca})
	b := cxlock.NewWith(cxlock.Options{Sleep: true, Name: "mon.B", Class: cb})
	m.Tracker().Name(a, "mon.A")
	m.Tracker().Name(b, "mon.B")

	var firstHolds sync.WaitGroup
	firstHolds.Add(2)
	gate := make(chan struct{})
	sched.Go("mon-t1", func(self *sched.Thread) {
		a.Write(self)
		firstHolds.Done()
		<-gate
		b.Write(self) // deadlocks against mon-t2
		b.Done(self)
		a.Done(self)
	})
	sched.Go("mon-t2", func(self *sched.Thread) {
		b.Write(self)
		firstHolds.Done()
		<-gate
		a.Write(self)
		a.Done(self)
		b.Done(self)
	})
	firstHolds.Wait()
	close(gate)

	deadline := time.Now().Add(10 * time.Second)
	for m.IncidentCount(KindDeadlock) == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("watchdog never filed a deadlock incident; tracker:\n%s",
				m.Tracker().Snapshot())
		}
		time.Sleep(2 * time.Millisecond)
	}

	var inc *Incident
	for _, in := range m.Incidents().Snapshot() {
		if in.Kind == KindDeadlock {
			inc = &in
			break
		}
	}
	if inc == nil {
		t.Fatal("deadlock incident counted but not in log")
	}
	if len(inc.Cycles) == 0 {
		t.Fatalf("incident has no cycles: %s", inc.String())
	}
	cycle := inc.Cycles[0]
	for _, want := range []string{"mon-t1", "mon-t2", "mon.A", "mon.B"} {
		if !strings.Contains(cycle, want) {
			t.Fatalf("cycle %q does not name %q", cycle, want)
		}
	}
	if len(inc.RingTail) == 0 {
		t.Fatal("incident captured an empty flight-recorder tail")
	}
	if !strings.Contains(inc.WaitGraphDOT, "digraph waitfor") {
		t.Fatalf("incident wait graph malformed:\n%s", inc.WaitGraphDOT)
	}

	// The same cycle must not be re-filed on every subsequent pass.
	n := m.IncidentCount(KindDeadlock)
	time.Sleep(50 * time.Millisecond)
	if again := m.IncidentCount(KindDeadlock); again != n {
		t.Fatalf("stable cycle re-filed: %d -> %d incidents", n, again)
	}
	// The deadlocked goroutines are intentionally left parked.
}

func TestIncidentLogBoundsAndEviction(t *testing.T) {
	lg := NewIncidentLog(4)
	for i := 0; i < 10; i++ {
		lg.Add(Incident{Kind: KindLongHold, Summary: "x"})
	}
	if lg.Len() != 4 {
		t.Fatalf("Len = %d, want 4", lg.Len())
	}
	if lg.Total() != 10 {
		t.Fatalf("Total = %d, want 10", lg.Total())
	}
	if lg.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", lg.Dropped())
	}
	snap := lg.Snapshot()
	for i, in := range snap {
		if want := uint64(7 + i); in.Seq != want {
			t.Fatalf("snapshot[%d].Seq = %d, want %d (oldest must be evicted)", i, in.Seq, want)
		}
	}
}

func TestIncidentLogNeverBlocks(t *testing.T) {
	// Concurrent filers against a tiny log: every Add must complete even
	// with no reader draining the log.
	lg := NewIncidentLog(2)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				lg.Add(Incident{Kind: KindRefLeak, Summary: "flood"})
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("incident log blocked its writers")
	}
	if lg.Total() != 800 {
		t.Fatalf("Total = %d, want 800", lg.Total())
	}
	if lg.Len() != 2 {
		t.Fatalf("Len = %d, want 2", lg.Len())
	}
}

func TestThresholdIncidentsAndDedup(t *testing.T) {
	m := New(Config{
		Interval:    time.Hour, // passes driven manually
		LongHoldNs:  int64(time.Millisecond),
		LongWaitNs:  int64(time.Hour), // never trips in this test
		RefLeakLive: 3,
	})
	startMonitor(t, m)

	cls := trace.NewClass("montest", "montest.holder", trace.KindComplex)
	l := cxlock.NewWith(cxlock.Options{Sleep: true, Class: cls})
	th := sched.New("holder")
	l.Write(th)
	time.Sleep(5 * time.Millisecond) // hold long enough to cross the threshold
	l.Done(th)

	leaky := trace.NewClass("montest", "montest.leaky", trace.KindRef)
	for i := 0; i < 5; i++ {
		leaky.CensusInc()
	}
	t.Cleanup(func() {
		for i := 0; i < 5; i++ {
			leaky.CensusDec()
		}
	})

	m.Pass()
	var holdHit, leakHit bool
	for _, in := range m.Incidents().Snapshot() {
		switch {
		case in.Kind == KindLongHold && in.Class == "montest/montest.holder":
			holdHit = true
		case in.Kind == KindRefLeak && in.Class == "montest/montest.leaky":
			leakHit = true
		}
	}
	if !holdHit {
		t.Fatalf("long-hold incident not filed; log:\n%v", m.Incidents().Snapshot())
	}
	if !leakHit {
		t.Fatalf("ref-leak incident not filed; log:\n%v", m.Incidents().Snapshot())
	}

	// Same anomalies must not be re-filed on the next pass.
	total := m.Incidents().Total()
	m.Pass()
	if again := m.Incidents().Total(); again != total {
		t.Fatalf("threshold incidents re-filed: %d -> %d", total, again)
	}
}

func TestStartStopRestoresTraceState(t *testing.T) {
	if trace.Enabled() {
		t.Skip("tracing already on outside the monitor")
	}
	m := New(Config{Interval: time.Hour})
	m.Start()
	if !trace.Enabled() {
		t.Fatal("Start did not enable tracing")
	}
	m.Stop()
	if trace.Enabled() {
		t.Fatal("Stop did not restore tracing to disabled")
	}
	// Idempotence.
	m.Stop()
	m.Start()
	m.Start()
	m.Stop()
}

func TestHTTPEndpoints(t *testing.T) {
	m := New(Config{Interval: time.Hour})
	startMonitor(t, m)
	m.Pass()
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 64<<10)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d\n%s", path, resp.StatusCode, sb.String())
		}
		if sb.Len() == 0 {
			t.Fatalf("GET %s: empty body", path)
		}
		return sb.String()
	}

	if body := get("/debug/machlock/"); !strings.Contains(body, "machlock monitor") {
		t.Fatalf("index malformed:\n%s", body)
	}
	if body := get("/debug/machlock/profiles"); !strings.Contains(body, "contention profile") {
		t.Fatalf("profiles malformed:\n%s", body)
	}
	if body := get("/debug/machlock/profiles?format=csv"); !strings.HasPrefix(body, "pkg,name,kind") {
		t.Fatalf("CSV profiles malformed:\n%s", body)
	}
	body := get("/debug/machlock/metrics")
	for _, want := range []string{
		"machlock_acquisitions_total",
		"machlock_monitor_up 1",
		"machlock_monitor_ticks_total",
		`machlock_monitor_incidents_total{kind="deadlock"}`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
	if body := get("/debug/machlock/waitgraph"); !strings.Contains(body, "digraph waitfor") {
		t.Fatalf("waitgraph malformed:\n%s", body)
	}
	if body := get("/debug/machlock/incidents"); !strings.Contains(body, "incidents:") {
		t.Fatalf("incidents malformed:\n%s", body)
	}
	if body := get("/debug/machlock/incidents?format=json"); !strings.HasPrefix(strings.TrimSpace(body), "[") {
		t.Fatalf("JSON incidents malformed:\n%s", body)
	}
	get("/debug/machlock/ring") // non-empty is asserted inside get
}

package monitor

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// IncidentKind classifies what tripped the watchdog.
type IncidentKind string

// The incident kinds.
const (
	KindDeadlock IncidentKind = "deadlock"  // stable wait-for cycle
	KindLongHold IncidentKind = "long-hold" // a class's max hold time crossed the threshold
	KindLongWait IncidentKind = "long-wait" // a class's max wait time crossed the threshold
	KindRefLeak  IncidentKind = "ref-leak"  // a class's live census crossed the threshold
)

// Incident is one structured watchdog report: enough context to diagnose
// the event after the fact without having had a debugger attached when it
// happened — the offending class, the human-readable summary, the wait-for
// graph, and the tail of the flight recorder at capture time.
type Incident struct {
	Seq     uint64       `json:"seq"`
	Time    time.Time    `json:"time"`
	Kind    IncidentKind `json:"kind"`
	Class   string       `json:"class,omitempty"` // pkg/name of the offending class; empty for cross-class incidents
	Summary string       `json:"summary"`
	Detail  string       `json:"detail,omitempty"`

	// Cycles holds the rendered wait-for cycles (deadlock incidents).
	Cycles []string `json:"cycles,omitempty"`
	// WaitGraphDOT is the full wait-for graph at capture time.
	WaitGraphDOT string `json:"wait_graph_dot,omitempty"`
	// RingTail is the flight recorder's most recent events at capture time,
	// rendered one per line, oldest first.
	RingTail []string `json:"ring_tail,omitempty"`
}

// String renders the incident for the text endpoint and logs.
func (in Incident) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "#%d %s [%s]", in.Seq, in.Time.Format(time.RFC3339Nano), in.Kind)
	if in.Class != "" {
		fmt.Fprintf(&sb, " class=%s", in.Class)
	}
	fmt.Fprintf(&sb, "\n  %s\n", in.Summary)
	for _, c := range in.Cycles {
		fmt.Fprintf(&sb, "  cycle: %s\n", c)
	}
	if in.Detail != "" {
		for _, line := range strings.Split(strings.TrimRight(in.Detail, "\n"), "\n") {
			fmt.Fprintf(&sb, "  | %s\n", line)
		}
	}
	if n := len(in.RingTail); n > 0 {
		fmt.Fprintf(&sb, "  ring tail (%d events):\n", n)
		for _, ev := range in.RingTail {
			fmt.Fprintf(&sb, "    %s\n", ev)
		}
	}
	return sb.String()
}

// IncidentLog is a bounded, mutex-protected incident store. Appending
// never blocks on anything but the (short) mutex and never allocates past
// the configured capacity: when full, the oldest incident is evicted and
// counted in Dropped. The watchdog can therefore always file a report, no
// matter how long the operator goes without reading them.
type IncidentLog struct {
	mu      sync.Mutex
	cap     int
	seq     uint64
	buf     []Incident
	dropped uint64
}

// DefaultIncidentCapacity bounds the log when Config.Incidents is zero.
const DefaultIncidentCapacity = 64

// NewIncidentLog creates a log retaining at most capacity incidents
// (DefaultIncidentCapacity if capacity < 1).
func NewIncidentLog(capacity int) *IncidentLog {
	if capacity < 1 {
		capacity = DefaultIncidentCapacity
	}
	return &IncidentLog{cap: capacity}
}

// Add files an incident, assigning its sequence number. The oldest
// incident is evicted if the log is full. Returns the assigned Seq.
func (lg *IncidentLog) Add(in Incident) uint64 {
	lg.mu.Lock()
	defer lg.mu.Unlock()
	lg.seq++
	in.Seq = lg.seq
	if len(lg.buf) == lg.cap {
		copy(lg.buf, lg.buf[1:])
		lg.buf[len(lg.buf)-1] = in
		lg.dropped++
	} else {
		lg.buf = append(lg.buf, in)
	}
	return in.Seq
}

// Snapshot returns the retained incidents, oldest first.
func (lg *IncidentLog) Snapshot() []Incident {
	lg.mu.Lock()
	defer lg.mu.Unlock()
	out := make([]Incident, len(lg.buf))
	copy(out, lg.buf)
	return out
}

// Len returns the number of retained incidents.
func (lg *IncidentLog) Len() int {
	lg.mu.Lock()
	defer lg.mu.Unlock()
	return len(lg.buf)
}

// Total returns how many incidents have ever been filed.
func (lg *IncidentLog) Total() uint64 {
	lg.mu.Lock()
	defer lg.mu.Unlock()
	return lg.seq
}

// Dropped returns how many incidents were evicted to make room.
func (lg *IncidentLog) Dropped() uint64 {
	lg.mu.Lock()
	defer lg.mu.Unlock()
	return lg.dropped
}

package monitor

import (
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// TestMetricsEndpointGoldenSchema pins the /debug/machlock/metrics
// contract: the scrape is one exposition carrying the trace families
// followed by the monitor's own, with exactly these names, types, and
// label keys. Scrape configs and dashboards key on these strings; changes
// must be deliberate and show up here.
func TestMetricsEndpointGoldenSchema(t *testing.T) {
	m := New(Config{})
	m.Start()
	defer m.Stop()

	srv := httptest.NewServer(m.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/machlock/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type = %q, want the 0.0.4 exposition type", ct)
	}
	text := string(body)

	// The monitor's own families, exactly.
	typeRe := regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (\w+)$`)
	got := map[string]string{}
	for _, line := range strings.Split(text, "\n") {
		if mm := typeRe.FindStringSubmatch(line); mm != nil && strings.HasPrefix(mm[1], "machlock_monitor_") {
			got[mm[1]] = mm[2]
		}
	}
	want := map[string]string{
		"machlock_monitor_up":                        "gauge",
		"machlock_monitor_ticks_total":               "counter",
		"machlock_monitor_incidents_total":           "counter",
		"machlock_monitor_incidents_dropped_total":   "counter",
		"machlock_monitor_splock_acquisitions_total": "counter",
		"machlock_monitor_splock_contended_total":    "counter",
		"machlock_monitor_splock_releases_total":     "counter",
		"machlock_monitor_splock_spinners":           "gauge",
		"machlock_monitor_uptime_seconds":            "gauge",
	}
	for fam, typ := range want {
		if got[fam] != typ {
			t.Errorf("family %s: type %q, want %q", fam, got[fam], typ)
		}
	}
	for fam := range got {
		if _, ok := want[fam]; !ok {
			t.Errorf("new monitor family %s — add it to the golden schema deliberately", fam)
		}
	}

	// The incident counter carries exactly the four kinds as its label set.
	kindRe := regexp.MustCompile(`machlock_monitor_incidents_total\{kind="([^"]+)"\}`)
	var kinds []string
	for _, mm := range kindRe.FindAllStringSubmatch(text, -1) {
		kinds = append(kinds, mm[1])
	}
	sort.Strings(kinds)
	if strings.Join(kinds, ",") != "deadlock,long-hold,long-wait,ref-leak" {
		t.Errorf("incident kinds = %v", kinds)
	}

	// The trace families share the scrape (one exposition, not two URLs).
	for _, fam := range []string{
		"machlock_acquisitions_total",
		"machlock_wait_time_ns",
		"machlock_op_latency_ns",
		"machlock_op_lock_wait_ns",
		"machlock_op_work_ns",
	} {
		if !strings.Contains(text, "# TYPE "+fam+" ") {
			t.Errorf("scrape missing trace family %s", fam)
		}
	}
}

// Package lockgraph defines the machlock-lockgraph/v1 schema: a
// whole-program graph of lock classes (nodes) and ordered acquisition
// edges (held -> acquired), produced by two independent observers of the
// same locking discipline —
//
//   - STATIC: `machvet -graph` walks the lockstate summaries
//     interprocedurally over the module and emits every edge the analysis
//     can prove reachable, with the code sites proving it;
//   - DYNAMIC: the internal/trace collector records every class-level
//     held->acquired pair an actual execution performs (machd -smoke,
//     `make sim`, or any run with trace.EnableLockGraph on).
//
// The two views meet in Diff: a dynamic-only edge is an analysis
// soundness hole (the runtime did something the checker cannot see); a
// static-only edge is a discipline-coverage gap (the checker proves an
// order no test ever exercises). Coverage is the fraction of runtime-
// observable static edges that some run has actually exercised, and is
// gated in CI against a committed baseline.
//
// Node names are canonical class names — the trace registry's names
// ("vm.map", "kern.pset.members") — so both emitters translate into one
// vocabulary; see classmap.go.
package lockgraph

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

// Schema is the format identifier carried in every graph file.
const Schema = "machlock-lockgraph/v1"

// Graph source kinds.
const (
	SourceStatic  = "static"
	SourceDynamic = "dynamic"
)

// Graph is one emitted lock graph.
type Graph struct {
	Schema string `json:"schema"`
	// Source is "static" or "dynamic".
	Source string `json:"source"`
	// Generator names the emitting tool ("machvet -graph", "machd -smoke").
	Generator string `json:"generator"`

	Nodes []Node `json:"nodes"`
	Edges []Edge `json:"edges"`

	// UnmappedClasses lists class names seen by the emitter that have no
	// canonical mapping (test-harness locks, tool-local classes). Their
	// edges are excluded from the graph; the list is kept so a kernel
	// class accidentally missing from the class map is visible instead of
	// silently dropped.
	UnmappedClasses []string `json:"unmapped_classes,omitempty"`
}

// Node is one lock class.
type Node struct {
	// Class is the canonical class name ("vm.map", "ipc.port").
	Class string `json:"class"`
	// Kind is the mechanism kind: "spin", "complex", "ref", "object", or
	// "unknown" when the emitter cannot tell.
	Kind string `json:"kind,omitempty"`
	// Observable marks classes registered with the runtime trace layer —
	// the classes the dynamic collector can ever see. Static-only classes
	// (locals aside, e.g. a lock type with no trace class) are emitted
	// with Observable=false and excluded from coverage accounting.
	Observable bool `json:"observable"`
}

// Edge is one ordered acquisition: a thread holding From acquired To.
type Edge struct {
	From string `json:"from"`
	To   string `json:"to"`
	// Count is how many times the dynamic collector observed the edge
	// (0 for static edges).
	Count int64 `json:"count,omitempty"`
	// Sites are the code sites proving the edge (static: the acquiring
	// call positions, capped; dynamic graphs leave it empty).
	Sites []string `json:"sites,omitempty"`
	// MayBlock marks edges whose acquisition can sleep (complex-lock
	// acquisitions).
	MayBlock bool `json:"may_block,omitempty"`
	// TryOnly marks edges proven only through try/backout acquisitions
	// (the paper's out-of-order escape hatch); the dynamic side cannot
	// distinguish these, so the differ treats try-only static edges as
	// matchable but never as coverage debt.
	TryOnly bool `json:"try_only,omitempty"`
	// Upgrade marks edges proven only through read-to-write upgrades.
	Upgrade bool `json:"upgrade,omitempty"`
}

// key identifies an edge by endpoints.
func (e Edge) key() string { return e.From + "\x00" + e.To }

// Validate checks the graph is well-formed: schema, source, node/edge
// consistency (every edge endpoint is a declared node, no duplicate nodes
// or edges).
func (g *Graph) Validate() error {
	if g == nil {
		return fmt.Errorf("lockgraph: nil graph")
	}
	if g.Schema != Schema {
		return fmt.Errorf("lockgraph: schema %q, want %q", g.Schema, Schema)
	}
	if g.Source != SourceStatic && g.Source != SourceDynamic {
		return fmt.Errorf("lockgraph: source %q, want %q or %q", g.Source, SourceStatic, SourceDynamic)
	}
	nodes := make(map[string]bool, len(g.Nodes))
	for _, n := range g.Nodes {
		if n.Class == "" {
			return fmt.Errorf("lockgraph: node with empty class")
		}
		if nodes[n.Class] {
			return fmt.Errorf("lockgraph: duplicate node %q", n.Class)
		}
		nodes[n.Class] = true
	}
	seen := make(map[string]bool, len(g.Edges))
	for _, e := range g.Edges {
		if e.From == "" || e.To == "" {
			return fmt.Errorf("lockgraph: edge with empty endpoint (%q -> %q)", e.From, e.To)
		}
		if !nodes[e.From] {
			return fmt.Errorf("lockgraph: edge %s -> %s references undeclared node %q", e.From, e.To, e.From)
		}
		if !nodes[e.To] {
			return fmt.Errorf("lockgraph: edge %s -> %s references undeclared node %q", e.From, e.To, e.To)
		}
		if seen[e.key()] {
			return fmt.Errorf("lockgraph: duplicate edge %s -> %s", e.From, e.To)
		}
		seen[e.key()] = true
	}
	return nil
}

// Normalize sorts nodes and edges into the canonical stable order
// (lexicographic) so emitted files diff cleanly run to run.
func (g *Graph) Normalize() {
	sort.Slice(g.Nodes, func(i, j int) bool { return g.Nodes[i].Class < g.Nodes[j].Class })
	sort.Slice(g.Edges, func(i, j int) bool {
		if g.Edges[i].From != g.Edges[j].From {
			return g.Edges[i].From < g.Edges[j].From
		}
		return g.Edges[i].To < g.Edges[j].To
	})
	for i := range g.Edges {
		sort.Strings(g.Edges[i].Sites)
	}
	sort.Strings(g.UnmappedClasses)
}

// Node returns the node for class, or nil.
func (g *Graph) Node(class string) *Node {
	for i := range g.Nodes {
		if g.Nodes[i].Class == class {
			return &g.Nodes[i]
		}
	}
	return nil
}

// Merge folds other's nodes and edges into g (union; edge counts add,
// sites union, flags OR except TryOnly/Upgrade which AND — an edge proven
// by a non-try site is not try-only). Used to combine the dynamic dumps of
// several runs (sim suites + machd smoke) into one view.
func (g *Graph) Merge(other *Graph) {
	byClass := map[string]int{}
	for i, n := range g.Nodes {
		byClass[n.Class] = i
	}
	for _, n := range other.Nodes {
		if i, ok := byClass[n.Class]; ok {
			g.Nodes[i].Observable = g.Nodes[i].Observable || n.Observable
			if g.Nodes[i].Kind == "" || g.Nodes[i].Kind == "unknown" {
				g.Nodes[i].Kind = n.Kind
			}
			continue
		}
		byClass[n.Class] = len(g.Nodes)
		g.Nodes = append(g.Nodes, n)
	}
	byEdge := map[string]int{}
	for i, e := range g.Edges {
		byEdge[e.key()] = i
	}
	for _, e := range other.Edges {
		if i, ok := byEdge[e.key()]; ok {
			dst := &g.Edges[i]
			dst.Count = saturatingAdd(dst.Count, e.Count)
			dst.Sites = unionSites(dst.Sites, e.Sites)
			dst.MayBlock = dst.MayBlock || e.MayBlock
			dst.TryOnly = dst.TryOnly && e.TryOnly
			dst.Upgrade = dst.Upgrade && e.Upgrade
			continue
		}
		byEdge[e.key()] = len(g.Edges)
		g.Edges = append(g.Edges, e)
	}
	unseen := map[string]bool{}
	for _, c := range g.UnmappedClasses {
		unseen[c] = true
	}
	for _, c := range other.UnmappedClasses {
		if !unseen[c] {
			unseen[c] = true
			g.UnmappedClasses = append(g.UnmappedClasses, c)
		}
	}
}

// saturatingAdd sums two observation counts, clamping at the int64 limits
// instead of wrapping: merging many long-run dynamic dumps must never turn
// a hot edge's count negative (a wrapped count would read as "barely
// exercised" in coverage accounting, the worst possible failure mode).
func saturatingAdd(a, b int64) int64 {
	sum := a + b
	switch {
	case b > 0 && sum < a:
		return math.MaxInt64
	case b < 0 && sum > a:
		return math.MinInt64
	}
	return sum
}

func unionSites(a, b []string) []string {
	seen := map[string]bool{}
	for _, s := range a {
		seen[s] = true
	}
	for _, s := range b {
		if !seen[s] {
			seen[s] = true
			a = append(a, s)
		}
	}
	return a
}

// Write renders the graph as indented JSON, normalized.
func Write(w io.Writer, g *Graph) error {
	g.Normalize()
	data, err := json.MarshalIndent(g, "", "  ")
	if err != nil {
		return fmt.Errorf("lockgraph: %w", err)
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// WriteFile writes the graph to path ("-" for stdout), validating first.
func WriteFile(path string, g *Graph) error {
	if err := g.Validate(); err != nil {
		return err
	}
	if path == "-" {
		return Write(os.Stdout, g)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("lockgraph: %w", err)
	}
	if err := Write(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Read parses and validates a graph.
func Read(r io.Reader) (*Graph, error) {
	var g Graph
	if err := json.NewDecoder(r).Decode(&g); err != nil {
		return nil, fmt.Errorf("lockgraph: %w", err)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return &g, nil
}

// ReadFile parses and validates the graph at path.
func ReadFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return g, nil
}

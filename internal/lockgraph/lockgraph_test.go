package lockgraph

import (
	"bytes"
	"math"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
)

func validStatic() *Graph {
	return &Graph{
		Schema:    Schema,
		Source:    SourceStatic,
		Generator: "test",
		Nodes: []Node{
			{Class: "vm.map", Kind: "complex", Observable: true},
			{Class: "vm.object", Kind: "spin", Observable: true},
			{Class: "pmap.Pmap.lock", Kind: "unknown", Observable: false},
		},
		Edges: []Edge{
			{From: "vm.map", To: "vm.object", Sites: []string{"vm/map.go:100"}, MayBlock: true},
			{From: "vm.map", To: "pmap.Pmap.lock", Sites: []string{"vm/fault.go:40"}},
		},
	}
}

func TestValidateAndRoundTrip(t *testing.T) {
	g := validStatic()
	if err := g.Validate(); err != nil {
		t.Fatalf("valid graph rejected: %v", err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != Schema || got.Source != SourceStatic || len(got.Edges) != 2 || len(got.Nodes) != 3 {
		t.Fatalf("round trip mangled graph: %+v", got)
	}
	if got.Edges[0].From != "vm.map" || !got.Edges[0].MayBlock && !got.Edges[1].MayBlock {
		t.Fatalf("edge flags lost: %+v", got.Edges)
	}
}

func TestWriteReadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.json")
	if err := WriteFile(path, validStatic()); err != nil {
		t.Fatal(err)
	}
	g, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Edges) != 2 {
		t.Fatalf("got %d edges", len(g.Edges))
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Graph)
		want string
	}{
		{"schema", func(g *Graph) { g.Schema = "v0" }, "schema"},
		{"source", func(g *Graph) { g.Source = "both" }, "source"},
		{"dup node", func(g *Graph) { g.Nodes = append(g.Nodes, Node{Class: "vm.map"}) }, "duplicate node"},
		{"empty node", func(g *Graph) { g.Nodes = append(g.Nodes, Node{}) }, "empty class"},
		{"undeclared from", func(g *Graph) { g.Edges = append(g.Edges, Edge{From: "nope", To: "vm.map"}) }, "undeclared"},
		{"undeclared to", func(g *Graph) { g.Edges = append(g.Edges, Edge{From: "vm.map", To: "nope"}) }, "undeclared"},
		{"dup edge", func(g *Graph) { g.Edges = append(g.Edges, g.Edges[0]) }, "duplicate edge"},
		{"empty endpoint", func(g *Graph) { g.Edges = append(g.Edges, Edge{From: "vm.map"}) }, "empty endpoint"},
	}
	for _, tc := range cases {
		g := validStatic()
		tc.mut(g)
		err := g.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.want)
		}
	}
}

func TestMerge(t *testing.T) {
	a := &Graph{
		Schema: Schema, Source: SourceDynamic, Generator: "run-a",
		Nodes: []Node{{Class: "vm.map", Observable: true}, {Class: "vm.object", Observable: true}},
		Edges: []Edge{{From: "vm.map", To: "vm.object", Count: 3, TryOnly: true}},
	}
	b := &Graph{
		Schema: Schema, Source: SourceDynamic, Generator: "run-b",
		Nodes: []Node{{Class: "vm.object", Observable: true}, {Class: "ipc.port", Kind: "object", Observable: true}},
		Edges: []Edge{
			{From: "vm.map", To: "vm.object", Count: 4}, // non-try proof of the same edge
			{From: "vm.object", To: "ipc.port", Count: 1},
		},
		UnmappedClasses: []string{"montest.A"},
	}
	a.Merge(b)
	if len(a.Nodes) != 3 || len(a.Edges) != 2 {
		t.Fatalf("merge: %d nodes %d edges", len(a.Nodes), len(a.Edges))
	}
	var mapObj *Edge
	for i := range a.Edges {
		if a.Edges[i].To == "vm.object" {
			mapObj = &a.Edges[i]
		}
	}
	if mapObj == nil || mapObj.Count != 7 {
		t.Fatalf("counts not summed: %+v", a.Edges)
	}
	if mapObj.TryOnly {
		t.Fatal("edge proven by a non-try site must not stay try-only")
	}
	if len(a.UnmappedClasses) != 1 || a.UnmappedClasses[0] != "montest.A" {
		t.Fatalf("unmapped classes not merged: %v", a.UnmappedClasses)
	}
}

// TestMergeEdgeCases covers the merge algebra edge by edge: the count sum
// saturates instead of wrapping, sites union without duplicates, MayBlock
// ORs (one sleeping proof taints the edge) while TryOnly/Upgrade AND (one
// unconditional proof cleanses it), and empty graphs are identities on both
// sides.
func TestMergeEdgeCases(t *testing.T) {
	mkGraph := func(edges ...Edge) *Graph {
		g := &Graph{Schema: Schema, Source: SourceDynamic, Generator: "t",
			Nodes: []Node{{Class: "a", Observable: true}, {Class: "b", Observable: true}}}
		g.Edges = append(g.Edges, edges...)
		return g
	}
	ab := func(e Edge) Edge { e.From, e.To = "a", "b"; return e }

	cases := []struct {
		name string
		dst  Edge
		src  Edge
		want Edge
	}{
		{
			name: "counts add",
			dst:  ab(Edge{Count: 3}),
			src:  ab(Edge{Count: 4}),
			want: ab(Edge{Count: 7}),
		},
		{
			name: "count overflow saturates",
			dst:  ab(Edge{Count: math.MaxInt64 - 1}),
			src:  ab(Edge{Count: 2}),
			want: ab(Edge{Count: math.MaxInt64}),
		},
		{
			name: "saturated stays saturated",
			dst:  ab(Edge{Count: math.MaxInt64}),
			src:  ab(Edge{Count: math.MaxInt64}),
			want: ab(Edge{Count: math.MaxInt64}),
		},
		{
			name: "sites union dedups",
			dst:  ab(Edge{Sites: []string{"x.go:1", "y.go:2"}}),
			src:  ab(Edge{Sites: []string{"y.go:2", "z.go:3"}}),
			want: ab(Edge{Sites: []string{"x.go:1", "y.go:2", "z.go:3"}}),
		},
		{
			name: "may-block ORs",
			dst:  ab(Edge{}),
			src:  ab(Edge{MayBlock: true}),
			want: ab(Edge{MayBlock: true}),
		},
		{
			name: "may-block sticks",
			dst:  ab(Edge{MayBlock: true}),
			src:  ab(Edge{}),
			want: ab(Edge{MayBlock: true}),
		},
		{
			name: "try-only ANDs away",
			dst:  ab(Edge{TryOnly: true}),
			src:  ab(Edge{}),
			want: ab(Edge{}),
		},
		{
			name: "try-only kept when both",
			dst:  ab(Edge{TryOnly: true}),
			src:  ab(Edge{TryOnly: true}),
			want: ab(Edge{TryOnly: true}),
		},
		{
			name: "upgrade ANDs away",
			dst:  ab(Edge{Upgrade: true}),
			src:  ab(Edge{Upgrade: false}),
			want: ab(Edge{}),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := mkGraph(tc.dst)
			g.Merge(mkGraph(tc.src))
			if len(g.Edges) != 1 {
				t.Fatalf("edge count = %d, want 1", len(g.Edges))
			}
			got := g.Edges[0]
			sort.Strings(got.Sites)
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("merged edge = %+v, want %+v", got, tc.want)
			}
		})
	}

	t.Run("empty right identity", func(t *testing.T) {
		g := mkGraph(ab(Edge{Count: 5, Sites: []string{"x.go:1"}, MayBlock: true}))
		g.Merge(&Graph{Schema: Schema, Source: SourceDynamic})
		if len(g.Nodes) != 2 || len(g.Edges) != 1 || g.Edges[0].Count != 5 {
			t.Fatalf("merge with empty graph changed contents: %+v", g)
		}
	})
	t.Run("empty left identity", func(t *testing.T) {
		g := &Graph{Schema: Schema, Source: SourceDynamic}
		src := mkGraph(ab(Edge{Count: 5, TryOnly: true}))
		g.Merge(src)
		if len(g.Nodes) != 2 || len(g.Edges) != 1 {
			t.Fatalf("merge into empty graph lost contents: %+v", g)
		}
		if g.Edges[0].Count != 5 || !g.Edges[0].TryOnly {
			t.Fatalf("edge copied wrong: %+v", g.Edges[0])
		}
		if err := g.Validate(); err == nil {
			// Source/Generator were empty on the left; the merged graph is
			// structurally fine but still fails source validation, which is
			// the caller's to fill in. Just make sure nodes arrived.
			_ = err
		}
	})
	t.Run("disjoint edges both kept", func(t *testing.T) {
		g := mkGraph(ab(Edge{Count: 1}))
		other := mkGraph(Edge{From: "b", To: "a", Count: 2})
		g.Merge(other)
		if len(g.Edges) != 2 {
			t.Fatalf("disjoint edges merged: %+v", g.Edges)
		}
	})
}

func TestCanonicalStatic(t *testing.T) {
	cases := []struct {
		key, want string
		obs       bool
	}{
		{"vm.Map.lock", "vm.map", true},
		{"vm.Map.refLock", "vm.map.ref", true},
		{"ipc.Port", "ipc.port", true},
		{"kern.ProcessorSet.members", "kern.pset.members", true},
		{"kern.Host.assignLock", "kern.host.assign", true},
		{"machd.slot.chaosLock", "machd.chaos", true},
		{"zalloc.Zone.lock", "zalloc.zone", true},
		{"pmap.Pmap.lock", "pmap.Pmap.lock", false}, // untraced, kept
		{"local:l@123", "", false},                  // function-local, dropped
		{"local:l@123.interlock", "", false},
	}
	for _, tc := range cases {
		got, obs := CanonicalStatic(tc.key)
		if got != tc.want || obs != tc.obs {
			t.Errorf("CanonicalStatic(%q) = %q,%v; want %q,%v", tc.key, got, obs, tc.want, tc.obs)
		}
	}
}

func TestCanonicalDynamic(t *testing.T) {
	cases := []struct {
		name, want string
		ok         bool
	}{
		{"vm.map", "vm.map", true},
		{"zone.kern.task", "zalloc.zone", true},
		{"zone.vm.page", "zalloc.zone", true},
		{"splock.hierarchy", "", true}, // infrastructure, silently dropped
		{"montest.A", "", false},       // test harness, unmapped
	}
	for _, tc := range cases {
		got, ok := CanonicalDynamic(tc.name)
		if got != tc.want || ok != tc.ok {
			t.Errorf("CanonicalDynamic(%q) = %q,%v; want %q,%v", tc.name, got, ok, tc.want, tc.ok)
		}
	}
}

func TestDiff(t *testing.T) {
	static := &Graph{
		Schema: Schema, Source: SourceStatic, Generator: "machvet -graph",
		Nodes: []Node{
			{Class: "vm.map", Observable: true},
			{Class: "vm.object", Observable: true},
			{Class: "ipc.port", Observable: true},
			{Class: "pmap.Pmap.lock", Observable: false},
		},
		Edges: []Edge{
			{From: "vm.map", To: "vm.object", Sites: []string{"a.go:1"}},                  // exercised
			{From: "vm.map", To: "ipc.port", Sites: []string{"b.go:2"}},                   // coverage gap
			{From: "vm.object", To: "ipc.port", Sites: []string{"c.go:3"}, TryOnly: true}, // try-only, exempt
			{From: "vm.map", To: "pmap.Pmap.lock", Sites: []string{"d.go:4"}},             // unobservable
		},
	}
	dynamic := &Graph{
		Schema: Schema, Source: SourceDynamic, Generator: "machd -smoke",
		Nodes: []Node{
			{Class: "vm.map", Observable: true},
			{Class: "vm.object", Observable: true},
			{Class: "ipc.space", Observable: true},
		},
		Edges: []Edge{
			{From: "vm.map", To: "vm.object", Count: 9},
			{From: "ipc.space", To: "vm.map", Count: 2}, // soundness hole
		},
	}
	res, err := Diff(static, dynamic)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matched) != 1 || res.Matched[0].Count != 9 || res.Matched[0].Sites[0] != "a.go:1" {
		t.Fatalf("matched: %+v", res.Matched)
	}
	if len(res.StaticOnly) != 1 || res.StaticOnly[0].To != "ipc.port" {
		t.Fatalf("static-only: %+v", res.StaticOnly)
	}
	if len(res.DynamicOnly) != 1 || res.DynamicOnly[0].From != "ipc.space" {
		t.Fatalf("dynamic-only: %+v", res.DynamicOnly)
	}
	if res.StaticUnobservable != 1 || res.TryOnlyUnmatched != 1 {
		t.Fatalf("exclusions: %+v", res)
	}
	if res.Sound() {
		t.Fatal("graph with a dynamic-only edge reported sound")
	}
	if pct := res.CoveragePct(); pct != 50 {
		t.Fatalf("coverage %v, want 50", pct)
	}
	var buf bytes.Buffer
	res.Report(&buf)
	out := buf.String()
	for _, want := range []string{"SOUNDNESS HOLE", "ipc.space -> vm.map", "coverage gap: vm.map -> ipc.port", "b.go:2", "50.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestDiffRejectsWrongSources(t *testing.T) {
	s, d := validStatic(), validStatic()
	if _, err := Diff(d, d); err == nil || !strings.Contains(err.Error(), "source") {
		// second arg is static too
		t.Fatalf("want source error, got %v", err)
	}
	d.Source = SourceDynamic
	if _, err := Diff(s, d); err != nil {
		t.Fatalf("valid sources rejected: %v", err)
	}
}

package lockgraph

import (
	"fmt"
	"io"
)

// DiffResult is the static×dynamic cross-check: every edge classified by
// which observer(s) proved it.
type DiffResult struct {
	// DynamicOnly edges were observed at runtime but are invisible to the
	// analysis — each one is a machvet soundness hole. The gate requires
	// zero.
	DynamicOnly []Edge
	// StaticOnly edges are proven by the analysis (over runtime-observable
	// classes, excluding try-only proofs) but never exercised by any run —
	// discipline-coverage gaps, reported with the proving sites.
	StaticOnly []Edge
	// Matched edges appear in both graphs; the Edge carries the static
	// sites and the dynamic count.
	Matched []Edge

	// StaticUnobservable counts static edges excluded from the comparison
	// because an endpoint has no runtime trace class; TryOnlyUnmatched
	// counts try-only static edges no run happened to exercise (matchable,
	// not coverage debt — a try acquisition is the discipline's sanctioned
	// out-of-order path, so tests are not required to land it).
	StaticUnobservable int
	TryOnlyUnmatched   int
}

// CoveragePct is the discipline coverage: the share of comparable static
// edges (both endpoints observable, not try-only-unmatched) that some run
// exercised. 100 when there is nothing to cover.
func (d *DiffResult) CoveragePct() float64 {
	total := len(d.Matched) + len(d.StaticOnly)
	if total == 0 {
		return 100
	}
	return 100 * float64(len(d.Matched)) / float64(total)
}

// Sound reports whether the dynamic graph is fully explained by the
// static one.
func (d *DiffResult) Sound() bool { return len(d.DynamicOnly) == 0 }

// Diff cross-checks a static graph against a dynamic one (merge multiple
// dynamic dumps first; see Merge). Both graphs must be valid.
func Diff(static, dynamic *Graph) (*DiffResult, error) {
	if static.Source != SourceStatic {
		return nil, fmt.Errorf("lockgraph: diff: first graph has source %q, want %q", static.Source, SourceStatic)
	}
	if dynamic.Source != SourceDynamic {
		return nil, fmt.Errorf("lockgraph: diff: second graph has source %q, want %q", dynamic.Source, SourceDynamic)
	}
	observable := func(g *Graph, class string) bool {
		n := g.Node(class)
		return n != nil && n.Observable
	}
	dyn := make(map[string]Edge, len(dynamic.Edges))
	for _, e := range dynamic.Edges {
		dyn[e.key()] = e
	}
	res := &DiffResult{}
	for _, e := range static.Edges {
		if !observable(static, e.From) || !observable(static, e.To) {
			res.StaticUnobservable++
			continue
		}
		if de, ok := dyn[e.key()]; ok {
			m := e
			m.Count = de.Count
			res.Matched = append(res.Matched, m)
			delete(dyn, e.key())
			continue
		}
		if e.TryOnly {
			res.TryOnlyUnmatched++
			continue
		}
		res.StaticOnly = append(res.StaticOnly, e)
	}
	for _, e := range dynamic.Edges {
		if _, stillUnmatched := dyn[e.key()]; stillUnmatched {
			res.DynamicOnly = append(res.DynamicOnly, e)
		}
	}
	return res, nil
}

// Report writes the human-readable cross-check report. Every dynamic-only
// edge is a finding; static-only edges list their proving sites (capped).
func (d *DiffResult) Report(w io.Writer) {
	fmt.Fprintf(w, "lockgraph cross-check: %d matched, %d static-only, %d dynamic-only\n",
		len(d.Matched), len(d.StaticOnly), len(d.DynamicOnly))
	fmt.Fprintf(w, "  (excluded: %d static edges with unobservable endpoints, %d unexercised try-only edges)\n",
		d.StaticUnobservable, d.TryOnlyUnmatched)
	for _, e := range d.DynamicOnly {
		fmt.Fprintf(w, "SOUNDNESS HOLE: runtime observed %s -> %s (count %d) but machvet proves no such edge\n",
			e.From, e.To, e.Count)
	}
	for _, e := range d.StaticOnly {
		fmt.Fprintf(w, "coverage gap: %s -> %s proven but never exercised", e.From, e.To)
		for i, s := range e.Sites {
			if i == 3 {
				fmt.Fprintf(w, " (+%d more)", len(e.Sites)-i)
				break
			}
			if i == 0 {
				fmt.Fprintf(w, " at ")
			} else {
				fmt.Fprintf(w, ", ")
			}
			fmt.Fprintf(w, "%s", s)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "coverage: %.1f%% of comparable static edges exercised\n", d.CoveragePct())
}

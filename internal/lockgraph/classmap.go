package lockgraph

import "strings"

// The two emitters name classes in different vocabularies:
//
//   - machvet's lockstate.ClassKeyOf derives TYPE-LEVEL keys from the
//     receiver expression: "vm.Map.refLock" (field of a named container),
//     "ipc.Port" (an object.Object embedder classed by its own type),
//     "local:x@1234" (a function-local lock, position-unique);
//   - the trace registry names classes at registration time: "vm.map.ref",
//     "ipc.port", "zone.kern.task" (one class per zalloc zone).
//
// The canonical vocabulary is the trace registry's (one name per
// registered class, with the per-zone "zone.*" family collapsed to
// "zalloc.zone"), because that is the only name the dynamic side can ever
// report. staticClasses maps every machvet key for a runtime-traced lock
// onto it. Static keys NOT in the table are still real classes machvet
// proves edges about — pmap, tlbsim, cthreads, vm.Page and the unclassed
// object.Object embedders carry no trace class — so they stay in the
// static graph under their own key with Observable=false and are excluded
// from coverage accounting rather than silently dropped.

// staticClasses: machvet ClassKey -> canonical (trace) class name.
var staticClasses = map[string]string{
	"vm.Map.lock":               "vm.map",
	"vm.Map.refLock":            "vm.map.ref",
	"vm.Object.lock":            "vm.object",
	"ipc.Port":                  "ipc.port",
	"ipc.Space.lock":            "ipc.space",
	"kern.Task":                 "kern.task",
	"kern.Thread":               "kern.thread",
	"kern.Processor":            "kern.processor",
	"kern.ProcessorSet":         "kern.pset",
	"kern.ProcessorSet.members": "kern.pset.members",
	"kern.Host.assignLock":      "kern.host.assign",
	"machd.slot.chaosLock":      "machd.chaos",
	"zalloc.Zone.lock":          "zalloc.zone",
}

// canonicalKinds: canonical class name -> mechanism kind, mirroring the
// trace.NewClass registrations.
var canonicalKinds = map[string]string{
	"vm.map":            "complex",
	"vm.map.ref":        "ref",
	"vm.object":         "spin",
	"ipc.port":          "object",
	"ipc.space":         "complex",
	"kern.task":         "object",
	"kern.thread":       "object",
	"kern.processor":    "object",
	"kern.pset":         "object",
	"kern.pset.members": "complex",
	"kern.host.assign":  "complex",
	"machd.chaos":       "complex",
	"zalloc.zone":       "spin",
}

// dynamicOnlyNames are trace-registry names the collector may observe that
// are infrastructure, not kernel lock classes: they are dropped from
// dynamic graphs without being reported as unmapped.
var dynamicOnlyNames = map[string]bool{
	// The lock-order violation pseudo-class: registered, never acquired.
	"splock.hierarchy": true,
}

// CanonicalStatic translates a machvet ClassKey into (canonical name,
// observable). Three outcomes:
//
//   - a runtime-traced class: (trace name, true);
//   - a function-local class ("local:" prefix): ("", false) — dropped,
//     locals are position-unique by construction and carry no
//     cross-function ordering information;
//   - any other key: (the key itself, false) — a statically known class
//     with no trace registration, kept but outside coverage.
func CanonicalStatic(classKey string) (name string, observable bool) {
	if strings.HasPrefix(classKey, "local:") || strings.Contains(classKey, ".local:") {
		return "", false
	}
	if canon, ok := staticClasses[classKey]; ok {
		return canon, true
	}
	return classKey, false
}

// CanonicalDynamic translates a trace-registry class name into its
// canonical form. Returns "" for names to ignore silently (infrastructure
// pseudo-classes) and ok=false for names with no mapping (test-harness
// classes; callers record them in UnmappedClasses).
func CanonicalDynamic(traceName string) (name string, ok bool) {
	if dynamicOnlyNames[traceName] {
		return "", true
	}
	if strings.HasPrefix(traceName, "zone.") {
		return "zalloc.zone", true
	}
	if _, known := canonicalKinds[traceName]; known {
		return traceName, true
	}
	return "", false
}

// KindOf returns the mechanism kind of a canonical class, or "unknown".
func KindOf(canonical string) string {
	if k, ok := canonicalKinds[canonical]; ok {
		return k
	}
	return "unknown"
}

package opspan

// Concurrency hammer for the span engine: many threads open and close
// spans (with contended lock waits credited through the bridge) while
// other goroutines continuously read the op-class quantiles and the
// Prometheus rendering — the machd daemon's steady state, where the
// scrape endpoint races live span traffic. Run under -race this pins the
// absence of data races between span begin/end, wait crediting, and the
// snapshot/quantile readers.

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"machlock/internal/core/cxlock"
	"machlock/internal/sched"
	"machlock/internal/trace"
)

func TestSpanHammerWithConcurrentReaders(t *testing.T) {
	trace.Enable()
	defer trace.Disable()
	Install()
	defer Uninstall()

	const (
		writers   = 8
		readers   = 4
		spansEach = 300
	)

	op := trace.NewOp("opspantest", t.Name())
	lock := cxlock.NewWith(cxlock.Options{
		Sleep: true,
		Name:  t.Name(),
		Class: trace.NewClass("opspantest", t.Name()+"-lock", trace.KindComplex),
	})

	var stop atomic.Bool
	var wg sync.WaitGroup

	// Writers: spans around contended critical sections, so the bridge's
	// wait-crediting path races the readers too, not just begin/end.
	threads := make([]*sched.Thread, writers)
	for i := 0; i < writers; i++ {
		threads[i] = sched.Go(fmt.Sprintf("hammer-w%d", i), func(self *sched.Thread) {
			for j := 0; j < spansEach; j++ {
				sp := trace.BeginSpan(self, op)
				lock.Write(self)
				if j%64 == 0 {
					time.Sleep(10 * time.Microsecond) // widen the contention window
				}
				lock.Done(self)
				if sp.WaitNs() < 0 {
					t.Error("negative wait credit")
				}
				sp.End()
			}
		})
	}

	// Readers: quantile snapshots and the full Prometheus rendering, the
	// two paths a live scrape exercises.
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				for _, p := range trace.OpProfiles() {
					if p.P50Ns > p.P99Ns {
						t.Error("op quantiles inverted mid-read")
					}
				}
				var sb strings.Builder
				if err := trace.WriteProm(&sb, trace.Profiles()); err != nil {
					t.Errorf("WriteProm: %v", err)
				}
			}
		}()
	}

	for _, th := range threads {
		th.Join()
	}
	stop.Store(true)
	wg.Wait()

	p := op.Snapshot()
	if want := int64(writers * spansEach); p.Acquisitions != want {
		t.Fatalf("completed spans = %d, want %d", p.Acquisitions, want)
	}
	if p.MaxHoldNs <= 0 || p.P99HoldNs <= 0 {
		t.Fatalf("latency histogram empty: %+v", p)
	}
}

// Package opspan bridges the complex-lock observer fan-out to the
// operation-span engine: while a thread has a span open (trace.BeginSpan),
// every cxlock wait it performs is credited to that span, so the span's
// latency splits into lock-wait and work without the lock code knowing
// anything about spans.
//
// The bridge is an ordinary cxlock.Observer, installed alongside the
// deadlock tracker and the continuous monitor. Its cost when no span is
// open anywhere is one atomic load per wait event (see trace.SpanWaitStart)
// — and wait events are already off every fast path.
package opspan

import (
	"sync"

	"machlock/internal/core/cxlock"
	"machlock/internal/sched"
	"machlock/internal/trace"
)

// bridge forwards wait brackets to the span engine. Acquired/Released are
// uninteresting: span accounting needs only the time spent waiting.
type bridge struct{}

func (bridge) Acquired(l *cxlock.Lock, t *sched.Thread) {}
func (bridge) Released(l *cxlock.Lock, t *sched.Thread) {}

func (bridge) Waiting(l *cxlock.Lock, t *sched.Thread) { trace.SpanWaitStart(t) }

func (bridge) DoneWaiting(l *cxlock.Lock, t *sched.Thread) { trace.SpanWaitEnd(t) }

var (
	mu        sync.Mutex
	installed bool
	inst      bridge
)

// Install registers the bridge with the cxlock observer fan-out.
// Idempotent: extra calls are no-ops, so every surface that needs span
// accounting (the monitor, locktrace, tests) can call it unconditionally.
func Install() {
	mu.Lock()
	defer mu.Unlock()
	if !installed {
		cxlock.AddObserver(inst)
		installed = true
	}
}

// Uninstall removes the bridge. Spans already open keep any wait time
// credited so far; subsequent waits go uncredited.
func Uninstall() {
	mu.Lock()
	defer mu.Unlock()
	if installed {
		cxlock.RemoveObserver(inst)
		installed = false
	}
}

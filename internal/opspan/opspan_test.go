package opspan

// Integration tests for the span/lock-wait bridge: real sched threads
// contend on a real cxlock inside operation spans, and the wait must be
// credited to the span through the observer fan-out. The raw -race test
// uses host scheduling; the machsim test re-checks the span accounting
// invariants over explored schedules.

import (
	"testing"
	"time"

	"machlock/internal/core/cxlock"
	"machlock/internal/machsim"
	"machlock/internal/sched"
	"machlock/internal/trace"
)

// TestSpanCreditsLockWait: a holder pins the lock while a waiter runs an
// operation span around a contended Write. The span's latency must split
// into a nonzero lock-wait part strictly below the total.
func TestSpanCreditsLockWait(t *testing.T) {
	trace.Enable()
	defer trace.Disable()
	Install()
	defer Uninstall()

	op := trace.NewOp("opspantest", t.Name())
	l := cxlock.NewWith(cxlock.Options{
		Sleep: true,
		Name:  t.Name(),
		Class: trace.NewClass("opspantest", t.Name()+"-lock", trace.KindComplex),
	})

	held := make(chan struct{})
	holder := sched.Go("holder", func(self *sched.Thread) {
		l.Write(self)
		close(held)
		time.Sleep(3 * time.Millisecond)
		l.Done(self)
	})
	var spanWait, spanTotal int64
	waiter := sched.Go("waiter", func(self *sched.Thread) {
		<-held
		sp := trace.BeginSpan(self, op)
		start := time.Now()
		l.Write(self) // blocks ~3ms; the bridge credits the span
		l.Done(self)
		spanWait = sp.WaitNs()
		sp.End()
		spanTotal = time.Since(start).Nanoseconds()
	})
	holder.Join()
	waiter.Join()

	if spanWait <= 0 {
		t.Fatal("span credited no lock wait for a blocked Write")
	}
	if spanWait > spanTotal {
		t.Fatalf("span wait %dns exceeds the operation's wall clock %dns", spanWait, spanTotal)
	}
	p := op.Snapshot()
	if p.Acquisitions != 1 || p.Contended != 1 {
		t.Fatalf("op accounting wrong: %+v", p)
	}
}

// TestInstallIdempotent: surfaces install the bridge unconditionally, so
// double install/uninstall must be safe and leave no residue.
func TestInstallIdempotent(t *testing.T) {
	Install()
	Install()
	Uninstall()
	Uninstall()
}

// TestSimSpanNestingWithLockWaits re-runs the nesting + wait-credit shape
// under machsim's explored schedules: two threads, each opening an outer
// and inner span and taking a contended sleep lock inside the inner one.
// On every schedule the span counts must be exact, waits must be
// non-negative, and the credited wait can never exceed the span total.
func TestSimSpanNestingWithLockWaits(t *testing.T) {
	trace.Enable()
	defer trace.Disable()
	Install()
	defer Uninstall()

	outerOp := trace.NewOp("opspantest", "sim.outer")
	innerOp := trace.NewOp("opspantest", "sim.inner")

	scenario := func(s *machsim.Sim) {
		l := cxlock.NewWith(cxlock.Options{Sleep: true, Name: "opspan.sim"})
		s.Label(l, "opspan.sim")
		before := outerOp.Snapshot().Acquisitions
		beforeInner := innerOp.Snapshot().Acquisitions
		body := func(th *sched.Thread) {
			outer := trace.BeginSpan(th, outerOp)
			inner := trace.BeginSpan(th, innerOp)
			l.Write(th)
			l.Done(th)
			if inner.WaitNs() < 0 {
				s.Fail("negative span wait %d", inner.WaitNs())
			}
			inner.End()
			if trace.CurrentSpan(th) != outer {
				s.Fail("parent span lost after child End")
			}
			if outer.WaitNs() < inner.WaitNs() {
				s.Fail("child wait %d not propagated to parent (%d)", inner.WaitNs(), outer.WaitNs())
			}
			outer.End()
			if trace.CurrentSpan(th) != nil {
				s.Fail("span registry not empty after outermost End")
			}
		}
		s.Spawn("a", body)
		s.Spawn("b", body)
		s.AtEnd(func(fail func(string, ...any)) {
			if got := outerOp.Snapshot().Acquisitions - before; got != 2 {
				fail("outer spans recorded %d, want 2", got)
			}
			if got := innerOp.Snapshot().Acquisitions - beforeInner; got != 2 {
				fail("inner spans recorded %d, want 2", got)
			}
		})
	}
	machsim.Check(t, machsim.Explore(scenario, machsim.DFSConfig{Preemptions: 2, MaxRuns: 1000}, machsim.Options{}))
	machsim.Check(t, machsim.Random(scenario, 100, 7, machsim.Options{}))
}

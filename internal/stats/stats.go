// Package stats provides the shared measurement plumbing used by the
// machlock experiment harness: cheap atomic counters, power-of-two latency
// histograms, and a plain-text table printer whose output format is shared
// by `go test -bench` drivers and the cmd/machbench binary.
//
// The package is intentionally tiny and allocation-free on the hot paths so
// that instrumenting a lock does not perturb the contention behaviour being
// measured.
package stats

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync/atomic"
	"text/tabwriter"
	"time"
)

// Counter is a monotonically adjustable atomic counter. The zero value is
// ready to use.
type Counter struct {
	n atomic.Int64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds delta (which may be negative) to the counter.
func (c *Counter) Add(delta int64) { c.n.Add(delta) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.n.Load() }

// Reset sets the counter back to zero and returns the previous value.
func (c *Counter) Reset() int64 { return c.n.Swap(0) }

// Histogram is a fixed-size power-of-two histogram of int64 samples
// (typically nanosecond latencies or spin iteration counts). Bucket i counts
// samples v with 2^(i-1) <= v < 2^i; bucket 0 counts v <= 0 and v == 1 falls
// in bucket 1. The zero value is ready to use. All methods are safe for
// concurrent use.
type Histogram struct {
	buckets [64]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	h.count.Add(1)
	h.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			break
		}
	}
	h.buckets[bucketFor(v)].Add(1)
}

func bucketFor(v int64) int {
	if v <= 0 {
		return 0
	}
	b := 64 - bits.LeadingZeros64(uint64(v))
	if b > 63 {
		b = 63
	}
	return b
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Max returns the largest observed sample (zero if none).
func (h *Histogram) Max() int64 { return h.max.Load() }

// Mean returns the arithmetic mean of the samples, or zero if none were
// observed.
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile returns an estimate of the q-th quantile (0 <= q <= 1) using the
// bucket upper bounds; it is accurate to within a factor of two, which is
// sufficient for the order-of-magnitude comparisons the experiments make.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var seen int64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen >= target {
			if i == 0 {
				return 0
			}
			return int64(1) << uint(i-1)
		}
	}
	return h.max.Load()
}

// Reset zeroes the histogram.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
}

// Table accumulates rows of experiment results and renders them as an
// aligned plain-text table. It is the single output format shared by the
// bench harness and cmd/machbench so that EXPERIMENTS.md rows can be
// regenerated verbatim.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; each cell is rendered with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		case time.Duration:
			row[i] = v.String()
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// FormatFloat renders a float compactly: integers without a fraction, small
// values with enough precision to compare.
func FormatFloat(v float64) string {
	switch {
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	case math.Abs(v) >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// WriteTo renders the table to w.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
		sb.WriteString(strings.Repeat("-", len(t.Title)))
		sb.WriteByte('\n')
	}
	tw := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Columns, "\t"))
	for _, r := range t.Rows {
		fmt.Fprintln(tw, strings.Join(r, "\t"))
	}
	tw.Flush()
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// String renders the table.
func (t *Table) String() string {
	var sb strings.Builder
	t.WriteTo(&sb)
	return sb.String()
}

// Ratio returns a/b, guarding against division by zero.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// PerSecond converts an operation count over an elapsed duration into a rate.
func PerSecond(ops int64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(ops) / elapsed.Seconds()
}

// SortedKeys returns the sorted keys of an int-keyed map; a convenience for
// deterministic table output.
func SortedKeys[V any](m map[int]V) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

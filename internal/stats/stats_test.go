package stats

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(-2)
	if got := c.Load(); got != 3 {
		t.Fatalf("load = %d, want 3", got)
	}
	if got := c.Reset(); got != 3 {
		t.Fatalf("reset returned %d", got)
	}
	if c.Load() != 0 {
		t.Fatal("counter not zero after reset")
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Load() != 8000 {
		t.Fatalf("load = %d", c.Load())
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for _, v := range []int64{1, 2, 3, 100, 1000} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 1106 {
		t.Fatalf("sum = %d", h.Sum())
	}
	if h.Max() != 1000 {
		t.Fatalf("max = %d", h.Max())
	}
	if m := h.Mean(); m < 221 || m > 222 {
		t.Fatalf("mean = %f", m)
	}
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(10)
	}
	h.Observe(100000)
	// p50 must be in 10's bucket (power-of-two resolution: 8).
	if q := h.Quantile(0.5); q > 16 {
		t.Fatalf("p50 = %d", q)
	}
	// p100 lands in the top populated bucket.
	if q := h.Quantile(1.0); q < 65536 {
		t.Fatalf("p100 = %d", q)
	}
	var empty Histogram
	if empty.Quantile(0.5) != 0 {
		t.Fatal("empty quantile nonzero")
	}
}

func TestHistogramNonPositive(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(-5)
	if h.Count() != 2 {
		t.Fatalf("count = %d", h.Count())
	}
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("quantile of non-positive samples = %d", q)
	}
}

// Property: quantile estimates are within 2x of the true value for
// uniform-ish positive samples.
func TestHistogramQuantileBoundQuick(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		max := int64(0)
		for _, r := range raw {
			v := int64(r) + 1
			h.Observe(v)
			if v > max {
				max = v
			}
		}
		q := h.Quantile(1.0)
		return q <= max && q*2 > max/2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "name", "value", "rate")
	tb.AddRow("x", 42, 3.14159)
	tb.AddRow("y", time.Second, 1000000.0)
	s := tb.String()
	for _, want := range []string{"demo", "name", "x", "42", "3.14", "1s", "1000000"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, s)
		}
	}
	if len(tb.Rows) != 2 || len(tb.Rows[0]) != 3 {
		t.Fatal("row shape wrong")
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		3:       "3",
		3.14159: "3.14",
		123.456: "123.5",
		0.00123: "0.0012",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestRatioAndPerSecond(t *testing.T) {
	if Ratio(10, 2) != 5 {
		t.Fatal("ratio wrong")
	}
	if Ratio(10, 0) != 0 {
		t.Fatal("ratio by zero not guarded")
	}
	if r := PerSecond(1000, time.Second); r != 1000 {
		t.Fatalf("per second = %f", r)
	}
	if PerSecond(1000, 0) != 0 {
		t.Fatal("per second by zero not guarded")
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[int]string{3: "c", 1: "a", 2: "b"}
	keys := SortedKeys(m)
	if len(keys) != 3 || keys[0] != 1 || keys[1] != 2 || keys[2] != 3 {
		t.Fatalf("keys = %v", keys)
	}
}

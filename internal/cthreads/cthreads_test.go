package cthreads

import (
	"sync/atomic"
	"testing"
	"time"

	"machlock/internal/sched"
)

func join(t *testing.T, what string, threads ...*sched.Thread) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		for _, th := range threads {
			th.Join()
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("timed out waiting for %s", what)
	}
}

func TestMutexMutualExclusion(t *testing.T) {
	mu := NewMutex()
	counter := 0
	var threads []*sched.Thread
	for i := 0; i < 8; i++ {
		threads = append(threads, Spawn("w", func(self *sched.Thread) {
			for j := 0; j < 1000; j++ {
				mu.Lock(self)
				counter++
				mu.Unlock(self)
			}
		}))
	}
	join(t, "mutex workers", threads...)
	if counter != 8000 {
		t.Fatalf("counter = %d, want 8000", counter)
	}
}

func TestMutexBlocksNotSpins(t *testing.T) {
	mu := NewMutex()
	holder := sched.New("holder")
	mu.Lock(holder)
	waiter := Spawn("waiter", func(self *sched.Thread) {
		mu.Lock(self)
		mu.Unlock(self)
	})
	deadline := time.Now().Add(2 * time.Second)
	for waiter.Blocks() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("contended locker never blocked")
		}
		time.Sleep(time.Millisecond)
	}
	mu.Unlock(holder)
	join(t, "waiter", waiter)
	if mu.Contentions() == 0 {
		t.Fatal("contention not counted")
	}
}

func TestMutexTryLock(t *testing.T) {
	mu := NewMutex()
	a, b := sched.New("a"), sched.New("b")
	if !mu.TryLock(a) {
		t.Fatal("try on free mutex failed")
	}
	if mu.TryLock(b) {
		t.Fatal("try on held mutex succeeded")
	}
	if !mu.Held() {
		t.Fatal("Held() false while held")
	}
	mu.Unlock(a)
}

func TestMutexUnlockUnlockedPanics(t *testing.T) {
	mu := NewMutex()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	mu.Unlock(sched.New("t"))
}

func TestConditionSignalWakesOne(t *testing.T) {
	mu := NewMutex()
	cond := NewCondition()
	ready := 0
	consumed := make(chan int, 2)
	mk := func() *sched.Thread {
		return Spawn("waiter", func(self *sched.Thread) {
			mu.Lock(self)
			for ready == 0 {
				cond.Wait(self, mu)
			}
			ready--
			mu.Unlock(self)
			consumed <- 1
		})
	}
	w1, w2 := mk(), mk()
	time.Sleep(20 * time.Millisecond) // let both wait
	if cond.Waiters() != 2 {
		t.Fatalf("waiters = %d, want 2", cond.Waiters())
	}

	boss := sched.New("boss")
	mu.Lock(boss)
	ready++
	mu.Unlock(boss)
	cond.Signal()
	select {
	case <-consumed:
	case <-time.After(5 * time.Second):
		t.Fatal("signal woke nobody")
	}
	select {
	case <-consumed:
		t.Fatal("single signal satisfied two waiters")
	case <-time.After(50 * time.Millisecond):
	}

	mu.Lock(boss)
	ready++
	mu.Unlock(boss)
	cond.Signal()
	join(t, "both waiters", w1, w2)
}

func TestConditionBroadcastWakesAll(t *testing.T) {
	mu := NewMutex()
	cond := NewCondition()
	released := false
	var woken atomic.Int32
	var threads []*sched.Thread
	for i := 0; i < 6; i++ {
		threads = append(threads, Spawn("w", func(self *sched.Thread) {
			mu.Lock(self)
			for !released {
				cond.Wait(self, mu)
			}
			mu.Unlock(self)
			woken.Add(1)
		}))
	}
	deadline := time.Now().Add(2 * time.Second)
	for cond.Waiters() < 6 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d waiters parked", cond.Waiters())
		}
		time.Sleep(time.Millisecond)
	}
	boss := sched.New("boss")
	mu.Lock(boss)
	released = true
	mu.Unlock(boss)
	cond.Broadcast()
	join(t, "broadcast waiters", threads...)
	if woken.Load() != 6 {
		t.Fatalf("woken = %d", woken.Load())
	}
}

func TestSignalWithNoWaitersIsDropped(t *testing.T) {
	cond := NewCondition()
	cond.Signal()
	cond.Broadcast()
	if cond.Waiters() != 0 {
		t.Fatal("phantom waiters")
	}
}

// TestProducerConsumerPipeline runs the classic bounded-buffer workload —
// the integration test of mutex + condition over the kernel primitives.
func TestProducerConsumerPipeline(t *testing.T) {
	const capacity, items = 4, 3000
	mu := NewMutex()
	notFull := NewCondition()
	notEmpty := NewCondition()
	var buf []int

	producer := Spawn("producer", func(self *sched.Thread) {
		for i := 0; i < items; i++ {
			mu.Lock(self)
			for len(buf) == capacity {
				notFull.Wait(self, mu)
			}
			buf = append(buf, i)
			mu.Unlock(self)
			notEmpty.Signal()
		}
	})
	var sum int64
	consumer := Spawn("consumer", func(self *sched.Thread) {
		for i := 0; i < items; i++ {
			mu.Lock(self)
			for len(buf) == 0 {
				notEmpty.Wait(self, mu)
			}
			v := buf[0]
			buf = buf[1:]
			mu.Unlock(self)
			notFull.Signal()
			sum += int64(v)
		}
	})
	join(t, "pipeline", producer, consumer)
	want := int64(items) * int64(items-1) / 2
	if sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
}

// Package cthreads implements the C Threads synchronization interface
// (Cooper & Draves, CMU-CS-88-154) that the paper's Appendix A points to
// as the user-level home of simple-lock functionality: "Similar
// functionality is available in most libraries that support multithreaded
// applications (e.g., the mutex functionality in the C threads library)."
//
// It is built entirely on the kernel primitives this repository
// reproduces — spin locks for the fast path and the assert_wait/
// thread_block protocol for blocking — and therefore doubles as an
// integration test of those primitives in their historically real client.
//
//	mu := cthreads.NewMutex()
//	cond := cthreads.NewCondition()
//	mu.Lock(self)
//	for !ready {
//	    cond.Wait(self, mu) // atomically unlock + wait + relock
//	}
//	mu.Unlock(self)
package cthreads

import (
	"sync/atomic"

	"machlock/internal/core/splock"
	"machlock/internal/sched"
)

// Mutex is a blocking mutual exclusion lock in the C Threads style: a
// spin-lock-protected state word plus a wait queue. Uncontended
// acquisition is one atomic operation; contended acquirers block via the
// event-wait protocol rather than spinning (these are user-level threads
// that may hold the mutex across arbitrary code).
type Mutex struct {
	interlock splock.Lock
	held      bool
	waiters   int

	contentions atomic.Int64
}

// NewMutex creates an unlocked mutex.
func NewMutex() *Mutex { return &Mutex{} }

// Lock acquires the mutex for t, blocking while it is held.
func (m *Mutex) Lock(t *sched.Thread) {
	m.interlock.Lock()
	for m.held {
		m.contentions.Add(1)
		m.waiters++
		// The split protocol: declare, release the interlock, block.
		sched.AssertWait(t, sched.Event(m))
		m.interlock.Unlock()
		sched.ThreadBlock(t)
		m.interlock.Lock()
		m.waiters--
	}
	m.held = true
	m.interlock.Unlock()
}

// TryLock makes a single attempt.
func (m *Mutex) TryLock(t *sched.Thread) bool {
	m.interlock.Lock()
	defer m.interlock.Unlock()
	if m.held {
		return false
	}
	m.held = true
	return true
}

// Unlock releases the mutex, waking one waiter if any.
func (m *Mutex) Unlock(t *sched.Thread) {
	m.interlock.Lock()
	if !m.held {
		m.interlock.Unlock()
		panic("cthreads: unlock of unlocked mutex")
	}
	m.held = false
	wake := m.waiters > 0
	m.interlock.Unlock()
	if wake {
		sched.ThreadWakeupOne(sched.Event(m))
	}
}

// Held reports whether the mutex is currently held (advisory).
func (m *Mutex) Held() bool {
	m.interlock.Lock()
	defer m.interlock.Unlock()
	return m.held
}

// Contentions returns the number of times a Lock had to block.
func (m *Mutex) Contentions() int64 { return m.contentions.Load() }

// Condition is a C Threads condition variable. Wait atomically releases
// the associated mutex and blocks; Signal wakes one waiter, Broadcast all.
// As in every correct condition-variable protocol, waiters must re-check
// their predicate in a loop.
type Condition struct {
	interlock splock.Lock
	waiters   int

	signals    atomic.Int64
	broadcasts atomic.Int64
}

// NewCondition creates a condition variable.
func NewCondition() *Condition { return &Condition{} }

// Wait atomically releases mu and blocks t until the condition is
// signalled, then re-acquires mu before returning. The atomicity comes
// directly from the assert-before-unlock discipline of Section 6.
func (c *Condition) Wait(t *sched.Thread, mu *Mutex) {
	c.interlock.Lock()
	c.waiters++
	sched.AssertWait(t, sched.Event(c))
	c.interlock.Unlock()

	mu.Unlock(t)
	sched.ThreadBlock(t)
	mu.Lock(t)
}

// Signal wakes one waiter (if any).
func (c *Condition) Signal() {
	c.signals.Add(1)
	c.interlock.Lock()
	if c.waiters > 0 {
		c.waiters--
		c.interlock.Unlock()
		sched.ThreadWakeupOne(sched.Event(c))
		return
	}
	c.interlock.Unlock()
}

// Broadcast wakes every waiter.
func (c *Condition) Broadcast() {
	c.broadcasts.Add(1)
	c.interlock.Lock()
	n := c.waiters
	c.waiters = 0
	c.interlock.Unlock()
	if n > 0 {
		sched.ThreadWakeup(sched.Event(c))
	}
}

// Waiters returns the current waiter count (advisory).
func (c *Condition) Waiters() int {
	c.interlock.Lock()
	defer c.interlock.Unlock()
	return c.waiters
}

// Spawn starts a C-thread (cthread_fork): a named kernel thread running
// body. Join (cthread_join) waits for it.
func Spawn(name string, body func(t *sched.Thread)) *sched.Thread {
	return sched.Go(name, body)
}
